package simquery_test

import (
	"fmt"
	"math"
	"sort"
	"testing"

	simquery "repro"
	"repro/internal/dataset"
)

// TestPublicAPIEndToEnd drives the whole re-exported surface: build,
// query with every algorithm, range search, simulate, snapshot.
func TestPublicAPIEndToEnd(t *testing.T) {
	ix, err := simquery.NewIndex(simquery.IndexConfig{Dim: 2, NumDisks: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.CaliforniaLike(5000, 11)
	if err := ix.InsertAll(pts, 0); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 5000 {
		t.Fatalf("len = %d", ix.Len())
	}

	q := simquery.Point{0.4, 0.5}
	var reference []float64
	for _, name := range simquery.Algorithms() {
		if name == "eps-series" {
			continue // baseline; exercised separately in internal tests
		}
		res, stats, err := ix.KNN(q, 10, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) != 10 || stats.NodesVisited <= 0 {
			t.Fatalf("%s: %d results, %d nodes", name, len(res), stats.NodesVisited)
		}
		ds := make([]float64, len(res))
		for i, r := range res {
			ds[i] = r.DistSq
		}
		if reference == nil {
			reference = ds
		} else {
			for i := range ds {
				if math.Abs(ds[i]-reference[i]) > 1e-9 {
					t.Fatalf("%s disagrees with reference at rank %d", name, i)
				}
			}
		}
	}

	within, _, err := ix.RangeSearch(q, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(within, func(i, j int) bool { return within[i].DistSq < within[j].DistSq })
	for _, w := range within {
		if w.DistSq > 0.05*0.05+1e-9 {
			t.Fatal("range result outside radius")
		}
	}

	run, err := ix.Simulate(simquery.SimulatedWorkload{
		Algorithm: "crss", K: 10,
		Queries:     dataset.SampleQueries(pts, 15, 12),
		ArrivalRate: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MeanResponse <= 0 || len(run.Outcomes) != 15 {
		t.Fatalf("simulate: %+v", run.MeanResponse)
	}
}

// ExampleNewIndex demonstrates the quickstart flow; the output is
// checked by go test.
func ExampleNewIndex() {
	ix, err := simquery.NewIndex(simquery.IndexConfig{Dim: 2, NumDisks: 4, Seed: 7})
	if err != nil {
		panic(err)
	}
	// A tiny map: four landmarks.
	landmarks := []simquery.Point{
		{0.1, 0.1}, // 0: harbor
		{0.2, 0.1}, // 1: market
		{0.8, 0.9}, // 2: airport
		{0.5, 0.5}, // 3: plaza
	}
	if err := ix.InsertAll(landmarks, 0); err != nil {
		panic(err)
	}
	res, _, err := ix.KNN(simquery.Point{0.15, 0.12}, 2, "crss")
	if err != nil {
		panic(err)
	}
	for i, r := range res {
		fmt.Printf("#%d: landmark %d\n", i+1, r.Object)
	}
	// Output:
	// #1: landmark 0
	// #2: landmark 1
}
