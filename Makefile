# Targets mirror the CI jobs (.github/workflows/ci.yml).

GO ?= go

.PHONY: all build vet test race lint bench full

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## test: the CI test job (short mode — slow simulations skipped).
test:
	$(GO) test -short ./...

## race: the CI race-detector gate for the concurrent engine.
race:
	$(GO) test -race -short ./...

## lint: gofmt cleanliness + staticcheck (installed on demand).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	@command -v staticcheck >/dev/null 2>&1 || \
		$(GO) install honnef.co/go/tools/cmd/staticcheck@latest
	staticcheck ./...

## bench: benchmark smoke — every benchmark once (the nightly job).
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## full: everything the manually-dispatched nightly job runs.
full:
	$(GO) test ./...
	$(GO) test -race ./...
	$(GO) test -bench=. -benchtime=1x ./...
	OBS_OVERHEAD=1 $(GO) test -run TestObservedOverhead -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput/engine-workers=10x2$$|BenchmarkEngineObserved' -benchtime 2s .
