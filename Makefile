# Targets mirror the CI jobs (.github/workflows/ci.yml).

GO ?= go

# Pinned analysis-tool versions — CI runs these targets, so the Makefile
# is the single source of truth for both.
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.4

# Duration per fuzz target in the `fuzz` smoke target.
FUZZTIME ?= 30s

.PHONY: all build vet analyze analyze-sarif analyze-budget audit test race lint bench bench-json bench-check fuzz chaos chaos-full crash crash-full serve-test serve-soak full

all: build vet analyze test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

## analyze: the repo-specific analyzer suite (internal/lint) run through
## the `go vet -vettool` protocol, exactly as CI runs it, followed by
## the suppression audit (stale //lint:allow directives fail the build).
analyze:
	$(GO) build -o bin/simquerylint ./cmd/simquerylint
	$(GO) vet -vettool=$(abspath bin/simquerylint) ./...
	bin/simquerylint -source . -audit

## analyze-sarif: standalone whole-module scan rendered as SARIF 2.1.0
## (lint.sarif in the repo root — CI uploads it as an artifact).
ANALYZE_SARIF_OUT ?= lint.sarif
analyze-sarif:
	$(GO) build -o bin/simquerylint ./cmd/simquerylint
	bin/simquerylint -source . -sarif $(ANALYZE_SARIF_OUT)
	@echo "wrote $(ANALYZE_SARIF_OUT)"

## analyze-budget: `make analyze` under a wall-clock ceiling. The
## interprocedural analyzers (call graph + fixpoint summaries) must stay
## cheap enough to run on every PR; the nightly job fails when the whole
## suite takes longer than ANALYZE_BUDGET_SECS.
ANALYZE_BUDGET_SECS ?= 120
analyze-budget:
	@start=$$(date +%s); \
	$(MAKE) analyze || exit $$?; \
	elapsed=$$(( $$(date +%s) - start )); \
	echo "make analyze took $${elapsed}s (budget $(ANALYZE_BUDGET_SECS)s)"; \
	if [ $$elapsed -gt $(ANALYZE_BUDGET_SECS) ]; then \
		echo "analyzer runtime budget exceeded"; exit 1; fi

## audit: report //lint:allow directives that no longer suppress any
## finding. Stale suppressions are bugs-in-waiting: they hide nothing
## today and mask a real finding tomorrow.
audit:
	$(GO) build -o bin/simquerylint ./cmd/simquerylint
	bin/simquerylint -source . -audit

## test: the CI test job (short mode — slow simulations skipped).
test:
	$(GO) test -short ./...

## race: the CI race-detector gate for the concurrent engine.
race:
	$(GO) test -race -short ./...

## lint: gofmt cleanliness + pinned staticcheck (installed on demand).
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; fi
	@command -v staticcheck >/dev/null 2>&1 || \
		$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	staticcheck ./...

## bench: benchmark smoke — every benchmark once. This is the single
## definition of the smoke invocation; both the nightly CI job and the
## `full` target run it through this target rather than repeating the
## command line.
bench:
	$(GO) test -bench=. -benchtime=1x ./...

## bench-json: run the tracked benchmark set (vectorized kernels vs
## scalar reference, candidate filtering, end-to-end k-NN pages/query)
## at a fixed iteration count with the deterministic in-repo seeds, and
## render the output as a schema-versioned JSON report via cmd/benchjson.
## BENCH_JSON_OUT defaults to BENCH_<utc-date>.json in the repo root.
BENCH_JSON_TIME  ?= 20000x
BENCH_JSON_COUNT ?= 5
BENCH_JSON_OUT   ?= BENCH_$(shell date -u +%F).json
BENCH_BASELINE   ?= BENCH_2026-08-08.json
BENCH_JSON_SET    = 'BenchmarkKernels|BenchmarkKNN|BenchmarkMakeCandidates'
bench-json:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -run xxx -bench $(BENCH_JSON_SET) -benchtime=$(BENCH_JSON_TIME) \
		-count=$(BENCH_JSON_COUNT) -benchmem . ./internal/query/ | tee bin/bench.out
	bin/benchjson parse -o $(BENCH_JSON_OUT) bin/bench.out
	@echo "wrote $(BENCH_JSON_OUT)"

## bench-check: benchstat-style comparison of the current report against
## the committed seed baseline. Warns (GitHub annotations under Actions)
## above a 10% ns/op regression; never fails the build — CI-runner noise
## must not gate merges.
bench-check:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	bin/benchjson compare -threshold 10 $(BENCH_BASELINE) $(BENCH_JSON_OUT)

## fuzz: run each fuzz target for FUZZTIME (committed seed corpora under
## testdata/fuzz already run during plain `go test`).
fuzz:
	$(GO) test -fuzz=FuzzPageCodec -fuzztime=$(FUZZTIME) ./internal/pagestore/
	$(GO) test -fuzz=FuzzWALRecord -fuzztime=$(FUZZTIME) ./internal/pagestore/
	$(GO) test -fuzz=FuzzGeomMetrics -fuzztime=$(FUZZTIME) ./internal/geom/
	$(GO) test -fuzz=FuzzRTreeOps -fuzztime=$(FUZZTIME) ./internal/rtree/

## chaos: the fault-injection suite under the race detector — injector
## determinism, degraded-mode engine reads, simulator fail-stop, mirror
## routing and query validation. Short mode trims the seeded sweeps for
## the PR CI job; `chaos-full` runs every seed (the nightly job).
CHAOS_RUN = 'Chaos|Fault|PickMirror|Mirrored|RAID0|BatchError|FetchBatch|TraceTerminal|Validat|Injector|FailStop|DeadOnArrival|Transient|Spike|Reader|ErrData'
chaos:
	$(GO) test -race -short -run $(CHAOS_RUN) ./internal/fault/ ./internal/exec/ ./internal/simarray/ ./internal/query/

chaos-full:
	$(GO) test -race -run $(CHAOS_RUN) ./internal/fault/ ./internal/exec/ ./internal/simarray/ ./internal/query/

## crash: the crash-recovery torture suite under the race detector —
## kill the durable store at programmed fsyncs, reboot from exactly the
## bytes that were durable, and require a consistent committed tree,
## plus the WAL / superblock / durable-store unit tests around it.
## Short mode samples the kill points (the PR CI job); `crash-full`
## kills at every sync point in the schedule (the nightly job).
CRASH_RUN = 'CrashRecovery|DurableStore|FileStore|FileBacked|IndexDurable|WAL'
crash:
	$(GO) test -race -short -run $(CRASH_RUN) ./internal/pagestore/ ./internal/exec/ ./internal/core/

crash-full:
	$(GO) test -race -run $(CRASH_RUN) ./internal/pagestore/ ./internal/exec/ ./internal/core/

## serve-test: the network query service integration suite under the
## race detector — N concurrent HTTP clients bit-identical to the
## sequential driver, scripted load shedding, per-tenant quota
## exhaustion, graceful-shutdown drain, and the real-engine saturation
## scenario. The PR CI server job runs this target.
serve-test:
	$(GO) test -race -run 'Server|Serve|Tenant|DebugServer|Coalesce' ./internal/server/ ./internal/obs/ ./internal/exec/

## serve-soak: the nightly serving soak — a sustained storm of HTTP
## clients against a real spiked engine with quotas and admission
## control live, ending in a graceful drain (SERVE_SOAK gates the
## 30-second run).
serve-soak:
	SERVE_SOAK=1 $(GO) test -race -run TestServeSoak -v ./internal/server/

## full: everything the manually-dispatched nightly job runs.
## govulncheck needs network access to the vuln DB, so it is skipped
## (with a notice) when the pinned binary cannot be installed.
full:
	$(GO) test ./...
	$(GO) test -race ./...
	$(MAKE) analyze
	$(MAKE) chaos-full
	$(MAKE) crash-full
	$(MAKE) serve-test
	$(MAKE) serve-soak
	$(MAKE) bench
	OBS_OVERHEAD=1 $(GO) test -run TestObservedOverhead -v .
	$(GO) test -run xxx -bench 'BenchmarkEngineThroughput/engine-workers=10x2$$|BenchmarkEngineObserved' -benchtime 2s .
	$(MAKE) fuzz FUZZTIME=10s
	@if command -v govulncheck >/dev/null 2>&1 || \
		$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION); then \
		govulncheck ./...; \
	else \
		echo "govulncheck unavailable (offline?); skipping"; \
	fi
