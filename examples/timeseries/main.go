// Timeseries: similarity search over time sequences represented as
// Fourier vectors — the paper's introduction cites exactly this
// application ("a time sequence can be represented as a Fourier vector
// in a high-dimensional space", after Faloutsos, Ranganathan &
// Manolopoulos, SIGMOD 1994).
//
// The example synthesizes a library of daily load curves from several
// latent regimes, represents each by its first Fourier coefficients
// (which preserve Euclidean distance by Parseval's theorem, so index
// distance lower-bounds sequence distance), indexes the vectors in a
// disk-array SR-tree, and finds the days most similar to a probe day.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
)

const (
	seqLen  = 96 // one sample per quarter-hour
	nCoeffs = 4  // DFT coefficients kept (re+im each) → 8-d index
	library = 6000
)

// regime is a latent daily pattern: base sinusoids + noise level.
type regime struct {
	amp   [3]float64
	phase [3]float64
	noise float64
}

func makeRegimes(rnd *rand.Rand, n int) []regime {
	rs := make([]regime, n)
	for i := range rs {
		for h := 0; h < 3; h++ {
			rs[i].amp[h] = rnd.Float64() * 3
			rs[i].phase[h] = rnd.Float64() * 2 * math.Pi
		}
		rs[i].noise = 0.05 + rnd.Float64()*0.15
	}
	return rs
}

// render draws one day from a regime.
func render(r regime, rnd *rand.Rand) []float64 {
	seq := make([]float64, seqLen)
	for t := 0; t < seqLen; t++ {
		x := 2 * math.Pi * float64(t) / seqLen
		v := 0.0
		for h := 0; h < 3; h++ {
			v += r.amp[h] * math.Sin(float64(h+1)*x+r.phase[h])
		}
		seq[t] = v + rnd.NormFloat64()*r.noise
	}
	return seq
}

// fourierFeatures returns the first nCoeffs DFT coefficients (real and
// imaginary parts), scaled so Euclidean distance in feature space
// lower-bounds sequence distance (Parseval).
func fourierFeatures(seq []float64) core.Point {
	f := make(core.Point, 0, nCoeffs*2)
	n := float64(len(seq))
	for c := 1; c <= nCoeffs; c++ {
		var re, im float64
		for t, v := range seq {
			ang := 2 * math.Pi * float64(c) * float64(t) / n
			re += v * math.Cos(ang)
			im -= v * math.Sin(ang)
		}
		f = append(f, re/math.Sqrt(n), im/math.Sqrt(n))
	}
	return f
}

func seqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func main() {
	log.SetFlags(0)
	rnd := rand.New(rand.NewSource(19))
	regimes := makeRegimes(rnd, 9)

	// Build the library.
	days := make([][]float64, library)
	features := make([]core.Point, library)
	regimeOf := make([]int, library)
	for i := range days {
		r := rnd.Intn(len(regimes))
		regimeOf[i] = r
		days[i] = render(regimes[r], rnd)
		features[i] = fourierFeatures(days[i])
	}

	// Index the Fourier vectors on a 10-disk array; the SR-tree variant
	// suits the moderately high dimensionality.
	ix, err := core.NewIndex(core.IndexConfig{
		Dim: nCoeffs * 2, NumDisks: 10, Seed: 19, UseSpheres: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.InsertAll(features, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-series library: %d days × %d samples, %d-d Fourier index, %d pages\n\n",
		library, seqLen, nCoeffs*2, ix.Tree().Store().Len())

	// Probe: a fresh day from regime 4; the filter step runs on the
	// index, the refinement step re-ranks by true sequence distance
	// (the filter/refine pipeline of the paper's introduction).
	probeDay := render(regimes[4], rnd)
	probe := fourierFeatures(probeDay)
	const k = 8
	// Over-fetch in feature space, then refine.
	cand, stats, err := ix.KNN(probe, 3*k, "crss")
	if err != nil {
		log.Fatal(err)
	}
	type scored struct {
		id   core.ObjectID
		dist float64
	}
	refined := make([]scored, 0, len(cand))
	for _, c := range cand {
		refined = append(refined, scored{c.Object, seqDist(probeDay, days[c.Object])})
	}
	for i := 0; i < len(refined); i++ {
		for j := i + 1; j < len(refined); j++ {
			if refined[j].dist < refined[i].dist {
				refined[i], refined[j] = refined[j], refined[i]
			}
		}
	}

	fmt.Printf("top-%d most similar days (filter: %d candidates via index, %d node accesses):\n",
		k, len(cand), stats.NodesVisited)
	hits := 0
	for i := 0; i < k; i++ {
		r := refined[i]
		tag := " "
		if regimeOf[r.id] == 4 {
			hits++
			tag = "*"
		}
		fmt.Printf("  #%d day %-5d regime %d  true dist %.3f %s\n",
			i+1, r.id, regimeOf[r.id], r.dist, tag)
	}
	fmt.Printf("\n%d/%d matches from the probe's regime\n", hits, k)

	// Throughput story: a monitoring dashboard fires similarity probes
	// continuously; compare sequential vs parallel search.
	queries := make([]core.Point, 40)
	for i := range queries {
		queries[i] = fourierFeatures(render(regimes[rnd.Intn(len(regimes))], rnd))
	}
	for _, alg := range []string{"bbss", "crss"} {
		run, err := ix.Simulate(core.SimulatedWorkload{
			Algorithm: alg, K: k, Queries: queries, ArrivalRate: 2,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("λ=2 q/s with %-4s: mean response %.1f ms\n", alg, run.MeanResponse*1000)
	}
}
