// Imagesearch: content-based image retrieval over color histograms —
// the motivating application of the paper's introduction ("a 256-color
// image can be represented as a single vector using the values of the
// color histogram").
//
// The example synthesizes a library of images from a handful of visual
// themes (each theme is a distribution over a 16-bin color histogram),
// indexes the histograms in a disk-array R*-tree, and retrieves the
// most similar images to a probe image with CRSS, reporting how much
// I/O the similarity query needed compared to scanning.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro/internal/core"
)

const (
	bins      = 16   // histogram dimensionality
	library   = 8000 // images in the library
	numThemes = 12
)

// theme is a latent image category: a mean histogram plus per-bin jitter.
type theme struct {
	mean  []float64
	noise float64
}

func makeThemes(rnd *rand.Rand) []theme {
	ts := make([]theme, numThemes)
	for i := range ts {
		m := make([]float64, bins)
		var sum float64
		for b := range m {
			m[b] = rnd.Float64()
			sum += m[b]
		}
		for b := range m {
			m[b] /= sum // histograms are normalized
		}
		ts[i] = theme{mean: m, noise: 0.01 + rnd.Float64()*0.02}
	}
	return ts
}

// render draws one image histogram from a theme.
func render(t theme, rnd *rand.Rand) core.Point {
	h := make(core.Point, bins)
	var sum float64
	for b := range h {
		v := t.mean[b] + rnd.NormFloat64()*t.noise
		if v < 0 {
			v = 0
		}
		h[b] = v
		sum += v
	}
	for b := range h {
		h[b] /= sum
	}
	return h
}

func main() {
	log.SetFlags(0)
	rnd := rand.New(rand.NewSource(7))
	themes := makeThemes(rnd)

	// Build the image library: themeOf[i] remembers each image's latent
	// category so we can judge retrieval quality.
	histograms := make([]core.Point, library)
	themeOf := make([]int, library)
	for i := range histograms {
		t := rnd.Intn(numThemes)
		themeOf[i] = t
		histograms[i] = render(themes[t], rnd)
	}

	ix, err := core.NewIndex(core.IndexConfig{Dim: bins, NumDisks: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.InsertAll(histograms, 0); err != nil {
		log.Fatal(err)
	}
	pages := ix.Tree().Store().Len()
	fmt.Printf("image library: %d images, %d-bin histograms, %d pages on 10 disks\n\n",
		library, bins, pages)

	// Probe with a fresh image from a known theme and retrieve the 12
	// most similar library images.
	probeTheme := 3
	probe := render(themes[probeTheme], rnd)
	const k = 12
	res, stats, err := ix.KNN(probe, k, "crss")
	if err != nil {
		log.Fatal(err)
	}

	hits := 0
	fmt.Printf("top-%d matches for a theme-%d probe:\n", k, probeTheme)
	for i, r := range res {
		match := themeOf[r.Object]
		tag := " "
		if match == probeTheme {
			hits++
			tag = "*"
		}
		fmt.Printf("  #%-2d image %-5d theme %-2d dist %.5f %s\n",
			i+1, r.Object, match, math.Sqrt(r.DistSq), tag)
	}
	fmt.Printf("\nretrieval precision: %d/%d from the probe's theme\n", hits, k)
	fmt.Printf("index I/O: %d of %d pages (%.1f%%), %d parallel rounds\n",
		stats.NodesVisited, pages, 100*float64(stats.NodesVisited)/float64(pages), stats.Batches)

	// The multi-user story: an image server handling a Poisson stream.
	queries := make([]core.Point, 60)
	for i := range queries {
		queries[i] = render(themes[rnd.Intn(numThemes)], rnd)
	}
	for _, algName := range []string{"bbss", "crss"} {
		run, err := ix.Simulate(core.SimulatedWorkload{
			Algorithm: algName, K: k, Queries: queries, ArrivalRate: 0.25,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("0.25 queries/sec with %-5s: mean response %.1f ms (max %.1f ms)\n",
			algName, run.MeanResponse*1000, run.MaxResponse*1000)
	}
}
