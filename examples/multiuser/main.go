// Multiuser: the paper's headline experiment in miniature — a stream of
// concurrent k-NN queries hitting the disk array at increasing arrival
// rates, comparing how gracefully each algorithm degrades. This is the
// scenario where CRSS's bounded parallelism pays off: BBSS wastes the
// array (no intra-query parallelism), FPSS floods it (no fetch control).
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	pts := dataset.Gaussian(30000, 5, 23)
	ix, err := core.NewIndex(core.IndexConfig{Dim: 5, NumDisks: 10, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.InsertAll(pts, 0); err != nil {
		log.Fatal(err)
	}
	queries := dataset.SampleQueries(pts, 80, 24)
	fmt.Printf("database: %d 5-d vectors, %d pages, 10 disks; workload: 80 queries, k=20\n\n",
		ix.Len(), ix.Tree().Store().Len())

	algorithms := []string{"bbss", "fpss", "crss", "woptss"}
	lambdas := []float64{1, 5, 10, 20}

	fmt.Printf("%-8s", "λ (q/s)")
	for _, a := range algorithms {
		fmt.Printf("%12s", a)
	}
	fmt.Println("   (mean response, ms)")
	for _, l := range lambdas {
		fmt.Printf("%-8g", l)
		for _, a := range algorithms {
			run, err := ix.Simulate(core.SimulatedWorkload{
				Algorithm: a, K: 20, Queries: queries, ArrivalRate: l,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.1f", run.MeanResponse*1000)
		}
		fmt.Println()
	}

	// Device-level view at the heaviest load for the two extremes.
	fmt.Println("\ndevice utilization at λ=20:")
	for _, a := range []string{"fpss", "crss"} {
		run, err := ix.Simulate(core.SimulatedWorkload{
			Algorithm: a, K: 20, Queries: queries, ArrivalRate: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		var maxDisk float64
		for _, d := range run.Disks {
			if d.Utilization > maxDisk {
				maxDisk = d.Utilization
			}
		}
		fmt.Printf("  %-5s: busiest disk %.0f%%, bus %.0f%%, CPU %.0f%%\n",
			a, maxDisk*100, run.BusUtil*100, run.CPUUtil*100)
	}
	fmt.Println("\nCRSS keeps response times close to the WOPTSS bound as load grows;")
	fmt.Println("FPSS degrades fastest because it has no control over fetched pages.")
}
