// Multiuser: the paper's headline experiment in miniature — a stream of
// concurrent k-NN queries hitting the disk array at increasing arrival
// rates, comparing how gracefully each algorithm degrades. This is the
// scenario where CRSS's bounded parallelism pays off: BBSS wastes the
// array (no intra-query parallelism), FPSS floods it (no fetch control).
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)

	pts := dataset.Gaussian(30000, 5, 23)
	ix, err := core.NewIndex(core.IndexConfig{Dim: 5, NumDisks: 10, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.InsertAll(pts, 0); err != nil {
		log.Fatal(err)
	}
	queries := dataset.SampleQueries(pts, 80, 24)
	fmt.Printf("database: %d 5-d vectors, %d pages, 10 disks; workload: 80 queries, k=20\n\n",
		ix.Len(), ix.Tree().Store().Len())

	algorithms := []string{"bbss", "fpss", "crss", "woptss"}
	lambdas := []float64{1, 5, 10, 20}

	fmt.Printf("%-8s", "λ (q/s)")
	for _, a := range algorithms {
		fmt.Printf("%12s", a)
	}
	fmt.Println("   (mean response, ms)")
	for _, l := range lambdas {
		fmt.Printf("%-8g", l)
		for _, a := range algorithms {
			run, err := ix.Simulate(core.SimulatedWorkload{
				Algorithm: a, K: 20, Queries: queries, ArrivalRate: l,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%12.1f", run.MeanResponse*1000)
		}
		fmt.Println()
	}

	// Device-level view at the heaviest load for the two extremes.
	fmt.Println("\ndevice utilization at λ=20:")
	for _, a := range []string{"fpss", "crss"} {
		run, err := ix.Simulate(core.SimulatedWorkload{
			Algorithm: a, K: 20, Queries: queries, ArrivalRate: 20,
		})
		if err != nil {
			log.Fatal(err)
		}
		var maxDisk float64
		for _, d := range run.Disks {
			if d.Utilization > maxDisk {
				maxDisk = d.Utilization
			}
		}
		fmt.Printf("  %-5s: busiest disk %.0f%%, bus %.0f%%, CPU %.0f%%\n",
			a, maxDisk*100, run.BusUtil*100, run.CPUUtil*100)
	}
	fmt.Println("\nCRSS keeps response times close to the WOPTSS bound as load grows;")
	fmt.Println("FPSS degrades fastest because it has no control over fetched pages.")

	// The simulation above runs on a virtual clock. The same queries can
	// be served for real: the concurrent engine runs one goroutine per
	// disk and admits many client goroutines at once.
	eng, err := ix.NewEngine(core.EngineConfig{CachePages: 512})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	// While the engine runs, its live snapshot (counters, per-disk
	// gauges, latency percentiles) is scrapable from /debug/vars, and
	// pprof profiles from /debug/pprof.
	if srv, err := obs.StartDebugServer("127.0.0.1:0"); err == nil {
		defer func() {
			if err := srv.Close(); err != nil {
				log.Printf("debug server: %v", err)
			}
		}()
		eng.PublishExpvar("engine")
		fmt.Printf("\ndebug server: http://%s/debug/vars\n", srv.Addr())
	}

	const clients = 8
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(queries); i += clients {
				if _, _, err := eng.KNN(context.Background(), queries[i], 20, "crss"); err != nil {
					log.Fatal(err)
				}
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	st := eng.Stats()
	fmt.Printf("\nreal concurrent engine: %d queries from %d clients in %v (%.0f q/s, %d page fetches)\n",
		st.Queries, clients, elapsed.Round(time.Millisecond),
		float64(st.Queries)/elapsed.Seconds(), st.PagesFetched)

	// The engine's observability snapshot: how well the proximity-index
	// declustering spread the load, and the tail latencies.
	s := eng.Snapshot()
	fmt.Printf("disk balance ratio %.2f (busiest/mean; 1.0 = perfectly declustered)\n", s.BalanceRatio)
	fmt.Printf("query latency p50/p95/p99: %v / %v / %v\n",
		asDuration(s.QueryLatency.P50()), asDuration(s.QueryLatency.P95()), asDuration(s.QueryLatency.P99()))
	fmt.Printf("fetch latency p50/p95/p99: %v / %v / %v\n",
		asDuration(s.FetchLatency.P50()), asDuration(s.FetchLatency.P95()), asDuration(s.FetchLatency.P99()))
}

func asDuration(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond)
}
