// GIS: nearest-facility and range queries over geographic point data —
// the paper's evaluation domain (Sequoia 2000 California places, TIGER
// road intersections). The example indexes a synthetic road-intersection
// map, then answers the two similarity-query types of the paper:
//
//   - range query (Definition 1): all intersections within a radius,
//   - k-NN query (Definition 2): the k closest intersections,
//
// and shows how the k-NN-as-range-series workaround wastes I/O compared
// to CRSS, motivating the paper's approach.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// A Long-Beach-like street map: locally regular intersections.
	pts := dataset.LongBeachLike(30000, 11)
	ix, err := core.NewIndex(core.IndexConfig{Dim: 2, NumDisks: 8, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	if err := ix.InsertAll(pts, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("street map: %d intersections, %d pages on 8 disks\n\n", ix.Len(), ix.Tree().Store().Len())

	depot := core.Point{0.48, 0.52} // a dispatch center downtown

	// Range query: every intersection within 0.02 of the depot
	// (e.g. a service radius).
	within, nodes, err := ix.RangeSearch(depot, 0.02)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("range query r=0.02: %d intersections, %d node accesses\n", len(within), nodes)

	// k-NN: the 5 closest intersections (e.g. route a crew).
	res, stats, err := ix.KNN(depot, 5, "crss")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n5 nearest intersections (CRSS):")
	for i, r := range res {
		fmt.Printf("  #%d intersection %-6d at (%.4f, %.4f), %.4f away\n",
			i+1, r.Object, r.Rect.Lo[0], r.Rect.Lo[1], math.Sqrt(r.DistSq))
	}
	fmt.Printf("CRSS I/O: %d node accesses in %d rounds\n\n", stats.NodesVisited, stats.Batches)

	// The naive alternative the paper warns about (§2.3): turning k-NN
	// into a series of range queries with guessed radii.
	_, eps, err := ix.KNN(depot, 5, "eps-series")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k-NN as growing-ε range series: %d node accesses (%.1f× CRSS)\n",
		eps.NodesVisited, float64(eps.NodesVisited)/float64(stats.NodesVisited))

	// Where the answers actually came from: per-disk access profile —
	// declustering spreads a single query's I/O across the array.
	fmt.Println("\nCRSS per-disk accesses for this query:")
	for d, c := range stats.PerDisk {
		fmt.Printf("  disk %d: %d\n", d, c)
	}
}
