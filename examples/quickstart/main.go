// Quickstart: build a disk-array similarity index, run a k-NN query with
// the paper's CRSS algorithm, and compare it against the other three
// algorithms on node accesses and simulated response time.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
)

func main() {
	log.SetFlags(0)

	// 1. An index over a 10-disk RAID-0 array, 2-d data.
	ix, err := core.NewIndex(core.IndexConfig{Dim: 2, NumDisks: 10, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Load 20,000 skewed points (a stand-in for the paper's
	//    California places set) — insertions are incremental, exactly
	//    like the paper builds its trees.
	pts := dataset.CaliforniaLike(20000, 42)
	if err := ix.InsertAll(pts, 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d points across %d pages on 10 disks\n\n",
		ix.Len(), ix.Tree().Store().Len())

	// 3. Ask for the 10 nearest neighbors of a query point.
	q := core.Point{0.61, 0.33}
	res, stats, err := ix.KNN(q, 10, "crss")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CRSS answered k=10 with %d node accesses in %d parallel rounds:\n",
		stats.NodesVisited, stats.Batches)
	for i, r := range res {
		fmt.Printf("  #%-2d object %-6d dist %.5f\n", i+1, r.Object, math.Sqrt(r.DistSq))
	}

	// 4. Compare all algorithms: accesses and simulated response time.
	fmt.Printf("\n%-12s %14s %16s %20s\n", "algorithm", "node accesses", "parallel rounds", "sim. response (ms)")
	for _, name := range core.Algorithms() {
		_, s, err := ix.KNN(q, 10, name)
		if err != nil {
			log.Fatal(err)
		}
		run, err := ix.Simulate(core.SimulatedWorkload{
			Algorithm: name, K: 10, Queries: []core.Point{q},
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %14d %16d %20.2f\n",
			name, s.NodesVisited, s.Batches, run.MeanResponse*1000)
	}
	fmt.Println("\nWOPTSS is the oracle lower bound; CRSS is the practical recommendation.")
}
