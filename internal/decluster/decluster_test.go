package decluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func rect(x1, y1, x2, y2 float64) geom.Rect {
	return geom.NewRect(geom.Point{x1, y1}, geom.Point{x2, y2})
}

var unitSpace = rect(0, 0, 10, 10)

func TestSegmentProximityShape(t *testing.T) {
	// Identical overlap scores higher than mere touch.
	full := segmentProximity(0, 1, 0, 1, 1)
	touch := segmentProximity(0, 1, 1, 2, 1)
	gap := segmentProximity(0, 1, 1.5, 2, 1)
	farAway := segmentProximity(0, 1, 5, 6, 1)
	if !(full > touch && touch > gap && gap > farAway) {
		t.Errorf("ordering violated: %g %g %g %g", full, touch, gap, farAway)
	}
	if farAway != 0 {
		t.Errorf("distant segments proximity = %g, want 0", farAway)
	}
}

func TestProximityOrdering(t *testing.T) {
	a := rect(0, 0, 2, 2)
	overlapping := rect(1, 1, 3, 3)
	adjacent := rect(2, 0, 4, 2)
	distant := rect(8, 8, 9, 9)
	po := Proximity(a, overlapping, unitSpace, true)
	pa := Proximity(a, adjacent, unitSpace, true)
	pd := Proximity(a, distant, unitSpace, true)
	if !(po > pa && pa > pd) {
		t.Errorf("proximity ordering violated: overlap=%g adjacent=%g distant=%g", po, pa, pd)
	}
}

// Property: proximity is symmetric and non-negative.
func TestProximitySymmetryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		mk := func() geom.Rect {
			x, y := rnd.Float64()*10, rnd.Float64()*10
			return rect(x, y, x+rnd.Float64()*3, y+rnd.Float64()*3)
		}
		a, b := mk(), mk()
		pab := Proximity(a, b, unitSpace, true)
		pba := Proximity(b, a, unitSpace, true)
		return pab >= 0 && math.Abs(pab-pba) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestProximityIndexAvoidsProximalDisk(t *testing.T) {
	state := NewArrayState(3)
	state.Space = unitSpace
	state.HasSpace = true
	newRect := rect(0, 0, 2, 2)
	siblings := []Sibling{
		{Page: 1, Rect: rect(1, 1, 3, 3), Disk: 0},   // overlaps the new node
		{Page: 2, Rect: rect(4, 4, 5, 5), Disk: 1},   // moderate distance
		{Page: 3, Rect: rect(9, 9, 10, 10), Disk: 2}, // far away
	}
	got := ProximityIndex{}.Assign(newRect, siblings, state)
	if got != 2 {
		t.Errorf("PI assigned disk %d, want 2 (least proximal)", got)
	}
}

func TestProximityIndexTieBreaksOnLoad(t *testing.T) {
	state := NewArrayState(3)
	state.PagesPerDisk = []int{5, 2, 7}
	// No siblings: all proximities zero; expect the least-loaded disk.
	got := ProximityIndex{}.Assign(rect(0, 0, 1, 1), nil, state)
	if got != 1 {
		t.Errorf("tie-break disk = %d, want 1", got)
	}
}

func TestRoundRobinCycles(t *testing.T) {
	p := &RoundRobin{}
	state := NewArrayState(3)
	want := []int{0, 1, 2, 0, 1, 2}
	for i, w := range want {
		if got := p.Assign(rect(0, 0, 1, 1), nil, state); got != w {
			t.Errorf("step %d: disk %d, want %d", i, got, w)
		}
	}
}

func TestRandomIsSeededAndInRange(t *testing.T) {
	state := NewArrayState(4)
	a := NewRandom(42)
	b := NewRandom(42)
	for i := 0; i < 50; i++ {
		da := a.Assign(rect(0, 0, 1, 1), nil, state)
		db := b.Assign(rect(0, 0, 1, 1), nil, state)
		if da != db {
			t.Fatal("same seed, different sequence")
		}
		if da < 0 || da >= 4 {
			t.Fatalf("disk %d out of range", da)
		}
	}
}

func TestDataBalancePicksEmptiest(t *testing.T) {
	state := NewArrayState(3)
	state.PagesPerDisk = []int{4, 1, 3}
	if got := (DataBalance{}).Assign(rect(0, 0, 1, 1), nil, state); got != 1 {
		t.Errorf("disk = %d, want 1", got)
	}
}

func TestAreaBalancePicksSmallest(t *testing.T) {
	state := NewArrayState(3)
	state.AreaPerDisk = []float64{10, 30, 5}
	if got := (AreaBalance{}).Assign(rect(0, 0, 1, 1), nil, state); got != 2 {
		t.Errorf("disk = %d, want 2", got)
	}
}

func TestMinOverlapAvoidsOverlappingDisk(t *testing.T) {
	state := NewArrayState(2)
	newRect := rect(0, 0, 2, 2)
	siblings := []Sibling{
		{Page: 1, Rect: rect(1, 1, 3, 3), Disk: 0},
		{Page: 2, Rect: rect(5, 5, 6, 6), Disk: 1},
	}
	if got := (MinOverlap{}).Assign(newRect, siblings, state); got != 1 {
		t.Errorf("disk = %d, want 1", got)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"proximity", "pi", "roundrobin", "rr", "random", "databalance", "areabalance", "minoverlap"} {
		p, err := ByName(name, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
		if p == nil {
			t.Errorf("ByName(%q) returned nil", name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Error("ByName accepted unknown policy")
	}
}

func TestAllReturnsDistinctPolicies(t *testing.T) {
	ps := All(1)
	if len(ps) != 6 {
		t.Fatalf("All returned %d policies", len(ps))
	}
	names := map[string]bool{}
	for _, p := range ps {
		if names[p.Name()] {
			t.Errorf("duplicate policy %s", p.Name())
		}
		names[p.Name()] = true
	}
}

// Property: every policy returns an in-range disk for arbitrary inputs.
func TestPoliciesRangeProperty(t *testing.T) {
	f := func(seed int64, disksRaw uint8, nSibsRaw uint8) bool {
		disks := int(disksRaw)%12 + 1
		nSibs := int(nSibsRaw) % 20
		rnd := rand.New(rand.NewSource(seed))
		state := NewArrayState(disks)
		state.Space = unitSpace
		state.HasSpace = true
		for d := range state.PagesPerDisk {
			state.PagesPerDisk[d] = rnd.Intn(50)
			state.AreaPerDisk[d] = rnd.Float64() * 100
		}
		var sibs []Sibling
		for i := 0; i < nSibs; i++ {
			x, y := rnd.Float64()*9, rnd.Float64()*9
			sibs = append(sibs, Sibling{
				Page: rtree.PageID(i + 1),
				Rect: rect(x, y, x+rnd.Float64(), y+rnd.Float64()),
				Disk: rnd.Intn(disks),
			})
		}
		newRect := rect(1, 1, 2, 2)
		for _, p := range All(seed) {
			d := p.Assign(newRect, sibs, state)
			if d < 0 || d >= disks {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
