// Package decluster implements the page-to-disk assignment heuristics
// for a parallel (multiplexed) R*-tree on a RAID-0 array, as surveyed in
// Papadopoulos & Manolopoulos (SIGMOD 1998, Section 2.2): upon a node
// split, the newly created page must be placed on one of the disks.
//
// The heuristics implemented are the ones the paper compares:
//
//   - ProximityIndex (PI) — the Kamel–Faloutsos (SIGMOD 1992) rule the
//     paper adopts: assign the new node to the disk whose resident
//     sibling pages are least proximal to the new node's MBR, so that
//     pages likely to be needed by the same query live on different
//     disks.
//   - RoundRobin, Random — the classic cheap baselines.
//   - DataBalance — the disk currently holding the fewest pages.
//   - AreaBalance — the disk currently covering the least total MBR area.
//   - MinOverlap — a geometric cousin of PI using raw MBR overlap.
//
// All policies are deterministic given their inputs (Random takes a
// seeded generator), so experiment runs are reproducible.
package decluster

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// Sibling describes an already-placed page that shares the new page's
// parent node.
type Sibling struct {
	Page rtree.PageID
	Rect geom.Rect
	Disk int
}

// ArrayState carries the running per-disk statistics policies may use.
type ArrayState struct {
	NumDisks     int
	PagesPerDisk []int     // live pages on each disk
	AreaPerDisk  []float64 // total MBR area resident on each disk
	Space        geom.Rect // current data-space bounds, for normalization
	HasSpace     bool
}

// NewArrayState initializes state for an array of n disks.
func NewArrayState(n int) *ArrayState {
	return &ArrayState{
		NumDisks:     n,
		PagesPerDisk: make([]int, n),
		AreaPerDisk:  make([]float64, n),
	}
}

// Policy chooses a disk for a newly created page.
type Policy interface {
	// Name identifies the policy in experiment output.
	Name() string
	// Assign returns the target disk in [0, state.NumDisks) for a new
	// page with MBR r whose sibling pages are given with their disks.
	Assign(r geom.Rect, siblings []Sibling, state *ArrayState) int
}

// segmentProximity returns the proximity of two intervals [a1,b1] and
// [a2,b2], normalized by the data-space extent on that axis. Overlapping
// intervals have proximity in (1, 2]; disjoint intervals decay linearly
// from 1 to 0 as the gap grows to the full axis extent. The formulation
// follows the intent of the Kamel–Faloutsos proximity index — two pages
// likely to be touched by one range query score high — with a simpler
// closed form (documented substitution; the induced preference order is
// the same: overlap > adjacency > distance).
func segmentProximity(a1, b1, a2, b2, extent float64) float64 {
	if extent <= 0 {
		extent = 1
	}
	lo := math.Max(a1, a2)
	hi := math.Min(b1, b2)
	if hi >= lo { // overlapping or touching
		return 1 + (hi-lo)/extent
	}
	gap := (lo - hi) / extent
	if gap >= 1 {
		return 0
	}
	return 1 - gap
}

// Proximity returns the proximity index of two rectangles within the
// given data space: the product of per-axis segment proximities. A pair
// of overlapping rectangles scores highest; rectangles far apart on any
// axis score near zero (a range query must hit both in every axis to
// fetch both pages).
func Proximity(a, b geom.Rect, space geom.Rect, hasSpace bool) float64 {
	p := 1.0
	for i := range a.Lo {
		extent := 1.0
		if hasSpace {
			extent = space.Hi[i] - space.Lo[i]
		}
		p *= segmentProximity(a.Lo[i], a.Hi[i], b.Lo[i], b.Hi[i], extent)
	}
	return p
}

// ProximityIndex is the paper's declustering method of choice.
type ProximityIndex struct{}

// Name implements Policy.
func (ProximityIndex) Name() string { return "proximity" }

// Assign implements Policy: pick the disk minimizing the summed
// proximity between the new MBR and the sibling MBRs resident on that
// disk. Ties (including disks with no siblings) break toward the disk
// with fewer pages, then the lower index — keeping the assignment
// deterministic and roughly balanced.
func (ProximityIndex) Assign(r geom.Rect, siblings []Sibling, state *ArrayState) int {
	prox := make([]float64, state.NumDisks)
	for _, s := range siblings {
		if s.Disk >= 0 && s.Disk < state.NumDisks {
			prox[s.Disk] += Proximity(r, s.Rect, state.Space, state.HasSpace)
		}
	}
	best := 0
	for d := 1; d < state.NumDisks; d++ {
		switch {
		case prox[d] < prox[best]:
			best = d
		//lint:allow floatcmp exact proximity tie falls through to the load tie-break
		case prox[d] == prox[best] && state.PagesPerDisk[d] < state.PagesPerDisk[best]:
			best = d
		}
	}
	return best
}

// RoundRobin cycles through the disks.
type RoundRobin struct{ next int }

// Name implements Policy.
func (*RoundRobin) Name() string { return "roundrobin" }

// Assign implements Policy.
func (p *RoundRobin) Assign(_ geom.Rect, _ []Sibling, state *ArrayState) int {
	d := p.next % state.NumDisks
	p.next = (p.next + 1) % state.NumDisks
	return d
}

// Random assigns uniformly at random from a seeded source.
type Random struct{ Rnd *rand.Rand }

// NewRandom returns a Random policy with the given seed.
func NewRandom(seed int64) *Random {
	return &Random{Rnd: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*Random) Name() string { return "random" }

// Assign implements Policy.
func (p *Random) Assign(_ geom.Rect, _ []Sibling, state *ArrayState) int {
	return p.Rnd.Intn(state.NumDisks)
}

// DataBalance picks the disk with the fewest resident pages.
type DataBalance struct{}

// Name implements Policy.
func (DataBalance) Name() string { return "databalance" }

// Assign implements Policy.
func (DataBalance) Assign(_ geom.Rect, _ []Sibling, state *ArrayState) int {
	best := 0
	for d := 1; d < state.NumDisks; d++ {
		if state.PagesPerDisk[d] < state.PagesPerDisk[best] {
			best = d
		}
	}
	return best
}

// AreaBalance picks the disk covering the least total MBR area.
type AreaBalance struct{}

// Name implements Policy.
func (AreaBalance) Name() string { return "areabalance" }

// Assign implements Policy.
func (AreaBalance) Assign(_ geom.Rect, _ []Sibling, state *ArrayState) int {
	best := 0
	for d := 1; d < state.NumDisks; d++ {
		if state.AreaPerDisk[d] < state.AreaPerDisk[best] {
			best = d
		}
	}
	return best
}

// MinOverlap picks the disk whose resident siblings share the least raw
// MBR overlap area with the new node.
type MinOverlap struct{}

// Name implements Policy.
func (MinOverlap) Name() string { return "minoverlap" }

// Assign implements Policy.
func (MinOverlap) Assign(r geom.Rect, siblings []Sibling, state *ArrayState) int {
	ov := make([]float64, state.NumDisks)
	for _, s := range siblings {
		if s.Disk >= 0 && s.Disk < state.NumDisks {
			ov[s.Disk] += r.OverlapArea(s.Rect)
		}
	}
	best := 0
	for d := 1; d < state.NumDisks; d++ {
		switch {
		case ov[d] < ov[best]:
			best = d
		//lint:allow floatcmp exact overlap tie falls through to the load tie-break
		case ov[d] == ov[best] && state.PagesPerDisk[d] < state.PagesPerDisk[best]:
			best = d
		}
	}
	return best
}

// ByName returns a fresh policy instance for a name used on command
// lines and in experiment configs.
func ByName(name string, seed int64) (Policy, error) {
	switch name {
	case "proximity", "pi":
		return ProximityIndex{}, nil
	case "roundrobin", "rr":
		return &RoundRobin{}, nil
	case "random":
		return NewRandom(seed), nil
	case "databalance":
		return DataBalance{}, nil
	case "areabalance":
		return AreaBalance{}, nil
	case "minoverlap":
		return MinOverlap{}, nil
	default:
		return nil, fmt.Errorf("decluster: unknown policy %q", name)
	}
}

// All returns one instance of every policy, for ablation sweeps.
func All(seed int64) []Policy {
	return []Policy{
		ProximityIndex{},
		&RoundRobin{},
		NewRandom(seed),
		DataBalance{},
		AreaBalance{},
		MinOverlap{},
	}
}
