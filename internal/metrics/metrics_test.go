package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("empty mean != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample sd != 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138) > 0.01 {
		t.Errorf("sd = %g", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {-5, 1}, {105, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); got != c.want {
			t.Errorf("P%.0f = %g, want %g", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile != 0")
	}
	// Interpolation: P50 of {1,2} is 1.5.
	if got := Percentile([]float64{2, 1}, 50); got != 1.5 {
		t.Errorf("interpolated P50 = %g", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 100})
	if s.N != 5 || s.Min != 1 || s.Max != 100 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summary N != 0")
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

// TestSummarizeDoesNotMutate is the regression test for the
// single-sort rewrite: Summarize must sort a private copy, never the
// caller's slice.
func TestSummarizeDoesNotMutate(t *testing.T) {
	rnd := rand.New(rand.NewSource(9))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rnd.NormFloat64()
	}
	orig := append([]float64(nil), xs...)
	s := Summarize(xs)
	for i := range xs {
		if xs[i] != orig[i] {
			t.Fatalf("Summarize reordered the input at %d", i)
		}
	}
	// And the sorted-once derivation matches the reference helpers.
	if s.P50 != Percentile(xs, 50) || s.P95 != Percentile(xs, 95) {
		t.Errorf("percentiles diverge from Percentile: %+v", s)
	}
	min, max := xs[0], xs[0]
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if s.Min != min || s.Max != max {
		t.Errorf("min/max diverge: got %g/%g want %g/%g", s.Min, s.Max, min, max)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("ratio wrong")
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("divide by zero not NaN")
	}
}

// Property: Min <= P50 <= P95 <= Max and Mean within [Min, Max].
func TestSummaryOrderingProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%50 + 1
		rnd := rand.New(rand.NewSource(seed))
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rnd.NormFloat64() * 100
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Mean >= s.Min && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
