// Package metrics provides the small statistical helpers the experiment
// harness uses to aggregate per-query measurements into the numbers the
// paper reports (means over 100 queries, ratios to WOPTSS, speed-ups).
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	Max    float64
	P50    float64
	P95    float64
}

// Mean returns the arithmetic mean (0 for an empty sample).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) using linear
// interpolation between order statistics. The input is copied, never
// mutated.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p)
}

// percentileSorted is Percentile over an already-sorted sample.
func percentileSorted(sorted []float64, p float64) float64 {
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summarize computes a full Summary of the sample, sorting one private
// copy and deriving Min/Max and both percentiles from it; the caller's
// slice is left untouched.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    percentileSorted(sorted, 50),
		P95:    percentileSorted(sorted, 95),
	}
}

// Ratio returns a/b, guarding the b == 0 case with NaN (so downstream
// formatting shows the degenerate case rather than +Inf surprises).
func Ratio(a, b float64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return a / b
}

// String renders the summary compactly for logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}
