package geom

// Sphere is a bounding hyper-sphere: the region descriptor added to
// directory entries by the SR-tree (Katayama & Satoh, SIGMOD 1997), one
// of the access methods the paper lists as supported "with some
// modifications". A sphere with a nil Center is absent.
type Sphere struct {
	Center Point
	Radius float64
}

// Valid reports whether the sphere is present.
func (s Sphere) Valid() bool { return s.Center != nil }

// Contains reports whether p lies inside the sphere (with tolerance eps
// for accumulated floating-point error in maintained radii).
func (s Sphere) Contains(p Point, eps float64) bool {
	return s.Center.Dist(p) <= s.Radius+eps
}

// MinDistSq returns the squared minimum distance from p to the sphere:
// max(0, |p-c| - r)². Zero when p is inside.
func (s Sphere) MinDistSq(p Point) float64 {
	d := s.Center.Dist(p) - s.Radius
	if d <= 0 {
		return 0
	}
	return d * d
}

// MaxDistSq returns the squared maximum distance from p to any point of
// the sphere: (|p-c| + r)².
func (s Sphere) MaxDistSq(p Point) float64 {
	d := s.Center.Dist(p) + s.Radius
	return d * d
}

// Union returns the smallest sphere enclosing both input spheres
// (exactly, along the line of centers).
func (s Sphere) Union(o Sphere) Sphere {
	if !s.Valid() {
		return o
	}
	if !o.Valid() {
		return s
	}
	d := s.Center.Dist(o.Center)
	// One sphere may already contain the other.
	if d+o.Radius <= s.Radius {
		return Sphere{Center: s.Center.Clone(), Radius: s.Radius}
	}
	if d+s.Radius <= o.Radius {
		return Sphere{Center: o.Center.Clone(), Radius: o.Radius}
	}
	r := (d + s.Radius + o.Radius) / 2
	// New center sits on the segment between the two centers.
	t := 0.5
	if d > 0 {
		t = (r - s.Radius) / d
	}
	c := make(Point, len(s.Center))
	for i := range c {
		c[i] = s.Center[i] + (o.Center[i]-s.Center[i])*t
	}
	return Sphere{Center: c, Radius: r}
}

// WeightedCentroid returns the weighted mean of the given centers — the
// SR-tree keeps each directory sphere centered at the centroid of the
// points below it, which the per-entry object counts make maintainable
// without touching the data.
func WeightedCentroid(centers []Point, weights []int) Point {
	if len(centers) == 0 {
		return nil
	}
	dim := len(centers[0])
	c := make(Point, dim)
	total := 0
	for i, p := range centers {
		w := weights[i]
		total += w
		for d := 0; d < dim; d++ {
			c[d] += p[d] * float64(w)
		}
	}
	if total == 0 {
		return centers[0].Clone()
	}
	for d := 0; d < dim; d++ {
		c[d] /= float64(total)
	}
	return c
}

// CoveringRadius returns the smallest radius around center that covers
// every input sphere: max_i (|center - c_i| + r_i).
func CoveringRadius(center Point, spheres []Sphere) float64 {
	var r float64
	for _, s := range spheres {
		if !s.Valid() {
			continue
		}
		if v := center.Dist(s.Center) + s.Radius; v > r {
			r = v
		}
	}
	return r
}

// SphereRectMin intersects the two lower bounds of an SR-tree entry:
// the tightest admissible Dmin² is the larger of the rectangle's and
// the sphere's.
func SphereRectMin(p Point, r Rect, s Sphere) float64 {
	m := MinDistSq(p, r)
	if s.Valid() {
		if sm := s.MinDistSq(p); sm > m {
			m = sm
		}
	}
	return m
}

// SphereRectMax intersects the two upper bounds: the tightest Dmax² is
// the smaller of the rectangle's and the sphere's.
func SphereRectMax(p Point, r Rect, s Sphere) float64 {
	m := MaxDistSq(p, r)
	if s.Valid() {
		if sm := s.MaxDistSq(p); sm < m {
			m = sm
		}
	}
	return m
}

// SphereEps is the tolerance used when verifying maintained spheres in
// invariant checks (radii accumulate floating-point error through
// centroid updates).
const SphereEps = 1e-9
