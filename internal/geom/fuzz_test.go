package geom

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzGeomMetrics checks the ordering the paper's pruning rules depend
// on — 0 ≤ Dmin² ≤ Dmm² ≤ Dmax² for every point/rectangle pair — plus
// the containment, degenerate-rectangle and sphere-predicate identities
// that tie the three metrics together. A violation of any of these
// breaks branch-and-bound correctness silently (wrong prune, wrong
// result), which is why they get a fuzzer rather than a few examples.
func FuzzGeomMetrics(f *testing.F) {
	f.Add(mkCorpus(2, 1, 2, 0, 0, 3, 4), byte(2))       // point outside rect
	f.Add(mkCorpus(1, 1, 0, 0, 2, 2, 9), byte(2))       // point inside rect
	f.Add(mkCorpus(5, -3, 5, -3, 5, -3, 1), byte(2))    // degenerate rect == point
	f.Add(mkCorpus(1e100, -1e100, 0, 0, 1, 1), byte(1)) // huge magnitudes
	f.Fuzz(func(t *testing.T, data []byte, dimByte byte) {
		dim := 1 + int(dimByte)%6
		vals := make([]float64, 0, 3*dim+1)
		for i := 0; i+8 <= len(data) && len(vals) < 3*dim+1; i += 8 {
			v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
				t.Skip("out-of-domain coordinate")
			}
			vals = append(vals, v)
		}
		if len(vals) < 3*dim+1 {
			t.Skip("not enough input")
		}
		p := Point(vals[:dim])
		lo := make(Point, dim)
		hi := make(Point, dim)
		for d := 0; d < dim; d++ {
			a, b := vals[dim+2*d], vals[dim+2*d+1]
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		r := Rect{Lo: lo, Hi: hi}
		radiusSq := math.Abs(vals[3*dim])

		dmin := MinDistSq(p, r)
		dmm := MinMaxDistSq(p, r)
		dmax := MaxDistSq(p, r)

		if dmin < 0 || dmm < 0 || dmax < 0 {
			t.Fatalf("negative metric: Dmin²=%g Dmm²=%g Dmax²=%g", dmin, dmm, dmax)
		}
		// The three metrics sum the same per-axis squared offsets in
		// different selections, so cross-comparisons need a relative
		// tolerance for the differing summation order.
		if !leqApprox(dmin, dmm) {
			t.Fatalf("Dmin² %g > Dmm² %g for p=%v r=%v", dmin, dmm, p, r)
		}
		if !leqApprox(dmm, dmax) {
			t.Fatalf("Dmm² %g > Dmax² %g for p=%v r=%v", dmm, dmax, p, r)
		}

		// A contained point has Dmin² exactly 0: every axis contributes
		// nothing.
		if r.ContainsPoint(p) && dmin != 0 {
			t.Fatalf("p=%v inside r=%v but Dmin²=%g", p, r, dmin)
		}

		// The batch kernels promise BIT-identical results to the scalar
		// kernels — exact equality, no tolerance.
		soa := buildSoA([]Rect{r})
		batch := make([]float64, 3)
		MinDistSqBatch(p, &soa, batch[0:1])
		MinMaxDistSqBatch(p, &soa, batch[1:2])
		MaxDistSqBatch(p, &soa, batch[2:3])
		if !bitEq(batch[0], dmin) || !bitEq(batch[1], dmm) || !bitEq(batch[2], dmax) {
			t.Fatalf("batch/scalar divergence: batch=(%g,%g,%g) scalar=(%g,%g,%g) for p=%v r=%v",
				batch[0], batch[1], batch[2], dmin, dmm, dmax, p, r)
		}

		// Against the degenerate rectangle of a point, all three metrics
		// collapse to the plain squared distance, computed from the same
		// per-axis terms in the same order — exact equality holds.
		q := Point(vals[dim : 2*dim])
		pr := PointRect(q)
		want := p.DistSq(q)
		if got := MinDistSq(p, pr); got != want {
			t.Fatalf("Dmin² to degenerate rect: got %g, want %g", got, want)
		}
		if got := MaxDistSq(p, pr); got != want {
			t.Fatalf("Dmax² to degenerate rect: got %g, want %g", got, want)
		}

		// Root/squared consistency.
		if got, want := MinDist(p, r), math.Sqrt(dmin); got != want {
			t.Fatalf("MinDist %g != Sqrt(MinDistSq) %g", got, want)
		}
		if got, want := MaxDist(p, r), math.Sqrt(dmax); got != want {
			t.Fatalf("MaxDist %g != Sqrt(MaxDistSq) %g", got, want)
		}

		// The sphere predicates are definitionally tied to the metrics.
		if got, want := SphereIntersectsSq(p, r, radiusSq), dmin <= radiusSq; got != want {
			t.Fatalf("SphereIntersectsSq=%v, Dmin²=%g radius²=%g", got, dmin, radiusSq)
		}
		if got, want := SphereContainsSq(p, r, radiusSq), dmax <= radiusSq; got != want {
			t.Fatalf("SphereContainsSq=%v, Dmax²=%g radius²=%g", got, dmax, radiusSq)
		}
		if SphereContainsSq(p, r, radiusSq) && !SphereIntersectsSq(p, r, radiusSq) {
			t.Fatalf("sphere contains r but does not intersect it (radius²=%g)", radiusSq)
		}
	})
}

// leqApprox is a ≤ b up to a relative tolerance for the reordered
// floating-point summations inside the metrics.
func leqApprox(a, b float64) bool {
	tol := 1e-9 * math.Max(math.Abs(a), math.Abs(b))
	return a <= b+tol
}

// mkCorpus packs float64 coordinates into the little-endian byte stream
// the fuzz target reads.
func mkCorpus(vals ...float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return buf
}
