package geom

import (
	"encoding/binary"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// bitEq reports bit-level equality of two floats with all NaNs
// identified: NaN == NaN regardless of payload, +0 != -0. IEEE 754
// leaves NaN payload propagation to the hardware (register operand
// order picks the surviving payload on x86), so payloads are the one
// place the batch and scalar kernels may differ bitwise; everything
// else must match exactly.
func bitEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// buildSoA packs the given rectangles into a RectSoA view.
func buildSoA(rects []Rect) RectSoA {
	if len(rects) == 0 {
		return RectSoA{}
	}
	dim := rects[0].Dim()
	s := MakeRectSoA(dim, len(rects))
	for i, r := range rects {
		for a := 0; a < dim; a++ {
			s.Lo[a][i] = r.Lo[a]
			s.Hi[a][i] = r.Hi[a]
		}
	}
	return s
}

// buildSphereSoA packs the given spheres into a SphereSoA view. All
// spheres must be valid and share one dimensionality.
func buildSphereSoA(spheres []Sphere) SphereSoA {
	if len(spheres) == 0 {
		return SphereSoA{}
	}
	dim := spheres[0].Center.Dim()
	s := MakeSphereSoA(dim, len(spheres))
	for i, sp := range spheres {
		for a := 0; a < dim; a++ {
			s.Center[a][i] = sp.Center[a]
		}
		s.Radius[i] = sp.Radius
	}
	return s
}

// checkRectParity asserts every batch rect kernel agrees bit-for-bit
// with its scalar counterpart on the given query point and batch.
func checkRectParity(t *testing.T, p Point, rects []Rect) {
	t.Helper()
	soa := buildSoA(rects)
	n := len(rects)
	got := make([]float64, n)

	MinDistSqBatch(p, &soa, got)
	for i, r := range rects {
		if want := MinDistSq(p, r); !bitEq(got[i], want) {
			t.Fatalf("MinDistSqBatch[%d] = %x, scalar %x (p=%v r=%v)",
				i, math.Float64bits(got[i]), math.Float64bits(want), p, r)
		}
	}
	MinMaxDistSqBatch(p, &soa, got)
	for i, r := range rects {
		if want := MinMaxDistSq(p, r); !bitEq(got[i], want) {
			t.Fatalf("MinMaxDistSqBatch[%d] = %x, scalar %x (p=%v r=%v)",
				i, math.Float64bits(got[i]), math.Float64bits(want), p, r)
		}
	}
	MaxDistSqBatch(p, &soa, got)
	for i, r := range rects {
		if want := MaxDistSq(p, r); !bitEq(got[i], want) {
			t.Fatalf("MaxDistSqBatch[%d] = %x, scalar %x (p=%v r=%v)",
				i, math.Float64bits(got[i]), math.Float64bits(want), p, r)
		}
	}
}

// checkSphereParity asserts the sphere batch kernels agree bit-for-bit
// with the scalar Sphere methods and with SphereRectMin/Max.
func checkSphereParity(t *testing.T, p Point, rects []Rect, spheres []Sphere) {
	t.Helper()
	rsoa := buildSoA(rects)
	ssoa := buildSphereSoA(spheres)
	n := len(spheres)
	got := make([]float64, n)
	scratch := make([]float64, n)

	SphereMinDistSqBatch(p, &ssoa, got)
	for i, s := range spheres {
		if want := s.MinDistSq(p); !bitEq(got[i], want) {
			t.Fatalf("SphereMinDistSqBatch[%d] = %x, scalar %x (p=%v s=%+v)",
				i, math.Float64bits(got[i]), math.Float64bits(want), p, s)
		}
	}
	SphereMaxDistSqBatch(p, &ssoa, got)
	for i, s := range spheres {
		if want := s.MaxDistSq(p); !bitEq(got[i], want) {
			t.Fatalf("SphereMaxDistSqBatch[%d] = %x, scalar %x (p=%v s=%+v)",
				i, math.Float64bits(got[i]), math.Float64bits(want), p, s)
		}
	}
	SphereRectMinBatch(p, &rsoa, &ssoa, got, scratch)
	for i := range spheres {
		if want := SphereRectMin(p, rects[i], spheres[i]); !bitEq(got[i], want) {
			t.Fatalf("SphereRectMinBatch[%d] = %x, scalar %x", i,
				math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	SphereRectMaxBatch(p, &rsoa, &ssoa, got, scratch)
	for i := range spheres {
		if want := SphereRectMax(p, rects[i], spheres[i]); !bitEq(got[i], want) {
			t.Fatalf("SphereRectMaxBatch[%d] = %x, scalar %x", i,
				math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	// Nil sphere view: the combined bounds degrade to the rect bounds.
	SphereRectMinBatch(p, &rsoa, nil, got, nil)
	for i, r := range rects {
		if want := MinDistSq(p, r); !bitEq(got[i], want) {
			t.Fatalf("SphereRectMinBatch(nil)[%d] = %x, rect bound %x", i,
				math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
	SphereRectMaxBatch(p, &rsoa, nil, got, nil)
	for i, r := range rects {
		if want := MaxDistSq(p, r); !bitEq(got[i], want) {
			t.Fatalf("SphereRectMaxBatch(nil)[%d] = %x, rect bound %x", i,
				math.Float64bits(got[i]), math.Float64bits(want))
		}
	}
}

// randCoord draws a coordinate from a mix of magnitudes, with occasional
// special values — the batch kernels must track the scalar kernels
// bit-for-bit even on NaN and ±Inf inputs.
func randCoord(rng *rand.Rand) float64 {
	switch rng.Intn(20) {
	case 0:
		return math.NaN()
	case 1:
		return math.Inf(1 - 2*rng.Intn(2))
	case 2:
		return 0
	case 3:
		return math.Copysign(0, -1)
	case 4:
		return rng.NormFloat64() * 1e150
	case 5:
		return rng.NormFloat64() * 1e-150
	default:
		return rng.NormFloat64() * 100
	}
}

func randRect(rng *rand.Rand, dim int) Rect {
	lo := make(Point, dim)
	hi := make(Point, dim)
	for a := 0; a < dim; a++ {
		x, y := randCoord(rng), randCoord(rng)
		if x > y {
			x, y = y, x
		}
		lo[a], hi[a] = x, y
	}
	return Rect{Lo: lo, Hi: hi}
}

func randPoint(rng *rand.Rand, dim int) Point {
	p := make(Point, dim)
	for a := range p {
		p[a] = randCoord(rng)
	}
	return p
}

// TestBatchScalarParityRandom exercises every dimension specialization
// (d=2..4) and the generic fallback (d=1, 5..8) across batch sizes from
// empty to node-sized, on coordinates spanning normal, tiny, huge,
// signed-zero, Inf and NaN values.
func TestBatchScalarParityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1998))
	for dim := 1; dim <= 8; dim++ {
		for _, n := range []int{0, 1, 2, 7, 33, 128} {
			for trial := 0; trial < 25; trial++ {
				p := randPoint(rng, dim)
				rects := make([]Rect, n)
				spheres := make([]Sphere, n)
				for i := range rects {
					rects[i] = randRect(rng, dim)
					spheres[i] = Sphere{Center: randPoint(rng, dim), Radius: math.Abs(rng.NormFloat64() * 10)}
				}
				checkRectParity(t, p, rects)
				checkSphereParity(t, p, rects, spheres)
			}
		}
	}
}

// TestBatchScalarParityFuzzCorpus replays every committed FuzzGeomMetrics
// corpus entry — including the MinMaxDist absorption-bug reproducer —
// through the batch kernels and asserts bit-identity with the scalar
// results. The corpus entries were minimized against real invariant
// violations, so they concentrate on the numerically nastiest inputs.
func TestBatchScalarParityFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzGeomMetrics")
	files, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading corpus dir: %v", err)
	}
	if len(files) == 0 {
		t.Fatal("empty fuzz corpus")
	}
	cases := 0
	for _, f := range files {
		data, dimByte, ok := readCorpusEntry(t, filepath.Join(dir, f.Name()))
		if !ok {
			continue
		}
		p, r, valid := decodeMetricInput(data, dimByte)
		if !valid {
			continue
		}
		cases++
		// A batch holding the corpus rect alone, and a batch mixing it
		// with neighbors (so specializations see it at several lanes).
		checkRectParity(t, p, []Rect{r})
		mixed := []Rect{r, PointRect(p), r, r.Union(PointRect(p)), r}
		checkRectParity(t, p, mixed)
	}
	if cases == 0 {
		t.Fatal("no corpus entry decoded to an in-domain input")
	}
}

// readCorpusEntry parses one Go fuzz corpus file ("go test fuzz v1"
// format) with the FuzzGeomMetrics signature ([]byte, byte).
func readCorpusEntry(t *testing.T, path string) (data []byte, dimByte byte, ok bool) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	lines := strings.Split(string(raw), "\n")
	if len(lines) == 0 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, 0, false
	}
	var haveData, haveByte bool
	for _, ln := range lines[1:] {
		ln = strings.TrimSpace(ln)
		switch {
		case strings.HasPrefix(ln, "[]byte("):
			s, err := strconv.Unquote(strings.TrimSuffix(strings.TrimPrefix(ln, "[]byte("), ")"))
			if err != nil {
				t.Fatalf("%s: bad []byte literal %q: %v", path, ln, err)
			}
			data, haveData = []byte(s), true
		case strings.HasPrefix(ln, "byte("):
			inner := strings.TrimSuffix(strings.TrimPrefix(ln, "byte("), ")")
			if strings.HasPrefix(inner, "'") {
				v, _, _, err := strconv.UnquoteChar(strings.Trim(inner, "'"), '\'')
				if err != nil {
					t.Fatalf("%s: bad byte literal %q: %v", path, ln, err)
				}
				dimByte = byte(v)
			} else {
				v, err := strconv.ParseUint(inner, 0, 8)
				if err != nil {
					t.Fatalf("%s: bad byte literal %q: %v", path, ln, err)
				}
				dimByte = byte(v)
			}
			haveByte = true
		}
	}
	return data, dimByte, haveData && haveByte
}

// decodeMetricInput mirrors FuzzGeomMetrics' input decoding: same
// dimension derivation, same float extraction, same domain filter, same
// corner swap.
func decodeMetricInput(data []byte, dimByte byte) (Point, Rect, bool) {
	dim := 1 + int(dimByte)%6
	vals := make([]float64, 0, 3*dim+1)
	for i := 0; i+8 <= len(data) && len(vals) < 3*dim+1; i += 8 {
		v := math.Float64frombits(binary.LittleEndian.Uint64(data[i:]))
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e150 {
			return nil, Rect{}, false
		}
		vals = append(vals, v)
	}
	if len(vals) < 3*dim+1 {
		return nil, Rect{}, false
	}
	p := Point(vals[:dim])
	lo := make(Point, dim)
	hi := make(Point, dim)
	for d := 0; d < dim; d++ {
		a, b := vals[dim+2*d], vals[dim+2*d+1]
		if a > b {
			a, b = b, a
		}
		lo[d], hi[d] = a, b
	}
	return p, Rect{Lo: lo, Hi: hi}, true
}

// TestMakeRectSoAShape checks the SoA constructors produce the promised
// shapes and that the gather accessor round-trips.
func TestMakeRectSoAShape(t *testing.T) {
	s := MakeRectSoA(3, 5)
	if s.Dim() != 3 || s.Len() != 5 {
		t.Fatalf("dim=%d len=%d", s.Dim(), s.Len())
	}
	r := NewRect(Point{1, 2, 3}, Point{4, 5, 6})
	for a := 0; a < 3; a++ {
		s.Lo[a][2] = r.Lo[a]
		s.Hi[a][2] = r.Hi[a]
	}
	if got := s.Rect(2); !got.Equal(r) {
		t.Fatalf("Rect(2) = %v, want %v", got, r)
	}
	sp := MakeSphereSoA(3, 5)
	if sp.Dim() != 3 || sp.Len() != 5 {
		t.Fatalf("sphere dim=%d len=%d", sp.Dim(), sp.Len())
	}
	empty := RectSoA{}
	if empty.Len() != 0 {
		t.Fatalf("empty Len = %d", empty.Len())
	}
}

// TestBatchDimensionMismatchPanics pins the shape-validation behavior.
func TestBatchDimensionMismatchPanics(t *testing.T) {
	s := MakeRectSoA(2, 3)
	out := make([]float64, 3)
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("dim", func() { MinDistSqBatch(Point{1, 2, 3}, &s, out) })
	mustPanic("out", func() { MinDistSqBatch(Point{1, 2}, &s, out[:1]) })
}
