// Batched distance kernels over a struct-of-arrays rectangle layout.
//
// The similarity-search algorithms spend their CPU budget computing
// Dmin/Dmm/Dmax for every directory entry of a node before any disk
// fetch is scheduled. The scalar kernels above walk one pointer-rich
// Rect at a time: per entry they dereference two slice headers, loop
// over the dimension with bounds checks, and (for Dmm) allocate two
// scratch slices. The batch kernels below take the same inputs laid out
// entry-contiguously per axis (lo[axis][i], hi[axis][i]) and compute a
// whole node's metrics in one branch-light pass — dimension-specialized
// for d = 2..4, with a generic fallback — which is the layout a
// vectorizing compiler wants and, in gc today, what removes the pointer
// chasing, per-entry allocation and most bounds checks.
//
// Parity contract: every batch kernel is BIT-IDENTICAL to its scalar
// counterpart (MinDistSq, MinMaxDistSq, MaxDistSq, Sphere.MinDistSq,
// Sphere.MaxDistSq, SphereRectMin) for every input, including NaN and
// ±Inf coordinates — with all NaNs identified, since IEEE 754 leaves
// NaN payload propagation to the hardware. The kernels replicate the
// scalar operation order axis by axis, so no floating-point
// reassociation can diverge. The contract is enforced by golden tests
// over the committed fuzz corpora and by FuzzGeomMetrics itself; the
// driver/simulator/engine parity suites depend on it.
package geom

import (
	"fmt"
	"math"
)

// RectSoA is a struct-of-arrays view of n axis-aligned rectangles: the
// i-th rectangle spans Lo[a][i]..Hi[a][i] on axis a. All axis slices
// share one length (the batch size). The view is read-only to this
// package; builders typically back all axes with one contiguous
// allocation (see rtree.FlatNode).
type RectSoA struct {
	Lo, Hi [][]float64
}

// Dim returns the dimensionality of the view.
func (r *RectSoA) Dim() int { return len(r.Lo) }

// Len returns the number of rectangles in the view.
func (r *RectSoA) Len() int {
	if len(r.Lo) == 0 {
		return 0
	}
	return len(r.Lo[0])
}

// Rect gathers the i-th rectangle into AoS form (fresh allocation; for
// tests and diagnostics, not the hot path).
func (r *RectSoA) Rect(i int) Rect {
	dim := r.Dim()
	lo := make(Point, dim)
	hi := make(Point, dim)
	for a := 0; a < dim; a++ {
		lo[a] = r.Lo[a][i]
		hi[a] = r.Hi[a][i]
	}
	return Rect{Lo: lo, Hi: hi}
}

// MakeRectSoA allocates a RectSoA for n rectangles of the given
// dimensionality, all axes backed by a single contiguous array.
func MakeRectSoA(dim, n int) RectSoA {
	backing := make([]float64, 2*dim*n)
	s := RectSoA{Lo: make([][]float64, dim), Hi: make([][]float64, dim)}
	for a := 0; a < dim; a++ {
		s.Lo[a] = backing[(2*a)*n : (2*a+1)*n : (2*a+1)*n]
		s.Hi[a] = backing[(2*a+1)*n : (2*a+2)*n : (2*a+2)*n]
	}
	return s
}

// SphereSoA is a struct-of-arrays view of n bounding spheres (the
// SR-tree entry descriptor): sphere i is centered at Center[a][i] with
// radius Radius[i]. Unlike Sphere there is no per-entry "absent" state:
// a SphereSoA is only built for nodes where every entry carries a
// sphere.
type SphereSoA struct {
	Center [][]float64
	Radius []float64
}

// Dim returns the dimensionality of the view.
func (s *SphereSoA) Dim() int { return len(s.Center) }

// Len returns the number of spheres in the view.
func (s *SphereSoA) Len() int { return len(s.Radius) }

// MakeSphereSoA allocates a SphereSoA for n spheres of the given
// dimensionality, center axes and radii backed by one array.
func MakeSphereSoA(dim, n int) SphereSoA {
	backing := make([]float64, (dim+1)*n)
	s := SphereSoA{Center: make([][]float64, dim), Radius: backing[dim*n : (dim+1)*n : (dim+1)*n]}
	for a := 0; a < dim; a++ {
		s.Center[a] = backing[a*n : (a+1)*n : (a+1)*n]
	}
	return s
}

// checkBatch validates one batch call's shapes; the panics mirror the
// scalar kernels' dimension-mismatch panics.
func checkBatch(p Point, dim, n int, out []float64) {
	if len(p) != dim {
		panic(fmt.Sprintf("geom: batch dimension mismatch: point %d, view %d", len(p), dim))
	}
	if len(out) < n {
		panic(fmt.Sprintf("geom: batch output too short: %d < %d", len(out), n))
	}
}

// MinDistSqBatch computes out[i] = MinDistSq(p, r_i) for every
// rectangle of the view. out must hold at least r.Len() values.
func MinDistSqBatch(p Point, r *RectSoA, out []float64) {
	n := r.Len()
	if n == 0 {
		return
	}
	checkBatch(p, r.Dim(), n, out)
	switch len(p) {
	case 2:
		minDistSq2(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], out[:n])
	case 3:
		minDistSq3(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], out[:n])
	case 4:
		minDistSq4(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], r.Lo[3][:n], r.Hi[3][:n], out[:n])
	default:
		minDistSqGeneric(p, r, out[:n])
	}
}

// minDistAxis is one axis's Dmin² contribution: (lo-p)² when p < lo,
// (p-hi)² when p > hi, else 0. The two tests are independent stores
// rather than an early-exit chain — for a valid rect at most one fires,
// and the lo side stores last so an inverted rect (lo > hi, both fire)
// resolves to (lo-p)², the branch the scalar kernel's switch takes
// first. NaN coordinates fail both tests and contribute 0, exactly as
// the scalar switch does.
func minDistAxis(p, lo, hi float64) float64 {
	var c float64
	if d := p - hi; d > 0 {
		c = d * d
	}
	if d := lo - p; d > 0 {
		c = d * d
	}
	return c
}

func minDistSq2(p Point, lo0, hi0, lo1, hi1, out []float64) {
	p0, p1 := p[0], p[1]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	for i := range out {
		out[i] = minDistAxis(p0, lo0[i], hi0[i]) + minDistAxis(p1, lo1[i], hi1[i])
	}
}

func minDistSq3(p Point, lo0, hi0, lo1, hi1, lo2, hi2, out []float64) {
	p0, p1, p2 := p[0], p[1], p[2]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	for i := range out {
		s := minDistAxis(p0, lo0[i], hi0[i]) + minDistAxis(p1, lo1[i], hi1[i])
		out[i] = s + minDistAxis(p2, lo2[i], hi2[i])
	}
}

func minDistSq4(p Point, lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3, out []float64) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	lo3, hi3 = lo3[:len(out)], hi3[:len(out)]
	for i := range out {
		s := minDistAxis(p0, lo0[i], hi0[i]) + minDistAxis(p1, lo1[i], hi1[i])
		s += minDistAxis(p2, lo2[i], hi2[i])
		out[i] = s + minDistAxis(p3, lo3[i], hi3[i])
	}
}

// minDistSqGeneric is the any-dimension fallback: axis-outer
// accumulation into out. Per entry the axis contributions are added in
// axis order starting from 0, exactly the scalar summation order.
func minDistSqGeneric(p Point, r *RectSoA, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for a, pa := range p {
		lo, hi := r.Lo[a][:len(out)], r.Hi[a][:len(out)]
		for i := range out {
			out[i] += minDistAxis(pa, lo[i], hi[i])
		}
	}
}

// nearFarAxis computes one axis's MINMAXDIST terms: near = |p - rm|²
// for the nearer corner coordinate rm, far = |p - rM|² for the farther
// corner coordinate rM, selected exactly as the scalar MinMaxDistSq
// does (p <= mid picks lo as near; p >= mid picks lo as far).
func nearFarAxis(p, lo, hi float64) (near, far float64) {
	mid := (lo + hi) / 2
	var rm, rM float64
	if p <= mid {
		rm = lo
	} else {
		rm = hi
	}
	if p >= mid {
		rM = lo
	} else {
		rM = hi
	}
	dn := p - rm
	df := p - rM
	return dn * dn, df * df
}

// MinMaxDistSqBatch computes out[i] = MinMaxDistSq(p, r_i) for every
// rectangle of the view. out must hold at least r.Len() values.
func MinMaxDistSqBatch(p Point, r *RectSoA, out []float64) {
	n := r.Len()
	if n == 0 {
		return
	}
	checkBatch(p, r.Dim(), n, out)
	switch len(p) {
	case 2:
		minMaxDistSq2(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], out[:n])
	case 3:
		minMaxDistSq3(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], out[:n])
	case 4:
		minMaxDistSq4(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], r.Lo[3][:n], r.Hi[3][:n], out[:n])
	default:
		minMaxDistSqGeneric(p, r, out[:n])
	}
}

func minMaxDistSq2(p Point, lo0, hi0, lo1, hi1, out []float64) {
	p0, p1 := p[0], p[1]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	for i := range out {
		n0, f0 := nearFarAxis(p0, lo0[i], hi0[i])
		n1, f1 := nearFarAxis(p1, lo1[i], hi1[i])
		// Candidate sums in scalar axis order, compared against a +Inf
		// seed with strict < exactly like the scalar min loop (an all-NaN
		// candidate set must yield +Inf, not NaN).
		best := math.Inf(1)
		if v := n0 + f1; v < best {
			best = v
		}
		if v := f0 + n1; v < best {
			best = v
		}
		out[i] = best
	}
}

func minMaxDistSq3(p Point, lo0, hi0, lo1, hi1, lo2, hi2, out []float64) {
	p0, p1, p2 := p[0], p[1], p[2]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	for i := range out {
		n0, f0 := nearFarAxis(p0, lo0[i], hi0[i])
		n1, f1 := nearFarAxis(p1, lo1[i], hi1[i])
		n2, f2 := nearFarAxis(p2, lo2[i], hi2[i])
		best := math.Inf(1)
		if v := n0 + f1 + f2; v < best {
			best = v
		}
		if v := f0 + n1 + f2; v < best {
			best = v
		}
		if v := f0 + f1 + n2; v < best {
			best = v
		}
		out[i] = best
	}
}

func minMaxDistSq4(p Point, lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3, out []float64) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	lo3, hi3 = lo3[:len(out)], hi3[:len(out)]
	for i := range out {
		n0, f0 := nearFarAxis(p0, lo0[i], hi0[i])
		n1, f1 := nearFarAxis(p1, lo1[i], hi1[i])
		n2, f2 := nearFarAxis(p2, lo2[i], hi2[i])
		n3, f3 := nearFarAxis(p3, lo3[i], hi3[i])
		best := math.Inf(1)
		if v := n0 + f1 + f2 + f3; v < best {
			best = v
		}
		if v := f0 + n1 + f2 + f3; v < best {
			best = v
		}
		if v := f0 + f1 + n2 + f3; v < best {
			best = v
		}
		if v := f0 + f1 + f2 + n3; v < best {
			best = v
		}
		out[i] = best
	}
}

// minMaxDistSqGeneric is the any-dimension fallback. The near/far
// scratch lives on the stack for d <= 8 and is allocated once per batch
// call beyond that — never per entry, which is where the scalar kernel
// spends its allocations.
func minMaxDistSqGeneric(p Point, r *RectSoA, out []float64) {
	dim := len(p)
	if dim == 0 {
		for i := range out {
			out[i] = 0
		}
		return
	}
	var nearArr, farArr [8]float64
	var near, far []float64
	if dim <= len(nearArr) {
		near, far = nearArr[:dim], farArr[:dim]
	} else {
		near, far = make([]float64, dim), make([]float64, dim)
	}
	for i := range out {
		for j := 0; j < dim; j++ {
			near[j], far[j] = nearFarAxis(p[j], r.Lo[j][i], r.Hi[j][i])
		}
		// Candidate sums from scratch in fixed axis order, first
		// strictly-smaller candidate wins — the scalar kernel's exact
		// absorption-safe evaluation (see MinMaxDistSq).
		best := math.Inf(1)
		for k := 0; k < dim; k++ {
			var v float64
			for j := 0; j < dim; j++ {
				if j == k {
					v += near[j]
				} else {
					v += far[j]
				}
			}
			if v < best {
				best = v
			}
		}
		out[i] = best
	}
}

// maxDistAxis is one axis's Dmax² contribution: the squared larger
// absolute offset to the two corner coordinates,
// Max(Abs(p-lo), Abs(p-hi))² in the scalar kernel. Squaring is the
// absolute value and |x| ≥ |y| iff x² ≥ y², so the squares are compared
// directly — two multiplies and two compares on the hot path instead of
// math.Max's special-case chain. The fall-through replicates math.Max's
// special-case order exactly: +Inf beats NaN (Max(NaN, +Inf) is +Inf),
// and only then NaN propagates. ±0 needs no care — both squares are +0.
func maxDistAxis(p, lo, hi float64) float64 {
	a := p - lo
	a *= a
	b := p - hi
	b *= b
	if a > b {
		return a
	}
	if b >= a {
		return b
	}
	// Unordered: at least one of a, b is NaN.
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.Inf(1)
	}
	return math.NaN()
}

// MaxDistSqBatch computes out[i] = MaxDistSq(p, r_i) for every
// rectangle of the view. out must hold at least r.Len() values.
func MaxDistSqBatch(p Point, r *RectSoA, out []float64) {
	n := r.Len()
	if n == 0 {
		return
	}
	checkBatch(p, r.Dim(), n, out)
	switch len(p) {
	case 2:
		maxDistSq2(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], out[:n])
	case 3:
		maxDistSq3(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], out[:n])
	case 4:
		maxDistSq4(p, r.Lo[0][:n], r.Hi[0][:n], r.Lo[1][:n], r.Hi[1][:n], r.Lo[2][:n], r.Hi[2][:n], r.Lo[3][:n], r.Hi[3][:n], out[:n])
	default:
		maxDistSqGeneric(p, r, out[:n])
	}
}

func maxDistSq2(p Point, lo0, hi0, lo1, hi1, out []float64) {
	p0, p1 := p[0], p[1]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	for i := range out {
		out[i] = maxDistAxis(p0, lo0[i], hi0[i]) + maxDistAxis(p1, lo1[i], hi1[i])
	}
}

func maxDistSq3(p Point, lo0, hi0, lo1, hi1, lo2, hi2, out []float64) {
	p0, p1, p2 := p[0], p[1], p[2]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	for i := range out {
		s := maxDistAxis(p0, lo0[i], hi0[i]) + maxDistAxis(p1, lo1[i], hi1[i])
		out[i] = s + maxDistAxis(p2, lo2[i], hi2[i])
	}
}

func maxDistSq4(p Point, lo0, hi0, lo1, hi1, lo2, hi2, lo3, hi3, out []float64) {
	p0, p1, p2, p3 := p[0], p[1], p[2], p[3]
	lo0, hi0 = lo0[:len(out)], hi0[:len(out)]
	lo1, hi1 = lo1[:len(out)], hi1[:len(out)]
	lo2, hi2 = lo2[:len(out)], hi2[:len(out)]
	lo3, hi3 = lo3[:len(out)], hi3[:len(out)]
	for i := range out {
		s := maxDistAxis(p0, lo0[i], hi0[i]) + maxDistAxis(p1, lo1[i], hi1[i])
		s += maxDistAxis(p2, lo2[i], hi2[i])
		out[i] = s + maxDistAxis(p3, lo3[i], hi3[i])
	}
}

func maxDistSqGeneric(p Point, r *RectSoA, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for a, pa := range p {
		lo, hi := r.Lo[a][:len(out)], r.Hi[a][:len(out)]
		for i := range out {
			out[i] += maxDistAxis(pa, lo[i], hi[i])
		}
	}
}

// centerDistBatch fills out[i] with |p - center_i| (the plain Euclidean
// distance to each sphere center), accumulating squared axis offsets in
// axis order and taking one square root — bit-identical to
// Point.Dist(p) called on each center.
func centerDistBatch(p Point, s *SphereSoA, out []float64) {
	n := s.Len()
	for i := range out[:n] {
		out[i] = 0
	}
	for a, pa := range p {
		c := s.Center[a][:n]
		for i, ci := range c {
			d := ci - pa
			out[i] += d * d
		}
	}
	for i := range out[:n] {
		out[i] = math.Sqrt(out[i])
	}
}

// SphereMinDistSqBatch computes out[i] = Sphere_i.MinDistSq(p): the
// squared distance from p to the nearest point of each sphere, zero
// inside. out must hold at least s.Len() values.
func SphereMinDistSqBatch(p Point, s *SphereSoA, out []float64) {
	n := s.Len()
	if n == 0 {
		return
	}
	checkBatch(p, s.Dim(), n, out)
	centerDistBatch(p, s, out[:n])
	for i, r := range s.Radius[:n] {
		d := out[i] - r
		if d <= 0 {
			out[i] = 0
		} else {
			out[i] = d * d
		}
	}
}

// SphereMaxDistSqBatch computes out[i] = Sphere_i.MaxDistSq(p): the
// squared distance from p to the farthest point of each sphere. out
// must hold at least s.Len() values.
func SphereMaxDistSqBatch(p Point, s *SphereSoA, out []float64) {
	n := s.Len()
	if n == 0 {
		return
	}
	checkBatch(p, s.Dim(), n, out)
	centerDistBatch(p, s, out[:n])
	for i, r := range s.Radius[:n] {
		d := out[i] + r
		out[i] = d * d
	}
}

// SphereRectMinBatch computes the SR-tree intersected lower bound for
// every entry: out[i] = max(MinDistSq(p, r_i), Sphere_i.MinDistSq(p)),
// bit-identical to SphereRectMin per entry. s may be nil (plain R*-tree
// nodes), in which case the result is the rectangle bound alone.
// scratch must hold at least r.Len() values when s is non-nil; it is
// clobbered.
func SphereRectMinBatch(p Point, r *RectSoA, s *SphereSoA, out, scratch []float64) {
	MinDistSqBatch(p, r, out)
	if s == nil {
		return
	}
	n := r.Len()
	SphereMinDistSqBatch(p, s, scratch[:n])
	for i, sm := range scratch[:n] {
		if sm > out[i] {
			out[i] = sm
		}
	}
}

// SphereRectMaxBatch computes the SR-tree intersected upper bound for
// every entry: out[i] = min(MaxDistSq(p, r_i), Sphere_i.MaxDistSq(p)),
// bit-identical to SphereRectMax per entry. s may be nil; scratch as in
// SphereRectMinBatch.
func SphereRectMaxBatch(p Point, r *RectSoA, s *SphereSoA, out, scratch []float64) {
	MaxDistSqBatch(p, r, out)
	if s == nil {
		return
	}
	n := r.Len()
	SphereMaxDistSqBatch(p, s, scratch[:n])
	for i, sm := range scratch[:n] {
		if sm < out[i] {
			out[i] = sm
		}
	}
}
