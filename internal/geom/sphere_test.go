package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSphereValid(t *testing.T) {
	if (Sphere{}).Valid() {
		t.Error("zero sphere valid")
	}
	if !(Sphere{Center: Point{0}, Radius: 0}).Valid() {
		t.Error("point sphere invalid")
	}
}

func TestSphereDistances(t *testing.T) {
	s := Sphere{Center: Point{0, 0}, Radius: 2}
	if got := s.MinDistSq(Point{5, 0}); got != 9 {
		t.Errorf("MinDistSq = %g, want 9", got)
	}
	if got := s.MinDistSq(Point{1, 0}); got != 0 {
		t.Errorf("inside MinDistSq = %g, want 0", got)
	}
	if got := s.MaxDistSq(Point{5, 0}); got != 49 {
		t.Errorf("MaxDistSq = %g, want 49", got)
	}
	if !s.Contains(Point{0, 2}, 0) {
		t.Error("boundary point not contained")
	}
	if s.Contains(Point{0, 2.1}, 0) {
		t.Error("outside point contained")
	}
}

func TestSphereUnionKnown(t *testing.T) {
	a := Sphere{Center: Point{0, 0}, Radius: 1}
	b := Sphere{Center: Point{4, 0}, Radius: 1}
	u := a.Union(b)
	if math.Abs(u.Radius-3) > 1e-12 {
		t.Errorf("union radius = %g, want 3", u.Radius)
	}
	if !u.Center.Equal(Point{2, 0}) {
		t.Errorf("union center = %v", u.Center)
	}
	// Containment cases.
	inner := Sphere{Center: Point{0.5, 0}, Radius: 0.1}
	if u2 := a.Union(inner); u2.Radius != 1 || !u2.Center.Equal(a.Center) {
		t.Errorf("union with contained sphere changed: %+v", u2)
	}
	if u3 := inner.Union(a); u3.Radius != 1 {
		t.Errorf("reverse containment union radius = %g", u3.Radius)
	}
	// Union with invalid spheres.
	if u4 := (Sphere{}).Union(a); !u4.Center.Equal(a.Center) {
		t.Error("union with invalid lost sphere")
	}
}

// Property: the union sphere contains both input spheres.
func TestSphereUnionContainsProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%5 + 1
		rnd := rand.New(rand.NewSource(seed))
		mk := func() Sphere {
			c := make(Point, dim)
			for d := range c {
				c[d] = rnd.Float64()*10 - 5
			}
			return Sphere{Center: c, Radius: rnd.Float64() * 3}
		}
		a, b := mk(), mk()
		u := a.Union(b)
		const eps = 1e-9
		return u.Center.Dist(a.Center)+a.Radius <= u.Radius+eps &&
			u.Center.Dist(b.Center)+b.Radius <= u.Radius+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCentroid(t *testing.T) {
	c := WeightedCentroid([]Point{{0, 0}, {4, 0}}, []int{1, 3})
	if !c.Equal(Point{3, 0}) {
		t.Errorf("centroid = %v, want (3,0)", c)
	}
	if WeightedCentroid(nil, nil) != nil {
		t.Error("empty centroid not nil")
	}
	// Zero total weight falls back to the first center.
	c = WeightedCentroid([]Point{{1, 2}}, []int{0})
	if !c.Equal(Point{1, 2}) {
		t.Errorf("zero-weight centroid = %v", c)
	}
}

func TestCoveringRadius(t *testing.T) {
	center := Point{0, 0}
	spheres := []Sphere{
		{Center: Point{3, 0}, Radius: 1},
		{Center: Point{0, 1}, Radius: 0.5},
		{}, // invalid, skipped
	}
	if got := CoveringRadius(center, spheres); got != 4 {
		t.Errorf("CoveringRadius = %g, want 4", got)
	}
	if CoveringRadius(center, nil) != 0 {
		t.Error("empty covering radius != 0")
	}
}

// Property: covering radius actually covers every sphere.
func TestCoveringRadiusProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := rnd.Intn(10) + 1
		spheres := make([]Sphere, n)
		for i := range spheres {
			spheres[i] = Sphere{
				Center: Point{rnd.Float64() * 10, rnd.Float64() * 10},
				Radius: rnd.Float64() * 2,
			}
		}
		center := Point{rnd.Float64() * 10, rnd.Float64() * 10}
		r := CoveringRadius(center, spheres)
		for _, s := range spheres {
			if center.Dist(s.Center)+s.Radius > r+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: intersected SR bounds are at least as tight as either
// descriptor alone and still bracket real point distances.
func TestSphereRectBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		dim := rnd.Intn(4) + 2
		// A cloud of points defines both descriptors exactly.
		n := rnd.Intn(20) + 2
		pts := make([]Point, n)
		lo := make(Point, dim)
		hi := make(Point, dim)
		for i := range pts {
			p := make(Point, dim)
			for d := 0; d < dim; d++ {
				p[d] = rnd.Float64() * 10
				if i == 0 || p[d] < lo[d] {
					lo[d] = p[d]
				}
				if i == 0 || p[d] > hi[d] {
					hi[d] = p[d]
				}
			}
			pts[i] = p
		}
		r := Rect{Lo: lo, Hi: hi}
		centers := make([]Point, n)
		w := make([]int, n)
		for i := range pts {
			centers[i], w[i] = pts[i], 1
		}
		c := WeightedCentroid(centers, w)
		var rad float64
		for _, p := range pts {
			if d := c.Dist(p); d > rad {
				rad = d
			}
		}
		s := Sphere{Center: c, Radius: rad}

		q := make(Point, dim)
		for d := 0; d < dim; d++ {
			q[d] = rnd.Float64()*30 - 10
		}
		minB := SphereRectMin(q, r, s)
		maxB := SphereRectMax(q, r, s)
		const eps = 1e-9
		if minB < MinDistSq(q, r)-eps || minB < s.MinDistSq(q)-eps {
			return false // not the tighter lower bound
		}
		if maxB > MaxDistSq(q, r)+eps || maxB > s.MaxDistSq(q)+eps {
			return false // not the tighter upper bound
		}
		for _, p := range pts {
			d := q.DistSq(p)
			if d < minB-eps || d > maxB+eps {
				return false // bounds must bracket every real point
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
