package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDist(t *testing.T) {
	p := Point{0, 0}
	q := Point{3, 4}
	if got := p.Dist(q); got != 5 {
		t.Errorf("Dist = %g, want 5", got)
	}
	if got := p.DistSq(q); got != 25 {
		t.Errorf("DistSq = %g, want 25", got)
	}
	if got := p.Dist(p); got != 0 {
		t.Errorf("Dist(p,p) = %g, want 0", got)
	}
}

func TestPointDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Point{1}.DistSq(Point{1, 2})
}

func TestPointCloneIndependence(t *testing.T) {
	p := Point{1, 2, 3}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !p.Equal(Point{1, 2, 3}) {
		t.Error("original mutated")
	}
}

func TestPointEqual(t *testing.T) {
	cases := []struct {
		a, b Point
		want bool
	}{
		{Point{1, 2}, Point{1, 2}, true},
		{Point{1, 2}, Point{2, 1}, false},
		{Point{1}, Point{1, 2}, false},
		{Point{}, Point{}, true},
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("Equal(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNewRectValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inverted rect")
		}
	}()
	NewRect(Point{1, 1}, Point{0, 2})
}

func TestRectBasics(t *testing.T) {
	r := NewRect(Point{0, 0}, Point{2, 3})
	if got := r.Area(); got != 6 {
		t.Errorf("Area = %g, want 6", got)
	}
	if got := r.Margin(); got != 5 {
		t.Errorf("Margin = %g, want 5", got)
	}
	if c := r.Center(); !c.Equal(Point{1, 1.5}) {
		t.Errorf("Center = %v", c)
	}
	if r.IsPoint() {
		t.Error("non-degenerate rect reported as point")
	}
	if !PointRect(Point{1, 1}).IsPoint() {
		t.Error("PointRect not degenerate")
	}
}

func TestRectUnion(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1})
	b := NewRect(Point{2, -1}, Point{3, 0.5})
	u := a.Union(b)
	want := NewRect(Point{0, -1}, Point{3, 1})
	if !u.Equal(want) {
		t.Errorf("Union = %v, want %v", u, want)
	}
	// Union must not alias the inputs.
	u.Lo[0] = -50
	if a.Lo[0] != 0 || b.Lo[0] != 2 {
		t.Error("Union aliases input arrays")
	}
}

func TestRectUnionInPlace(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{1, 1}).Clone()
	a.UnionInPlace(NewRect(Point{-1, 0.5}, Point{0.5, 4}))
	want := NewRect(Point{-1, 0}, Point{1, 4})
	if !a.Equal(want) {
		t.Errorf("UnionInPlace = %v, want %v", a, want)
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	cases := []struct {
		b    Rect
		want bool
	}{
		{NewRect(Point{1, 1}, Point{3, 3}), true},
		{NewRect(Point{2, 2}, Point{3, 3}), true}, // touching corner
		{NewRect(Point{3, 3}, Point{4, 4}), false},
		{NewRect(Point{0.5, 0.5}, Point{1, 1}), true}, // contained
		{NewRect(Point{-1, 0}, Point{3, 0.5}), true},  // crossing band
	}
	for i, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
}

func TestRectOverlapArea(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	b := NewRect(Point{1, 1}, Point{3, 3})
	if got := a.OverlapArea(b); got != 1 {
		t.Errorf("OverlapArea = %g, want 1", got)
	}
	c := NewRect(Point{5, 5}, Point{6, 6})
	if got := a.OverlapArea(c); got != 0 {
		t.Errorf("disjoint OverlapArea = %g, want 0", got)
	}
	// Touching boundary has zero overlap volume.
	d := NewRect(Point{2, 0}, Point{3, 2})
	if got := a.OverlapArea(d); got != 0 {
		t.Errorf("touching OverlapArea = %g, want 0", got)
	}
}

func TestRectContains(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{4, 4})
	if !a.Contains(NewRect(Point{1, 1}, Point{2, 2})) {
		t.Error("inner rect not contained")
	}
	if !a.Contains(a) {
		t.Error("rect must contain itself")
	}
	if a.Contains(NewRect(Point{1, 1}, Point{5, 2})) {
		t.Error("overflowing rect reported contained")
	}
	if !a.ContainsPoint(Point{0, 4}) {
		t.Error("boundary point not contained")
	}
	if a.ContainsPoint(Point{-0.1, 2}) {
		t.Error("outside point contained")
	}
}

func TestMinDistKnownValues(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{3, 2})
	cases := []struct {
		p    Point
		want float64 // squared
	}{
		{Point{2, 1.5}, 0},  // inside
		{Point{1, 1}, 0},    // corner
		{Point{0, 1.5}, 1},  // left of rect
		{Point{4, 3}, 2},    // beyond top-right corner: 1² + 1²
		{Point{2, -1}, 4},   // below
		{Point{-2, -3}, 25}, // 3² + 4²
	}
	for i, c := range cases {
		if got := MinDistSq(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: MinDistSq(%v) = %g, want %g", i, c.p, got, c.want)
		}
	}
}

func TestMinMaxDistKnownValues(t *testing.T) {
	// Unit square [0,1]². From the origin corner, Dmm picks the nearest
	// face coordinate on one axis and farthest on the others:
	// min( |0-0|²+|0-1|², |0-1|²+|0-0|² ) = 1.
	r := NewRect(Point{0, 0}, Point{1, 1})
	if got := MinMaxDistSq(Point{0, 0}, r); math.Abs(got-1) > 1e-12 {
		t.Errorf("Dmm² from corner = %g, want 1", got)
	}
	// From the center, rm = lo on each axis (p == mid picks lo), rM = lo
	// too (p >= mid picks lo): each axis contributes 0.25.
	// min over k of (0.25 + 0.25) = 0.5.
	if got := MinMaxDistSq(Point{0.5, 0.5}, r); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Dmm² from center = %g, want 0.5", got)
	}
	// 1-d: interval [2,4], p=0. rm=2, rM=4 → min over the single axis of
	// |0-2|² = 4.
	r1 := NewRect(Point{2}, Point{4})
	if got := MinMaxDistSq(Point{0}, r1); math.Abs(got-4) > 1e-12 {
		t.Errorf("1-d Dmm² = %g, want 4", got)
	}
}

func TestMaxDistKnownValues(t *testing.T) {
	r := NewRect(Point{1, 1}, Point{3, 2})
	cases := []struct {
		p    Point
		want float64 // squared
	}{
		{Point{0, 0}, 13},     // farthest vertex (3,2): 9+4
		{Point{2, 1.5}, 1.25}, // inside: farthest vertex any corner: 1+0.25
		{Point{4, 3}, 13},     // farthest vertex (1,1): 9+4
	}
	for i, c := range cases {
		if got := MaxDistSq(c.p, r); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: MaxDistSq(%v) = %g, want %g", i, c.p, got, c.want)
		}
	}
}

// randRect builds a random rectangle and point of the same dimension from
// a seed, for property tests.
func randPointRect(rnd *rand.Rand, dim int) (Point, Rect) {
	p := make(Point, dim)
	lo := make(Point, dim)
	hi := make(Point, dim)
	for i := 0; i < dim; i++ {
		p[i] = rnd.Float64()*20 - 10
		a := rnd.Float64()*20 - 10
		b := rnd.Float64()*20 - 10
		lo[i] = math.Min(a, b)
		hi[i] = math.Max(a, b)
	}
	return p, Rect{Lo: lo, Hi: hi}
}

// Property: Dmin <= Dmm <= Dmax for every point/rect pair.
func TestMetricOrderingProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%9 + 1
		rnd := rand.New(rand.NewSource(seed))
		p, r := randPointRect(rnd, dim)
		dmin := MinDistSq(p, r)
		dmm := MinMaxDistSq(p, r)
		dmax := MaxDistSq(p, r)
		const eps = 1e-9
		return dmin <= dmm+eps && dmm <= dmax+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Dmin to any point inside the rect is an actual lower bound,
// and Dmax an actual upper bound.
func TestMinMaxBoundProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%9 + 1
		rnd := rand.New(rand.NewSource(seed))
		p, r := randPointRect(rnd, dim)
		// random point inside r
		q := make(Point, dim)
		for i := 0; i < dim; i++ {
			q[i] = r.Lo[i] + rnd.Float64()*(r.Hi[i]-r.Lo[i])
		}
		d := p.DistSq(q)
		const eps = 1e-9
		return MinDistSq(p, r) <= d+eps && d <= MaxDistSq(p, r)+eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Dmm is achieved by some vertex-adjacent face point: there is
// always a point of the rectangle's boundary within Dmm. We verify the
// weaker (but sufficient for pruning) guarantee that Dmm >= Dmin and that
// for point rectangles all three metrics coincide.
func TestDegenerateRectMetricsCoincide(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%9 + 1
		rnd := rand.New(rand.NewSource(seed))
		p, _ := randPointRect(rnd, dim)
		q, _ := randPointRect(rnd, dim)
		r := PointRect(q)
		d := p.DistSq(q)
		const eps = 1e-9
		return math.Abs(MinDistSq(p, r)-d) < eps &&
			math.Abs(MinMaxDistSq(p, r)-d) < eps &&
			math.Abs(MaxDistSq(p, r)-d) < eps
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: union contains both inputs and is the smallest such box
// (each face touches one of the inputs).
func TestUnionProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%9 + 1
		rnd := rand.New(rand.NewSource(seed))
		_, a := randPointRect(rnd, dim)
		_, b := randPointRect(rnd, dim)
		u := a.Union(b)
		if !u.Contains(a) || !u.Contains(b) {
			return false
		}
		for i := 0; i < dim; i++ {
			if u.Lo[i] != a.Lo[i] && u.Lo[i] != b.Lo[i] {
				return false
			}
			if u.Hi[i] != a.Hi[i] && u.Hi[i] != b.Hi[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: overlap area is symmetric and bounded by each input's area.
func TestOverlapProperty(t *testing.T) {
	f := func(seed int64, dimRaw uint8) bool {
		dim := int(dimRaw)%9 + 1
		rnd := rand.New(rand.NewSource(seed))
		_, a := randPointRect(rnd, dim)
		_, b := randPointRect(rnd, dim)
		ov := a.OverlapArea(b)
		if math.Abs(ov-b.OverlapArea(a)) > 1e-9 {
			return false
		}
		return ov <= a.Area()+1e-9 && ov <= b.Area()+1e-9 && ov >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSphereIntersects(t *testing.T) {
	r := NewRect(Point{2, 0}, Point{3, 1})
	p := Point{0, 0}
	if !SphereIntersectsSq(p, r, 4.0) { // Dmin² = 4
		t.Error("sphere touching rect must intersect")
	}
	if SphereIntersectsSq(p, r, 3.9) {
		t.Error("sphere short of rect must not intersect")
	}
	if !SphereContainsSq(p, r, 10.0) { // Dmax² = 9+1 = 10
		t.Error("sphere covering farthest vertex must contain")
	}
	if SphereContainsSq(p, r, 9.9) {
		t.Error("sphere short of farthest vertex must not contain")
	}
}

func TestEnlargementArea(t *testing.T) {
	a := NewRect(Point{0, 0}, Point{2, 2})
	if got := a.EnlargementArea(NewRect(Point{1, 1}, Point{1.5, 1.5})); got != 0 {
		t.Errorf("enclosed rect enlargement = %g, want 0", got)
	}
	if got := a.EnlargementArea(NewRect(Point{0, 0}, Point{4, 2})); got != 4 {
		t.Errorf("enlargement = %g, want 4", got)
	}
}

func TestStringFormatting(t *testing.T) {
	p := Point{1, 2.5}
	if got := p.String(); got != "(1, 2.5)" {
		t.Errorf("Point.String = %q", got)
	}
	r := NewRect(Point{0}, Point{1})
	if got := r.String(); got != "[(0) .. (1)]" {
		t.Errorf("Rect.String = %q", got)
	}
}
