// Package geom provides n-dimensional points, rectangles (MBRs) and the
// point-to-rectangle distance metrics used by similarity search over
// R-trees: MINDIST (Dmin), MINMAXDIST (Dmm) and MAXDIST (Dmax), following
// Roussopoulos, Kelley & Vincent (SIGMOD 1995) and Papadopoulos &
// Manolopoulos (SIGMOD 1998, Definitions 3-5).
//
// All distance functions come in squared form (suffix Sq). Similarity
// search only ever compares distances, so the library works in squared
// space and takes a single square root when reporting results.
package geom

import (
	"fmt"
	"math"
	"strings"
)

// Point is a point in n-dimensional Euclidean space. The slice length is
// the dimensionality. Points are treated as immutable by this package.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimensionality of the point.
func (p Point) Dim() int { return len(p) }

// Equal reports whether p and q have identical coordinates.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// DistSq returns the squared Euclidean distance between p and q.
// It panics if the dimensionalities differ.
func (p Point) DistSq(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Sqrt(p.DistSq(q)) }

// String renders the point as "(x1, x2, ...)".
func (p Point) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range p {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteByte(')')
	return b.String()
}

// Rect is an axis-aligned hyper-rectangle given by its lower-left corner
// Lo and upper-right corner Hi. A degenerate rectangle with Lo == Hi
// represents a point object. Invariant: Lo[i] <= Hi[i] for all i.
type Rect struct {
	Lo, Hi Point
}

// NewRect returns a rectangle spanning lo..hi. It panics if the corners
// have different dimensionality or are inverted in any axis.
func NewRect(lo, hi Point) Rect {
	if len(lo) != len(hi) {
		panic(fmt.Sprintf("geom: corner dimension mismatch %d vs %d", len(lo), len(hi)))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			panic(fmt.Sprintf("geom: inverted rect on axis %d: %g > %g", i, lo[i], hi[i]))
		}
	}
	return Rect{Lo: lo, Hi: hi}
}

// PointRect returns the degenerate rectangle covering exactly p.
func PointRect(p Point) Rect { return Rect{Lo: p, Hi: p} }

// Dim returns the dimensionality of the rectangle.
func (r Rect) Dim() int { return len(r.Lo) }

// Clone returns a deep copy of r.
func (r Rect) Clone() Rect { return Rect{Lo: r.Lo.Clone(), Hi: r.Hi.Clone()} }

// Equal reports whether r and s cover the identical region.
func (r Rect) Equal(s Rect) bool { return r.Lo.Equal(s.Lo) && r.Hi.Equal(s.Hi) }

// IsPoint reports whether the rectangle is degenerate (zero extent in
// every axis).
func (r Rect) IsPoint() bool { return r.Lo.Equal(r.Hi) }

// Center returns the center point of the rectangle.
func (r Rect) Center() Point {
	c := make(Point, len(r.Lo))
	for i := range r.Lo {
		c[i] = (r.Lo[i] + r.Hi[i]) / 2
	}
	return c
}

// Area returns the n-dimensional volume of the rectangle.
func (r Rect) Area() float64 {
	a := 1.0
	for i := range r.Lo {
		a *= r.Hi[i] - r.Lo[i]
	}
	return a
}

// Margin returns the sum of the edge lengths of the rectangle (the
// "margin" minimized by the R*-tree split heuristic).
func (r Rect) Margin() float64 {
	var m float64
	for i := range r.Lo {
		m += r.Hi[i] - r.Lo[i]
	}
	return m
}

// Union returns the minimum bounding rectangle of r and s.
func (r Rect) Union(s Rect) Rect {
	lo := make(Point, len(r.Lo))
	hi := make(Point, len(r.Hi))
	for i := range r.Lo {
		lo[i] = math.Min(r.Lo[i], s.Lo[i])
		hi[i] = math.Max(r.Hi[i], s.Hi[i])
	}
	return Rect{Lo: lo, Hi: hi}
}

// UnionInPlace grows r to enclose s, reusing r's backing arrays.
func (r *Rect) UnionInPlace(s Rect) {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] {
			r.Lo[i] = s.Lo[i]
		}
		if s.Hi[i] > r.Hi[i] {
			r.Hi[i] = s.Hi[i]
		}
	}
}

// EnlargementArea returns the increase in area of r needed to enclose s.
func (r Rect) EnlargementArea(s Rect) float64 {
	return r.Union(s).Area() - r.Area()
}

// Intersects reports whether r and s share at least one point
// (touching boundaries count as intersection).
func (r Rect) Intersects(s Rect) bool {
	for i := range r.Lo {
		if r.Lo[i] > s.Hi[i] || s.Lo[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// OverlapArea returns the volume of the intersection of r and s
// (zero when they do not intersect).
func (r Rect) OverlapArea(s Rect) float64 {
	v := 1.0
	for i := range r.Lo {
		lo := math.Max(r.Lo[i], s.Lo[i])
		hi := math.Min(r.Hi[i], s.Hi[i])
		if hi <= lo {
			return 0
		}
		v *= hi - lo
	}
	return v
}

// Contains reports whether r fully encloses s.
func (r Rect) Contains(s Rect) bool {
	for i := range r.Lo {
		if s.Lo[i] < r.Lo[i] || s.Hi[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// ContainsPoint reports whether p lies inside or on the boundary of r.
func (r Rect) ContainsPoint(p Point) bool {
	for i := range r.Lo {
		if p[i] < r.Lo[i] || p[i] > r.Hi[i] {
			return false
		}
	}
	return true
}

// String renders the rectangle as "[lo .. hi]".
func (r Rect) String() string {
	return fmt.Sprintf("[%s .. %s]", r.Lo, r.Hi)
}

// MinDistSq returns Dmin²(p, r): the squared minimum Euclidean distance
// from point p to rectangle r (Definition 3). It is zero when p lies
// inside r. Dmin is the optimistic bound — no object inside r can be
// closer to p than Dmin.
func MinDistSq(p Point, r Rect) float64 {
	var s float64
	for i := range p {
		switch {
		case p[i] < r.Lo[i]:
			d := r.Lo[i] - p[i]
			s += d * d
		case p[i] > r.Hi[i]:
			d := p[i] - r.Hi[i]
			s += d * d
		}
	}
	return s
}

// MinDist returns Dmin(p, r). See MinDistSq.
func MinDist(p Point, r Rect) float64 { return math.Sqrt(MinDistSq(p, r)) }

// MinMaxDistSq returns Dmm²(p, r), the squared MINMAXDIST (Definition 4):
// the minimum over all faces of r of the maximum distance from p to that
// face. It is the pessimistic bound — r is guaranteed to contain at least
// one object (assuming every face of an MBR touches an object) within
// distance Dmm of p.
//
// Dmm²(p,r) = min over axes k of ( |p_k - rm_k|² + Σ_{j≠k} |p_j - rM_j|² )
// where rm_k is the nearer corner coordinate on axis k and rM_j the
// farther corner coordinate on axis j.
func MinMaxDistSq(p Point, r Rect) float64 {
	n := len(p)
	if n == 0 {
		return 0
	}
	far := make([]float64, n)  // |p_j - rM_j|²
	near := make([]float64, n) // |p_k - rm_k|²
	for j := 0; j < n; j++ {
		mid := (r.Lo[j] + r.Hi[j]) / 2
		var rm, rM float64
		if p[j] <= mid {
			rm = r.Lo[j]
		} else {
			rm = r.Hi[j]
		}
		if p[j] >= mid {
			rM = r.Lo[j]
		} else {
			rM = r.Hi[j]
		}
		dn := p[j] - rm
		df := p[j] - rM
		near[j] = dn * dn
		far[j] = df * df
	}
	// Each candidate is summed from scratch rather than as
	// total - far[k] + near[k]: the subtraction form loses tiny terms to
	// absorption and can return a Dmm below Dmin, breaking the
	// pessimistic-bound guarantee the pruning rules rely on. Summing
	// nonnegative terms in fixed axis order keeps Dmin ≤ Dmm ≤ Dmax
	// exact in floating point, because each Dmm term dominates the
	// matching Dmin term and is dominated by the matching Dmax term.
	best := math.Inf(1)
	for k := 0; k < n; k++ {
		var v float64
		for j := 0; j < n; j++ {
			if j == k {
				v += near[j]
			} else {
				v += far[j]
			}
		}
		if v < best {
			best = v
		}
	}
	return best
}

// MinMaxDist returns Dmm(p, r). See MinMaxDistSq.
func MinMaxDist(p Point, r Rect) float64 { return math.Sqrt(MinMaxDistSq(p, r)) }

// MaxDistSq returns Dmax²(p, r) (Definition 5): the squared distance from
// p to the farthest vertex of r. Every object inside r lies within Dmax
// of p, so Dmax upper-bounds the distance to anything in the subtree.
func MaxDistSq(p Point, r Rect) float64 {
	var s float64
	for i := range p {
		dLo := p[i] - r.Lo[i]
		dHi := p[i] - r.Hi[i]
		d := math.Max(math.Abs(dLo), math.Abs(dHi))
		s += d * d
	}
	return s
}

// MaxDist returns Dmax(p, r). See MaxDistSq.
func MaxDist(p Point, r Rect) float64 { return math.Sqrt(MaxDistSq(p, r)) }

// SphereIntersectsSq reports whether the hyper-sphere centered at p with
// squared radius radiusSq intersects rectangle r, i.e. Dmin²(p,r) <=
// radiusSq. This is the weak-optimality test from Definition 6.
func SphereIntersectsSq(p Point, r Rect, radiusSq float64) bool {
	return MinDistSq(p, r) <= radiusSq
}

// SphereContainsSq reports whether the hyper-sphere centered at p with
// squared radius radiusSq fully encloses rectangle r, i.e. Dmax²(p,r) <=
// radiusSq.
func SphereContainsSq(p Point, r Rect, radiusSq float64) bool {
	return MaxDistSq(p, r) <= radiusSq
}
