package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func mustTree(t *testing.T, cfg Config) *Tree {
	t.Helper()
	tr, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func randPoints(seed int64, n, dim int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rnd.Float64() * 1000
		}
		pts[i] = p
	}
	return pts
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Dim: 0, MaxEntries: 10}, nil); err == nil {
		t.Error("accepted zero dimension")
	}
	if _, err := New(Config{Dim: 2, MaxEntries: 3}, nil); err == nil {
		t.Error("accepted capacity 3")
	}
	if _, err := New(Config{Dim: 2, MaxEntries: 10, MinEntries: 6}, nil); err == nil {
		t.Error("accepted min > max/2")
	}
	if _, err := New(Config{Dim: 2, MaxEntries: 10, ReinsertFraction: 0.9}, nil); err == nil {
		t.Error("accepted reinsert fraction 0.9")
	}
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 10})
	if tr.Config().MinEntries != 4 {
		t.Errorf("default min = %d, want 4 (40%% of 10)", tr.Config().MinEntries)
	}
	if tr.Config().ReinsertFraction != 0.3 {
		t.Errorf("default reinsert fraction = %g", tr.Config().ReinsertFraction)
	}
}

func TestCapacityForPage(t *testing.T) {
	// 2-d: (4096-16)/(32+12) = 92
	if got := CapacityForPage(4096, 2); got != 92 {
		t.Errorf("capacity 2-d = %d, want 92", got)
	}
	// 10-d: (4096-16)/(160+12) = 23
	if got := CapacityForPage(4096, 10); got != 23 {
		t.Errorf("capacity 10-d = %d, want 23", got)
	}
	// Floor of 4 for tiny pages.
	if got := CapacityForPage(64, 10); got != 4 {
		t.Errorf("tiny page capacity = %d, want 4", got)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Errorf("empty tree: len=%d height=%d", tr.Len(), tr.Height())
	}
	if _, ok := tr.Bounds(); ok {
		t.Error("empty tree has bounds")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Error(err)
	}
	nn, _ := tr.NearestNeighbors(geom.Point{0, 0}, 5)
	if len(nn) != 0 {
		t.Error("empty tree returned neighbors")
	}
}

func TestInsertDimensionMismatch(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	if err := tr.InsertPoint(geom.Point{1, 2, 3}, 1); err == nil {
		t.Error("accepted 3-d point into 2-d tree")
	}
}

func TestInsertGrowsAndStaysValid(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(1, 2000, 2)
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjectID(i)); err != nil {
			t.Fatal(err)
		}
		if i%397 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if tr.Len() != 2000 {
		t.Errorf("len = %d", tr.Len())
	}
	if tr.Height() < 3 {
		t.Errorf("height = %d, expected >= 3 for 2000 points at fanout 8", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSearchRectExactness(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 16})
	pts := randPoints(2, 1500, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	query := geom.NewRect(geom.Point{200, 300}, geom.Point{450, 700})
	got, nodes := tr.SearchRect(query, nil)
	if nodes <= 0 {
		t.Error("no nodes accessed")
	}
	want := map[ObjectID]bool{}
	for i, p := range pts {
		if query.ContainsPoint(p) {
			want[ObjectID(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for _, m := range got {
		if !want[m.Object] {
			t.Errorf("unexpected match %d", m.Object)
		}
	}
}

func TestSearchSphereExactness(t *testing.T) {
	tr := mustTree(t, Config{Dim: 3, MaxEntries: 12})
	pts := randPoints(3, 800, 3)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	center := geom.Point{500, 500, 500}
	eps := 180.0
	got, _ := tr.SearchSphere(center, eps, nil)
	want := map[ObjectID]bool{}
	for i, p := range pts {
		if center.DistSq(p) <= eps*eps {
			want[ObjectID(i)] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d matches, want %d", len(got), len(want))
	}
	for _, m := range got {
		if !want[m.Object] {
			t.Errorf("unexpected match %d", m.Object)
		}
	}
}

// bruteKNN is the straightforward O(n) reference.
func bruteKNN(pts []geom.Point, q geom.Point, k int) []float64 {
	ds := make([]float64, len(pts))
	for i, p := range pts {
		ds[i] = q.DistSq(p)
	}
	sort.Float64s(ds)
	if k > len(ds) {
		k = len(ds)
	}
	return ds[:k]
}

func TestNearestNeighborsMatchesBruteForce(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 10})
	pts := randPoints(4, 1000, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		q := geom.Point{rnd.Float64() * 1000, rnd.Float64() * 1000}
		k := 1 + rnd.Intn(50)
		got, nodes := tr.NearestNeighbors(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d results, want %d", trial, len(got), len(want))
		}
		if nodes <= 0 {
			t.Fatal("no nodes accessed")
		}
		for i := range got {
			if diff := got[i].DistSq - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d rank %d: dist² %g, want %g", trial, i, got[i].DistSq, want[i])
			}
		}
	}
}

func TestNearestNeighborsKLargerThanData(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	for i := 0; i < 5; i++ {
		_ = tr.InsertPoint(geom.Point{float64(i), 0}, ObjectID(i))
	}
	nn, _ := tr.NearestNeighbors(geom.Point{0, 0}, 50)
	if len(nn) != 5 {
		t.Errorf("got %d results, want all 5", len(nn))
	}
}

func TestDelete(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(5, 600, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	// Delete every third point.
	deleted := map[ObjectID]bool{}
	for i := 0; i < len(pts); i += 3 {
		if !tr.DeletePoint(pts[i], ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
		deleted[ObjectID(i)] = true
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 600-200 {
		t.Errorf("len = %d, want 400", tr.Len())
	}
	// Deleted points must be gone, others present.
	all, _ := tr.SearchRect(geom.NewRect(geom.Point{-1, -1}, geom.Point{1001, 1001}), nil)
	seen := map[ObjectID]bool{}
	for _, m := range all {
		seen[m.Object] = true
	}
	for i := range pts {
		id := ObjectID(i)
		if deleted[id] && seen[id] {
			t.Errorf("object %d still present after delete", i)
		}
		if !deleted[id] && !seen[id] {
			t.Errorf("object %d lost", i)
		}
	}
}

func TestDeleteMissingReturnsFalse(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	_ = tr.InsertPoint(geom.Point{1, 1}, 1)
	if tr.DeletePoint(geom.Point{2, 2}, 2) {
		t.Error("deleted nonexistent object")
	}
	if tr.DeletePoint(geom.Point{1, 1}, 99) {
		t.Error("deleted wrong object id at same location")
	}
}

func TestDeleteAllCollapsesTree(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(6, 300, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	for i, p := range pts {
		if !tr.DeletePoint(p, ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if tr.Len() != 0 {
		t.Errorf("len = %d after deleting all", tr.Len())
	}
	if tr.Height() != 1 {
		t.Errorf("height = %d, want 1 (collapsed root)", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Property: after any interleaved sequence of inserts and deletes, the
// tree invariants hold and its contents match a model map.
func TestMixedWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tr, err := New(Config{Dim: 2, MaxEntries: 8}, nil)
		if err != nil {
			return false
		}
		type obj struct {
			p  geom.Point
			id ObjectID
		}
		var live []obj
		next := ObjectID(1)
		for step := 0; step < 400; step++ {
			if len(live) == 0 || rnd.Float64() < 0.65 {
				p := geom.Point{rnd.Float64() * 100, rnd.Float64() * 100}
				if err := tr.InsertPoint(p, next); err != nil {
					return false
				}
				live = append(live, obj{p, next})
				next++
			} else {
				i := rnd.Intn(len(live))
				if !tr.DeletePoint(live[i].p, live[i].id) {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		if tr.Len() != len(live) {
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			return false
		}
		all, _ := tr.SearchRect(geom.NewRect(geom.Point{-1, -1}, geom.Point{101, 101}), nil)
		if len(all) != len(live) {
			return false
		}
		seen := map[ObjectID]bool{}
		for _, m := range all {
			seen[m.Object] = true
		}
		for _, o := range live {
			if !seen[o.id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: entry counts are maintained exactly through splits and
// reinserts — checked for several capacities and dimensions.
func TestCountMaintenanceAcrossShapes(t *testing.T) {
	for _, cfg := range []Config{
		{Dim: 2, MaxEntries: 4},
		{Dim: 2, MaxEntries: 50},
		{Dim: 5, MaxEntries: 10},
		{Dim: 10, MaxEntries: 23},
	} {
		tr := mustTree(t, cfg)
		pts := randPoints(7, 700, cfg.Dim)
		for i, p := range pts {
			if err := tr.InsertPoint(p, ObjectID(i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Errorf("cfg %+v: %v", cfg, err)
		}
		// Root-level counts must sum to the dataset size.
		root := tr.Store().Get(tr.Root())
		if root.ObjectCount() != 700 {
			t.Errorf("cfg %+v: root count %d", cfg, root.ObjectCount())
		}
	}
}

func TestRectObjects(t *testing.T) {
	// The tree must also handle non-degenerate rectangles.
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	rnd := rand.New(rand.NewSource(11))
	rects := make([]geom.Rect, 300)
	for i := range rects {
		x, y := rnd.Float64()*100, rnd.Float64()*100
		rects[i] = geom.NewRect(geom.Point{x, y}, geom.Point{x + rnd.Float64()*5, y + rnd.Float64()*5})
		if err := tr.Insert(rects[i], ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	q := geom.NewRect(geom.Point{20, 20}, geom.Point{40, 40})
	got, _ := tr.SearchRect(q, nil)
	want := 0
	for _, r := range rects {
		if r.Intersects(q) {
			want++
		}
	}
	if len(got) != want {
		t.Errorf("rect search: got %d, want %d", len(got), want)
	}
}

func TestWalkVisitsEveryNodeOnce(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(8, 500, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	seen := map[PageID]int{}
	tr.Walk(func(n *Node, depth int) bool {
		seen[n.ID]++
		if depth != tr.Height()-1-n.Level {
			t.Errorf("node %d: depth %d, level %d, height %d", n.ID, depth, n.Level, tr.Height())
		}
		return true
	})
	for id, c := range seen {
		if c != 1 {
			t.Errorf("node %d visited %d times", id, c)
		}
	}
	if len(seen) != tr.Store().Len() {
		t.Errorf("walked %d nodes, store has %d", len(seen), tr.Store().Len())
	}
}

func TestComputeStats(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(9, 400, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	s := tr.ComputeStats()
	if s.Objects != 400 {
		t.Errorf("objects = %d", s.Objects)
	}
	if s.Nodes != s.Leaves+s.Internal {
		t.Error("nodes != leaves + internal")
	}
	if s.AvgLeafFill <= 0.3 || s.AvgLeafFill > 1 {
		t.Errorf("leaf fill = %g out of plausible range", s.AvgLeafFill)
	}
	if s.Height != tr.Height() {
		t.Error("height mismatch")
	}
}

// listenerRecorder records structural events for listener tests.
type listenerRecorder struct {
	created map[PageID][]PageID
	freed   []PageID
	roots   []PageID
}

func (l *listenerRecorder) NodeCreated(n *Node, sibs []PageID) {
	if l.created == nil {
		l.created = map[PageID][]PageID{}
	}
	l.created[n.ID] = append([]PageID(nil), sibs...)
}
func (l *listenerRecorder) NodeFreed(id PageID)   { l.freed = append(l.freed, id) }
func (l *listenerRecorder) RootChanged(id PageID) { l.roots = append(l.roots, id) }

func TestListenerSeesEveryPage(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	rec := &listenerRecorder{}
	tr.SetListener(rec)
	pts := randPoints(10, 800, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	// Every live page must have been reported created.
	ms := tr.Store().(*MemStore)
	for _, id := range ms.IDs() {
		if _, ok := rec.created[id]; !ok {
			t.Errorf("page %d never reported to listener", id)
		}
	}
	// The last reported root must be the actual root.
	if rec.roots[len(rec.roots)-1] != tr.Root() {
		t.Error("listener root out of date")
	}
	// Split-created nodes (non-roots) must carry non-empty sibling lists.
	withSibs := 0
	for _, sibs := range rec.created {
		if len(sibs) > 0 {
			withSibs++
		}
	}
	if withSibs == 0 {
		t.Error("no creation event carried sibling information")
	}
}

func TestListenerFreeOnDelete(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	rec := &listenerRecorder{}
	tr.SetListener(rec)
	pts := randPoints(12, 400, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	for i, p := range pts {
		_ = tr.DeletePoint(p, ObjectID(i))
	}
	if len(rec.freed) == 0 {
		t.Error("no pages reported freed during full deletion")
	}
}
