package rtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func packedTree(t *testing.T, cfg Config, pts []geom.Point) *Tree {
	t.Helper()
	tr, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]Entry, len(pts))
	for i, p := range pts {
		items[i] = LeafEntry(geom.PointRect(p), ObjectID(i))
	}
	if err := tr.BulkLoadSTR(items); err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestBulkLoadInvariants(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 5000} {
		pts := randPoints(91, n, 2)
		tr := packedTree(t, Config{Dim: 2, MaxEntries: 8}, pts)
		if tr.Len() != n {
			t.Fatalf("n=%d: len %d", n, tr.Len())
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestBulkLoadQueriesExact(t *testing.T) {
	pts := randPoints(92, 3000, 3)
	tr := packedTree(t, Config{Dim: 3, MaxEntries: 12}, pts)
	rnd := rand.New(rand.NewSource(93))
	for trial := 0; trial < 10; trial++ {
		q := geom.Point{rnd.Float64() * 1000, rnd.Float64() * 1000, rnd.Float64() * 1000}
		k := 1 + rnd.Intn(40)
		got, _ := tr.NearestNeighbors(q, k)
		want := bruteKNN(pts, q, k)
		for i := range got {
			if d := got[i].DistSq - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d rank %d: %g want %g", trial, i, got[i].DistSq, want[i])
			}
		}
	}
}

func TestBulkLoadRejectsNonEmpty(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	_ = tr.InsertPoint(geom.Point{1, 1}, 1)
	if err := tr.BulkLoadSTR([]Entry{LeafEntry(geom.PointRect(geom.Point{2, 2}), 2)}); err == nil {
		t.Error("bulk load accepted non-empty tree")
	}
}

func TestBulkLoadRejectsWrongDim(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	if err := tr.BulkLoadSTR([]Entry{LeafEntry(geom.PointRect(geom.Point{1, 2, 3}), 1)}); err == nil {
		t.Error("bulk load accepted wrong-dim item")
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	pts := randPoints(94, 8000, 2)
	incr := mustTree(t, Config{Dim: 2, MaxEntries: 16})
	for i, p := range pts {
		_ = incr.InsertPoint(p, ObjectID(i))
	}
	packed := packedTree(t, Config{Dim: 2, MaxEntries: 16}, pts)
	si, sp := incr.ComputeStats(), packed.ComputeStats()
	if sp.Nodes >= si.Nodes {
		t.Errorf("packed tree has %d nodes, incremental %d", sp.Nodes, si.Nodes)
	}
	if sp.AvgLeafFill < 0.9 {
		t.Errorf("packed leaf fill %.2f, want ≥ 0.9", sp.AvgLeafFill)
	}
	// Packed trees must answer range queries with fewer node accesses
	// on average.
	var accI, accP int
	rnd := rand.New(rand.NewSource(95))
	for trial := 0; trial < 20; trial++ {
		x, y := rnd.Float64()*900, rnd.Float64()*900
		q := geom.NewRect(geom.Point{x, y}, geom.Point{x + 60, y + 60})
		mi, ni := incr.SearchRect(q, nil)
		mp, np := packed.SearchRect(q, nil)
		if len(mi) != len(mp) {
			t.Fatalf("result mismatch: %d vs %d", len(mi), len(mp))
		}
		accI += ni
		accP += np
	}
	if accP >= accI {
		t.Errorf("packed accesses %d not below incremental %d", accP, accI)
	}
}

func TestBulkLoadSRTree(t *testing.T) {
	pts := randPoints(96, 2000, 4)
	tr := packedTree(t, Config{Dim: 4, MaxEntries: 10, UseSpheres: true}, pts)
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBulkLoadThenMutate(t *testing.T) {
	pts := randPoints(97, 1200, 2)
	tr := packedTree(t, Config{Dim: 2, MaxEntries: 8}, pts)
	// Packed trees must accept subsequent inserts and deletes.
	extra := randPoints(98, 300, 2)
	for i, p := range extra {
		if err := tr.InsertPoint(p, ObjectID(10000+i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 600; i++ {
		if !tr.DeletePoint(pts[i], ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1200+300-600 {
		t.Errorf("len = %d", tr.Len())
	}
}

// Property: bulk load over arbitrary point multisets preserves the
// exact content (search returns every object once).
func TestBulkLoadContentProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw) % 2000
		pts := randPoints(seed, n, 2)
		tr, err := New(Config{Dim: 2, MaxEntries: 8}, nil)
		if err != nil {
			return false
		}
		items := make([]Entry, n)
		for i, p := range pts {
			items[i] = LeafEntry(geom.PointRect(p), ObjectID(i))
		}
		if err := tr.BulkLoadSTR(items); err != nil {
			return false
		}
		if tr.CheckInvariants() != nil {
			return false
		}
		all, _ := tr.SearchRect(geom.NewRect(geom.Point{-1, -1}, geom.Point{1001, 1001}), nil)
		if len(all) != n {
			return false
		}
		ids := make([]int, len(all))
		for i, m := range all {
			ids[i] = int(m.Object)
		}
		sort.Ints(ids)
		for i, id := range ids {
			if id != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
