package rtree

import (
	"testing"

	"repro/internal/geom"
)

func TestTraceOpInsert(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(51, 500, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	// A plain insert reads the root-to-leaf path and writes at least the
	// leaf.
	trace := tr.TraceOp(func() {
		_ = tr.InsertPoint(geom.Point{500, 500}, 9999)
	})
	if len(trace.Reads) < tr.Height() {
		t.Errorf("insert read %d pages, height is %d", len(trace.Reads), tr.Height())
	}
	if len(trace.Writes) < 1 {
		t.Error("insert wrote no pages")
	}
	// IDs are sorted and unique.
	for i := 1; i < len(trace.Reads); i++ {
		if trace.Reads[i] <= trace.Reads[i-1] {
			t.Error("reads not sorted/unique")
		}
	}
}

func TestTraceOpDelete(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	pts := randPoints(52, 400, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	trace := tr.TraceOp(func() {
		if !tr.DeletePoint(pts[7], 7) {
			t.Fatal("delete failed")
		}
	})
	if len(trace.Reads) == 0 || len(trace.Writes) == 0 {
		t.Errorf("delete trace empty: %+v", trace)
	}
}

func TestTraceOpDisarmed(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 8})
	_ = tr.InsertPoint(geom.Point{1, 1}, 1)
	// Operations outside TraceOp must not leak into a later trace.
	_ = tr.InsertPoint(geom.Point{2, 2}, 2)
	trace := tr.TraceOp(func() {})
	if len(trace.Reads) != 0 || len(trace.Writes) != 0 {
		t.Errorf("empty op traced %+v", trace)
	}
}

func TestTraceOpSplitWritesMultiplePages(t *testing.T) {
	tr := mustTree(t, Config{Dim: 2, MaxEntries: 4, MinEntries: 2})
	// Fill one leaf to the brim; the next insert splits it.
	for i := 0; i < 4; i++ {
		_ = tr.InsertPoint(geom.Point{float64(i), 0}, ObjectID(i))
	}
	trace := tr.TraceOp(func() {
		_ = tr.InsertPoint(geom.Point{9, 0}, 99)
	})
	// Split: old leaf + new leaf + new root all written.
	if len(trace.Writes) < 3 {
		t.Errorf("split wrote only %v", trace.Writes)
	}
}
