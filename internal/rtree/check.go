package rtree

import (
	"fmt"

	"repro/internal/geom"
)

// CheckInvariants validates the structural invariants of the tree and
// returns the first violation found, or nil. It verifies:
//
//  1. every parent entry's MBR equals the exact cover of its child,
//  2. every parent entry's Count equals the child's subtree object count
//     (the SIGMOD'98 modification this reproduction depends on),
//  3. all leaves sit at level 0 and depth is uniform (height balance),
//  4. non-root nodes respect the minimum fill, no node exceeds capacity,
//  5. the recorded tree size matches the number of leaf entries,
//  6. levels decrease by exactly one per step down.
//
// In SR mode (Config.UseSpheres) it additionally verifies that every
// directory entry's sphere covers every data point in its subtree.
//
// It is exported (rather than test-local) so integration tests in other
// packages can assert tree health after builds and mixed workloads.
func (t *Tree) CheckInvariants() error {
	root := t.store.Get(t.root)
	if root.Level != t.height-1 {
		return fmt.Errorf("root level %d != height-1 %d", root.Level, t.height-1)
	}
	count, err := t.checkNode(root, true)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("leaf entries %d != recorded size %d", count, t.size)
	}
	if t.cfg.UseSpheres && t.size > 0 {
		if _, err := t.checkSpheres(root); err != nil {
			return err
		}
	}
	return nil
}

// checkSpheres verifies sphere containment bottom-up and returns all
// data-point centers in the subtree.
func (t *Tree) checkSpheres(n *Node) ([]geom.Point, error) {
	if n.IsLeaf() {
		pts := make([]geom.Point, len(n.Entries))
		for i, e := range n.Entries {
			if !e.Sphere.Valid() {
				return nil, fmt.Errorf("leaf %d entry %d: missing sphere in SR mode", n.ID, i)
			}
			pts[i] = e.Rect.Center()
		}
		return pts, nil
	}
	var all []geom.Point
	for i, e := range n.Entries {
		child := t.store.Get(e.Child)
		pts, err := t.checkSpheres(child)
		if err != nil {
			return nil, err
		}
		if !e.Sphere.Valid() {
			return nil, fmt.Errorf("node %d entry %d: missing sphere in SR mode", n.ID, i)
		}
		tol := geom.SphereEps + e.Sphere.Radius*1e-9
		for _, p := range pts {
			if !e.Sphere.Contains(p, tol) {
				return nil, fmt.Errorf("node %d entry %d: sphere (r=%g) misses subtree point %v (dist %g)",
					n.ID, i, e.Sphere.Radius, p, e.Sphere.Center.Dist(p))
			}
		}
		all = append(all, pts...)
	}
	return all, nil
}

func (t *Tree) checkNode(n *Node, isRoot bool) (int, error) {
	if len(n.Entries) > t.cfg.MaxEntries {
		// X-tree supernodes may legitimately exceed one page — but only
		// directory nodes, and only when the variant is enabled.
		if t.cfg.MaxOverlapRatio == 0 || n.IsLeaf() {
			return 0, fmt.Errorf("node %d: %d entries exceeds capacity %d", n.ID, len(n.Entries), t.cfg.MaxEntries)
		}
	}
	if !isRoot && len(n.Entries) < t.cfg.MinEntries {
		return 0, fmt.Errorf("node %d: %d entries below minimum %d", n.ID, len(n.Entries), t.cfg.MinEntries)
	}
	if isRoot && n.IsLeaf() && t.size == 0 {
		return 0, nil // empty tree: bare root leaf
	}
	if n.IsLeaf() {
		for i, e := range n.Entries {
			if e.Count != 1 {
				return 0, fmt.Errorf("leaf %d entry %d: count %d != 1", n.ID, i, e.Count)
			}
			if e.Child != NilPage {
				return 0, fmt.Errorf("leaf %d entry %d: unexpected child pointer", n.ID, i)
			}
		}
		return len(n.Entries), nil
	}
	total := 0
	for i, e := range n.Entries {
		child := t.store.Get(e.Child)
		if child.Level != n.Level-1 {
			return 0, fmt.Errorf("node %d entry %d: child level %d, want %d", n.ID, i, child.Level, n.Level-1)
		}
		if !e.Rect.Equal(child.MBR()) {
			return 0, fmt.Errorf("node %d entry %d: stale MBR %v vs child cover %v", n.ID, i, e.Rect, child.MBR())
		}
		cc, err := t.checkNode(child, false)
		if err != nil {
			return 0, err
		}
		if e.Count != cc {
			return 0, fmt.Errorf("node %d entry %d: count %d != subtree objects %d", n.ID, i, e.Count, cc)
		}
		total += cc
	}
	return total, nil
}

// Stats summarizes the tree's shape for reporting tools.
type Stats struct {
	Height      int
	Nodes       int
	Leaves      int
	Internal    int
	Objects     int
	AvgLeafFill float64 // mean leaf occupancy as a fraction of capacity
	AvgDirFill  float64 // mean internal occupancy
	Bounds      geom.Rect
}

// ComputeStats walks the tree and returns shape statistics.
func (t *Tree) ComputeStats() Stats {
	s := Stats{Height: t.height, Objects: t.size}
	var leafEntries, dirEntries int
	t.Walk(func(n *Node, _ int) bool {
		s.Nodes++
		if n.IsLeaf() {
			s.Leaves++
			leafEntries += len(n.Entries)
		} else {
			s.Internal++
			dirEntries += len(n.Entries)
		}
		return true
	})
	if s.Leaves > 0 {
		s.AvgLeafFill = float64(leafEntries) / float64(s.Leaves*t.cfg.MaxEntries)
	}
	if s.Internal > 0 {
		s.AvgDirFill = float64(dirEntries) / float64(s.Internal*t.cfg.MaxEntries)
	}
	if b, ok := t.Bounds(); ok {
		s.Bounds = b
	}
	return s
}
