package rtree

import (
	"repro/internal/geom"
)

// Delete removes one object with the given MBR and ObjectID. It returns
// false when no matching entry exists. Underfull nodes on the deletion
// path are dissolved and their entries reinserted at their original
// level (Guttman's CondenseTree), and the root is collapsed when it is
// internal with a single child.
func (t *Tree) Delete(r geom.Rect, obj ObjectID) bool {
	leafID, path := t.findLeaf(t.store.Get(t.root), r, obj, nil)
	if leafID == NilPage {
		return false
	}
	leaf := t.store.Get(leafID)
	for i, e := range leaf.Entries {
		if e.Object == obj && e.Rect.Equal(r) {
			leaf.removeEntry(i)
			t.store.Update(leaf)
			break
		}
	}
	t.size--
	t.condense(path)
	return true
}

// DeletePoint removes a point object.
func (t *Tree) DeletePoint(p geom.Point, obj ObjectID) bool {
	return t.Delete(geom.PointRect(p), obj)
}

// findLeaf locates the leaf containing the (r, obj) entry. It returns
// the leaf's page ID and the root-to-leaf path (inclusive of the leaf).
func (t *Tree) findLeaf(n *Node, r geom.Rect, obj ObjectID, path []PageID) (PageID, []PageID) {
	path = append(path, n.ID)
	if n.IsLeaf() {
		for _, e := range n.Entries {
			if e.Object == obj && e.Rect.Equal(r) {
				return n.ID, path
			}
		}
		return NilPage, nil
	}
	for _, e := range n.Entries {
		if e.Rect.Contains(r) {
			if id, p := t.findLeaf(t.store.Get(e.Child), r, obj, path); id != NilPage {
				return id, p
			}
		}
	}
	return NilPage, nil
}

// condense walks the deletion path bottom-up: underfull non-root nodes
// are removed and their entries queued for reinsertion; surviving nodes
// get their parent entry's MBR and count refreshed. Finally the queued
// entries are reinserted at their original levels and a degenerate root
// is collapsed.
func (t *Tree) condense(path []PageID) {
	type orphan struct {
		e     Entry
		level int
	}
	var orphans []orphan

	for i := len(path) - 1; i >= 1; i-- {
		n := t.store.Get(path[i])
		parent := t.store.Get(path[i-1])
		idx := parent.entryIndex(n.ID)
		if idx < 0 {
			// The node was dissolved already (can't happen on a simple
			// path) — defensive.
			continue
		}
		if len(n.Entries) < t.cfg.MinEntries {
			// Dissolve n: queue its entries for reinsertion at n's level.
			for _, e := range n.Entries {
				orphans = append(orphans, orphan{e, n.Level})
			}
			parent.removeEntry(idx)
			t.store.Free(n.ID)
			t.listener.NodeFreed(n.ID)
		} else {
			parent.Entries[idx] = t.entryFor(n)
		}
		t.store.Update(parent)
	}

	// Reinsert orphans, deepest level first so subtree entries find
	// parents at the right height.
	for _, o := range orphans {
		t.reinsertedAtLevel = make(map[int]bool)
		t.insertEntry(o.e, o.level)
		t.drainPending()
	}

	// Collapse a root that is internal with exactly one child.
	for {
		root := t.store.Get(t.root)
		if root.IsLeaf() || len(root.Entries) != 1 {
			break
		}
		child := root.Entries[0].Child
		t.store.Free(root.ID)
		t.listener.NodeFreed(root.ID)
		t.root = child
		t.height--
		t.listener.RootChanged(child)
	}
}
