package rtree

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// BulkLoadSTR replaces the contents of an empty tree with a packed tree
// built by Sort-Tile-Recursive (Leutenegger, López & Edgington, ICDE
// 1997). The paper's setting is dynamic, so its trees are built by
// one-by-one insertion and "complete reorganization of the database ...
// is prohibited" (§1); bulk loading exists here to *quantify* what that
// reorganization would buy — the packing ablation compares query cost
// on incremental vs packed trees.
//
// Packing proceeds bottom-up: the objects are tiled into full leaves by
// recursive slab sorting, then each level's nodes are tiled the same
// way by their MBR centers until one root remains. The structural
// listener fires for every created page, so declustering policies place
// packed pages exactly like split-created ones.
func (t *Tree) BulkLoadSTR(items []Entry) error {
	if t.size != 0 {
		return fmt.Errorf("rtree: BulkLoadSTR requires an empty tree, have %d objects", t.size)
	}
	for i := range items {
		if items[i].Rect.Dim() != t.cfg.Dim {
			return fmt.Errorf("rtree: item %d has dim %d, tree dim %d", i, items[i].Rect.Dim(), t.cfg.Dim)
		}
		items[i].Count = 1
		items[i].Child = NilPage
		if t.cfg.UseSpheres && !items[i].Sphere.Valid() {
			c := items[i].Rect.Center()
			items[i].Sphere = geom.Sphere{Center: c, Radius: c.Dist(items[i].Rect.Hi)}
		}
	}
	if len(items) == 0 {
		return nil
	}

	oldRoot := t.root

	level := 0
	entries := items
	for {
		if len(entries) <= t.cfg.MaxEntries {
			// Final level: one root node.
			root := t.store.Allocate(level)
			// Copy: tiling yields subslices of a shared backing array,
			// and node entry slices must be independently growable.
			root.Entries = append([]Entry(nil), entries...)
			t.store.Update(root)
			t.listener.NodeCreated(root, nil)
			// Release the placeholder root the constructor made.
			t.store.Free(oldRoot)
			t.listener.NodeFreed(oldRoot)
			t.root = root.ID
			t.height = level + 1
			t.size = len(items)
			t.listener.RootChanged(root.ID)
			return nil
		}
		groups := strTile(entries, t.cfg.MaxEntries, t.cfg.Dim, 0)
		groups = fixMinFill(groups, t.cfg.MinEntries, t.cfg.MaxEntries)
		next := make([]Entry, 0, len(groups))
		var recent []PageID // spatially adjacent predecessors, for placement
		for _, g := range groups {
			n := t.store.Allocate(level)
			n.Entries = append([]Entry(nil), g...)
			t.store.Update(n)
			// Report with the trailing window of same-level pages as
			// siblings: under STR those are the spatial neighbors a
			// declustering policy wants to scatter.
			sibs := recent
			if len(sibs) > 16 {
				sibs = sibs[len(sibs)-16:]
			}
			t.listener.NodeCreated(n, append([]PageID(nil), sibs...))
			recent = append(recent, n.ID)
			next = append(next, t.entryFor(n))
		}
		entries = next
		level++
	}
}

// strTile splits entries into groups of at most capacity using the STR
// tiling: sort by the current axis, cut into ceil(P^(1/remaining))
// slabs, recurse within each slab on the next axis.
func strTile(entries []Entry, capacity, dim, axis int) [][]Entry {
	n := len(entries)
	if n <= capacity {
		return [][]Entry{entries}
	}
	pages := int(math.Ceil(float64(n) / float64(capacity)))
	remaining := dim - axis
	if remaining <= 1 {
		// Last axis: straight run packing.
		sortByCenter(entries, axis)
		return chunk(entries, capacity)
	}
	slabs := int(math.Ceil(math.Pow(float64(pages), 1/float64(remaining))))
	if slabs < 1 {
		slabs = 1
	}
	sortByCenter(entries, axis)
	slabSize := (n + slabs - 1) / slabs
	var out [][]Entry
	for start := 0; start < n; start += slabSize {
		end := start + slabSize
		if end > n {
			end = n
		}
		out = append(out, strTile(entries[start:end], capacity, dim, axis+1)...)
	}
	return out
}

func sortByCenter(entries []Entry, axis int) {
	sort.SliceStable(entries, func(i, j int) bool {
		ci := entries[i].Rect.Lo[axis] + entries[i].Rect.Hi[axis]
		cj := entries[j].Rect.Lo[axis] + entries[j].Rect.Hi[axis]
		return ci < cj
	})
}

// chunk cuts entries into capacity-sized groups.
func chunk(entries []Entry, capacity int) [][]Entry {
	var out [][]Entry
	n := len(entries)
	for start := 0; start < n; start += capacity {
		end := start + capacity
		if end > n {
			end = n
		}
		out = append(out, entries[start:end])
	}
	return out
}

// fixMinFill rebalances the tiled groups so every one satisfies the
// minimum fill (slab remainders can leave short tail groups). Adjacent
// groups are spatial neighbors under STR, so borrowing from the
// predecessor barely perturbs locality.
func fixMinFill(groups [][]Entry, min, capacity int) [][]Entry {
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		if len(g) >= min {
			continue
		}
		prev := groups[i-1]
		need := min - len(g)
		if len(prev)-need >= min {
			// Borrow the predecessor's tail.
			cut := len(prev) - need
			merged := append(append([]Entry(nil), prev[cut:]...), g...)
			groups[i-1] = prev[:cut]
			groups[i] = merged
		} else if len(prev)+len(g) <= capacity {
			// Merge the two neighbors outright.
			groups[i-1] = append(append([]Entry(nil), prev...), g...)
			groups = append(groups[:i], groups[i+1:]...)
			i--
		}
	}
	return groups
}
