package rtree

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func srTree(t *testing.T, dim, maxEntries int) *Tree {
	t.Helper()
	tr, err := New(Config{Dim: dim, MaxEntries: maxEntries, UseSpheres: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestSRCapacitySmaller(t *testing.T) {
	// Sphere entries cost page space, so the SR fanout must be smaller.
	for _, dim := range []int{2, 5, 10} {
		r := CapacityForPageEx(4096, dim, false)
		s := CapacityForPageEx(4096, dim, true)
		if s >= r {
			t.Errorf("dim %d: SR capacity %d not below rect capacity %d", dim, s, r)
		}
	}
	// 2-d SR: (4096-16)/(44+24) = 60
	if got := CapacityForPageEx(4096, 2, true); got != 60 {
		t.Errorf("2-d SR capacity = %d, want 60", got)
	}
}

func TestSRInvariantsUnderInserts(t *testing.T) {
	tr := srTree(t, 3, 10)
	pts := randPoints(21, 1500, 3)
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjectID(i)); err != nil {
			t.Fatal(err)
		}
		if i%487 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d inserts: %v", i+1, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every entry must carry a sphere.
	tr.Walk(func(n *Node, _ int) bool {
		for i, e := range n.Entries {
			if !e.Sphere.Valid() {
				t.Errorf("node %d entry %d: no sphere", n.ID, i)
			}
		}
		return true
	})
}

func TestSRInvariantsUnderDeletes(t *testing.T) {
	tr := srTree(t, 2, 8)
	pts := randPoints(22, 800, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	for i := 0; i < 600; i++ {
		if !tr.DeletePoint(pts[i], ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestSRNearestNeighborsExact(t *testing.T) {
	tr := srTree(t, 5, 12)
	pts := randPoints(23, 900, 5)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	rnd := rand.New(rand.NewSource(24))
	for trial := 0; trial < 10; trial++ {
		q := make(geom.Point, 5)
		for d := range q {
			q[d] = rnd.Float64() * 1000
		}
		k := 1 + rnd.Intn(30)
		got, _ := tr.NearestNeighbors(q, k)
		want := bruteKNN(pts, q, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d results, want %d", trial, len(got), len(want))
		}
		for i := range got {
			if diff := got[i].DistSq - want[i]; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("trial %d rank %d: %g want %g", trial, i, got[i].DistSq, want[i])
			}
		}
	}
}

// Property: mixed insert/delete workloads keep SR invariants (including
// sphere containment of every subtree point).
func TestSRMixedWorkloadProperty(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		tr, err := New(Config{Dim: 2, MaxEntries: 8, UseSpheres: true}, nil)
		if err != nil {
			return false
		}
		type obj struct {
			p  geom.Point
			id ObjectID
		}
		var live []obj
		next := ObjectID(1)
		for step := 0; step < 250; step++ {
			if len(live) == 0 || rnd.Float64() < 0.7 {
				p := geom.Point{rnd.Float64() * 100, rnd.Float64() * 100}
				if err := tr.InsertPoint(p, next); err != nil {
					return false
				}
				live = append(live, obj{p, next})
				next++
			} else {
				i := rnd.Intn(len(live))
				if !tr.DeletePoint(live[i].p, live[i].id) {
					return false
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			}
		}
		return tr.CheckInvariants() == nil && tr.Len() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
