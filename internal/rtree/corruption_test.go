package rtree

import (
	"strings"
	"testing"

	"repro/internal/geom"
)

// buildCorruptible grows a tree tall enough to have internal nodes, so
// each corruption below can target a directory entry.
func buildCorruptible(t *testing.T) *Tree {
	t.Helper()
	tr, err := New(Config{Dim: 2, MaxEntries: 4, MinEntries: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p := geom.Point{float64(i % 8), float64(i / 8)}
		if err := tr.InsertPoint(p, ObjectID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Height() < 2 {
		t.Fatalf("tree too shallow to corrupt: height %d", tr.Height())
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("healthy tree fails invariants: %v", err)
	}
	return tr
}

// root returns the root node via the store, which hands back the live
// *Node — mutating it corrupts the tree in place.
func rootNode(t *testing.T, tr *Tree) *Node {
	t.Helper()
	n := tr.Store().Get(tr.Root())
	if n == nil {
		t.Fatalf("root %d not in store", tr.Root())
	}
	return n
}

// TestCheckInvariantsDetectsStaleMBR widens a directory entry's MBR so
// it no longer equals the exact cover of its child.
func TestCheckInvariantsDetectsStaleMBR(t *testing.T) {
	tr := buildCorruptible(t)
	root := rootNode(t, tr)
	root.Entries[0].Rect.Hi[0] += 1.5
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a stale parent MBR")
	}
	if !strings.Contains(err.Error(), "stale MBR") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}

// TestCheckInvariantsDetectsWrongCount breaks the SIGMOD'98 subtree
// object counter a directory entry carries.
func TestCheckInvariantsDetectsWrongCount(t *testing.T) {
	tr := buildCorruptible(t)
	root := rootNode(t, tr)
	root.Entries[0].Count++
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a wrong subtree count")
	}
	if !strings.Contains(err.Error(), "subtree objects") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}

// TestCheckInvariantsDetectsUnderfilledNode strips a non-root node below
// the minimum fill (fixing up the parent's MBR and count so the fill
// violation is the first one encountered).
func TestCheckInvariantsDetectsUnderfilledNode(t *testing.T) {
	tr := buildCorruptible(t)
	root := rootNode(t, tr)
	child := tr.Store().Get(root.Entries[0].Child)
	child.Entries = child.Entries[:1]
	// Patch the parent entry to match the truncated child, so the fill
	// violation is the first one the walk encounters.
	root.Entries[0].Rect = child.MBR()
	root.Entries[0].Count = child.Entries[0].Count
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted an under-filled node")
	}
	if !strings.Contains(err.Error(), "below minimum") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}

// TestCheckInvariantsDetectsLevelSkew rewrites a child's level so levels
// no longer decrease by one per step.
func TestCheckInvariantsDetectsLevelSkew(t *testing.T) {
	tr := buildCorruptible(t)
	root := rootNode(t, tr)
	tr.Store().Get(root.Entries[0].Child).Level++
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a level skew")
	}
	if !strings.Contains(err.Error(), "child level") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}

// TestCheckInvariantsDetectsSizeDrift removes a leaf entry (fixing the
// ancestors' MBRs and counts is deliberately skipped: the count check
// fires before the size check, so drop the whole subtree bookkeeping by
// editing the leaf through the parent chain) — the recorded size then
// disagrees with the actual number of leaf entries.
func TestCheckInvariantsDetectsSizeDrift(t *testing.T) {
	tr := buildCorruptible(t)
	tr.size++ // simulate a lost insert/delete accounting bug
	err := tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a size drift")
	}
	if !strings.Contains(err.Error(), "recorded size") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}

// TestCheckInvariantsDetectsMissingSphere erases a directory sphere in
// SR mode.
func TestCheckInvariantsDetectsMissingSphere(t *testing.T) {
	tr, err := New(Config{Dim: 2, MaxEntries: 4, UseSpheres: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p := geom.Point{float64(i % 8), float64(i / 8)}
		if err := tr.InsertPoint(p, ObjectID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatalf("healthy SR-tree fails invariants: %v", err)
	}
	root := rootNode(t, tr)
	root.Entries[0].Sphere = geom.Sphere{}
	err = tr.CheckInvariants()
	if err == nil {
		t.Fatal("CheckInvariants accepted a missing sphere in SR mode")
	}
	if !strings.Contains(err.Error(), "missing sphere") {
		t.Fatalf("wrong violation reported: %v", err)
	}
}
