package rtree

import (
	"repro/internal/geom"
)

// FlatNode is the struct-of-arrays view of a node's geometry, the input
// format of the batch distance kernels in package geom: entry i's MBR
// spans Rects.Lo[a][i]..Rects.Hi[a][i] on axis a. Identity data (child
// pages, object IDs, counts) stays in Node.Entries — the flat form
// carries only what the candidate-filtering passes compute on, packed
// into one contiguous allocation per node.
//
// A FlatNode is immutable once built. It is built lazily by Node.Flat
// on the live-node paths (immediate driver, simulator) and eagerly at
// page-decode time by pagestore.Codec (the concurrent engine's read
// path), so the buffer pool caches the flat form along with the node.
type FlatNode struct {
	// Rects is the SoA view of every entry's MBR.
	Rects geom.RectSoA
	// Spheres is non-nil iff every entry carries a valid bounding
	// sphere (the SR-tree layout guarantees this for encoded nodes; see
	// pagestore.Codec.Encode). When nil, entries have no spheres.
	Spheres *geom.SphereSoA
	// MixedSpheres is true when some but not all entries carry spheres
	// — impossible for codec-encoded nodes but reachable with hand-built
	// ones. Consumers must fall back to the per-entry scalar path so the
	// sphere tightening stays bit-identical with the scalar semantics.
	MixedSpheres bool
}

// BuildFlat constructs the flat view of a node. The node's entries must
// share one dimensionality (a tree invariant).
func BuildFlat(n *Node) *FlatNode {
	m := len(n.Entries)
	f := &FlatNode{}
	if m == 0 {
		return f
	}
	dim := n.Entries[0].Rect.Dim()
	f.Rects = geom.MakeRectSoA(dim, m)
	withSphere := 0
	for i := range n.Entries {
		e := &n.Entries[i]
		for a := 0; a < dim; a++ {
			f.Rects.Lo[a][i] = e.Rect.Lo[a]
			f.Rects.Hi[a][i] = e.Rect.Hi[a]
		}
		if e.Sphere.Valid() {
			withSphere++
		}
	}
	switch withSphere {
	case 0:
	case m:
		s := geom.MakeSphereSoA(dim, m)
		for i := range n.Entries {
			e := &n.Entries[i]
			for a := 0; a < dim; a++ {
				s.Center[a][i] = e.Sphere.Center[a]
			}
			s.Radius[i] = e.Sphere.Radius
		}
		f.Spheres = &s
	default:
		f.MixedSpheres = true
	}
	return f
}

// Flat returns the node's flat geometry view, building and caching it on
// first use. The cache is dropped whenever the node is mutated (every
// structural mutation flows through Store.Update or removeEntry).
// Concurrent first calls may build duplicate views; that race is benign
// — the views are identical and the last store wins — which is what the
// engine's shared resident supernodes rely on.
func (n *Node) Flat() *FlatNode {
	if f := n.flat.Load(); f != nil {
		return f
	}
	f := BuildFlat(n)
	n.flat.Store(f)
	return f
}

// InvalidateFlat drops the cached flat view after a mutation. Store
// implementations call it from Update; in-place entry edits that bypass
// Update must call it directly.
func (n *Node) InvalidateFlat() { n.flat.Store(nil) }
