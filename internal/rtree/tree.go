package rtree

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/geom"
)

// Listener observes structural changes to the tree. The parallel layer
// uses it to assign newly created pages to disks (declustering) at the
// moment the paper prescribes: "upon a split ... the newly created page"
// is placed relative to its sibling pages.
type Listener interface {
	// NodeCreated fires when a node comes into existence. siblings holds
	// the page IDs of the nodes that share (or will share) the new node's
	// parent, excluding the node itself; it is empty for a new root.
	NodeCreated(n *Node, siblings []PageID)
	// NodeFreed fires when a page is released.
	NodeFreed(id PageID)
	// RootChanged fires when the root page changes.
	RootChanged(root PageID)
}

// nopListener is used when the caller installs no listener.
type nopListener struct{}

func (nopListener) NodeCreated(*Node, []PageID) {}
func (nopListener) NodeFreed(PageID)            {}
func (nopListener) RootChanged(PageID)          {}

// Config controls tree geometry.
type Config struct {
	Dim        int // dimensionality of indexed rectangles
	MaxEntries int // node capacity M
	MinEntries int // minimum fill m (0 means 40% of M, the R* default)
	// ReinsertFraction is the share of M+1 entries removed by forced
	// reinsertion (0 means the R* default of 30%).
	ReinsertFraction float64
	// UseSpheres turns the tree into an SR-tree variant (Katayama &
	// Satoh, SIGMOD 1997): every entry additionally maintains a
	// bounding sphere centered at its subtree's point centroid, the
	// descent follows nearest centroids, and queries intersect the
	// rectangle and sphere bounds. Spheres consume page space, so the
	// fanout shrinks (see CapacityForPageEx).
	UseSpheres bool
	// MaxOverlapRatio enables the X-tree variant (Berchtold, Keim &
	// Kriegel, VLDB 1996): when splitting a directory node would
	// produce groups whose MBRs overlap by more than this Jaccard
	// fraction, the split is refused and the node grows into a
	// supernode spanning multiple disk pages (reading it costs
	// ceil(entries/capacity) sequential page transfers — accounted by
	// the query layer via Node.Pages). 0 disables the behavior; the
	// X-tree's recommended value is 0.2. Leaf nodes always split.
	MaxOverlapRatio float64
}

// CapacityForPage derives the node capacity from a page size in bytes
// and the space dimensionality, using the on-page layout of package
// pagestore (16-byte header, per entry: 2*dim float64 corners + 8-byte
// reference + 4-byte count).
func CapacityForPage(pageBytes, dim int) int {
	return CapacityForPageEx(pageBytes, dim, false)
}

// CapacityForPageEx is CapacityForPage with the SR-tree layout option:
// sphere entries additionally store a dim-float64 center and a float64
// radius, reducing the fanout — the SR-tree's inherent trade.
func CapacityForPageEx(pageBytes, dim int, spheres bool) int {
	const header = 16
	entry := dim*2*8 + 8 + 4
	if spheres {
		entry += dim*8 + 8
	}
	c := (pageBytes - header) / entry
	if c < 4 {
		c = 4
	}
	return c
}

func (c *Config) fill() error {
	if c.Dim <= 0 {
		return fmt.Errorf("rtree: dimension must be positive, got %d", c.Dim)
	}
	if c.MaxEntries < 4 {
		return fmt.Errorf("rtree: MaxEntries must be >= 4, got %d", c.MaxEntries)
	}
	if c.MinEntries == 0 {
		c.MinEntries = (c.MaxEntries * 2) / 5 // 40%
	}
	if c.MinEntries < 1 || c.MinEntries > c.MaxEntries/2 {
		return fmt.Errorf("rtree: MinEntries %d out of range [1, %d]", c.MinEntries, c.MaxEntries/2)
	}
	if c.ReinsertFraction == 0 {
		c.ReinsertFraction = 0.3
	}
	if c.ReinsertFraction < 0 || c.ReinsertFraction > 0.5 {
		return fmt.Errorf("rtree: ReinsertFraction %g out of range (0, 0.5]", c.ReinsertFraction)
	}
	return nil
}

// Tree is an R*-tree over a Store.
type Tree struct {
	cfg      Config
	store    Store
	listener Listener
	root     PageID
	height   int // number of levels; 1 = root is a leaf
	size     int // number of data objects

	// reinsertedAtLevel flags forced reinsertion per level within one
	// top-level insert operation (OverflowTreatment is invoked at most
	// once per level per insert).
	reinsertedAtLevel map[int]bool

	// pending holds entries evicted by forced reinsertion. They are
	// drained at the top level of Insert/Delete rather than re-entering
	// the tree mid-recursion: a reentrant insert could split an ancestor
	// while a stack frame still holds an index into it.
	pending []pendingReinsert
}

type pendingReinsert struct {
	e     Entry
	level int
}

// New creates an empty R*-tree over the given store.
func New(cfg Config, store Store) (*Tree, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if store == nil {
		store = NewMemStore()
	}
	// All structural operations run through a tracing wrapper so that
	// TraceOp can report the exact page I/O of an insert or delete.
	store = &tracingStore{inner: store}
	t := &Tree{cfg: cfg, store: store, listener: nopListener{}}
	root := store.Allocate(0)
	t.root = root.ID
	t.height = 1
	t.listener.NodeCreated(root, nil)
	t.listener.RootChanged(root.ID)
	return t, nil
}

// Restore reconstructs a tree around an existing store (e.g. pages
// decoded from a snapshot). The store must already contain a consistent
// tree rooted at root; size is the number of data objects. The caller
// should run CheckInvariants afterwards — Restore validates only the
// root's existence and level.
func Restore(cfg Config, store Store, root PageID, size int) (*Tree, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if store == nil {
		return nil, errors.New("rtree: Restore requires a store")
	}
	rootNode := store.Get(root) // panics on unknown page, as documented
	t := &Tree{
		cfg:      cfg,
		store:    &tracingStore{inner: store},
		listener: nopListener{},
		root:     root,
		height:   rootNode.Level + 1,
		size:     size,
	}
	return t, nil
}

// SetListener installs a structural-change listener. It must be called
// before any inserts; pages already created are reported only to the
// previous listener. Passing nil removes the listener.
func (t *Tree) SetListener(l Listener) {
	if l == nil {
		t.listener = nopListener{}
		return
	}
	t.listener = l
	// Report the pre-existing root so the listener's page table is complete.
	l.NodeCreated(t.store.Get(t.root), nil)
	l.RootChanged(t.root)
}

// Config returns the tree's effective configuration.
func (t *Tree) Config() Config { return t.cfg }

// Root returns the root page ID.
func (t *Tree) Root() PageID { return t.root }

// Height returns the number of levels (1 when the root is a leaf).
func (t *Tree) Height() int { return t.height }

// Len returns the number of data objects indexed.
func (t *Tree) Len() int { return t.size }

// Store exposes the underlying node store (query executors read pages
// through it). It returns the store the tree was built over; only the
// tree's own structural operations flow through the tracing wrapper.
func (t *Tree) Store() Store { return t.store.(*tracingStore).inner }

// TraceOp runs fn (typically one Insert or Delete) and returns the
// distinct pages it read and wrote. Page IDs appear in ascending order.
// TraceOp is not reentrant.
func (t *Tree) TraceOp(fn func()) OpTrace {
	ts := t.store.(*tracingStore)
	ts.armed = true
	ts.reads = make(map[PageID]bool)
	ts.writes = make(map[PageID]bool)
	defer func() {
		ts.armed = false
		ts.reads = nil
		ts.writes = nil
	}()
	fn()
	var tr OpTrace
	for id := range ts.reads {
		tr.Reads = append(tr.Reads, id)
	}
	for id := range ts.writes {
		tr.Writes = append(tr.Writes, id)
	}
	sort.Slice(tr.Reads, func(i, j int) bool { return tr.Reads[i] < tr.Reads[j] })
	sort.Slice(tr.Writes, func(i, j int) bool { return tr.Writes[i] < tr.Writes[j] })
	return tr
}

// Bounds returns the MBR of the whole data set, or false when empty.
func (t *Tree) Bounds() (geom.Rect, bool) {
	root := t.store.Get(t.root)
	if len(root.Entries) == 0 {
		return geom.Rect{}, false
	}
	return root.MBR(), true
}

// Insert adds an object with the given MBR.
func (t *Tree) Insert(r geom.Rect, obj ObjectID) error {
	if r.Dim() != t.cfg.Dim {
		return fmt.Errorf("rtree: insert dim %d into %d-d tree", r.Dim(), t.cfg.Dim)
	}
	e := LeafEntry(r.Clone(), obj)
	if t.cfg.UseSpheres {
		c := e.Rect.Center()
		e.Sphere = geom.Sphere{Center: c, Radius: c.Dist(e.Rect.Hi)}
	}
	t.reinsertedAtLevel = make(map[int]bool)
	t.insertEntry(e, 0)
	t.drainPending()
	t.size++
	return nil
}

// sphereOf computes a node's SR-sphere: the weighted centroid of its
// entries' sphere centers (weights are the subtree object counts, so
// the center tracks the centroid of the underlying points) with the
// smallest maintained radius covering every entry sphere.
func sphereOf(n *Node) geom.Sphere {
	centers := make([]geom.Point, len(n.Entries))
	weights := make([]int, len(n.Entries))
	spheres := make([]geom.Sphere, len(n.Entries))
	for i := range n.Entries {
		centers[i] = n.Entries[i].Sphere.Center
		weights[i] = n.Entries[i].Count
		spheres[i] = n.Entries[i].Sphere
	}
	c := geom.WeightedCentroid(centers, weights)
	return geom.Sphere{Center: c, Radius: geom.CoveringRadius(c, spheres)}
}

// entryFor builds the parent entry describing child: exact MBR cover,
// subtree object count, and (in SR mode) the maintained sphere.
func (t *Tree) entryFor(child *Node) Entry {
	e := Entry{Rect: child.MBR(), Child: child.ID, Count: child.ObjectCount()}
	if t.cfg.UseSpheres {
		e.Sphere = sphereOf(child)
	}
	return e
}

// drainPending re-inserts entries evicted by forced reinsertion. Each
// insertion may evict further entries (at other levels, thanks to the
// once-per-level flag), which simply join the queue.
func (t *Tree) drainPending() {
	for len(t.pending) > 0 {
		pr := t.pending[0]
		t.pending = t.pending[1:]
		t.insertEntry(pr.e, pr.level)
	}
}

// InsertPoint adds a point object.
func (t *Tree) InsertPoint(p geom.Point, obj ObjectID) error {
	return t.Insert(geom.PointRect(p), obj)
}

// insertEntry places e at the given level, handling overflow all the way
// to the root.
func (t *Tree) insertEntry(e Entry, level int) {
	splitEntry, grown := t.insertAt(t.store.Get(t.root), e, level)
	if splitEntry != nil {
		// Root split: grow the tree by one level. The split-off node's
		// only sibling is the old root.
		oldRoot := t.store.Get(t.root)
		t.listener.NodeCreated(t.store.Get(splitEntry.Child), []PageID{oldRoot.ID})
		newRoot := t.store.Allocate(oldRoot.Level + 1)
		newRoot.Entries = append(newRoot.Entries, t.entryFor(oldRoot), *splitEntry)
		t.store.Update(newRoot)
		t.root = newRoot.ID
		t.height++
		t.listener.NodeCreated(newRoot, nil)
		t.listener.RootChanged(newRoot.ID)
	}
	_ = grown
}

// insertAt recursively inserts e into the subtree rooted at n, targeting
// the given level. It returns a non-nil entry when n was split; the
// entry describes the new sibling node. The bool reports whether n's MBR
// may have grown (callers must refresh their entry for n regardless —
// counts always change).
func (t *Tree) insertAt(n *Node, e Entry, level int) (*Entry, bool) {
	if n.Level == level {
		n.Entries = append(n.Entries, e)
		if len(n.Entries) > t.cfg.MaxEntries {
			return t.overflowTreatment(n), true
		}
		t.store.Update(n)
		return nil, true
	}

	// Descend: R* ChooseSubtree (or nearest-centroid in SR mode).
	idx := t.chooseSubtree(n, e)
	child := t.store.Get(n.Entries[idx].Child)
	splitEntry, _ := t.insertAt(child, e, level)

	// Refresh the entry for the (possibly shrunk/grown/split) child.
	n.Entries[idx] = t.entryFor(child)

	if splitEntry != nil {
		// Report the child's new sibling with the full sibling set under
		// this parent, as the declustering heuristics require (paper
		// §2.2: the new node is placed relative to its father's other
		// children).
		sibs := make([]PageID, 0, len(n.Entries))
		for _, pe := range n.Entries {
			sibs = append(sibs, pe.Child)
		}
		t.listener.NodeCreated(t.store.Get(splitEntry.Child), sibs)
		n.Entries = append(n.Entries, *splitEntry)
		if len(n.Entries) > t.cfg.MaxEntries {
			return t.overflowTreatment(n), true
		}
	}
	t.store.Update(n)
	return nil, true
}

// chooseSubtree implements the R* descent rule: into nodes whose
// children are leaves, pick the entry needing the least overlap
// enlargement; higher up, the least area enlargement. Ties break by
// smaller area enlargement, then smaller area. In SR mode the descent
// instead follows the entry whose sphere center is nearest to the new
// entry's center (the SS/SR-tree rule), ties by smaller radius.
func (t *Tree) chooseSubtree(n *Node, newEntry Entry) int {
	if t.cfg.UseSpheres {
		return chooseByCentroid(n, newEntry.Sphere.Center)
	}
	r := newEntry.Rect
	best := -1
	bestOverlap := math.Inf(1)
	bestEnlarge := math.Inf(1)
	bestArea := math.Inf(1)
	childrenAreLeaves := n.Level == 1

	for i, e := range n.Entries {
		enlarged := e.Rect.Union(r)
		enlarge := enlarged.Area() - e.Rect.Area()
		area := e.Rect.Area()
		var overlap float64
		if childrenAreLeaves {
			// Overlap enlargement of entry i against all siblings.
			for j, s := range n.Entries {
				if j == i {
					continue
				}
				overlap += enlarged.OverlapArea(s.Rect) - e.Rect.OverlapArea(s.Rect)
			}
		}
		if better(overlap, enlarge, area, bestOverlap, bestEnlarge, bestArea) {
			best, bestOverlap, bestEnlarge, bestArea = i, overlap, enlarge, area
		}
	}
	return best
}

// chooseByCentroid picks the entry whose sphere center is nearest to c,
// breaking ties toward the smaller radius (then the lower index).
func chooseByCentroid(n *Node, c geom.Point) int {
	best := 0
	bestDist := math.Inf(1)
	bestRadius := math.Inf(1)
	for i, e := range n.Entries {
		d := c.DistSq(e.Sphere.Center)
		//lint:allow floatcmp exact distance tie deliberately broken by the smaller radius
		if d < bestDist || (d == bestDist && e.Sphere.Radius < bestRadius) {
			best, bestDist, bestRadius = i, d, e.Sphere.Radius
		}
	}
	return best
}

// better compares (overlap, enlargement, area) triples lexicographically.
func better(o, e, a, bo, be, ba float64) bool {
	//lint:allow floatcmp lexicographic triple comparison needs exact equality to fall through
	if o != bo {
		return o < bo
	}
	//lint:allow floatcmp lexicographic triple comparison needs exact equality to fall through
	if e != be {
		return e < be
	}
	return a < ba
}

// overflowTreatment handles a node with M+1 entries: forced reinsertion
// on the first overflow of a level during one insert (unless n is the
// root), a split otherwise. It returns the new sibling entry when n was
// split, nil when entries were reinserted or (X-tree mode) the node was
// kept as a supernode.
func (t *Tree) overflowTreatment(n *Node) *Entry {
	if n.ID != t.root && !t.reinsertedAtLevel[n.Level] {
		t.reinsertedAtLevel[n.Level] = true
		t.reinsert(n)
		return nil
	}
	if t.cfg.MaxOverlapRatio > 0 && !n.IsLeaf() {
		// X-tree rule: a high-overlap directory split would force
		// queries to descend both halves anyway — keep a supernode.
		g1, g2 := t.chooseSplit(n.Entries)
		if splitOverlapRatio(g1, g2) > t.cfg.MaxOverlapRatio {
			t.store.Update(n)
			return nil
		}
		return t.splitInto(n, g1, g2)
	}
	return t.split(n)
}

// splitOverlapRatio measures the Jaccard overlap of the two groups'
// MBRs: overlap volume / union-of-volumes.
func splitOverlapRatio(g1, g2 []Entry) float64 {
	r1, r2 := coverMBR(g1), coverMBR(g2)
	ov := r1.OverlapArea(r2)
	if ov == 0 {
		return 0
	}
	denom := r1.Area() + r2.Area() - ov
	if denom <= 0 {
		return 1
	}
	return ov / denom
}

// reinsert implements R* forced reinsertion: remove the p entries whose
// centers lie farthest from the node's MBR center and queue them for
// re-insertion from the top ("close reinsert": nearest first). The
// actual inserts run from drainPending once the current recursion has
// fully unwound and every ancestor MBR/count is consistent.
func (t *Tree) reinsert(n *Node) {
	p := int(t.cfg.ReinsertFraction * float64(len(n.Entries)))
	if p < 1 {
		p = 1
	}
	center := n.MBR().Center()
	type de struct {
		e Entry
		d float64
	}
	ds := make([]de, len(n.Entries))
	for i, e := range n.Entries {
		ds[i] = de{e, center.DistSq(e.Rect.Center())}
	}
	sort.SliceStable(ds, func(i, j int) bool { return ds[i].d > ds[j].d }) // farthest first
	removed := make([]Entry, p)
	for i := 0; i < p; i++ {
		removed[i] = ds[i].e
	}
	kept := make([]Entry, 0, len(ds)-p)
	for _, x := range ds[p:] {
		kept = append(kept, x.e)
	}
	n.Entries = kept
	t.store.Update(n)
	// Close reinsert: queue the removed entries nearest-center first.
	for i := p - 1; i >= 0; i-- {
		t.pending = append(t.pending, pendingReinsert{removed[i], n.Level})
	}
}

// split performs the R* topological split of an overflowing node and
// returns the parent entry for the newly created sibling.
func (t *Tree) split(n *Node) *Entry {
	group1, group2 := t.chooseSplit(n.Entries)
	return t.splitInto(n, group1, group2)
}

// splitInto applies a precomputed split distribution.
func (t *Tree) splitInto(n *Node, group1, group2 []Entry) *Entry {
	nn := t.store.Allocate(n.Level)
	n.Entries = group1
	nn.Entries = group2
	t.store.Update(n)
	t.store.Update(nn)

	// NodeCreated for nn is reported by the caller once the new entry is
	// installed in the parent, so the listener sees the full sibling set.
	e := t.entryFor(nn)
	return &e
}

// chooseSplit implements the R* split algorithm: pick the split axis by
// minimum margin sum over all distributions, then the distribution on
// that axis with minimum overlap (ties: minimum total area).
func (t *Tree) chooseSplit(entries []Entry) (g1, g2 []Entry) {
	m := t.cfg.MinEntries
	total := len(entries) // M+1
	dim := t.cfg.Dim

	bestAxis := -1
	bestMargin := math.Inf(1)
	// For each axis, entries sorted by lower then by upper coordinate.
	type sorted struct{ byLo, byHi []Entry }
	axisSorts := make([]sorted, dim)

	for axis := 0; axis < dim; axis++ {
		byLo := append([]Entry(nil), entries...)
		a := axis
		sort.SliceStable(byLo, func(i, j int) bool {
			//lint:allow floatcmp exact-equal coordinates deliberately fall through to the Hi tie-break
			if byLo[i].Rect.Lo[a] != byLo[j].Rect.Lo[a] {
				return byLo[i].Rect.Lo[a] < byLo[j].Rect.Lo[a]
			}
			return byLo[i].Rect.Hi[a] < byLo[j].Rect.Hi[a]
		})
		byHi := append([]Entry(nil), entries...)
		sort.SliceStable(byHi, func(i, j int) bool {
			//lint:allow floatcmp exact-equal coordinates deliberately fall through to the Lo tie-break
			if byHi[i].Rect.Hi[a] != byHi[j].Rect.Hi[a] {
				return byHi[i].Rect.Hi[a] < byHi[j].Rect.Hi[a]
			}
			return byHi[i].Rect.Lo[a] < byHi[j].Rect.Lo[a]
		})
		axisSorts[axis] = sorted{byLo, byHi}

		var marginSum float64
		for _, list := range [][]Entry{byLo, byHi} {
			for k := 1; k <= total-2*m+1; k++ {
				split := m - 1 + k
				marginSum += coverMBR(list[:split]).Margin() + coverMBR(list[split:]).Margin()
			}
		}
		if marginSum < bestMargin {
			bestMargin = marginSum
			bestAxis = axis
		}
	}

	// On the chosen axis pick the distribution minimizing overlap, then
	// total area.
	bestOverlap := math.Inf(1)
	bestArea := math.Inf(1)
	var bestList []Entry
	bestSplit := -1
	for _, list := range [][]Entry{axisSorts[bestAxis].byLo, axisSorts[bestAxis].byHi} {
		for k := 1; k <= total-2*m+1; k++ {
			split := m - 1 + k
			r1 := coverMBR(list[:split])
			r2 := coverMBR(list[split:])
			overlap := r1.OverlapArea(r2)
			area := r1.Area() + r2.Area()
			//lint:allow floatcmp exact overlap tie deliberately broken by the smaller total area
			if overlap < bestOverlap || (overlap == bestOverlap && area < bestArea) {
				bestOverlap, bestArea = overlap, area
				bestList, bestSplit = list, split
			}
		}
	}

	g1 = append([]Entry(nil), bestList[:bestSplit]...)
	g2 = append([]Entry(nil), bestList[bestSplit:]...)
	return g1, g2
}

// coverMBR returns the MBR of a non-empty entry slice.
func coverMBR(es []Entry) geom.Rect {
	r := es[0].Rect.Clone()
	for _, e := range es[1:] {
		r.UnionInPlace(e.Rect)
	}
	return r
}
