// Package rtree implements the R*-tree of Beckmann, Kriegel, Schneider &
// Seeger (SIGMOD 1990) — ChooseSubtree, topological split and forced
// reinsertion — extended, as in Papadopoulos & Manolopoulos (SIGMOD 1998,
// Section 2.1), so that every directory entry carries the number of data
// objects stored in its subtree. The counts feed Lemma 1 of that paper:
// they let a similarity-search algorithm derive an upper bound for the
// k-th nearest-neighbor distance before any data page has been read.
//
// Nodes correspond one-to-one to disk pages. The tree accesses nodes
// through a Store, so the same implementation runs over a plain in-memory
// store, a serializing page store, or a store distributed across the
// disks of a simulated array (package parallel).
package rtree

import (
	"fmt"
	"slices"
	"sync/atomic"

	"repro/internal/geom"
)

// PageID identifies a tree node / disk page. Valid IDs are positive;
// NilPage marks "no page".
type PageID int32

// NilPage is the zero PageID, never assigned to a node.
const NilPage PageID = 0

// ObjectID identifies a data object referenced from a leaf entry.
type ObjectID int64

// Entry is one slot of a node. In internal nodes Child points to the
// covered subtree and Count is the number of data objects below it. In
// leaf nodes Object identifies the data object, Child is NilPage and
// Count is 1.
//
// When the tree is configured as an SR-tree variant (Config.UseSpheres),
// every entry additionally carries a bounding sphere centered at the
// centroid of the subtree's points; query algorithms then intersect the
// rectangle and sphere bounds, which prunes markedly better in high
// dimensionality. Sphere.Valid() is false on plain R*-tree entries.
type Entry struct {
	Rect   geom.Rect
	Sphere geom.Sphere
	Child  PageID
	Object ObjectID
	Count  int
}

// LeafEntry builds a leaf entry for an object with the given MBR.
func LeafEntry(r geom.Rect, obj ObjectID) Entry {
	return Entry{Rect: r, Object: obj, Count: 1}
}

// Node is an R*-tree node. Level 0 is the leaf level; the root has the
// highest level. A node with Level > 0 holds child entries, a node with
// Level == 0 holds object entries.
type Node struct {
	ID      PageID
	Level   int
	Entries []Entry

	// flat caches the struct-of-arrays geometry view consumed by the
	// batch distance kernels; see Flat/InvalidateFlat in flat.go. The
	// atomic pointer makes lazy builds safe from concurrent readers
	// (the engine shares resident supernodes across query goroutines).
	flat atomic.Pointer[FlatNode]
}

// IsLeaf reports whether the node is at the leaf level.
func (n *Node) IsLeaf() bool { return n.Level == 0 }

// MBR returns the minimum bounding rectangle of all entries. It panics
// on an empty node: an empty node has no defined MBR and must never be
// referenced by a parent.
func (n *Node) MBR() geom.Rect {
	if len(n.Entries) == 0 {
		panic(fmt.Sprintf("rtree: MBR of empty node %d", n.ID))
	}
	r := n.Entries[0].Rect.Clone()
	for _, e := range n.Entries[1:] {
		r.UnionInPlace(e.Rect)
	}
	return r
}

// ObjectCount returns the total number of data objects in the subtree
// rooted at this node, i.e. the sum of entry counts.
func (n *Node) ObjectCount() int {
	c := 0
	for _, e := range n.Entries {
		c += e.Count
	}
	return c
}

// Pages returns the number of disk pages the node occupies given the
// per-page entry capacity: 1 for ordinary nodes, more for X-tree
// supernodes.
func (n *Node) Pages(capacity int) int {
	if capacity <= 0 || len(n.Entries) <= capacity {
		return 1
	}
	return (len(n.Entries) + capacity - 1) / capacity
}

// entryIndex returns the index of the entry pointing to child, or -1.
func (n *Node) entryIndex(child PageID) int {
	for i, e := range n.Entries {
		if e.Child == child {
			return i
		}
	}
	return -1
}

// removeEntry deletes the entry at index i, preserving order of the rest.
func (n *Node) removeEntry(i int) {
	n.Entries = append(n.Entries[:i], n.Entries[i+1:]...)
	n.InvalidateFlat()
}

// Store provides node storage. Implementations must return the same
// *Node for a PageID until Update/Free, i.e. they behave like a buffer
// pool pinning every accessed page (the simulated machines in the paper
// hold the working set of directory pages in RAM; timing of physical
// reads is modelled separately by the query executors).
type Store interface {
	// Get fetches a node by ID; it panics on unknown IDs (a corrupt
	// parent pointer is a programming error, not an I/O condition).
	Get(id PageID) *Node
	// Allocate creates an empty node at the given level with a fresh ID.
	Allocate(level int) *Node
	// Update persists a modified node.
	Update(n *Node)
	// Free releases a node's page.
	Free(id PageID)
	// Len returns the number of live nodes.
	Len() int
}

// OpTrace records the distinct pages read and written by one structural
// operation (insert/delete). The disk-array simulator uses it to charge
// update operations their real I/O in mixed read/write workloads — the
// paper's target environment is dynamic, with insertions intermixed
// with queries (§1).
type OpTrace struct {
	Reads  []PageID
	Writes []PageID
}

// tracingStore wraps a Store and records traffic while armed.
type tracingStore struct {
	inner  Store
	armed  bool
	reads  map[PageID]bool
	writes map[PageID]bool
}

func (s *tracingStore) Get(id PageID) *Node {
	if s.armed && !s.reads[id] {
		s.reads[id] = true
	}
	return s.inner.Get(id)
}

func (s *tracingStore) Allocate(level int) *Node {
	n := s.inner.Allocate(level)
	if s.armed {
		s.writes[n.ID] = true
	}
	return n
}

func (s *tracingStore) Update(n *Node) {
	if s.armed {
		s.writes[n.ID] = true
	}
	s.inner.Update(n)
}

func (s *tracingStore) Free(id PageID) {
	if s.armed {
		s.writes[id] = true
	}
	s.inner.Free(id)
}

func (s *tracingStore) Len() int { return s.inner.Len() }

// MemStore is the trivial in-memory Store.
type MemStore struct {
	nodes  map[PageID]*Node
	nextID PageID
}

// NewMemStore returns an empty in-memory node store.
func NewMemStore() *MemStore {
	return &MemStore{nodes: make(map[PageID]*Node), nextID: 1}
}

// Get implements Store.
func (s *MemStore) Get(id PageID) *Node {
	n, ok := s.nodes[id]
	if !ok {
		panic(fmt.Sprintf("rtree: unknown page %d", id))
	}
	return n
}

// Allocate implements Store.
func (s *MemStore) Allocate(level int) *Node {
	n := &Node{ID: s.nextID, Level: level}
	s.nextID++
	s.nodes[n.ID] = n
	return n
}

// Update implements Store. Callers mutate the node in place, so the
// in-memory store has nothing to persist — but the mutation invalidates
// the node's cached flat geometry view.
func (s *MemStore) Update(n *Node) { n.InvalidateFlat() }

// Free implements Store.
func (s *MemStore) Free(id PageID) { delete(s.nodes, id) }

// Len implements Store.
func (s *MemStore) Len() int { return len(s.nodes) }

// Inject installs a fully-formed node under its own ID — used when
// rebuilding a store from a snapshot. It panics on duplicate IDs.
func (s *MemStore) Inject(n *Node) {
	if _, dup := s.nodes[n.ID]; dup {
		panic(fmt.Sprintf("rtree: Inject: duplicate page %d", n.ID))
	}
	s.nodes[n.ID] = n
}

// SetNextID sets the allocation cursor (snapshot restore only).
func (s *MemStore) SetNextID(id PageID) { s.nextID = id }

// IDs returns all live page IDs in ascending order (test helper).
func (s *MemStore) IDs() []PageID {
	ids := make([]PageID, 0, len(s.nodes))
	for id := range s.nodes {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}
