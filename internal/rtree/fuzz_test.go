package rtree

import (
	"sort"
	"testing"

	"repro/internal/geom"
)

// FuzzRTreeOps drives a tree through a byte-coded op sequence (insert,
// delete, k-NN) alongside a plain map model, checking after every
// structural change that CheckInvariants passes, that the tree and the
// model agree on cardinality, and that NearestNeighbors returns exactly
// the model's k smallest distances. Coordinates come from a small
// integer grid so duplicate points and distance ties are common — the
// comparison is on sorted distance multisets, not object order, which
// ties legitimately permute.
func FuzzRTreeOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 3, 4, 0, 5, 6, 2, 0, 3, 0, 1, 1, 7}, byte(2), byte(0))
	f.Add([]byte{0, 0, 0, 0, 1, 1, 0, 2, 2, 0, 3, 3, 0, 4, 4, 0, 5, 5, 3, 2, 2, 8}, byte(1), byte(1))
	f.Add([]byte{2, 0, 2, 1}, byte(3), byte(2)) // deletes on an empty tree
	f.Fuzz(func(t *testing.T, ops []byte, dimByte, cfgByte byte) {
		dim := 1 + int(dimByte)%3
		cfg := Config{Dim: dim, MaxEntries: 4 + int(cfgByte)%5}
		if cfgByte&0x20 != 0 {
			cfg.UseSpheres = true
		}
		tr, err := New(cfg, nil)
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		model := map[ObjectID]geom.Point{}
		var live []ObjectID // insertion-ordered live IDs, for delete picks
		nextObj := ObjectID(1)

		pos := 0
		next := func() byte {
			if pos >= len(ops) {
				return 0
			}
			b := ops[pos]
			pos++
			return b
		}
		point := func() geom.Point {
			p := make(geom.Point, dim)
			for d := range p {
				p[d] = float64(next() % 16)
			}
			return p
		}
		structural := 0
		for pos < len(ops) && structural < 512 {
			switch next() % 4 {
			case 0, 1: // insert
				p := point()
				id := nextObj
				nextObj++
				if err := tr.InsertPoint(p, id); err != nil {
					t.Fatalf("InsertPoint(%v, %d): %v", p, id, err)
				}
				model[id] = p
				live = append(live, id)
				structural++
			case 2: // delete (a live object, or a guaranteed miss)
				sel := int(next())
				if len(live) == 0 || sel%4 == 3 {
					if tr.DeletePoint(point(), nextObj) {
						t.Fatalf("DeletePoint reported success for never-inserted object %d", nextObj)
					}
					continue
				}
				i := sel % len(live)
				id := live[i]
				if !tr.DeletePoint(model[id], id) {
					t.Fatalf("DeletePoint(%v, %d) failed for a live object", model[id], id)
				}
				delete(model, id)
				live = append(live[:i], live[i+1:]...)
				structural++
			case 3: // k-NN against the model
				q := point()
				k := 1 + int(next())%6
				checkKNN(t, tr, model, q, k)
				continue
			}
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("invariants violated after op %d: %v", structural, err)
			}
			if tr.Len() != len(model) {
				t.Fatalf("tree size %d, model size %d", tr.Len(), len(model))
			}
		}

		// Closing sweep: full-cardinality k-NN from the origin.
		checkKNN(t, tr, model, make(geom.Point, dim), len(model)+1)
	})
}

// checkKNN compares NearestNeighbors against brute force over the
// model. Ties make object order unspecified, so it compares the sorted
// squared-distance sequences, which are exact: the tree computes leaf
// distances with MinDistSq over degenerate rectangles, term-for-term
// the same arithmetic as Point.DistSq.
func checkKNN(t *testing.T, tr *Tree, model map[ObjectID]geom.Point, q geom.Point, k int) {
	t.Helper()
	got, _ := tr.NearestNeighbors(q, k)
	want := make([]float64, 0, len(model))
	for _, p := range model {
		want = append(want, q.DistSq(p))
	}
	sort.Float64s(want)
	if k < len(want) {
		want = want[:k]
	}
	if len(got) != len(want) {
		t.Fatalf("k-NN(q=%v, k=%d) returned %d results, want %d", q, k, len(got), len(want))
	}
	for i, n := range got {
		if i > 0 && got[i-1].DistSq > n.DistSq {
			t.Fatalf("k-NN results not sorted: DistSq[%d]=%g > DistSq[%d]=%g",
				i-1, got[i-1].DistSq, i, n.DistSq)
		}
		if n.DistSq != want[i] {
			t.Fatalf("k-NN distance %d: got %g, want %g (q=%v)", i, n.DistSq, want[i], q)
		}
		if p, ok := model[n.Object]; !ok {
			t.Fatalf("k-NN returned unknown object %d", n.Object)
		} else if d := q.DistSq(p); d != n.DistSq {
			t.Fatalf("k-NN object %d reported DistSq %g, actual %g", n.Object, n.DistSq, d)
		}
	}
}
