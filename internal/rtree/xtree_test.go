package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func xTree(t *testing.T, dim, maxEntries int) *Tree {
	t.Helper()
	tr, err := New(Config{Dim: dim, MaxEntries: maxEntries, MaxOverlapRatio: 0.2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func countSupernodes(tr *Tree) (supers, maxPages int) {
	cap := tr.Config().MaxEntries
	tr.Walk(func(n *Node, _ int) bool {
		if p := n.Pages(cap); p > 1 {
			supers++
			if p > maxPages {
				maxPages = p
			}
		}
		return true
	})
	return
}

func TestXTreeFormsSupernodesInHighDim(t *testing.T) {
	// 10-d uniform data produces heavily overlapping directory splits —
	// the regime the X-tree was designed for.
	tr := xTree(t, 10, 16)
	pts := randPoints(111, 4000, 10)
	for i, p := range pts {
		if err := tr.InsertPoint(p, ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	supers, maxPages := countSupernodes(tr)
	if supers == 0 {
		t.Error("no supernodes formed on 10-d uniform data")
	}
	if maxPages < 2 {
		t.Error("supernodes not spanning multiple pages")
	}
	t.Logf("supernodes: %d (largest %d pages)", supers, maxPages)
	// Leaves never become supernodes.
	tr.Walk(func(n *Node, _ int) bool {
		if n.IsLeaf() && len(n.Entries) > tr.Config().MaxEntries {
			t.Errorf("leaf %d oversized", n.ID)
		}
		return true
	})
}

func TestXTreeRarelySupernodesIn2D(t *testing.T) {
	// Low-dimensional splits are clean, so the X-tree should behave
	// like an R*-tree there.
	tr := xTree(t, 2, 16)
	pts := randPoints(112, 4000, 2)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	supers, _ := countSupernodes(tr)
	if supers > 2 {
		t.Errorf("%d supernodes on 2-d data, expected ~0", supers)
	}
}

func TestXTreeQueriesExact(t *testing.T) {
	tr := xTree(t, 8, 12)
	pts := randPoints(113, 2000, 8)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	rnd := rand.New(rand.NewSource(114))
	for trial := 0; trial < 10; trial++ {
		q := make(geom.Point, 8)
		for d := range q {
			q[d] = rnd.Float64() * 1000
		}
		k := 1 + rnd.Intn(30)
		got, _ := tr.NearestNeighbors(q, k)
		want := bruteKNN(pts, q, k)
		for i := range got {
			if d := got[i].DistSq - want[i]; d > 1e-9 || d < -1e-9 {
				t.Fatalf("trial %d rank %d mismatch", trial, i)
			}
		}
	}
}

func TestXTreeDeletes(t *testing.T) {
	tr := xTree(t, 6, 10)
	pts := randPoints(115, 1500, 6)
	for i, p := range pts {
		_ = tr.InsertPoint(p, ObjectID(i))
	}
	for i := 0; i < 1000; i++ {
		if !tr.DeletePoint(pts[i], ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Errorf("len = %d", tr.Len())
	}
}

func TestNodePages(t *testing.T) {
	n := &Node{Entries: make([]Entry, 25)}
	if n.Pages(10) != 3 {
		t.Errorf("Pages(10) = %d, want 3", n.Pages(10))
	}
	if n.Pages(25) != 1 {
		t.Errorf("Pages(25) = %d, want 1", n.Pages(25))
	}
	if n.Pages(0) != 1 {
		t.Errorf("Pages(0) = %d, want 1", n.Pages(0))
	}
}

func TestSplitOverlapRatio(t *testing.T) {
	mk := func(x1, y1, x2, y2 float64) []Entry {
		return []Entry{{Rect: geom.NewRect(geom.Point{x1, y1}, geom.Point{x2, y2}), Count: 1}}
	}
	if r := splitOverlapRatio(mk(0, 0, 1, 1), mk(2, 2, 3, 3)); r != 0 {
		t.Errorf("disjoint ratio = %g", r)
	}
	if r := splitOverlapRatio(mk(0, 0, 2, 2), mk(0, 0, 2, 2)); r != 1 {
		t.Errorf("identical ratio = %g", r)
	}
	// Half-overlapping unit squares: ov = 0.5, union = 1.5 → 1/3.
	if r := splitOverlapRatio(mk(0, 0, 1, 1), mk(0.5, 0, 1.5, 1)); r < 0.33 || r > 0.34 {
		t.Errorf("half overlap ratio = %g", r)
	}
}
