package rtree

import (
	"container/heap"
	"sort"

	"repro/internal/geom"
)

// Match is one search hit.
type Match struct {
	Rect   geom.Rect
	Object ObjectID
}

// SearchRect reports all objects whose MBR intersects query. The visit
// callback may be nil when only counting matters; it returns false to
// stop early. SearchRect returns the matches and the number of nodes
// accessed.
func (t *Tree) SearchRect(query geom.Rect, visit func(Match) bool) (matches []Match, nodesAccessed int) {
	stack := []PageID{t.root}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.store.Get(id)
		nodesAccessed++
		for _, e := range n.Entries {
			if !e.Rect.Intersects(query) {
				continue
			}
			if n.IsLeaf() {
				m := Match{Rect: e.Rect, Object: e.Object}
				matches = append(matches, m)
				if visit != nil && !visit(m) {
					return matches, nodesAccessed
				}
			} else {
				stack = append(stack, e.Child)
			}
		}
	}
	return matches, nodesAccessed
}

// SearchSphere reports all objects within distance eps of center (the
// paper's range similarity query, Definition 1): every object whose MBR
// has Dmin <= eps. For point data this is exactly the epsilon-ball.
func (t *Tree) SearchSphere(center geom.Point, eps float64, visit func(Match) bool) (matches []Match, nodesAccessed int) {
	epsSq := eps * eps
	stack := []PageID{t.root}
	var dmin []float64
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.store.Get(id)
		nodesAccessed++
		if cap(dmin) < len(n.Entries) {
			dmin = make([]float64, len(n.Entries))
		}
		d := dmin[:len(n.Entries)]
		geom.MinDistSqBatch(center, &n.Flat().Rects, d)
		for i, e := range n.Entries {
			if d[i] > epsSq {
				continue
			}
			if n.IsLeaf() {
				m := Match{Rect: e.Rect, Object: e.Object}
				matches = append(matches, m)
				if visit != nil && !visit(m) {
					return matches, nodesAccessed
				}
			} else {
				stack = append(stack, e.Child)
			}
		}
	}
	return matches, nodesAccessed
}

// Neighbor is one k-NN result: the object and its squared distance from
// the query point.
type Neighbor struct {
	Match
	DistSq float64
}

// nnHeapItem is a best-first search frontier element.
type nnHeapItem struct {
	distSq float64
	isNode bool
	page   PageID
	match  Match
}

type nnHeap []nnHeapItem

func (h nnHeap) Len() int            { return len(h) }
func (h nnHeap) Less(i, j int) bool  { return h[i].distSq < h[j].distSq }
func (h nnHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nnHeap) Push(x interface{}) { *h = append(*h, x.(nnHeapItem)) }
func (h *nnHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

// NearestNeighbors returns the k nearest objects to q by Euclidean
// distance, using best-first (Hjaltason–Samet style) traversal. This is
// the tree's own sequential k-NN used as a reference implementation; the
// disk-array algorithms of the paper live in package query. Results are
// ordered by increasing distance. The second return value is the number
// of nodes accessed.
func (t *Tree) NearestNeighbors(q geom.Point, k int) ([]Neighbor, int) {
	if k <= 0 {
		return nil, 0
	}
	var frontier nnHeap
	heap.Push(&frontier, nnHeapItem{distSq: 0, isNode: true, page: t.root})
	var out []Neighbor
	var dmin []float64
	nodes := 0
	for frontier.Len() > 0 && len(out) < k {
		it := heap.Pop(&frontier).(nnHeapItem)
		if !it.isNode {
			out = append(out, Neighbor{Match: it.match, DistSq: it.distSq})
			continue
		}
		n := t.store.Get(it.page)
		nodes++
		if cap(dmin) < len(n.Entries) {
			dmin = make([]float64, len(n.Entries))
		}
		d := dmin[:len(n.Entries)]
		geom.MinDistSqBatch(q, &n.Flat().Rects, d)
		for i, e := range n.Entries {
			if n.IsLeaf() {
				heap.Push(&frontier, nnHeapItem{distSq: d[i], match: Match{Rect: e.Rect, Object: e.Object}})
			} else {
				heap.Push(&frontier, nnHeapItem{distSq: d[i], isNode: true, page: e.Child})
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].DistSq < out[j].DistSq })
	return out, nodes
}

// Walk visits every node of the tree top-down, left-to-right, calling fn
// with each node and its depth (0 at the root). fn returning false stops
// the walk.
func (t *Tree) Walk(fn func(n *Node, depth int) bool) {
	type frame struct {
		id    PageID
		depth int
	}
	stack := []frame{{t.root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := t.store.Get(f.id)
		if !fn(n, f.depth) {
			return
		}
		if !n.IsLeaf() {
			for i := len(n.Entries) - 1; i >= 0; i-- {
				stack = append(stack, frame{n.Entries[i].Child, f.depth + 1})
			}
		}
	}
}
