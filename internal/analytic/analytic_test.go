package analytic

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/simarray"
)

func TestUnitBallVolume(t *testing.T) {
	cases := []struct {
		d    int
		want float64
	}{
		{0, 1},
		{1, 2},
		{2, math.Pi},
		{3, 4 * math.Pi / 3},
	}
	for _, c := range cases {
		if got := UnitBallVolume(c.d); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("V_%d = %g, want %g", c.d, got, c.want)
		}
	}
}

func TestExpectedKNNRadiusMatchesEmpirical(t *testing.T) {
	// On uniform data the analytic radius must be close to the observed
	// mean k-th neighbor distance.
	for _, tc := range []struct {
		n, k, d int
	}{
		{20000, 10, 2},
		{20000, 100, 2},
		{10000, 10, 5},
	} {
		pts := dataset.Uniform(tc.n, tc.d, 7)
		queries := dataset.SampleQueries(pts, 40, 8)
		var sum float64
		for _, q := range queries {
			sum += math.Sqrt(bruteforce.KthDistSq(pts, q, tc.k))
		}
		empirical := sum / float64(len(queries))
		predicted := ExpectedKNNRadius(tc.n, tc.k, tc.d)
		ratio := predicted / empirical
		if ratio < 0.6 || ratio > 1.6 {
			t.Errorf("n=%d k=%d d=%d: predicted r %.5f vs empirical %.5f (ratio %.2f)",
				tc.n, tc.k, tc.d, predicted, empirical, ratio)
		}
	}
}

func TestExpectedKNNRadiusEdgeCases(t *testing.T) {
	if ExpectedKNNRadius(0, 5, 2) != 0 || ExpectedKNNRadius(10, 0, 2) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// k = n covers (roughly) everything: radius near the ball with
	// volume 1.
	r := ExpectedKNNRadius(100, 100, 2)
	want := math.Pow(1/UnitBallVolume(2), 0.5)
	if math.Abs(r-want) > 1e-12 {
		t.Errorf("full radius = %g, want %g", r, want)
	}
}

func TestCubeSphereIntersectProb(t *testing.T) {
	// r = 0: probability is the cube volume.
	if got := CubeSphereIntersectProb(0.5, 0, 2); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("r=0 prob = %g, want 0.25", got)
	}
	// s = 0: probability is the ball volume.
	if got := CubeSphereIntersectProb(0, 0.1, 2); math.Abs(got-math.Pi*0.01) > 1e-12 {
		t.Errorf("s=0 prob = %g", got)
	}
	// Large arguments clip at 1.
	if got := CubeSphereIntersectProb(2, 2, 3); got != 1 {
		t.Errorf("clip failed: %g", got)
	}
	// Monotone in both arguments.
	p1 := CubeSphereIntersectProb(0.1, 0.1, 4)
	p2 := CubeSphereIntersectProb(0.2, 0.1, 4)
	p3 := CubeSphereIntersectProb(0.1, 0.2, 4)
	if p2 <= p1 || p3 <= p1 {
		t.Errorf("not monotone: %g %g %g", p1, p2, p3)
	}
}

func TestModelTreeShape(t *testing.T) {
	m, err := ModelTree(60000, 2, 92, 0)
	if err != nil {
		t.Fatal(err)
	}
	if m.Height < 2 || m.Height > 4 {
		t.Errorf("modeled height %d implausible", m.Height)
	}
	if m.LevelNodes[m.Height-1] != 1 {
		t.Error("root level must have one node")
	}
	for l := 1; l < m.Height; l++ {
		if m.LevelNodes[l] > m.LevelNodes[l-1] {
			t.Error("node counts must shrink upward")
		}
		if m.LevelSide[l] < m.LevelSide[l-1] {
			t.Error("MBR side must grow upward")
		}
	}
	if _, err := ModelTree(0, 2, 92, 0); err == nil {
		t.Error("accepted n=0")
	}
	if _, err := ModelTree(10, 2, 92, 1.5); err == nil {
		t.Error("accepted fill > 1")
	}
}

// The headline validation: analytic node accesses and response times
// track the simulator on uniform data within documented tolerance.
func TestAnalyticTracksSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	const n, dim, disks = 20000, 2, 10
	pts := dataset.Uniform(n, dim, 9)
	tree, err := parallel.New(parallel.Config{
		Dim: dim, NumDisks: disks, Cylinders: disk.HPC2200A().Cylinders,
		Policy: decluster.ProximityIndex{}, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	queries := dataset.SampleQueries(pts, 30, 10)
	capacity := tree.Config().MaxEntries

	model, err := ModelTree(n, dim, capacity, 0)
	if err != nil {
		t.Fatal(err)
	}
	sys := DefaultSystem(disks)

	d := query.Driver{Tree: tree}
	for _, k := range []int{10, 100} {
		// Measured WOPTSS accesses.
		var acc []float64
		for _, q := range queries {
			_, s := d.Run(query.WOPTSS{}, q, k, query.Options{})
			acc = append(acc, float64(s.NodesVisited))
		}
		measured := metrics.Mean(acc)
		predicted := model.ExpectedNodeAccesses(k)
		ratio := predicted / measured
		if ratio < 0.4 || ratio > 2.5 {
			t.Errorf("k=%d: predicted accesses %.1f vs measured %.1f (ratio %.2f)",
				k, predicted, measured, ratio)
		}

		// Response at light load: within 3x of the simulator.
		mean, err := simarray.MeanResponseOf(tree, simarray.Config{Seed: 9}, simarray.Workload{
			Algorithm: query.WOPTSS{}, K: k, Queries: queries, ArrivalRate: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		est := sys.ExpectedResponse(predicted, model.Height, 1)
		rr := est / mean
		if rr < 1.0/3 || rr > 3 {
			t.Errorf("k=%d: predicted response %.4f vs simulated %.4f (ratio %.2f)",
				k, est, mean, rr)
		}
	}
}

func TestExpectedResponseShape(t *testing.T) {
	sys := DefaultSystem(10)
	light := sys.ExpectedResponse(20, 3, 1)
	heavy := sys.ExpectedResponse(20, 3, 15)
	if light <= 0 || heavy <= light {
		t.Errorf("response not increasing with load: %.4f vs %.4f", light, heavy)
	}
	// Saturation → +Inf.
	if !math.IsInf(sys.ExpectedResponse(1000, 3, 100), 1) {
		t.Error("saturated system must predict Inf")
	}
	// More disks → faster at equal load.
	few := DefaultSystem(5).ExpectedResponse(40, 3, 2)
	many := DefaultSystem(20).ExpectedResponse(40, 3, 2)
	if many >= few {
		t.Errorf("more disks not faster: %g vs %g", many, few)
	}
	if sys.ExpectedResponse(0, 3, 1) != 0 {
		t.Error("zero accesses should cost 0")
	}
}

func TestMeanDiskService(t *testing.T) {
	p := disk.HPC2200A()
	got := MeanDiskService(p)
	// Must sit between the no-seek service and the max-seek service.
	min := p.AverageRotationalLatency() + p.TransferTime + p.ControllerOverhead
	max := p.SeekTime(p.Cylinders-1) + p.RevolutionTime + p.TransferTime + p.ControllerOverhead
	if got <= min || got >= max {
		t.Errorf("mean service %.5f outside (%.5f, %.5f)", got, min, max)
	}
}
