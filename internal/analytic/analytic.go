// Package analytic derives closed-form estimates for similarity search
// on disk arrays — the paper's first "future research" item: "the
// derivation and exploitation of analytical results in similarity
// search for disk arrays, estimating the response time of a query".
//
// The model assumes n points uniform in the unit hypercube (the paper's
// SU family; the same machinery under a density transform covers
// clustered data, see [2, 7, 24] of the paper):
//
//  1. Expected k-NN sphere radius: the ball around the query expected
//     to contain k of n points: n·Vol_d(r) = k.
//  2. Expected page accesses: for each tree level, the number of nodes
//     whose (cube-shaped, in expectation) MBR intersects that ball —
//     the Minkowski-sum probability (Berchtold/Böhm/Keim/Kriegel, PODS
//     1997, adapted). This estimates WOPTSS, the floor any algorithm
//     approaches.
//  3. Expected response time: the accesses fan out over D disk queues;
//     stages are sequential per level; an M/M/1-style inflation factor
//     models the multi-user arrival rate λ.
//
// Every estimator is validated against the event-driven simulator in
// the package tests (within documented tolerance — these are first-
// order models, not exact formulas).
package analytic

import (
	"fmt"
	"math"

	"repro/internal/disk"
)

// UnitBallVolume returns the volume of the d-dimensional unit ball:
// π^(d/2) / Γ(d/2 + 1).
func UnitBallVolume(d int) float64 {
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1)
}

// ExpectedKNNRadius returns the radius of the ball expected to contain
// k of n uniform points in [0,1]^d (boundary effects ignored).
func ExpectedKNNRadius(n, k, d int) float64 {
	if n <= 0 || k <= 0 {
		return 0
	}
	frac := float64(k) / float64(n)
	if frac > 1 {
		frac = 1
	}
	return math.Pow(frac/UnitBallVolume(d), 1/float64(d))
}

// CubeSphereIntersectProb returns the probability that a cube of side s
// (uniformly positioned in the unit cube) intersects a ball of radius r
// at a random location: the volume of the Minkowski sum of the cube and
// the ball,
//
//	Σ_{i=0..d} C(d,i) · s^(d-i) · V_i · r^i,
//
// clipped to 1 (V_i = volume of the i-dimensional unit ball).
func CubeSphereIntersectProb(s, r float64, d int) float64 {
	sum := 0.0
	choose := 1.0
	for i := 0; i <= d; i++ {
		sum += choose * math.Pow(s, float64(d-i)) * UnitBallVolume(i) * math.Pow(r, float64(i))
		choose = choose * float64(d-i) / float64(i+1)
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// TreeModel is the expectation-level shape of an R*-tree over uniform
// data: node counts and expected MBR side length per level.
type TreeModel struct {
	N          int // data points
	Dim        int
	Fanout     float64   // effective fanout (capacity × fill factor)
	Height     int       // number of levels, 1 = root only
	LevelNodes []int     // nodes per level, index 0 = leaves
	LevelSide  []float64 // expected MBR side per level, index 0 = leaves
}

// ModelTree builds the expectation model for n uniform points indexed
// with the given node capacity and fill factor (R*-trees settle around
// 70% occupancy; pass 0 for that default).
func ModelTree(n, dim, capacity int, fill float64) (TreeModel, error) {
	if n <= 0 || dim <= 0 || capacity < 2 {
		return TreeModel{}, fmt.Errorf("analytic: invalid tree model n=%d dim=%d capacity=%d", n, dim, capacity)
	}
	if fill == 0 {
		fill = 0.7
	}
	if fill <= 0 || fill > 1 {
		return TreeModel{}, fmt.Errorf("analytic: fill %g out of (0,1]", fill)
	}
	m := TreeModel{N: n, Dim: dim, Fanout: float64(capacity) * fill}
	nodes := int(math.Ceil(float64(n) / m.Fanout))
	for {
		m.LevelNodes = append(m.LevelNodes, nodes)
		// A level's nodes tile the data space: each covers 1/nodes of
		// the volume, so its expected side is (1/nodes)^(1/d).
		m.LevelSide = append(m.LevelSide, math.Pow(1/float64(nodes), 1/float64(dim)))
		if nodes == 1 {
			break
		}
		nodes = int(math.Ceil(float64(nodes) / m.Fanout))
	}
	m.Height = len(m.LevelNodes)
	return m, nil
}

// ExpectedNodeAccesses estimates the pages a weak-optimal k-NN search
// reads: per level, nodes × P(MBR intersects the k-NN ball). This is
// the analytic counterpart of WOPTSS (and the floor CRSS approaches).
func (m TreeModel) ExpectedNodeAccesses(k int) float64 {
	r := ExpectedKNNRadius(m.N, k, m.Dim)
	total := 0.0
	for l := 0; l < m.Height; l++ {
		p := CubeSphereIntersectProb(m.LevelSide[l], r, m.Dim)
		exp := float64(m.LevelNodes[l]) * p
		if exp > float64(m.LevelNodes[l]) {
			exp = float64(m.LevelNodes[l])
		}
		if exp < 1 {
			exp = 1 // the search always touches one node per level
		}
		total += exp
	}
	return total
}

// SystemModel carries the hardware expectations for response-time
// estimation.
type SystemModel struct {
	Disks        int
	MeanService  float64 // expected disk service time per page (s)
	BusTime      float64 // per-page bus time (s)
	Startup      float64 // query startup (s)
	CPUPerAccess float64 // CPU seconds charged per page processed
}

// MeanDiskService returns the expected service time of one page read on
// a drive whose requests land on uniformly random cylinders: the mean
// seek over a uniform pair of cylinders (≈ C/3 distance), half a
// rotation, the transfer and the controller overhead.
func MeanDiskService(p disk.Params) float64 {
	meanSeekDist := float64(p.Cylinders) / 3
	return p.SeekTime(int(meanSeekDist)) + p.AverageRotationalLatency() +
		p.TransferTime + p.ControllerOverhead
}

// DefaultSystem builds the paper's hardware model for a D-disk array.
func DefaultSystem(disks int) SystemModel {
	p := disk.HPC2200A()
	return SystemModel{
		Disks:        disks,
		MeanService:  MeanDiskService(p),
		BusTime:      float64(p.BlockSize) / 10e6,
		Startup:      0.001,
		CPUPerAccess: 100.0 * 3 / (100 * 1e6), // ~entries scanned per page at 100 MIPS; small
	}
}

// ExpectedResponse estimates the mean response time of a k-NN query
// that reads `accesses` pages through `height` sequential stages, under
// a Poisson arrival rate λ:
//
//	service  = startup + height · (ceil(perStage/D) · T_disk + T_bus)
//	ρ        = λ · accesses · T_disk / D      (per-disk utilization)
//	response = startup + queueing-inflated disk time
//
// The inflation uses the M/M/1 waiting-time factor 1/(1-ρ) applied to
// the disk component. Saturated systems (ρ ≥ 1) return +Inf.
func (s SystemModel) ExpectedResponse(accesses float64, height int, lambda float64) float64 {
	if s.Disks <= 0 || accesses <= 0 || height <= 0 {
		return 0
	}
	perStage := accesses / float64(height)
	stageDisk := math.Ceil(perStage/float64(s.Disks)) * s.MeanService
	base := float64(height) * (stageDisk + s.BusTime + perStage*s.CPUPerAccess)

	rho := lambda * accesses * s.MeanService / float64(s.Disks)
	if rho >= 1 {
		return math.Inf(1)
	}
	return s.Startup + base/(1-rho)
}
