// Package parallel implements the parallel (multiplexed) R*-tree of the
// paper: a single logical R*-tree whose pages are distributed across the
// disks of a RAID-0 array. Structurally it behaves exactly like an
// ordinary R*-tree (package rtree); this layer adds the page-to-disk
// mapping maintained through a declustering policy, and the uniform
// cylinder assignment the paper's simulator uses for page placement
// within a disk.
package parallel

import (
	"fmt"
	"math/rand"

	"repro/internal/decluster"
	"repro/internal/geom"
	"repro/internal/rtree"
)

// Placement locates a page on the array.
type Placement struct {
	Disk     int
	Cylinder int
}

// Config describes the array and tree geometry.
type Config struct {
	Dim        int
	NumDisks   int
	Cylinders  int // cylinders per disk, for uniform cylinder assignment
	MaxEntries int // node capacity; 0 derives from PageSize
	MinEntries int // 0 = R* default (40% of max)
	PageSize   int // bytes; used when MaxEntries == 0 (default 4096)
	Policy     decluster.Policy
	Seed       int64 // drives cylinder assignment (and Random policy if shared)
	// UseSpheres selects the SR-tree variant: entries carry bounding
	// spheres (reducing fanout accordingly) and queries intersect the
	// rectangle and sphere bounds.
	UseSpheres bool
	// MaxOverlapRatio enables the X-tree supernode variant (see
	// rtree.Config.MaxOverlapRatio); 0 disables it.
	MaxOverlapRatio float64
	// Store, when non-nil, is the node store the tree is built over
	// (e.g. a pagestore.DurableStore for a disk-backed tree). Nil uses
	// an in-memory store.
	Store rtree.Store
}

// fill validates the config and applies defaults in place.
func (cfg *Config) fill() error {
	if cfg.NumDisks <= 0 {
		return fmt.Errorf("parallel: NumDisks must be positive, got %d", cfg.NumDisks)
	}
	if cfg.Cylinders <= 0 {
		return fmt.Errorf("parallel: Cylinders must be positive, got %d", cfg.Cylinders)
	}
	if cfg.Policy == nil {
		cfg.Policy = decluster.ProximityIndex{}
	}
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = rtree.CapacityForPageEx(cfg.PageSize, cfg.Dim, cfg.UseSpheres)
	}
	return nil
}

// rtreeConfig is the base-tree geometry implied by the array config.
func (cfg Config) rtreeConfig() rtree.Config {
	return rtree.Config{
		Dim:             cfg.Dim,
		MaxEntries:      cfg.MaxEntries,
		MinEntries:      cfg.MinEntries,
		UseSpheres:      cfg.UseSpheres,
		MaxOverlapRatio: cfg.MaxOverlapRatio,
	}
}

// newShell builds the placement bookkeeping around a filled config; the
// caller attaches the base rtree and installs the listener.
func newShell(cfg Config) *Tree {
	return &Tree{
		cfg:        cfg,
		policy:     cfg.Policy,
		state:      decluster.NewArrayState(cfg.NumDisks),
		placements: make(map[rtree.PageID]Placement),
		rects:      make(map[rtree.PageID]geom.Rect),
		rnd:        rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Tree is an R*-tree declustered over a disk array.
type Tree struct {
	*rtree.Tree
	cfg        Config
	policy     decluster.Policy
	state      *decluster.ArrayState
	placements map[rtree.PageID]Placement
	rects      map[rtree.PageID]geom.Rect // last known MBR per page, for state upkeep
	rnd        *rand.Rand
}

// newCylinderRand returns the generator stream used for uniform
// cylinder assignment (shared by New and snapshot restore).
func newCylinderRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// New builds an empty parallel R*-tree (over Config.Store when set).
func New(cfg Config) (*Tree, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	pt := newShell(cfg)
	base, err := rtree.New(cfg.rtreeConfig(), cfg.Store)
	if err != nil {
		return nil, err
	}
	pt.Tree = base
	base.SetListener(pt)
	return pt, nil
}

// Adopt wraps an existing consistent tree — typically one recovered
// from a pagestore.DurableStore — in the parallel layer. The store must
// already hold the tree rooted at root with size data objects (the
// contract of rtree.Restore). Placements are reassigned by replaying
// the declustering policy over a deterministic parent-first walk, so an
// adopted tree's page-to-disk map is reproducible but need not match
// the map the original grow-time listener produced; query results are
// placement-independent, which is what recovery parity tests rely on.
func Adopt(cfg Config, store rtree.Store, root rtree.PageID, size int) (*Tree, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	base, err := rtree.Restore(cfg.rtreeConfig(), store, root, size)
	if err != nil {
		return nil, err
	}
	pt := newShell(cfg)
	pt.Tree = base
	// Replay the policy parent-first, children in entry order; each node
	// is placed seeing its already-placed elder siblings, mirroring what
	// the policy sees when a split reports new siblings.
	var place func(id rtree.PageID, elder []rtree.PageID)
	place = func(id rtree.PageID, elder []rtree.PageID) {
		n := store.Get(id)
		pt.NodeCreated(n, elder)
		if n.IsLeaf() {
			return
		}
		placed := make([]rtree.PageID, 0, len(n.Entries))
		for _, e := range n.Entries {
			place(e.Child, placed)
			placed = append(placed, e.Child)
		}
	}
	place(root, nil)
	base.SetListener(pt) // re-reports the root; NodeCreated skips placed pages
	if err := pt.CheckPlacements(); err != nil {
		return nil, err
	}
	return pt, nil
}

// Config returns the array configuration.
func (t *Tree) Config() Config { return t.cfg }

// NumDisks returns the array width.
func (t *Tree) NumDisks() int { return t.cfg.NumDisks }

// Placement returns the disk/cylinder of a page.
func (t *Tree) Placement(id rtree.PageID) (Placement, bool) {
	p, ok := t.placements[id]
	return p, ok
}

// DiskOf returns the disk holding a page; it panics on unknown pages
// (every live page must have been placed).
func (t *Tree) DiskOf(id rtree.PageID) int {
	p, ok := t.placements[id]
	if !ok {
		panic(fmt.Sprintf("parallel: page %d has no placement", id))
	}
	return p.Disk
}

// PagesPerDisk returns a copy of the per-disk live page counts.
func (t *Tree) PagesPerDisk() []int {
	out := make([]int, len(t.state.PagesPerDisk))
	copy(out, t.state.PagesPerDisk)
	return out
}

// NodeCreated implements rtree.Listener: run the declustering policy and
// record the placement. The cylinder is drawn uniformly (paper §4.1:
// "each newly generated node ... is assigned a cylinder value with
// respect to the uniform distribution").
func (t *Tree) NodeCreated(n *rtree.Node, siblingIDs []rtree.PageID) {
	if _, ok := t.placements[n.ID]; ok {
		return // e.g. root re-reported by SetListener
	}
	var mbr geom.Rect
	if len(n.Entries) > 0 {
		mbr = n.MBR()
	} else {
		// Fresh empty root: a degenerate rect at the origin of the
		// configured dimensionality.
		z := make(geom.Point, t.cfg.Dim)
		mbr = geom.PointRect(z)
	}
	// Sibling MBRs are read live from the store — a sibling's extent may
	// have grown since it was placed, and the policy should see current
	// geometry.
	sibs := make([]decluster.Sibling, 0, len(siblingIDs))
	for _, id := range siblingIDs {
		if pl, ok := t.placements[id]; ok {
			sib := t.Store().Get(id)
			if len(sib.Entries) == 0 {
				continue
			}
			sibs = append(sibs, decluster.Sibling{Page: id, Rect: sib.MBR(), Disk: pl.Disk})
		}
	}
	d := t.policy.Assign(mbr, sibs, t.state)
	if d < 0 || d >= t.cfg.NumDisks {
		panic(fmt.Sprintf("parallel: policy %s returned disk %d of %d", t.policy.Name(), d, t.cfg.NumDisks))
	}
	pl := Placement{Disk: d, Cylinder: t.rnd.Intn(t.cfg.Cylinders)}
	t.placements[n.ID] = pl
	t.rects[n.ID] = mbr
	t.state.PagesPerDisk[d]++
	t.state.AreaPerDisk[d] += mbr.Area()
	if t.state.HasSpace {
		t.state.Space.UnionInPlace(mbr)
	} else {
		t.state.Space = mbr.Clone()
		t.state.HasSpace = true
	}
}

// NodeFreed implements rtree.Listener.
func (t *Tree) NodeFreed(id rtree.PageID) {
	pl, ok := t.placements[id]
	if !ok {
		return
	}
	t.state.PagesPerDisk[pl.Disk]--
	if r, ok := t.rects[id]; ok {
		t.state.AreaPerDisk[pl.Disk] -= r.Area()
	}
	delete(t.placements, id)
	delete(t.rects, id)
}

// RootChanged implements rtree.Listener.
func (t *Tree) RootChanged(rtree.PageID) {}

// DistributionStats summarizes how well pages are spread across disks.
type DistributionStats struct {
	Pages     []int   // per-disk page counts
	Total     int     // total live pages
	Imbalance float64 // max/mean page count; 1.0 is perfect balance
}

// Distribution computes page-spread statistics.
func (t *Tree) Distribution() DistributionStats {
	pages := t.PagesPerDisk()
	total, maxP := 0, 0
	for _, c := range pages {
		total += c
		if c > maxP {
			maxP = c
		}
	}
	st := DistributionStats{Pages: pages, Total: total}
	if total > 0 {
		mean := float64(total) / float64(len(pages))
		st.Imbalance = float64(maxP) / mean
	}
	return st
}

// BuildPoints loads points one by one (the paper constructs trees
// incrementally). Object IDs are the point indices.
func (t *Tree) BuildPoints(pts []geom.Point) error {
	for i, p := range pts {
		if err := t.InsertPoint(p, rtree.ObjectID(i)); err != nil {
			return fmt.Errorf("parallel: insert %d: %w", i, err)
		}
	}
	return nil
}

// BuildPointsPacked bulk-loads points with STR packing (the "complete
// reorganization" the paper's dynamic setting rules out — provided here
// so the packing ablation can measure what it would buy). Object IDs
// are the point indices. The tree must be empty.
func (t *Tree) BuildPointsPacked(pts []geom.Point) error {
	items := make([]rtree.Entry, len(pts))
	for i, p := range pts {
		items[i] = rtree.LeafEntry(geom.PointRect(p.Clone()), rtree.ObjectID(i))
	}
	return t.Tree.BulkLoadSTR(items)
}

// CheckPlacements verifies that every live page has a placement and that
// the per-disk counters match reality. Tests and treestat call it.
func (t *Tree) CheckPlacements() error {
	live := make(map[rtree.PageID]bool)
	t.Walk(func(n *rtree.Node, _ int) bool {
		live[n.ID] = true
		return true
	})
	for id := range live {
		pl, ok := t.placements[id]
		if !ok {
			return fmt.Errorf("parallel: live page %d unplaced", id)
		}
		if pl.Cylinder < 0 || pl.Cylinder >= t.cfg.Cylinders {
			return fmt.Errorf("parallel: page %d cylinder %d out of range", id, pl.Cylinder)
		}
	}
	counts := make([]int, t.cfg.NumDisks)
	for id, pl := range t.placements {
		if !live[id] {
			return fmt.Errorf("parallel: placement for dead page %d", id)
		}
		counts[pl.Disk]++
	}
	for d, c := range counts {
		if c != t.state.PagesPerDisk[d] {
			return fmt.Errorf("parallel: disk %d counter %d != actual %d", d, t.state.PagesPerDisk[d], c)
		}
	}
	return nil
}
