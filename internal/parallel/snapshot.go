package parallel

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/decluster"
	"repro/internal/geom"
	"repro/internal/pagestore"
	"repro/internal/rtree"
)

// Snapshot format: a self-contained image of a parallel R*-tree —
// configuration, every page (in the pagestore on-disk encoding) and its
// disk/cylinder placement — so a built index can be persisted and
// reloaded without replaying the insertion sequence.
//
//	magic "SQTR", version 1
//	uint16 dim | uint16 numDisks | uint32 cylinders
//	uint16 maxEntries | uint16 minEntries | uint8 spheres
//	policy name (uint8 length + bytes)
//	int64 seed | uint64 root page | uint32 object count | uint32 pages
//	per page: uint64 id | uint16 disk | uint32 cylinder |
//	          uint32 encoded length | encoded page bytes
var snapshotMagic = [4]byte{'S', 'Q', 'T', 'R'}

const snapshotVersion = 1

// maxSnapshotPage bounds the per-page encoded length a snapshot may
// declare, so a corrupt length field cannot drive a giant allocation.
const maxSnapshotPage = 1 << 24

// Snapshot writes the tree to w.
func (t *Tree) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	cfg := t.cfg
	var hdr [13]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(cfg.Dim))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(cfg.NumDisks))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(cfg.Cylinders))
	binary.LittleEndian.PutUint16(hdr[8:], uint16(cfg.MaxEntries))
	binary.LittleEndian.PutUint16(hdr[10:], uint16(cfg.MinEntries))
	if cfg.UseSpheres {
		hdr[12] = 1
	}
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	policy := t.policy.Name()
	if len(policy) > 255 {
		return errors.New("parallel: policy name too long")
	}
	if err := bw.WriteByte(byte(len(policy))); err != nil {
		return err
	}
	if _, err := bw.WriteString(policy); err != nil {
		return err
	}

	// Collect live pages.
	type pageRec struct {
		node *rtree.Node
		pl   Placement
	}
	var pages []pageRec
	t.Walk(func(n *rtree.Node, _ int) bool {
		pl, ok := t.placements[n.ID]
		if !ok {
			pl = Placement{}
		}
		pages = append(pages, pageRec{n, pl})
		return true
	})

	var meta [24]byte
	binary.LittleEndian.PutUint64(meta[0:], uint64(t.cfg.Seed))
	binary.LittleEndian.PutUint64(meta[8:], uint64(t.Root()))
	binary.LittleEndian.PutUint32(meta[16:], uint32(t.Len()))
	binary.LittleEndian.PutUint32(meta[20:], uint32(len(pages)))
	if _, err := bw.Write(meta[:]); err != nil {
		return err
	}

	codec := pagestore.Codec{Dim: cfg.Dim, PageSize: snapshotPageSize(cfg), Spheres: cfg.UseSpheres}
	for _, pr := range pages {
		buf, err := codec.Encode(pr.node)
		if err != nil {
			return fmt.Errorf("parallel: snapshot page %d: %w", pr.node.ID, err)
		}
		var ph [18]byte
		binary.LittleEndian.PutUint64(ph[0:], uint64(pr.node.ID))
		binary.LittleEndian.PutUint16(ph[8:], uint16(pr.pl.Disk))
		binary.LittleEndian.PutUint32(ph[10:], uint32(pr.pl.Cylinder))
		binary.LittleEndian.PutUint32(ph[14:], uint32(len(buf)))
		if _, err := bw.Write(ph[:]); err != nil {
			return err
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// snapshotPageSize returns a page size large enough for the tree's
// configured capacity (the configured PageSize when it fits, otherwise
// the derived minimum — callers may have configured MaxEntries directly).
func snapshotPageSize(cfg Config) int {
	c := pagestore.Codec{Dim: cfg.Dim, PageSize: cfg.PageSize, Spheres: cfg.UseSpheres}
	if cfg.PageSize > 0 && c.Capacity() >= cfg.MaxEntries {
		return cfg.PageSize
	}
	// Smallest page that holds MaxEntries entries.
	entry := c.EntrySize()
	return 16 + entry*cfg.MaxEntries
}

// LoadSnapshot reconstructs a parallel tree from a snapshot.
func LoadSnapshot(r io.Reader) (*Tree, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("parallel: reading snapshot magic: %w", err)
	}
	if magic != snapshotMagic {
		return nil, fmt.Errorf("parallel: bad snapshot magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("parallel: unsupported snapshot version %d", ver)
	}
	var hdr [13]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	cfg := Config{
		Dim:        int(binary.LittleEndian.Uint16(hdr[0:])),
		NumDisks:   int(binary.LittleEndian.Uint16(hdr[2:])),
		Cylinders:  int(binary.LittleEndian.Uint32(hdr[4:])),
		MaxEntries: int(binary.LittleEndian.Uint16(hdr[8:])),
		MinEntries: int(binary.LittleEndian.Uint16(hdr[10:])),
		UseSpheres: hdr[12] == 1,
	}
	plen, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	pname := make([]byte, plen)
	if _, err := io.ReadFull(br, pname); err != nil {
		return nil, err
	}
	var meta [24]byte
	if _, err := io.ReadFull(br, meta[:]); err != nil {
		return nil, err
	}
	cfg.Seed = int64(binary.LittleEndian.Uint64(meta[0:]))
	root := rtree.PageID(binary.LittleEndian.Uint64(meta[8:]))
	size := int(binary.LittleEndian.Uint32(meta[16:]))
	pageCount := int(binary.LittleEndian.Uint32(meta[20:]))

	policy, err := decluster.ByName(string(pname), cfg.Seed)
	if err != nil {
		return nil, err
	}
	cfg.Policy = policy

	codec := pagestore.Codec{Dim: cfg.Dim, PageSize: snapshotPageSize(cfg), Spheres: cfg.UseSpheres}
	store := rtree.NewMemStore()
	pt := &Tree{
		cfg:        cfg,
		policy:     policy,
		state:      decluster.NewArrayState(cfg.NumDisks),
		placements: make(map[rtree.PageID]Placement, pageCount),
		rects:      make(map[rtree.PageID]geom.Rect, pageCount),
	}
	maxID := rtree.PageID(0)
	for i := 0; i < pageCount; i++ {
		var ph [18]byte
		if _, err := io.ReadFull(br, ph[:]); err != nil {
			return nil, fmt.Errorf("parallel: page %d header: %w", i, err)
		}
		id := rtree.PageID(binary.LittleEndian.Uint64(ph[0:]))
		pl := Placement{
			Disk:     int(binary.LittleEndian.Uint16(ph[8:])),
			Cylinder: int(binary.LittleEndian.Uint32(ph[10:])),
		}
		blen := int(binary.LittleEndian.Uint32(ph[14:]))
		if blen < 16 || blen > maxSnapshotPage {
			return nil, fmt.Errorf("parallel: page %d: implausible encoded length %d", i, blen)
		}
		buf := make([]byte, blen)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("parallel: page %d body: %w", i, err)
		}
		// The recorded length is the page size the writer encoded with
		// (the writer's PageSize is not serialized, only derivable when it
		// was the minimal fit). Decode strictly against it.
		pcodec := codec
		pcodec.PageSize = blen
		node, err := pcodec.Decode(buf)
		if err != nil {
			return nil, fmt.Errorf("parallel: page %d: %w", i, err)
		}
		if node.ID != id {
			return nil, fmt.Errorf("parallel: page %d: id mismatch %d vs %d", i, node.ID, id)
		}
		if pl.Disk < 0 || pl.Disk >= cfg.NumDisks {
			return nil, fmt.Errorf("parallel: page %d: disk %d out of range", i, pl.Disk)
		}
		store.Inject(node)
		pt.placements[id] = pl
		pt.state.PagesPerDisk[pl.Disk]++
		if len(node.Entries) > 0 {
			mbr := node.MBR()
			pt.rects[id] = mbr
			pt.state.AreaPerDisk[pl.Disk] += mbr.Area()
			if pt.state.HasSpace {
				pt.state.Space.UnionInPlace(mbr)
			} else {
				pt.state.Space = mbr.Clone()
				pt.state.HasSpace = true
			}
		}
		if id > maxID {
			maxID = id
		}
	}
	store.SetNextID(maxID + 1)

	base, err := rtree.Restore(rtree.Config{
		Dim:        cfg.Dim,
		MaxEntries: cfg.MaxEntries,
		MinEntries: cfg.MinEntries,
		UseSpheres: cfg.UseSpheres,
	}, store, root, size)
	if err != nil {
		return nil, err
	}
	pt.Tree = base
	// rand stream for future cylinder assignments resumes from the seed
	// (placements of already-loaded pages are restored verbatim).
	pt.rnd = newCylinderRand(cfg.Seed)
	base.SetListener(pt)
	if err := base.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("parallel: snapshot fails invariants: %w", err)
	}
	if err := pt.CheckPlacements(); err != nil {
		return nil, err
	}
	return pt, nil
}
