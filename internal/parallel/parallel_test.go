package parallel

import (
	"math/rand"
	"testing"

	"repro/internal/decluster"
	"repro/internal/geom"
	"repro/internal/rtree"
)

func testConfig(disks int, policy decluster.Policy) Config {
	return Config{
		Dim:        2,
		NumDisks:   disks,
		Cylinders:  1449,
		MaxEntries: 16,
		Policy:     policy,
		Seed:       1,
	}
}

func randPoints(seed int64, n, dim int) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rnd.Float64() * 1000
		}
		pts[i] = p
	}
	return pts
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Dim: 2, NumDisks: 0, Cylinders: 10}); err == nil {
		t.Error("accepted zero disks")
	}
	if _, err := New(Config{Dim: 2, NumDisks: 2, Cylinders: 0}); err == nil {
		t.Error("accepted zero cylinders")
	}
}

func TestDefaultsApplied(t *testing.T) {
	pt, err := New(Config{Dim: 10, NumDisks: 4, Cylinders: 100})
	if err != nil {
		t.Fatal(err)
	}
	if pt.Config().MaxEntries != rtree.CapacityForPage(4096, 10) {
		t.Errorf("derived capacity = %d", pt.Config().MaxEntries)
	}
	if pt.Config().Policy == nil {
		t.Error("no default policy")
	}
}

func TestEveryPagePlacedAndValid(t *testing.T) {
	for _, pol := range decluster.All(7) {
		pt, err := New(testConfig(5, pol))
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.BuildPoints(randPoints(10, 2000, 2)); err != nil {
			t.Fatal(err)
		}
		if err := pt.Tree.CheckInvariants(); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
		if err := pt.CheckPlacements(); err != nil {
			t.Errorf("%s: %v", pol.Name(), err)
		}
		dist := pt.Distribution()
		if dist.Total != pt.Store().Len() {
			t.Errorf("%s: distribution total %d != store %d", pol.Name(), dist.Total, pt.Store().Len())
		}
	}
}

func TestPlacementsSurviveDeletes(t *testing.T) {
	pt, err := New(testConfig(4, decluster.ProximityIndex{}))
	if err != nil {
		t.Fatal(err)
	}
	pts := randPoints(11, 1200, 2)
	if err := pt.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 900; i++ {
		if !pt.DeletePoint(pts[i], rtree.ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := pt.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := pt.CheckPlacements(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicBuild(t *testing.T) {
	build := func() map[rtree.PageID]Placement {
		pt, err := New(testConfig(6, decluster.ProximityIndex{}))
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.BuildPoints(randPoints(12, 1500, 2)); err != nil {
			t.Fatal(err)
		}
		out := map[rtree.PageID]Placement{}
		pt.Walk(func(n *rtree.Node, _ int) bool {
			pl, _ := pt.Placement(n.ID)
			out[n.ID] = pl
			return true
		})
		return out
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("different page counts")
	}
	for id, pl := range a {
		if b[id] != pl {
			t.Fatalf("page %d placement differs: %v vs %v", id, pl, b[id])
		}
	}
}

func TestBalancedPoliciesSpreadPages(t *testing.T) {
	// Round-robin must be nearly perfectly balanced; PI should not be
	// wildly imbalanced either on uniform data.
	for _, tc := range []struct {
		policy decluster.Policy
		limit  float64
	}{
		{&decluster.RoundRobin{}, 1.15},
		{decluster.ProximityIndex{}, 1.8},
		{decluster.DataBalance{}, 1.15},
	} {
		pt, err := New(testConfig(8, tc.policy))
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.BuildPoints(randPoints(13, 4000, 2)); err != nil {
			t.Fatal(err)
		}
		d := pt.Distribution()
		if d.Imbalance > tc.limit {
			t.Errorf("%s: imbalance %.2f exceeds %.2f (pages %v)",
				tc.policy.Name(), d.Imbalance, tc.limit, d.Pages)
		}
	}
}

func TestProximityBeatsRandomOnSiblingSeparation(t *testing.T) {
	// Measure the fraction of parent nodes whose children land on
	// distinct disks ("sibling spread"). PI should separate siblings at
	// least as well as random placement — that is its entire purpose.
	spread := func(policy decluster.Policy) float64 {
		pt, err := New(Config{
			Dim: 2, NumDisks: 10, Cylinders: 1449, MaxEntries: 10,
			Policy: policy, Seed: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := pt.BuildPoints(randPoints(14, 3000, 2)); err != nil {
			t.Fatal(err)
		}
		var good, total float64
		pt.Walk(func(n *rtree.Node, _ int) bool {
			if n.IsLeaf() {
				return true
			}
			disks := map[int]bool{}
			for _, e := range n.Entries {
				disks[pt.DiskOf(e.Child)] = true
			}
			total++
			good += float64(len(disks)) / float64(len(n.Entries))
			return true
		})
		return good / total
	}
	pi := spread(decluster.ProximityIndex{})
	rnd := spread(decluster.NewRandom(5))
	if pi < rnd-0.02 {
		t.Errorf("PI sibling spread %.3f worse than random %.3f", pi, rnd)
	}
}

func TestDiskOfUnknownPanics(t *testing.T) {
	pt, _ := New(testConfig(2, nil))
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	pt.DiskOf(9999)
}

func TestCylindersInRange(t *testing.T) {
	pt, err := New(testConfig(3, &decluster.RoundRobin{}))
	if err != nil {
		t.Fatal(err)
	}
	_ = pt.BuildPoints(randPoints(15, 1000, 2))
	pt.Walk(func(n *rtree.Node, _ int) bool {
		pl, ok := pt.Placement(n.ID)
		if !ok {
			t.Errorf("page %d unplaced", n.ID)
			return false
		}
		if pl.Cylinder < 0 || pl.Cylinder >= 1449 {
			t.Errorf("page %d cylinder %d", n.ID, pl.Cylinder)
		}
		return true
	})
}
