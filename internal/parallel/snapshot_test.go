package parallel

import (
	"bytes"
	"testing"

	"repro/internal/decluster"
	"repro/internal/rtree"
)

func TestSnapshotRoundTrip(t *testing.T) {
	for _, spheres := range []bool{false, true} {
		orig, err := New(Config{
			Dim: 2, NumDisks: 6, Cylinders: 1449, MaxEntries: 16,
			Policy: decluster.ProximityIndex{}, Seed: 5, UseSpheres: spheres,
		})
		if err != nil {
			t.Fatal(err)
		}
		pts := randPoints(101, 2500, 2)
		if err := orig.BuildPoints(pts); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := orig.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		loaded, err := LoadSnapshot(&buf)
		if err != nil {
			t.Fatal(err)
		}

		if loaded.Len() != orig.Len() {
			t.Fatalf("spheres=%v: size %d vs %d", spheres, loaded.Len(), orig.Len())
		}
		if loaded.Height() != orig.Height() || loaded.Root() != orig.Root() {
			t.Error("structure metadata differs")
		}
		if loaded.NumDisks() != 6 || loaded.Config().UseSpheres != spheres {
			t.Error("config not restored")
		}

		// Every page identical in placement and content.
		orig.Walk(func(n *rtree.Node, _ int) bool {
			ln := loaded.Store().Get(n.ID)
			if ln.Level != n.Level || len(ln.Entries) != len(n.Entries) {
				t.Fatalf("page %d shape differs", n.ID)
			}
			for i := range n.Entries {
				a, b := n.Entries[i], ln.Entries[i]
				if !a.Rect.Equal(b.Rect) || a.Child != b.Child || a.Object != b.Object || a.Count != b.Count {
					t.Fatalf("page %d entry %d differs", n.ID, i)
				}
			}
			po, _ := orig.Placement(n.ID)
			pl, _ := loaded.Placement(n.ID)
			if po != pl {
				t.Fatalf("page %d placement %v vs %v", n.ID, po, pl)
			}
			return true
		})

		// Queries over the loaded tree behave identically.
		q := pts[100]
		a, _ := orig.NearestNeighbors(q, 15)
		b, _ := loaded.NearestNeighbors(q, 15)
		for i := range a {
			if a[i].DistSq != b[i].DistSq {
				t.Fatal("kNN differs after reload")
			}
		}

		// The loaded tree accepts further mutations.
		extra := randPoints(102, 300, 2)
		for i, p := range extra {
			if err := loaded.InsertPoint(p, rtree.ObjectID(100000+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := loaded.Tree.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if err := loaded.CheckPlacements(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLoadSnapshotRejectsGarbage(t *testing.T) {
	if _, err := LoadSnapshot(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := LoadSnapshot(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
	// Corrupt version.
	orig, _ := New(Config{Dim: 2, NumDisks: 2, Cylinders: 100, MaxEntries: 8, Seed: 1})
	_ = orig.BuildPoints(randPoints(103, 50, 2))
	var buf bytes.Buffer
	if err := orig.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := LoadSnapshot(bytes.NewReader(raw)); err == nil {
		t.Error("accepted bad version")
	}
	// Truncated body.
	raw[4] = 1
	if _, err := LoadSnapshot(bytes.NewReader(raw[:len(raw)/2])); err == nil {
		t.Error("accepted truncated snapshot")
	}
}
