package bruteforce

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func TestKNNSmall(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {3, 0}, {10, 0}}
	got := KNN(pts, geom.Point{0.9, 0}, 2)
	if len(got) != 2 || got[0].Index != 1 || got[1].Index != 0 {
		t.Errorf("got %+v", got)
	}
	if KNN(pts, geom.Point{0, 0}, 0) != nil {
		t.Error("k=0 should return nil")
	}
	if n := len(KNN(pts, geom.Point{0, 0}, 100)); n != 4 {
		t.Errorf("k>n returned %d", n)
	}
}

func TestKNNTieBreaksByIndex(t *testing.T) {
	pts := []geom.Point{{1, 0}, {-1, 0}, {0, 1}}
	got := KNN(pts, geom.Point{0, 0}, 3)
	for i := 1; i < 3; i++ {
		if got[i].DistSq != got[i-1].DistSq {
			t.Fatal("expected all equidistant")
		}
	}
	if got[0].Index != 0 || got[1].Index != 1 || got[2].Index != 2 {
		t.Errorf("tie order: %+v", got)
	}
}

func TestKthDistSq(t *testing.T) {
	pts := []geom.Point{{1, 0}, {2, 0}, {3, 0}}
	if d := KthDistSq(pts, geom.Point{0, 0}, 2); d != 4 {
		t.Errorf("KthDistSq = %g, want 4", d)
	}
	if d := KthDistSq(nil, geom.Point{0, 0}, 2); d != 0 {
		t.Errorf("empty KthDistSq = %g", d)
	}
}

func TestRange(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 0}, {2, 0}, {5, 0}}
	got := Range(pts, geom.Point{0, 0}, 2)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Errorf("Range = %v", got)
	}
}

// Property: KNN results are sorted, distances correct, and the k-th
// distance bounds exactly k points (modulo ties).
func TestKNNProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		n := 50 + rnd.Intn(100)
		k := int(kRaw)%n + 1
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rnd.Float64(), rnd.Float64(), rnd.Float64()}
		}
		q := geom.Point{rnd.Float64(), rnd.Float64(), rnd.Float64()}
		rs := KNN(pts, q, k)
		if len(rs) != k {
			return false
		}
		for i, r := range rs {
			if r.DistSq != q.DistSq(pts[r.Index]) {
				return false
			}
			if i > 0 && rs[i-1].DistSq > r.DistSq {
				return false
			}
		}
		// Every point not in the result set must be at least as far as
		// the k-th.
		in := map[int]bool{}
		for _, r := range rs {
			in[r.Index] = true
		}
		kth := rs[k-1].DistSq
		for i, p := range pts {
			if !in[i] && q.DistSq(p) < kth {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
