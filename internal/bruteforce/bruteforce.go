// Package bruteforce provides linear-scan exact similarity search. It is
// the independent ground truth against which every tree-based algorithm
// is validated, and the oracle that supplies the k-th neighbor distance
// Dk to the hypothetical weak-optimal algorithm WOPTSS (paper §3.4),
// which assumes Dk is known in advance.
package bruteforce

import (
	"sort"

	"repro/internal/geom"
)

// Result is one neighbor: the point's index in the data slice and its
// squared distance to the query.
type Result struct {
	Index  int
	DistSq float64
}

// KNN returns the k nearest points to q by Euclidean distance, ordered
// by increasing distance (ties by index for determinism). When k exceeds
// the population, all points are returned.
func KNN(pts []geom.Point, q geom.Point, k int) []Result {
	if k <= 0 {
		return nil
	}
	rs := make([]Result, len(pts))
	for i, p := range pts {
		rs[i] = Result{Index: i, DistSq: q.DistSq(p)}
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].DistSq != rs[j].DistSq {
			return rs[i].DistSq < rs[j].DistSq
		}
		return rs[i].Index < rs[j].Index
	})
	if k > len(rs) {
		k = len(rs)
	}
	return rs[:k]
}

// KthDistSq returns the squared distance from q to its k-th nearest
// point — the radius the weak-optimal algorithm is given for free. It
// returns 0 when the data set is empty.
func KthDistSq(pts []geom.Point, q geom.Point, k int) float64 {
	rs := KNN(pts, q, k)
	if len(rs) == 0 {
		return 0
	}
	return rs[len(rs)-1].DistSq
}

// Range returns the indices of all points within distance eps of q,
// in index order.
func Range(pts []geom.Point, q geom.Point, eps float64) []int {
	epsSq := eps * eps
	var out []int
	for i, p := range pts {
		if q.DistSq(p) <= epsSq {
			out = append(out, i)
		}
	}
	return out
}
