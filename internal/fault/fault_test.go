package fault

import (
	"errors"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/pagestore"
	"repro/internal/rtree"
)

// fates replays n I/Os on a fresh injector and records each one's
// (delay, error) pair.
func fates(seed int64, drive int, f Faults, n int) []string {
	in := NewInjector(seed)
	in.Set(drive, f)
	out := make([]string, n)
	for i := range out {
		delay, err := in.Check(drive)
		out[i] = delay.String() + "/" + errString(err)
	}
	return out
}

func errString(err error) string {
	if err == nil {
		return "ok"
	}
	return err.Error()
}

// TestInjectorDeterministic: the fate sequence of a drive is a pure
// function of (seed, drive, I/O ordinal), and independent drives never
// perturb each other's streams.
func TestInjectorDeterministic(t *testing.T) {
	f := Faults{Transient: 0.3, SpikeProb: 0.2, SpikeDelay: time.Millisecond}
	a := fates(42, 3, f, 200)
	b := fates(42, 3, f, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("io %d: %q vs %q on identical replay", i, a[i], b[i])
		}
	}

	// Interleaving another drive's I/Os must not shift drive 3's fates.
	in := NewInjector(42)
	in.Set(3, f)
	in.Set(7, f)
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			in.Check(7)
		}
		delay, err := in.Check(3)
		if got := delay.String() + "/" + errString(err); got != a[i] {
			t.Fatalf("io %d: %q under interleaving, %q solo", i, got, a[i])
		}
	}

	// A different seed must produce a different fate sequence.
	c := fates(43, 3, f, 200)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("seeds 42 and 43 produced identical fate sequences")
	}
}

// TestFailStopAfterN: the FailAfter-th I/O is the first to fail, and
// every I/O after it fails too.
func TestFailStopAfterN(t *testing.T) {
	in := NewInjector(1)
	in.Set(0, Faults{FailAfter: 5})
	for i := 1; i <= 10; i++ {
		_, err := in.Check(0)
		if i < 5 && err != nil {
			t.Fatalf("io %d failed before FailAfter: %v", i, err)
		}
		if i >= 5 && !errors.Is(err, ErrDiskDead) {
			t.Fatalf("io %d: err = %v, want ErrDiskDead", i, err)
		}
	}
	if got := in.IOs(0); got != 10 {
		t.Fatalf("IOs = %d, want 10", got)
	}
}

// TestDeadOnArrival: Dead and the Fail kill switch stop a drive before
// its first I/O.
func TestDeadOnArrival(t *testing.T) {
	in := NewInjector(1)
	in.Set(0, Faults{Dead: true})
	if _, err := in.Check(0); !errors.Is(err, ErrDiskDead) {
		t.Fatalf("Dead drive served an I/O: %v", err)
	}

	in.Fail(1)
	if _, err := in.Check(1); !errors.Is(err, ErrDiskDead) {
		t.Fatalf("Fail()ed drive served an I/O: %v", err)
	}

	// Unprogrammed drives never fail.
	if _, err := in.Check(2); err != nil {
		t.Fatalf("healthy drive failed: %v", err)
	}
}

// TestTransientRate: the injected transient-error frequency tracks the
// configured probability.
func TestTransientRate(t *testing.T) {
	in := NewInjector(7)
	in.Set(0, Faults{Transient: 0.25})
	fails := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if _, err := in.Check(0); errors.Is(err, ErrTransient) {
			fails++
		} else if err != nil {
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	rate := float64(fails) / n
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("transient rate %.3f, configured 0.25", rate)
	}
}

// TestSpikes: latency spikes delay the I/O without failing it, at the
// configured frequency.
func TestSpikes(t *testing.T) {
	in := NewInjector(9)
	in.Set(0, Faults{SpikeProb: 0.5, SpikeDelay: 3 * time.Millisecond})
	spikes := 0
	const n = 1000
	for i := 0; i < n; i++ {
		delay, err := in.Check(0)
		if err != nil {
			t.Fatalf("spike-only program failed an I/O: %v", err)
		}
		switch delay {
		case 0:
		case 3 * time.Millisecond:
			spikes++
		default:
			t.Fatalf("unexpected delay %v", delay)
		}
	}
	if spikes < 400 || spikes > 600 {
		t.Fatalf("%d/%d spikes, configured 0.5", spikes, n)
	}
}

// fakeReader serves a fixed node and counts calls.
type fakeReader struct {
	node  *rtree.Node
	calls int
}

func (f *fakeReader) ReadPage(rtree.PageID) (*rtree.Node, error) {
	f.calls++
	return f.node, nil
}

// TestReaderWrapper: the wrapped reader delegates on success and never
// touches the underlying store once the drive is dead.
func TestReaderWrapper(t *testing.T) {
	in := NewInjector(3)
	under := &fakeReader{node: &rtree.Node{ID: 77}}
	rd := in.Reader(0, under)

	n, err := rd.ReadPage(77)
	if err != nil || n.ID != 77 {
		t.Fatalf("healthy read: node %v, err %v", n, err)
	}
	if under.calls != 1 {
		t.Fatalf("underlying reader called %d times, want 1", under.calls)
	}

	in.Fail(0)
	if _, err := rd.ReadPage(77); !errors.Is(err, ErrDiskDead) {
		t.Fatalf("dead drive read: %v, want ErrDiskDead", err)
	}
	if under.calls != 1 {
		t.Fatal("dead drive still reached the underlying store")
	}
}

// TestErrDataUnavailable covers the typed error's matching and
// unwrapping contract.
func TestErrDataUnavailable(t *testing.T) {
	var err error = &ErrDataUnavailable{Disk: 2, Page: 41, Last: ErrDiskDead}

	var dataErr *ErrDataUnavailable
	if !errors.As(err, &dataErr) {
		t.Fatal("errors.As failed to match *ErrDataUnavailable")
	}
	if dataErr.Disk != 2 || dataErr.Page != 41 {
		t.Fatalf("matched error carries disk %d page %d", dataErr.Disk, dataErr.Page)
	}
	if !errors.Is(err, ErrDiskDead) {
		t.Fatal("Unwrap does not expose the underlying replica error")
	}
	if msg := err.Error(); msg == "" {
		t.Fatal("empty error message")
	}
	if msg := (&ErrDataUnavailable{Disk: 0, Page: 1}).Error(); msg == "" {
		t.Fatal("empty error message without Last")
	}
}

// TestInjectorMisdirectedRead is the satellite-1 regression: a drive
// that serves a well-formed page from the wrong address must surface as
// a typed *pagestore.IntegrityError through the injected Reader, never
// as a silently wrong node.
func TestInjectorMisdirectedRead(t *testing.T) {
	ps := pagestore.NewPagedStore(4096, 2)
	a := ps.Allocate(0)
	a.Entries = append(a.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{1, 1}), 1))
	ps.Update(a)
	b := ps.Allocate(0)
	b.Entries = append(b.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{2, 2}), 2))
	ps.Update(b)

	in := NewInjector(1)
	in.Set(0, Faults{MisdirectOn: 2})
	r := in.Reader(0, ps)

	n, err := r.ReadPage(a.ID)
	if err != nil || n.ID != a.ID {
		t.Fatalf("first read: n=%v err=%v", n, err)
	}
	// Second I/O is misdirected: the drive serves the previously read
	// page (a) instead of b.
	_, err = r.ReadPage(b.ID)
	var ie *pagestore.IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("misdirected read: err = %v, want *pagestore.IntegrityError", err)
	}
	if ie.Want != b.ID || ie.Got != a.ID {
		t.Errorf("IntegrityError = %+v, want Want=%d Got=%d", ie, b.ID, a.ID)
	}
	// Subsequent I/Os are healthy again.
	if n, err := r.ReadPage(b.ID); err != nil || n.ID != b.ID {
		t.Errorf("read after misdirection: n=%v err=%v", n, err)
	}
}

// A misdirected first I/O has no history to serve; the injector targets
// the next page id, which may not even exist — an error either way,
// never the wrong node.
func TestInjectorMisdirectFirstIO(t *testing.T) {
	ps := pagestore.NewPagedStore(4096, 2)
	a := ps.Allocate(0)
	a.Entries = append(a.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{1, 1}), 1))
	ps.Update(a)
	in := NewInjector(2)
	in.Set(0, Faults{MisdirectOn: 1})
	n, err := in.Reader(0, ps).ReadPage(a.ID)
	if err == nil {
		t.Fatalf("misdirected first read succeeded with node %d", n.ID)
	}
}
