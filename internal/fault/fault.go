// Package fault is the deterministic fault-injection layer of the disk
// array: a seeded Injector decides, per physical drive and per I/O,
// whether a page read succeeds, fails transiently, fails permanently
// (fail-stop) or is served after an injected latency spike. The real
// execution engine (package exec) wraps each replica's page store with
// an injected Reader; the event-driven simulator (package simarray)
// consumes the same typed errors for its own fail-stop model.
//
// Determinism: every drive owns an independent random stream seeded
// from the injector seed and the drive index, so the fate sequence of a
// drive's I/Os depends only on (seed, drive, I/O ordinal) — never on
// how I/Os of different drives interleave. That is what lets a chaos
// test replay the exact same failure schedule a hundred times.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/pagestore"
	"repro/internal/rtree"
)

// ErrTransient is the retryable injected error: the I/O failed but the
// drive is healthy and a retry may succeed.
var ErrTransient = errors.New("fault: injected transient I/O error")

// ErrDiskDead is the permanent injected error: the drive has
// fail-stopped and every future I/O against it fails too. Readers
// should redirect to a mirror instead of retrying.
var ErrDiskDead = errors.New("fault: drive fail-stopped")

// ErrDataUnavailable is returned when no live replica of a page
// remains: the read is not retryable and the query cannot produce a
// correct answer. It is the typed degraded-mode error shared by the
// concurrent engine and the simulator — callers match it with
// errors.As and must never substitute a partial result set for it.
type ErrDataUnavailable struct {
	Disk int          // logical disk holding the page
	Page rtree.PageID // the unreadable page
	Last error        // last underlying replica error, when known
}

// Error implements error.
func (e *ErrDataUnavailable) Error() string {
	if e.Last != nil {
		return fmt.Sprintf("fault: page %d unavailable: logical disk %d has no live replica (last error: %v)",
			e.Page, e.Disk, e.Last)
	}
	return fmt.Sprintf("fault: page %d unavailable: logical disk %d has no live replica", e.Page, e.Disk)
}

// Unwrap exposes the last replica error to errors.Is/As chains.
func (e *ErrDataUnavailable) Unwrap() error { return e.Last }

// Faults is one drive's fault program. The zero value injects nothing.
type Faults struct {
	// Dead fail-stops the drive before it serves a single I/O.
	Dead bool
	// FailAfter, when positive, fail-stops the drive permanently after
	// it has been asked for that many I/Os (the FailAfter-th I/O is the
	// first to fail).
	FailAfter int
	// Transient is the per-I/O probability of a retryable error.
	Transient float64
	// SpikeProb is the per-I/O probability of an injected latency
	// spike of SpikeDelay (the I/O still succeeds, just late).
	SpikeProb  float64
	SpikeDelay time.Duration
	// MisdirectOn, when positive, misdirects the drive's MisdirectOn-th
	// I/O: the drive "succeeds" but serves a different page than the one
	// asked for (the previously requested page, or the next page id when
	// there is no history). The data that comes back is well-formed —
	// only the read path's identity check (decoded node id vs requested
	// id) can catch it, which is exactly what the misdirected-read
	// regression tests assert.
	MisdirectOn int
}

// driveState is one drive's mutable injection state.
type driveState struct {
	faults   Faults
	rng      *rand.Rand // per-drive stream: fate depends only on the drive's own I/O ordinal
	ios      uint64     // I/Os decided so far (including failed ones)
	dead     bool
	lastPage rtree.PageID // most recently requested page; misdirection target
	hasLast  bool
}

// Injector decides the fate of each I/O deterministically from its
// seed. Drives are identified by a caller-chosen integer (the engine
// uses disk*mirrors+mirror). Safe for concurrent use.
type Injector struct {
	seed int64

	mu     sync.Mutex
	drives map[int]*driveState // guarded by mu
}

// NewInjector creates an injector with no programmed faults.
func NewInjector(seed int64) *Injector {
	return &Injector{seed: seed, drives: make(map[int]*driveState)}
}

// drive returns (creating on first use) a drive's state. Callers hold mu.
func (in *Injector) drive(id int) *driveState {
	st, ok := in.drives[id] //lint:allow lockcheck every caller holds in.mu (see doc comment)
	if !ok {
		st = &driveState{rng: rand.New(rand.NewSource(in.seed + int64(id)*104729 + 13))}
		in.drives[id] = st //lint:allow lockcheck every caller holds in.mu (see doc comment)
	}
	return st
}

// Set programs a drive's fault behavior; it replaces any previous
// program but keeps the drive's I/O count and random stream.
func (in *Injector) Set(id int, f Faults) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.drive(id)
	st.faults = f
	if f.Dead {
		st.dead = true
	}
}

// Fail is the runtime kill switch: it fail-stops a drive immediately.
func (in *Injector) Fail(id int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.drive(id).dead = true
}

// IOs reports how many I/Os the injector has decided for a drive.
func (in *Injector) IOs(id int) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.drive(id).ios
}

// Check decides the fate of a drive's next I/O: an optional injected
// latency (to be paid before the read) and the error, if any. A nil
// error means the I/O succeeds after the returned delay.
func (in *Injector) Check(id int) (time.Duration, error) {
	delay, _, err := in.checkRead(id, 0, false)
	return delay, err
}

// CheckRead is Check for page reads: it additionally decides which page
// the drive actually serves. readPage equals page except on a
// misdirected I/O, where the drive successfully returns the wrong page
// — the caller must perform the read against readPage and let the read
// path's identity check discover the substitution.
func (in *Injector) CheckRead(id int, page rtree.PageID) (time.Duration, rtree.PageID, error) {
	return in.checkRead(id, page, true)
}

func (in *Injector) checkRead(id int, page rtree.PageID, isRead bool) (time.Duration, rtree.PageID, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	st := in.drive(id)
	st.ios++
	if st.faults.FailAfter > 0 && st.ios >= uint64(st.faults.FailAfter) {
		st.dead = true
	}
	if st.dead {
		return 0, page, ErrDiskDead
	}
	var delay time.Duration
	// One draw per configured mode keeps each drive's fate sequence a
	// pure function of its I/O ordinal.
	if st.faults.SpikeProb > 0 && st.rng.Float64() < st.faults.SpikeProb {
		delay = st.faults.SpikeDelay
	}
	if st.faults.Transient > 0 && st.rng.Float64() < st.faults.Transient {
		return delay, page, ErrTransient
	}
	readPage := page
	if isRead {
		if st.faults.MisdirectOn > 0 && st.ios == uint64(st.faults.MisdirectOn) {
			if st.hasLast && st.lastPage != page {
				readPage = st.lastPage
			} else {
				readPage = page + 1
			}
		}
		st.lastPage = page
		st.hasLast = true
	}
	return delay, readPage, nil
}

// readerFunc adapts a function to pagestore.Reader.
type readerFunc func(id rtree.PageID) (*rtree.Node, error)

func (f readerFunc) ReadPage(id rtree.PageID) (*rtree.Node, error) { return f(id) }

// Reader wraps a page reader with this injector's program for one
// drive: every ReadPage first pays the injected latency, then either
// fails with the injected error or delegates to the underlying reader —
// possibly against a different page, when the injector misdirects the
// I/O. The wrapper enforces the Reader contract on what comes back: a
// decoded node whose id differs from the requested page (however that
// happened — injection or a real store bug underneath) surfaces as a
// typed *pagestore.IntegrityError, never as a silently wrong node.
func (in *Injector) Reader(id int, r pagestore.Reader) pagestore.Reader {
	return readerFunc(func(page rtree.PageID) (*rtree.Node, error) {
		delay, readPage, err := in.CheckRead(id, page)
		if delay > 0 {
			time.Sleep(delay)
		}
		if err != nil {
			return nil, err
		}
		n, err := r.ReadPage(readPage)
		if err != nil {
			return nil, err
		}
		if n.ID != page {
			return nil, &pagestore.IntegrityError{Want: page, Got: n.ID}
		}
		return n, nil
	})
}
