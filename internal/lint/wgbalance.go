package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WgBalance proves sync.WaitGroup Add/Done pairing around `go`
// statements, path-sensitively:
//
//   - Add-dominates-spawn: a spawn whose goroutine calls wg.Done must
//     have a wg.Add on every path leading to the `go` statement —
//     otherwise Wait can return before the goroutine runs.
//   - Done-on-every-exit: when the spawned body calls wg.Done at all,
//     it must do so on every non-panic exit path (a deferred Done
//     counts from registration) — a skipped Done hangs Wait forever.
//   - Unconsumed Add: an Add in a spawning function whose goroutines
//     never Done that WaitGroup (and that the function itself never
//     Dones) hangs Wait; reported once, at the Add.
//   - Add-inside-goroutine: an Add on a captured WaitGroup from inside
//     the spawned literal races Wait; Add must happen before the spawn.
//
// The checks run only in functions that themselves spawn goroutines:
// cross-function protocols (an Add in begin() paired with a deferred
// Done in the query path) are deliberate designs whose balance the
// race detector and engine Close tests own. WaitGroup identity is the
// root variable or field object, so the spawning function and the
// spawned body (a method, or a literal capturing a local) agree on
// which WaitGroup they mean.
var WgBalance = &Analyzer{
	Name: "wgbalance",
	Doc: "WaitGroup Add must dominate the go statement that Dones it, the " +
		"spawned body must Done on every non-panic exit, and an Add no " +
		"goroutine consumes hangs Wait",
	Run: runWgBalance,
}

// wgCall classifies a call as WaitGroup Add/Done/Wait on an
// identifiable WaitGroup, returning its identity object.
func wgCall(pass *Pass, call *ast.CallExpr) (method string, obj types.Object, ok bool) {
	rt, m, recv, isSync := syncMethod(pass.TypesInfo, call)
	if !isSync || rt != "WaitGroup" {
		return "", nil, false
	}
	switch m {
	case "Add", "Done", "Wait":
	default:
		return "", nil, false
	}
	o, _ := rootSelObj(pass.TypesInfo, recv)
	if o == nil {
		return "", nil, false
	}
	return m, o, true
}

func runWgBalance(pass *Pass) error {
	if !inConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	cg := BuildCallGraph(pass)
	for _, fi := range cg.Funcs {
		checkWgFunc(pass, cg, fi)
	}
	return nil
}

func checkWgFunc(pass *Pass, cg *CallGraph, fi *FuncInfo) {
	var goStmts []*ast.GoStmt
	inspectOwn(fi.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) == 0 {
		return
	}

	// Which WaitGroups does each spawn's body Done, and on which paths?
	type spawn struct {
		g       *ast.GoStmt
		dones   map[types.Object]bool // Done called somewhere in the body
		onEvery map[types.Object]bool // Done called on every non-panic exit
	}
	spawns := make([]*spawn, 0, len(goStmts))
	consumed := map[types.Object]bool{} // wg objects some spawn Dones (on all exits)
	for _, g := range goStmts {
		sp := &spawn{g: g, dones: map[types.Object]bool{}, onEvery: map[types.Object]bool{}}
		for _, t := range cg.GoTargets(pass, g) {
			bodyWgDones(pass, t.Body, sp.dones)
			for obj := range sp.dones {
				if wgDoneOnAllExits(pass, t.Body, obj) {
					sp.onEvery[obj] = true
				}
			}
			// Rule: Add inside the spawned literal on a captured
			// WaitGroup races Wait.
			if t.Lit != nil {
				inspectOwn(t.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if m, obj, ok := wgCall(pass, call); ok && m == "Add" {
						if v, isVar := obj.(*types.Var); isVar && !v.IsField() && definedOutside(v, t.Lit) {
							pass.Reportf(call.Pos(),
								"%s: wg.Add inside the spawned goroutine races Wait "+
									"(Wait may run before the Add); move the Add before "+
									"the go statement",
								fi.Name)
						}
					}
					return true
				})
			}
		}
		for obj := range sp.onEvery {
			consumed[obj] = true
		}
		spawns = append(spawns, sp)
	}

	// Collect this function's own Adds/Dones (outside spawned bodies;
	// inspectOwn already excludes literals) per WaitGroup.
	type addSite struct {
		pos token.Pos
		obj types.Object
	}
	var adds []addSite
	selfDones := map[types.Object]bool{}
	addObjs := map[types.Object]int{} // bit index per WaitGroup with Adds
	inspectOwn(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		m, obj, ok := wgCall(pass, call)
		if !ok {
			return true
		}
		switch m {
		case "Add":
			adds = append(adds, addSite{call.Pos(), obj})
			if _, seen := addObjs[obj]; !seen {
				addObjs[obj] = len(addObjs)
			}
		case "Done":
			selfDones[obj] = true
		}
		return true
	})

	// Rule: Add-dominates-spawn. Must-analysis: bit(wg) = "an Add on wg
	// was executed on every path to here".
	if len(addObjs) > 0 || len(consumed) > 0 {
		// Bits for every wg any spawn Dones, whether or not it has Adds
		// here — a spawn Doning a wg with no Add at all must also fire.
		bits := map[types.Object]int{}
		for obj := range addObjs {
			bits[obj] = len(bits)
		}
		for _, sp := range spawns {
			for obj := range sp.dones {
				if _, seen := bits[obj]; !seen {
					bits[obj] = len(bits)
				}
			}
		}
		cfg := BuildCFG(fi.Body)
		apply := func(n ast.Node, state BitSet, report bool) {
			inspectOwn(n, func(m ast.Node) bool {
				if g, ok := m.(*ast.GoStmt); ok {
					if report {
						for _, sp := range spawns {
							if sp.g != g {
								continue
							}
							for obj := range sp.dones {
								if i, ok := bits[obj]; ok && !state.Has(i) {
									pass.Reportf(g.Pos(),
										"%s: goroutine calls %s.Done but no %s.Add is "+
											"guaranteed before this spawn: Wait can return "+
											"early; Add before the go statement on every path",
										fi.Name, wgName(obj), wgName(obj))
								}
							}
						}
					}
					return false
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if meth, obj, ok := wgCall(pass, call); ok && meth == "Add" {
					if i, ok := bits[obj]; ok {
						state.Set(i)
					}
				}
				return true
			})
		}
		transfer := func(b *Block, in BitSet) []BitSet {
			out := in
			for _, n := range b.Nodes {
				apply(n, out, false)
			}
			return UniformOuts(b, out)
		}
		entry := NewBitSet(len(bits)) // nothing Added at entry
		ins := cfg.Flow(FlowSpec{Bits: len(bits), Must: true, Entry: entry, Transfer: transfer})
		reportedOnce := map[token.Pos]bool{}
		for i, b := range cfg.Blocks {
			state := ins[i].Clone()
			for _, n := range b.Nodes {
				if !reportedOnce[n.Pos()] {
					reportedOnce[n.Pos()] = true
					apply(n, state, true)
				} else {
					apply(n, state, false)
				}
			}
		}
	}

	// Rule: Done-on-every-exit of the spawned body.
	for _, sp := range spawns {
		for obj := range sp.dones {
			if !sp.onEvery[obj] {
				pass.Reportf(sp.g.Pos(),
					"%s: the spawned goroutine calls %s.Done on some paths but not on "+
						"every non-panic exit: a skipped Done hangs Wait; use `defer "+
						"%s.Done()` at the top of the body",
					fi.Name, wgName(obj), wgName(obj))
			}
		}
	}

	// Rule: unconsumed Add — report once per WaitGroup, at its first Add.
	reportedAdd := map[types.Object]bool{}
	for _, a := range adds {
		if consumed[a.obj] || selfDones[a.obj] || reportedAdd[a.obj] {
			continue
		}
		// A spawn that Dones on *some* path already gets the
		// Done-on-every-exit report above; don't double-report here.
		partial := false
		for _, sp := range spawns {
			if sp.dones[a.obj] {
				partial = true
				break
			}
		}
		if partial {
			continue
		}
		reportedAdd[a.obj] = true
		pass.Reportf(a.pos,
			"%s: %s.Add has no matching Done: none of the goroutines spawned here "+
				"calls %s.Done and the function never does, so Wait hangs forever",
			fi.Name, wgName(a.obj), wgName(a.obj))
	}
}

// bodyWgDones records which WaitGroups a body Dones anywhere (its own
// nodes; a deferred Done is a DeferStmt node and is included).
func bodyWgDones(pass *Pass, body *ast.BlockStmt, out map[types.Object]bool) {
	inspectOwn(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if m, obj, ok := wgCall(pass, call); ok && m == "Done" {
			out[obj] = true
		}
		return true
	})
}

// wgDoneOnAllExits runs a must-analysis over the body: "Done executed"
// is genned by a Done call or the registration of a defer containing
// one, and must hold at the normal exit.
func wgDoneOnAllExits(pass *Pass, body *ast.BlockStmt, wg types.Object) bool {
	cfg := BuildCFG(body)
	transfer := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			inspectOwn(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if meth, obj, ok := wgCall(pass, call); ok && meth == "Done" && obj == wg {
					out.Set(0)
				}
				return true
			})
		}
		return UniformOuts(b, out)
	}
	entry := NewBitSet(1)
	ins := cfg.Flow(FlowSpec{Bits: 1, Must: true, Entry: entry, Transfer: transfer})
	return ins[cfg.Exit].Has(0)
}

// definedOutside reports whether v's declaration lies outside lit.
func definedOutside(v *types.Var, lit *ast.FuncLit) bool {
	return v.Pos() < lit.Pos() || v.Pos() >= lit.End()
}

// wgName renders a WaitGroup identity for diagnostics.
func wgName(obj types.Object) string { return obj.Name() }
