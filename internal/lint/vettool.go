package lint

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"
)

// This file implements the cmd/go vettool ("unitchecker") protocol with
// the standard library only, standing in for
// golang.org/x/tools/go/analysis/unitchecker (unavailable offline).
// cmd/go drives the tool in three modes:
//
//	tool -V=full          print an identity line for the build cache
//	tool -flags           print the tool's flags as JSON
//	tool [flags] vet.cfg  analyze one package unit described by vet.cfg
//
// In the last mode cmd/go has already compiled the package's
// dependencies; vet.cfg maps each import path to an export-data file,
// which the gc importer reads through a lookup function, so no network
// or GOPATH access is needed. Diagnostics go to stderr as
// "file:line:col: message" and a nonzero exit marks the package failed,
// which `go vet` relays to the user.

// vetConfig mirrors the fields of cmd/go's vet.cfg JSON that this
// driver consumes; unknown fields are ignored.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Vettool is the entry point of cmd/simquerylint: it dispatches on the
// protocol modes above and exits the process with the appropriate
// status (0 clean, 1 findings or failure).
func Vettool(analyzers []*Analyzer) {
	progname := os.Args[0]
	args := os.Args[1:]
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion(progname)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		printFlagsJSON()
		return
	}
	if len(args) == 0 || !strings.HasSuffix(args[len(args)-1], ".cfg") {
		fmt.Fprintf(os.Stderr,
			"usage: %s vet.cfg\n\nsimquerylint is a go vet tool; run it via\n"+
				"  go vet -vettool=%s ./...\nor `make analyze`.\nAnalyzers:\n",
			progname, progname)
		for _, a := range analyzers {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
		os.Exit(2)
	}
	diags, err := runUnit(args[len(args)-1], analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simquerylint: %v\n", err)
		os.Exit(1)
	}
	if len(diags.list) > 0 {
		for _, d := range diags.list {
			fmt.Fprintf(os.Stderr, "%s: %s: %s\n", diags.fset.Position(d.Pos), d.Analyzer, d.Message)
		}
		os.Exit(1)
	}
}

// printVersion emits the `-V=full` identity line cmd/go hashes for its
// build cache: "<progname> version devel ... buildID=<content hash>".
// The hash is over the executable itself, so rebuilding the tool
// invalidates cached vet results.
func printVersion(progname string) {
	h := sha256.New()
	if f, err := os.Open(progname); err == nil {
		_, _ = io.Copy(h, f)
		f.Close()
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil))
}

// printFlagsJSON describes the tool's flags to `go vet`'s flag parser.
func printFlagsJSON() {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{}
	flag.VisitAll(func(f *flag.Flag) {
		b, ok := f.Value.(interface{ IsBoolFlag() bool })
		flags = append(flags, jsonFlag{f.Name, ok && b.IsBoolFlag(), f.Usage})
	})
	data, _ := json.MarshalIndent(flags, "", "\t")
	os.Stdout.Write(data)
	fmt.Println()
}

type unitDiags struct {
	fset *token.FileSet
	list []Diagnostic
}

// runUnit analyzes the package unit described by cfgFile.
func runUnit(cfgFile string, analyzers []*Analyzer) (unitDiags, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return unitDiags{}, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return unitDiags{}, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	// The facts ("vetx") output must exist for cmd/go's caching even
	// though these analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return unitDiags{}, err
		}
	}
	if cfg.VetxOnly {
		return unitDiags{}, nil
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		return unitDiags{}, fmt.Errorf("unsupported compiler %q", cfg.Compiler)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return unitDiags{}, nil
			}
			return unitDiags{}, err
		}
		files = append(files, f)
	}

	// Resolve imports from the export data cmd/go compiled for this
	// unit: ImportMap canonicalizes source spellings (vendoring),
	// PackageFile locates each dependency's export data.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		GoVersion: cfg.GoVersion,
		Error:     func(error) {}, // collect via returned error; keep going
	}
	info := newTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return unitDiags{}, nil
		}
		return unitDiags{}, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	diags, err := RunAnalyzers(&Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, analyzers)
	if err != nil {
		return unitDiags{}, err
	}
	return unitDiags{fset: fset, list: diags}, nil
}
