package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismPackages are the packages whose behavior must be a pure
// function of their inputs and seeds: the immediate driver, the
// event-driven simulator and the concurrent engine all execute these
// and their results are asserted bit-identical by the parity tests.
var determinismPackages = map[string]bool{
	"repro/internal/sim":       true,
	"repro/internal/simarray":  true,
	"repro/internal/query":     true,
	"repro/internal/rtree":     true,
	"repro/internal/decluster": true,
	"repro/internal/geom":      true,
	// pagestore is on the decode path that materializes rtree.FlatNode
	// views for the batch distance kernels: codec round-trips and shadow
	// verification feed the same bit-parity contract as geom itself.
	"repro/internal/pagestore": true,
}

// inDeterminismScope also admits the analyzer's own golden-test
// packages (loaded with their testdata directory name as import path).
func inDeterminismScope(path, analyzer string) bool {
	path = normalizePkgPath(path)
	return determinismPackages[path] || strings.HasPrefix(path, analyzer)
}

// wallClockFuncs are the time package functions that read the wall
// clock. time.Date etc. are pure and stay allowed.
var wallClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// allowedRandFuncs are the package-level math/rand constructors that do
// NOT draw from the unseeded global source. Everything else at package
// level (Intn, Float64, Shuffle, Perm, ...) uses the global generator,
// whose sequence is shared process-wide and order-dependent.
var allowedRandFuncs = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// SimDeterminism forbids nondeterminism sources in the simulation and
// query-path packages: wall-clock reads (time.Now/Since/Until),
// global-source math/rand functions, and map iteration that feeds
// ordered output (appends to outer slices or channel sends).
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock reads, unseeded global math/rand use, and ordered " +
		"output built from map iteration in simulation/query-path packages; " +
		"these paths must be a pure function of inputs and seeds so that " +
		"driver, simulator and engine stay bit-identical",
	Run: runSimDeterminism,
}

func runSimDeterminism(pass *Pass) error {
	if !inDeterminismScope(pass.Pkg.Path(), pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				checkDeterminismCall(pass, call)
			}
			return true
		})
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					if rng, ok := n.(*ast.RangeStmt); ok {
						checkMapRange(pass, fd, rng)
					}
					return true
				})
			}
		}
	}
	return nil
}

func checkDeterminismCall(pass *Pass, call *ast.CallExpr) {
	fn := callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if wallClockFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"wall-clock read time.%s in a determinism-critical package; "+
					"simulation and query paths must depend only on inputs and seeds",
				fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if !allowedRandFuncs[fn.Name()] {
			pass.Reportf(call.Pos(),
				"%s.%s draws from the global random source; use a seeded "+
					"*rand.Rand (rand.New(rand.NewSource(seed))) so runs are reproducible",
				fn.Pkg().Path(), fn.Name())
		}
	}
}

// checkMapRange flags `for k := range m` loops whose body builds
// ordered output: appending to a slice declared outside the loop or
// sending on a channel. Map iteration order is randomized per run, so
// such output silently diverges between executions. The canonical fix
// — collect the keys, then sort them — is recognized and left alone:
// an append target that is later passed to a sort/slices call is
// order-normalized.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rng *ast.RangeStmt) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	reported := false
	report := func(pos ast.Node, what string) {
		if reported {
			return
		}
		reported = true
		pass.Reportf(rng.Pos(),
			"range over map %s ordered output (%s in the loop body); map iteration "+
				"order is nondeterministic — collect and sort the keys first",
			"feeds", what)
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			report(n, "channel send")
		case *ast.CallExpr:
			id, ok := ast.Unparen(n.Fun).(*ast.Ident)
			if !ok || len(n.Args) == 0 {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin || id.Name != "append" {
				return true
			}
			if declaredOutside(pass, n.Args[0], rng) && !sortedInFunc(pass, fd, n.Args[0]) {
				report(n, "append to a slice declared outside the loop")
			}
		}
		return !reported
	})
}

// declaredOutside reports whether the root object of expr was declared
// outside the range statement (an outer local, a field, a global).
func declaredOutside(pass *Pass, expr ast.Expr, rng *ast.RangeStmt) bool {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	case *ast.SelectorExpr, *ast.IndexExpr:
		// Fields and elements necessarily outlive the loop.
		return true
	}
	return false
}

// sortedInFunc reports whether target (an identifier or field path) is
// passed to a sort or slices function anywhere in fd — the
// collect-then-sort pattern that makes map-range output deterministic.
func sortedInFunc(pass *Pass, fd *ast.FuncDecl, target ast.Expr) bool {
	key := exprString(target)
	if key == "" {
		return false
	}
	sorted := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !sorted
		}
		fn := callee(pass.TypesInfo, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if exprString(arg) == key {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}
