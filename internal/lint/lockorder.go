package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a global lock-acquisition-order graph and reports
// two classes of deadlock risk:
//
//  1. Ordering cycles: an edge A → B is recorded whenever lock B is
//     acquired (directly, or inside a same-package callee per its
//     summary, or per the cross-package baseline table) while A may be
//     held. A cycle in the resulting graph is the classic ABBA
//     deadlock; each strongly connected component is reported once.
//
//  2. Blocking operations under a held lock: channel send/receive/range
//     and select without default, sync.WaitGroup.Wait and time.Sleep
//     are flagged under any tracked lock; file I/O (WriteAt/ReadAt/
//     Sync/...) is flagged only under hot-path locks — the pagestore
//     locks (DurableStore.mu, WAL.mu, FileStore.mu) exist to serialize
//     file I/O, so I/O under them is the documented design (fsyncorder
//     owns their write/sync ordering), while I/O under a bufferpool
//     shard or engine lock stalls every reader behind the disk.
//
// Lock identity is instance-insensitive: every value of a type shares
// one lock class ("shard.mu"), which is what makes the order graph
// global. Held-lock state is a path-sensitive may-analysis over the
// CFG; a deferred Unlock does not release (the lock is held to
// function exit), matching the lock-for-the-body idiom.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc: "lock acquisitions must follow one global order (cycles are " +
		"potential deadlocks) and must not span blocking operations: " +
		"channel ops, WaitGroup.Wait, or file I/O under a hot-path lock",
	Run: runLockOrder,
}

// ioBearingLocks are lock classes whose entire purpose is serializing
// file I/O; holding them across WriteAt/Sync is the design, not a
// finding. Everything else is hot-path: I/O under it is reported.
var ioBearingLocks = map[string]bool{
	"DurableStore.mu": true,
	"FileStore.mu":    true,
	"WAL.mu":          true,
}

// lockAcquiredByRecv declares, for calls whose body is outside the
// package under analysis (the vettool sees one package at a time),
// which lock class any method of the named receiver type may acquire.
// This over-approximates — most methods of these types do lock their
// receiver's mutex — and is what lets an exec-side path record its
// edge into a bufferpool or pagestore lock.
var lockAcquiredByRecv = map[string]string{
	"Pool":         "Pool.mu",
	"FileStore":    "FileStore.mu",
	"WAL":          "WAL.mu",
	"DurableStore": "DurableStore.mu",
	"Injector":     "Injector.mu",
	"Collector":    "Collector.mu",
	"Engine":       "Engine.mu",
}

// lockOrderBaseline declares acquisition edges established inside other
// packages, so a package that builds the reverse edge still closes the
// cycle even though the analysis runs one package at a time. Each row
// mirrors an edge the owning package's own run derives from source.
var lockOrderBaseline = [][2]string{
	{"DurableStore.mu", "WAL.mu"},       // Commit appends to the WAL under mu
	{"DurableStore.mu", "FileStore.mu"}, // Checkpoint writes pages back under mu
	{"shard.mu", "Pool.mu"},             // bufferpool shards admit into the LRU under mu
}

// ioMethods matches file-I/O calls by method name (receiver-agnostic so
// the golden mocks and the BlockFile seam both match).
var ioMethods = map[string]bool{
	"WriteAt":    true,
	"ReadAt":     true,
	"Truncate":   true,
	"Sync":       true,
	"WriteImage": true,
	"ZeroPage":   true,
	"WriteMeta":  true,
	"ReadPage":   true,
}

// lockID names one lock class: "Type.field" for a mutex field
// (instance-insensitive), "pkg:name" for a package-level mutex,
// "local:name" for a function-local one.
func lockID(pass *Pass, recv ast.Expr) string {
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return ""
		}
		if obj.Parent() == pass.Pkg.Scope() {
			return "pkg:" + e.Name
		}
		return "local:" + e.Name
	case *ast.SelectorExpr:
		if sel, ok := pass.TypesInfo.Selections[e]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if tn := namedTypeName(sel.Recv()); tn != "" {
					return tn + "." + v.Name()
				}
				return ""
			}
		}
		// Qualified package-level var (pkg.Mu).
		if v, ok := pass.TypesInfo.ObjectOf(e.Sel).(*types.Var); ok && !v.IsField() {
			return "pkg:" + v.Name()
		}
	case *ast.StarExpr:
		return lockID(pass, e.X)
	}
	return ""
}

// namedTypeName returns the bare name of t's named type, through one
// pointer.
func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// lockSummary is one function's transitive locking behavior.
type lockSummary struct {
	acquires   map[string]bool // lock classes possibly acquired inside
	blocksChan bool            // may block on a channel/WaitGroup/sleep
	blocksIO   bool            // may perform file I/O
}

func (s *lockSummary) equal(o *lockSummary) bool {
	if s.blocksChan != o.blocksChan || s.blocksIO != o.blocksIO || len(s.acquires) != len(o.acquires) {
		return false
	}
	for k := range s.acquires {
		if !o.acquires[k] {
			return false
		}
	}
	return true
}

// lockEdge is one recorded acquisition-order edge with the position
// that witnessed it.
type lockEdge struct {
	from, to string
	pos      token.Pos
	detail   string // human-readable site, e.g. "(*Pool).Get acquires Pool.mu while holding shard.mu"
}

type lockOrderState struct {
	pass      *Pass
	cg        *CallGraph
	summaries map[*FuncInfo]*lockSummary
	// selectOf maps every node inside a select communication clause to
	// its select statement; blocking is reported once per select.
	selectOf   map[ast.Node]*ast.SelectStmt
	hasDefault map[*ast.SelectStmt]bool
	edges      map[[2]string]*lockEdge
	// reported dedupes per-site reports: a node folded again from a
	// later block, or a select with several clauses, reports once.
	reported map[token.Pos]bool
}

func runLockOrder(pass *Pass) error {
	if !inConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	cg := BuildCallGraph(pass)
	st := &lockOrderState{
		pass:       pass,
		cg:         cg,
		summaries:  map[*FuncInfo]*lockSummary{},
		selectOf:   map[ast.Node]*ast.SelectStmt{},
		hasDefault: map[*ast.SelectStmt]bool{},
		edges:      map[[2]string]*lockEdge{},
	}
	for _, fi := range cg.Funcs {
		so, hd := indexSelectComms(fi.Body)
		for k, v := range so {
			st.selectOf[k] = v
		}
		for k, v := range hd {
			st.hasDefault[k] = v
		}
	}

	// Phase 1: transitive summaries, callee-first over the SCC
	// condensation.
	cg.Fixpoint(func(fi *FuncInfo) bool {
		next := st.summarize(fi)
		prev := st.summaries[fi]
		if prev != nil && prev.equal(next) {
			return false
		}
		st.summaries[fi] = next
		return true
	})

	// Phase 2: per-function held-lock dataflow; records order edges and
	// reports blocking ops under held locks.
	for _, fi := range cg.Funcs {
		st.checkFunc(fi)
	}

	// Phase 3: cycle detection over local edges plus the cross-package
	// baseline.
	st.reportCycles()
	return nil
}

// directBlocking classifies one node as a blocking operation when it is
// not part of a select clause (selects are reported at clause level).
// Returns a description or "".
func (st *lockOrderState) directBlocking(n ast.Node) string {
	if sel := st.selectOf[n]; sel != nil {
		return "" // handled when the select statement itself is seen
	}
	switch n := n.(type) {
	case *ast.SendStmt:
		return "channel send"
	case *ast.UnaryExpr:
		if n.Op == token.ARROW {
			return "channel receive"
		}
	case *ast.RangeStmt:
		if t, ok := st.pass.TypesInfo.Types[n.X]; ok {
			if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
				return "range over channel"
			}
		}
	case *ast.SelectStmt:
		if !st.hasDefault[n] {
			return "select without default"
		}
	case *ast.CallExpr:
		if rt, m, _, ok := syncMethod(st.pass.TypesInfo, n); ok && rt == "WaitGroup" && m == "Wait" {
			return "WaitGroup.Wait"
		}
		if fn := callee(st.pass.TypesInfo, n); fn != nil && fn.Pkg() != nil &&
			fn.Pkg().Path() == "time" && fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	}
	return ""
}

// directIO reports whether call is a file-I/O method call, by name.
func (st *lockOrderState) directIO(call *ast.CallExpr) bool {
	fn := callee(st.pass.TypesInfo, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return ioMethods[fn.Name()]
}

// summarize computes fi's summary from its direct effects and its
// callees' current summaries.
func (st *lockOrderState) summarize(fi *FuncInfo) *lockSummary {
	sum := &lockSummary{acquires: map[string]bool{}}
	calls := map[*ast.CallExpr]*CallSite{}
	for _, site := range fi.Sites {
		calls[site.Call] = site
	}
	inspectOwn(fi.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false // spawned work has its own summary
		}
		if desc := st.directBlocking(n); desc != "" {
			sum.blocksChan = true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if rt, m, recv, ok := syncMethod(st.pass.TypesInfo, call); ok {
			if (rt == "Mutex" || rt == "RWMutex") && (m == "Lock" || m == "RLock") {
				if id := lockID(st.pass, recv); id != "" && !strings.HasPrefix(id, "local:") {
					sum.acquires[id] = true
				}
			}
			return true
		}
		if st.directIO(call) {
			sum.blocksIO = true
		}
		site := calls[call]
		if site == nil {
			return true
		}
		if len(site.Targets) > 0 {
			for _, t := range site.Targets {
				if ts := st.summaries[t]; ts != nil {
					for id := range ts.acquires {
						sum.acquires[id] = true
					}
					sum.blocksChan = sum.blocksChan || ts.blocksChan
					sum.blocksIO = sum.blocksIO || ts.blocksIO
				}
			}
		} else if fn := callee(st.pass.TypesInfo, call); fn != nil {
			if id, ok := lockAcquiredByRecv[recvTypeName(fn)]; ok {
				sum.acquires[id] = true
			}
		}
		return true
	})
	return sum
}

// checkFunc runs the held-lock may-analysis over one body, recording
// order edges and reporting blocking ops under held locks.
func (st *lockOrderState) checkFunc(fi *FuncInfo) {
	// Enumerate the lock classes this function acquires directly.
	bits := map[string]int{}
	inspectOwn(fi.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if rt, m, recv, ok := syncMethod(st.pass.TypesInfo, call); ok &&
			(rt == "Mutex" || rt == "RWMutex") && (m == "Lock" || m == "RLock") {
			if id := lockID(st.pass, recv); id != "" {
				if _, seen := bits[id]; !seen {
					bits[id] = len(bits)
				}
			}
		}
		return true
	})

	names := make([]string, len(bits))
	for id, i := range bits {
		names[i] = id
	}
	calls := map[*ast.CallExpr]*CallSite{}
	for _, site := range fi.Sites {
		calls[site.Call] = site
	}

	cfg := BuildCFG(fi.Body)
	apply := func(n ast.Node, held BitSet, report bool) {
		heldIDs := func() []string {
			var out []string
			for id, i := range bits {
				if held.Has(i) {
					out = append(out, id)
				}
			}
			sort.Strings(out)
			return out
		}
		inspectOwn(n, func(m ast.Node) bool {
			switch s := m.(type) {
			case *ast.GoStmt:
				return false // runs concurrently, without our locks
			case *ast.DeferStmt:
				// A deferred Unlock releases at exit, not here; a
				// deferred anything-else has no effect on held state
				// mid-body either. Skip the whole statement.
				return false
			case *ast.SelectStmt:
				if report && !st.hasDefault[s] {
					st.reportBlocking(fi, s.Pos(), "select without default", heldIDs())
				}
				return true
			}
			// The CFG splits a select into per-clause blocks, so the
			// communication ops surface here as plain send/recv nodes;
			// report them as their select, once, at the select's pos.
			if sel := st.selectOf[m]; sel != nil {
				if report && !st.hasDefault[sel] {
					st.reportBlocking(fi, sel.Pos(), "select without default", heldIDs())
				}
				return true
			}
			if desc := st.directBlocking(m); desc != "" {
				if _, isSel := m.(*ast.SelectStmt); !isSel && report {
					st.reportBlocking(fi, m.Pos(), desc, heldIDs())
				}
			}
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			if rt, meth, recv, ok := syncMethod(st.pass.TypesInfo, call); ok {
				if rt != "Mutex" && rt != "RWMutex" {
					return true
				}
				id := lockID(st.pass, recv)
				if id == "" {
					return true
				}
				switch meth {
				case "Lock", "RLock":
					if report {
						for _, h := range heldIDs() {
							st.addEdge(h, id, call.Pos(), fmt.Sprintf(
								"%s acquires %s while holding %s", fi.Name, id, h))
						}
					}
					if i, ok := bits[id]; ok {
						held.Set(i)
					}
				case "Unlock", "RUnlock":
					if i, ok := bits[id]; ok {
						held.Clear(i)
					}
				}
				return true
			}
			if report && st.directIO(call) {
				st.reportIO(fi, call, heldIDs())
			}
			site := calls[call]
			if site == nil || !report {
				return true
			}
			if len(site.Targets) > 0 {
				for _, t := range site.Targets {
					ts := st.summaries[t]
					if ts == nil {
						continue
					}
					for id := range ts.acquires {
						for _, h := range heldIDs() {
							st.addEdge(h, id, call.Pos(), fmt.Sprintf(
								"%s calls %s (acquires %s) while holding %s", fi.Name, t.Name, id, h))
						}
					}
					if ts.blocksChan {
						st.reportBlocking(fi, call.Pos(),
							"call to "+t.Name+" (may block on a channel or WaitGroup)", heldIDs())
					}
					if ts.blocksIO {
						st.reportIO(fi, call, heldIDs())
					}
				}
			} else if fn := callee(st.pass.TypesInfo, call); fn != nil {
				if id, ok := lockAcquiredByRecv[recvTypeName(fn)]; ok {
					for _, h := range heldIDs() {
						st.addEdge(h, id, call.Pos(), fmt.Sprintf(
							"%s calls (%s).%s (may acquire %s) while holding %s",
							fi.Name, recvTypeName(fn), fn.Name(), id, h))
					}
				}
			}
			return true
		})
	}

	transfer := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			apply(n, out, false)
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: len(bits), Must: false, Transfer: transfer})

	// Reporting walk from the fixpoint in-states.
	st.reported = map[token.Pos]bool{}
	for i, b := range cfg.Blocks {
		held := ins[i].Clone()
		for _, n := range b.Nodes {
			apply(n, held, true)
		}
	}
}

func (st *lockOrderState) reportBlocking(fi *FuncInfo, pos token.Pos, desc string, held []string) {
	if len(held) == 0 || st.reported[pos] {
		return
	}
	st.reported[pos] = true
	st.pass.Reportf(pos,
		"%s: %s while holding %s: a blocked holder stalls every other acquirer "+
			"(release the lock before blocking, or restructure with a buffered handoff)",
		fi.Name, desc, strings.Join(held, ", "))
}

func (st *lockOrderState) reportIO(fi *FuncInfo, call *ast.CallExpr, held []string) {
	var hot []string
	for _, h := range held {
		if !ioBearingLocks[h] {
			hot = append(hot, h)
		}
	}
	if len(hot) == 0 || st.reported[call.Pos()] {
		return
	}
	st.reported[call.Pos()] = true
	name := "file I/O"
	if fn := callee(st.pass.TypesInfo, call); fn != nil {
		name = fn.Name()
	}
	st.pass.Reportf(call.Pos(),
		"%s: file I/O (%s) while holding hot-path lock %s: disk latency under this "+
			"lock stalls the fast path; move the I/O outside the critical section",
		fi.Name, name, strings.Join(hot, ", "))
}

func (st *lockOrderState) addEdge(from, to string, pos token.Pos, detail string) {
	// Function-local locks share nothing across functions, so a
	// cross-edge through one would conflate unrelated mutexes that
	// happen to share a variable name; only their self-loops (a genuine
	// re-acquisition) enter the graph.
	if from != to && (strings.HasPrefix(from, "local:") || strings.HasPrefix(to, "local:")) {
		return
	}
	k := [2]string{from, to}
	if e, ok := st.edges[k]; ok {
		if pos < e.pos {
			e.pos, e.detail = pos, detail
		}
		return
	}
	st.edges[k] = &lockEdge{from: from, to: to, pos: pos, detail: detail}
}

// reportCycles runs Tarjan over the union of local edges and the
// declared baseline, reporting each non-trivial strongly connected
// component (or self-loop) exactly once, anchored at the earliest
// locally recorded edge in the component.
func (st *lockOrderState) reportCycles() {
	adj := map[string]map[string]bool{}
	add := func(a, b string) {
		if adj[a] == nil {
			adj[a] = map[string]bool{}
		}
		adj[a][b] = true
	}
	for _, e := range st.edges {
		add(e.from, e.to)
	}
	for _, e := range lockOrderBaseline {
		add(e[0], e[1])
	}

	var nodes []string
	seen := map[string]bool{}
	for _, e := range st.edges {
		for _, n := range []string{e.from, e.to} {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	for _, e := range lockOrderBaseline {
		for _, n := range e {
			if !seen[n] {
				seen[n] = true
				nodes = append(nodes, n)
			}
		}
	}
	sort.Strings(nodes)

	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v], low[v] = next, next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var succs []string
		for w := range adj[v] {
			succs = append(succs, w)
		}
		sort.Strings(succs)
		for _, w := range succs {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				low[v] = min(low[v], low[w])
			} else if onStack[w] {
				low[v] = min(low[v], index[w])
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, ok := index[n]; !ok {
			strongconnect(n)
		}
	}

	for _, scc := range sccs {
		selfLoop := len(scc) == 1 && adj[scc[0]][scc[0]]
		if len(scc) < 2 && !selfLoop {
			continue
		}
		// Anchor at the earliest local edge inside the component; a
		// component with no local edge would mean the baseline table
		// itself is cyclic, which edge review forbids.
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		var anchor *lockEdge
		var details []string
		var es []*lockEdge
		for _, e := range st.edges {
			if inSCC[e.from] && inSCC[e.to] {
				es = append(es, e)
			}
		}
		sort.Slice(es, func(i, j int) bool { return es[i].pos < es[j].pos })
		for _, e := range es {
			if anchor == nil {
				anchor = e
			}
			details = append(details, e.detail)
		}
		if anchor == nil {
			continue
		}
		sort.Strings(scc)
		if selfLoop {
			st.pass.Reportf(anchor.pos,
				"lock-order cycle (potential self-deadlock): %s is reacquired while "+
					"already held (%s); Mutex is not reentrant and a second RLock can "+
					"deadlock behind a waiting writer",
				scc[0], strings.Join(details, "; "))
			continue
		}
		st.pass.Reportf(anchor.pos,
			"lock-order cycle (potential deadlock) among {%s}: %s; acquire these "+
				"locks in one global order on every path",
			strings.Join(scc, ", "), strings.Join(details, "; "))
	}
}
