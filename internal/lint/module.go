package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadModule parses and type-checks every package under root (a module
// root directory whose module path is modPath) and returns them in
// import-path order, ready for RunAnalyzers/Audit. It is the loader
// behind cmd/simquerylint's standalone modes: SARIF output and the
// suppression audit need the whole repo in one process, which the
// per-unit vettool protocol cannot provide.
//
// Intra-module imports resolve from source, recursively; the standard
// library resolves through the go/importer source compiler (offline,
// no export data needed). In-package _test.go files are included in
// the returned analysis packages — suppressions live there too — but
// excluded from packages loaded as dependencies. External-test
// packages (package foo_test) are returned as their own analysis
// packages under "<path>_test": the audit must see every //lint:allow
// directive, wherever it lives.
//
// Directories named testdata, .git, or starting with "." or "_" are
// skipped, as are directories with no buildable .go files.
func LoadModule(root, modPath string) ([]*Package, error) {
	ld := &moduleLoader{
		root:    root,
		modPath: modPath,
		fset:    token.NewFileSet(),
		deps:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(path, true)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	var pkgs []*Package
	for _, dir := range dirs {
		importPath, err := ld.importPathOf(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := ld.loadDir(dir, importPath, true)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
		xtest, err := ld.loadExternalTests(dir, importPath)
		if err != nil {
			return nil, err
		}
		if xtest != nil {
			pkgs = append(pkgs, xtest)
		}
	}
	return pkgs, nil
}

type moduleLoader struct {
	root    string
	modPath string
	fset    *token.FileSet
	std     types.Importer
	deps    map[string]*types.Package // memoized no-test dependency loads
	loading map[string]bool           // cycle guard
}

func (ld *moduleLoader) importPathOf(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

func (ld *moduleLoader) dirOf(importPath string) string {
	if importPath == ld.modPath {
		return ld.root
	}
	rel := strings.TrimPrefix(importPath, ld.modPath+"/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// Import implements types.Importer for the checker's dependency
// resolution: module-local paths load from source here, everything else
// (the standard library) delegates.
func (ld *moduleLoader) Import(path string) (*types.Package, error) {
	if path != ld.modPath && !strings.HasPrefix(path, ld.modPath+"/") {
		return ld.std.Import(path)
	}
	if pkg, ok := ld.deps[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)
	p, err := ld.loadDir(ld.dirOf(path), path, false)
	if err != nil {
		return nil, err
	}
	ld.deps[path] = p.Pkg
	return p.Pkg, nil
}

// loadDir parses and checks one directory as one package.
func (ld *moduleLoader) loadDir(dir, importPath string, withTests bool) (*Package, error) {
	names, err := goFilesIn(dir, withTests)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		// The first non-test file names the package; in-package test
		// files share it, external-test files (package foo_test) are
		// dropped.
		if pkgName == "" && !strings.HasSuffix(name, "_test.go") {
			pkgName = f.Name.Name
		}
		files = append(files, f)
	}
	kept := files[:0]
	for _, f := range files {
		if pkgName == "" || f.Name.Name == pkgName {
			kept = append(kept, f)
		}
	}
	files = kept

	info := newTypesInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(importPath, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	return &Package{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// loadExternalTests checks dir's external-test files (package
// foo_test), if any, as one package under importPath+"_test".
func (ld *moduleLoader) loadExternalTests(dir, importPath string) (*Package, error) {
	names, err := goFilesIn(dir, true)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, name := range names {
		if !strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	info := newTypesInfo()
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(importPath+"_test", ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s_test: %w", importPath, err)
	}
	return &Package{Fset: ld.fset, Files: files, Pkg: pkg, Info: info}, nil
}

// goFilesIn lists the buildable .go files directly under dir, sorted;
// withTests=false drops _test.go files. Build constraints (//go:build
// lines and GOOS/GOARCH file suffixes) are honored for the host
// platform via go/build, so paired real/stub implementations don't
// collide.
func goFilesIn(dir string, withTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !withTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		if ok, err := build.Default.MatchFile(dir, n); err != nil || !ok {
			continue
		}
		names = append(names, filepath.Join(dir, n))
	}
	sort.Strings(names)
	return names, nil
}
