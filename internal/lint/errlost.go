package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrLost verifies that errors from the storage and fault-injection
// layers — internal/pagestore, internal/fault — are consumed: checked,
// returned, or explicitly discarded with an annotated
// `//lint:allow errlost <reason>`. These are exactly the errors the
// chaos harness injects; a retry loop that drops one turns an injected
// fault into silent corruption.
//
// Three rules:
//
//  1. statement-dropped: a tracked call used as a bare statement (or
//     behind go/defer) discards its error result.
//  2. blank-dropped: `_` in the error slot of a tracked call's results.
//  3. dead store (path-sensitive): an error variable assigned from a
//     tracked call must be read on every subsequent path before being
//     overwritten or falling out of the function.
//
// Test files are skipped: tests legitimately drop cleanup errors.
var ErrLost = &Analyzer{
	Name: "errlost",
	Doc: "errors from pagestore/fault/WAL I/O must be checked, returned, " +
		"or discarded with //lint:allow errlost <reason>; a dropped error " +
		"turns an injected fault into silent corruption",
	Run: runErrLost,
}

// errLostCalleePkgs are the packages whose error results are tracked.
var errLostCalleePkgs = map[string]bool{
	"repro/internal/pagestore": true,
	"repro/internal/fault":     true,
}

// isTrackedErrCall reports whether call's callee lives in a tracked
// package (or, under golden tests, in the testdata package itself) and
// its last result is an error.
func isTrackedErrCall(pass *Pass, call *ast.CallExpr) bool {
	fn := callee(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	pkgPath := normalizePkgPath(fn.Pkg().Path())
	if !errLostCalleePkgs[pkgPath] && !strings.HasPrefix(pkgPath, pass.Analyzer.Name) {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return isErrorType(last)
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

func runErrLost(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkErrLost(pass, declName(decl, lit), body)
		})
	}
	return nil
}

// errSite is one assignment of a tracked error into a variable; the
// dead-store rule owns one may-bit per site ("assigned, not yet read").
type errSite struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	obj    types.Object
	name   string
}

func checkErrLost(pass *Pass, fname string, body *ast.BlockStmt) {
	var sites []errSite

	// Rules 1 and 2 are statement-local; collect rule-3 sites on the
	// same walk. Nested literals are their own functions.
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && isTrackedErrCall(pass, call) {
				reportDropped(pass, fname, call, "")
			}
		case *ast.DeferStmt:
			if isTrackedErrCall(pass, n.Call) {
				reportDropped(pass, fname, n.Call, "deferred ")
			}
		case *ast.GoStmt:
			if isTrackedErrCall(pass, n.Call) {
				reportDropped(pass, fname, n.Call, "go-routine ")
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
			if !ok || !isTrackedErrCall(pass, call) {
				return true
			}
			errIdx := len(n.Lhs) - 1
			id, ok := n.Lhs[errIdx].(*ast.Ident)
			if !ok {
				return true // stored through a selector/index: consumed
			}
			if id.Name == "_" {
				pass.Reportf(id.Pos(),
					"%s discards the error from %s with _: check it, return it, or "+
						"annotate the discard with //lint:allow errlost <reason>",
					fname, callLabel(pass, call))
				return true
			}
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil && isErrorType(obj.Type()) {
				sites = append(sites, errSite{assign: n, call: call, obj: obj, name: id.Name})
			}
		}
		return true
	})

	if len(sites) == 0 {
		return
	}
	checkErrDeadStores(pass, fname, body, sites)
}

func reportDropped(pass *Pass, fname string, call *ast.CallExpr, kind string) {
	pass.Reportf(call.Pos(),
		"%s drops the error result of %s%s: check it, return it, or annotate "+
			"the discard with //lint:allow errlost <reason>",
		fname, kind, callLabel(pass, call))
}

// callLabel renders "pkg-or-recv.Method" for diagnostics.
func callLabel(pass *Pass, call *ast.CallExpr) string {
	fn := callee(pass.TypesInfo, call)
	if fn == nil {
		return "call"
	}
	if recv := recvTypeName(fn); recv != "" {
		return recv + "." + fn.Name()
	}
	return fn.Name()
}

// checkErrDeadStores runs the rule-3 may-analysis: bit i = "site i's
// error is assigned and not yet read". Gen at the assignment (after
// clearing the variable's other sites — and reporting an overwrite if
// one is still live), kill at any read of the variable. A bare return
// in a function with named results reads them all.
func checkErrDeadStores(pass *Pass, fname string, body *ast.BlockStmt, sites []errSite) {
	cfg := BuildCFG(body)
	nb := len(sites)

	// apply folds one node's effects; onOverwrite/onReturn are only
	// armed during the report walk.
	apply := func(n ast.Node, state BitSet, onOverwrite func(site int, prev int)) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				// A closure capturing the variable may read it later:
				// conservative kill for any site whose obj is used inside.
				ast.Inspect(m.Body, func(k ast.Node) bool {
					if id, ok := k.(*ast.Ident); ok {
						for i, s := range sites {
							if pass.TypesInfo.ObjectOf(id) == s.obj {
								state.Clear(i)
							}
						}
					}
					return true
				})
				return false
			case *ast.AssignStmt:
				// Is this one of the tracked gen sites?
				for i, s := range sites {
					if s.assign != m {
						continue
					}
					// RHS call arguments may read other error vars:
					// handled by the generic ident walk below on the RHS
					// subtree, which Inspect reaches before Lhs? It does
					// not — walk RHS explicitly first.
					for _, rhs := range m.Rhs {
						killReads(pass, rhs, sites, state)
					}
					for j, o := range sites {
						if o.obj == s.obj && state.Has(j) {
							if onOverwrite != nil {
								onOverwrite(i, j)
							}
							state.Clear(j)
						}
					}
					state.Set(i)
					return false // children handled
				}
				return true
			case *ast.Ident:
				obj := pass.TypesInfo.ObjectOf(m)
				for i, s := range sites {
					if s.obj == obj && m != s.assign.Lhs[len(s.assign.Lhs)-1] {
						state.Clear(i)
					}
				}
			case *ast.ReturnStmt:
				if len(m.Results) == 0 {
					// Named results: everything is returned.
					for i := range sites {
						state.Clear(i)
					}
				}
			}
			return true
		})
	}

	transfer := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			apply(n, out, nil)
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: nb, Must: false, Transfer: transfer})

	// Report overwrites from the fixpoint states.
	reportedOverwrite := map[int]bool{}
	for i, b := range cfg.Blocks {
		state := ins[i].Clone()
		for _, n := range b.Nodes {
			apply(n, state, func(site, prev int) {
				if !reportedOverwrite[site] {
					reportedOverwrite[site] = true
					pass.Reportf(sites[site].assign.Pos(),
						"%s overwrites %q while a previous error from %s is still "+
							"unchecked on some path",
						fname, sites[site].name, callLabel(pass, sites[prev].call))
				}
			})
		}
	}

	// Report sites whose error can fall out of the function unread.
	atExit := ins[cfg.Exit]
	for i, s := range sites {
		if atExit.Has(i) {
			pass.Reportf(s.assign.Pos(),
				"%s assigns the error from %s to %q but a path returns without "+
					"reading it: check it, return it, or annotate with "+
					"//lint:allow errlost <reason>",
				fname, callLabel(pass, s.call), s.name)
		}
	}
}

// killReads clears the bit of any site whose variable is read in expr.
func killReads(pass *Pass, expr ast.Node, sites []errSite, state BitSet) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			obj := pass.TypesInfo.ObjectOf(id)
			for i, s := range sites {
				if s.obj == obj {
					state.Clear(i)
				}
			}
		}
		return true
	})
}
