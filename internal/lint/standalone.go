package lint

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Standalone is the whole-module driver behind cmd/simquerylint when it
// is invoked directly rather than as a `go vet -vettool`. It loads
// every package under -source from source (LoadModule), runs the full
// analyzer suite, and renders the findings as plain text, GitHub
// workflow annotations (-github), and/or a SARIF 2.1.0 artifact
// (-sarif). With -audit it additionally reports stale //lint:allow
// suppressions. The exit code is 1 when anything is found, 2 on driver
// errors.
func Standalone(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("simquerylint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		source = fs.String("source", ".", "module root directory to analyze")
		mod    = fs.String("module", "repro", "module import path of -source")
		sarif  = fs.String("sarif", "", "write a SARIF 2.1.0 report to this file")
		audit  = fs.Bool("audit", false, "also report stale //lint:allow suppressions")
		github = fs.Bool("github", false, "emit GitHub Actions ::error/::warning annotations")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: simquerylint [flags]            (standalone: analyze a module from source)\n")
		fmt.Fprintf(stderr, "       go vet -vettool=simquerylint ./...  (unitchecker protocol)\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := All()
	pkgs, err := LoadModule(*source, *mod)
	if err != nil {
		fmt.Fprintf(stderr, "simquerylint: %v\n", err)
		return 2
	}

	var findings []Finding
	for _, pkg := range pkgs {
		var diags []Diagnostic
		if *audit {
			diags, err = Audit(pkg, analyzers)
		} else {
			diags, err = RunAnalyzers(pkg, analyzers)
		}
		if err != nil {
			fmt.Fprintf(stderr, "simquerylint: %s: %v\n", pkg.Pkg.Path(), err)
			return 2
		}
		for _, d := range diags {
			findings = append(findings, Finding{
				Position: pkg.Fset.Position(d.Pos),
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
	}

	sortFindings(findings)

	for _, f := range findings {
		fmt.Fprintf(stdout, "%s: [%s] %s\n", f.Position, f.Analyzer, f.Message)
		if *github {
			level := "error"
			if sarifLevel(f.Analyzer) == "warning" {
				level = "warning"
			}
			// ::error file=...,line=...,col=...::message — GitHub
			// renders these as inline PR annotations.
			fmt.Fprintf(stdout, "::%s file=%s,line=%d,col=%d::[%s] %s\n",
				level, f.Position.Filename, f.Position.Line, f.Position.Column,
				f.Analyzer, githubEscape(f.Message))
		}
	}

	if *sarif != "" {
		out, err := os.Create(*sarif)
		if err != nil {
			fmt.Fprintf(stderr, "simquerylint: %v\n", err)
			return 2
		}
		werr := WriteSARIF(out, *source, analyzers, findings)
		if cerr := out.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "simquerylint: writing %s: %v\n", *sarif, werr)
			return 2
		}
	}

	if len(findings) > 0 {
		fmt.Fprintf(stderr, "simquerylint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// sortFindings orders module-wide findings by file, line, column,
// analyzer, then message. Within one package diagnostics are already
// position-sorted, but token.Pos values are FileSet-relative, so the
// concatenation across packages follows load order; sorting on the
// resolved positions makes the text, -github and SARIF outputs stable
// run to run and diffable across runs.
func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// githubEscape encodes the characters the workflow-command parser
// treats specially in the message payload.
func githubEscape(s string) string {
	r := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	return r.Replace(s)
}
