package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// ChanClose tracks a may-closed lattice per channel value and reports
// send-after-possible-close and double-close, across same-package
// helper calls:
//
//   - Within a function, a path-sensitive may-analysis marks a channel
//     possibly closed after `close(ch)`; a later send or close on a
//     path where the fact may hold is reported. The analysis is
//     per-path, so the guarded idiom (`if e.isClosed { return }` before
//     the close) stays clean.
//   - A call to a same-package function whose summary says it may close
//     a channel field marks that field possibly closed in the caller,
//     so a double close split across a helper is still caught.
//     Summaries are computed callee-first over the call-graph SCCs.
//
// Identity is the direct root: a local variable or a selector field.
// Element channels (close(q) for q ranging over e.queues) are excluded
// from tracking — element identity can't be told apart statically, and
// conflating them would flag the per-element shutdown loop in
// Engine.Close as a double close.
var ChanClose = &Analyzer{
	Name: "chanclose",
	Doc: "a channel that may already be closed must not be closed again " +
		"(panic) or sent on (panic); tracked path-sensitively and across " +
		"same-package helper calls",
	Run: runChanClose,
}

// chanRoot resolves a channel expression to a trackable identity: a
// non-aliased local/package variable or a field object. Indexed
// elements and aliased range variables return nil.
func chanRoot(pass *Pass, aliased map[types.Object]bool, e ast.Expr) types.Object {
	obj, indexed := rootSelObj(pass.TypesInfo, e)
	if obj == nil || indexed || aliased[obj] {
		return nil
	}
	return obj
}

func runChanClose(pass *Pass) error {
	if !inConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	cg := BuildCallGraph(pass)

	// aliased marks variables bound to channel *elements* (range values,
	// indexed assignments): closes through them are per-element and are
	// not tracked.
	aliased := map[types.Object]bool{}
	for _, fi := range cg.Funcs {
		inspectOwn(fi.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
					if obj := pass.TypesInfo.ObjectOf(v); obj != nil {
						aliased[obj] = true
					}
				}
			case *ast.AssignStmt:
				for i := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if _, idx := ast.Unparen(n.Rhs[i]).(*ast.IndexExpr); idx {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
								aliased[obj] = true
							}
						}
					}
				}
			}
			return true
		})
	}

	// Phase 1: summaries — the set of channel *fields* each function may
	// close, directly or through same-package callees.
	closes := map[*FuncInfo]map[types.Object]bool{}
	cg.Fixpoint(func(fi *FuncInfo) bool {
		next := map[types.Object]bool{}
		calls := map[*ast.CallExpr]*CallSite{}
		for _, site := range fi.Sites {
			calls[site.Call] = site
		}
		inspectOwn(fi.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj := closeTarget(pass, aliased, call); obj != nil {
				if v, isVar := obj.(*types.Var); isVar && v.IsField() {
					next[obj] = true
				}
				return true
			}
			if site := calls[call]; site != nil {
				for _, t := range site.Targets {
					for obj := range closes[t] {
						next[obj] = true
					}
				}
			}
			return true
		})
		prev := closes[fi]
		if len(prev) == len(next) {
			same := true
			for k := range next {
				if !prev[k] {
					same = false
					break
				}
			}
			if same {
				return false
			}
		}
		closes[fi] = next
		return true
	})

	// Phase 2: per-function path-sensitive check.
	for _, fi := range cg.Funcs {
		checkChanClose(pass, fi, aliased, closes)
	}
	return nil
}

// closeTarget returns the trackable identity a `close(...)` call
// targets, or nil.
func closeTarget(pass *Pass, aliased map[types.Object]bool, call *ast.CallExpr) types.Object {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return chanRoot(pass, aliased, call.Args[0])
}

func checkChanClose(pass *Pass, fi *FuncInfo, aliased map[types.Object]bool,
	closes map[*FuncInfo]map[types.Object]bool) {

	// Track every identity this body closes or sends on.
	bits := map[types.Object]int{}
	track := func(obj types.Object) {
		if obj == nil {
			return
		}
		if _, seen := bits[obj]; !seen {
			bits[obj] = len(bits)
		}
	}
	inspectOwn(fi.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			track(closeTarget(pass, aliased, n))
		case *ast.SendStmt:
			track(chanRoot(pass, aliased, n.Chan))
		}
		return true
	})
	if len(bits) == 0 {
		return
	}
	calls := map[*ast.CallExpr]*CallSite{}
	for _, site := range fi.Sites {
		calls[site.Call] = site
	}

	cfg := BuildCFG(fi.Body)
	apply := func(n ast.Node, state BitSet, report func(pos token.Pos, obj types.Object, kind string)) {
		inspectOwn(n, func(m ast.Node) bool {
			if _, ok := m.(*ast.GoStmt); ok {
				return false // the spawned body is its own function
			}
			switch m := m.(type) {
			case *ast.CallExpr:
				if obj := closeTarget(pass, aliased, m); obj != nil {
					i := bits[obj]
					if state.Has(i) && report != nil {
						report(m.Pos(), obj, "close")
					}
					state.Set(i)
					return true
				}
				if site := calls[m]; site != nil {
					for _, t := range site.Targets {
						for obj := range closes[t] {
							if i, ok := bits[obj]; ok {
								state.Set(i)
							}
						}
					}
				}
			case *ast.SendStmt:
				if obj := chanRoot(pass, aliased, m.Chan); obj != nil {
					if state.Has(bits[obj]) && report != nil {
						report(m.Pos(), obj, "send")
					}
				}
			}
			return true
		})
	}
	transfer := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			apply(n, out, nil)
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: len(bits), Must: false, Transfer: transfer})

	reported := map[token.Pos]bool{}
	var findings []struct {
		pos  token.Pos
		obj  types.Object
		kind string
	}
	for i, b := range cfg.Blocks {
		state := ins[i].Clone()
		for _, n := range b.Nodes {
			apply(n, state, func(pos token.Pos, obj types.Object, kind string) {
				if reported[pos] {
					return
				}
				reported[pos] = true
				findings = append(findings, struct {
					pos  token.Pos
					obj  types.Object
					kind string
				}{pos, obj, kind})
			})
		}
	}
	sort.Slice(findings, func(i, j int) bool { return findings[i].pos < findings[j].pos })
	for _, f := range findings {
		switch f.kind {
		case "close":
			pass.Reportf(f.pos,
				"%s: close of %q, which may already be closed on this path "+
					"(double close panics); guard the close or make one owner "+
					"responsible for shutdown",
				fi.Name, f.obj.Name())
		case "send":
			pass.Reportf(f.pos,
				"%s: send on %q, which may already be closed on this path "+
					"(send on closed channel panics); senders must be quiesced "+
					"before close",
				fi.Name, f.obj.Name())
		}
	}
}
