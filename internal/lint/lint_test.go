package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGolden runs each analyzer over its testdata package and matches
// the diagnostics against `// want "regexp"` comments, analysistest
// style: every want must be hit by a diagnostic on its line, and every
// diagnostic must be expected by a want.
func TestGolden(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			pkg, err := LoadDir(dir, a.Name)
			if err != nil {
				t.Fatalf("loading %s: %v", dir, err)
			}
			diags, err := RunAnalyzers(pkg, []*Analyzer{a})
			if err != nil {
				t.Fatalf("running %s: %v", a.Name, err)
			}
			checkWants(t, pkg, diags)
		})
	}
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

type wantKey struct {
	file string
	line int
}

func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[wantKey][]*regexp.Regexp{}
	total := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					p := pkg.Fset.Position(c.Pos())
					k := wantKey{p.Filename, p.Line}
					wants[k] = append(wants[k], re)
					total++
				}
			}
		}
	}
	matched := map[*regexp.Regexp]bool{}
	for _, d := range diags {
		p := pkg.Fset.Position(d.Pos)
		k := wantKey{p.Filename, p.Line}
		ok := false
		for _, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched[re] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", p.Filename, p.Line, d.Analyzer, d.Message)
		}
	}
	if len(matched) != total {
		for k, res := range wants {
			for _, re := range res {
				if !matched[re] {
					t.Errorf("missing diagnostic at %s:%d matching %q", k.file, k.line, re)
				}
			}
		}
	}
}

// TestSuppressionRequiresReason verifies a //lint:allow directive
// without a reason is itself reported and does not suppress.
func TestSuppressionRequiresReason(t *testing.T) {
	pkg := parseOnly(t, "p.go", `package p

type T struct{ A int }

func Snapshot() T {
	//lint:allow statscomplete
	return T{}
}
`)
	diags, err := RunAnalyzers(pkg, []*Analyzer{StatsComplete})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "lint":
			sawMalformed = strings.Contains(d.Message, "malformed")
		case "statscomplete":
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("reason-less //lint:allow not reported as malformed; got %v", diags)
	}
	if !sawFinding {
		t.Errorf("reason-less //lint:allow suppressed the finding; got %v", diags)
	}
}

// TestSuppressionSameAndPreviousLine pins the two placements a
// directive may take: trailing on the flagged line or alone on the
// line above.
func TestSuppressionSameAndPreviousLine(t *testing.T) {
	pkg := parseOnly(t, "p.go", `package p

type T struct{ A int }

func Snapshot() T {
	return T{} //lint:allow statscomplete literal is filled by the caller
}

func Stats() T {
	//lint:allow statscomplete second helper, same contract
	return T{}
}
`)
	diags, err := RunAnalyzers(pkg, []*Analyzer{StatsComplete})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("expected full suppression, got %v", diags)
	}
}

// TestSelfCheck runs the whole suite over a real dependency-free repo
// package (geom is both a determinism-scope package and the home of the
// approved Equal helpers) and requires it to be clean — the same gate
// `make analyze` enforces via go vet.
func TestSelfCheck(t *testing.T) {
	pkg, err := LoadDir(filepath.Join("..", "geom"), "repro/internal/geom")
	if err != nil {
		t.Fatalf("loading internal/geom: %v", err)
	}
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("internal/geom: %s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}

// parseOnly type-checks an inline single-file package for framework
// tests.
func parseOnly(t *testing.T, name, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, "p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}
