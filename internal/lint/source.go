package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadDir parses and type-checks every .go file directly under dir as
// one package with the given import path, resolving imports from source
// (the go/importer "source" compiler walks GOROOT/src, so it works
// offline and without export data). It is the loader for the golden
// tests under testdata/src and for ad-hoc single-package runs; the
// vettool path (vettool.go) instead consumes the export data cmd/go
// hands it. Test packages loaded this way may only import the standard
// library.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no .go files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", dir, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
}
