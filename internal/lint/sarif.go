package lint

import (
	"encoding/json"
	"go/token"
	"io"
	"path/filepath"
	"sort"
)

// SARIF 2.1.0 output — the minimal subset GitHub code scanning ingests:
// one run, one rule per analyzer, one result per diagnostic with a
// physical location relative to the repository root.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
	FullDescription  sarifMessage `json:"fullDescription,omitempty"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId,omitempty"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// Finding is one resolved diagnostic with its file position, the unit
// the standalone drivers and SARIF writer exchange.
type Finding struct {
	Position token.Position
	Analyzer string
	Message  string
}

// sarifLevel maps analyzers to SARIF severity: protocol violations and
// real findings are errors; stale suppressions (the audit
// pseudo-analyzer) are warnings — they block the nightly audit job, not
// correctness.
func sarifLevel(analyzer string) string {
	if analyzer == "audit" {
		return "warning"
	}
	return "error"
}

// WriteSARIF renders findings as a SARIF 2.1.0 log. File paths are
// rewritten relative to root so the artifact is machine-portable (URIs
// in SARIF are relative to %SRCROOT%, which CI binds to the checkout).
func WriteSARIF(w io.Writer, root string, analyzers []*Analyzer, findings []Finding) error {
	rules := make([]sarifRule, 0, len(analyzers)+2)
	seen := map[string]bool{}
	addRule := func(id, doc string) {
		if !seen[id] {
			seen[id] = true
			rules = append(rules, sarifRule{
				ID:               id,
				ShortDescription: sarifMessage{Text: id},
				FullDescription:  sarifMessage{Text: doc},
			})
		}
	}
	for _, a := range analyzers {
		addRule(a.Name, a.Doc)
	}
	addRule("lint", "malformed //lint:allow directive")
	addRule("audit", "stale //lint:allow suppression: it no longer suppresses any finding")
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		uri := f.Position.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, uri); err == nil && !filepath.IsAbs(rel) && rel != ".." && !hasDotDotPrefix(rel) {
				uri = rel
			}
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   sarifLevel(f.Analyzer),
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       filepath.ToSlash(uri),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   f.Position.Line,
						StartColumn: f.Position.Column,
					},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool: sarifTool{Driver: sarifDriver{
				Name:  "simquerylint",
				Rules: rules,
			}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator)
}
