package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// parseAs type-checks an inline single-file package under the given
// import path, so path-scoped analyzers (inConcurrencyScope) see the
// fixture as in scope.
func parseAs(t *testing.T, importPath, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "a.go"), []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(dir, importPath)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// testPass wraps a loaded package in a Pass for direct framework calls.
func testPass(pkg *Package) *Pass {
	var diags []Diagnostic
	return &Pass{
		Analyzer:  &Analyzer{Name: "test"},
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Pkg,
		TypesInfo: pkg.Info,
		diags:     &diags,
	}
}

// funcByName finds the call-graph node for a declared function (methods
// included; declName drops the receiver, so names must be unique in the
// fixture).
func funcByName(t *testing.T, cg *CallGraph, name string) *FuncInfo {
	t.Helper()
	var found *FuncInfo
	for _, fi := range cg.Funcs {
		if fi.Lit == nil && fi.Name == name {
			if found != nil {
				t.Fatalf("ambiguous function name %q", name)
			}
			found = fi
		}
	}
	if found == nil {
		t.Fatalf("function %q not in call graph", name)
	}
	return found
}

// TestCallGraphSCCSummaries drives Fixpoint over a package with a
// recursive cycle and checks that a transitive "may send on a channel"
// summary propagates callee-first: through a plain call chain, around a
// mutual-recursion SCC, and not into functions with no path to a send.
func TestCallGraphSCCSummaries(t *testing.T) {
	pkg := parseAs(t, "p", `package p

func leaf(ch chan int) { ch <- 1 }

func mid(ch chan int) { leaf(ch) }

func recA(ch chan int, n int) {
	if n > 0 {
		recB(ch, n-1)
	}
}

func recB(ch chan int, n int) {
	recA(ch, n)
}

func pure(x int) int { return x + 1 }

func callsPure() int { return pure(2) }
`)
	pass := testPass(pkg)
	cg := BuildCallGraph(pass)

	// recB sends nothing itself: only the SCC-internal fixpoint gives it
	// the fact via recA... which itself only has it via recB. Seed the
	// cycle through leaf: the summary is "calls leaf, transitively".
	// leaf is the only direct sender, so "sends" means "reaches leaf".
	sends := map[*FuncInfo]bool{}
	cg.Fixpoint(func(fi *FuncInfo) bool {
		next := fi.Name == "leaf"
		for _, site := range fi.Sites {
			for _, tgt := range site.Targets {
				if sends[tgt] {
					next = true
				}
			}
		}
		if sends[fi] == next {
			return false
		}
		sends[fi] = next
		return true
	})
	if !sends[funcByName(t, cg, "leaf")] || !sends[funcByName(t, cg, "mid")] {
		t.Errorf("direct chain lost the summary: leaf=%v mid=%v",
			sends[funcByName(t, cg, "leaf")], sends[funcByName(t, cg, "mid")])
	}
	if sends[funcByName(t, cg, "pure")] || sends[funcByName(t, cg, "callsPure")] {
		t.Errorf("summary leaked into send-free functions")
	}

	// Mutual recursion: recA and recB must share one SCC, and the
	// components must come out bottom-up (leaf's before mid's).
	sccs := cg.SCCs()
	compOf := map[*FuncInfo]int{}
	for i, scc := range sccs {
		for _, fi := range scc {
			compOf[fi] = i
		}
	}
	recA, recB := funcByName(t, cg, "recA"), funcByName(t, cg, "recB")
	if compOf[recA] != compOf[recB] {
		t.Errorf("recA and recB in different SCCs: %d vs %d", compOf[recA], compOf[recB])
	}
	if l, m := compOf[funcByName(t, cg, "leaf")], compOf[funcByName(t, cg, "mid")]; l >= m {
		t.Errorf("SCC order not bottom-up: leaf in component %d, caller mid in %d", l, m)
	}
}

// TestCallGraphInterfaceDispatch pins the CHA policy: an interface call
// resolves to every package-local method that implements the interface
// (value and pointer receivers both), is marked Dynamic, and excludes
// same-name methods with the wrong signature; a call through a plain
// function value is Dynamic with no targets.
func TestCallGraphInterfaceDispatch(t *testing.T) {
	pkg := parseAs(t, "p", `package p

type I interface{ Do() }

type S struct{}

func (S) Do() {}

type T struct{}

func (t *T) Do() {}

type U struct{}

func (U) Do(x int) {}

func use(i I) { i.Do() }

func useValue(f func()) { f() }
`)
	pass := testPass(pkg)
	cg := BuildCallGraph(pass)

	use := funcByName(t, cg, "use")
	if len(use.Sites) != 1 {
		t.Fatalf("use: want 1 call site, got %d", len(use.Sites))
	}
	site := use.Sites[0]
	if !site.Dynamic {
		t.Errorf("interface dispatch not marked Dynamic")
	}
	recvs := map[string]bool{}
	for _, tgt := range site.Targets {
		recvs[recvTypeName(tgt.Obj)] = true
	}
	if len(site.Targets) != 2 || !recvs["S"] || !recvs["T"] {
		t.Errorf("CHA targets: want exactly {S.Do, (*T).Do}, got %v", recvs)
	}

	useValue := funcByName(t, cg, "useValue")
	if len(useValue.Sites) != 1 {
		t.Fatalf("useValue: want 1 call site, got %d", len(useValue.Sites))
	}
	if fv := useValue.Sites[0]; !fv.Dynamic || len(fv.Targets) != 0 {
		t.Errorf("function-value call: want Dynamic with no targets, got Dynamic=%v targets=%d",
			fv.Dynamic, len(fv.Targets))
	}
}

// TestCallGraphGoStatementSeparation pins the split between Sites and
// GoTargets: the call of a `go` statement is absent from the spawner's
// Sites (the spawned body does not run under the caller's locks), but
// GoTargets resolves it — to a named body or to the literal itself.
func TestCallGraphGoStatementSeparation(t *testing.T) {
	pkg := parseAs(t, "p", `package p

func worker(ch chan int) {
	for v := range ch {
		_ = v
	}
}

func spawn(ch chan int) {
	go worker(ch)
	go func() { close(ch) }()
}
`)
	pass := testPass(pkg)
	cg := BuildCallGraph(pass)

	spawn := funcByName(t, cg, "spawn")
	for _, site := range spawn.Sites {
		if fn := callee(pass.TypesInfo, site.Call); fn != nil && fn.Name() == "worker" {
			t.Errorf("go statement's call leaked into Sites")
		}
	}

	var goStmts []*ast.GoStmt
	inspectOwn(spawn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goStmts = append(goStmts, g)
		}
		return true
	})
	if len(goStmts) != 2 {
		t.Fatalf("want 2 go statements, got %d", len(goStmts))
	}
	named := cg.GoTargets(pass, goStmts[0])
	if len(named) != 1 || named[0] != funcByName(t, cg, "worker") {
		t.Errorf("go worker(ch): want the worker body, got %v", named)
	}
	lit := cg.GoTargets(pass, goStmts[1])
	if len(lit) != 1 || lit[0].Lit == nil {
		t.Errorf("go func(){...}(): want the literal node, got %v", lit)
	}
}
