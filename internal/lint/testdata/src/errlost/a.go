// Package errlost is golden-test input for the errlost analyzer. The
// analyzer tracks errors from the storage/fault packages; under test it
// tracks calls into this package itself, so the mock store below stands
// in for pagestore's API.
package errlost

import "errors"

var errBoom = errors.New("boom")

type Store struct{}

func (s *Store) WritePage(id int, b []byte) error { return nil }
func (s *Store) ReadPage(id int) ([]byte, error)  { return nil, nil }
func (s *Store) Sync() error                      { return nil }
func (s *Store) Close() error                     { return nil }
func Inject(op string) error                      { return errBoom }
func (s *Store) Stat() (int, error)               { return 0, nil }

// checkedIsFine: the canonical consume.
func checkedIsFine(s *Store, b []byte) error {
	if err := s.WritePage(1, b); err != nil {
		return err
	}
	return nil
}

// statementDropped discards the error entirely.
func statementDropped(s *Store, b []byte) {
	s.WritePage(1, b) // want "drops the error result of Store.WritePage"
}

// deferDropped: deferred cleanup errors count too.
func deferDropped(s *Store) {
	defer s.Close() // want "drops the error result of deferred Store.Close"
}

// goDropped: a goroutine swallowing the error.
func goDropped(s *Store) {
	go s.Sync() // want "drops the error result of go-routine Store.Sync"
}

// blankDropped uses _ in the error slot.
func blankDropped(s *Store) []byte {
	b, _ := s.ReadPage(1) // want "discards the error from Store.ReadPage with _"
	return b
}

// annotatedDiscard: the sanctioned escape hatch.
func annotatedDiscard(s *Store) {
	//lint:allow errlost best-effort flush on shutdown, error path already logged
	s.Sync()
}

// deadStoreOnOnePath: the error is read on the happy path but falls
// out of the function on the early return.
func deadStoreOnOnePath(s *Store, b []byte, skip bool) error {
	err := s.WritePage(1, b) // want "assigns the error from Store.WritePage to \"err\" but a path returns without reading it"
	if skip {
		return nil
	}
	return err
}

// overwrittenBeforeRead: the second tracked call clobbers the first
// error before anyone looks at it.
func overwrittenBeforeRead(s *Store, b []byte) error {
	err := s.WritePage(1, b)
	err = s.Sync() // want "overwrites \"err\" while a previous error from Store.WritePage is still unchecked"
	return err
}

// retryLoopConsumes: the loop body reads err each iteration and the
// final value is returned — the shape a retry loop should have.
func retryLoopConsumes(s *Store, b []byte) error {
	var err error
	for i := 0; i < 3; i++ {
		err = s.WritePage(1, b)
		if err == nil {
			return nil
		}
	}
	return err
}

// namedReturnBare: a bare return in a function with named results
// returns err — consumed.
func namedReturnBare(s *Store, b []byte) (err error) {
	err = s.WritePage(1, b)
	return
}

// closureReads: a deferred closure reading the error consumes it.
func closureReads(s *Store, b []byte) {
	err := s.WritePage(1, b)
	defer func() {
		if err != nil {
			println("write failed")
		}
	}()
}

// untrackedCalleesIgnored: errors from other packages are not this
// analyzer's business.
func untrackedCalleesIgnored() {
	errors.New("ignored") // not tracked: errors is not a storage package
}
