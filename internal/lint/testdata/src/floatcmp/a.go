// Package floatcmp is golden-test input: positive and negative cases
// for the floatcmp analyzer.
package floatcmp

type distance float64

func exactEquality(a, b float64) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func exactInequality(a, b float32) bool {
	return a != b // want "exact != comparison of floating-point values"
}

func namedFloatType(a, b distance) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func constantZeroIsFine(rate float64) bool {
	return rate == 0 // the zero-value config idiom
}

func constantSentinelIsFine(v float64) bool {
	return v != 1.5
}

func intsAreFine(a, b int) bool {
	return a == b
}

// Equal is the approved exact-comparison helper shape; its body is
// exempt by name.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func suppressedTieBreak(a, b float64) bool {
	if a != b { //lint:allow floatcmp deliberate exact tie-break for canonical ordering
		return a < b
	}
	return false
}

// batchKernelExactCompare mimics the struct-of-arrays batch-kernel
// shape (internal/geom/batch.go): a per-lane loop writing one output
// element per entry. Exact equality inside such a kernel is precisely
// the divergence floatcmp exists to catch — the scalar and batch
// formulations of the same distance round differently, so a lane that
// keys behavior off == silently breaks the bit-parity contract.
func batchKernelExactCompare(lo, hi, out []float64) {
	for i := range out {
		if lo[i] == hi[i] { // want "exact == comparison of floating-point values"
			out[i] = 0
			continue
		}
		out[i] = (hi[i] - lo[i]) * (hi[i] - lo[i])
	}
}

// batchKernelOrderedCompare is the approved kernel shape: ordered
// comparisons against a computed difference only, as the real batch
// kernels use. Must stay clean.
func batchKernelOrderedCompare(lo, hi, out []float64) {
	for i := range out {
		var c float64
		if d := hi[i] - lo[i]; d > 0 {
			c = d * d
		}
		out[i] = c
	}
}
