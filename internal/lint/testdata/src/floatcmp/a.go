// Package floatcmp is golden-test input: positive and negative cases
// for the floatcmp analyzer.
package floatcmp

type distance float64

func exactEquality(a, b float64) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func exactInequality(a, b float32) bool {
	return a != b // want "exact != comparison of floating-point values"
}

func namedFloatType(a, b distance) bool {
	return a == b // want "exact == comparison of floating-point values"
}

func constantZeroIsFine(rate float64) bool {
	return rate == 0 // the zero-value config idiom
}

func constantSentinelIsFine(v float64) bool {
	return v != 1.5
}

func intsAreFine(a, b int) bool {
	return a == b
}

// Equal is the approved exact-comparison helper shape; its body is
// exempt by name.
func Equal(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func suppressedTieBreak(a, b float64) bool {
	if a != b { //lint:allow floatcmp deliberate exact tie-break for canonical ordering
		return a < b
	}
	return false
}
