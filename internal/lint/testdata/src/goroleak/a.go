// Package goroleak is golden-test input for the goroleak analyzer: the
// mock engine mirrors internal/exec's worker/queue/hedged-read shapes
// so the same proofs (range over a closed field, buffered-send
// arithmetic, alias-following close loops) are exercised on stdlib-only
// code.
package goroleak

import "context"

type job struct{ out chan int }

type engine struct {
	queues []chan job
	closed chan struct{}
	dead   chan job
}

// start mirrors Engine.New: the worker ranges over a queue that Close
// provably closes (through the range-variable alias), so its exit is
// proven.
func (e *engine) start() {
	for d := range e.queues {
		d := d
		go e.worker(d)
	}
}

func (e *engine) worker(d int) {
	for j := range e.queues[d] {
		_ = j
	}
}

// Close closes every queue element; the alias q -> e.queues is
// followed, proving the workers' ranges exit.
func (e *engine) Close() {
	close(e.closed)
	for _, q := range e.queues {
		close(q)
	}
}

// leakyWorker ranges over a channel no function in the package closes.
func (e *engine) spawnLeaky() {
	go e.leakyWorker()
}

func (e *engine) leakyWorker() {
	for j := range e.dead { // want "ranges over a channel no function in this package closes"
		_ = j
	}
}

// readHedged mirrors the engine's hedged read: two senders, capacity
// two — a loser never blocks or leaks. The unbuffered variant below is
// the checked failure.
func readHedged(fetch func() int) int {
	out := make(chan int, 2)
	go func() { out <- fetch() }()
	go func() { out <- fetch() }()
	return <-out
}

func readHedgedUnbuffered(fetch func() int) int {
	out := make(chan int) // want "channel .out. has 2 static goroutine sender.s. but capacity 0"
	go func() { out <- fetch() }()
	go func() { out <- fetch() }()
	return <-out
}

// selectEscape sends through a select with a ctx.Done escape: the
// loser takes the escape, so an unbuffered channel is fine.
func selectEscape(ctx context.Context, fetch func() int) int {
	out := make(chan int)
	go func() {
		select {
		case out <- fetch():
		case <-ctx.Done():
		}
	}()
	return <-out
}

// spinForever has no return, break or shutdown case.
func spinForever(tick func()) {
	go func() {
		for { // want "loops forever with no return or break"
			tick()
		}
	}()
}

// loopWithShutdown exits through the closed channel's case.
func (e *engine) loopWithShutdown(tick func()) {
	go func() {
		for {
			select {
			case <-e.closed:
				return
			default:
				tick()
			}
		}
	}()
}

// recvNever receives from a channel nothing ever sends on or closes.
func recvNever() {
	ch := make(chan int)
	go func() {
		<-ch // want "receives from .ch., which is never sent on or closed"
	}()
}

// recvFed is the same shape with a sender in the spawning function.
func recvFed() {
	ch := make(chan int, 1)
	go func() {
		<-ch
	}()
	ch <- 1
}
