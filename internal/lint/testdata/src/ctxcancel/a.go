// Package ctxcancel is golden-test input for the ctxcancel analyzer.
package ctxcancel

import (
	"context"
	"errors"
	"time"
)

var errBoom = errors.New("boom")

// deferredCancel is the canonical shape.
func deferredCancel(parent context.Context) error {
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	return work(ctx)
}

// discardedCancel leaks the derived context until the parent dies.
func discardedCancel(parent context.Context) error {
	ctx, _ := context.WithTimeout(parent, time.Second) // want "discards the cancel func from context.WithTimeout with _"
	return work(ctx)
}

// missedOnErrorPath calls cancel on the happy path only.
func missedOnErrorPath(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent) // want "cancel func \"cancel\" from context.WithCancel is not called on every return path"
	if fail {
		return errBoom
	}
	err := work(ctx)
	cancel()
	return err
}

// calledOnAllPaths without defer is fine too.
func calledOnAllPaths(parent context.Context, fail bool) error {
	ctx, cancel := context.WithCancel(parent)
	if fail {
		cancel()
		return errBoom
	}
	err := work(ctx)
	cancel()
	return err
}

// handedOff returns the cancel func: the caller owns the obligation.
func handedOff(parent context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithDeadline(parent, time.Now().Add(time.Second))
	return ctx, cancel
}

// storedForLater hands the cancel func to a struct; exempt here.
type session struct {
	ctx  context.Context
	stop context.CancelFunc
}

func storedForLater(parent context.Context) *session {
	ctx, cancel := context.WithCancel(parent)
	return &session{ctx: ctx, stop: cancel}
}

// closureHandoff: a closure capturing cancel to call later is a
// handoff to that closure.
func closureHandoff(parent context.Context) (context.Context, func()) {
	ctx, cancel := context.WithCancel(parent)
	cleanup := func() {
		cancel()
	}
	return ctx, cleanup
}

// panicPathExempt: a path that panics owes nothing.
func panicPathExempt(parent context.Context, fatal bool) error {
	ctx, cancel := context.WithCancel(parent) // no finding: panic exit exempt, other path cancels
	if fatal {
		panic("fatal")
	}
	err := work(ctx)
	cancel()
	return err
}

// selectArmMisses: the timeout arm forgets to cancel.
func selectArmMisses(parent context.Context, ch <-chan int) error {
	ctx, cancel := context.WithCancel(parent) // want "cancel func \"cancel\" from context.WithCancel is not called on every return path"
	select {
	case <-ch:
		cancel()
		return work(ctx)
	case <-time.After(time.Second):
		return errBoom
	}
}

// twoContexts: each site tracked independently.
func twoContexts(parent context.Context, fail bool) error {
	ctx1, cancel1 := context.WithCancel(parent)
	defer cancel1()
	ctx2, cancel2 := context.WithTimeout(ctx1, time.Second) // want "cancel func \"cancel2\" from context.WithTimeout is not called on every return path"
	if fail {
		return errBoom
	}
	err := work(ctx2)
	cancel2()
	return err
}

// loopLocalPair: creation and cancel inside one loop iteration — the
// chaos-test shape. The zero-iteration path owes nothing.
func loopLocalPair(parent context.Context, seeds int) error {
	for s := 0; s < seeds; s++ {
		ctx, cancel := context.WithTimeout(parent, time.Second)
		if err := work(ctx); err != nil {
			cancel()
			return err
		}
		cancel()
	}
	return nil
}

// loopLeak: a continue path that skips the cancel leaks one context
// per iteration.
func loopLeak(parent context.Context, seeds int) error {
	for s := 0; s < seeds; s++ {
		ctx, cancel := context.WithTimeout(parent, time.Second) // want "cancel func \"cancel\" from context.WithTimeout is not called on every return path"
		if err := work(ctx); err != nil {
			continue
		}
		cancel()
	}
	return nil
}

// suppressed: an annotated exception.
func suppressed(parent context.Context) error {
	//lint:allow ctxcancel context lives for the process; cancellation is the parent's job
	ctx, _ := context.WithCancel(parent)
	return work(ctx)
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
