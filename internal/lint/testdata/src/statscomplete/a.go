// Package statscomplete is golden-test input: positive and negative
// cases for the statscomplete analyzer.
package statscomplete

// Counters is a telemetry source with exported gauge fields.
type Counters struct {
	Hits   int
	Misses int
}

// View is the snapshot shape the functions below build.
type View struct {
	Hits   int
	Misses int
	Ratio  float64
}

func (c *Counters) Snapshot() View {
	return View{ // want "without populating exported field\(s\) Ratio"
		Hits:   c.Hits,
		Misses: c.Misses,
	}
}

type full struct{ c Counters }

// Snapshot covering every field via literal keys plus a later
// assignment is clean.
func (f *full) Snapshot() View {
	v := View{Hits: f.c.Hits, Misses: f.c.Misses}
	v.Ratio = float64(v.Hits) / float64(v.Hits+v.Misses+1)
	return v
}

// Sub with a complete keyed literal is clean; reading the same-typed
// operand also counts as coverage.
func (v View) Sub(prev View) View {
	return View{
		Hits:   v.Hits - prev.Hits,
		Misses: v.Misses - prev.Misses,
		Ratio:  v.Ratio,
	}
}

type gauges struct {
	Queued int
	Served int
}

type gaugeView struct {
	Queued int
}

// Snapshot must read every exported receiver field: Served is dropped.
func (g *gauges) Snapshot() gaugeView { // want "never reads exported receiver field\(s\) Served"
	return gaugeView{Queued: g.Queued}
}

// Stats returning a stored value (no literal) is out of scope.
type holder struct{ v View }

func (h *holder) Stats() View {
	return h.v
}

// Positional literals are compiler-enforced already.
func makeView() View {
	return View{1, 2, 3}
}

// Unexported-field-only structs and non-snapshot names are ignored.
type internalOnly struct{ a, b int }

func Build() internalOnly {
	return internalOnly{a: 1}
}
