// Package lockorder is golden-test input for the lockorder analyzer.
// The mock Pool/shard/WAL/DurableStore/FileStore types mirror the
// repo's lock-owning types by name: lock identity is "Type.field", so
// these stdlib-only mocks exercise the same lock classes — including
// the cross-package baseline edges (shard.mu -> Pool.mu,
// DurableStore.mu -> WAL.mu) that close cycles the analyzer cannot see
// in one package.
package lockorder

import (
	"sync"
	"time"
)

type Pool struct{ mu sync.Mutex }

type shard struct{ mu sync.Mutex }

type WAL struct{ mu sync.Mutex }

type DurableStore struct{ mu sync.Mutex }

type FileStore struct {
	mu sync.Mutex
	f  blockFile
}

type blockFile interface {
	WriteAt(b []byte, off int64) (int, error)
	Sync() error
}

// badPoolOrder acquires Pool.mu then shard.mu — the reverse of the
// baseline shard.mu -> Pool.mu edge the bufferpool establishes, so the
// order graph gains a cycle.
func badPoolOrder(p *Pool, s *shard) {
	p.mu.Lock()
	s.mu.Lock() // want "lock-order cycle .potential deadlock. among .Pool.mu, shard.mu."
	s.mu.Unlock()
	p.mu.Unlock()
}

// badWalOrder acquires WAL.mu then DurableStore.mu — the reverse of
// the pagestore's DurableStore.mu -> WAL.mu commit edge.
func badWalOrder(w *WAL, d *DurableStore) {
	w.mu.Lock()
	d.mu.Lock() // want "lock-order cycle .potential deadlock. among .DurableStore.mu, WAL.mu."
	d.mu.Unlock()
	w.mu.Unlock()
}

type guard struct{ mu sync.Mutex }

// relock reacquires a lock already held: a self-deadlock.
func relock(g *guard) {
	g.mu.Lock()
	g.mu.Lock() // want "lock-order cycle .potential self-deadlock.: guard.mu is reacquired"
	g.mu.Unlock()
	g.mu.Unlock()
}

type cache struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

// sendUnderLock blocks on a channel send while holding a hot-path
// lock.
func sendUnderLock(c *cache) {
	c.mu.Lock()
	c.ch <- 1 // want "channel send while holding cache.mu"
	c.mu.Unlock()
}

// waitUnderLock blocks on WaitGroup.Wait while holding the lock.
func waitUnderLock(c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.wg.Wait() // want "WaitGroup.Wait while holding cache.mu"
}

// sleepUnderLock stalls every other acquirer for the sleep duration.
func sleepUnderLock(c *cache) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while holding cache.mu"
	c.mu.Unlock()
}

// selectUnderLock blocks in a select with no default under the lock;
// selectWithDefaultUnderLock polls and is clean.
func selectUnderLock(c *cache, done chan struct{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want "select without default while holding cache.mu"
	case v := <-c.ch:
		_ = v
	case <-done:
	}
}

func selectWithDefaultUnderLock(c *cache) {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case v := <-c.ch:
		_ = v
	default:
	}
}

// recvOutsideLock releases before blocking — the bufferpool
// singleflight idiom — and is clean.
func recvOutsideLock(c *cache) {
	c.mu.Lock()
	c.mu.Unlock()
	<-c.ch
}

// blockingHelper receives on the channel; callUnderLock invokes it
// while holding the lock, so the blocking is reported at the callsite
// through the helper's summary.
func blockingHelper(c *cache) {
	<-c.ch
}

func callUnderLock(c *cache) {
	c.mu.Lock()
	blockingHelper(c) // want "call to blockingHelper .may block on a channel or WaitGroup. while holding cache.mu"
	c.mu.Unlock()
}

// ioUnderHotLock performs file I/O while holding a hot-path lock.
func ioUnderHotLock(c *cache, f blockFile, b []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, _ = f.WriteAt(b, 0) // want "file I/O .WriteAt. while holding hot-path lock cache.mu"
}

// ioUnderStoreLock holds an I/O-bearing lock across file I/O — the
// pagestore design (fsyncorder owns the write/sync ordering) — and is
// clean here.
func (fs *FileStore) ioUnderStoreLock(b []byte) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, _ = fs.f.WriteAt(b, 0)
	_ = fs.f.Sync()
}

// allowedSend documents an intentional handoff under the lock.
func allowedSend(c *cache) {
	c.mu.Lock()
	//lint:allow lockorder capacity reserved at enqueue, send cannot block
	c.ch <- 2
	c.mu.Unlock()
}
