// Package chanclose is golden-test input for the chanclose analyzer:
// double close and send-after-close on a may-closed path, including
// closes reached through same-package helpers, with the engine's
// per-element shutdown loop and flag-guarded close left clean.
package chanclose

// doubleClose closes the same local channel twice on one path.
func doubleClose() {
	ch := make(chan int)
	close(ch)
	close(ch) // want "close of .ch., which may already be closed"
}

// sendAfterClose sends on a channel after closing it.
func sendAfterClose() {
	ch := make(chan int, 1)
	close(ch)
	ch <- 1 // want "send on .ch., which may already be closed"
}

// condDouble may have closed ch on the branch before the second close.
func condDouble(ch chan int, b bool) {
	if b {
		close(ch)
	}
	close(ch) // want "close of .ch., which may already be closed"
}

// branchClose closes on one path and sends on the other: the facts
// never meet, so the send is clean (path sensitivity).
func branchClose(ch chan int, b bool) {
	if b {
		close(ch)
		return
	}
	ch <- 1
}

// conn.Close reaches a second close of the same field through the
// shutdown helper: caught via the helper's close summary.
type conn struct{ done chan struct{} }

func (c *conn) shutdown() { close(c.done) }

func (c *conn) Close() {
	c.shutdown()
	close(c.done) // want "close of .done., which may already be closed"
}

// hub.Close is the engine shutdown shape: one close of the broadcast
// field, then per-element closes through the range variable. Element
// identity is untracked by design, so the loop is clean.
type hub struct {
	queues []chan int
	closed chan struct{}
}

func (h *hub) Close() {
	close(h.closed)
	for _, q := range h.queues {
		close(q)
	}
}

// owner guards its close with a flag; only one close site exists, and
// callers go through shutdown, so nothing is flagged.
type owner struct {
	stopped bool
	done    chan struct{}
}

func (o *owner) shutdown() {
	if o.stopped {
		return
	}
	o.stopped = true
	close(o.done)
}

func (o *owner) CloseTwice() {
	o.shutdown()
	o.shutdown()
}
