// Package tracepair is golden-test input: positive and negative cases
// for the tracepair analyzer. The local Event/Observer mocks mirror the
// shape of internal/obs without importing it (testdata packages may
// only import the stdlib).
package tracepair

import "errors"

type EventType int

const (
	QueryStart EventType = iota
	StageIssue
	StageStart
	StageDone
	FetchIssue
	FetchDone
	QueryEnd
)

type Event struct {
	Type  EventType
	Stage int
}

type Observer interface {
	Observe(Event)
}

var errBoom = errors.New("boom")

// allPathsClosed is the good shape: the terminal is emitted after the
// work regardless of outcome.
func allPathsClosed(obs Observer, fail bool) error {
	obs.Observe(Event{Type: StageIssue, Stage: 1})
	var err error
	if fail {
		err = errBoom
	}
	obs.Observe(Event{Type: StageDone, Stage: 1})
	return err
}

// earlyReturnLeaks reproduces the PR 4 bug class: the error path
// returns before the stage is closed.
func earlyReturnLeaks(obs Observer, fail bool) error {
	obs.Observe(Event{Type: StageIssue, Stage: 1}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
	if fail {
		return errBoom
	}
	obs.Observe(Event{Type: StageDone, Stage: 1}) // want "emits StageDone but can return without it"
	return nil
}

// terminalOnlyOneArm: even without a start event in this function, a
// function that closes stages must close them on every path.
func terminalOnlyOneArm(obs Observer, ok bool) {
	if ok {
		obs.Observe(Event{Type: StageDone, Stage: 2}) // want "emits StageDone but can return without it"
	}
}

// nilCheckDischarges: the false edge of obs != nil proves the observer
// nil, so the early return without a terminal is fine.
func nilCheckDischarges(obs Observer, fail bool) error {
	if obs == nil {
		if fail {
			return errBoom
		}
		return nil
	}
	obs.Observe(Event{Type: StageIssue, Stage: 1})
	obs.Observe(Event{Type: StageDone, Stage: 1})
	return nil
}

// guardedEmission is the repo's dominant shape: every emission behind
// its own nil check, all paths merging before the return.
func guardedEmission(obs Observer, fail bool) error {
	if obs != nil {
		obs.Observe(Event{Type: StageIssue, Stage: 3})
	}
	var err error
	if fail {
		err = errBoom
	}
	if obs != nil {
		obs.Observe(Event{Type: StageDone, Stage: 3})
	}
	return err
}

// guardedLeak: the nil guard does not excuse a leak on the non-nil
// path.
func guardedLeak(obs Observer, fail bool) error {
	if obs != nil {
		obs.Observe(Event{Type: StageIssue, Stage: 3}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
	}
	if fail {
		return errBoom
	}
	if obs != nil {
		obs.Observe(Event{Type: StageDone, Stage: 3}) // want "emits StageDone but can return without it"
	}
	return nil
}

// deferClosed: a deferred terminal runs on every exit, including the
// early error return and panic unwinding.
func deferClosed(obs Observer, fail bool) error {
	obs.Observe(Event{Type: StageStart, Stage: 4})
	defer obs.Observe(Event{Type: StageDone, Stage: 4})
	if fail {
		return errBoom
	}
	return nil
}

// panicExitIsExempt: a path that ends in panic owes no terminal — the
// process is going down (or a recover higher up owns cleanup).
func panicExitIsExempt(obs Observer, fatal bool) {
	obs.Observe(Event{Type: StageIssue, Stage: 5})
	if fatal {
		panic("fatal")
	}
	obs.Observe(Event{Type: StageDone, Stage: 5})
}

// loopRetryClosed: the terminal after a retry loop covers the break
// paths; the only other exit emits it too.
func loopRetryClosed(obs Observer, attempts int) error {
	obs.Observe(Event{Type: StageIssue, Stage: 6})
	for i := 0; i < attempts; i++ {
		if i == 2 {
			obs.Observe(Event{Type: StageDone, Stage: 6})
			return errBoom
		}
	}
	obs.Observe(Event{Type: StageDone, Stage: 6})
	return nil
}

// continueLeaks: an error branch inside the loop that returns without
// closing.
func continueLeaks(obs Observer, attempts int) error {
	obs.Observe(Event{Type: StageIssue, Stage: 7}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
	for i := 0; i < attempts; i++ {
		if i == 2 {
			return errBoom
		}
	}
	obs.Observe(Event{Type: StageDone, Stage: 7}) // want "emits StageDone but can return without it"
	return nil
}

// fetchPairIsNotFunctionLocal: FetchIssue/FetchDone pairing is
// per-request and data-dependent; the analyzer must not demand it.
func fetchPairIsNotFunctionLocal(obs Observer, fail bool) error {
	obs.Observe(Event{Type: FetchIssue, Stage: 8})
	if fail {
		return errBoom
	}
	obs.Observe(Event{Type: FetchDone, Stage: 8})
	return nil
}

// queryPairSpansCalls: QueryStart/QueryEnd straddle Step invocations;
// the function-local rule does not apply.
func queryPairSpansCalls(obs Observer, done bool) {
	if done {
		obs.Observe(Event{Type: QueryEnd})
		return
	}
	obs.Observe(Event{Type: QueryStart})
}

// suppressed: an annotated exception.
func suppressed(obs Observer, fail bool) error {
	//lint:allow tracepair stage closed by the caller on this seam
	obs.Observe(Event{Type: StageDone, Stage: 9})
	if fail {
		return errBoom
	}
	return nil
}

// funcLitChecked: literals get their own CFG and their own obligation.
func funcLitChecked(obs Observer) func(bool) error {
	return func(fail bool) error {
		obs.Observe(Event{Type: StageIssue, Stage: 10}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
		if fail {
			return errBoom
		}
		obs.Observe(Event{Type: StageDone, Stage: 10}) // want "emits StageDone but can return without it"
		return nil
	}
}

// twoObservers: obligations are tracked per observer root; closing one
// does not discharge the other.
func twoObservers(a, b Observer, fail bool) error {
	a.Observe(Event{Type: StageIssue, Stage: 11})
	b.Observe(Event{Type: StageIssue, Stage: 12}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
	if fail {
		a.Observe(Event{Type: StageDone, Stage: 11})
		return errBoom
	}
	a.Observe(Event{Type: StageDone, Stage: 11})
	b.Observe(Event{Type: StageDone, Stage: 12}) // want "emits StageDone but can return without it"
	return nil
}

// selectPathsClosed: every select arm closes the stage before leaving.
func selectPathsClosed(obs Observer, ch <-chan int, done <-chan struct{}) error {
	obs.Observe(Event{Type: StageIssue, Stage: 13})
	select {
	case <-ch:
		obs.Observe(Event{Type: StageDone, Stage: 13})
		return nil
	case <-done:
		obs.Observe(Event{Type: StageDone, Stage: 13})
		return errBoom
	}
}

// selectArmLeaks: the cancellation arm forgets the terminal.
func selectArmLeaks(obs Observer, ch <-chan int, done <-chan struct{}) error {
	obs.Observe(Event{Type: StageIssue, Stage: 14}) // want "emits StageIssue here but a path to a return misses its terminal StageDone"
	select {
	case <-ch:
		obs.Observe(Event{Type: StageDone, Stage: 14}) // want "emits StageDone but can return without it"
		return nil
	case <-done:
		return errBoom
	}
}
