// Package simdeterminism is golden-test input: positive and negative
// cases for the simdeterminism analyzer.
package simdeterminism

import (
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "wall-clock read time.Now"
}

func wallClockSince() time.Duration {
	var t0 time.Time
	return time.Since(t0) // want "wall-clock read time.Since"
}

func pureTimeIsFine() time.Time {
	return time.Date(1998, time.June, 1, 0, 0, 0, 0, time.UTC)
}

func globalRand(n int) int {
	return rand.Intn(n) // want "global random source"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global random source"
}

func seededRandIsFine(seed int64, n int) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(n)
}

func suppressedWallClock() time.Time {
	//lint:allow simdeterminism observer wall-clock only, never in results
	return time.Now()
}

func mapRangeOrdered(m map[int]string) []string {
	var out []string
	for _, v := range m { // want "range over map feeds ordered output"
		out = append(out, v)
	}
	return out
}

func mapRangeSend(m map[int]string, ch chan string) {
	for _, v := range m { // want "range over map feeds ordered output"
		ch <- v
	}
}

func mapRangeAggregateIsFine(m map[int]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func mapRangeSortedIsFine(m map[int]string) []string {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

type trace struct{ reads []int }

func mapRangeSortedFieldIsFine(t *trace, m map[int]int) {
	for k := range m {
		t.reads = append(t.reads, k)
	}
	sort.Slice(t.reads, func(i, j int) bool { return t.reads[i] < t.reads[j] })
}

func mapRangeInnerSliceIsFine(m map[int]string) int {
	n := 0
	for _, v := range m {
		var parts []byte
		parts = append(parts, v...)
		n += len(parts)
	}
	return n
}
