// Package lockcheck is golden-test input: positive and negative cases
// for the lockcheck analyzer.
package lockcheck

import "sync"

// counter is the annotated shape the analyzer enforces.
type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

func (c *counter) incLocked() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) badInc() {
	c.n++ // want "guarded by mu"
}

func (c *counter) nLocked() int {
	//lint:allow lockcheck caller holds c.mu (see incLocked)
	return c.n
}

// rwStats exercises the RLock path and multi-field annotations.
type rwStats struct {
	mu         sync.RWMutex
	hits, miss int // guarded by mu
	capacity   int // immutable after construction; unannotated
}

func (s *rwStats) total() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.hits + s.miss
}

func (s *rwStats) badRead() int {
	return s.hits // want "guarded by mu"
}

func (s *rwStats) capOK() int {
	return s.capacity
}

func freeFuncLocked(s *rwStats) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.miss
}

func freeFuncBad(s *rwStats) int {
	return s.miss // want "guarded by mu"
}

// broken has an annotation naming a mutex that does not exist.
type broken struct {
	val int // guarded by lock // want "has no field lock"
}

func constructorIsFine() *counter {
	return &counter{}
}

// cache pins generic-struct handling: instantiated field accesses must
// resolve back to the annotated generic declaration.
type cache[K comparable] struct {
	mu    sync.Mutex
	items map[K]int // guarded by mu
}

func (c *cache[K]) get(k K) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.items[k]
}

func (c *cache[K]) badGet(k K) int {
	return c.items[k] // want "guarded by mu"
}

func keyedLiteralIsFine() *cache[int] {
	return &cache[int]{items: map[int]int{}}
}
