// Package fsyncorder is golden-test input for the fsyncorder analyzer.
// The mock WAL/FileStore/BlockFile types mirror internal/pagestore's
// protocol surface by name — the analyzer's op table matches on
// receiver type and method names, so these stdlib-only mocks exercise
// the same rows as the real store.
package fsyncorder

import "errors"

type WAL struct{}

func (w *WAL) Append(b []byte) error { return nil }
func (w *WAL) Sync() error           { return nil }
func (w *WAL) Reset() error          { return nil }

type FileStore struct{}

func (f *FileStore) WriteImage(page int, b []byte) error { return nil }
func (f *FileStore) ZeroPage(page int) error             { return nil }
func (f *FileStore) Sync() error                         { return nil }
func (f *FileStore) WriteMeta(b []byte) error            { return nil }

type BlockFile interface {
	WriteAt(b []byte, off int64) (int, error)
	Truncate(n int64) error
	Sync() error
}

type store struct {
	wal *WAL
	fs  *FileStore
	cur int
}

var errBoom = errors.New("boom")

// goodCommit is the canonical ordering: append, sync, publish.
func (s *store) goodCommit(recs [][]byte) error {
	for _, r := range recs {
		if err := s.wal.Append(r); err != nil {
			return err
		}
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.cur = s.cur + 1
	return nil
}

// reorderedCommit publishes the epoch before the fsync — the classic
// crash-consistency bug the analyzer exists to catch.
func (s *store) reorderedCommit(recs [][]byte) error {
	for _, r := range recs {
		if err := s.wal.Append(r); err != nil {
			return err
		}
	}
	s.cur = s.cur + 1 // want "reaches epoch publish .cur flip. with a possibly unsynced durable write"
	return s.wal.Sync()
}

// skippedSyncOnOnePath: the fast path forgets the fsync.
func (s *store) skippedSyncOnOnePath(rec []byte, fast bool) error {
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	if !fast {
		if err := s.wal.Sync(); err != nil {
			return err
		}
	}
	s.cur = s.cur + 1 // want "reaches epoch publish .cur flip. with a possibly unsynced durable write"
	return nil
}

// goodCheckpoint mirrors DurableStore.Checkpoint: images, sync, meta
// flip, sync, WAL reset.
func (s *store) goodCheckpoint(pages map[int][]byte, meta []byte) error {
	for p, b := range pages {
		if err := s.fs.WriteImage(p, b); err != nil {
			return err
		}
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	if err := s.fs.WriteMeta(meta); err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	return s.wal.Reset()
}

// unsyncedMetaFlip writes images and flips the superblock without the
// intervening sync.
func (s *store) unsyncedMetaFlip(pages map[int][]byte, meta []byte) error {
	for p, b := range pages {
		if err := s.fs.WriteImage(p, b); err != nil {
			return err
		}
	}
	if err := s.fs.WriteMeta(meta); err != nil { // want "reaches WriteMeta with a possibly unsynced durable write"
		return err
	}
	return nil
}

// metaFlipItselfDirties: WriteMeta writes the superblock it published —
// resetting the WAL right after it without a sync is a torn-meta
// window.
func (s *store) metaFlipItselfDirties(meta []byte) error {
	if err := s.fs.Sync(); err != nil {
		return err
	}
	if err := s.fs.WriteMeta(meta); err != nil {
		return err
	}
	return s.wal.Reset() // want "reaches Reset with a possibly unsynced durable write"
}

// blockFileSeam: the table's wildcard rows cover the BlockFile seam
// (and any mock implementing it).
func rawTruncatePublish(bf BlockFile, s *store, b []byte) error {
	if _, err := bf.WriteAt(b, 0); err != nil {
		return err
	}
	if err := bf.Truncate(int64(len(b))); err != nil {
		return err
	}
	s.cur = 1 // want "reaches epoch publish .cur flip. with a possibly unsynced durable write"
	return nil
}

func rawSyncedPublish(bf BlockFile, s *store, b []byte) error {
	if _, err := bf.WriteAt(b, 0); err != nil {
		return err
	}
	if err := bf.Sync(); err != nil {
		return err
	}
	s.cur = 1
	return nil
}

// appendAll leaves unsynced appends at its exit; callers that publish
// after calling it inherit the dirt (function summaries).
func (s *store) appendAll(recs [][]byte) error {
	for _, r := range recs {
		if err := s.wal.Append(r); err != nil {
			return err
		}
	}
	return nil
}

// summaryCatchesHelper: the write happened inside the helper.
func (s *store) summaryCatchesHelper(recs [][]byte) error {
	if err := s.appendAll(recs); err != nil {
		return err
	}
	s.cur = s.cur + 1 // want "reaches epoch publish .cur flip. with a possibly unsynced durable write"
	return nil
}

// summarySyncedHelper: sync after the helper discharges it.
func (s *store) summarySyncedHelper(recs [][]byte) error {
	if err := s.appendAll(recs); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}
	s.cur = s.cur + 1
	return nil
}

// suppressedPublish: an annotated exception (e.g. a recovery path that
// deliberately re-publishes a clean epoch).
func (s *store) suppressedPublish(rec []byte) error {
	if err := s.wal.Append(rec); err != nil {
		return err
	}
	//lint:allow fsyncorder recovery replay re-publishes the epoch it just scanned
	s.cur = s.cur + 1
	return s.wal.Sync()
}
