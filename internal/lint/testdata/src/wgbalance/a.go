// Package wgbalance is golden-test input for the wgbalance analyzer.
// The pool/runner mocks mirror internal/exec's worker lifecycle
// (Add-per-worker before spawn, deferred Done, Wait in Close) so the
// clean cases are the engine's real shapes.
package wgbalance

import "sync"

type pool struct {
	workers sync.WaitGroup
	queues  []chan int
}

// start is the engine-worker idiom: Add dominates the spawn, the body
// defers Done, Close waits after closing the queues. Clean.
func (p *pool) start() {
	for i := range p.queues {
		p.workers.Add(1)
		i := i
		go func() {
			defer p.workers.Done()
			for v := range p.queues[i] {
				_ = v
			}
		}()
	}
}

func (p *pool) Close() {
	for _, q := range p.queues {
		close(q)
	}
	p.workers.Wait()
}

// addNoDone spawns a goroutine that never Dones the added WaitGroup:
// Wait hangs forever. Reported once, at the Add.
func addNoDone(work func()) {
	var wg sync.WaitGroup
	wg.Add(1) // want "wg.Add has no matching Done"
	go func() {
		work()
	}()
	wg.Wait()
}

// doneNoAdd spawns a goroutine that Dones with no Add on any path
// before the spawn: Wait can return before the goroutine runs.
func doneNoAdd(work func()) {
	var wg sync.WaitGroup
	go func() { // want "goroutine calls wg.Done but no wg.Add is guaranteed before this spawn"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// conditionalAdd has an Add on only one path to the spawn.
func conditionalAdd(n int, work func()) {
	var wg sync.WaitGroup
	if n > 0 {
		wg.Add(1)
	}
	go func() { // want "no wg.Add is guaranteed before this spawn"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// partialDone's goroutine skips Done on the fallthrough path.
func partialDone(b bool, work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "calls wg.Done on some paths but not on every non-panic exit"
		if b {
			wg.Done()
			return
		}
		work()
	}()
	wg.Wait()
}

// addInside performs the Add from inside the spawned goroutine: Wait
// races the Add. The spawn is also flagged because no Add is guaranteed
// before it.
func addInside(work func()) {
	var wg sync.WaitGroup
	go func() { // want "goroutine calls wg.Done but no wg.Add is guaranteed before this spawn"
		wg.Add(1) // want "wg.Add inside the spawned goroutine races Wait"
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// session splits Add and Done across methods with no spawn in either:
// a cross-function protocol the analyzer deliberately leaves to the
// race detector. Clean.
type session struct{ wg sync.WaitGroup }

func (s *session) begin() { s.wg.Add(1) }
func (s *session) end()   { s.wg.Done() }

// runner spawns a named method whose body is resolved through the call
// graph: the deferred Done in loop balances the Add in start. Clean.
type runner struct {
	wg sync.WaitGroup
	ch chan int
}

func (r *runner) start() {
	r.wg.Add(1)
	go r.loop()
}

func (r *runner) loop() {
	defer r.wg.Done()
	for v := range r.ch {
		_ = v
	}
}

func (r *runner) stop() {
	close(r.ch)
	r.wg.Wait()
}
