package lint

// The forward dataflow engine under the path-sensitive analyzers: a
// classic iterative fixpoint over the CFG with bitset fact lattices.
// Analyzers express their protocol as a per-block transfer function
// that may refine facts per outgoing edge (branch sensitivity: the
// false edge of `obs != nil` carries "obs is nil").

// BitSet is a fixed-capacity fact set. Analyzers allocate one bit per
// tracked fact (an obligation, a variable's state); functions with more
// facts than fit are not a case that arises — the sets grow by words.
type BitSet []uint64

// NewBitSet returns an all-zero set able to hold n facts.
func NewBitSet(n int) BitSet { return make(BitSet, (n+63)/64) }

func (s BitSet) Has(i int) bool { return s[i/64]&(1<<(i%64)) != 0 }
func (s BitSet) Set(i int)      { s[i/64] |= 1 << (i % 64) }
func (s BitSet) Clear(i int)    { s[i/64] &^= 1 << (i % 64) }

// Clone returns an independent copy.
func (s BitSet) Clone() BitSet {
	c := make(BitSet, len(s))
	copy(c, s)
	return c
}

// Equal reports bitwise equality.
func (s BitSet) Equal(o BitSet) bool {
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// IntersectWith sets s to s ∩ o.
func (s BitSet) IntersectWith(o BitSet) {
	for i := range s {
		s[i] &= o[i]
	}
}

// UnionWith sets s to s ∪ o.
func (s BitSet) UnionWith(o BitSet) {
	for i := range s {
		s[i] |= o[i]
	}
}

// Fill sets every fact (the ⊤ of a must-analysis).
func (s BitSet) Fill() {
	for i := range s {
		s[i] = ^uint64(0)
	}
}

// FlowSpec describes one forward dataflow problem.
type FlowSpec struct {
	// Bits is the fact-domain size.
	Bits int
	// Must selects the meet: true = intersection (a fact holds only if
	// it holds on every path; unreached blocks start at ⊤), false =
	// union (a fact holds if it may hold on some path; start at ⊥).
	Must bool
	// Entry is the boundary state at the function entry (nil = ⊥).
	Entry BitSet
	// Transfer maps a block's in-state to one out-state per successor
	// edge, in Succs order. The returned sets may alias each other and
	// the input only if unmodified; edge-refined sets must be fresh.
	Transfer func(b *Block, in BitSet) []BitSet
}

// Flow runs the fixpoint and returns the in-state of every block.
// Blocks unreachable from the entry keep their initial value (⊤ for
// must, ⊥ for may), so reports never fire in dead code under a must
// analysis.
func (c *CFG) Flow(spec FlowSpec) []BitSet {
	n := len(c.Blocks)
	ins := make([]BitSet, n)
	for i := range ins {
		ins[i] = NewBitSet(spec.Bits)
		if spec.Must && i != c.Entry {
			ins[i].Fill()
		}
	}
	if spec.Entry != nil {
		copy(ins[c.Entry], spec.Entry)
	}

	// edgeOuts[b][k] is the out-state along block b's k-th edge.
	edgeOuts := make([][]BitSet, n)

	// Worklist seeded with every block in index order (the builder
	// emits blocks roughly in source order, so this converges fast).
	inList := make([]bool, n)
	var list []int
	push := func(i int) {
		if !inList[i] {
			inList[i] = true
			list = append(list, i)
		}
	}
	for i := 0; i < n; i++ {
		push(i)
	}
	for len(list) > 0 {
		i := list[0]
		list = list[1:]
		inList[i] = false
		b := c.Blocks[i]
		edgeOuts[i] = spec.Transfer(b, ins[i].Clone())
		for _, e := range b.Succs {
			merged := c.meetInto(spec, e.To, edgeOuts)
			if !merged.Equal(ins[e.To]) {
				ins[e.To] = merged
				push(e.To)
			}
		}
	}
	return ins
}

// meetInto recomputes a block's in-state as the meet over every known
// incoming edge-out (edges whose source has not run yet contribute the
// initial value, which is the meet identity).
func (c *CFG) meetInto(spec FlowSpec, target int, edgeOuts [][]BitSet) BitSet {
	acc := NewBitSet(spec.Bits)
	first := true
	for _, b := range c.Blocks {
		for k, e := range b.Succs {
			if e.To != target || edgeOuts[b.Index] == nil {
				continue
			}
			out := edgeOuts[b.Index][k]
			if first {
				copy(acc, out)
				first = false
			} else if spec.Must {
				acc.IntersectWith(out)
			} else {
				acc.UnionWith(out)
			}
		}
	}
	if first {
		// No predecessor has produced an out yet: initial value.
		if spec.Must && target != c.Entry {
			acc.Fill()
		}
		if target == c.Entry && spec.Entry != nil {
			copy(acc, spec.Entry)
		}
	} else if target == c.Entry && spec.Entry != nil {
		// A back edge into the entry keeps the boundary facts.
		if spec.Must {
			acc.IntersectWith(spec.Entry)
		} else {
			acc.UnionWith(spec.Entry)
		}
	}
	return acc
}

// UniformOuts is the common transfer tail: every successor edge gets
// the same out-state.
func UniformOuts(b *Block, out BitSet) []BitSet {
	outs := make([]BitSet, len(b.Succs))
	for i := range outs {
		outs[i] = out
	}
	return outs
}
