package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// StatsComplete keeps telemetry snapshots honest: in functions named
// Snapshot, Stats or Sub that return a struct defined in the same
// package via a keyed composite literal, every exported field of that
// struct must be populated — either as a literal key or by a later
// assignment through a value of the struct type. Additionally, a
// Snapshot method must read every exported field of its receiver, so a
// new gauge cannot be added without being exported into the snapshot.
//
// Adding a counter to exec.Stats or a gauge to obs.DiskGauges and
// forgetting it in Stats()/Snapshot()/Sub() compiles fine and silently
// reports zeros forever; this analyzer turns that drift into a CI
// failure.
var StatsComplete = &Analyzer{
	Name: "statscomplete",
	Doc: "Snapshot/Stats/Sub functions returning a keyed struct literal must " +
		"populate every exported field, and Snapshot must read every exported " +
		"receiver field — telemetry cannot silently drop a counter",
	Run: runStatsComplete,
}

var statsFuncNames = map[string]bool{"Snapshot": true, "Stats": true, "Sub": true}

func runStatsComplete(pass *Pass) error {
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !statsFuncNames[fd.Name.Name] {
				continue
			}
			checkStatsFunc(pass, fd)
		}
	}
	return nil
}

func checkStatsFunc(pass *Pass, fd *ast.FuncDecl) {
	resType := singleStructResult(pass, fd)
	if resType == nil {
		return
	}
	st := resType.Underlying().(*types.Struct)

	// Fields covered by keyed composite literals of the result type and
	// by any selector on a value of the result type (later assignments,
	// accumulation loops, reads of the same-typed operand in Sub).
	covered := map[string]bool{}
	var firstLit *ast.CompositeLit
	sawLiteral := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil || !sameNamed(t, resType) {
				return true
			}
			if len(n.Elts) > 0 {
				if _, keyed := n.Elts[0].(*ast.KeyValueExpr); !keyed {
					// Positional literal: the compiler already enforces
					// completeness.
					return true
				}
			}
			sawLiteral = true
			if firstLit == nil {
				firstLit = n
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok {
						covered[id.Name] = true
					}
				}
			}
		case *ast.SelectorExpr:
			t := pass.TypesInfo.TypeOf(n.X)
			if t == nil {
				return true
			}
			if p, ok := t.Underlying().(*types.Pointer); ok {
				t = p.Elem()
			}
			if sameNamed(t, resType) {
				covered[n.Sel.Name] = true
			}
		}
		return true
	})

	if sawLiteral {
		var missing []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Exported() && !covered[f.Name()] {
				missing = append(missing, f.Name())
			}
		}
		if len(missing) > 0 {
			sort.Strings(missing)
			pass.Reportf(firstLit.Pos(),
				"%s returns %s without populating exported field(s) %s; every "+
					"exported field must appear in the literal or be assigned in "+
					"this function",
				fd.Name.Name, resType.Obj().Name(), strings.Join(missing, ", "))
		}
	}

	if fd.Name.Name == "Snapshot" {
		checkReceiverRead(pass, fd)
	}
}

// checkReceiverRead verifies a Snapshot method reads every exported
// field of its receiver struct.
func checkReceiverRead(pass *Pass, fd *ast.FuncDecl) {
	recvType := receiverNamedStruct(pass, fd)
	if recvType == nil {
		return
	}
	st := recvType.Underlying().(*types.Struct)
	read := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		t := pass.TypesInfo.TypeOf(sel.X)
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if sameNamed(t, recvType) {
			read[sel.Sel.Name] = true
		}
		return true
	})
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && !read[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		pass.Reportf(fd.Name.Pos(),
			"Snapshot never reads exported receiver field(s) %s of %s; the "+
				"snapshot silently drops them",
			strings.Join(missing, ", "), recvType.Obj().Name())
	}
}

// singleStructResult returns the named struct type (defined in the
// package under analysis) that fd returns, or nil when fd does not
// return exactly one such value.
func singleStructResult(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Type.Results == nil || len(fd.Type.Results.List) != 1 ||
		len(fd.Type.Results.List[0].Names) > 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Type.Results.List[0].Type)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != pass.Pkg {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok || st.NumFields() == 0 {
		return nil
	}
	return named
}

// receiverNamedStruct resolves fd's receiver to a named struct type
// with at least one exported field, or nil.
func receiverNamedStruct(pass *Pass, fd *ast.FuncDecl) *types.Named {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return nil
	}
	t := pass.TypesInfo.TypeOf(fd.Recv.List[0].Type)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// sameNamed reports whether t is the named type target (ignoring
// pointers was handled by callers).
func sameNamed(t types.Type, target *types.Named) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() == target.Obj()
}
