package lint

import (
	"go/ast"
	"strings"
)

// TracePair enforces the trace-event pairing protocol of package obs on
// the two drivers that own terminal events: a function that closes
// fetch stages (emits StageDone) must close them on every path to a
// normal return — error exits and cancellation exits included — unless
// the observer is provably nil on that path. This is the bug class
// fixed by hand in PR 4, where exec's fetchBatch returned early on a
// failed batch and left the stage open.
//
// The event pairs are declared in traceEventPairs; pairs whose terminal
// is emitted by a different function than the start (FetchIssue /
// FetchDone across the algorithm–driver seam) or whose lifetime spans
// calls (QueryStart / QueryEnd across Step invocations) are exempt from
// the function-local rule and documented as such in the table.
//
// Two path-sensitive rules, both per function (literals included):
//
//  1. terminal-on-all-paths: if the function emits a function-local
//     terminal event anywhere, every path from entry to a return must
//     either emit it or prove the observer nil (the false edge of
//     `obs != nil`). Panic exits are exempt.
//  2. start-post-dominated: if the function emits both sides of a
//     function-local pair, no path may reach a return with the start
//     emitted but the terminal not.
var TracePair = &Analyzer{
	Name: "tracepair",
	Doc: "trace events that open a stage must be closed by their terminal " +
		"pair on every return path (including error and cancellation exits); " +
		"a driver that emits StageDone anywhere must emit it on all paths " +
		"unless the observer is provably nil",
	Run: runTracePair,
}

// tracePair is one start/terminal event pair of the obs schema.
type tracePair struct {
	start    string
	terminal string
	// funcLocal marks pairs whose open and close are emitted by the
	// same function, making the protocol statically checkable there.
	// FetchIssue/FetchDone pairing is per-request and data-dependent
	// (failed fetches legally omit FetchDone); QueryStart/QueryEnd
	// spans Step calls of the execution state machine. Both are checked
	// dynamically by the trace parity tests instead.
	funcLocal bool
}

var traceEventPairs = []tracePair{
	{start: "StageIssue", terminal: "StageDone", funcLocal: true},
	{start: "StageStart", terminal: "StageDone", funcLocal: true}, // alias kept for protocol docs/testdata
	{start: "FetchIssue", terminal: "FetchDone", funcLocal: false},
	{start: "QueryStart", terminal: "QueryEnd", funcLocal: false},
}

// tracePairPackages are the drivers that emit terminal events.
// (simarray's deliver() closes stages from an event-driven callback —
// per-arrival, not per-function — so the function-local rule cannot
// apply there; its pairing is covered by the trace parity tests.)
var tracePairPackages = map[string]bool{
	"repro/internal/exec":  true,
	"repro/internal/query": true,
}

func inTracePairScope(path, analyzer string) bool {
	path = normalizePkgPath(path)
	return tracePairPackages[path] || strings.HasPrefix(path, analyzer)
}

func runTracePair(pass *Pass) error {
	if !inTracePairScope(pass.Pkg.Path(), pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkTracePairs(pass, declName(decl, lit), body)
		})
	}
	return nil
}

func declName(decl *ast.FuncDecl, lit *ast.FuncLit) string {
	if lit != nil {
		return "function literal in " + decl.Name.Name
	}
	return decl.Name.Name
}

// observeEvent matches a call of the form <root>.Observe(Event{Type:
// <EventName>, ...}) — the emission shape used across the repo — and
// returns the observer's root path and the event name.
func observeEvent(call *ast.CallExpr) (root, event string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel || sel.Sel.Name != "Observe" || len(call.Args) != 1 {
		return "", "", false
	}
	root = exprString(sel.X)
	if root == "" {
		return "", "", false
	}
	comp, isComp := ast.Unparen(call.Args[0]).(*ast.CompositeLit)
	if !isComp {
		return "", "", false
	}
	for _, el := range comp.Elts {
		kv, isKV := el.(*ast.KeyValueExpr)
		if !isKV {
			continue
		}
		key, isIdent := kv.Key.(*ast.Ident)
		if !isIdent || key.Name != "Type" {
			continue
		}
		switch v := ast.Unparen(kv.Value).(type) {
		case *ast.Ident:
			return root, v.Name, true
		case *ast.SelectorExpr:
			return root, v.Sel.Name, true
		}
	}
	return "", "", false
}

// nilCheckedRoot classifies an edge condition of the form `X != nil` /
// `X == nil`: it returns X's root path and whether THIS edge is the one
// on which X is known nil.
func nilCheckedRoot(e Edge) (root string, knownNil bool, ok bool) {
	bin, isBin := ast.Unparen(e.Cond).(*ast.BinaryExpr)
	if !isBin {
		return "", false, false
	}
	var x ast.Expr
	switch {
	case isNilIdent(bin.Y):
		x = bin.X
	case isNilIdent(bin.X):
		x = bin.Y
	default:
		return "", false, false
	}
	root = exprString(x)
	if root == "" {
		return "", false, false
	}
	switch bin.Op.String() {
	case "!=":
		return root, e.Negated, true // false edge of X != nil ⇒ X is nil
	case "==":
		return root, !e.Negated, true // true edge of X == nil ⇒ X is nil
	}
	return "", false, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// terminalEmissions finds every function-local-terminal Observe call in
// the body, keyed by observer root, plus the set of start events per
// root for rule 2.
type traceEmit struct {
	call  *ast.CallExpr
	root  string
	event string
}

// traceObligation is one terminal-event debt a function owes: having
// emitted terminal anywhere on root, it must do so on every path.
type traceObligation struct {
	root     string
	terminal string
	starts   map[string]bool
	emitPos  *ast.CallExpr
}

func collectTraceEmits(body *ast.BlockStmt) []traceEmit {
	var out []traceEmit
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit && n != nil {
			// Literals are separate functions with their own CFGs.
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if root, ev, ok := observeEvent(call); ok {
				out = append(out, traceEmit{call: call, root: root, event: ev})
			}
		}
		return true
	})
	return out
}

func isFuncLocalTerminal(event string) bool {
	for _, p := range traceEventPairs {
		if p.funcLocal && p.terminal == event {
			return true
		}
	}
	return false
}

// startsForTerminal returns the start events whose function-local
// terminal is event.
func startsForTerminal(event string) map[string]bool {
	starts := map[string]bool{}
	for _, p := range traceEventPairs {
		if p.funcLocal && p.terminal == event {
			starts[p.start] = true
		}
	}
	return starts
}

func checkTracePairs(pass *Pass, fname string, body *ast.BlockStmt) {
	emits := collectTraceEmits(body)
	// Group the obligation by observer root: the function owes a
	// terminal on root r only if it emits one somewhere.
	var obls []traceObligation
	seen := map[string]bool{}
	for _, em := range emits {
		if !isFuncLocalTerminal(em.event) {
			continue
		}
		key := em.root + "\x00" + em.event
		if seen[key] {
			continue
		}
		seen[key] = true
		obls = append(obls, traceObligation{
			root: em.root, terminal: em.event,
			starts: startsForTerminal(em.event), emitPos: em.call,
		})
	}
	if len(obls) == 0 {
		return
	}

	cfg := BuildCFG(body)
	// Two passes over the same CFG, one bit per obligation in each:
	//   must-pass bit i = discharged: terminal emitted, or observer
	//                     proved nil (must hold at every return)
	//   may-pass  bit i = openStart: a start emitted, terminal not yet
	//                     (must NOT be possible at any return)
	nb := len(obls)

	transferMust := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			applyTraceNode(n, obls, func(i int) { out.Set(i) }, nil)
		}
		outs := make([]BitSet, len(b.Succs))
		for k, e := range b.Succs {
			eo := out
			if e.Cond != nil {
				if root, knownNil, ok := nilCheckedRoot(e); ok && knownNil {
					for i, o := range obls {
						if o.root == root {
							eo = eo.Clone()
							eo.Set(i)
						}
					}
				}
			}
			outs[k] = eo
		}
		return outs
	}
	mustIns := cfg.Flow(FlowSpec{Bits: nb, Must: true, Transfer: transferMust})

	// Rule 1: at every reachable return, each obligation is discharged.
	exitIn := mustIns[cfg.Exit]
	for i, o := range obls {
		if !exitIn.Has(i) {
			pass.Reportf(o.emitPos.Pos(),
				"%s emits %s but can return without it: every path to a return must "+
					"emit the terminal trace event (or prove %s nil); error and "+
					"cancellation exits included",
				fname, o.terminal, o.root)
		}
	}

	// Rule 2: start emitted but terminal not, live at a return (may
	// analysis: gen at start emission, kill at terminal emission).
	transferMay := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			applyTraceNode(n, obls, func(i int) { out.Clear(i) }, func(i int) { out.Set(i) })
		}
		// Branch refinement, mirroring the must pass: on an edge where
		// the observer is known nil, no start can be open on it — the
		// path that emitted the start had the observer non-nil.
		outs := make([]BitSet, len(b.Succs))
		for k, e := range b.Succs {
			eo := out
			if e.Cond != nil {
				if root, knownNil, ok := nilCheckedRoot(e); ok && knownNil {
					for i, o := range obls {
						if o.root == root {
							eo = eo.Clone()
							eo.Clear(i)
						}
					}
				}
			}
			outs[k] = eo
		}
		return outs
	}
	mayIns := cfg.Flow(FlowSpec{Bits: nb, Must: false, Transfer: transferMay})
	openAtExit := mayIns[cfg.Exit]
	for i, o := range obls {
		if len(o.starts) > 0 && openAtExit.Has(i) {
			// Only meaningful when the function actually emits a start
			// of this pair; find it for the report position.
			for _, em := range emits {
				if em.root == o.root && o.starts[em.event] {
					pass.Reportf(em.call.Pos(),
						"%s emits %s here but a path to a return misses its terminal %s; "+
							"the start event must be post-dominated by its pair",
						fname, em.event, o.terminal)
					break
				}
			}
		}
	}
}

// applyTraceNode applies one CFG node's trace effects for every
// obligation: onTerminal fires for terminal emissions on the
// obligation's root, onStart for start-class emissions of its pair.
// Emissions inside a defer count at the registration point — a
// registered defer runs at every subsequent exit. ast.Inspect descends
// into the node but not into nested function literals.
func applyTraceNode(n ast.Node, obls []traceObligation, onTerminal, onStart func(int)) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		root, ev, ok := observeEvent(call)
		if !ok {
			return true
		}
		for i := range obls {
			if obls[i].root != root {
				continue
			}
			if ev == obls[i].terminal && onTerminal != nil {
				onTerminal(i)
			} else if obls[i].starts[ev] && onStart != nil {
				onStart(i)
			}
		}
		return true
	})
}
