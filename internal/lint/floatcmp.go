package lint

import (
	"go/ast"
	"go/token"
)

// FloatCmp forbids == and != between floating-point values in the
// determinism-critical packages. Distances flow through squared-space
// arithmetic whose rounding differs between algebraically equal
// formulations, so exact equality silently diverges; comparisons
// belong in the approved geom helpers (Point.Equal, Rect.Equal — any
// method named Equal) or behind an epsilon.
//
// Exemptions: comparisons with a compile-time constant (the zero-value
// config idiom `if c.Rate == 0`), and the bodies of functions named
// Equal, which are the approved exact-comparison helpers. Deliberate
// exact tie-breaks (canonical result ordering) are suppressed in place
// with //lint:allow floatcmp so the intent is documented at the site.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "forbid ==/!= on float values outside approved Equal helpers in " +
		"determinism-critical packages; exact float equality on computed " +
		"distances is one refactor away from silent divergence",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	if !inDeterminismScope(pass.Pkg.Path(), pass.Analyzer.Name) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.Name == "Equal" {
				continue // approved exact-comparison helper
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
					return true
				}
				checkFloatCmp(pass, be)
				return true
			})
		}
	}
	return nil
}

func checkFloatCmp(pass *Pass, be *ast.BinaryExpr) {
	xt, yt := pass.TypesInfo.Types[be.X], pass.TypesInfo.Types[be.Y]
	if xt.Type == nil || yt.Type == nil {
		return
	}
	if !isFloat(xt.Type) && !isFloat(yt.Type) {
		return
	}
	if xt.Value != nil || yt.Value != nil {
		return // comparison against a constant: the zero-value/sentinel idiom
	}
	pass.Reportf(be.OpPos,
		"exact %s comparison of floating-point values; use an approved Equal "+
			"helper or an epsilon, or //lint:allow floatcmp if the exact "+
			"tie-break is deliberate", be.Op)
}
