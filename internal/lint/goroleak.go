package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
)

// GoroLeak requires every `go` statement's goroutine to have a
// statically provable exit, making the engine's hedged-read comment
// ("a loser never blocks or leaks") a checked property:
//
//   - A range over a channel is an exit when some function in the
//     package closes that channel (aliases through range variables and
//     element indexing are followed, so `for _, q := range e.queues {
//     close(q) }` proves `for job := range e.queues[d]`).
//   - `for {}` loops must contain a return or break.
//   - A receive outside select on a channel local to the spawning
//     function must have a sender or a close somewhere in it.
//   - A send from a spawned goroutine on a channel made in the spawning
//     function must be provably non-blocking: constant capacity at
//     least the number of static goroutine send sites (the hedged-read
//     pattern), or a select with a default or an escape case
//     (ctx.Done(), a closed channel). Violations are reported once per
//     channel, at its make site.
//
// Sends and receives on channels the analysis cannot see end-to-end
// (struct fields fed as data, parameters) are not flagged: the policy
// is zero false positives on code whose other end lives elsewhere, and
// the race/chaos suites own those interleavings. Spawns that resolve
// outside the package are skipped for the same reason.
var GoroLeak = &Analyzer{
	Name: "goroleak",
	Doc: "every spawned goroutine must have a statically provable exit " +
		"(range over a closed channel, bounded loop, guaranteed-buffered " +
		"send); losing senders on under-buffered channels leak forever",
	Run: runGoroLeak,
}

// chanMake is one `make(chan T, c)` assigned to a variable in a
// spawning function.
type chanMake struct {
	obj     types.Object
	name    string
	makePos token.Pos
	capVal  int  // constant capacity; 0 when absent
	capOK   bool // capacity is a compile-time constant (or absent)
	// goSends counts static send statements on this channel inside
	// goroutines spawned by the same function; loopSend marks any of
	// them sitting inside a loop (unbounded senders).
	goSends  int
	loopSend bool
	// anySends counts send statements on the channel anywhere in the
	// function, including its literals — liveness witness for receives.
	anySends int
}

func runGoroLeak(pass *Pass) error {
	if !inConcurrencyScope(pass.Pkg.Path()) {
		return nil
	}
	cg := BuildCallGraph(pass)
	closed := collectClosedChans(pass, cg)

	reportedNode := map[token.Pos]bool{}
	badChans := map[types.Object]*chanMake{}

	for _, fi := range cg.Funcs {
		var goStmts []*ast.GoStmt
		inspectOwn(fi.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goStmts = append(goStmts, g)
			}
			return true
		})
		if len(goStmts) == 0 {
			continue
		}
		chans := collectChanMakes(pass, fi, goStmts)
		for _, g := range goStmts {
			for _, t := range cg.GoTargets(pass, g) {
				checkGoroBody(pass, t, closed, chans, reportedNode, badChans)
			}
		}
	}

	var bad []*chanMake
	for _, cm := range badChans {
		bad = append(bad, cm)
	}
	sort.Slice(bad, func(i, j int) bool { return bad[i].makePos < bad[j].makePos })
	for _, cm := range bad {
		pass.Reportf(cm.makePos,
			"channel %q has %d static goroutine sender(s) but capacity %d and no "+
				"guaranteed receiver: a losing sender blocks forever and leaks its "+
				"goroutine; buffer it to the sender count or select on an escape",
			cm.name, cm.goSends, cm.capVal)
	}
	return nil
}

// collectClosedChans returns the identity objects of every channel some
// function in the package closes, following one level of aliasing: a
// close of a range variable or element records the ranged/indexed
// container's field, so closing each element of e.queues marks the
// queues field closed.
func collectClosedChans(pass *Pass, cg *CallGraph) map[types.Object]bool {
	closed := map[types.Object]bool{}
	for _, fi := range cg.Funcs {
		alias := map[types.Object]types.Object{}
		inspectOwn(fi.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if v, ok := n.Value.(*ast.Ident); ok && v.Name != "_" {
					if from := pass.TypesInfo.ObjectOf(v); from != nil {
						if to, _ := rootSelObj(pass.TypesInfo, n.X); to != nil {
							alias[from] = to
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
					if id, ok := n.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if from := pass.TypesInfo.ObjectOf(id); from != nil {
							if to, _ := rootSelObj(pass.TypesInfo, n.Rhs[0]); to != nil && to != from {
								alias[from] = to
							}
						}
					}
				}
			}
			return true
		})
		inspectOwn(fi.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "close" {
				return true
			}
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			obj, _ := rootSelObj(pass.TypesInfo, call.Args[0])
			if obj == nil {
				return true
			}
			if to, ok := alias[obj]; ok {
				obj = to
			}
			closed[obj] = true
			return true
		})
	}
	return closed
}

// collectChanMakes indexes the channels made directly in fi's body and
// counts send sites on them.
func collectChanMakes(pass *Pass, fi *FuncInfo, goStmts []*ast.GoStmt) map[types.Object]*chanMake {
	chans := map[types.Object]*chanMake{}
	record := func(id *ast.Ident, call *ast.CallExpr) {
		fn, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fn.Name != "make" || len(call.Args) < 1 {
			return
		}
		tv, ok := pass.TypesInfo.Types[call.Args[0]]
		if !ok {
			return
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return
		}
		obj := pass.TypesInfo.ObjectOf(id)
		if obj == nil {
			return
		}
		cm := &chanMake{obj: obj, name: id.Name, makePos: call.Pos(), capOK: true}
		if len(call.Args) >= 2 {
			cv, ok := pass.TypesInfo.Types[call.Args[1]]
			if ok && cv.Value != nil {
				if v, exact := constant.Int64Val(constant.ToInt(cv.Value)); exact {
					cm.capVal = int(v)
				} else {
					cm.capOK = false
				}
			} else {
				cm.capOK = false // runtime capacity: unknown
			}
		}
		chans[obj] = cm
	}
	inspectOwn(fi.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i := range as.Lhs {
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
					record(id, call)
				}
			}
		}
		return true
	})

	countSends := func(root ast.Node, inGo bool) {
		var depth int
		var walk func(n ast.Node)
		walk = func(n ast.Node) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.ForStmt:
					depth++
					if m.Init != nil {
						walk(m.Init)
					}
					walk(m.Body)
					depth--
					return false
				case *ast.RangeStmt:
					depth++
					walk(m.Body)
					depth--
					return false
				case *ast.SendStmt:
					obj, _ := rootSelObj(pass.TypesInfo, m.Chan)
					if cm := chans[obj]; cm != nil {
						cm.anySends++
						if inGo {
							cm.goSends++
							if depth > 0 {
								cm.loopSend = true
							}
						}
					}
				}
				return true
			})
		}
		walk(root)
	}
	// Sends inside the goroutines this function spawns (literal bodies).
	for _, g := range goStmts {
		if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
			countSends(lit.Body, true)
		}
	}
	// Sends anywhere else in the function (liveness witnesses for
	// receives): the body's own nodes plus non-go literals.
	inspectOwn(fi.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SendStmt); ok {
			obj, _ := rootSelObj(pass.TypesInfo, s.Chan)
			if cm := chans[obj]; cm != nil {
				cm.anySends++
			}
		}
		return true
	})
	return chans
}

// checkGoroBody proves (or fails to prove) one spawned body's exit.
func checkGoroBody(pass *Pass, t *FuncInfo, closed map[types.Object]bool,
	chans map[types.Object]*chanMake, reportedNode map[token.Pos]bool,
	badChans map[types.Object]*chanMake) {

	selectOf, hasDefault := indexSelectComms(t.Body)
	report := func(pos token.Pos, format string, args ...any) {
		if reportedNode[pos] {
			return
		}
		reportedNode[pos] = true
		pass.Reportf(pos, format, args...)
	}

	inspectOwn(t.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			tv, ok := pass.TypesInfo.Types[n.X]
			if !ok {
				return true
			}
			if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
				return true
			}
			obj, _ := rootSelObj(pass.TypesInfo, n.X)
			if obj == nil || !closed[obj] {
				report(n.Pos(),
					"goroutine %s ranges over a channel no function in this package "+
						"closes: the loop never exits and the goroutine leaks; close "+
						"the channel on the shutdown path",
					t.Name)
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopHasExit(n.Body) {
				report(n.Pos(),
					"goroutine %s loops forever with no return or break: no "+
						"statically provable exit; add a shutdown case (ctx.Done(), "+
						"closed channel) that returns",
					t.Name)
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || selectOf[n] != nil {
				return true
			}
			if _, isCall := ast.Unparen(n.X).(*ast.CallExpr); isCall {
				return true // <-x.Done(): the callee owns delivery
			}
			obj, _ := rootSelObj(pass.TypesInfo, n.X)
			if cm := chans[obj]; cm != nil && !closed[obj] && cm.anySends == 0 {
				report(n.Pos(),
					"goroutine %s receives from %q, which is never sent on or closed "+
						"in the spawning function: the receive blocks forever",
					t.Name, cm.name)
			}
		case *ast.SendStmt:
			obj, _ := rootSelObj(pass.TypesInfo, n.Chan)
			cm := chans[obj]
			if cm == nil {
				return true // other end lives elsewhere: out of scope
			}
			if sel := selectOf[n]; sel != nil {
				if hasDefault[sel] || selectHasEscape(pass, sel, closed) {
					return true
				}
			}
			if closed[obj] {
				return true // a close guarantees... nothing for senders, but chanclose owns send-after-close
			}
			if !cm.capOK || cm.loopSend || cm.capVal < cm.goSends {
				badChans[obj] = cm
			}
		}
		return true
	})
}

// loopHasExit reports whether a `for {}` body contains a return, break
// or goto among its own nodes (an over-approximation: a break may
// target an inner switch — accepted to keep false positives at zero).
func loopHasExit(body *ast.BlockStmt) bool {
	found := false
	inspectOwn(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.BranchStmt:
			if n.Tok == token.BREAK || n.Tok == token.GOTO {
				found = true
			}
		}
		return !found
	})
	return found
}

// indexSelectComms maps every node inside a select communication clause
// to its select, and records which selects have a default.
func indexSelectComms(body *ast.BlockStmt) (map[ast.Node]*ast.SelectStmt, map[*ast.SelectStmt]bool) {
	selectOf := map[ast.Node]*ast.SelectStmt{}
	hasDefault := map[*ast.SelectStmt]bool{}
	inspectOwn(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			comm := c.(*ast.CommClause)
			if comm.Comm == nil {
				hasDefault[sel] = true
				continue
			}
			ast.Inspect(comm.Comm, func(m ast.Node) bool {
				if m != nil {
					selectOf[m] = sel
				}
				return true
			})
		}
		return true
	})
	return selectOf, hasDefault
}

// selectHasEscape reports whether a select has a receive case that is
// guaranteed deliverable eventually: a receive from a call result
// (ctx.Done(), time.After) or from a channel the package closes.
func selectHasEscape(pass *Pass, sel *ast.SelectStmt, closed map[types.Object]bool) bool {
	for _, c := range sel.Body.List {
		comm := c.(*ast.CommClause)
		if comm.Comm == nil {
			continue
		}
		var recv ast.Expr
		switch s := comm.Comm.(type) {
		case *ast.ExprStmt:
			recv = s.X
		case *ast.AssignStmt:
			if len(s.Rhs) == 1 {
				recv = s.Rhs[0]
			}
		}
		u, ok := ast.Unparen(recv).(*ast.UnaryExpr)
		if !ok || u.Op != token.ARROW {
			continue
		}
		if _, isCall := ast.Unparen(u.X).(*ast.CallExpr); isCall {
			return true
		}
		if obj, _ := rootSelObj(pass.TypesInfo, u.X); obj != nil && closed[obj] {
			return true
		}
	}
	return false
}
