package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// FsyncOrder verifies the crash-consistency ordering discipline of
// internal/pagestore: every durable write must be followed by the
// matching Sync before any publish point — the WAL epoch publish
// (assignment to the `cur` field), the superblock flip (WriteMeta), or
// a WAL reset — on every path. The protocol is declared as an ordered
// op table (fsyncOps) so new durable operations extend it in one place.
//
// The analysis is a may-analysis over the CFG: a "possibly unsynced
// write outstanding" fact is genned by write-class ops, killed by
// sync-class ops, and checked at publish-class ops. Calls to
// same-package functions whose own exit may leave unsynced writes gen
// the fact too (a one-level summary computed to fixpoint), so a Commit
// that delegates its appends to a helper is still checked end to end.
var FsyncOrder = &Analyzer{
	Name: "fsyncorder",
	Doc: "durable writes (WAL append, page image, block write) must be " +
		"fsynced before any epoch publish, superblock flip, or WAL reset " +
		"on every path",
	Run: runFsyncOrder,
}

// fsyncOpClass classifies one method of the durability protocol.
type fsyncOpClass int

const (
	fsyncWrite   fsyncOpClass = iota // dirties the store
	fsyncSync                        // makes all prior writes durable
	fsyncPublish                     // point of no return: must be clean
)

// fsyncOp is one row of the declared protocol table. Methods are
// matched by receiver type name and method name so the golden testdata
// (which may only import the stdlib) can mirror the protocol with local
// mock types.
type fsyncOp struct {
	recv   string // receiver type name ("" = any)
	method string
	class  fsyncOpClass
	// alsoWrites marks publish ops that themselves dirty the store
	// (WriteMeta writes the superblock it just flipped to).
	alsoWrites bool
}

var fsyncOps = []fsyncOp{
	// Write class: anything that mutates durable state.
	{recv: "WAL", method: "Append", class: fsyncWrite},
	{recv: "FileStore", method: "WriteImage", class: fsyncWrite},
	{recv: "FileStore", method: "ZeroPage", class: fsyncWrite},
	{recv: "", method: "WriteAt", class: fsyncWrite}, // BlockFile seam and mocks
	{recv: "", method: "Truncate", class: fsyncWrite},
	// Sync class: flushes every outstanding write on its store. The
	// analysis treats any sync as discharging all writes — the repo's
	// stores share one underlying device and the protocol orders whole
	// phases, not per-file flushes.
	{recv: "WAL", method: "Sync", class: fsyncSync},
	{recv: "FileStore", method: "Sync", class: fsyncSync},
	{recv: "", method: "Sync", class: fsyncSync},
	// Publish class: the crash-atomicity hinge points.
	{recv: "WAL", method: "Reset", class: fsyncPublish},
	{recv: "FileStore", method: "WriteMeta", class: fsyncPublish, alsoWrites: true},
}

// fsyncPublishField: an assignment to a field with this name is the
// epoch publish (DurableStore.cur flips the visible epoch).
const fsyncPublishField = "cur"

var fsyncOrderPackages = map[string]bool{
	"repro/internal/pagestore": true,
}

func inFsyncOrderScope(path, analyzer string) bool {
	path = normalizePkgPath(path)
	return fsyncOrderPackages[path] || strings.HasPrefix(path, analyzer)
}

// lookupFsyncOp classifies a call against the table, preferring
// receiver-specific rows over wildcard rows.
func lookupFsyncOp(info *types.Info, call *ast.CallExpr) (fsyncOp, bool) {
	fn := callee(info, call)
	if fn == nil {
		return fsyncOp{}, false
	}
	recv := recvTypeName(fn)
	if recv == "" {
		return fsyncOp{}, false // plain functions are covered by summaries
	}
	var wild *fsyncOp
	for i := range fsyncOps {
		op := &fsyncOps[i]
		if op.method != fn.Name() {
			continue
		}
		if op.recv == recv {
			return *op, true
		}
		if op.recv == "" && wild == nil {
			wild = op
		}
	}
	if wild != nil {
		return *wild, true
	}
	return fsyncOp{}, false
}

// recvTypeName returns the bare receiver type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// isEpochPublish reports whether stmt assigns to a field named
// fsyncPublishField (e.g. `s.cur = next`).
func isEpochPublish(n ast.Node) (ast.Node, bool) {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return nil, false
	}
	for _, lhs := range as.Lhs {
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == fsyncPublishField {
			return as, true
		}
	}
	return nil, false
}

func runFsyncOrder(pass *Pass) error {
	if !inFsyncOrderScope(pass.Pkg.Path(), pass.Analyzer.Name) {
		return nil
	}

	// Phase 1: function summaries — may this function's normal exit
	// leave an unsynced write outstanding (assuming clean entry)?
	// Iterated to fixpoint because helpers may call each other.
	dirtyExit := map[*types.Func]bool{}
	type fnBody struct {
		obj  *types.Func
		body *ast.BlockStmt
	}
	var fns []fnBody
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				fns = append(fns, fnBody{obj, fd.Body})
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			d := fsyncDirtyAtExit(pass, fn.body, dirtyExit)
			if d != dirtyExit[fn.obj] {
				dirtyExit[fn.obj] = d
				changed = true
			}
		}
	}

	// Phase 2: report. Every function body (literals included) is
	// checked at its publish points.
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkFsyncOrder(pass, declName(decl, lit), body, dirtyExit)
		})
	}
	return nil
}

// fsyncApplyNode folds one CFG node's protocol effects into the dirty
// bit, invoking onPublish (may be nil) at each publish point with the
// dirty state just before it. Nested function literals are their own
// functions and are skipped.
func fsyncApplyNode(pass *Pass, n ast.Node, dirty bool, summaries map[*types.Func]bool, onPublish func(n ast.Node, label string, dirty bool)) bool {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, isLit := m.(*ast.FuncLit); isLit {
			return false
		}
		if as, ok := isEpochPublish(m); ok {
			if onPublish != nil {
				onPublish(as, "epoch publish ("+fsyncPublishField+" flip)", dirty)
			}
			return true
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if op, ok := lookupFsyncOp(pass.TypesInfo, call); ok {
			switch op.class {
			case fsyncWrite:
				dirty = true
			case fsyncSync:
				dirty = false
			case fsyncPublish:
				if onPublish != nil {
					onPublish(call, op.method, dirty)
				}
				if op.alsoWrites {
					dirty = true
				}
			}
			return true
		}
		// A call to a same-package function that may exit dirty
		// dirties the caller too.
		if fn := callee(pass.TypesInfo, call); fn != nil && summaries[fn] {
			dirty = true
		}
		return true
	})
	return dirty
}

// fsyncDirtyAtExit runs the may-analysis and reports whether the dirty
// bit can reach the normal exit.
func fsyncDirtyAtExit(pass *Pass, body *ast.BlockStmt, summaries map[*types.Func]bool) bool {
	cfg := BuildCFG(body)
	transfer := func(b *Block, in BitSet) []BitSet {
		dirty := in.Has(0)
		for _, n := range b.Nodes {
			dirty = fsyncApplyNode(pass, n, dirty, summaries, nil)
		}
		out := NewBitSet(1)
		if dirty {
			out.Set(0)
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: 1, Must: false, Transfer: transfer})
	return ins[cfg.Exit].Has(0)
}

// checkFsyncOrder reports publish points reachable with a possibly
// unsynced write outstanding.
func checkFsyncOrder(pass *Pass, fname string, body *ast.BlockStmt, summaries map[*types.Func]bool) {
	cfg := BuildCFG(body)
	transfer := func(b *Block, in BitSet) []BitSet {
		dirty := in.Has(0)
		for _, n := range b.Nodes {
			dirty = fsyncApplyNode(pass, n, dirty, summaries, nil)
		}
		out := NewBitSet(1)
		if dirty {
			out.Set(0)
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: 1, Must: false, Transfer: transfer})

	// Walk each block again from its fixpoint in-state, this time with
	// the publish callback armed; dedupe so a publish inside a loop
	// reports once.
	reported := map[ast.Node]bool{}
	for i, b := range cfg.Blocks {
		dirty := ins[i].Has(0)
		for _, n := range b.Nodes {
			dirty = fsyncApplyNode(pass, n, dirty, summaries, func(at ast.Node, label string, d bool) {
				if d && !reported[at] {
					reported[at] = true
					pass.Reportf(at.Pos(),
						"%s reaches %s with a possibly unsynced durable write outstanding: "+
							"the protocol requires Sync before any publish point on every path",
						fname, label)
				}
			})
		}
	}
}
