package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// This file is the control-flow layer under the path-sensitive
// analyzers (tracepair, fsyncorder, ctxcancel, errlost): a basic-block
// CFG built from a function body's syntax, standing in for
// golang.org/x/tools/go/cfg (unavailable offline). The builder handles
// if/for/range/switch/type-switch/select, labeled and unlabeled
// break/continue, goto, return, and calls that never return (panic,
// os.Exit); defer and go statements stay in their block as ordinary
// nodes and analyzers decide their semantics (see CFG.Defers).
//
// Function literals are NOT inlined: each *ast.FuncLit body is its own
// function with its own CFG — analyzers walk them separately via
// funcBodies.

// Block is one basic block: a straight-line run of statements and
// expressions with branching only at the end.
type Block struct {
	Index int
	// Nodes holds the block's statements in execution order. Branch
	// conditions (if/for/switch tags, range operands) are appended as
	// bare ast.Expr nodes so transfer functions see every evaluation.
	Nodes []ast.Node
	Succs []Edge
	// Label names the block's role for CFG tests and debug dumps
	// ("entry", "if.then", "for.head", "select.case", ...).
	Label string
}

// Edge is one control-flow successor. When Cond is non-nil the edge is
// taken only for that boolean outcome of the condition (Negated false =
// condition true), which is what lets analyzers refine facts on
// branches — e.g. the false edge of `obs != nil` proves the observer
// nil on that path.
type Edge struct {
	To      int
	Cond    ast.Expr
	Negated bool
}

// CFG is one function body's control-flow graph. Blocks[Entry] is the
// entry; every return statement (and falling off the end) flows to
// Blocks[Exit]; panics and other no-return calls flow to Blocks[Panic].
// The Exit and Panic blocks are always empty.
type CFG struct {
	Blocks []*Block
	Entry  int
	Exit   int
	Panic  int
	// Defers lists every defer statement in the function in source
	// order. A registered defer runs at every function exit reached
	// after its registration point — analyzers for "must eventually
	// happen" properties may treat the registration as the action.
	Defers []*ast.DeferStmt
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		cfg:    &CFG{},
		labels: map[string]*labelInfo{},
	}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	panicB := b.newBlock("panic")
	b.cfg.Entry, b.cfg.Exit, b.cfg.Panic = entry.Index, exit.Index, panicB.Index
	b.cur = entry
	b.stmtList(body.List)
	// Falling off the end of the body is an implicit return.
	b.jump(b.cur, exit)
	return b.cfg
}

// labelInfo tracks one label's targets: the goto/entry block and, when
// the labeled statement is a loop/switch/select, its break and continue
// targets.
type labelInfo struct {
	block *Block // target of goto L and entry of the labeled statement
	brk   *Block // target of break L (nil until the labeled stmt is built)
	cont  *Block // target of continue L (loops only)
}

// loopFrame is one enclosing breakable construct: loops push both
// targets, switch/select push brk only.
type loopFrame struct {
	brk  *Block
	cont *Block // nil for switch/select
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block
	loops  []loopFrame
	labels map[string]*labelInfo
	// pendingLabel is set between a LabeledStmt and the construct it
	// labels, so the construct registers its break/continue targets.
	pendingLabel *labelInfo
}

func (b *cfgBuilder) newBlock(label string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Label: label}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// jump adds an unconditional edge.
func (b *cfgBuilder) jump(from, to *Block) {
	from.Succs = append(from.Succs, Edge{To: to.Index})
}

// branch adds a conditional edge.
func (b *cfgBuilder) branch(from, to *Block, cond ast.Expr, negated bool) {
	from.Succs = append(from.Succs, Edge{To: to.Index, Cond: cond, Negated: negated})
}

// dead replaces the current block with a fresh unreachable one, after a
// terminator (return, panic, goto, break, continue). Statically
// unreachable code lands there with no predecessors; must-analyses see
// ⊤ for it and stay quiet, which is the behavior we want.
func (b *cfgBuilder) dead() {
	b.cur = b.newBlock("unreachable")
}

func (b *cfgBuilder) label(name string) *labelInfo {
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{block: b.newBlock("label." + name)}
		b.labels[name] = li
	}
	return li
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.cur, b.cfg.Blocks[b.cfg.Exit])
		b.dead()

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.jump(b.cur, li.block)
		b.cur = li.block
		b.pendingLabel = li
		b.stmt(s.Stmt)
		b.pendingLabel = nil

	case *ast.BranchStmt:
		b.branchStmt(s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body, "switch")

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body, "typeswitch")

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.DeferStmt:
		b.cfg.Defers = append(b.cfg.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && isNoReturnCall(call) {
			b.jump(b.cur, b.cfg.Blocks[b.cfg.Panic])
			b.dead()
		}

	default:
		// Assignments, declarations, sends, inc/dec, go, empty: plain
		// block members.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

func (b *cfgBuilder) branchStmt(s *ast.BranchStmt) {
	b.cur.Nodes = append(b.cur.Nodes, s)
	var target *Block
	switch s.Tok {
	case token.GOTO:
		target = b.label(s.Label.Name).block
	case token.BREAK:
		if s.Label != nil {
			target = b.label(s.Label.Name).brk
		} else if len(b.loops) > 0 {
			target = b.loops[len(b.loops)-1].brk
		}
	case token.CONTINUE:
		if s.Label != nil {
			target = b.label(s.Label.Name).cont
		} else {
			for i := len(b.loops) - 1; i >= 0; i-- {
				if b.loops[i].cont != nil {
					target = b.loops[i].cont
					break
				}
			}
		}
	case token.FALLTHROUGH:
		// Handled structurally by switchStmt; nothing to do here.
		return
	}
	if target != nil {
		b.jump(b.cur, target)
	}
	b.dead()
}

func (b *cfgBuilder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	cond := b.cur
	join := b.newBlock("if.join")

	then := b.newBlock("if.then")
	b.branch(cond, then, s.Cond, false)
	b.cur = then
	b.stmt(s.Body)
	b.jump(b.cur, join)

	if s.Else != nil {
		els := b.newBlock("if.else")
		b.branch(cond, els, s.Cond, true)
		b.cur = els
		b.stmt(s.Else)
		b.jump(b.cur, join)
	} else {
		b.branch(cond, join, s.Cond, true)
	}
	b.cur = join
}

func (b *cfgBuilder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.newBlock("for.head")
	body := b.newBlock("for.body")
	join := b.newBlock("for.join")
	post := head
	if s.Post != nil {
		post = b.newBlock("for.post")
	}
	b.jump(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
		b.branch(head, body, s.Cond, false)
		b.branch(head, join, s.Cond, true)
	} else {
		b.jump(head, body) // `for {}`: join reachable only via break
	}
	b.pushLoop(join, post)
	b.cur = body
	b.stmt(s.Body)
	b.jump(b.cur, post)
	if s.Post != nil {
		post.Nodes = append(post.Nodes, s.Post)
		b.jump(post, head)
	}
	b.popLoop()
	b.cur = join
}

func (b *cfgBuilder) rangeStmt(s *ast.RangeStmt) {
	// The range statement itself (operand + per-iteration assignment)
	// lives in the head; head branches to the body (another element) or
	// the join (exhausted).
	head := b.newBlock("range.head")
	body := b.newBlock("range.body")
	join := b.newBlock("range.join")
	b.jump(b.cur, head)
	head.Nodes = append(head.Nodes, s)
	b.jump(head, body)
	b.jump(head, join)
	b.pushLoop(join, head)
	b.cur = body
	b.stmt(s.Body)
	b.jump(b.cur, head)
	b.popLoop()
	b.cur = join
}

// switchStmt builds expression and type switches: every case body is a
// block between the head and the join; fallthrough chains into the next
// clause's body. A switch with no default can skip every clause.
func (b *cfgBuilder) switchStmt(init ast.Stmt, tag ast.Expr, guard ast.Stmt, body *ast.BlockStmt, label string) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if guard != nil {
		b.cur.Nodes = append(b.cur.Nodes, guard)
	}
	head := b.cur
	join := b.newBlock(label + ".join")
	b.pushSwitch(join)

	var clauses []*ast.CaseClause
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock(label + ".case")
		if c.List == nil {
			hasDefault = true
		}
		b.jump(head, blocks[i])
	}
	if !hasDefault {
		b.jump(head, join)
	}
	for i, c := range clauses {
		b.cur = blocks[i]
		for _, e := range c.List {
			b.cur.Nodes = append(b.cur.Nodes, e)
		}
		falls := false
		for _, s := range c.Body {
			if br, ok := s.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				falls = true
				continue
			}
			b.stmt(s)
		}
		if falls && i+1 < len(blocks) {
			b.jump(b.cur, blocks[i+1])
		} else {
			b.jump(b.cur, join)
		}
	}
	b.popLoop()
	b.cur = join
}

func (b *cfgBuilder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	join := b.newBlock("select.join")
	b.pushSwitch(join)
	for _, c := range s.Body.List {
		comm := c.(*ast.CommClause)
		blk := b.newBlock("select.case")
		b.jump(head, blk)
		b.cur = blk
		if comm.Comm != nil {
			b.stmt(comm.Comm)
		}
		b.stmtList(comm.Body)
		b.jump(b.cur, join)
	}
	b.popLoop()
	b.cur = join
	// A select with no cases blocks forever; its join has one pred per
	// case, so an empty select's join is unreachable — accurate enough.
}

func (b *cfgBuilder) pushLoop(brk, cont *Block) {
	b.loops = append(b.loops, loopFrame{brk: brk, cont: cont})
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel.cont = cont
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) pushSwitch(brk *Block) {
	b.loops = append(b.loops, loopFrame{brk: brk})
	if b.pendingLabel != nil {
		b.pendingLabel.brk = brk
		b.pendingLabel = nil
	}
}

func (b *cfgBuilder) popLoop() { b.loops = b.loops[:len(b.loops)-1] }

// isNoReturnCall recognizes calls that never return to the caller:
// panic and os.Exit (syntactic — shadowing either name defeats it,
// which no sane code does).
func isNoReturnCall(call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name == "os" && fun.Sel.Name == "Exit"
		}
	}
	return false
}

// Dump renders the CFG for tests and debugging: one line per block with
// its label and successor indices.
func (c *CFG) Dump() string {
	var sb strings.Builder
	for _, blk := range c.Blocks {
		fmt.Fprintf(&sb, "%d[%s] ->", blk.Index, blk.Label)
		for _, e := range blk.Succs {
			if e.Cond != nil {
				if e.Negated {
					fmt.Fprintf(&sb, " !%d", e.To)
				} else {
					fmt.Fprintf(&sb, " +%d", e.To)
				}
			} else {
				fmt.Fprintf(&sb, " %d", e.To)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// funcBodies invokes fn for every function body in the file: named
// declarations and every function literal, each treated as its own
// function (a literal's CFG is not inlined into its enclosing one).
func funcBodies(f *ast.File, fn func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		fn(fd, nil, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				fn(fd, lit, lit.Body)
			}
			return true
		})
	}
}
