package lint

import (
	"strings"
	"testing"
)

// This file pins the acceptance criteria for the concurrency analyzers
// as fail-before/pass-after pairs: each "broken" fixture reintroduces a
// bug class the suite must catch with EXACTLY one diagnostic under the
// full analyzer set (no noise, no duplicates), and the "fixed" twin —
// the shape the repo actually ships — must be completely clean. The
// fixture import paths carry an analyzer-name prefix so
// inConcurrencyScope treats them as concurrency-bearing.

// runAll loads src under importPath and runs the full suite.
func runAll(t *testing.T, importPath, src string) []Diagnostic {
	t.Helper()
	pkg := parseAs(t, importPath, src)
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func assertOne(t *testing.T, diags []Diagnostic, analyzer, msgPart string) {
	t.Helper()
	if len(diags) != 1 {
		t.Fatalf("want exactly 1 diagnostic, got %d: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Analyzer != analyzer {
		t.Errorf("want analyzer %q, got %q (%s)", analyzer, d.Analyzer, d.Message)
	}
	if !strings.Contains(d.Message, msgPart) {
		t.Errorf("message %q does not contain %q", d.Message, msgPart)
	}
}

func assertClean(t *testing.T, diags []Diagnostic) {
	t.Helper()
	for _, d := range diags {
		t.Errorf("want clean, got [%s] %s", d.Analyzer, d.Message)
	}
}

// TestRegressionLockOrderInversion reintroduces a lock-order inversion
// between the bufferpool's shard mutex and the pagestore's store mutex:
// two call paths acquiring {shard.mu, DurableStore.mu} in opposite
// orders form a cycle in the global order graph. One diagnostic; the
// consistent-order twin is clean.
func TestRegressionLockOrderInversion(t *testing.T) {
	const broken = `package inv

import "sync"

type shard struct {
	mu   sync.Mutex
	hits int
}

type DurableStore struct {
	mu    sync.Mutex
	dirty int
}

// evict pins the page under the shard lock, then marks the store.
func evict(s *shard, d *DurableStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.mu.Lock()
	d.dirty++
	d.mu.Unlock()
	s.hits++
}

// checkpoint walks the store, touching each shard: the reverse order.
func checkpoint(d *DurableStore, s *shard) {
	d.mu.Lock()
	defer d.mu.Unlock()
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	d.dirty++
}
`
	assertOne(t, runAll(t, "lockorder_inversion", broken),
		"lockorder", "lock-order cycle")

	const fixed = `package inv

import "sync"

type shard struct {
	mu   sync.Mutex
	hits int
}

type DurableStore struct {
	mu    sync.Mutex
	dirty int
}

func evict(s *shard, d *DurableStore) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d.mu.Lock()
	d.dirty++
	d.mu.Unlock()
	s.hits++
}

// checkpoint now acquires shard.mu first, matching evict.
func checkpoint(d *DurableStore, s *shard) {
	s.mu.Lock()
	s.hits++
	s.mu.Unlock()
	d.mu.Lock()
	d.dirty++
	d.mu.Unlock()
}
`
	assertClean(t, runAll(t, "lockorder_inversion", fixed))
}

// TestRegressionWorkerDoneDeleted deletes the `defer wg.Done()` from an
// engine-shaped worker: the WaitGroup Add in the spawner is never
// consumed, so Close's Wait hangs. One diagnostic, at the Add; the real
// shape with the deferred Done is clean.
func TestRegressionWorkerDoneDeleted(t *testing.T) {
	const broken = `package eng

import "sync"

type Engine struct {
	workers sync.WaitGroup
	queues  []chan int
}

func New(n int) *Engine {
	e := &Engine{queues: make([]chan int, n)}
	for i := range e.queues {
		e.queues[i] = make(chan int, 4)
		e.workers.Add(1)
		go e.worker(i)
	}
	return e
}

func (e *Engine) worker(i int) {
	for v := range e.queues[i] {
		_ = v
	}
}

func (e *Engine) Close() {
	for _, q := range e.queues {
		close(q)
	}
	e.workers.Wait()
}
`
	assertOne(t, runAll(t, "wgbalance_engine", broken),
		"wgbalance", "workers.Add has no matching Done")

	const fixed = `package eng

import "sync"

type Engine struct {
	workers sync.WaitGroup
	queues  []chan int
}

func New(n int) *Engine {
	e := &Engine{queues: make([]chan int, n)}
	for i := range e.queues {
		e.queues[i] = make(chan int, 4)
		e.workers.Add(1)
		go e.worker(i)
	}
	return e
}

func (e *Engine) worker(i int) {
	defer e.workers.Done()
	for v := range e.queues[i] {
		_ = v
	}
}

func (e *Engine) Close() {
	for _, q := range e.queues {
		close(q)
	}
	e.workers.Wait()
}
`
	assertClean(t, runAll(t, "wgbalance_engine", fixed))
}

// TestRegressionHedgedBufferRemoved strips the buffer from the
// hedged-read result channel: with two static senders and capacity
// zero, the losing replica's send blocks forever and leaks its
// goroutine. One diagnostic, at the make site; the buffered original is
// clean.
func TestRegressionHedgedBufferRemoved(t *testing.T) {
	const broken = `package hedge

func readHedged(primary, mirror func() int) int {
	out := make(chan int)
	go func() { out <- primary() }()
	go func() { out <- mirror() }()
	return <-out
}
`
	assertOne(t, runAll(t, "goroleak_hedged", broken),
		"goroleak", "2 static goroutine sender(s) but capacity 0")

	const fixed = `package hedge

func readHedged(primary, mirror func() int) int {
	out := make(chan int, 2)
	go func() { out <- primary() }()
	go func() { out <- mirror() }()
	return <-out
}
`
	assertClean(t, runAll(t, "goroleak_hedged", fixed))
}
