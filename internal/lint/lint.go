// Package lint is a repo-specific static-analysis suite guarding the
// invariants this reproduction depends on: bit-identical results across
// the immediate driver, the event-driven simulator and the concurrent
// engine (determinism), exact float comparison discipline, documented
// mutex protection, and telemetry snapshot completeness.
//
// The framework mirrors golang.org/x/tools/go/analysis (Analyzer, Pass,
// Diagnostic) but is built on the standard library only — the build
// environment is offline, so x/tools cannot be vendored. Analyzers run
// in two drivers: the unitchecker-protocol vettool (cmd/simquerylint via
// `go vet -vettool=...`, see vettool.go) and the source-importer loader
// used by the golden tests (source.go).
//
// # Suppressions
//
// A finding that is intentional is silenced in place with
//
//	//lint:allow <analyzer> <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory; a directive without one is itself reported. Suppressions
// are deliberately loud in review — they are the documented escape
// hatch, not a default.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a single type-checked
// package through the Pass and reports findings via Pass.Reportf.
type Analyzer struct {
	Name string // short lowercase identifier, used in //lint:allow
	Doc  string // one-paragraph description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an
// analyzer, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos lies in a _test.go file. The analyzers
// enforce production-path invariants; tests legitimately measure wall
// time, shuffle with the global source, and compare floats exactly.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		SimDeterminism,
		FloatCmp,
		LockCheck,
		StatsComplete,
		TracePair,
		FsyncOrder,
		CtxCancel,
		ErrLost,
		LockOrder,
		GoroLeak,
		WgBalance,
		ChanClose,
	}
}

// Package bundles one loaded, type-checked package for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// RunAnalyzers executes the analyzers over pkg and returns the
// surviving diagnostics, position-sorted, with //lint:allow
// suppressions applied. Malformed directives (missing reason, unknown
// format) are returned as diagnostics of the pseudo-analyzer "lint".
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	kept, _, err := runAnalyzers(pkg, analyzers)
	return kept, err
}

// Audit runs the analyzers and additionally reports every well-formed
// //lint:allow directive that suppressed nothing — a stale suppression
// whose finding has since been fixed (or whose analyzer never fires
// there). Stale directives come back as diagnostics of the
// pseudo-analyzer "audit" so the drivers print and gate on them like
// any other finding. The analyzer set should be All(): auditing against
// a subset would falsely flag directives owned by the missing
// analyzers.
func Audit(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	kept, allows, err := runAnalyzers(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	known := map[string]bool{}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, d := range allows.directives {
		if d.used {
			continue
		}
		if !known[d.analyzer] {
			kept = append(kept, Diagnostic{
				Pos:      d.pos,
				Analyzer: "audit",
				Message:  fmt.Sprintf("//lint:allow names unknown analyzer %q", d.analyzer),
			})
			continue
		}
		kept = append(kept, Diagnostic{
			Pos:      d.pos,
			Analyzer: "audit",
			Message: fmt.Sprintf("stale //lint:allow %s: no %s finding on this line or the one below; "+
				"delete the directive (the suppressed issue is gone)", d.analyzer, d.analyzer),
		})
	}
	sortDiags(kept)
	return kept, nil
}

func runAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, *allowSet, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	allows, malformed := collectAllows(pkg.Fset, pkg.Files)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.covers(pkg.Fset.Position(d.Pos), d.Analyzer) {
			kept = append(kept, d)
		}
	}
	kept = append(kept, malformed...)
	sortDiags(kept)
	return kept, allows, nil
}

func sortDiags(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// allowDirective is one parsed //lint:allow comment; used flips when it
// suppresses a finding, feeding the audit.
type allowDirective struct {
	pos      token.Pos
	analyzer string
	used     bool
}

// allowSet indexes //lint:allow directives by file and line.
type allowSet struct {
	byLine     map[string]map[int][]*allowDirective // filename -> line -> directives
	directives []*allowDirective
}

func (s *allowSet) covers(pos token.Position, analyzer string) bool {
	lines := s.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	// A directive suppresses findings on its own line (trailing
	// comment) and on the line below it (comment above the statement).
	hit := false
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range lines[line] {
			if d.analyzer == analyzer {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

const allowPrefix = "//lint:allow"

func collectAllows(fset *token.FileSet, files []*ast.File) (*allowSet, []Diagnostic) {
	set := &allowSet{byLine: map[string]map[int][]*allowDirective{}}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, allowPrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  "malformed //lint:allow directive: want \"//lint:allow <analyzer> <reason>\"",
					})
					continue
				}
				p := fset.Position(c.Pos())
				if set.byLine[p.Filename] == nil {
					set.byLine[p.Filename] = map[int][]*allowDirective{}
				}
				d := &allowDirective{pos: c.Pos(), analyzer: fields[0]}
				set.byLine[p.Filename][p.Line] = append(set.byLine[p.Filename][p.Line], d)
				set.directives = append(set.directives, d)
			}
		}
	}
	return set, malformed
}

// normalizePkgPath strips the test-variant suffix cmd/go appends when
// vetting a package's test unit ("repro/internal/query
// [repro/internal/query.test]"), so path-scoped analyzers recognize the
// package either way.
func normalizePkgPath(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}

// callee resolves the *types.Func a call invokes, or nil for builtins,
// type conversions and indirect calls through function values.
func callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// exprString renders the stable "root path" of an expression for
// matching lock receivers: identifiers and field selections print as
// written; anything more dynamic (calls, indexing) collapses to "".
func exprString(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprString(e.X)
	}
	return ""
}

// isFloat reports whether t's underlying type is float32 or float64.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
