package lint

import (
	"bytes"
	"encoding/json"
	"go/token"
	"path/filepath"
	"strings"
	"testing"
)

// TestRepoProtocolsClean is the standing gate behind the PR 8 fixes: it
// loads the whole module from source and requires the full analyzer
// suite — including the suppression audit — to come back empty. Any
// reintroduced unpaired trace event, unsynced publish, leaked cancel,
// dropped storage error, or stale //lint:allow fails this test (and
// `make analyze`/`make audit`, which run the same code).
func TestRepoProtocolsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module source load")
	}
	root := filepath.Join("..", "..")
	pkgs, err := LoadModule(root, "repro")
	if err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("LoadModule found only %d packages — the walk is broken", len(pkgs))
	}
	for _, pkg := range pkgs {
		diags, err := Audit(pkg, All())
		if err != nil {
			t.Fatalf("%s: %v", pkg.Pkg.Path(), err)
		}
		for _, d := range diags {
			t.Errorf("%s: [%s] %s", pkg.Fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
}

// TestAuditReportsStaleDirective pins the audit semantics: a directive
// that suppresses a live finding is kept silent, one that suppresses
// nothing is reported as stale at its own position.
func TestAuditReportsStaleDirective(t *testing.T) {
	pkg := parseOnly(t, "p.go", `package p

type T struct{ A int }

func Snapshot() T {
	return T{} //lint:allow statscomplete literal filled by the caller
}

func Stale() T {
	//lint:allow floatcmp nothing here ever compared floats
	return T{A: 1}
}
`)
	diags, err := Audit(pkg, []*Analyzer{StatsComplete, FloatCmp})
	if err != nil {
		t.Fatal(err)
	}
	var stale []string
	for _, d := range diags {
		if d.Analyzer != "audit" {
			t.Errorf("unexpected non-audit diagnostic: [%s] %s", d.Analyzer, d.Message)
			continue
		}
		stale = append(stale, d.Message)
	}
	if len(stale) != 1 || !strings.Contains(stale[0], "stale //lint:allow floatcmp") {
		t.Errorf("want exactly one stale floatcmp directive, got %v", stale)
	}
}

// TestSortFindings pins the module-wide output order: findings are
// sorted by file, line, column, analyzer, then message — independent of
// package load order — so the text, -github and SARIF outputs are
// byte-stable across runs.
func TestSortFindings(t *testing.T) {
	pos := func(file string, line, col int) token.Position {
		return token.Position{Filename: file, Line: line, Column: col}
	}
	findings := []Finding{
		{Position: pos("b.go", 3, 1), Analyzer: "goroleak", Message: "m1"},
		{Position: pos("a.go", 9, 2), Analyzer: "lockorder", Message: "m2"},
		{Position: pos("a.go", 9, 2), Analyzer: "chanclose", Message: "m3"},
		{Position: pos("a.go", 9, 1), Analyzer: "wgbalance", Message: "m4"},
		{Position: pos("a.go", 2, 5), Analyzer: "lockorder", Message: "m5"},
		{Position: pos("a.go", 9, 2), Analyzer: "chanclose", Message: "m0"},
	}
	sortFindings(findings)
	var got []string
	for _, f := range findings {
		got = append(got, f.Message)
	}
	want := []string{"m5", "m4", "m0", "m3", "m2", "m1"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

// TestWriteSARIF round-trips a small findings set through the writer
// and checks the 2.1.0 shape GitHub ingests: version, rule table,
// per-result level and repo-relative location.
func TestWriteSARIF(t *testing.T) {
	findings := []Finding{
		{
			Position: token.Position{Filename: "/repo/internal/exec/engine.go", Line: 42, Column: 3},
			Analyzer: "tracepair",
			Message:  "unpaired StageDone",
		},
		{
			Position: token.Position{Filename: "/repo/a_test.go", Line: 7, Column: 1},
			Analyzer: "audit",
			Message:  "stale //lint:allow",
		},
	}
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, "/repo", All(), findings); err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Schema  string `json:"$schema"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID string `json:"id"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID    string `json:"ruleId"`
				Level     string `json:"level"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if log.Version != "2.1.0" || !strings.Contains(log.Schema, "sarif-2.1.0") {
		t.Errorf("version/schema = %q/%q", log.Version, log.Schema)
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "simquerylint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	for _, want := range []string{"tracepair", "fsyncorder", "ctxcancel", "errlost",
		"lockorder", "goroleak", "wgbalance", "chanclose", "audit", "lint"} {
		if !ruleIDs[want] {
			t.Errorf("rule table missing %q", want)
		}
	}
	if len(run.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(run.Results))
	}
	if got := run.Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; got != "internal/exec/engine.go" {
		t.Errorf("result URI %q not repo-relative", got)
	}
	if run.Results[0].Level != "error" || run.Results[1].Level != "warning" {
		t.Errorf("levels = %q/%q, want error/warning", run.Results[0].Level, run.Results[1].Level)
	}
	if run.Results[0].Locations[0].PhysicalLocation.Region.StartLine != 42 {
		t.Errorf("startLine = %d", run.Results[0].Locations[0].PhysicalLocation.Region.StartLine)
	}
}
