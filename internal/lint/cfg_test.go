package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// buildFuncCFG parses src (a file fragment containing one function F)
// and builds its CFG.
func buildFuncCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package p\n\nimport \"os\"\n\nvar _ = os.Exit\n\nfunc F() " + body
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "F" {
			return BuildCFG(fd.Body)
		}
	}
	t.Fatal("no func F")
	return nil
}

// reaches reports whether `to` is reachable from `from` along CFG edges.
func reaches(c *CFG, from, to int) bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(int) bool
	walk = func(i int) bool {
		if i == to {
			return true
		}
		if seen[i] {
			return false
		}
		seen[i] = true
		for _, e := range c.Blocks[i].Succs {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

// blockByLabel returns the first block with the given label.
func blockByLabel(t *testing.T, c *CFG, label string) *Block {
	t.Helper()
	for _, b := range c.Blocks {
		if b.Label == label {
			return b
		}
	}
	t.Fatalf("no block labeled %q in\n%s", label, c.Dump())
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	c := buildFuncCFG(t, `{
	x := 1
	_ = x
	return
}`)
	if !reaches(c, c.Entry, c.Exit) {
		t.Fatalf("exit unreachable:\n%s", c.Dump())
	}
	entry := c.Blocks[c.Entry]
	if len(entry.Nodes) != 3 { // assign, assign, return
		t.Errorf("entry has %d nodes, want 3:\n%s", len(entry.Nodes), c.Dump())
	}
}

func TestCFGIfBranches(t *testing.T) {
	c := buildFuncCFG(t, `{
	x := 1
	if x > 0 {
		x = 2
	} else {
		x = 3
	}
	_ = x
}`)
	entry := c.Blocks[c.Entry]
	var pos, neg int
	for _, e := range entry.Succs {
		if e.Cond == nil {
			t.Errorf("if edge missing condition:\n%s", c.Dump())
		} else if e.Negated {
			neg++
		} else {
			pos++
		}
	}
	if pos != 1 || neg != 1 {
		t.Errorf("if: got %d positive, %d negated cond edges, want 1/1:\n%s", pos, neg, c.Dump())
	}
}

func TestCFGDeferRecorded(t *testing.T) {
	c := buildFuncCFG(t, `{
	defer println("a")
	if true {
		defer println("b")
	}
}`)
	if len(c.Defers) != 2 {
		t.Fatalf("got %d defers, want 2", len(c.Defers))
	}
	// The conditional defer sits in the then-block, not the entry.
	then := blockByLabel(t, c, "if.then")
	found := false
	for _, n := range then.Nodes {
		if _, ok := n.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Errorf("conditional defer not in if.then block:\n%s", c.Dump())
	}
}

func TestCFGPanicEdge(t *testing.T) {
	c := buildFuncCFG(t, `{
	x := 1
	if x > 0 {
		panic("boom")
	}
	_ = x
}`)
	then := blockByLabel(t, c, "if.then")
	toPanic := false
	for _, e := range then.Succs {
		if e.To == c.Panic {
			toPanic = true
		}
	}
	if !toPanic {
		t.Errorf("panic call does not edge to the panic block:\n%s", c.Dump())
	}
	// The join after the if must not be reachable from the then-block:
	// panic never falls through.
	join := blockByLabel(t, c, "if.join")
	if reaches(c, then.Index, join.Index) {
		t.Errorf("flow continues past panic:\n%s", c.Dump())
	}
	// os.Exit behaves the same.
	c = buildFuncCFG(t, `{
	os.Exit(2)
	println("dead")
}`)
	if reaches(c, c.Entry, c.Exit) {
		t.Errorf("flow continues past os.Exit to the normal exit:\n%s", c.Dump())
	}
}

func TestCFGSelectEdges(t *testing.T) {
	c := buildFuncCFG(t, `{
	ch := make(chan int)
	done := make(chan bool)
	select {
	case v := <-ch:
		_ = v
	case <-done:
		return
	default:
	}
	println("after")
}`)
	cases := 0
	for _, b := range c.Blocks {
		if b.Label == "select.case" {
			cases++
		}
	}
	if cases != 3 {
		t.Fatalf("got %d select.case blocks, want 3:\n%s", cases, c.Dump())
	}
	// The return-clause must reach the exit; the join must still be
	// reachable (via the other clauses).
	join := blockByLabel(t, c, "select.join")
	if !reaches(c, c.Entry, join.Index) {
		t.Errorf("select join unreachable:\n%s", c.Dump())
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Errorf("exit unreachable through the return clause:\n%s", c.Dump())
	}
}

func TestCFGGotoEdges(t *testing.T) {
	c := buildFuncCFG(t, `{
	i := 0
retry:
	i++
	if i < 3 {
		goto retry
	}
	_ = i
}`)
	lbl := blockByLabel(t, c, "label.retry")
	then := blockByLabel(t, c, "if.then")
	back := false
	for _, e := range then.Succs {
		if e.To == lbl.Index {
			back = true
		}
	}
	if !back {
		t.Errorf("goto does not edge back to its label block:\n%s", c.Dump())
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Errorf("exit unreachable:\n%s", c.Dump())
	}
}

func TestCFGForAndBreakContinue(t *testing.T) {
	c := buildFuncCFG(t, `{
outer:
	for i := 0; i < 10; i++ {
		for {
			if i == 3 {
				continue outer
			}
			if i == 5 {
				break outer
			}
			break
		}
	}
}`)
	if !reaches(c, c.Entry, c.Exit) {
		t.Errorf("exit unreachable:\n%s", c.Dump())
	}
	// continue outer must edge to the outer post block, break outer to
	// the outer join.
	post := blockByLabel(t, c, "for.post")
	join := blockByLabel(t, c, "for.join")
	contOK, brkOK := false, false
	for _, b := range c.Blocks {
		for _, n := range b.Nodes {
			br, ok := n.(*ast.BranchStmt)
			if !ok || br.Label == nil {
				continue
			}
			for _, e := range b.Succs {
				if br.Tok == token.CONTINUE && e.To == post.Index {
					contOK = true
				}
				if br.Tok == token.BREAK && e.To == join.Index {
					brkOK = true
				}
			}
		}
	}
	if !contOK || !brkOK {
		t.Errorf("labeled continue->post=%v break->join=%v:\n%s", contOK, brkOK, c.Dump())
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := buildFuncCFG(t, `{
	switch x := 1; x {
	case 1:
		fallthrough
	case 2:
		println("two")
	default:
		return
	}
}`)
	if !reaches(c, c.Entry, c.Exit) {
		t.Errorf("exit unreachable:\n%s", c.Dump())
	}
	// Three case blocks; the first must edge into the second.
	var caseBlocks []*Block
	for _, b := range c.Blocks {
		if b.Label == "switch.case" {
			caseBlocks = append(caseBlocks, b)
		}
	}
	if len(caseBlocks) != 3 {
		t.Fatalf("got %d case blocks, want 3:\n%s", len(caseBlocks), c.Dump())
	}
	falls := false
	for _, e := range caseBlocks[0].Succs {
		if e.To == caseBlocks[1].Index {
			falls = true
		}
	}
	if !falls {
		t.Errorf("fallthrough edge missing:\n%s", c.Dump())
	}
}

func TestCFGRangeLoop(t *testing.T) {
	c := buildFuncCFG(t, `{
	for i := range 10 {
		if i == 3 {
			return
		}
	}
	println("done")
}`)
	head := blockByLabel(t, c, "range.head")
	if len(head.Succs) != 2 {
		t.Fatalf("range head has %d successors, want 2 (body, join):\n%s", len(head.Succs), c.Dump())
	}
	if !reaches(c, c.Entry, c.Exit) {
		t.Errorf("exit unreachable:\n%s", c.Dump())
	}
}

// TestFlowMustMeet pins the dataflow engine's meet behavior: a fact
// genned on only one arm of an if does not survive the join under a
// must analysis, but does under a may analysis.
func TestFlowMustMeet(t *testing.T) {
	c := buildFuncCFG(t, `{
	x := 1
	if x > 0 {
		x = 2 // gen
	}
	_ = x
}`)
	genOnAssign := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				out = out.Clone()
				out.Set(0)
			}
		}
		return UniformOuts(b, out)
	}
	for _, must := range []bool{true, false} {
		ins := c.Flow(FlowSpec{Bits: 1, Must: must, Transfer: genOnAssign})
		got := ins[c.Exit].Has(0)
		if got != !must {
			t.Errorf("must=%v: fact at exit = %v, want %v\n%s", must, got, !must, c.Dump())
		}
	}
}

// TestFlowLoopFixpoint verifies convergence with a loop: a fact genned
// in the body is a may-fact at the exit but not a must-fact (the
// zero-iteration path).
func TestFlowLoopFixpoint(t *testing.T) {
	c := buildFuncCFG(t, `{
	n := 3
	for i := 0; i < n; i++ {
		n = 4 // gen
	}
	_ = n
}`)
	gen := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			as, ok := n.(*ast.AssignStmt)
			if !ok || as.Tok != token.ASSIGN {
				continue
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				out = out.Clone()
				out.Set(0)
			}
		}
		return UniformOuts(b, out)
	}
	mayIns := c.Flow(FlowSpec{Bits: 1, Must: false, Transfer: gen})
	mustIns := c.Flow(FlowSpec{Bits: 1, Must: true, Transfer: gen})
	if !mayIns[c.Exit].Has(0) {
		t.Errorf("may-fact lost through loop:\n%s", c.Dump())
	}
	if mustIns[c.Exit].Has(0) {
		t.Errorf("must-fact held despite zero-iteration path:\n%s", c.Dump())
	}
}

func TestCFGDumpStable(t *testing.T) {
	c := buildFuncCFG(t, `{ return }`)
	d := c.Dump()
	if !strings.Contains(d, "[entry]") || !strings.Contains(d, "[exit]") {
		t.Errorf("dump missing entry/exit: %s", d)
	}
}
