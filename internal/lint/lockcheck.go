package lint

import (
	"go/ast"
	"go/types"
	"regexp"
)

// LockCheck enforces documented mutex protection: a struct field whose
// doc or line comment says "guarded by <mu>" may only be read or
// written inside a function that visibly acquires <mu> on the same
// receiver path (x.mu.Lock() or x.mu.RLock()). This is the bug class
// fixed by hand in PR 2, where bufferpool residency accounting was
// mutated off-lock by a cancelled query.
//
// The check is syntactic and per-function: it does not prove the lock
// is held at the access (no flow analysis), it proves the function at
// least participates in the locking discipline. Helpers that rely on a
// caller-held lock document that with //lint:allow lockcheck.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "accesses to struct fields documented as \"guarded by <mu>\" must " +
		"occur in functions that acquire <mu> on the same receiver",
	Run: runLockCheck,
}

var guardedByRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedField records one annotated field and the mutex field name
// that protects it.
type guardedField struct {
	structName string
	mutex      string
}

func runLockCheck(pass *Pass) error {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkLockedAccesses(pass, fd, guarded)
		}
	}
	return nil
}

// collectGuardedFields finds "guarded by <mu>" field annotations and
// resolves them to type objects. A named mutex that is not a field of
// the same struct is reported as a broken annotation.
func collectGuardedFields(pass *Pass) map[*types.Var]guardedField {
	guarded := map[*types.Var]guardedField{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]bool{}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					fieldNames[name.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				mutex := guardAnnotation(fld)
				if mutex == "" {
					continue
				}
				if !fieldNames[mutex] {
					pass.Reportf(fld.Pos(),
						"field is annotated \"guarded by %s\" but %s has no field %s",
						mutex, ts.Name.Name, mutex)
					continue
				}
				for _, name := range fld.Names {
					if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						guarded[obj] = guardedField{structName: ts.Name.Name, mutex: mutex}
					}
				}
			}
			return true
		})
	}
	return guarded
}

// guardAnnotation extracts the mutex name from a field's doc or line
// comment, or returns "".
func guardAnnotation(fld *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{fld.Doc, fld.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// checkLockedAccesses verifies every guarded-field access in fd against
// the set of "<root>.<mu>" paths the function locks anywhere in its
// body (including inside closures — the granularity is the outermost
// declared function).
func checkLockedAccesses(pass *Pass, fd *ast.FuncDecl, guarded map[*types.Var]guardedField) {
	locked := map[string]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if path := exprString(sel.X); path != "" {
			locked[path] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		fieldObj, ok := selection.Obj().(*types.Var)
		if !ok {
			return true
		}
		// Map instantiated-generic field objects back to the generic
		// declaration collectGuardedFields saw.
		fieldObj = fieldObj.Origin()
		g, ok := guarded[fieldObj]
		if !ok {
			return true
		}
		root := exprString(sel.X)
		if root != "" && locked[root+"."+g.mutex] {
			return true
		}
		pass.Reportf(sel.Pos(),
			"access to %s.%s (guarded by %s) in a function that never acquires "+
				"%s.%s; lock it, or //lint:allow lockcheck with the reason the "+
				"caller holds the lock",
			g.structName, fieldObj.Name(), g.mutex, root, g.mutex)
		return true
	})
}
