package lint

import (
	"go/ast"
	"go/types"
)

// CtxCancel verifies that every cancel func returned by
// context.WithCancel / WithTimeout / WithDeadline is called on all
// paths from its creation to every return — typically via an immediate
// `defer cancel()`. Discarding the cancel func with `_` is reported
// outright (it leaks the context's resources until the parent dies).
//
// A cancel func that escapes the creating function — stored in a
// struct, passed to another call, returned — transfers the obligation
// to the escapee and is exempt here. Paths ending in panic are exempt.
//
// Unlike the other protocol analyzers this one runs over every package,
// test files included: production context plumbing and test harness
// contexts leak the same way.
var CtxCancel = &Analyzer{
	Name: "ctxcancel",
	Doc: "cancel funcs from context.WithCancel/WithTimeout/WithDeadline " +
		"must be called on every return path (usually `defer cancel()`) " +
		"or handed off; discarding one with _ leaks the context",
	Run: runCtxCancel,
}

var ctxCancelFuncs = map[string]bool{
	"WithCancel":   true,
	"WithTimeout":  true,
	"WithDeadline": true,
	// WithCancelCause and friends return the same obligation.
	"WithCancelCause":   true,
	"WithTimeoutCause":  true,
	"WithDeadlineCause": true,
}

// isContextWith reports whether call is context.With*(...) and thus
// returns (ctx, cancel).
func isContextWith(info *types.Info, call *ast.CallExpr) bool {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "context" && ctxCancelFuncs[fn.Name()]
}

// ctxSite is one context.With* creation whose cancel obligation this
// function owns.
type ctxSite struct {
	assign *ast.AssignStmt
	call   *ast.CallExpr
	cancel *types.Var // nil when discarded with _
	name   string
}

func runCtxCancel(pass *Pass) error {
	for _, f := range pass.Files {
		funcBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			checkCtxCancel(pass, declName(decl, lit), body)
		})
	}
	return nil
}

// collectCtxSites finds the With* creations directly in this body
// (nested literals own their own sites).
func collectCtxSites(pass *Pass, body *ast.BlockStmt) []ctxSite {
	var sites []ctxSite
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) != 2 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || !isContextWith(pass.TypesInfo, call) {
			return true
		}
		site := ctxSite{assign: as, call: call}
		if id, ok := as.Lhs[1].(*ast.Ident); ok && id.Name != "_" {
			site.name = id.Name
			if obj, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok {
				site.cancel = obj
			}
		}
		sites = append(sites, site)
		return true
	})
	return sites
}

func checkCtxCancel(pass *Pass, fname string, body *ast.BlockStmt) {
	sites := collectCtxSites(pass, body)
	if len(sites) == 0 {
		return
	}

	var tracked []ctxSite
	for _, s := range sites {
		if s.cancel == nil {
			pass.Reportf(s.assign.Pos(),
				"%s discards the cancel func from context.%s with _: the derived "+
					"context leaks until its parent is cancelled; call it (usually "+
					"`defer cancel()`)",
				fname, calleeName(pass.TypesInfo, s.call))
			continue
		}
		if cancelEscapes(pass, body, s) {
			continue // obligation handed off
		}
		tracked = append(tracked, s)
	}
	if len(tracked) == 0 {
		return
	}

	cfg := BuildCFG(body)
	// Must-analysis, one bit per site meaning "no cancel outstanding":
	// set at entry (a creation that never runs owes nothing), cleared
	// at the creation, re-set by a call to the cancel func (a defer
	// counts at registration). Requiring the bit at every return makes
	// creation-and-cancel inside one loop iteration check out while an
	// early return between them is flagged.
	entry := NewBitSet(len(tracked))
	entry.Fill()
	transfer := func(b *Block, in BitSet) []BitSet {
		out := in
		for _, n := range b.Nodes {
			ast.Inspect(n, func(m ast.Node) bool {
				if _, isLit := m.(*ast.FuncLit); isLit {
					return false
				}
				if as, ok := m.(*ast.AssignStmt); ok {
					for i, s := range tracked {
						if s.assign == as {
							out.Clear(i)
						}
					}
					return true
				}
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := ast.Unparen(call.Fun).(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.ObjectOf(id)
				for i, s := range tracked {
					if s.cancel == obj {
						out.Set(i)
					}
				}
				return true
			})
		}
		return UniformOuts(b, out)
	}
	ins := cfg.Flow(FlowSpec{Bits: len(tracked), Must: true, Entry: entry, Transfer: transfer})
	atExit := ins[cfg.Exit]
	for i, s := range tracked {
		if !atExit.Has(i) {
			pass.Reportf(s.assign.Pos(),
				"%s: cancel func %q from context.%s is not called on every return "+
					"path; add `defer %s()` right after the creation",
				fname, s.name, calleeName(pass.TypesInfo, s.call), s.name)
		}
	}
}

// cancelEscapes reports whether the cancel func is used as anything
// other than a direct call `cancel()` (plain, deferred, or in a go
// statement): passed as an argument, stored, returned, aliased. Any
// such use transfers the calling obligation elsewhere. Nested literals
// count — a closure capturing cancel to call it later is a handoff to
// that closure.
func cancelEscapes(pass *Pass, body *ast.BlockStmt, s ctxSite) bool {
	// First pass: idents that are the direct Fun of a call — those are
	// the sanctioned uses.
	funIdents := map[*ast.Ident]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				funIdents[id] = true
			}
		}
		return true
	})
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		if escapes {
			return false
		}
		// Any reference from inside a nested closure is a capture — a
		// handoff to that closure (the CFG cannot see when it runs).
		if lit, ok := n.(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == s.cancel {
					escapes = true
				}
				return !escapes
			})
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.ObjectOf(id) != s.cancel {
			return true
		}
		// Sanctioned: being called, or being the LHS of its own
		// creation. Everything else — argument, store, return value,
		// alias, capture for a later write — hands the obligation off.
		if funIdents[id] || id == s.assign.Lhs[1] {
			return true
		}
		escapes = true
		return false
	})
	return escapes
}

// calleeName returns the called function's name for diagnostics.
func calleeName(info *types.Info, call *ast.CallExpr) string {
	if fn := callee(info, call); fn != nil {
		return fn.Name()
	}
	return "WithCancel"
}
