package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the interprocedural layer under the concurrency
// analyzers (lockorder, goroleak, wgbalance, chanclose): a per-package
// static call graph with CHA-style (class-hierarchy) resolution,
// standing in for golang.org/x/tools/go/callgraph (unavailable
// offline). Build-tag awareness comes from the drivers — the vettool
// receives cmd/go's file list and LoadModule/LoadDir match files
// through go/build — so the graph only ever sees files that compile
// into the package.
//
// Resolution policy, from precise to conservative:
//
//   - A direct call to a package-local function or concrete method
//     resolves to exactly that body.
//   - A call through an interface method resolves, CHA style, to every
//     package-local method of that name whose receiver type (or its
//     pointer) implements the interface — an over-approximation that
//     never misses a package-local target but may include types the
//     value can't dynamically be.
//   - An immediately invoked function literal resolves to the literal.
//   - A call through a plain function value resolves to nothing and is
//     marked Dynamic; summary-based analyzers treat it as "unknown
//     effects" per their own documented policy.
//
// Calls that cross the package boundary have no body here (the vettool
// analyzes one package at a time); analyzers that need cross-package
// facts declare them in small tables (see lockorder's baseline edges).

// FuncInfo is one function body known to the call graph: a named
// declaration or a function literal (each literal is its own node —
// literals are never inlined into their enclosing function).
type FuncInfo struct {
	Obj  *types.Func   // declared object; nil for function literals
	Decl *ast.FuncDecl // enclosing declaration (set for literals too)
	Lit  *ast.FuncLit  // non-nil when this node is a literal
	Body *ast.BlockStmt
	Name string // diagnostic name, e.g. "(*Engine).worker" or "New$func1"
	// Sites lists every call expression in the body (source order,
	// nested literal bodies excluded) with its resolved targets. The
	// function call of a `go` statement is deliberately absent — the
	// spawned body does not run with the caller's locks or obligations;
	// analyzers resolve spawns through GoTargets instead.
	Sites []*CallSite

	// Tarjan bookkeeping (see SCCs).
	index, lowlink int
	onStack        bool
}

// CallSite is one resolved call expression.
type CallSite struct {
	Call *ast.CallExpr
	// Targets are the package-local bodies the call may reach; empty
	// for stdlib and cross-package callees.
	Targets []*FuncInfo
	// Dynamic marks interface-method and function-value dispatch:
	// Targets is then a CHA over-approximation (or empty when nothing
	// in the package implements the callee).
	Dynamic bool
}

// CallGraph is the per-package static call graph.
type CallGraph struct {
	Funcs []*FuncInfo
	byObj map[*types.Func]*FuncInfo
	byLit map[*ast.FuncLit]*FuncInfo
}

// FuncOf returns the node for a declared function, or nil.
func (cg *CallGraph) FuncOf(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return cg.byObj[fn.Origin()]
}

// LitOf returns the node for a function literal, or nil.
func (cg *CallGraph) LitOf(lit *ast.FuncLit) *FuncInfo { return cg.byLit[lit] }

// BuildCallGraph constructs the call graph of the pass's package,
// excluding test files (the concurrency analyzers check production
// protocols; chaos/crash tests spawn goroutines under rules of their
// own).
func BuildCallGraph(pass *Pass) *CallGraph {
	cg := &CallGraph{
		byObj: map[*types.Func]*FuncInfo{},
		byLit: map[*ast.FuncLit]*FuncInfo{},
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		funcBodies(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			fi := &FuncInfo{Decl: decl, Lit: lit, Body: body, Name: declName(decl, lit)}
			if lit == nil {
				if obj, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func); ok {
					fi.Obj = obj
					cg.byObj[obj] = fi
				}
			} else {
				cg.byLit[lit] = fi
			}
			cg.Funcs = append(cg.Funcs, fi)
		})
	}
	// Resolve call sites only after every body is registered, so
	// forward references and mutual recursion resolve.
	for _, fi := range cg.Funcs {
		goCalls := map[*ast.CallExpr]bool{}
		inspectOwn(fi.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goCalls[g.Call] = true
			}
			if call, ok := n.(*ast.CallExpr); ok && !goCalls[call] {
				fi.Sites = append(fi.Sites, cg.resolveCall(pass, call))
			}
			return true
		})
	}
	return cg
}

// inspectOwn walks a body's own nodes, skipping nested function
// literal bodies (each literal is its own call-graph node).
func inspectOwn(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		return fn(m)
	})
}

func (cg *CallGraph) resolveCall(pass *Pass, call *ast.CallExpr) *CallSite {
	site := &CallSite{Call: call}
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		if fi := cg.byLit[lit]; fi != nil {
			site.Targets = []*FuncInfo{fi}
		}
		return site
	}
	fn := callee(pass.TypesInfo, call)
	if fn == nil {
		// Builtin, conversion, or a call through a function value.
		if isFuncValueCall(pass.TypesInfo, call) {
			site.Dynamic = true
		}
		return site
	}
	fn = fn.Origin()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		types.IsInterface(sig.Recv().Type()) {
		site.Dynamic = true
		site.Targets = cg.implementers(fn)
		return site
	}
	if fi := cg.byObj[fn]; fi != nil {
		site.Targets = []*FuncInfo{fi}
	}
	return site
}

// isFuncValueCall reports whether call invokes a plain function value
// (variable, field, call result) rather than a named function, method,
// builtin or conversion.
func isFuncValueCall(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.IsType() || tv.IsBuiltin() {
		return false
	}
	_, isSig := tv.Type.Underlying().(*types.Signature)
	return isSig
}

// implementers returns, CHA style, every package-local method named
// like the interface method m whose receiver type's pointer implements
// m's interface. Using the pointer type checks against the larger
// method set, so value-receiver and pointer-receiver implementations
// are both found — conservative by construction.
func (cg *CallGraph) implementers(m *types.Func) []*FuncInfo {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, ok := sig.Recv().Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*FuncInfo
	for _, fi := range cg.Funcs {
		if fi.Obj == nil || fi.Obj.Name() != m.Name() {
			continue
		}
		msig, ok := fi.Obj.Type().(*types.Signature)
		if !ok || msig.Recv() == nil {
			continue
		}
		t := msig.Recv().Type()
		if _, isPtr := t.(*types.Pointer); !isPtr {
			t = types.NewPointer(t)
		}
		if types.Implements(t, iface) {
			out = append(out, fi)
		}
	}
	return out
}

// GoTargets resolves the body a `go` statement spawns: the literal
// itself for `go func(){...}()`, the package-local body for a direct
// call, the CHA implementer set for an interface call. Nil means the
// target is outside the package (or a bare function value) — analyzers
// treat those as unprovable-but-unflagged, trading soundness for a
// zero false-positive rate on code they cannot see.
func (cg *CallGraph) GoTargets(pass *Pass, g *ast.GoStmt) []*FuncInfo {
	site := cg.resolveCall(pass, g.Call)
	return site.Targets
}

// SCCs returns the strongly connected components of the call graph in
// bottom-up order: every component appears after the components it
// calls into, so one pass over the result (iterating each component's
// members to a local fixpoint) computes transitive summaries —
// Tarjan's algorithm emits components in exactly this order.
func (cg *CallGraph) SCCs() [][]*FuncInfo {
	for _, fi := range cg.Funcs {
		fi.index = -1
		fi.onStack = false
	}
	var (
		sccs  [][]*FuncInfo
		stack []*FuncInfo
		next  int
	)
	var strongconnect func(v *FuncInfo)
	strongconnect = func(v *FuncInfo) {
		v.index, v.lowlink = next, next
		next++
		stack = append(stack, v)
		v.onStack = true
		for _, site := range v.Sites {
			for _, w := range site.Targets {
				if w.index < 0 {
					strongconnect(w)
					v.lowlink = min(v.lowlink, w.lowlink)
				} else if w.onStack {
					v.lowlink = min(v.lowlink, w.index)
				}
			}
		}
		if v.lowlink == v.index {
			var scc []*FuncInfo
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				w.onStack = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, fi := range cg.Funcs {
		if fi.index < 0 {
			strongconnect(fi)
		}
	}
	return sccs
}

// Fixpoint drives a bottom-up summary computation: update is called per
// function and returns whether that function's summary changed; within
// a strongly connected component (mutual recursion) members re-run
// until stable, and components are visited callee-first so each is
// finished before its callers read it.
func (cg *CallGraph) Fixpoint(update func(fi *FuncInfo) bool) {
	for _, scc := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, fi := range scc {
				if update(fi) {
					changed = true
				}
			}
		}
	}
}

// concurrencyScopePackages are the packages whose concurrency
// protocols the interprocedural analyzers (lockorder, goroleak,
// wgbalance, chanclose) guard: the parallel engine and everything its
// worker goroutines touch.
var concurrencyScopePackages = map[string]bool{
	"repro/internal/exec":       true,
	"repro/internal/bufferpool": true,
	"repro/internal/pagestore":  true,
	"repro/internal/obs":        true,
	"repro/internal/fault":      true,
}

var concurrencyAnalyzerNames = []string{"lockorder", "goroleak", "wgbalance", "chanclose"}

// inConcurrencyScope gates the four interprocedural analyzers to the
// concurrency-bearing packages, plus any package whose import path
// starts with one of the analyzer names — the golden testdata and
// regression fixtures.
func inConcurrencyScope(path string) bool {
	path = normalizePkgPath(path)
	if concurrencyScopePackages[path] {
		return true
	}
	for _, n := range concurrencyAnalyzerNames {
		if strings.HasPrefix(path, n) {
			return true
		}
	}
	return false
}

// rootSelObj resolves the identity object of a channel/WaitGroup/mutex
// expression: the field object for a selector chain (x.mu, e.pool.mu —
// instance-insensitive: all values of the owning type share it), the
// variable for a bare identifier, and the underlying slice/map/array
// field for an indexed element (indexed true: element identity is
// conflated with its container's).
func rootSelObj(info *types.Info, e ast.Expr) (obj types.Object, indexed bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e), false
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel), false
	case *ast.IndexExpr:
		obj, _ := rootSelObj(info, e.X)
		return obj, true
	case *ast.StarExpr:
		return rootSelObj(info, e.X)
	}
	return nil, false
}

// syncMethod reports whether call is a method call on a sync.Mutex /
// RWMutex / WaitGroup value, returning the method name and the
// receiver expression.
func syncMethod(info *types.Info, call *ast.CallExpr) (recvType, method string, recv ast.Expr, ok bool) {
	fn := callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", nil, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", nil, false
	}
	return recvTypeName(fn), fn.Name(), sel.X, true
}
