package bufferpool

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

func idHash(k int) uint64 { return uint64(k) * 0x9e3779b97f4a7c15 }

func TestShardedBasic(t *testing.T) {
	s := NewSharded[int, string](8, 4, idHash)
	if _, ok := s.Get(1); ok {
		t.Fatal("unexpected hit on empty pool")
	}
	s.Put(1, "one")
	if v, ok := s.Get(1); !ok || v != "one" {
		t.Fatalf("Get(1) = %q, %v; want one, true", v, ok)
	}
	s.Remove(1)
	if _, ok := s.Get(1); ok {
		t.Fatal("hit after Remove")
	}
	if s.Capacity() < 8 {
		t.Fatalf("Capacity() = %d, want >= 8", s.Capacity())
	}
}

func TestShardedEvictsWithinCapacity(t *testing.T) {
	s := NewSharded[int, int](16, 4, idHash)
	for i := 0; i < 1000; i++ {
		s.Put(i, i)
	}
	if got := s.Len(); got > s.Capacity() {
		t.Fatalf("Len() = %d exceeds capacity %d", got, s.Capacity())
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatal("expected evictions after overfilling")
	}
}

func TestShardedGetOrFetchDeduplicates(t *testing.T) {
	s := NewSharded[int, int](64, 8, idHash)
	var fetches atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]int, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := s.GetOrFetch(7, func() (int, error) {
				fetches.Add(1)
				<-release // hold the flight open so everyone piles on
				return 42, nil
			})
			if err != nil {
				t.Errorf("GetOrFetch: %v", err)
			}
			results[i] = v
		}(i)
	}
	close(release)
	wg.Wait()
	if n := fetches.Load(); n != 1 {
		t.Fatalf("fetch ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("waiter %d got %d, want 42", i, v)
		}
	}
	if v, ok := s.Get(7); !ok || v != 42 {
		t.Fatalf("value not cached after flight: %d, %v", v, ok)
	}
}

func TestShardedGetOrFetchErrorNotCached(t *testing.T) {
	s := NewSharded[int, int](8, 2, idHash)
	boom := errors.New("boom")
	if _, err := s.GetOrFetch(3, func() (int, error) { return 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if _, ok := s.Get(3); ok {
		t.Fatal("failed fetch must not be cached")
	}
	// A later caller retries and can succeed.
	if v, err := s.GetOrFetch(3, func() (int, error) { return 9, nil }); err != nil || v != 9 {
		t.Fatalf("retry = %d, %v; want 9, nil", v, err)
	}
}

// TestShardedConcurrentGetEvict hammers a small pool from many
// goroutines so gets, puts, evictions and deduplicated fetches overlap;
// run under -race it is the bufferpool concurrency gate.
func TestShardedConcurrentGetEvict(t *testing.T) {
	s := NewSharded[int, int](32, 4, idHash)
	const (
		goroutines = 16
		keys       = 256
		iterations = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iterations; i++ {
				k := (g*31 + i) % keys
				switch i % 4 {
				case 0:
					s.Put(k, k)
				case 1:
					if v, ok := s.Get(k); ok && v != k {
						t.Errorf("Get(%d) = %d", k, v)
					}
				case 2:
					v, err := s.GetOrFetch(k, func() (int, error) { return k, nil })
					if err != nil || v != k {
						t.Errorf("GetOrFetch(%d) = %d, %v", k, v, err)
					}
				default:
					s.Remove(k)
				}
			}
		}(g)
	}
	wg.Wait()
	if got := s.Len(); got > s.Capacity() {
		t.Fatalf("Len() = %d exceeds capacity %d", got, s.Capacity())
	}
}

func TestShardedPanicsOnBadConfig(t *testing.T) {
	for name, fn := range map[string]func(){
		"capacity": func() { NewSharded[int, int](0, 1, idHash) },
		"shards":   func() { NewSharded[int, int](4, 0, idHash) },
		"hash":     func() { NewSharded[int, int](4, 2, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestShardedMoreShardsThanCapacity(t *testing.T) {
	s := NewSharded[int, int](2, 64, idHash)
	for i := 0; i < 10; i++ {
		s.Put(i, i)
	}
	if s.Len() > s.Capacity() {
		t.Fatalf("Len %d > Capacity %d", s.Len(), s.Capacity())
	}
	if st := s.Stats(); st.Inserts == 0 {
		t.Fatal("expected inserts recorded")
	}
}
