package bufferpool

import (
	"fmt"
	"sync"
)

// Sharded is a thread-safe LRU cache built from independently locked
// Pool shards, with singleflight-style fetch deduplication: when many
// goroutines miss on the same key simultaneously, exactly one runs the
// fetch and the rest wait for its result. The concurrent query engine
// (package exec) uses it as its shared decoded-page cache — the paper's
// model has no buffer pool, but a real multi-client server would thrash
// the disks without one.
//
// Keys are mapped to shards by the caller-supplied hash function, so
// the type works for any comparable key without reflection.
type Sharded[K comparable, V any] struct {
	hash   func(K) uint64
	shards []*shard[K, V]
}

type shard[K comparable, V any] struct {
	mu       sync.Mutex
	pool     *Pool[K, V]
	inflight map[K]*flight[V] // guarded by mu
}

// flight is one in-progress fetch; waiters block on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewSharded builds a sharded pool with the given total capacity spread
// evenly over numShards shards (each shard holds at least one entry).
// The hash function distributes keys across shards; it must be safe for
// concurrent use (pure functions are).
func NewSharded[K comparable, V any](capacity, numShards int, hash func(K) uint64) *Sharded[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("bufferpool: capacity must be positive, got %d", capacity))
	}
	if numShards <= 0 {
		panic(fmt.Sprintf("bufferpool: numShards must be positive, got %d", numShards))
	}
	if numShards > capacity {
		numShards = capacity
	}
	if hash == nil {
		panic("bufferpool: hash function required")
	}
	s := &Sharded[K, V]{hash: hash, shards: make([]*shard[K, V], numShards)}
	per := (capacity + numShards - 1) / numShards
	for i := range s.shards {
		s.shards[i] = &shard[K, V]{
			pool:     New[K, V](per),
			inflight: make(map[K]*flight[V]),
		}
	}
	return s
}

func (s *Sharded[K, V]) shardOf(key K) *shard[K, V] {
	return s.shards[s.hash(key)%uint64(len(s.shards))]
}

// Get looks up key, promoting it on a hit. Safe for concurrent use.
func (s *Sharded[K, V]) Get(key K) (V, bool) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.pool.Get(key)
}

// Put inserts or refreshes key. Safe for concurrent use.
func (s *Sharded[K, V]) Put(key K, val V) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pool.Put(key, val)
}

// Remove drops key if present.
func (s *Sharded[K, V]) Remove(key K) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.pool.Remove(key)
}

// GetOrFetch returns the cached value for key, or runs fetch to produce
// it. Concurrent callers for the same key are deduplicated: one runs
// fetch, the others wait and share its result. A successful fetch is
// admitted to the cache; a failed fetch is not, and the shared error is
// returned to every waiter of that flight (later callers retry).
func (s *Sharded[K, V]) GetOrFetch(key K, fetch func() (V, error)) (V, error) {
	v, _, err := s.GetOrFetchHit(key, fetch)
	return v, err
}

// GetOrFetchHit is GetOrFetch with cache-hit attribution: hit is true
// when the value was served without running fetch in this call — a
// resident entry, or the shared result of another caller's in-progress
// flight. The engine's telemetry uses it to label per-fetch trace
// events without a second cache probe.
func (s *Sharded[K, V]) GetOrFetchHit(key K, fetch func() (V, error)) (v V, hit bool, err error) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if v, ok := sh.pool.Get(key); ok {
		sh.mu.Unlock()
		return v, true, nil
	}
	if f, ok := sh.inflight[key]; ok {
		sh.mu.Unlock()
		<-f.done
		return f.val, true, f.err
	}
	f := &flight[V]{done: make(chan struct{})}
	sh.inflight[key] = f
	sh.mu.Unlock()

	f.val, f.err = fetch()

	sh.mu.Lock()
	if f.err == nil {
		sh.pool.Put(key, f.val)
	}
	delete(sh.inflight, key)
	sh.mu.Unlock()
	close(f.done)
	return f.val, false, f.err
}

// Len returns the total number of cached entries across shards.
func (s *Sharded[K, V]) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.pool.Len()
		sh.mu.Unlock()
	}
	return n
}

// Capacity returns the summed shard capacities (>= the requested total
// due to even rounding).
func (s *Sharded[K, V]) Capacity() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.pool.Capacity()
	}
	return n
}

// Stats aggregates the traffic counters of all shards.
func (s *Sharded[K, V]) Stats() Stats {
	var out Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st := sh.pool.Stats()
		sh.mu.Unlock()
		out.Hits += st.Hits
		out.Misses += st.Misses
		out.Evictions += st.Evictions
		out.Inserts += st.Inserts
	}
	return out
}
