// Package bufferpool provides a small LRU page cache with hit/miss
// accounting. The query executors use it to model memory-resident
// directory pages: the paper's multiplexed R*-tree keeps the root at the
// CPU, and caching further directory levels is a natural extension
// studied by the ablation benchmarks.
package bufferpool

import (
	"container/list"
	"fmt"
	"sync"
)

// Stats counts cache traffic.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Inserts   uint64
}

// HitRate returns hits / (hits+misses), or 0 when the pool is untouched.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Pool is a fixed-capacity LRU cache from K to V. The zero value is not
// usable; call New. A single mutex guards every operation, which makes
// the pool safe to share between the concurrent engine's query
// goroutines; for heavy multi-core traffic prefer Sharded, which
// spreads the lock over independently guarded shards.
type Pool[K comparable, V any] struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List          // guarded by mu
	items    map[K]*list.Element // guarded by mu
	stats    Stats               // guarded by mu
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// New returns a pool that holds at most capacity entries.
// Capacity must be positive.
func New[K comparable, V any](capacity int) *Pool[K, V] {
	if capacity <= 0 {
		panic(fmt.Sprintf("bufferpool: capacity must be positive, got %d", capacity))
	}
	return &Pool[K, V]{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[K]*list.Element),
	}
}

// Get looks up key, promoting it to most-recently-used on a hit.
func (p *Pool[K, V]) Get(key K) (V, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
		p.stats.Hits++
		return el.Value.(*lruEntry[K, V]).val, true
	}
	p.stats.Misses++
	var zero V
	return zero, false
}

// Contains reports whether key is cached without touching recency or
// statistics.
func (p *Pool[K, V]) Contains(key K) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.items[key]
	return ok
}

// Put inserts or refreshes key. When the pool is full the least recently
// used entry is evicted.
func (p *Pool[K, V]) Put(key K, val V) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		p.ll.MoveToFront(el)
		el.Value.(*lruEntry[K, V]).val = val
		return
	}
	p.stats.Inserts++
	el := p.ll.PushFront(&lruEntry[K, V]{key, val})
	p.items[key] = el
	if p.ll.Len() > p.capacity {
		oldest := p.ll.Back()
		p.ll.Remove(oldest)
		delete(p.items, oldest.Value.(*lruEntry[K, V]).key)
		p.stats.Evictions++
	}
}

// Remove drops key from the pool if present.
func (p *Pool[K, V]) Remove(key K) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[key]; ok {
		p.ll.Remove(el)
		delete(p.items, key)
	}
}

// Len returns the number of cached entries.
func (p *Pool[K, V]) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ll.Len()
}

// Capacity returns the configured maximum size.
func (p *Pool[K, V]) Capacity() int { return p.capacity }

// Stats returns a copy of the traffic counters.
func (p *Pool[K, V]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reset empties the pool and clears statistics.
func (p *Pool[K, V]) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.ll.Init()
	p.items = make(map[K]*list.Element)
	p.stats = Stats{}
}
