package bufferpool

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicPutGet(t *testing.T) {
	p := New[int, string](2)
	p.Put(1, "a")
	p.Put(2, "b")
	if v, ok := p.Get(1); !ok || v != "a" {
		t.Errorf("Get(1) = %q,%v", v, ok)
	}
	if _, ok := p.Get(3); ok {
		t.Error("Get(3) hit")
	}
	s := p.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Inserts != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	p := New[int, int](2)
	p.Put(1, 10)
	p.Put(2, 20)
	p.Get(1)     // 1 is now MRU
	p.Put(3, 30) // evicts 2
	if p.Contains(2) {
		t.Error("2 not evicted")
	}
	if !p.Contains(1) || !p.Contains(3) {
		t.Error("wrong eviction victim")
	}
	if p.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", p.Stats().Evictions)
	}
}

func TestPutRefreshesValue(t *testing.T) {
	p := New[string, int](2)
	p.Put("x", 1)
	p.Put("x", 2)
	if v, _ := p.Get("x"); v != 2 {
		t.Errorf("refreshed value = %d", v)
	}
	if p.Len() != 1 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestRemove(t *testing.T) {
	p := New[int, int](4)
	p.Put(1, 1)
	p.Remove(1)
	p.Remove(99) // no-op
	if p.Contains(1) || p.Len() != 0 {
		t.Error("Remove failed")
	}
}

func TestReset(t *testing.T) {
	p := New[int, int](4)
	p.Put(1, 1)
	p.Get(1)
	p.Reset()
	if p.Len() != 0 || p.Stats().Hits != 0 {
		t.Error("Reset incomplete")
	}
}

func TestZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New[int, int](0)
}

func TestHitRate(t *testing.T) {
	p := New[int, int](2)
	if p.Stats().HitRate() != 0 {
		t.Error("untouched pool hit rate != 0")
	}
	p.Put(1, 1)
	p.Get(1)
	p.Get(2)
	if got := p.Stats().HitRate(); got != 0.5 {
		t.Errorf("hit rate = %g", got)
	}
}

// Property: the pool never exceeds capacity and behaves like a model
// map + recency list.
func TestLRUModelProperty(t *testing.T) {
	f := func(seed int64, capRaw uint8) bool {
		capacity := int(capRaw)%16 + 1
		rnd := rand.New(rand.NewSource(seed))
		p := New[int, int](capacity)
		model := map[int]int{}
		var recency []int // most recent last
		touch := func(k int) {
			for i, x := range recency {
				if x == k {
					recency = append(recency[:i], recency[i+1:]...)
					break
				}
			}
			recency = append(recency, k)
		}
		for step := 0; step < 300; step++ {
			k := rnd.Intn(24)
			if rnd.Float64() < 0.5 {
				v := rnd.Int()
				p.Put(k, v)
				if _, exists := model[k]; !exists && len(model) == capacity {
					victim := recency[0]
					recency = recency[1:]
					delete(model, victim)
				}
				model[k] = v
				touch(k)
			} else {
				v, ok := p.Get(k)
				mv, mok := model[k]
				if ok != mok || (ok && v != mv) {
					return false
				}
				if ok {
					touch(k)
				}
			}
			if p.Len() > capacity || p.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
