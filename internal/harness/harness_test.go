package harness

import (
	"math"
	"strings"
	"testing"
)

// tinyOpts keeps harness tests fast: small populations, few queries.
func tinyOpts() Options {
	return Options{Scale: 0.05, Queries: 6, Seed: 7}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "demo", XLabel: "k", YLabel: "nodes",
		X:     []float64{1, 10},
		Notes: []string{"note"},
	}
	tb.AddSeries("A", []float64{1.5, 2.5})
	tb.AddSeries("B", []float64{3, math.NaN()})
	out := tb.String()
	for _, want := range []string{"demo", "k", "A", "B", "1.50", "note", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table missing %q:\n%s", want, out)
		}
	}
	if tb.Get("A") == nil || tb.Get("missing") != nil {
		t.Error("Get misbehaves")
	}
}

func TestAddSeriesLengthMismatchPanics(t *testing.T) {
	tb := &Table{X: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tb.AddSeries("bad", []float64{1})
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	want := []string{
		"fig8-cp", "fig8-lb", "fig9-sg", "fig9-su",
		"fig10-lb", "fig10-cp", "fig11-k10", "fig11-k100",
		"fig12-l1", "fig12-l20", "table3", "table4", "table5",
		"abl-decl", "abl-eps", "abl-act", "abl-cache",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if _, err := Run("nope", tinyOpts()); err == nil {
		t.Error("Run accepted unknown id")
	}
}

func TestOptionsFill(t *testing.T) {
	o := Options{}.fill()
	if o.Scale != 1 || o.Queries != 100 || o.Seed == 0 {
		t.Errorf("defaults = %+v", o)
	}
	o = Options{Scale: 0.03}.fill()
	if o.Queries != 10 {
		t.Errorf("scaled queries = %d, want floor 10", o.Queries)
	}
	if got := (Options{Scale: 0.5}).scaleN(1000); got != 1000 {
		t.Errorf("scaleN must cap at the paper population: %d", got)
	}
	if got := (Options{Scale: 0.01}).scaleN(50000); got != 2000 {
		t.Errorf("scaleN floor not applied: %d", got)
	}
	if got := (Options{Scale: 0.5}).scaleN(100000); got != 50000 {
		t.Errorf("scaleN not scaling: %d", got)
	}
}

func TestFig8SmallScale(t *testing.T) {
	tb, err := Fig8CP(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Series) != 4 {
		t.Fatalf("%d series", len(tb.Series))
	}
	// WOPTSS must floor every other algorithm at every k.
	w := tb.Get("WOPTSS")
	for _, s := range tb.Series {
		if s.Label == "WOPTSS" {
			continue
		}
		for i := range s.Y {
			if s.Y[i] < w.Y[i]-1e-9 {
				t.Errorf("%s below WOPTSS at k=%g: %g < %g", s.Label, tb.X[i], s.Y[i], w.Y[i])
			}
		}
	}
	// Visited nodes grow with k for every algorithm.
	for _, s := range tb.Series {
		if s.Y[len(s.Y)-1] < s.Y[0] {
			t.Errorf("%s visits shrink with k: %v", s.Label, s.Y)
		}
	}
}

func TestFig9Normalization(t *testing.T) {
	tb, err := Fig9SG(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	w := tb.Get("WOPTSS")
	for i := range w.Y {
		if math.Abs(w.Y[i]-1) > 1e-9 {
			t.Errorf("normalized WOPTSS != 1 at %d: %g", i, w.Y[i])
		}
	}
	for _, s := range tb.Series {
		for i := range s.Y {
			if s.Y[i] < 1-1e-9 {
				t.Errorf("%s normalized below 1: %g", s.Label, s.Y[i])
			}
		}
	}
}

func TestFig10SmallScale(t *testing.T) {
	opt := tinyOpts()
	tb, err := Fig10LB(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 10 || len(tb.Series) != 4 {
		t.Fatalf("unexpected table shape %dx%d", len(tb.X), len(tb.Series))
	}
	for _, s := range tb.Series {
		for i, y := range s.Y {
			if y <= 0 {
				t.Errorf("%s response %g at λ=%g", s.Label, y, tb.X[i])
			}
		}
	}
}

func TestTable3SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	tb, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 4 {
		t.Fatalf("%d rows", len(tb.X))
	}
	// CRSS stays at or under BBSS on every row (the paper's conclusion).
	b, c := tb.Get("BBSS"), tb.Get("CRSS")
	worse := 0
	for i := range b.Y {
		if c.Y[i] > b.Y[i] {
			worse++
		}
	}
	if worse > 1 {
		t.Errorf("CRSS slower than BBSS on %d of %d rows: %v vs %v", worse, len(b.Y), c.Y, b.Y)
	}
}

func TestTable5Shape(t *testing.T) {
	tb, err := Table5(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Series) != 4 || len(tb.X) != 6 {
		t.Fatalf("table5 shape %dx%d", len(tb.Series), len(tb.X))
	}
	for _, s := range tb.Series {
		for _, y := range s.Y {
			if y != 0 && y != 1 {
				t.Errorf("%s has non-binary cell %g", s.Label, y)
			}
		}
	}
	// CRSS and WOPTSS must be good on every measured characteristic
	// except (possibly) none — at minimum intra-query parallelism and
	// response time.
	crss := tb.Get("CRSS")
	if crss.Y[1] != 1 {
		t.Error("CRSS not good on response time")
	}
	if crss.Y[4] != 1 {
		t.Error("CRSS not good on intraquery parallelism")
	}
	bbss := tb.Get("BBSS")
	if bbss.Y[4] != 0 {
		t.Error("BBSS should lack intraquery parallelism")
	}
}

func TestAblationEpsilonShape(t *testing.T) {
	tb, err := AblationEpsilon(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	eps, crss := tb.Get("EPS-SERIES"), tb.Get("CRSS")
	var epsSum, crssSum float64
	for i := range eps.Y {
		epsSum += eps.Y[i]
		crssSum += crss.Y[i]
	}
	if epsSum <= crssSum {
		t.Errorf("epsilon series should waste accesses: %g vs CRSS %g", epsSum, crssSum)
	}
}

func TestAblationActivationBound(t *testing.T) {
	tb, err := AblationActivationBound(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.X) != 6 {
		t.Fatalf("%d sweep points", len(tb.X))
	}
	v := tb.Get("visited-nodes")
	// Visited nodes grow (weakly) with u: u=1 is most selective.
	if v.Y[0] > v.Y[len(v.Y)-1]+1e-9 {
		t.Errorf("visited nodes not weakly increasing in u: %v", v.Y)
	}
}

func TestNormalizeToAndCheckShape(t *testing.T) {
	tb := &Table{X: []float64{1, 2}}
	tb.AddSeries("ref", []float64{2, 4})
	tb.AddSeries("other", []float64{4, 4})
	normalizeTo(tb, "ref")
	r, o := tb.Get("ref"), tb.Get("other")
	if r.Y[0] != 1 || r.Y[1] != 1 || o.Y[0] != 2 || o.Y[1] != 1 {
		t.Errorf("normalize wrong: %v %v", r.Y, o.Y)
	}
	checkShape(tb, "ref", "other")
	found := false
	for _, n := range tb.Notes {
		if strings.Contains(n, "HOLDS") {
			found = true
		}
	}
	if !found {
		t.Errorf("checkShape note missing: %v", tb.Notes)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := &Table{ID: "x", XLabel: "k", X: []float64{1, 2}}
	tb.AddSeries("A", []float64{1.5, math.NaN()})
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := "k,A\n1,1.5\n2,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}
