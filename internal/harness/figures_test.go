package harness

import (
	"math"
	"testing"
)

// The remaining experiments at tiny scale: each must produce a
// well-formed table with positive measurements. Shape assertions are
// kept loose — tiny populations amplify variance — and strict ones live
// in the package tests of the underlying components.

func checkTableWellFormed(t *testing.T, tb *Table, wantSeries int) {
	t.Helper()
	if len(tb.Series) != wantSeries {
		t.Fatalf("%s: %d series, want %d", tb.ID, len(tb.Series), wantSeries)
	}
	if len(tb.X) == 0 {
		t.Fatalf("%s: empty x axis", tb.ID)
	}
	for _, s := range tb.Series {
		if len(s.Y) != len(tb.X) {
			t.Fatalf("%s/%s: ragged series", tb.ID, s.Label)
		}
		for i, y := range s.Y {
			if math.IsNaN(y) || y < 0 {
				t.Errorf("%s/%s[%d] = %g", tb.ID, s.Label, i, y)
			}
		}
	}
	if tb.String() == "" {
		t.Errorf("%s: empty formatting", tb.ID)
	}
}

func TestFig11SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	tb, err := Fig11K10(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 3)
	// Normalized: WOPTSS identically 1.
	w := tb.Get("WOPTSS")
	for _, y := range w.Y {
		if math.Abs(y-1) > 1e-9 {
			t.Errorf("normalized WOPTSS = %g", y)
		}
	}
}

func TestFig12SmallScale(t *testing.T) {
	tb, err := Fig12L1(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 3)
}

func TestTable4SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	tb, err := Table4(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 3)
	if len(tb.X) != 4 {
		t.Errorf("table4 has %d rows", len(tb.X))
	}
}

func TestAblationDeclusterSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	tb, err := AblationDecluster(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 6) // six policies
}

func TestAblationCacheSmallScale(t *testing.T) {
	tb, err := AblationCache(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 2)
	// Disk accesses must fall monotonically as more levels are cached.
	acc := tb.Get("disk-accesses")
	for i := 1; i < len(acc.Y); i++ {
		if acc.Y[i] > acc.Y[i-1]+1e-9 {
			t.Errorf("caching level %g did not reduce accesses: %v", tb.X[i], acc.Y)
		}
	}
}

func TestAblationSRSmallScale(t *testing.T) {
	tb, err := AblationSRTree(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 4)
}

func TestAblationRAID1SmallScale(t *testing.T) {
	tb, err := AblationRAID1(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 3)
	// RAID-1 must not be slower than RAID-0 on the same logical layout,
	// summed over the sweep.
	var r0, r1 float64
	for i := range tb.X {
		r0 += tb.Series[0].Y[i]
		r1 += tb.Series[1].Y[i]
	}
	if r1 > r0*1.02 {
		t.Errorf("RAID-1 total %.4f worse than RAID-0 %.4f", r1, r0)
	}
}

func TestAblationModelSmallScale(t *testing.T) {
	tb, err := AblationModel(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 4)
	// Model within an order of magnitude of simulation everywhere.
	am, as := tb.Get("acc-model"), tb.Get("acc-sim")
	for i := range am.Y {
		ratio := am.Y[i] / as.Y[i]
		if ratio < 0.1 || ratio > 10 {
			t.Errorf("k=%g: model/sim access ratio %.2f", tb.X[i], ratio)
		}
	}
}

func TestAblationBestFirstSmallScale(t *testing.T) {
	tb, err := AblationBestFirst(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 8)
	// BFSS accesses must match WOPTSS (the point of the ablation).
	bf, w := tb.Get("acc-BFSS"), tb.Get("acc-WOPTSS")
	for i := range bf.Y {
		if math.Abs(bf.Y[i]-w.Y[i]) > 1.0 {
			t.Errorf("k=%g: BFSS %.1f vs WOPTSS %.1f", tb.X[i], bf.Y[i], w.Y[i])
		}
	}
}

func TestAblationPackingSmallScale(t *testing.T) {
	tb, err := AblationPacking(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 4)
}

func TestAblationCPUsSmallScale(t *testing.T) {
	tb, err := AblationCPUs(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 2)
	// The slow-CPU series must improve (weakly) with more processors.
	slow := tb.Series[1]
	if slow.Y[len(slow.Y)-1] > slow.Y[0]*1.001 {
		t.Errorf("more CPUs made the slow system worse: %v", slow.Y)
	}
}

func TestAblationRangeSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	tb, err := AblationRange(Options{Scale: 0.04, Queries: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	checkTableWellFormed(t, tb, 3)
	// Every radius must speed up from the narrowest to the widest array.
	for _, s := range tb.Series {
		if s.Y[len(s.Y)-1] >= s.Y[0] {
			t.Errorf("%s: no speed-up %v", s.Label, s.Y)
		}
	}
}
