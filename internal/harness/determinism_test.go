package harness

import "testing"

// TestExperimentsDeterministic: identical options must reproduce
// identical tables — the property that makes EXPERIMENTS.md checkable.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping slow simulation test in -short mode")
	}
	opt := Options{Scale: 0.04, Queries: 5, Seed: 77}
	for _, id := range []string{"fig8-cp", "fig10-lb", "table3"} {
		a, err := Run(id, opt)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(id, opt)
		if err != nil {
			t.Fatal(err)
		}
		if a.String() != b.String() {
			t.Errorf("%s not deterministic:\n%s\nvs\n%s", id, a, b)
		}
	}
}

// TestSeedChangesResults: a different seed must actually change the
// measurements (guards against accidentally ignoring the seed).
func TestSeedChangesResults(t *testing.T) {
	a, err := Run("fig8-cp", Options{Scale: 0.04, Queries: 5, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig8-cp", Options{Scale: 0.04, Queries: 5, Seed: 78})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different seeds produced identical tables")
	}
}
