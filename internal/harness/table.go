package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Series is one labelled curve of an experiment: Y values over the
// shared X axis of its Table.
type Series struct {
	Label string
	Y     []float64
}

// Table is the reproduction of one figure or table of the paper: an X
// axis, one series per algorithm (or policy), and free-form notes
// recording the workload parameters.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	X      []float64
	Series []Series
	Notes  []string
}

// AddSeries appends a series, validating its length against X.
func (t *Table) AddSeries(label string, y []float64) {
	if len(y) != len(t.X) {
		panic(fmt.Sprintf("harness: series %q has %d values for %d x points", label, len(y), len(t.X)))
	}
	t.Series = append(t.Series, Series{Label: label, Y: y})
}

// Get returns the series with the given label, or nil.
func (t *Table) Get(label string) *Series {
	for i := range t.Series {
		if t.Series[i].Label == label {
			return &t.Series[i]
		}
	}
	return nil
}

// Format renders the table as aligned text, matching the rows/series the
// paper reports.
func (t *Table) Format(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  # %s\n", n)
	}
	cols := make([]string, 0, len(t.Series)+1)
	cols = append(cols, t.XLabel)
	for _, s := range t.Series {
		cols = append(cols, s.Label)
	}
	widths := make([]int, len(cols))
	rows := make([][]string, len(t.X))
	for i := range t.X {
		row := make([]string, len(cols))
		row[0] = formatNum(t.X[i])
		for j, s := range t.Series {
			row[j+1] = formatNum(s.Y[i])
		}
		rows[i] = row
	}
	for j, c := range cols {
		widths[j] = len(c)
		for _, row := range rows {
			if len(row[j]) > widths[j] {
				widths[j] = len(row[j])
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = fmt.Sprintf("%*s", widths[j], c)
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	writeRow(cols)
	sep := make([]string, len(cols))
	for j := range sep {
		sep[j] = strings.Repeat("-", widths[j])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	fmt.Fprintf(w, "  (y: %s)\n", t.YLabel)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Format(&b)
	return b.String()
}

// WriteCSV emits the table as comma-separated values (header row, then
// one row per x point) for downstream plotting tools.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := make([]string, 0, len(t.Series)+1)
	header = append(header, t.XLabel)
	for _, s := range t.Series {
		header = append(header, s.Label)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i := range t.X {
		row := make([]string, 0, len(header))
		row = append(row, strconv.FormatFloat(t.X[i], 'g', -1, 64))
		for _, s := range t.Series {
			v := s.Y[i]
			if math.IsNaN(v) {
				row = append(row, "")
			} else {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			}
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatNum(v float64) string {
	switch {
	case math.IsNaN(v):
		return "-"
	case v == math.Trunc(v) && math.Abs(v) < 1e7:
		return fmt.Sprintf("%d", int64(v))
	case math.Abs(v) >= 100:
		return fmt.Sprintf("%.1f", v)
	case math.Abs(v) >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
