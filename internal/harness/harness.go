// Package harness defines and runs every experiment of the paper's
// evaluation (Section 4): Figures 8–12, Tables 3–5, plus the ablations
// called out in DESIGN.md. Each experiment produces a Table whose series
// mirror the rows/curves the paper reports; the cmd/experiments binary
// and the repository-level benchmarks are thin wrappers over this
// package.
package harness

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/simarray"
)

// Options scales experiments. The zero value (after fill) reproduces the
// paper's populations and 100-query workloads; benchmarks run reduced
// scales to keep wall-clock time sane and say so in their notes.
type Options struct {
	// Scale multiplies data-set populations (and, unless Queries is
	// set, the per-point query count). 0 means 1.0: full paper scale.
	Scale float64
	// Queries per measured point; 0 derives 100*Scale (minimum 10).
	Queries int
	// Seed drives every random choice (data, queries, placement,
	// rotational latencies, arrivals).
	Seed int64
}

func (o Options) fill() Options {
	if o.Scale == 0 {
		o.Scale = 1
	}
	if o.Queries == 0 {
		o.Queries = int(100 * o.Scale)
		if o.Queries < 10 {
			o.Queries = 10
		}
	}
	if o.Seed == 0 {
		o.Seed = 1998
	}
	return o
}

// scaleN applies the population scale with a floor that keeps trees at
// least three levels deep.
func (o Options) scaleN(n int) int {
	s := int(float64(n) * o.Scale)
	if s < 2000 {
		s = 2000
	}
	if s > n {
		s = n
	}
	return s
}

// scaleKs drops sweep points exceeding the (scaled) population.
func scaleKs(ks []int, n int) []int {
	out := ks[:0:0]
	for _, k := range ks {
		if k <= n {
			out = append(out, k)
		}
	}
	return out
}

// buildTree constructs the parallel R*-tree for an experiment. The
// paper's trees use PI declustering and one block per node.
func buildTree(dsName string, n, dim, disks int, seed int64) (*parallel.Tree, []geom.Point, error) {
	pts, err := dataset.ByName(dsName, n, dim, seed)
	if err != nil {
		return nil, nil, err
	}
	t, err := parallel.New(parallel.Config{
		Dim:       dim,
		NumDisks:  disks,
		Cylinders: disk.HPC2200A().Cylinders,
		Policy:    decluster.ProximityIndex{},
		Seed:      seed + 17,
	})
	if err != nil {
		return nil, nil, err
	}
	if err := t.BuildPoints(pts); err != nil {
		return nil, nil, err
	}
	return t, pts, nil
}

// meanVisits runs the immediate driver over the query set and returns
// the mean visited-node count for one algorithm.
func meanVisits(t *parallel.Tree, alg query.Algorithm, queries []geom.Point, k int) float64 {
	d := query.Driver{Tree: t}
	xs := make([]float64, len(queries))
	for i, q := range queries {
		_, stats := d.Run(alg, q, k, query.Options{})
		xs[i] = float64(stats.NodesVisited)
	}
	return metrics.Mean(xs)
}

// meanResponse runs the system simulator and returns the mean query
// response time in seconds.
func meanResponse(t *parallel.Tree, alg query.Algorithm, queries []geom.Point, k int, lambda float64, seed int64) (float64, error) {
	return simarray.MeanResponseOf(t, simarray.Config{Seed: seed}, simarray.Workload{
		Algorithm:   alg,
		K:           k,
		Queries:     queries,
		ArrivalRate: lambda,
	})
}

// Runner is a registered experiment.
type Runner struct {
	ID          string
	Description string
	Run         func(Options) (*Table, error)
}

// Experiments returns the registry of every reproducible figure, table
// and ablation, in presentation order.
func Experiments() []Runner {
	return []Runner{
		{"fig8-cp", "Visited nodes vs k, California places, 10 disks, 2-d (Fig 8 left)", Fig8CP},
		{"fig8-lb", "Visited nodes vs k, Long Beach, 10 disks, 2-d (Fig 8 right)", Fig8LB},
		{"fig9-sg", "Visited nodes normalized to WOPTSS vs k, Gaussian 10-d (Fig 9 left)", Fig9SG},
		{"fig9-su", "Visited nodes normalized to WOPTSS vs k, Uniform 10-d (Fig 9 right)", Fig9SU},
		{"fig10-lb", "Response time vs arrival rate, Long Beach, 5 disks, k=10 (Fig 10 left)", Fig10LB},
		{"fig10-cp", "Response time vs arrival rate, California, 10 disks, k=100 (Fig 10 right)", Fig10CP},
		{"fig11-k10", "Response time normalized to WOPTSS vs #disks, k=10 (Fig 11 left)", Fig11K10},
		{"fig11-k100", "Response time normalized to WOPTSS vs #disks, k=100 (Fig 11 right)", Fig11K100},
		{"fig12-l1", "Response time normalized to WOPTSS vs k, λ=1 (Fig 12 left)", Fig12L1},
		{"fig12-l20", "Response time normalized to WOPTSS vs k, λ=20 (Fig 12 right)", Fig12L20},
		{"table3", "Scale-up with population growth (Table 3)", Table3},
		{"table4", "Scale-up with query size growth (Table 4)", Table4},
		{"table5", "Qualitative comparison (Table 5)", Table5},
		{"abl-decl", "Ablation: declustering heuristics (paper §2.2 claim)", AblationDecluster},
		{"abl-eps", "Ablation: k-NN as a series of growing range queries (paper §2.3)", AblationEpsilon},
		{"abl-act", "Ablation: CRSS activation upper bound sweep", AblationActivationBound},
		{"abl-cache", "Ablation: directory-level caching", AblationCache},
		{"abl-sr", "Ablation: R*-tree vs SR-tree access method (paper future work)", AblationSRTree},
		{"abl-raid1", "Ablation: shadowed disks / RAID-1 (paper future work)", AblationRAID1},
		{"abl-model", "Ablation: analytic cost model vs simulation (paper future work)", AblationModel},
		{"abl-bf", "Ablation: best-first search (access-optimal sequential) vs CRSS", AblationBestFirst},
		{"abl-pack", "Ablation: incremental build vs STR packing (reorganization value)", AblationPacking},
		{"abl-cpu", "Ablation: shared-memory multiprocessor (paper future work)", AblationCPUs},
		{"abl-xtree", "Ablation: R*-tree vs X-tree supernodes (paper future work)", AblationXTree},
		{"abl-range", "Ablation: parallel range queries (multiplexed R-tree workload)", AblationRange},
	}
}

// Run dispatches an experiment by ID.
func Run(id string, opt Options) (*Table, error) {
	for _, r := range Experiments() {
		if r.ID == id {
			return r.Run(opt)
		}
	}
	return nil, fmt.Errorf("harness: unknown experiment %q (use one of %v)", id, IDs())
}

// IDs lists the registered experiment identifiers.
func IDs() []string {
	rs := Experiments()
	ids := make([]string, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	sort.Strings(ids)
	return ids
}

// intsToFloats converts a sweep axis.
func intsToFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

// normalizeTo divides each series by the reference series element-wise
// (the paper's "normalized to WOPTSS" presentation).
func normalizeTo(t *Table, refLabel string) {
	ref := t.Get(refLabel)
	if ref == nil {
		return
	}
	base := append([]float64(nil), ref.Y...)
	for i := range t.Series {
		for j := range t.Series[i].Y {
			t.Series[i].Y[j] = metrics.Ratio(t.Series[i].Y[j], base[j])
		}
	}
}

// checkShape validates a monotone ordering expectation between two
// series on average and records the finding in the table notes — the
// reproduction verifies the paper's qualitative claims automatically.
func checkShape(t *Table, betterLabel, worseLabel string) {
	b, w := t.Get(betterLabel), t.Get(worseLabel)
	if b == nil || w == nil {
		return
	}
	var bm, wm float64
	for i := range b.Y {
		if !math.IsNaN(b.Y[i]) {
			bm += b.Y[i]
		}
		if !math.IsNaN(w.Y[i]) {
			wm += w.Y[i]
		}
	}
	verdict := "HOLDS"
	if bm >= wm {
		verdict = "VIOLATED"
	}
	t.Notes = append(t.Notes, fmt.Sprintf("shape %s < %s (mean): %s (%.4g vs %.4g)",
		betterLabel, worseLabel, verdict, bm/float64(len(b.Y)), wm/float64(len(w.Y))))
}
