package harness

import (
	"fmt"

	"repro/internal/analytic"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/simarray"
)

// AblationDecluster backs the paper's §2.2 claim that the Proximity
// Index "shows consistently the best performance in similarity query
// processing over a parallel R*-tree, in comparison to all known
// declustering heuristics". One series per policy: mean CRSS response
// time against the number of disks on the California-like set.
func AblationDecluster(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.CaliforniaN)
	const k = 20
	const lambda = 5.0
	diskSweep := []int{5, 10, 20}

	pts := dataset.CaliforniaLike(n, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-decl",
		Title:  "Declustering ablation: CRSS mean response time (sec) per placement policy",
		XLabel: "number of disks",
		YLabel: "mean response time (sec)",
		X:      intsToFloats(diskSweep),
		Notes: []string{
			fmt.Sprintf("set: california, population: %d, NNs: %d, lambda: %g, queries: %d", n, k, lambda, len(queries)),
		},
	}
	for _, policy := range decluster.All(opt.Seed) {
		ys := make([]float64, len(diskSweep))
		for i, disks := range diskSweep {
			tree, err := parallel.New(parallel.Config{
				Dim:       2,
				NumDisks:  disks,
				Cylinders: disk.HPC2200A().Cylinders,
				Policy:    policy,
				Seed:      opt.Seed + 17,
			})
			if err != nil {
				return nil, err
			}
			if err := tree.BuildPoints(pts); err != nil {
				return nil, err
			}
			mean, err := meanResponse(tree, query.CRSS{}, queries, k, lambda, opt.Seed)
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(policy.Name(), ys)
	}
	checkShape(t, "proximity", "random")
	return t, nil
}

// AblationEpsilon quantifies the paper's §2.3 motivation: answering a
// k-NN query as a series of range queries with growing ε wastes
// resources compared to CRSS. Mean visited nodes against k.
func AblationEpsilon(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.LongBeachN)
	ks := scaleKs([]int{1, 10, 20, 50, 100, 200}, n)

	tree, pts, err := buildTree("longbeach", n, 2, 10, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-eps",
		Title:  "k-NN via growing-ε range queries vs CRSS: mean visited nodes",
		XLabel: "k",
		YLabel: "mean visited nodes",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: longbeach, population: %d, disks: 10, queries: %d", n, len(queries)),
		},
	}
	for _, alg := range []query.Algorithm{query.EpsilonSeries{}, query.CRSS{}, query.WOPTSS{}} {
		ys := make([]float64, len(ks))
		for i, k := range ks {
			ys[i] = meanVisits(tree, alg, queries, k)
		}
		t.AddSeries(alg.Name(), ys)
	}
	checkShape(t, "CRSS", "EPS-SERIES")
	return t, nil
}

// AblationActivationBound sweeps CRSS's activation upper bound u. u = 1
// degenerates toward BBSS (no intra-query parallelism), u = ∞ toward
// FPSS (no fetch control); the paper's u = NumOfDisks balances both.
// Reported: mean response time and (in notes) mean visited nodes.
func AblationActivationBound(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(50000)
	const dim = 5
	const disks = 10
	const k = 50
	const lambda = 5.0
	bounds := []int{1, 2, 5, 10, 20, 1 << 20}

	tree, pts, err := buildTree("gaussian", n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-act",
		Title:  "CRSS activation-bound sweep (u = NumOfDisks is the paper's choice, here 10)",
		XLabel: "activation bound u",
		YLabel: "mean response time (sec)",
		Notes: []string{
			fmt.Sprintf("set: gaussian, population: %d, dimensions: %d, disks: %d, NNs: %d, lambda: %g",
				n, dim, disks, k, lambda),
		},
	}
	var resp, visits []float64
	for _, u := range bounds {
		x := float64(u)
		if u == 1<<20 {
			x = -1 // sentinel rendered in notes
			t.Notes = append(t.Notes, "u = -1 row means u = ∞ (FPSS-like activation)")
		}
		t.X = append(t.X, x)
		alg := query.CRSS{ActivationBound: u}
		mean, err := meanResponse(tree, alg, queries, k, lambda, opt.Seed)
		if err != nil {
			return nil, err
		}
		resp = append(resp, mean)
		visits = append(visits, meanVisits(tree, alg, queries, k))
	}
	t.AddSeries("CRSS(u)", resp)
	t.AddSeries("visited-nodes", visits)
	return t, nil
}

// AblationRange reproduces the workload the multiplexed R-tree was
// designed for (paper §2.2, after Kamel & Faloutsos): parallel range
// queries. Response time against the number of disks for three query
// radii — range queries have no visiting-order concerns, so BFS over a
// declustered tree converts disks directly into speed-up.
func AblationRange(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.CaliforniaN)
	const lambda = 5.0
	diskSweep := []int{2, 5, 10, 20}
	radii := []float64{0.01, 0.05, 0.1}

	pts := dataset.CaliforniaLike(n, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-range",
		Title:  "Parallel range queries (multiplexed R-tree workload): mean response time (sec)",
		XLabel: "number of disks",
		YLabel: "mean response time (sec)",
		X:      intsToFloats(diskSweep),
		Notes: []string{
			fmt.Sprintf("set: california, population: %d, lambda: %g, queries: %d", n, lambda, len(queries)),
		},
	}
	for _, r := range radii {
		ys := make([]float64, len(diskSweep))
		for i, disks := range diskSweep {
			tree, err := parallel.New(parallel.Config{
				Dim:       2,
				NumDisks:  disks,
				Cylinders: disk.HPC2200A().Cylinders,
				Policy:    decluster.ProximityIndex{},
				Seed:      opt.Seed + 17,
			})
			if err != nil {
				return nil, err
			}
			if err := tree.BuildPoints(pts); err != nil {
				return nil, err
			}
			mean, err := simarray.MeanResponseOf(tree, simarray.Config{Seed: opt.Seed}, simarray.Workload{
				Algorithm: query.RangeBFS{Eps: r}, K: 1, Queries: queries, ArrivalRate: lambda,
			})
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(fmt.Sprintf("r=%g", r), ys)
	}
	// Each radius series must (weakly) improve with more disks.
	for _, srs := range t.Series {
		if srs.Y[len(srs.Y)-1] < srs.Y[0] {
			t.Notes = append(t.Notes, fmt.Sprintf("speed-up for %s: HOLDS (%.4f → %.4f)",
				srs.Label, srs.Y[0], srs.Y[len(srs.Y)-1]))
		} else {
			t.Notes = append(t.Notes, fmt.Sprintf("speed-up for %s: VIOLATED", srs.Label))
		}
	}
	return t, nil
}

// AblationXTree compares the plain parallel R*-tree against the X-tree
// supernode variant (the last entry on the paper's supported-methods
// list). Reported per k on 10-d clustered data: CRSS mean node visits
// and physical page reads for both access methods — supernodes trade
// fewer, larger nodes for multi-page sequential reads.
func AblationXTree(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(60000)
	const dim = 10
	const disks = 10
	ks := scaleKs([]int{1, 10, 50, 100, 200}, n)

	pts := dataset.Uniform(n, dim, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	build := func(xtree bool) (*parallel.Tree, error) {
		ratio := 0.0
		if xtree {
			ratio = 0.2
		}
		tree, err := parallel.New(parallel.Config{
			Dim:             dim,
			NumDisks:        disks,
			Cylinders:       disk.HPC2200A().Cylinders,
			MaxOverlapRatio: ratio,
			Policy:          decluster.ProximityIndex{},
			Seed:            opt.Seed + 17,
		})
		if err != nil {
			return nil, err
		}
		return tree, tree.BuildPoints(pts)
	}
	rTree, err := build(false)
	if err != nil {
		return nil, err
	}
	xTree, err := build(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "abl-xtree",
		Title:  "Access-method ablation: R*-tree vs X-tree supernodes (CRSS, 10-d uniform)",
		XLabel: "k",
		YLabel: "visits-* = mean nodes; reads-* = mean physical pages",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: uniform, population: %d, dimensions: %d, disks: %d, queries: %d",
				n, dim, disks, len(queries)),
			fmt.Sprintf("nodes: R* %d, X %d", rTree.Store().Len(), xTree.Store().Len()),
		},
	}
	for _, row := range []struct {
		label string
		tree  *parallel.Tree
	}{
		{"Rstar", rTree},
		{"Xtree", xTree},
	} {
		visits := make([]float64, len(ks))
		reads := make([]float64, len(ks))
		for i, k := range ks {
			d := query.Driver{Tree: row.tree}
			var v, r float64
			for _, q := range queries {
				_, s := d.Run(query.CRSS{}, q, k, query.Options{})
				v += float64(s.NodesVisited)
				r += float64(s.DiskAccesses)
			}
			visits[i] = v / float64(len(queries))
			reads[i] = r / float64(len(queries))
		}
		t.AddSeries("visits-"+row.label, visits)
		t.AddSeries("reads-"+row.label, reads)
	}
	return t, nil
}

// AblationCPUs measures the paper's last future-research item: "the
// impact of increasing the number of processors". With the paper's 100
// MIPS processor the CPU is rarely the bottleneck, so the table also
// includes an artificially slow CPU column where the effect is visible.
func AblationCPUs(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(30000)
	const dim = 5
	const disks = 10
	const k = 50
	const lambda = 10.0
	cpuSweep := []int{1, 2, 4, 8}

	tree, pts, err := buildTree("gaussian", n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-cpu",
		Title:  "Shared-memory multiprocessor: FPSS mean response time vs number of CPUs",
		XLabel: "CPUs",
		YLabel: "mean response time (sec)",
		X:      intsToFloats(cpuSweep),
		Notes: []string{
			fmt.Sprintf("set: gaussian, population: %d, dimensions: %d, disks: %d, NNs: %d, lambda: %g",
				n, dim, disks, k, lambda),
			"FPSS chosen because it scans the most entries per stage; at the paper's 100 MIPS the system is disk-bound (flat row), the 0.05 MIPS column shows the multiprocessor effect",
		},
	}
	for _, mips := range []float64{100, 0.05} {
		ys := make([]float64, len(cpuSweep))
		for i, cpus := range cpuSweep {
			mean, err := simarray.MeanResponseOf(tree, simarray.Config{
				Seed: opt.Seed, CPUs: cpus, MIPS: mips,
			}, simarray.Workload{
				Algorithm: query.FPSS{}, K: k, Queries: queries, ArrivalRate: lambda,
			})
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(fmt.Sprintf("%gMIPS", mips), ys)
	}
	return t, nil
}

// AblationPacking measures what the paper's prohibited "complete
// reorganization" would buy: the same data built incrementally (the
// paper's dynamic setting) versus STR bulk-packed, compared on CRSS
// visited nodes and response time per k.
func AblationPacking(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.CaliforniaN)
	const disks = 10
	const lambda = 5.0
	ks := scaleKs([]int{1, 10, 50, 100, 300}, n)

	pts := dataset.CaliforniaLike(n, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	mk := func(packed bool) (*parallel.Tree, error) {
		tree, err := parallel.New(parallel.Config{
			Dim:       2,
			NumDisks:  disks,
			Cylinders: disk.HPC2200A().Cylinders,
			Policy:    decluster.ProximityIndex{},
			Seed:      opt.Seed + 17,
		})
		if err != nil {
			return nil, err
		}
		if packed {
			return tree, tree.BuildPointsPacked(pts)
		}
		return tree, tree.BuildPoints(pts)
	}
	incr, err := mk(false)
	if err != nil {
		return nil, err
	}
	packed, err := mk(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "abl-pack",
		Title:  "Incremental build vs STR packing: CRSS visited nodes and response time",
		XLabel: "k",
		YLabel: "acc-* = mean visited nodes; resp-* = response (sec), lambda=5",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: california, population: %d, disks: %d, queries: %d", n, disks, len(queries)),
			fmt.Sprintf("pages: incremental %d, packed %d", incr.Store().Len(), packed.Store().Len()),
		},
	}
	for _, row := range []struct {
		label string
		tree  *parallel.Tree
	}{
		{"incremental", incr},
		{"packed", packed},
	} {
		acc := make([]float64, len(ks))
		resp := make([]float64, len(ks))
		for i, k := range ks {
			acc[i] = meanVisits(row.tree, query.CRSS{}, queries, k)
			mean, err := meanResponse(row.tree, query.CRSS{}, queries, k, lambda, opt.Seed)
			if err != nil {
				return nil, err
			}
			resp[i] = mean
		}
		t.AddSeries("acc-"+row.label, acc)
		t.AddSeries("resp-"+row.label, resp)
	}
	// Packing wins on fuller pages and shorter queues (response time);
	// interestingly R* incremental nodes can be better *shaped* for
	// k-NN, so the access counts may go either way — the table records
	// both.
	checkShape(t, "resp-packed", "resp-incremental")
	return t, nil
}

// AblationBestFirst adds the strongest sequential competitor — the
// Hjaltason–Samet best-first search (BFSS), which matches WOPTSS's page
// count without an oracle — and shows that access-optimality alone does
// not win on a disk array: one series pair for mean visited nodes, one
// for mean response time (λ=5). CRSS reads more pages but answers
// faster because it overlaps its I/O.
func AblationBestFirst(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(50000)
	const dim = 5
	const disks = 10
	const lambda = 5.0
	ks := scaleKs([]int{1, 10, 50, 100}, n)

	tree, pts, err := buildTree("gaussian", n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-bf",
		Title:  "Best-first (access-optimal, sequential) vs CRSS: accesses and response time",
		XLabel: "k",
		YLabel: "acc-* = mean visited nodes; resp-* = mean response (sec), lambda=5",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: gaussian, population: %d, dimensions: %d, disks: %d, queries: %d",
				n, dim, disks, len(queries)),
		},
	}
	algs := []query.Algorithm{query.BFSS{}, query.BBSS{}, query.CRSS{}, query.WOPTSS{}}
	for _, alg := range algs {
		acc := make([]float64, len(ks))
		for i, k := range ks {
			acc[i] = meanVisits(tree, alg, queries, k)
		}
		t.AddSeries("acc-"+alg.Name(), acc)
	}
	for _, alg := range algs {
		resp := make([]float64, len(ks))
		for i, k := range ks {
			mean, err := meanResponse(tree, alg, queries, k, lambda, opt.Seed)
			if err != nil {
				return nil, err
			}
			resp[i] = mean
		}
		t.AddSeries("resp-"+alg.Name(), resp)
	}
	checkShape(t, "resp-CRSS", "resp-BFSS")
	checkShape(t, "acc-BFSS", "acc-CRSS")
	return t, nil
}

// AblationModel validates the analytic cost model (paper future work:
// "estimating the response time of a query") against the simulator on
// uniform data: predicted vs measured node accesses (WOPTSS) and
// response times per k.
func AblationModel(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(50000)
	const dim = 2
	const disks = 10
	const lambda = 2.0
	ks := scaleKs([]int{1, 10, 50, 100, 300}, n)

	tree, pts, err := buildTree("uniform", n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)
	model, err := analytic.ModelTree(n, dim, tree.Config().MaxEntries, 0)
	if err != nil {
		return nil, err
	}
	sysModel := analytic.DefaultSystem(disks)

	t := &Table{
		ID:     "abl-model",
		Title:  "Analytic model vs simulation: WOPTSS accesses and response time (uniform data)",
		XLabel: "k",
		YLabel: "see series (accesses; response in sec)",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: uniform, population: %d, dimensions: %d, disks: %d, lambda: %g, queries: %d",
				n, dim, disks, lambda, len(queries)),
		},
	}
	var predAcc, measAcc, predResp, measResp []float64
	for _, k := range ks {
		pa := model.ExpectedNodeAccesses(k)
		predAcc = append(predAcc, pa)
		measAcc = append(measAcc, meanVisits(tree, query.WOPTSS{}, queries, k))
		predResp = append(predResp, sysModel.ExpectedResponse(pa, model.Height, lambda))
		mr, err := meanResponse(tree, query.WOPTSS{}, queries, k, lambda, opt.Seed)
		if err != nil {
			return nil, err
		}
		measResp = append(measResp, mr)
	}
	t.AddSeries("acc-model", predAcc)
	t.AddSeries("acc-sim", measAcc)
	t.AddSeries("resp-model", predResp)
	t.AddSeries("resp-sim", measResp)
	return t, nil
}

// AblationRAID1 studies similarity search on shadowed (RAID-1) disks —
// the paper's "future research" item: reads are served by the better of
// two mirrors. Series: RAID-0 with N logical disks, RAID-1 with the same
// N logical disks (2N physical drives), and — for a fair hardware
// comparison — RAID-0 with 2N logical disks. CRSS, response vs λ.
func AblationRAID1(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.LongBeachN)
	const k = 20
	const disks = 5
	lambdas := []float64{2, 5, 10, 15, 20}

	pts := dataset.LongBeachLike(n, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	buildN := func(numDisks int) (*parallel.Tree, error) {
		tree, err := parallel.New(parallel.Config{
			Dim:       2,
			NumDisks:  numDisks,
			Cylinders: disk.HPC2200A().Cylinders,
			Policy:    decluster.ProximityIndex{},
			Seed:      opt.Seed + 17,
		})
		if err != nil {
			return nil, err
		}
		return tree, tree.BuildPoints(pts)
	}
	treeN, err := buildN(disks)
	if err != nil {
		return nil, err
	}
	tree2N, err := buildN(2 * disks)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "abl-raid1",
		Title:  "Shadowed disks (RAID-1) vs RAID-0: CRSS mean response time (sec)",
		XLabel: "lambda (queries/sec)",
		YLabel: "mean response time (sec)",
		X:      lambdas,
		Notes: []string{
			fmt.Sprintf("set: longbeach, population: %d, NNs: %d, base disks: %d, queries: %d",
				n, k, disks, len(queries)),
			"raid1 uses shortest-queue mirror selection (2 drives per logical disk)",
		},
	}
	rows := []struct {
		label   string
		tree    *parallel.Tree
		mirrors int
	}{
		{fmt.Sprintf("raid0-%dd", disks), treeN, 1},
		{fmt.Sprintf("raid1-%dd(x2)", disks), treeN, 2},
		{fmt.Sprintf("raid0-%dd", 2*disks), tree2N, 1},
	}
	for _, row := range rows {
		ys := make([]float64, len(lambdas))
		for i, l := range lambdas {
			mean, err := simarray.MeanResponseOf(row.tree, simarray.Config{
				Seed: opt.Seed, Mirrors: row.mirrors,
			}, simarray.Workload{
				Algorithm: query.CRSS{}, K: k, Queries: queries, ArrivalRate: l,
			})
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(row.label, ys)
	}
	checkShape(t, rows[1].label, rows[0].label)
	return t, nil
}

// AblationSRTree compares the plain parallel R*-tree against the
// SR-tree variant (entries carry centroid bounding spheres; the paper
// lists the SR-tree among the access methods its algorithm supports
// "with some modifications"). Reported per k: mean visited nodes for
// CRSS on both access methods, plus the WOPTSS floor of each.
func AblationSRTree(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(60000)
	const dim = 10
	const disks = 10
	ks := scaleKs([]int{1, 10, 50, 100, 200}, n)

	pts := dataset.Clustered(n, dim, 64, opt.Seed)
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	build := func(spheres bool) (*parallel.Tree, error) {
		tree, err := parallel.New(parallel.Config{
			Dim:        dim,
			NumDisks:   disks,
			Cylinders:  disk.HPC2200A().Cylinders,
			UseSpheres: spheres,
			Policy:     decluster.ProximityIndex{},
			Seed:       opt.Seed + 17,
		})
		if err != nil {
			return nil, err
		}
		return tree, tree.BuildPoints(pts)
	}
	rTree, err := build(false)
	if err != nil {
		return nil, err
	}
	sTree, err := build(true)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "abl-sr",
		Title:  "Access-method ablation: parallel R*-tree vs SR-tree variant (CRSS, 10-d clustered)",
		XLabel: "k",
		YLabel: "mean visited nodes",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: clustered(64), population: %d, dimensions: %d, disks: %d, queries: %d",
				n, dim, disks, len(queries)),
			fmt.Sprintf("pages: R* %d (fanout %d), SR %d (fanout %d)",
				rTree.Store().Len(), rTree.Config().MaxEntries,
				sTree.Store().Len(), sTree.Config().MaxEntries),
		},
	}
	for _, row := range []struct {
		label string
		tree  *parallel.Tree
		alg   query.Algorithm
	}{
		{"R*/CRSS", rTree, query.CRSS{}},
		{"SR/CRSS", sTree, query.CRSS{}},
		{"R*/WOPTSS", rTree, query.WOPTSS{}},
		{"SR/WOPTSS", sTree, query.WOPTSS{}},
	} {
		ys := make([]float64, len(ks))
		for i, k := range ks {
			ys[i] = meanVisits(row.tree, row.alg, queries, k)
		}
		t.AddSeries(row.label, ys)
	}
	return t, nil
}

// AblationCache measures directory-level caching: response time of CRSS
// with the top 0–3 tree levels pinned in memory. Level 1 is the paper's
// multiplexed-R-tree setting where the root lives at the CPU.
func AblationCache(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(dataset.CaliforniaN)
	const k = 20
	const lambda = 10.0
	levels := []int{0, 1, 2, 3}

	tree, pts, err := buildTree("california", n, 2, 10, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     "abl-cache",
		Title:  "Directory caching: CRSS response time with top levels memory-resident",
		XLabel: "cached levels",
		YLabel: "mean response time (sec)",
		X:      intsToFloats(levels),
		Notes: []string{
			fmt.Sprintf("set: california, population: %d, disks: 10, NNs: %d, lambda: %g", n, k, lambda),
		},
	}
	var resp, accesses []float64
	for _, lv := range levels {
		mean, err := simarray.MeanResponseOf(tree, simarray.Config{Seed: opt.Seed}, simarray.Workload{
			Algorithm:   query.CRSS{},
			K:           k,
			Queries:     queries,
			ArrivalRate: lambda,
			Options:     query.Options{CachedLevels: lv},
		})
		if err != nil {
			return nil, err
		}
		resp = append(resp, mean)
		// Disk accesses per query under caching.
		d := query.Driver{Tree: tree}
		var acc float64
		for _, q := range queries {
			_, s := d.Run(query.CRSS{}, q, k, query.Options{CachedLevels: lv})
			acc += float64(s.DiskAccesses)
		}
		accesses = append(accesses, acc/float64(len(queries)))
	}
	t.AddSeries("CRSS", resp)
	t.AddSeries("disk-accesses", accesses)
	return t, nil
}
