package harness

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/query"
)

// Table3 reproduces the paper's Table 3 — scalability with population
// growth: response time (sec) as population and disks grow together
// ((10k,5), (20k,10), (40k,20), (80k,40)); Gaussian 5-d, k=20, λ=5.
func Table3(opt Options) (*Table, error) {
	opt = opt.fill()
	steps := []struct {
		population int
		disks      int
	}{
		{10000, 5},
		{20000, 10},
		{40000, 20},
		{80000, 40},
	}
	const k = 20
	const lambda = 5.0

	t := &Table{
		ID:     "table3",
		Title:  "Scalability with respect to population growth: response time (sec) vs. population and number of disks",
		XLabel: "population",
		YLabel: "mean response time (sec)",
		Notes: []string{
			fmt.Sprintf("set: gaussian, dimensions: 5, NNs: %d, lambda: %g queries/sec, disks: 5,10,20,40", k, lambda),
		},
	}
	algs := []query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}}
	ys := map[string][]float64{}
	for _, step := range steps {
		n := opt.scaleN(step.population)
		t.X = append(t.X, float64(n))
		tree, pts, err := buildGaussianTree(n, step.disks, opt.Seed)
		if err != nil {
			return nil, err
		}
		queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)
		for _, alg := range algs {
			mean, err := meanResponse(tree, alg, queries, k, lambda, opt.Seed)
			if err != nil {
				return nil, err
			}
			ys[alg.Name()] = append(ys[alg.Name()], mean)
		}
	}
	for _, alg := range algs {
		t.AddSeries(alg.Name(), ys[alg.Name()])
	}
	checkShape(t, "CRSS", "BBSS")
	checkShape(t, "WOPTSS", "CRSS")
	return t, nil
}

// Table4 reproduces the paper's Table 4 — scalability with query size
// growth: response time (sec) as k and disks grow together ((10,5),
// (20,10), (40,20), (80,40)); Gaussian 5-d, population 80,000, λ=5.
func Table4(opt Options) (*Table, error) {
	opt = opt.fill()
	steps := []struct {
		k     int
		disks int
	}{
		{10, 5},
		{20, 10},
		{40, 20},
		{80, 40},
	}
	const lambda = 5.0
	n := opt.scaleN(80000)

	t := &Table{
		ID:     "table4",
		Title:  "Scalability with respect to query size growth: response time (sec) vs. number of nearest neighbors and number of disks",
		XLabel: "k",
		YLabel: "mean response time (sec)",
		Notes: []string{
			fmt.Sprintf("set: gaussian, dimensions: 5, population: %d, lambda: %g queries/sec, disks: 5,10,20,40", n, lambda),
		},
	}
	algs := []query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}}
	ys := map[string][]float64{}
	for _, step := range steps {
		t.X = append(t.X, float64(step.k))
		tree, pts, err := buildGaussianTree(n, step.disks, opt.Seed)
		if err != nil {
			return nil, err
		}
		queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)
		for _, alg := range algs {
			mean, err := meanResponse(tree, alg, queries, step.k, lambda, opt.Seed)
			if err != nil {
				return nil, err
			}
			ys[alg.Name()] = append(ys[alg.Name()], mean)
		}
	}
	for _, alg := range algs {
		t.AddSeries(alg.Name(), ys[alg.Name()])
	}
	checkShape(t, "CRSS", "BBSS")
	return t, nil
}

// Table5 derives the paper's qualitative comparison (Table 5) from
// measured quantities on a shared workload. For each characteristic the
// series hold 1 ("✓ good performance") or 0, decided by measurement:
//
//	disk accesses   — within 3× of the best mean node count
//	response time   — within 3× of the best mean response (λ=5)
//	speed-up        — response improves ≥1.3× from 5 to 20 disks
//	scalability     — response under population+disk growth stays within 2×
//	intra-query par — mean batch size > 1.5 pages
//	inter-query par — on the 20-disk array, sustains λ=8 with mean
//	                  response < 5× the λ=1 response (λ=8 keeps the
//	                  array below saturation so the metric discriminates
//	                  queueing behavior rather than raw demand)
func Table5(opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(20000)
	const dim = 5
	const k = 20

	algs := paperAlgorithms()
	names := make([]string, len(algs))
	for i, a := range algs {
		names[i] = a.Name()
	}

	// Shared measurements.
	tree5, pts, err := buildTree("gaussian", n, dim, 5, opt.Seed)
	if err != nil {
		return nil, err
	}
	tree20, _, err := buildTree("gaussian", n, dim, 20, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	visits := map[string]float64{}
	batchMean := map[string]float64{}
	resp5L5 := map[string]float64{}
	resp20L5 := map[string]float64{}
	resp20L1 := map[string]float64{}
	resp20L8 := map[string]float64{}
	d := query.Driver{Tree: tree5}
	for _, alg := range algs {
		var v, b float64
		for _, q := range queries {
			_, s := d.Run(alg, q, k, query.Options{})
			v += float64(s.NodesVisited)
			b += float64(s.NodesVisited) / float64(s.Batches)
		}
		visits[alg.Name()] = v / float64(len(queries))
		batchMean[alg.Name()] = b / float64(len(queries))
		if resp5L5[alg.Name()], err = meanResponse(tree5, alg, queries, k, 5, opt.Seed); err != nil {
			return nil, err
		}
		if resp20L5[alg.Name()], err = meanResponse(tree20, alg, queries, k, 5, opt.Seed); err != nil {
			return nil, err
		}
		if resp20L1[alg.Name()], err = meanResponse(tree20, alg, queries, k, 1, opt.Seed); err != nil {
			return nil, err
		}
		if resp20L8[alg.Name()], err = meanResponse(tree20, alg, queries, k, 8, opt.Seed); err != nil {
			return nil, err
		}
	}

	minOf := func(m map[string]float64) float64 {
		best := 0.0
		first := true
		for _, v := range m {
			if first || v < best {
				best, first = v, false
			}
		}
		return best
	}
	bestVisits := minOf(visits)
	bestResp := minOf(resp5L5)

	rows := []struct {
		label string
		good  func(name string) bool
	}{
		{"disk accesses", func(a string) bool { return visits[a] <= 3*bestVisits }},
		{"mean response time", func(a string) bool { return resp5L5[a] <= 3*bestResp }},
		{"speed-up", func(a string) bool { return resp5L5[a]/resp20L5[a] >= 1.3 }},
		{"scalability", func(a string) bool { return resp20L5[a] <= 2*resp5L5[a] }},
		{"intraquery parallelism", func(a string) bool { return batchMean[a] > 1.5 }},
		{"interquery parallelism", func(a string) bool { return resp20L8[a] < 5*resp20L1[a] }},
	}

	t := &Table{
		ID:     "table5",
		Title:  "Qualitative comparison of algorithms (1 = good performance, measured)",
		XLabel: "characteristic#",
		YLabel: "1 = good (the paper's ✓)",
		Notes: []string{
			fmt.Sprintf("derived from measurements: gaussian %d pts, 5-d, k=%d, queries=%d", n, k, len(queries)),
		},
	}
	for i, row := range rows {
		t.X = append(t.X, float64(i+1))
		t.Notes = append(t.Notes, fmt.Sprintf("characteristic %d: %s", i+1, row.label))
	}
	for _, name := range names {
		ys := make([]float64, len(rows))
		for i, row := range rows {
			if row.good(name) {
				ys[i] = 1
			}
		}
		t.AddSeries(name, ys)
	}
	return t, nil
}
