package harness

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/query"
)

// The four algorithms in the paper's presentation order.
func paperAlgorithms() []query.Algorithm {
	return []query.Algorithm{query.BBSS{}, query.FPSS{}, query.CRSS{}, query.WOPTSS{}}
}

// fig8KSweep is the paper's query-size axis: 1 to 700 nearest neighbors.
var fig8KSweep = []int{1, 50, 100, 200, 300, 400, 500, 600, 700}

// visitedNodesFigure runs the Figures 8/9 workload: mean visited nodes
// per algorithm as a function of k, optionally normalized to WOPTSS.
func visitedNodesFigure(id, title, dsName string, population, dim, disks int,
	algs []query.Algorithm, ks []int, normalize bool, opt Options) (*Table, error) {

	opt = opt.fill()
	n := opt.scaleN(population)
	ks = scaleKs(ks, n)
	tree, pts, err := buildTree(dsName, n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "k",
		YLabel: "mean visited nodes",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: %s, population: %d, disks: %d, dimensions: %d, queries: %d",
				dsName, n, disks, dim, len(queries)),
		},
	}
	if normalize {
		t.YLabel = "visited nodes normalized to WOPTSS"
	}
	for _, alg := range algs {
		ys := make([]float64, len(ks))
		for i, k := range ks {
			ys[i] = meanVisits(tree, alg, queries, k)
		}
		t.AddSeries(alg.Name(), ys)
	}
	if normalize {
		normalizeTo(t, "WOPTSS")
	}
	// Paper's qualitative claims: WOPTSS floors everyone; CRSS beats
	// FPSS on fetched pages.
	checkShape(t, "WOPTSS", "CRSS")
	if t.Get("FPSS") != nil {
		checkShape(t, "CRSS", "FPSS")
	}
	return t, nil
}

// Fig8CP reproduces Figure 8 (left): visited nodes vs query size on the
// California places set, 10 disks, 2-d.
func Fig8CP(opt Options) (*Table, error) {
	return visitedNodesFigure("fig8-cp",
		"Number of visited nodes vs. query size (Set: California, Disks: 10, Dim: 2)",
		"california", dataset.CaliforniaN, 2, 10,
		paperAlgorithms(), fig8KSweep, false, opt)
}

// Fig8LB reproduces Figure 8 (right) on the Long Beach set.
func Fig8LB(opt Options) (*Table, error) {
	return visitedNodesFigure("fig8-lb",
		"Number of visited nodes vs. query size (Set: Long Beach, Disks: 10, Dim: 2)",
		"longbeach", dataset.LongBeachN, 2, 10,
		paperAlgorithms(), fig8KSweep, false, opt)
}

// Fig9SG reproduces Figure 9 (left): visited nodes normalized to WOPTSS
// on 10-d Gaussian data (the paper plots BBSS, CRSS and WOPTSS).
func Fig9SG(opt Options) (*Table, error) {
	return visitedNodesFigure("fig9-sg",
		"Visited nodes normalized to WOPTSS vs. query size (Set: Gaussian, Population: 60000, Disks: 10, Dim: 10)",
		"gaussian", 60000, 10, 10,
		[]query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}},
		fig8KSweep, true, opt)
}

// Fig9SU reproduces Figure 9 (right) on 10-d uniform data.
func Fig9SU(opt Options) (*Table, error) {
	return visitedNodesFigure("fig9-su",
		"Visited nodes normalized to WOPTSS vs. query size (Set: Uniform, Population: 60000, Disks: 10, Dim: 10)",
		"uniform", 60000, 10, 10,
		[]query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}},
		fig8KSweep, true, opt)
}

// responseVsLambdaFigure runs the Figure 10 workload: mean response time
// against the Poisson arrival rate.
func responseVsLambdaFigure(id, title, dsName string, population, dim, disks, k int,
	lambdas []float64, opt Options) (*Table, error) {

	opt = opt.fill()
	n := opt.scaleN(population)
	if k > n {
		k = n
	}
	tree, pts, err := buildTree(dsName, n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "lambda (queries/sec)",
		YLabel: "mean response time (sec)",
		X:      lambdas,
		Notes: []string{
			fmt.Sprintf("set: %s, population: %d, disks: %d, NNs: %d, dimensions: %d, queries: %d",
				dsName, n, disks, k, dim, len(queries)),
		},
	}
	for _, alg := range paperAlgorithms() {
		ys := make([]float64, len(lambdas))
		for i, l := range lambdas {
			mean, err := meanResponse(tree, alg, queries, k, l, opt.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(alg.Name(), ys)
	}
	checkShape(t, "WOPTSS", "CRSS")
	checkShape(t, "CRSS", "FPSS")
	return t, nil
}

// Fig10LB reproduces Figure 10 (left): response time vs arrival rate on
// Long Beach, 5 disks, k = 10.
func Fig10LB(opt Options) (*Table, error) {
	return responseVsLambdaFigure("fig10-lb",
		"Response time (sec) vs. query arrival rate (Set: Long Beach, Disks: 5, NNs: 10, Dim: 2)",
		"longbeach", dataset.LongBeachN, 2, 5, 10,
		[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, opt)
}

// Fig10CP reproduces Figure 10 (right): response time vs arrival rate on
// California, 10 disks, k = 100.
func Fig10CP(opt Options) (*Table, error) {
	return responseVsLambdaFigure("fig10-cp",
		"Response time (sec) vs. query arrival rate (Set: California, Disks: 10, NNs: 100, Dim: 2)",
		"california", dataset.CaliforniaN, 2, 10, 100,
		[]float64{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}, opt)
}

// responseVsDisksFigure runs the Figure 11 workload: response time
// normalized to WOPTSS against the array width (speed-up view). FPSS is
// omitted, as in the paper ("its performance is very sensitive on the
// workload and the number of disks").
func responseVsDisksFigure(id, title string, k int, opt Options) (*Table, error) {
	opt = opt.fill()
	population := 50000
	n := opt.scaleN(population)
	if k > n {
		k = n
	}
	const dim = 5
	lambda := 5.0
	diskSweep := []int{5, 10, 15, 20, 25, 30}

	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "number of disks",
		YLabel: "response time normalized to WOPTSS",
		X:      intsToFloats(diskSweep),
		Notes: []string{
			fmt.Sprintf("set: gaussian, population: %d, dimensions: %d, NNs: %d, lambda: %g, queries: %d",
				n, dim, k, lambda, opt.fill().Queries),
		},
	}
	algs := []query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}}
	ys := make(map[string][]float64, len(algs))
	for _, alg := range algs {
		ys[alg.Name()] = make([]float64, len(diskSweep))
	}
	for i, disks := range diskSweep {
		tree, pts, err := buildTree("gaussian", n, dim, disks, opt.Seed)
		if err != nil {
			return nil, err
		}
		queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)
		for _, alg := range algs {
			mean, err := meanResponse(tree, alg, queries, k, lambda, opt.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			ys[alg.Name()][i] = mean
		}
	}
	for _, alg := range algs {
		t.AddSeries(alg.Name(), ys[alg.Name()])
	}
	normalizeTo(t, "WOPTSS")
	checkShape(t, "CRSS", "BBSS")
	return t, nil
}

// Fig11K10 reproduces Figure 11 (left): k = 10.
func Fig11K10(opt Options) (*Table, error) {
	return responseVsDisksFigure("fig11-k10",
		"Response time normalized to WOPTSS vs. number of disks (Set: Gaussian, Dim: 5, NNs: 10, λ=5)",
		10, opt)
}

// Fig11K100 reproduces Figure 11 (right): k = 100.
func Fig11K100(opt Options) (*Table, error) {
	return responseVsDisksFigure("fig11-k100",
		"Response time normalized to WOPTSS vs. number of disks (Set: Gaussian, Dim: 5, NNs: 100, λ=5)",
		100, opt)
}

// responseVsKFigure runs the Figure 12 workload: response time
// normalized to WOPTSS against k, at a fixed arrival rate, on 5-d
// uniform data with 10 disks.
func responseVsKFigure(id, title string, lambda float64, opt Options) (*Table, error) {
	opt = opt.fill()
	n := opt.scaleN(80000)
	const dim = 5
	const disks = 10
	ks := scaleKs([]int{1, 10, 20, 40, 60, 80, 100}, n)

	tree, pts, err := buildTree("uniform", n, dim, disks, opt.Seed)
	if err != nil {
		return nil, err
	}
	queries := dataset.SampleQueries(pts, opt.Queries, opt.Seed+5)

	t := &Table{
		ID:     id,
		Title:  title,
		XLabel: "k",
		YLabel: "response time normalized to WOPTSS",
		X:      intsToFloats(ks),
		Notes: []string{
			fmt.Sprintf("set: uniform, population: %d, disks: %d, dimensions: %d, lambda: %g, queries: %d",
				n, disks, dim, lambda, len(queries)),
		},
	}
	algs := []query.Algorithm{query.BBSS{}, query.CRSS{}, query.WOPTSS{}}
	for _, alg := range algs {
		ys := make([]float64, len(ks))
		for i, k := range ks {
			mean, err := meanResponse(tree, alg, queries, k, lambda, opt.Seed+int64(i))
			if err != nil {
				return nil, err
			}
			ys[i] = mean
		}
		t.AddSeries(alg.Name(), ys)
	}
	normalizeTo(t, "WOPTSS")
	checkShape(t, "CRSS", "BBSS")
	return t, nil
}

// Fig12L1 reproduces Figure 12 (left): λ = 1 query/sec.
func Fig12L1(opt Options) (*Table, error) {
	return responseVsKFigure("fig12-l1",
		"Response time normalized to WOPTSS vs. number of nearest neighbors (λ=1)", 1, opt)
}

// Fig12L20 reproduces Figure 12 (right): λ = 20 queries/sec.
func Fig12L20(opt Options) (*Table, error) {
	return responseVsKFigure("fig12-l20",
		"Response time normalized to WOPTSS vs. number of nearest neighbors (λ=20)", 20, opt)
}

// buildGaussianTree is shared by Tables 3/4 (5-d Gaussian data).
func buildGaussianTree(n, disks int, seed int64) (*parallel.Tree, []geom.Point, error) {
	return buildTree("gaussian", n, 5, disks, seed)
}
