// Package dataset generates and persists the point sets of the paper's
// evaluation (Appendix I):
//
//   - SU — synthetic uniform points in the unit hypercube.
//   - SG — synthetic Gaussian (normal) points.
//   - CP — "California places" (Sequoia 2000), 62,173 2-d points. The
//     original file is not distributable here, so CaliforniaLike
//     synthesizes a stand-in: a mixture of ~160 Gaussian clusters whose
//     centers follow a coastal-band density gradient. What the
//     experiments depend on is the multi-scale spatial skew (it shapes
//     MBR overlap and page occupancy), which the mixture reproduces.
//   - LB — TIGER "Long Beach" road intersections, 53,145 2-d points.
//     LongBeachLike synthesizes a jittered street grid with variable
//     block pitch plus diagonal arterials: locally regular, globally
//     density-varying, which is what distinguishes road data from place
//     data.
//
// All generators are deterministic in their seed.
package dataset

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"

	"repro/internal/geom"
)

// Paper population sizes for the real-data stand-ins.
const (
	CaliforniaN = 62173
	LongBeachN  = 53145
)

// Uniform returns n points uniform in [0,1]^dim.
func Uniform(n, dim int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rnd.Float64()
		}
		pts[i] = p
	}
	return pts
}

// Gaussian returns n points from an isotropic normal centered at 0.5^dim
// with standard deviation 0.125, clamped to [0,1]^dim (the paper's SG
// family).
func Gaussian(n, dim int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = clamp01(0.5 + rnd.NormFloat64()*0.125)
		}
		pts[i] = p
	}
	return pts
}

// Clustered returns n points drawn from k Gaussian clusters with
// uniformly placed centers and per-cluster spread — a generic skewed
// distribution used by ablation experiments.
func Clustered(n, dim, k int, seed int64) []geom.Point {
	if k < 1 {
		k = 1
	}
	rnd := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, k)
	spreads := make([]float64, k)
	for c := range centers {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = rnd.Float64()
		}
		centers[c] = p
		spreads[c] = 0.005 + rnd.Float64()*0.05
	}
	pts := make([]geom.Point, n)
	for i := range pts {
		c := rnd.Intn(k)
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			p[d] = clamp01(centers[c][d] + rnd.NormFloat64()*spreads[c])
		}
		pts[i] = p
	}
	return pts
}

// CaliforniaLike synthesizes a CP stand-in: 2-d, population n (use
// CaliforniaN for the paper's size). Cluster centers concentrate along a
// diagonal "coastal band" with an inland density fade; cluster sizes are
// Zipf-ish so a few metropolitan blobs dominate, with a sprinkling of
// isolated places.
func CaliforniaLike(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	const clusters = 160
	type cl struct {
		cx, cy, sd float64
		w          float64
	}
	cls := make([]cl, clusters)
	var totalW float64
	for i := range cls {
		// Coastal band: centers near the line y = 1 - x, biased toward it.
		t := rnd.Float64()
		off := math.Abs(rnd.NormFloat64()) * 0.18 // inland offset
		x := clamp01(t + rnd.NormFloat64()*0.03)
		y := clamp01(1 - t - off)
		w := 1.0 / math.Pow(float64(i+1), 1.1) // Zipf weights
		cls[i] = cl{cx: x, cy: y, sd: 0.004 + rnd.Float64()*0.03, w: w}
		totalW += w
	}
	pts := make([]geom.Point, 0, n)
	// 6% of points are isolated rural places, uniform over the space.
	rural := n * 6 / 100
	for i := 0; i < rural; i++ {
		pts = append(pts, geom.Point{rnd.Float64(), rnd.Float64()})
	}
	for len(pts) < n {
		// Pick a cluster by weight.
		r := rnd.Float64() * totalW
		idx := 0
		for acc := 0.0; idx < clusters-1; idx++ {
			acc += cls[idx].w
			if r <= acc {
				break
			}
		}
		c := cls[idx]
		pts = append(pts, geom.Point{
			clamp01(c.cx + rnd.NormFloat64()*c.sd),
			clamp01(c.cy + rnd.NormFloat64()*c.sd),
		})
	}
	return pts
}

// LongBeachLike synthesizes an LB stand-in: 2-d road-segment
// intersections, population n (use LongBeachN for the paper's size).
// Points sit on a jittered grid whose pitch varies by district, plus
// diagonal arterial roads crossing the grid; a fraction of grid cells
// are empty (parks, water).
func LongBeachLike(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, 0, n)

	// District structure: 4x4 districts with their own block pitch.
	const dist = 4
	pitch := make([]float64, dist*dist)
	skip := make([]float64, dist*dist)
	for i := range pitch {
		pitch[i] = 0.004 + rnd.Float64()*0.009 // block size
		skip[i] = rnd.Float64() * 0.25         // empty-cell probability
	}
	// Grid intersections: ~85% of the population.
	gridN := n * 85 / 100
	for len(pts) < gridN {
		dx, dy := rnd.Intn(dist), rnd.Intn(dist)
		di := dy*dist + dx
		p := pitch[di]
		if rnd.Float64() < skip[di] {
			continue
		}
		// Snap a random location in the district to its grid.
		x0, y0 := float64(dx)/dist, float64(dy)/dist
		gx := x0 + math.Floor(rnd.Float64()/(dist*p))*p
		gy := y0 + math.Floor(rnd.Float64()/(dist*p))*p
		if gx >= x0+1.0/dist || gy >= y0+1.0/dist {
			continue
		}
		// Street jitter.
		pts = append(pts, geom.Point{
			clamp01(gx + rnd.NormFloat64()*p*0.04),
			clamp01(gy + rnd.NormFloat64()*p*0.04),
		})
	}
	// Arterials: diagonal roads contribute the rest.
	for len(pts) < n {
		t := rnd.Float64()
		which := rnd.Intn(3)
		var x, y float64
		switch which {
		case 0: // main diagonal
			x, y = t, clamp01(0.1+0.8*t)
		case 1: // anti-diagonal
			x, y = t, clamp01(0.9-0.7*t)
		default: // ring road
			ang := t * 2 * math.Pi
			x, y = clamp01(0.5+0.42*math.Cos(ang)), clamp01(0.5+0.42*math.Sin(ang))
		}
		pts = append(pts, geom.Point{
			clamp01(x + rnd.NormFloat64()*0.002),
			clamp01(y + rnd.NormFloat64()*0.002),
		})
	}
	return pts
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// ByName builds a data set from an experiment-config name. dim is
// ignored by the 2-d real-data stand-ins.
func ByName(name string, n, dim int, seed int64) ([]geom.Point, error) {
	switch name {
	case "uniform", "su":
		return Uniform(n, dim, seed), nil
	case "gaussian", "sg":
		return Gaussian(n, dim, seed), nil
	case "california", "cp":
		if n == 0 {
			n = CaliforniaN
		}
		return CaliforniaLike(n, seed), nil
	case "longbeach", "lb":
		if n == 0 {
			n = LongBeachN
		}
		return LongBeachLike(n, seed), nil
	case "clustered":
		return Clustered(n, dim, 32, seed), nil
	default:
		return nil, fmt.Errorf("dataset: unknown data set %q", name)
	}
}

// SampleQueries draws query points from the data distribution (the
// standard workload model for similarity queries: users look for
// neighbors of existing feature vectors), slightly perturbed so a query
// point is not exactly a stored object.
func SampleQueries(pts []geom.Point, count int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	out := make([]geom.Point, count)
	for i := range out {
		src := pts[rnd.Intn(len(pts))]
		q := make(geom.Point, len(src))
		for d := range src {
			q[d] = src[d] + rnd.NormFloat64()*1e-4
		}
		out[i] = q
	}
	return out
}

// Binary persistence format: magic "SQDS", version byte, uint16 dim,
// uint32 count, then count*dim little-endian float64s.
var fileMagic = [4]byte{'S', 'Q', 'D', 'S'}

// Save writes points in the package's binary format.
func Save(w io.Writer, pts []geom.Point) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return err
	}
	dim := 0
	if len(pts) > 0 {
		dim = pts[0].Dim()
	}
	if err := bw.WriteByte(1); err != nil {
		return err
	}
	var hdr [6]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(dim))
	binary.LittleEndian.PutUint32(hdr[2:], uint32(len(pts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for i, p := range pts {
		if p.Dim() != dim {
			return fmt.Errorf("dataset: point %d has dim %d, want %d", i, p.Dim(), dim)
		}
		for _, v := range p {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			if _, err := bw.Write(buf[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Load reads points written by Save.
func Load(r io.Reader) ([]geom.Point, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("dataset: reading magic: %w", err)
	}
	if magic != fileMagic {
		return nil, fmt.Errorf("dataset: bad magic %q", magic)
	}
	ver, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if ver != 1 {
		return nil, fmt.Errorf("dataset: unsupported version %d", ver)
	}
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	dim := int(binary.LittleEndian.Uint16(hdr[0:]))
	count := int(binary.LittleEndian.Uint32(hdr[2:]))
	pts := make([]geom.Point, count)
	var buf [8]byte
	for i := 0; i < count; i++ {
		p := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				return nil, fmt.Errorf("dataset: point %d: %w", i, err)
			}
			p[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
		pts[i] = p
	}
	return pts, nil
}
