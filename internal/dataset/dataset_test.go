package dataset

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func inUnitCube(pts []geom.Point) bool {
	for _, p := range pts {
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
		}
	}
	return true
}

func TestGeneratorsBasics(t *testing.T) {
	cases := []struct {
		name string
		pts  []geom.Point
		dim  int
	}{
		{"uniform", Uniform(5000, 3, 1), 3},
		{"gaussian", Gaussian(5000, 5, 1), 5},
		{"clustered", Clustered(5000, 2, 16, 1), 2},
		{"california", CaliforniaLike(5000, 1), 2},
		{"longbeach", LongBeachLike(5000, 1), 2},
	}
	for _, c := range cases {
		if len(c.pts) != 5000 {
			t.Errorf("%s: %d points", c.name, len(c.pts))
		}
		for _, p := range c.pts {
			if p.Dim() != c.dim {
				t.Fatalf("%s: dim %d, want %d", c.name, p.Dim(), c.dim)
			}
		}
		if !inUnitCube(c.pts) {
			t.Errorf("%s: points escape the unit cube", c.name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := CaliforniaLike(2000, 7)
	b := CaliforniaLike(2000, 7)
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("point %d differs across identical seeds", i)
		}
	}
	c := CaliforniaLike(2000, 8)
	same := 0
	for i := range a {
		if a[i].Equal(c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical data")
	}
}

// meanNNDistVariance estimates spatial skew: variance of local density
// measured via cell counts on a grid.
func cellCountVariance(pts []geom.Point, grid int) float64 {
	counts := make([]float64, grid*grid)
	for _, p := range pts {
		x := int(p[0] * float64(grid))
		y := int(p[1] * float64(grid))
		if x >= grid {
			x = grid - 1
		}
		if y >= grid {
			y = grid - 1
		}
		counts[y*grid+x]++
	}
	var mean float64
	for _, c := range counts {
		mean += c
	}
	mean /= float64(len(counts))
	var v float64
	for _, c := range counts {
		v += (c - mean) * (c - mean)
	}
	return v / float64(len(counts))
}

func TestRealLikeSetsAreSkewed(t *testing.T) {
	// The CP/LB stand-ins must be visibly more skewed than uniform —
	// that is the property the experiments depend on.
	n := 20000
	vu := cellCountVariance(Uniform(n, 2, 3), 16)
	vc := cellCountVariance(CaliforniaLike(n, 3), 16)
	vl := cellCountVariance(LongBeachLike(n, 3), 16)
	if vc < 5*vu {
		t.Errorf("CaliforniaLike variance %.1f not ≫ uniform %.1f", vc, vu)
	}
	if vl < 2*vu {
		t.Errorf("LongBeachLike variance %.1f not > uniform %.1f", vl, vu)
	}
	// And California (clustered places) should be more skewed than
	// Long Beach (regular streets).
	if vc < vl {
		t.Errorf("expected CP skew (%.1f) > LB skew (%.1f)", vc, vl)
	}
}

func TestGaussianIsCentered(t *testing.T) {
	pts := Gaussian(20000, 4, 5)
	for d := 0; d < 4; d++ {
		var mean float64
		for _, p := range pts {
			mean += p[d]
		}
		mean /= float64(len(pts))
		if math.Abs(mean-0.5) > 0.01 {
			t.Errorf("axis %d mean = %.3f, want ~0.5", d, mean)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"uniform", "su", "gaussian", "sg", "california", "cp", "longbeach", "lb", "clustered"} {
		pts, err := ByName(name, 100, 2, 1)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if len(pts) != 100 {
			t.Errorf("ByName(%q): %d points", name, len(pts))
		}
	}
	if _, err := ByName("nope", 10, 2, 1); err == nil {
		t.Error("accepted unknown name")
	}
	// n == 0 for the real stand-ins defaults to the paper populations.
	pts, err := ByName("cp", 0, 2, 1)
	if err != nil || len(pts) != CaliforniaN {
		t.Errorf("cp default population = %d, err %v", len(pts), err)
	}
}

func TestSampleQueries(t *testing.T) {
	pts := Uniform(1000, 3, 1)
	qs := SampleQueries(pts, 50, 2)
	if len(qs) != 50 {
		t.Fatalf("%d queries", len(qs))
	}
	for _, q := range qs {
		if q.Dim() != 3 {
			t.Fatal("wrong query dim")
		}
	}
	// Deterministic.
	qs2 := SampleQueries(pts, 50, 2)
	for i := range qs {
		if !qs[i].Equal(qs2[i]) {
			t.Fatal("queries not deterministic")
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	pts := Gaussian(500, 7, 9)
	var buf bytes.Buffer
	if err := Save(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("loaded %d points", len(got))
	}
	for i := range pts {
		if !pts[i].Equal(got[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

// Property: save/load round-trips arbitrary point sets exactly.
func TestSaveLoadProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, dimRaw uint8) bool {
		n := int(nRaw) % 64
		dim := int(dimRaw)%8 + 1
		pts := Uniform(n, dim, seed)
		var buf bytes.Buffer
		if err := Save(&buf, pts); err != nil {
			return false
		}
		got, err := Load(&buf)
		if err != nil || len(got) != n {
			return false
		}
		for i := range pts {
			if !pts[i].Equal(got[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a dataset"))); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("accepted empty input")
	}
	// Bad version.
	var buf bytes.Buffer
	_ = Save(&buf, Uniform(3, 2, 1))
	raw := buf.Bytes()
	raw[4] = 99
	if _, err := Load(bytes.NewReader(raw)); err == nil {
		t.Error("accepted bad version")
	}
}
