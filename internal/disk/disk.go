// Package disk models a magnetic disk drive for event-driven simulation,
// following the two-phase non-linear seek model of Ruemmler & Wilkes
// (IEEE Computer 1994) used by Papadopoulos & Manolopoulos (SIGMOD 1998,
// Section 4.1 and Table 2):
//
//	Tseek(d) = 0                      if d = 0
//	         = c1 + c2*sqrt(d)        if 0 < d <= sdt   (acceleration phase)
//	         = c3 + c4*d              if d > sdt        (steady-speed phase)
//
// A disk access additionally pays rotational latency (half a revolution
// on average; the simulator draws it uniformly from a full revolution),
// block transfer time and a fixed controller overhead.
package disk

import (
	"fmt"
	"math"
	"math/rand"
)

// Params describes a disk drive model. Times are in seconds, seek
// constants in seconds per the paper's equation with d in cylinders.
type Params struct {
	Name               string  // model name, e.g. "HP-C2200A"
	Cylinders          int     // number of cylinders
	RevolutionTime     float64 // full platter revolution time (s)
	C1, C2             float64 // short-seek constants: c1 + c2*sqrt(d)
	C3, C4             float64 // long-seek constants:  c3 + c4*d
	SeekThreshold      int     // sdt: boundary between the two seek phases
	BlockSize          int     // striping unit / page size in bytes
	TransferTime       float64 // time to read one block off the platter (s)
	ControllerOverhead float64 // fixed per-request controller time (s)
}

// Validate reports whether the parameter set is usable.
func (p Params) Validate() error {
	switch {
	case p.Cylinders <= 0:
		return fmt.Errorf("disk: %s: cylinders must be positive", p.Name)
	case p.RevolutionTime <= 0:
		return fmt.Errorf("disk: %s: revolution time must be positive", p.Name)
	case p.SeekThreshold < 0 || p.SeekThreshold > p.Cylinders:
		return fmt.Errorf("disk: %s: seek threshold %d out of range", p.Name, p.SeekThreshold)
	case p.BlockSize <= 0:
		return fmt.Errorf("disk: %s: block size must be positive", p.Name)
	case p.TransferTime < 0 || p.ControllerOverhead < 0:
		return fmt.Errorf("disk: %s: negative time constant", p.Name)
	}
	return nil
}

// HPC2200A returns the parameters of the HP C2200A drive used in the
// paper's experiments (Table 2). The seek constants are from Ruemmler &
// Wilkes: short seeks (d <= 383 cylinders) take 3.24 + 0.400*sqrt(d) ms,
// long seeks 8.00 + 0.008*d ms. The drive has 1449 cylinders and a
// 14.9 ms revolution. The striping unit is one 4 KiB block; at a media
// rate of about 2 MB/s a block transfers in ~2 ms; controller overhead
// is 1.1 ms.
func HPC2200A() Params {
	return Params{
		Name:               "HP-C2200A",
		Cylinders:          1449,
		RevolutionTime:     0.0149,
		C1:                 3.24e-3,
		C2:                 0.400e-3,
		C3:                 8.00e-3,
		C4:                 0.008e-3,
		SeekThreshold:      383,
		BlockSize:          4096,
		TransferTime:       2.0e-3,
		ControllerOverhead: 1.1e-3,
	}
}

// SeekTime returns the head movement time for a seek of d cylinders.
func (p Params) SeekTime(d int) float64 {
	if d < 0 {
		d = -d
	}
	switch {
	case d == 0:
		return 0
	case d <= p.SeekThreshold:
		return p.C1 + p.C2*math.Sqrt(float64(d))
	default:
		return p.C3 + p.C4*float64(d)
	}
}

// AverageRotationalLatency returns half a revolution.
func (p Params) AverageRotationalLatency() float64 { return p.RevolutionTime / 2 }

// Drive is the dynamic state of one disk in the array: its arm position.
// The drive computes per-request service times; queueing is handled by
// the simulation kernel. Drives are not synchronized — each moves its
// arm independently (paper §4.1).
type Drive struct {
	Params
	ID  int
	arm int // current cylinder; disks start at cylinder 0 (paper §4.1)

	// Counters for experiment reporting.
	Requests     uint64
	TotalService float64
	TotalSeek    float64
}

// NewDrive returns a drive with the arm parked at cylinder 0.
func NewDrive(id int, p Params) (*Drive, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Drive{Params: p, ID: id}, nil
}

// Arm returns the current arm cylinder.
func (d *Drive) Arm() int { return d.arm }

// ServiceTime computes the full service time for reading the block at
// the given cylinder and advances the arm there. The rotational latency
// is drawn uniformly from one revolution using rnd; pass nil for the
// deterministic average (half a revolution).
//
// ServiceTime must be called in FCFS service order: the seek distance
// depends on where the previous request left the arm.
func (d *Drive) ServiceTime(cylinder int, rnd *rand.Rand) float64 {
	if cylinder < 0 || cylinder >= d.Cylinders {
		panic(fmt.Sprintf("disk %d: cylinder %d out of range [0,%d)", d.ID, cylinder, d.Cylinders))
	}
	dist := cylinder - d.arm
	if dist < 0 {
		dist = -dist
	}
	seek := d.SeekTime(dist)
	var rot float64
	if rnd != nil {
		rot = rnd.Float64() * d.RevolutionTime
	} else {
		rot = d.AverageRotationalLatency()
	}
	d.arm = cylinder
	t := seek + rot + d.TransferTime + d.ControllerOverhead
	d.Requests++
	d.TotalService += t
	d.TotalSeek += seek
	return t
}

// Reset parks the arm at cylinder 0 and clears counters.
func (d *Drive) Reset() {
	d.arm = 0
	d.Requests = 0
	d.TotalService = 0
	d.TotalSeek = 0
}
