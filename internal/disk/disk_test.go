package disk

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHPC2200AValid(t *testing.T) {
	p := HPC2200A()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.Cylinders != 1449 {
		t.Errorf("cylinders = %d", p.Cylinders)
	}
	if p.RevolutionTime != 0.0149 {
		t.Errorf("revolution = %g", p.RevolutionTime)
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.Cylinders = 0 },
		func(p *Params) { p.RevolutionTime = 0 },
		func(p *Params) { p.SeekThreshold = -1 },
		func(p *Params) { p.SeekThreshold = 100000 },
		func(p *Params) { p.BlockSize = 0 },
		func(p *Params) { p.TransferTime = -1 },
		func(p *Params) { p.ControllerOverhead = -1 },
	}
	for i, mut := range cases {
		p := HPC2200A()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted bad params", i)
		}
	}
}

func TestSeekTimePhases(t *testing.T) {
	p := HPC2200A()
	if got := p.SeekTime(0); got != 0 {
		t.Errorf("zero seek = %g", got)
	}
	// Short seek: 1 cylinder = c1 + c2*1.
	want := p.C1 + p.C2
	if got := p.SeekTime(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("seek(1) = %g, want %g", got, want)
	}
	// Boundary cylinder uses the short-seek equation.
	wantB := p.C1 + p.C2*math.Sqrt(float64(p.SeekThreshold))
	if got := p.SeekTime(p.SeekThreshold); math.Abs(got-wantB) > 1e-12 {
		t.Errorf("seek(sdt) = %g, want %g", got, wantB)
	}
	// One past the boundary uses the long-seek equation.
	wantL := p.C3 + p.C4*float64(p.SeekThreshold+1)
	if got := p.SeekTime(p.SeekThreshold + 1); math.Abs(got-wantL) > 1e-12 {
		t.Errorf("seek(sdt+1) = %g, want %g", got, wantL)
	}
	// Negative distances are absolute.
	if p.SeekTime(-5) != p.SeekTime(5) {
		t.Error("seek not symmetric in direction")
	}
}

// Property: seek time is monotone non-decreasing in distance within each
// phase, and always positive for d > 0.
func TestSeekMonotoneProperty(t *testing.T) {
	p := HPC2200A()
	f := func(dRaw uint16) bool {
		d := int(dRaw) % p.Cylinders
		if d == 0 {
			return p.SeekTime(0) == 0
		}
		t1 := p.SeekTime(d)
		if t1 <= 0 {
			return false
		}
		// monotone within the same phase
		if d > 1 {
			samePhase := (d <= p.SeekThreshold) == (d-1 <= p.SeekThreshold)
			if samePhase && p.SeekTime(d-1) > t1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestDriveServiceTimeDeterministic(t *testing.T) {
	d, err := NewDrive(0, HPC2200A())
	if err != nil {
		t.Fatal(err)
	}
	// First request from cylinder 0 to 100 with nil rng:
	want := d.SeekTime(100) + d.AverageRotationalLatency() + d.TransferTime + d.ControllerOverhead
	got := d.ServiceTime(100, nil)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("service = %g, want %g", got, want)
	}
	if d.Arm() != 100 {
		t.Errorf("arm = %d, want 100", d.Arm())
	}
	// Re-reading the same cylinder: no seek component.
	want2 := d.AverageRotationalLatency() + d.TransferTime + d.ControllerOverhead
	if got2 := d.ServiceTime(100, nil); math.Abs(got2-want2) > 1e-12 {
		t.Errorf("same-cylinder service = %g, want %g", got2, want2)
	}
	if d.Requests != 2 {
		t.Errorf("requests = %d", d.Requests)
	}
}

func TestDriveArmTracksFCFSOrder(t *testing.T) {
	d, _ := NewDrive(0, HPC2200A())
	seq := []int{10, 500, 490, 0}
	var totalSeek float64
	prev := 0
	for _, c := range seq {
		dist := c - prev
		if dist < 0 {
			dist = -dist
		}
		totalSeek += d.SeekTime(dist)
		d.ServiceTime(c, nil)
		prev = c
	}
	if math.Abs(d.TotalSeek-totalSeek) > 1e-12 {
		t.Errorf("TotalSeek = %g, want %g", d.TotalSeek, totalSeek)
	}
}

func TestDriveRotationalLatencyBounded(t *testing.T) {
	d, _ := NewDrive(0, HPC2200A())
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		cyl := rnd.Intn(d.Cylinders)
		before := d.Arm()
		dist := cyl - before
		if dist < 0 {
			dist = -dist
		}
		svc := d.ServiceTime(cyl, rnd)
		min := d.SeekTime(dist) + d.TransferTime + d.ControllerOverhead
		max := min + d.RevolutionTime
		if svc < min || svc > max {
			t.Fatalf("service %g outside [%g,%g]", svc, min, max)
		}
	}
}

func TestDriveOutOfRangePanics(t *testing.T) {
	d, _ := NewDrive(0, HPC2200A())
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	d.ServiceTime(d.Cylinders, nil)
}

func TestDriveReset(t *testing.T) {
	d, _ := NewDrive(3, HPC2200A())
	d.ServiceTime(700, nil)
	d.Reset()
	if d.Arm() != 0 || d.Requests != 0 || d.TotalService != 0 || d.TotalSeek != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestNewDriveRejectsInvalid(t *testing.T) {
	p := HPC2200A()
	p.Cylinders = 0
	if _, err := NewDrive(0, p); err == nil {
		t.Error("NewDrive accepted invalid params")
	}
}
