package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram safe for concurrent use. An
// observation lands in the first bucket whose upper bound is >= the
// value; values above every bound land in the overflow bucket. The hot
// path is one binary search plus two atomic adds — no locks, no
// allocation — so it can sit on the engine's per-fetch path.
type Histogram struct {
	bounds []float64 // ascending inclusive upper bounds
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Uint64 // accumulated float64 bits, CAS loop
}

// DefaultLatencyBounds is the bucket layout the engine uses for its
// wall-clock latency histograms: 1µs to ~8.6s, doubling each bucket.
// 24 buckets resolve percentiles to within a factor of two anywhere in
// that range, which is plenty for spotting a hot disk or a queueing
// collapse.
func DefaultLatencyBounds() []float64 {
	bounds := make([]float64, 24)
	b := 1e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	return bounds
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (the caller's slice is copied). At least one bound is
// required.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	return h
}

// NewLatencyHistogram is NewHistogram(DefaultLatencyBounds()).
func NewLatencyHistogram() *Histogram { return NewHistogram(DefaultLatencyBounds()) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Snapshot captures a point-in-time copy of the histogram. The bucket
// counts are read individually (not under a lock), so a snapshot taken
// during concurrent writes is a consistent-enough view for monitoring:
// each counter is itself exact, and Count is re-derived from the
// buckets so the quantile math never sees a torn total.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// HistSnapshot is a frozen histogram: bucket counts plus derived
// quantiles. Two snapshots of the same histogram can be diffed with
// Sub to get the distribution of an interval.
type HistSnapshot struct {
	Bounds []float64
	Counts []uint64 // len(Bounds)+1; last bucket is overflow
	Count  uint64
	Sum    float64
}

// Mean returns the average observed value (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile returns the p-th percentile (0 <= p <= 100) of the
// snapshot. It uses the same rank rule as metrics.Percentile —
// rank = p/100·(N−1) with linear interpolation between order
// statistics — locating the rank's bucket and interpolating linearly
// across that bucket's value range (the resolution is therefore one
// bucket width). Returns 0 for an empty snapshot.
func (s HistSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := p / 100 * float64(s.Count-1)
	// Walk to the bucket holding the rank-th order statistic.
	var before uint64 // observations in earlier buckets
	for i, c := range s.Counts {
		if c == 0 {
			before += c
			continue
		}
		last := float64(before + c - 1)
		if rank <= last {
			lo, hi := s.bucketRange(i)
			if c == 1 {
				return hi
			}
			frac := (rank - float64(before)) / float64(c-1)
			return lo + (hi-lo)*frac
		}
		before += c
	}
	// Unreachable when Count matches Counts, but stay safe.
	return s.Bounds[len(s.Bounds)-1]
}

// bucketRange returns the value range covered by bucket i. The first
// bucket starts at 0 (the histograms here hold non-negative
// latencies); the overflow bucket is collapsed onto the top bound.
func (s HistSnapshot) bucketRange(i int) (lo, hi float64) {
	if i >= len(s.Bounds) {
		top := s.Bounds[len(s.Bounds)-1]
		return top, top
	}
	if i == 0 {
		return 0, s.Bounds[0]
	}
	return s.Bounds[i-1], s.Bounds[i]
}

// P50 is Quantile(50).
func (s HistSnapshot) P50() float64 { return s.Quantile(50) }

// P95 is Quantile(95).
func (s HistSnapshot) P95() float64 { return s.Quantile(95) }

// P99 is Quantile(99).
func (s HistSnapshot) P99() float64 { return s.Quantile(99) }

// Sub returns the histogram of the interval between prev and s (both
// snapshots of the same histogram, prev taken earlier).
func (s HistSnapshot) Sub(prev HistSnapshot) HistSnapshot {
	out := HistSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		c := s.Counts[i]
		if i < len(prev.Counts) {
			c -= prev.Counts[i]
		}
		out.Counts[i] = c
		out.Count += c
	}
	return out
}
