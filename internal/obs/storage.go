package obs

import "sync/atomic"

// StorageCounters is the persistence-layer telemetry shared by the
// file-backed page stores and the write-ahead log (package pagestore):
// physical page traffic, WAL appends and fsyncs, checkpoints and
// recovery replays. All fields are atomics; do not copy a
// StorageCounters once in use. The engine aggregates one instance
// across all of its replica files and exposes it in its Snapshot.
type StorageCounters struct {
	// PageReads counts physical page reads (pread or mmap copy).
	PageReads atomic.Uint64
	// PageWrites counts physical page writes (pwrite).
	PageWrites atomic.Uint64
	// WALAppends counts records appended to the write-ahead log.
	WALAppends atomic.Uint64
	// WALSyncs counts WAL fsyncs — one per commit boundary, the
	// durability points crash recovery replays to.
	WALSyncs atomic.Uint64
	// DataSyncs counts data-file fsyncs (page-file writes made durable,
	// typically at checkpoints).
	DataSyncs atomic.Uint64
	// Checkpoints counts completed checkpoints (pages flushed to the
	// data file and the WAL truncated).
	Checkpoints atomic.Uint64
	// Recoveries counts recovery replays performed at open.
	Recoveries atomic.Uint64
	// ReplayedRecords counts WAL records applied during recovery.
	ReplayedRecords atomic.Uint64
}

// Snapshot freezes the storage counters.
func (c *StorageCounters) Snapshot() StorageSnapshot {
	return StorageSnapshot{
		PageReads:       c.PageReads.Load(),
		PageWrites:      c.PageWrites.Load(),
		WALAppends:      c.WALAppends.Load(),
		WALSyncs:        c.WALSyncs.Load(),
		DataSyncs:       c.DataSyncs.Load(),
		Checkpoints:     c.Checkpoints.Load(),
		Recoveries:      c.Recoveries.Load(),
		ReplayedRecords: c.ReplayedRecords.Load(),
	}
}

// StorageSnapshot is a point-in-time copy of a StorageCounters.
type StorageSnapshot struct {
	PageReads       uint64
	PageWrites      uint64
	WALAppends      uint64
	WALSyncs        uint64
	DataSyncs       uint64
	Checkpoints     uint64
	Recoveries      uint64
	ReplayedRecords uint64
}

// Sub diffs two snapshots (s taken after prev).
func (s StorageSnapshot) Sub(prev StorageSnapshot) StorageSnapshot {
	return StorageSnapshot{
		PageReads:       s.PageReads - prev.PageReads,
		PageWrites:      s.PageWrites - prev.PageWrites,
		WALAppends:      s.WALAppends - prev.WALAppends,
		WALSyncs:        s.WALSyncs - prev.WALSyncs,
		DataSyncs:       s.DataSyncs - prev.DataSyncs,
		Checkpoints:     s.Checkpoints - prev.Checkpoints,
		Recoveries:      s.Recoveries - prev.Recoveries,
		ReplayedRecords: s.ReplayedRecords - prev.ReplayedRecords,
	}
}
