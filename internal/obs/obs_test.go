package obs

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d", s.Count)
	}
	want := []uint64{2, 1, 1, 1} // (..1], (1..2], (2..4], overflow
	for i, c := range s.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if s.Sum != 106 {
		t.Errorf("sum = %g", s.Sum)
	}
	if m := s.Mean(); m != 106.0/5 {
		t.Errorf("mean = %g", m)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	if q := (HistSnapshot{}).Quantile(50); q != 0 {
		t.Errorf("empty quantile = %g", q)
	}
}

// TestHistogramQuantileMatchesMetrics is the "reuse metrics.Percentile
// semantics" contract: for samples spread over the bucket range, the
// histogram quantile must agree with the exact order-statistic
// percentile to within one bucket width.
func TestHistogramQuantileMatchesMetrics(t *testing.T) {
	bounds := DefaultLatencyBounds()
	h := NewHistogram(bounds)
	rnd := rand.New(rand.NewSource(7))
	xs := make([]float64, 0, 3000)
	for i := 0; i < 3000; i++ {
		// Log-uniform over ~1µs..1s, the realistic latency band.
		v := 1e-6 * float64(uint64(1)<<uint(rnd.Intn(20))) * (1 + rnd.Float64())
		xs = append(xs, v)
		h.Observe(v)
	}
	s := h.Snapshot()
	for _, p := range []float64{50, 95, 99} {
		exact := metrics.Percentile(xs, p)
		got := s.Quantile(p)
		// One doubling bucket of slack: got within [exact/2, exact*2].
		if got < exact/2 || got > exact*2 {
			t.Errorf("P%g = %g, exact %g (off by more than a bucket)", p, got, exact)
		}
	}
	// Quantiles are monotone in p.
	if !(s.P50() <= s.P95() && s.P95() <= s.P99()) {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50(), s.P95(), s.P99())
	}
}

func TestHistogramSingleObservation(t *testing.T) {
	h := NewLatencyHistogram()
	h.Observe(0.003)
	s := h.Snapshot()
	for _, p := range []float64{0, 50, 100} {
		q := s.Quantile(p)
		// The single sample's bucket is (2.048ms, 4.096ms].
		if q < 0.002 || q > 0.0041 {
			t.Errorf("P%g = %g, want within the sample's bucket", p, q)
		}
	}
}

func TestHistogramSub(t *testing.T) {
	h := NewHistogram([]float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	before := h.Snapshot()
	h.Observe(5)
	h.Observe(50)
	diff := h.Snapshot().Sub(before)
	if diff.Count != 2 {
		t.Fatalf("diff count = %d", diff.Count)
	}
	if diff.Counts[1] != 1 || diff.Counts[2] != 1 {
		t.Errorf("diff counts = %v", diff.Counts)
	}
	if diff.Sum != 55 {
		t.Errorf("diff sum = %g", diff.Sum)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLatencyHistogram()
	var wg sync.WaitGroup
	const goroutines, per = 8, 2000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rnd := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < per; i++ {
				h.Observe(rnd.Float64() * 0.01)
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	if s := h.Snapshot(); s.Count != goroutines*per {
		t.Fatalf("snapshot count = %d", s.Count)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":      {},
		"descending": {2, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds did not panic", name)
				}
			}()
			NewHistogram(bounds)
		}()
	}
}

func TestBalanceRatio(t *testing.T) {
	cases := []struct {
		served []uint64
		want   float64
	}{
		{nil, 0},
		{[]uint64{0, 0}, 0},
		{[]uint64{10, 10, 10, 10}, 1},
		{[]uint64{40, 0, 0, 0}, 4},
		{[]uint64{30, 10}, 1.5},
	}
	for _, c := range cases {
		if got := BalanceRatio(c.served); got != c.want {
			t.Errorf("BalanceRatio(%v) = %g, want %g", c.served, got, c.want)
		}
	}
}

func TestDiskGauges(t *testing.T) {
	var g DiskGauges
	g.Queued.Add(3)
	g.Queued.Add(-1)
	g.InFlight.Add(1)
	g.Served.Add(5)
	g.Cancelled.Add(2)
	s := g.Snapshot()
	if s.Queued != 2 || s.InFlight != 1 || s.Served != 5 || s.Cancelled != 2 {
		t.Fatalf("snapshot = %+v", s)
	}
	g.Served.Add(4)
	d := g.Snapshot().Sub(s)
	if d.Served != 4 || d.Cancelled != 0 || d.Queued != 2 {
		t.Fatalf("diff = %+v", d)
	}
}

func TestEventSchema(t *testing.T) {
	e := Event{Type: FetchDone, Stage: 2, Page: 7, Disk: 1, Wall: 5, SimTime: 0.25, CacheHit: true}
	s := e.Schema()
	if s.Wall != 0 || s.SimTime != 0 || s.CacheHit {
		t.Errorf("Schema left timing fields: %+v", s)
	}
	if s.Page != 7 || s.Stage != 2 || s.Disk != 1 {
		t.Errorf("Schema dropped identity fields: %+v", s)
	}
	if (Event{Type: SemWait}).Core() {
		t.Error("SemWait claimed to be core schema")
	}
	for ty := QueryStart; ty <= SemWait; ty++ {
		if strings.HasPrefix(ty.String(), "event(") {
			t.Errorf("type %d has no name", ty)
		}
	}
}

func TestCollector(t *testing.T) {
	var c Collector
	c.Observe(Event{Type: QueryStart})
	c.Observe(Event{Type: SemWait, Wall: 9})
	c.Observe(Event{Type: QueryEnd, Wall: 12})
	if got := len(c.Events()); got != 3 {
		t.Fatalf("%d events", got)
	}
	core := c.CoreSchema()
	if len(core) != 2 || core[0].Type != QueryStart || core[1].Type != QueryEnd || core[1].Wall != 0 {
		t.Fatalf("core schema = %+v", core)
	}
	c.Reset()
	if len(c.Events()) != 0 {
		t.Error("Reset left events")
	}
}

func TestStartDebugServer(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "memstats") {
		t.Error("expvar output missing memstats")
	}
	resp, err = http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
}

// TestDebugServerShutdown is the regression for the missing shutdown
// path: Close and Shutdown must report a clean exit (nil, with
// http.ErrServerClosed swallowed), be idempotent across both methods,
// and actually release the port.
func TestDebugServerShutdown(t *testing.T) {
	srv, err := StartDebugServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr().String()
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown reported %v on a clean exit", err)
	}
	// Calling the other teardown flavor afterwards must be safe and
	// still report clean.
	if err := srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown reported %v", err)
	}
	if _, err := http.Get(fmt.Sprintf("http://%s/debug/vars", addr)); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
	// The port must be free for rebinding.
	srv2, err := StartDebugServer(addr)
	if err != nil {
		t.Fatalf("rebind after shutdown: %v", err)
	}
	if err := srv2.Close(); err != nil {
		t.Fatalf("Close reported %v on a clean exit", err)
	}
}
