package obs

import "sync/atomic"

// FaultCounters is the degraded-mode telemetry of a replicated read
// path: how often fetches retried, redirected to a mirror, hedged, and
// how many replicas are currently marked degraded. All fields are
// atomics; do not copy a FaultCounters once in use.
type FaultCounters struct {
	// Retries counts re-attempts of a failed read on the same replica
	// (the first attempt is not a retry).
	Retries atomic.Uint64
	// Redirects counts fetches served (or attempted) away from their
	// primary replica because the primary failed or was degraded.
	Redirects atomic.Uint64
	// Hedges counts duplicate reads fired at a mirror because the
	// primary had not answered within the hedge delay.
	Hedges atomic.Uint64
	// HedgeWins counts hedged reads whose mirror answered first.
	HedgeWins atomic.Uint64
	// IntegrityFailures counts replica reads that returned a
	// well-formed page other than the one asked for (a misdirected
	// read caught by the read path's node-id identity check).
	IntegrityFailures atomic.Uint64
	// DisksDegraded is the number of replicas currently marked
	// degraded (skipped by reads) — a gauge, not a cumulative counter.
	DisksDegraded atomic.Int64
}

// Snapshot freezes the fault counters.
func (c *FaultCounters) Snapshot() FaultSnapshot {
	return FaultSnapshot{
		Retries:           c.Retries.Load(),
		Redirects:         c.Redirects.Load(),
		Hedges:            c.Hedges.Load(),
		HedgeWins:         c.HedgeWins.Load(),
		IntegrityFailures: c.IntegrityFailures.Load(),
		DisksDegraded:     c.DisksDegraded.Load(),
	}
}

// FaultSnapshot is a point-in-time copy of a FaultCounters.
type FaultSnapshot struct {
	Retries           uint64
	Redirects         uint64
	Hedges            uint64
	HedgeWins         uint64
	IntegrityFailures uint64
	DisksDegraded     int64
}

// Sub diffs two snapshots: counters subtract, the degraded-disk gauge
// keeps the later value.
func (s FaultSnapshot) Sub(prev FaultSnapshot) FaultSnapshot {
	return FaultSnapshot{
		Retries:           s.Retries - prev.Retries,
		Redirects:         s.Redirects - prev.Redirects,
		Hedges:            s.Hedges - prev.Hedges,
		HedgeWins:         s.HedgeWins - prev.HedgeWins,
		IntegrityFailures: s.IntegrityFailures - prev.IntegrityFailures,
		DisksDegraded:     s.DisksDegraded,
	}
}
