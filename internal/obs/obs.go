// Package obs is the low-overhead observability layer shared by the
// three query drivers — the immediate query.Driver, the event-driven
// system simulator (package simarray) and the real concurrent engine
// (package exec). It provides three things:
//
//   - lock-free primitives: atomic counters and gauges, and a
//     fixed-bucket latency histogram whose p50/p95/p99 snapshot math
//     follows internal/metrics.Percentile (rank = p/100·(N−1) with
//     linear interpolation, here applied inside the matched bucket);
//   - a unified trace-event schema (Event / QueryObserver): the same
//     query emits the same causal event sequence under all three
//     drivers, so a query can be profiled identically in a unit test,
//     on the virtual clock and on real hardware — only the timing
//     fields (Wall vs. SimTime) differ per driver;
//   - an optional debug HTTP server exporting expvar (/debug/vars)
//     and net/http/pprof, wired into cmd/simquery and the multiuser
//     example.
//
// Everything here is safe for concurrent use and costs nothing when
// unused: a nil QueryObserver is never invoked, and the histogram and
// gauge hot paths are single atomic operations.
package obs

import (
	"fmt"
	"time"
)

// EventType classifies trace events. The first five types form the
// driver-independent core schema: for one query every driver emits the
// identical sequence of core events (QueryStart, then per stage
// StageIssue, FetchIssue×B, FetchDone×B, StageDone, and finally
// QueryEnd), differing only in the timing fields. The remaining types
// are driver-specific extras.
type EventType uint8

const (
	// QueryStart opens a query's event stream (emitted by the
	// algorithm on its first stage).
	QueryStart EventType = iota + 1
	// StageIssue announces one algorithm stage: Batch page requests
	// are about to be fetched in parallel.
	StageIssue
	// FetchIssue describes one page request of the stage, in request
	// order (Page, Disk, Pages, Cached).
	FetchIssue
	// FetchDone reports one page request resolved, in request order.
	// The engine stamps Wall (and CacheHit); the simulator stamps
	// SimTime; the immediate driver stamps neither.
	FetchDone
	// StageDone closes a stage after its whole batch arrived.
	StageDone
	// QueryEnd closes the query's event stream.
	QueryEnd
	// SemWait is an engine-only extra: time a stage spent blocked
	// acquiring an in-flight fetch slot for one request.
	SemWait
)

// String names the event type for logs and test failures.
func (t EventType) String() string {
	switch t {
	case QueryStart:
		return "query-start"
	case StageIssue:
		return "stage-issue"
	case FetchIssue:
		return "fetch-issue"
	case FetchDone:
		return "fetch-done"
	case StageDone:
		return "stage-done"
	case QueryEnd:
		return "query-end"
	case SemWait:
		return "sem-wait"
	default:
		return fmt.Sprintf("event(%d)", uint8(t))
	}
}

// Event is one trace record. Which fields are meaningful depends on
// Type; unused fields are zero.
type Event struct {
	Type  EventType
	Stage int   // 0-based stage (fetch round) index
	Page  int64 // page id (FetchIssue / FetchDone)
	Disk  int   // disk holding the page
	Pages int   // sequential disk pages the node occupies
	// Cached marks a request served without disk I/O (level cache or
	// shared buffer pool residency).
	Cached bool
	// Batch is the stage's request count (StageIssue / StageDone).
	Batch int
	// CacheHit marks a FetchDone served by the engine's shared
	// decoded-page cache (engine only).
	CacheHit bool
	// Wall is real elapsed time (engine and immediate driver).
	Wall time.Duration
	// SimTime is the simulator's virtual clock in seconds at the event.
	SimTime float64
}

// Core reports whether the event belongs to the driver-independent
// schema (true for everything but driver-specific extras like SemWait).
func (e Event) Core() bool { return e.Type != SemWait }

// Schema strips the driver-dependent fields (timing and engine cache
// attribution), leaving exactly the part of the event that must be
// identical across the three drivers. Cross-driver tests compare
// Schema() sequences.
func (e Event) Schema() Event {
	e.Wall = 0
	e.SimTime = 0
	e.CacheHit = false
	return e
}

// QueryObserver receives trace events. Implementations must be safe
// for concurrent use if shared between queries; events of a single
// query arrive from one goroutine in causal order.
type QueryObserver interface {
	Observe(Event)
}

// ObserverFunc adapts a function to the QueryObserver interface.
type ObserverFunc func(Event)

// Observe implements QueryObserver.
func (f ObserverFunc) Observe(e Event) { f(e) }
