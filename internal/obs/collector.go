package obs

import "sync"

// Collector is a QueryObserver that records every event, safe for
// concurrent use. Tests use it to assert on trace sequences; it is
// also handy for ad-hoc profiling of a single query.
type Collector struct {
	mu     sync.Mutex
	events []Event // guarded by mu
}

// Observe implements QueryObserver.
func (c *Collector) Observe(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

// Events returns a copy of the recorded events in arrival order.
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]Event(nil), c.events...)
}

// CoreSchema returns the recorded core-schema events (driver extras
// dropped, timing fields zeroed) — the canonical form compared across
// drivers.
func (c *Collector) CoreSchema() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, 0, len(c.events))
	for _, e := range c.events {
		if !e.Core() {
			continue
		}
		out = append(out, e.Schema())
	}
	return out
}

// Reset discards the recorded events.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.events = nil
	c.mu.Unlock()
}
