package obs

import "sync/atomic"

// DiskGauges is the live telemetry of one disk's fetch path: how many
// jobs are queued, how many are being served right now, and the
// cumulative serve/cancel counts. All fields are atomics; a DiskGauges
// must not be copied once in use (index into a slice instead).
type DiskGauges struct {
	// Queued counts jobs submitted to the disk's queue and not yet
	// picked up by a worker (includes submitters blocked on a full
	// queue — exactly the backpressure a hot disk exerts).
	Queued atomic.Int64
	// InFlight counts jobs a worker is serving at this instant.
	InFlight atomic.Int64
	// Served counts pages this disk's workers delivered (cumulative).
	Served atomic.Uint64
	// Cancelled counts jobs abandoned because their query's context
	// was cancelled — either before a worker picked them up or while
	// the fetch was in flight (cumulative).
	Cancelled atomic.Uint64
	// Failed counts jobs that ended with a real I/O error after the
	// read path exhausted every replica, retry and hedge (cumulative).
	Failed atomic.Uint64
}

// Snapshot freezes the gauges.
func (g *DiskGauges) Snapshot() DiskSnapshot {
	return DiskSnapshot{
		Queued:    g.Queued.Load(),
		InFlight:  g.InFlight.Load(),
		Served:    g.Served.Load(),
		Cancelled: g.Cancelled.Load(),
		Failed:    g.Failed.Load(),
	}
}

// DiskSnapshot is a point-in-time copy of one disk's gauges.
type DiskSnapshot struct {
	Queued    int64
	InFlight  int64
	Served    uint64
	Cancelled uint64
	Failed    uint64
}

// Sub diffs two snapshots of the same disk: counters subtract,
// instantaneous gauges keep the later value.
func (s DiskSnapshot) Sub(prev DiskSnapshot) DiskSnapshot {
	return DiskSnapshot{
		Queued:    s.Queued,
		InFlight:  s.InFlight,
		Served:    s.Served - prev.Served,
		Cancelled: s.Cancelled - prev.Cancelled,
		Failed:    s.Failed - prev.Failed,
	}
}

// BalanceRatio is the declustering load-balance metric: the busiest
// disk's served-page count over the per-disk mean. 1.0 is a perfectly
// balanced array (the goal of the paper's proximity-index placement);
// N on an N-disk array means one disk took all the load. Returns 0
// when nothing was served.
func BalanceRatio(served []uint64) float64 {
	if len(served) == 0 {
		return 0
	}
	var total, max uint64
	for _, s := range served {
		total += s
		if s > max {
			max = s
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(served))
	return float64(max) / mean
}
