package obs

import (
	"sync"
	"sync/atomic"
)

// TenantMetrics tracks one tenant's query service experience: an
// end-to-end latency histogram plus outcome and SLO counters. Fields
// are unexported behind atomic accessors so the serving hot path never
// takes a lock; Snapshot freezes a consistent-enough view for /v1/stats
// and expvar scrapes.
type TenantMetrics struct {
	latency *Histogram

	served        atomic.Uint64 // queries answered 200
	errored       atomic.Uint64 // queries answered 4xx/5xx other than rejections
	quotaRejected atomic.Uint64 // 429s from the tenant's token bucket
	loadShed      atomic.Uint64 // 429s from array-wide admission control
	sloViolations atomic.Uint64 // served queries slower than the SLO target
}

func newTenantMetrics() *TenantMetrics {
	return &TenantMetrics{latency: NewLatencyHistogram()}
}

// ObserveServed records one successfully answered query: its
// end-to-end latency in seconds, and whether it violated the SLO
// target.
func (m *TenantMetrics) ObserveServed(seconds float64, sloViolated bool) {
	m.latency.Observe(seconds)
	m.served.Add(1)
	if sloViolated {
		m.sloViolations.Add(1)
	}
}

// ObserveError records a query that failed for a non-admission reason.
func (m *TenantMetrics) ObserveError() { m.errored.Add(1) }

// ObserveQuotaRejected records a 429 from the tenant's own quota.
func (m *TenantMetrics) ObserveQuotaRejected() { m.quotaRejected.Add(1) }

// ObserveLoadShed records a 429 from array-wide admission control.
func (m *TenantMetrics) ObserveLoadShed() { m.loadShed.Add(1) }

// Snapshot freezes the tenant's counters and latency distribution.
func (m *TenantMetrics) Snapshot() TenantSnapshot {
	return TenantSnapshot{
		Latency:       m.latency.Snapshot(),
		Served:        m.served.Load(),
		Errored:       m.errored.Load(),
		QuotaRejected: m.quotaRejected.Load(),
		LoadShed:      m.loadShed.Load(),
		SLOViolations: m.sloViolations.Load(),
	}
}

// TenantSnapshot is a frozen TenantMetrics.
type TenantSnapshot struct {
	Latency       HistSnapshot
	Served        uint64
	Errored       uint64
	QuotaRejected uint64
	LoadShed      uint64
	SLOViolations uint64
}

// TenantSet is a registry of per-tenant metrics, keyed by tenant name.
// Tenant lazily creates entries, so the serving path needs no
// pre-registration; lookups take a short mutex (creation is rare, and
// the per-tenant hot counters are lock-free once the entry exists).
type TenantSet struct {
	mu      sync.Mutex
	tenants map[string]*TenantMetrics // guarded by mu
}

// NewTenantSet returns an empty registry.
func NewTenantSet() *TenantSet {
	return &TenantSet{tenants: make(map[string]*TenantMetrics)}
}

// Tenant returns name's metrics, creating them on first use.
func (s *TenantSet) Tenant(name string) *TenantMetrics {
	s.mu.Lock()
	m, ok := s.tenants[name]
	if !ok {
		m = newTenantMetrics()
		s.tenants[name] = m
	}
	s.mu.Unlock()
	return m
}

// Snapshot freezes every tenant's metrics, keyed by tenant name. The
// histogram copies happen outside the registry lock so a scrape never
// stalls tenant creation.
func (s *TenantSet) Snapshot() map[string]TenantSnapshot {
	s.mu.Lock()
	live := make(map[string]*TenantMetrics, len(s.tenants))
	for name, m := range s.tenants {
		live[name] = m
	}
	s.mu.Unlock()
	out := make(map[string]TenantSnapshot, len(live))
	for name, m := range live {
		out[name] = m.Snapshot()
	}
	return out
}
