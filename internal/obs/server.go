package obs

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is a running expvar/pprof endpoint with a shutdown path.
// Callers own its lifecycle: Close (or Shutdown) must be called on
// teardown, and either returns the background Serve error if the
// listener died early — previously that error was silently dropped, so
// a debug server killed by the OS looked identical to one that was
// never scraped.
type DebugServer struct {
	srv      *http.Server
	addr     net.Addr
	serveErr chan error // buffered; receives Serve's return exactly once
}

// Addr is the bound listen address (useful with ":0").
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close stops the server immediately, severing open connections, and
// returns the error Serve exited with (nil on clean shutdown).
func (d *DebugServer) Close() error {
	cerr := d.srv.Close()
	if err := d.waitServe(); err != nil {
		return err
	}
	return cerr
}

// Shutdown stops the server gracefully, waiting for in-flight scrapes
// (profiles can run for seconds) until ctx expires, and returns the
// error Serve exited with.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	serr := d.srv.Shutdown(ctx)
	if err := d.waitServe(); err != nil {
		return err
	}
	return serr
}

func (d *DebugServer) waitServe() error {
	err := <-d.serveErr
	d.serveErr <- err // re-arm so Close and Shutdown are both safe to call
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// StartDebugServer serves expvar (/debug/vars) and net/http/pprof
// (/debug/pprof/...) on addr in a background goroutine, returning once
// the listener is bound so the caller can report the actual address
// (use ":0" for an ephemeral port). The caller must Close or Shutdown
// the returned server on teardown. A dedicated mux is used so
// importing this package never publishes handlers on
// http.DefaultServeMux.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	d := &DebugServer{
		srv:      &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		addr:     ln.Addr(),
		serveErr: make(chan error, 1),
	}
	go func() {
		d.serveErr <- d.srv.Serve(ln)
	}()
	return d, nil
}
