package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// StartDebugServer serves expvar (/debug/vars) and net/http/pprof
// (/debug/pprof/...) on addr in a background goroutine, returning once
// the listener is bound so the caller can report the actual address
// (use ":0" for an ephemeral port). The returned server's Close stops
// it. A dedicated mux is used so importing this package never
// publishes handlers on http.DefaultServeMux.
func StartDebugServer(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() {
		// Serve exits with ErrServerClosed on Close; nothing to do.
		_ = srv.Serve(ln)
	}()
	return srv, ln.Addr(), nil
}
