package obs

import (
	"sync"
	"testing"
)

func TestTenantMetrics(t *testing.T) {
	set := NewTenantSet()
	a := set.Tenant("alice")
	if set.Tenant("alice") != a {
		t.Fatal("Tenant returned a fresh entry for an existing name")
	}

	a.ObserveServed(0.001, false)
	a.ObserveServed(0.250, true)
	a.ObserveError()
	a.ObserveQuotaRejected()
	a.ObserveQuotaRejected()
	a.ObserveLoadShed()
	set.Tenant("bob").ObserveServed(0.002, false)

	snaps := set.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("%d tenants in snapshot, want 2", len(snaps))
	}
	as := snaps["alice"]
	if as.Served != 2 || as.Errored != 1 || as.QuotaRejected != 2 ||
		as.LoadShed != 1 || as.SLOViolations != 1 {
		t.Fatalf("alice snapshot = %+v", as)
	}
	if as.Latency.Count != 2 {
		t.Fatalf("alice latency count = %d, want 2", as.Latency.Count)
	}
	if bs := snaps["bob"]; bs.Served != 1 || bs.SLOViolations != 0 {
		t.Fatalf("bob snapshot = %+v", bs)
	}
}

func TestTenantSetConcurrent(t *testing.T) {
	set := NewTenantSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			names := []string{"a", "b", "c"}
			for i := 0; i < 200; i++ {
				m := set.Tenant(names[(g+i)%len(names)])
				m.ObserveServed(0.001, i%10 == 0)
				if i%50 == 0 {
					set.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	var served uint64
	for _, s := range set.Snapshot() {
		served += s.Served
	}
	if served != 8*200 {
		t.Fatalf("served total = %d, want %d", served, 8*200)
	}
}
