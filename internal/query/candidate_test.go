package query

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func cand(child int, dmin, dmm, dmax float64, count int) candidate {
	return candidate{
		child: rtree.PageID(child), count: count,
		dminSq: dmin, dmmSq: dmm, dmaxSq: dmax,
	}
}

func TestLemma1Bound(t *testing.T) {
	// Sorted by dmax: counts 3, 4, 5. k=5 needs the first two (3+4 ≥ 5),
	// so the bound is the 2nd entry's dmax.
	cands := []candidate{
		cand(1, 0, 1, 4, 3),
		cand(2, 1, 2, 9, 4),
		cand(3, 2, 3, 16, 5),
	}
	if got := lemma1BoundSq(cands, 5); got != 9 {
		t.Errorf("lemma1(k=5) = %g, want 9", got)
	}
	if got := lemma1BoundSq(cands, 1); got != 4 {
		t.Errorf("lemma1(k=1) = %g, want 4", got)
	}
	if got := lemma1BoundSq(cands, 12); got != 16 {
		t.Errorf("lemma1(k=12) = %g, want 16", got)
	}
	// Fewer than k objects: no bound.
	if got := lemma1BoundSq(cands, 13); !math.IsInf(got, 1) {
		t.Errorf("lemma1(k=13) = %g, want +Inf", got)
	}
	if got := lemma1BoundSq(nil, 1); !math.IsInf(got, 1) {
		t.Errorf("lemma1(empty) = %g, want +Inf", got)
	}
}

func TestLemma1UnsortedInput(t *testing.T) {
	// The bound must not depend on input order.
	cands := []candidate{
		cand(3, 2, 3, 16, 5),
		cand(1, 0, 1, 4, 3),
		cand(2, 1, 2, 9, 4),
	}
	if got := lemma1BoundSq(cands, 5); got != 9 {
		t.Errorf("unsorted lemma1 = %g, want 9", got)
	}
	// And the input slice must not be reordered.
	if cands[0].child != 3 {
		t.Error("lemma1BoundSq mutated its input")
	}
}

func TestPruneByDmin(t *testing.T) {
	cands := []candidate{
		cand(1, 1, 0, 0, 1),
		cand(2, 5, 0, 0, 1),
		cand(3, 2, 0, 0, 1),
	}
	out := pruneByDmin(cands, 2)
	if len(out) != 2 || out[0].child != 1 || out[1].child != 3 {
		t.Errorf("prune result %+v", out)
	}
}

func TestRunStackLIFO(t *testing.T) {
	var s runStack
	s.push([]candidate{cand(1, 0, 0, 0, 1)})
	s.push(nil) // empty runs vanish
	s.push([]candidate{cand(2, 0, 0, 0, 1), cand(3, 0, 0, 0, 1)})
	if s.len() != 3 {
		t.Errorf("stack len %d, want 3", s.len())
	}
	top := s.pop()
	if len(top) != 2 || top[0].child != 2 {
		t.Errorf("pop = %+v", top)
	}
	if s.pop()[0].child != 1 {
		t.Error("wrong second pop")
	}
	if !s.empty() || s.pop() != nil {
		t.Error("stack should be empty")
	}
}

func TestTruncateRun(t *testing.T) {
	run := []candidate{
		cand(1, 1, 0, 0, 1),
		cand(2, 4, 0, 0, 1),
		cand(3, 9, 0, 0, 1),
	}
	if got := truncateRun(run, 5); len(got) != 2 {
		t.Errorf("truncate at 5: %d survivors", len(got))
	}
	if got := truncateRun(run, 0.5); len(got) != 0 {
		t.Errorf("truncate at 0.5: %d survivors", len(got))
	}
	if got := truncateRun(run, 100); len(got) != 3 {
		t.Errorf("truncate at 100: %d survivors", len(got))
	}
}

func TestSortByDminDeterministicTies(t *testing.T) {
	cands := []candidate{
		cand(9, 1, 0, 0, 1),
		cand(3, 1, 0, 0, 1),
		cand(5, 0, 0, 0, 1),
	}
	sortByDmin(cands)
	if cands[0].child != 5 || cands[1].child != 3 || cands[2].child != 9 {
		t.Errorf("tie order: %+v", cands)
	}
}

func TestMakeCandidatesSphereTightening(t *testing.T) {
	q := geom.Point{0, 0}
	rect := geom.NewRect(geom.Point{3, 0}, geom.Point{5, 0})
	// A sphere tighter than the rect on both sides.
	sph := geom.Sphere{Center: geom.Point{4, 0}, Radius: 0.5}
	n := &rtree.Node{ID: 1, Level: 1, Entries: []rtree.Entry{
		{Rect: rect, Sphere: sph, Child: 2, Count: 10},
	}}
	c := makeCandidates(q, []*rtree.Node{n})[0]
	// Rect dmin² = 9; sphere dmin = 3.5 → 12.25 (tighter lower bound).
	if math.Abs(c.dminSq-12.25) > 1e-9 {
		t.Errorf("dmin² = %g, want 12.25", c.dminSq)
	}
	// Rect dmax² = 25; sphere dmax = 4.5 → 20.25 (tighter upper bound).
	if math.Abs(c.dmaxSq-20.25) > 1e-9 {
		t.Errorf("dmax² = %g, want 20.25", c.dmaxSq)
	}
	// Dmm capped by the sphere's dmax.
	if c.dmmSq > 20.25+1e-9 {
		t.Errorf("dmm² = %g exceeds sphere cap", c.dmmSq)
	}
	// Level recorded as the child's level.
	if c.level != 0 {
		t.Errorf("level = %d", c.level)
	}
}

// TestMakeCandidatesBatchScalarParity checks the batch candidate pass
// against the per-entry scalar reference, bit-for-bit, across the three
// sphere configurations a node can have: none, all, and mixed (which
// must take the scalar fallback).
func TestMakeCandidatesBatchScalarParity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, dim := range []int{1, 2, 3, 4, 6} {
		for _, mode := range []string{"none", "all", "mixed"} {
			q := make(geom.Point, dim)
			for a := range q {
				q[a] = rng.NormFloat64() * 50
			}
			var nodes []*rtree.Node
			for nn := 0; nn < 3; nn++ {
				n := &rtree.Node{ID: rtree.PageID(nn + 1), Level: 2}
				for i := 0; i < 17; i++ {
					lo := make(geom.Point, dim)
					hi := make(geom.Point, dim)
					for a := 0; a < dim; a++ {
						x, y := rng.NormFloat64()*50, rng.NormFloat64()*50
						if x > y {
							x, y = y, x
						}
						lo[a], hi[a] = x, y
					}
					e := rtree.Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: rtree.PageID(100 + i), Count: 1 + rng.Intn(40)}
					withSphere := mode == "all" || (mode == "mixed" && i%2 == 0)
					if withSphere {
						c := make(geom.Point, dim)
						for a := range c {
							c[a] = rng.NormFloat64() * 50
						}
						e.Sphere = geom.Sphere{Center: c, Radius: math.Abs(rng.NormFloat64() * 20)}
					}
					n.Entries = append(n.Entries, e)
				}
				nodes = append(nodes, n)
			}
			got := makeCandidates(q, nodes)
			want := makeCandidatesScalar(q, nodes)
			if len(got) != len(want) {
				t.Fatalf("%s/d=%d: %d candidates, want %d", mode, dim, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s/d=%d: candidate %d diverged: batch %+v scalar %+v",
						mode, dim, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMakeCandidatesInvalidation checks that mutating a node through
// Store.Update drops its cached flat view, so a later candidate pass
// sees the new geometry.
func TestMakeCandidatesInvalidation(t *testing.T) {
	st := rtree.NewMemStore()
	n := st.Allocate(1)
	n.Entries = append(n.Entries, rtree.Entry{
		Rect: geom.NewRect(geom.Point{1, 1}, geom.Point{2, 2}), Child: 7, Count: 3,
	})
	st.Update(n)
	q := geom.Point{0, 0}
	before := makeCandidates(q, []*rtree.Node{n})[0].dminSq
	n.Entries[0].Rect = geom.NewRect(geom.Point{3, 4}, geom.Point{5, 6})
	st.Update(n)
	after := makeCandidates(q, []*rtree.Node{n})[0].dminSq
	if before != 2 || after != 25 {
		t.Fatalf("dmin² before/after update = %g/%g, want 2/25", before, after)
	}
}

func TestCPUCostModel(t *testing.T) {
	if got := cpuCost(10, 0); got != 20 {
		t.Errorf("scan-only cost = %g, want 20", got)
	}
	// 2N + 3M·log2(M): N=10, M=8 → 20 + 24·3 = 92.
	if got := cpuCost(10, 8); got != 92 {
		t.Errorf("cost = %g, want 92", got)
	}
	if got := cpuCost(0, 1); got != 0 {
		t.Errorf("single sorted item should cost nothing: %g", got)
	}
}
