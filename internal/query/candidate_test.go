package query

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func cand(child int, dmin, dmm, dmax float64, count int) candidate {
	return candidate{
		child: rtree.PageID(child), count: count,
		dminSq: dmin, dmmSq: dmm, dmaxSq: dmax,
	}
}

func TestLemma1Bound(t *testing.T) {
	// Sorted by dmax: counts 3, 4, 5. k=5 needs the first two (3+4 ≥ 5),
	// so the bound is the 2nd entry's dmax.
	cands := []candidate{
		cand(1, 0, 1, 4, 3),
		cand(2, 1, 2, 9, 4),
		cand(3, 2, 3, 16, 5),
	}
	if got := lemma1BoundSq(cands, 5); got != 9 {
		t.Errorf("lemma1(k=5) = %g, want 9", got)
	}
	if got := lemma1BoundSq(cands, 1); got != 4 {
		t.Errorf("lemma1(k=1) = %g, want 4", got)
	}
	if got := lemma1BoundSq(cands, 12); got != 16 {
		t.Errorf("lemma1(k=12) = %g, want 16", got)
	}
	// Fewer than k objects: no bound.
	if got := lemma1BoundSq(cands, 13); !math.IsInf(got, 1) {
		t.Errorf("lemma1(k=13) = %g, want +Inf", got)
	}
	if got := lemma1BoundSq(nil, 1); !math.IsInf(got, 1) {
		t.Errorf("lemma1(empty) = %g, want +Inf", got)
	}
}

func TestLemma1UnsortedInput(t *testing.T) {
	// The bound must not depend on input order.
	cands := []candidate{
		cand(3, 2, 3, 16, 5),
		cand(1, 0, 1, 4, 3),
		cand(2, 1, 2, 9, 4),
	}
	if got := lemma1BoundSq(cands, 5); got != 9 {
		t.Errorf("unsorted lemma1 = %g, want 9", got)
	}
	// And the input slice must not be reordered.
	if cands[0].child != 3 {
		t.Error("lemma1BoundSq mutated its input")
	}
}

func TestPruneByDmin(t *testing.T) {
	cands := []candidate{
		cand(1, 1, 0, 0, 1),
		cand(2, 5, 0, 0, 1),
		cand(3, 2, 0, 0, 1),
	}
	out := pruneByDmin(cands, 2)
	if len(out) != 2 || out[0].child != 1 || out[1].child != 3 {
		t.Errorf("prune result %+v", out)
	}
}

func TestRunStackLIFO(t *testing.T) {
	var s runStack
	s.push([]candidate{cand(1, 0, 0, 0, 1)})
	s.push(nil) // empty runs vanish
	s.push([]candidate{cand(2, 0, 0, 0, 1), cand(3, 0, 0, 0, 1)})
	if s.len() != 3 {
		t.Errorf("stack len %d, want 3", s.len())
	}
	top := s.pop()
	if len(top) != 2 || top[0].child != 2 {
		t.Errorf("pop = %+v", top)
	}
	if s.pop()[0].child != 1 {
		t.Error("wrong second pop")
	}
	if !s.empty() || s.pop() != nil {
		t.Error("stack should be empty")
	}
}

func TestTruncateRun(t *testing.T) {
	run := []candidate{
		cand(1, 1, 0, 0, 1),
		cand(2, 4, 0, 0, 1),
		cand(3, 9, 0, 0, 1),
	}
	if got := truncateRun(run, 5); len(got) != 2 {
		t.Errorf("truncate at 5: %d survivors", len(got))
	}
	if got := truncateRun(run, 0.5); len(got) != 0 {
		t.Errorf("truncate at 0.5: %d survivors", len(got))
	}
	if got := truncateRun(run, 100); len(got) != 3 {
		t.Errorf("truncate at 100: %d survivors", len(got))
	}
}

func TestSortByDminDeterministicTies(t *testing.T) {
	cands := []candidate{
		cand(9, 1, 0, 0, 1),
		cand(3, 1, 0, 0, 1),
		cand(5, 0, 0, 0, 1),
	}
	sortByDmin(cands)
	if cands[0].child != 5 || cands[1].child != 3 || cands[2].child != 9 {
		t.Errorf("tie order: %+v", cands)
	}
}

func TestMakeCandidatesSphereTightening(t *testing.T) {
	q := geom.Point{0, 0}
	rect := geom.NewRect(geom.Point{3, 0}, geom.Point{5, 0})
	// A sphere tighter than the rect on both sides.
	sph := geom.Sphere{Center: geom.Point{4, 0}, Radius: 0.5}
	n := &rtree.Node{ID: 1, Level: 1, Entries: []rtree.Entry{
		{Rect: rect, Sphere: sph, Child: 2, Count: 10},
	}}
	c := makeCandidates(q, []*rtree.Node{n})[0]
	// Rect dmin² = 9; sphere dmin = 3.5 → 12.25 (tighter lower bound).
	if math.Abs(c.dminSq-12.25) > 1e-9 {
		t.Errorf("dmin² = %g, want 12.25", c.dminSq)
	}
	// Rect dmax² = 25; sphere dmax = 4.5 → 20.25 (tighter upper bound).
	if math.Abs(c.dmaxSq-20.25) > 1e-9 {
		t.Errorf("dmax² = %g, want 20.25", c.dmaxSq)
	}
	// Dmm capped by the sphere's dmax.
	if c.dmmSq > 20.25+1e-9 {
		t.Errorf("dmm² = %g exceeds sphere cap", c.dmmSq)
	}
	// Level recorded as the child's level.
	if c.level != 0 {
		t.Errorf("level = %d", c.level)
	}
}

func TestCPUCostModel(t *testing.T) {
	if got := cpuCost(10, 0); got != 20 {
		t.Errorf("scan-only cost = %g, want 20", got)
	}
	// 2N + 3M·log2(M): N=10, M=8 → 20 + 24·3 = 92.
	if got := cpuCost(10, 8); got != 92 {
		t.Errorf("cost = %g, want 92", got)
	}
	if got := cpuCost(0, 1); got != 0 {
		t.Errorf("single sorted item should cost nothing: %g", got)
	}
}
