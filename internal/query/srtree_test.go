package query

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/geom"
	"repro/internal/parallel"
)

// buildSR constructs an SR-tree variant over pts.
func buildSR(t testing.TB, pts []geom.Point, dim, disks int) *parallel.Tree {
	t.Helper()
	pt, err := parallel.New(parallel.Config{
		Dim:        dim,
		NumDisks:   disks,
		Cylinders:  1449,
		UseSpheres: true,
		Policy:     decluster.ProximityIndex{},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	return pt
}

func TestAllAlgorithmsExactOnSRTree(t *testing.T) {
	pts := dataset.Clustered(2500, 8, 10, 33)
	tree := buildSR(t, pts, 8, 10)
	if err := tree.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	d := Driver{Tree: tree}
	for _, alg := range allAlgorithms() {
		for _, q := range dataset.SampleQueries(pts, 8, 34) {
			for _, k := range []int{1, 10, 40} {
				got, _ := d.Run(alg, q, k, Options{})
				want := bruteforce.KNN(pts, q, k)
				if len(got) != len(want) {
					t.Fatalf("SR %s k=%d: %d results, want %d", alg.Name(), k, len(got), len(want))
				}
				for i := range got {
					if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
						t.Fatalf("SR %s k=%d rank %d: %g want %g",
							alg.Name(), k, i, got[i].DistSq, want[i].DistSq)
					}
				}
			}
		}
	}
}

func TestSRPrunesBetterPerPageInHighDim(t *testing.T) {
	// Per page, SR entries (intersected sphere+rect bounds) must not
	// activate more candidates than rect-only entries on the same data;
	// across the whole query the SR fanout is smaller, so we compare
	// the fraction of pages visited rather than absolute counts.
	pts := dataset.Gaussian(4000, 10, 35)
	rTree := buildTree(t, pts, 10, 10, 0)
	sTree := buildSR(t, pts, 10, 10)

	fracVisited := func(tree *parallel.Tree) float64 {
		total := float64(tree.Store().Len())
		d := Driver{Tree: tree}
		var sum float64
		for _, q := range dataset.SampleQueries(pts, 15, 36) {
			_, s := d.Run(CRSS{}, q, 10, Options{})
			sum += float64(s.NodesVisited) / total
		}
		return sum / 15
	}
	rf, sf := fracVisited(rTree), fracVisited(sTree)
	if sf > rf*1.3 {
		t.Errorf("SR visited fraction %.3f much worse than R* %.3f", sf, rf)
	}
	t.Logf("visited fraction: R* %.3f, SR %.3f", rf, sf)
}

func TestSRWOPTSSStillFloors(t *testing.T) {
	pts := dataset.Gaussian(2000, 6, 37)
	tree := buildSR(t, pts, 6, 8)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 6, 38) {
		_, w := d.Run(WOPTSS{}, q, 10, Options{})
		for _, alg := range []Algorithm{BBSS{}, FPSS{}, CRSS{}} {
			_, s := d.Run(alg, q, 10, Options{})
			if s.NodesVisited < w.NodesVisited {
				t.Errorf("%s visited %d < WOPTSS %d on SR-tree",
					alg.Name(), s.NodesVisited, w.NodesVisited)
			}
		}
	}
}
