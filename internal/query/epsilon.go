package query

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// EpsilonSeries answers a k-NN query as a series of range queries with
// growing radius — the naive transformation the paper's Section 2.3
// warns against ("we may face unnecessary resource consumption"). Each
// attempt runs a breadth-first range query of radius ε over the parallel
// tree; if fewer than k objects fall inside, ε is multiplied by Growth
// and the search restarts from the root, re-fetching pages it already
// read. It exists as the ablation baseline quantifying that waste.
type EpsilonSeries struct {
	// Growth is the radius multiplier between attempts (default 2).
	Growth float64
}

// Name implements Algorithm.
func (e EpsilonSeries) Name() string { return "EPS-SERIES" }

// NewExecution implements Algorithm.
func (e EpsilonSeries) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	g := e.Growth
	if g <= 1 {
		g = 2
	}
	return &epsExec{base: newBase(t, q, k, opts), growth: g, epsSq: -1}
}

type epsExec struct {
	base
	growth  float64
	epsSq   float64 // current squared radius; -1 until seeded at the root
	found   []Neighbor
	started bool
}

func (e *epsExec) Results() []Neighbor {
	out := append([]Neighbor(nil), e.found...)
	sortNeighbors(out)
	if len(out) > e.k {
		out = out[:e.k]
	}
	return out
}

// restart begins a new attempt with a larger radius by re-requesting the
// root page.
func (e *epsExec) restart() StepResult {
	e.found = e.found[:0]
	e.epsSq *= e.growth * e.growth
	return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
}

func (e *epsExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}

	scanned := 0
	if len(delivered) > 0 && delivered[0].IsLeaf() {
		if e.epsSq < 0 {
			// Single-level tree: the root is a leaf and no directory
			// statistics exist — scan it whole.
			e.epsSq = math.MaxFloat64 / 4
		}
		for _, n := range delivered {
			scanned += len(n.Entries)
			for i, d := range e.leafDmin(n) {
				if d <= e.epsSq {
					en := n.Entries[i]
					e.found = append(e.found, Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		}
		if len(e.found) >= e.k || len(e.found) >= e.tree.Len() {
			e.done = true
			return e.finishStep(nil, scanned, 0)
		}
		// Not enough answers: grow the radius and redo everything.
		sr := e.restart()
		sr.Instructions += cpuCost(scanned, 0)
		e.stats.Scanned += scanned
		e.stats.Instructions += cpuCost(scanned, 0)
		return sr
	}

	// Directory level.
	cands := makeCandidates(e.q, delivered)
	scanned += len(cands)
	if e.epsSq < 0 {
		// Seed the initial radius from the Lemma-1 bound at the root —
		// an optimistic guess a real system might derive from
		// statistics — shrunk so that undershooting (and hence radius
		// growth) actually occurs, as in the paper's discussion.
		b := lemma1BoundSq(cands, e.k)
		if math.IsInf(b, 1) {
			// Fewer than k objects in the tree: cover everything.
			b = math.MaxFloat64 / 4
		}
		e.epsSq = b / 16
	}
	var reqs []PageRequest
	for _, c := range cands {
		if c.dminSq <= e.epsSq {
			reqs = append(reqs, e.request(c.child, c.level))
		}
	}
	if len(reqs) == 0 {
		// The sphere misses every branch: radius too small.
		if e.tree.Len() == 0 {
			e.done = true
			return e.finishStep(nil, scanned, 0)
		}
		sr := e.restart()
		sr.Instructions += cpuCost(scanned, 0)
		e.stats.Scanned += scanned
		e.stats.Instructions += cpuCost(scanned, 0)
		return sr
	}
	return e.finishStep(reqs, scanned, 0)
}
