// Package query implements the four disk-array k-NN algorithms of
// Papadopoulos & Manolopoulos (SIGMOD 1998, Section 3) over a parallel
// R*-tree:
//
//   - BBSS — Branch-and-Bound Similarity Search (Roussopoulos et al.,
//     SIGMOD 1995): depth-first, one page fetched at a time, no
//     intra-query parallelism.
//   - FPSS — Full-Parallel Similarity Search: breadth-first, every
//     candidate page of a level fetched in one parallel batch.
//   - CRSS — Candidate-Reduction Similarity Search (the paper's
//     contribution): a BFS/DFS hybrid driven by the Lemma-1 threshold,
//     the candidate-reduction criterion and a stack of candidate runs,
//     with the activation batch bounded by the number of disks.
//   - WOPTSS — the hypothetical Weak-OPTimal algorithm: given the exact
//     k-th neighbor distance by an oracle, it fetches only pages whose
//     MBR intersects the query sphere (the lower bound for any
//     algorithm).
//
// Every algorithm is expressed as a stage-driven Execution: the driver —
// either the immediate Driver below (used for node-access experiments
// and correctness tests) or the event-driven system simulator (package
// simarray) — fetches the requested pages and hands them back, so the
// same algorithm code is timed under queueing, seeks and bus contention
// without modification.
package query

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// PageRequest asks the driver to fetch one node from the array. Pages
// is the number of sequential disk pages the node occupies (1 for
// ordinary nodes, more for X-tree supernodes).
type PageRequest struct {
	Page     rtree.PageID
	Disk     int
	Cylinder int
	Pages    int
	Cached   bool // memory-resident (no disk I/O); still a node visit
}

// StepResult is what an Execution returns from one processing stage.
type StepResult struct {
	// Requests lists the pages to fetch before the next step. Pages on
	// different disks are fetched in parallel; pages on the same disk
	// queue up.
	Requests []PageRequest
	// Instructions is the CPU work of this stage under the paper's cost
	// model: 2N + 3M·log2(M) instructions for scanning N entries and
	// sorting M survivors (§4.1).
	Instructions float64
}

// Execution is a stage-driven k-NN query run.
type Execution interface {
	// Step processes pages delivered for the previous request batch
	// (nil on the first call) and returns the next batch. An empty
	// request list means the query has completed.
	Step(delivered []*rtree.Node) StepResult
	// Done reports whether the query has produced its final answer.
	Done() bool
	// Results returns the k nearest neighbors, ordered by distance.
	// Valid once Done.
	Results() []Neighbor
	// Stats returns access counters accumulated so far.
	Stats() *Stats
}

// Neighbor is one answer: an object and its squared distance.
type Neighbor struct {
	Object rtree.ObjectID
	Rect   geom.Rect
	DistSq float64
}

// Stats aggregates the per-query counters the experiments report.
type Stats struct {
	NodesVisited int   // pages delivered (the paper's "visited nodes")
	DiskAccesses int   // pages that caused physical reads (excludes cached)
	Batches      int   // parallel fetch rounds
	MaxParallel  int   // largest single batch
	PerDisk      []int // physical reads per disk
	Scanned      int   // total entries scanned (N in the CPU model)
	Sorted       int   // total entries sorted  (M in the CPU model)
	Instructions float64
}

// cpuCost is the paper's CPU model: 2N + 3M·log2(M) instructions.
func cpuCost(scanned, sorted int) float64 {
	c := 2 * float64(scanned)
	if sorted > 1 {
		c += 3 * float64(sorted) * math.Log2(float64(sorted))
	}
	return c
}

// Options tunes execution behavior shared by all algorithms.
type Options struct {
	// CachedLevels pins the top CachedLevels levels of the tree in
	// memory: pages there are visited without disk requests. 0
	// reproduces the paper (every page, including the root, is read
	// from its disk).
	CachedLevels int
	// SharedCache, when non-nil, is an LRU page cache shared across
	// queries (a buffer pool): a request for a cached page skips disk
	// I/O, and every fetched page enters the cache. The paper's model
	// has no buffer pool; this drives the inter-query caching ablation.
	SharedCache *bufferpool.Pool[rtree.PageID, struct{}]
	// Trace, when non-nil, receives one line per algorithm stage —
	// CRSS reports its operating mode transitions (ADAPTIVE, UPDATE,
	// NORMAL, TERMINATE; the paper's Figure 6 state machine), the other
	// algorithms their expansion decisions. For debugging and teaching;
	// nil costs nothing.
	Trace func(line string)
	// Observer, when non-nil, receives the structured trace events of
	// package obs: the algorithm emits the driver-independent core
	// schema (QueryStart, StageIssue, FetchIssue, QueryEnd) and each
	// driver adds its completions (FetchDone, StageDone) with its own
	// clock — wall time under the immediate driver and the engine,
	// virtual seconds under the simulator. Must be safe for concurrent
	// use when one observer is shared across queries; nil costs
	// nothing.
	Observer obs.QueryObserver
}

// Algorithm builds executions; implementations are stateless and safe to
// reuse across queries.
type Algorithm interface {
	Name() string
	NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution
}

// base carries the plumbing shared by all four algorithms.
type base struct {
	tree  *parallel.Tree
	q     geom.Point
	k     int
	opts  Options
	stats Stats
	done  bool
	// pendingAdmit holds pages requested from disk in the previous
	// stage but not yet admitted to the shared cache, and
	// stageRequested the current stage's disk requests. Admission
	// happens on delivery (when the next stage runs), never at request
	// time, so a fetch that fails or is cancelled mid-flight cannot
	// leave a false residency behind.
	pendingAdmit   []rtree.PageID
	stageRequested []rtree.PageID
	// stage numbers the fetch rounds for trace events; started flags
	// the QueryStart emission.
	stage      int
	obsStarted bool
	// scanBuf and scanTmp are the reusable batch-kernel output buffers
	// for entry scans (see leafDmin / entrySphereRectMin), sized to the
	// largest node scanned so far.
	scanBuf []float64
	scanTmp []float64
}

// leafDmin returns Dmin²(q, entry) for every entry of the node, computed
// with the batch kernel over the node's flat view. The returned slice is
// the execution's scratch buffer, valid until the next scan call.
func (b *base) leafDmin(n *rtree.Node) []float64 {
	m := len(n.Entries)
	if cap(b.scanBuf) < m {
		b.scanBuf = make([]float64, m)
	}
	out := b.scanBuf[:m]
	geom.MinDistSqBatch(b.q, &n.Flat().Rects, out)
	return out
}

// entrySphereRectMin returns the intersected rect/sphere lower bound
// SphereRectMin(q, entry) for every entry of the node. Scratch-backed
// like leafDmin.
func (b *base) entrySphereRectMin(n *rtree.Node) []float64 {
	m := len(n.Entries)
	if cap(b.scanBuf) < m {
		b.scanBuf = make([]float64, m)
	}
	out := b.scanBuf[:m]
	f := n.Flat()
	if f.MixedSpheres {
		// No SoA sphere view exists for mixed nodes; match the scalar
		// per-entry semantics exactly.
		for i, e := range n.Entries {
			out[i] = geom.SphereRectMin(b.q, e.Rect, e.Sphere)
		}
		return out
	}
	if cap(b.scanTmp) < m {
		b.scanTmp = make([]float64, m)
	}
	geom.SphereRectMinBatch(b.q, &f.Rects, f.Spheres, out, b.scanTmp[:m])
	return out
}

func newBase(t *parallel.Tree, q geom.Point, k int, opts Options) base {
	return base{
		tree:  t,
		q:     q,
		k:     k,
		opts:  opts,
		stats: Stats{PerDisk: make([]int, t.NumDisks())},
	}
}

func (b *base) Done() bool    { return b.done }
func (b *base) Stats() *Stats { return &b.stats }

// tracef emits a trace line when tracing is enabled.
func (b *base) tracef(format string, args ...interface{}) {
	if b.opts.Trace != nil {
		b.opts.Trace(fmt.Sprintf(format, args...))
	}
}

// admitDelivered moves the previous stage's fetched pages into the
// shared cache. It runs once the pages are known to have arrived — the
// first request() of the following stage, or finishStep on query
// completion — so a failed or cancelled fetch never admits anything.
func (b *base) admitDelivered() {
	if len(b.pendingAdmit) == 0 {
		return
	}
	if b.opts.SharedCache != nil {
		for _, id := range b.pendingAdmit {
			b.opts.SharedCache.Put(id, struct{}{})
		}
	}
	b.pendingAdmit = b.pendingAdmit[:0]
}

// request builds a PageRequest for a page, honoring level caching, and
// accounts for the upcoming visit.
func (b *base) request(id rtree.PageID, level int) PageRequest {
	b.admitDelivered()
	pl, ok := b.tree.Placement(id)
	if !ok {
		panic(fmt.Sprintf("query: page %d unplaced", id))
	}
	cached := b.opts.CachedLevels > 0 && level >= b.tree.Height()-b.opts.CachedLevels
	if !cached && b.opts.SharedCache != nil {
		if _, hit := b.opts.SharedCache.Get(id); hit {
			cached = true
		} else {
			// The page will be admitted when its fetch delivers — see
			// admitDelivered; admitting here would let a failed or
			// cancelled fetch masquerade as resident to later queries.
			b.stageRequested = append(b.stageRequested, id)
		}
	}
	pages := b.tree.Store().Get(id).Pages(b.tree.Config().MaxEntries)
	return PageRequest{Page: id, Disk: pl.Disk, Cylinder: pl.Cylinder, Pages: pages, Cached: cached}
}

// account records a finished batch in the stats.
func (b *base) account(reqs []PageRequest) {
	if len(reqs) == 0 {
		return
	}
	b.stats.Batches++
	if len(reqs) > b.stats.MaxParallel {
		b.stats.MaxParallel = len(reqs)
	}
	for _, r := range reqs {
		b.stats.NodesVisited++
		if !r.Cached {
			b.stats.DiskAccesses += r.Pages
			b.stats.PerDisk[r.Disk] += r.Pages
		}
	}
}

// finishStep tallies CPU cost for a stage, emits the stage's trace
// events, rotates the cache-admission lists and stamps the result.
func (b *base) finishStep(reqs []PageRequest, scanned, sorted int) StepResult {
	b.stats.Scanned += scanned
	b.stats.Sorted += sorted
	inst := cpuCost(scanned, sorted)
	b.stats.Instructions += inst
	b.account(reqs)
	if ob := b.opts.Observer; ob != nil {
		if !b.obsStarted {
			b.obsStarted = true
			ob.Observe(obs.Event{Type: obs.QueryStart})
		}
		if len(reqs) > 0 {
			ob.Observe(obs.Event{Type: obs.StageIssue, Stage: b.stage, Batch: len(reqs)})
			for _, r := range reqs {
				ob.Observe(obs.Event{
					Type: obs.FetchIssue, Stage: b.stage,
					Page: int64(r.Page), Disk: r.Disk, Pages: r.Pages, Cached: r.Cached,
				})
			}
		}
	}
	if len(reqs) == 0 {
		// Query complete: the final batch was delivered before this
		// stage ran, so its pages may now enter the shared cache.
		b.admitDelivered()
		if ob := b.opts.Observer; ob != nil && b.done {
			ob.Observe(obs.Event{Type: obs.QueryEnd, Stage: b.stage})
		}
	} else {
		// This stage's disk requests become admissible once the next
		// stage runs (pendingAdmit is empty here: either request()
		// flushed it, or no pages were requested).
		b.pendingAdmit, b.stageRequested = b.stageRequested, b.pendingAdmit[:0]
		b.stage++
	}
	return StepResult{Requests: reqs, Instructions: inst}
}

// bestList maintains the k current best object distances, sorted.
type bestList struct {
	k     int
	items []Neighbor
}

func newBestList(k int) *bestList { return &bestList{k: k} }

// offer inserts a candidate object, keeping only the k nearest.
func (bl *bestList) offer(n Neighbor) {
	i := sort.Search(len(bl.items), func(i int) bool { return bl.items[i].DistSq > n.DistSq })
	bl.items = append(bl.items, Neighbor{})
	copy(bl.items[i+1:], bl.items[i:])
	bl.items[i] = n
	if len(bl.items) > bl.k {
		bl.items = bl.items[:bl.k]
	}
}

// kthDistSq returns the current k-th best squared distance, or +Inf when
// fewer than k objects have been seen.
func (bl *bestList) kthDistSq() float64 {
	if len(bl.items) < bl.k {
		return math.Inf(1)
	}
	return bl.items[len(bl.items)-1].DistSq
}

func (bl *bestList) results() []Neighbor {
	out := make([]Neighbor, len(bl.items))
	copy(out, bl.items)
	return out
}

// Fetcher resolves one batch of page requests into nodes. The returned
// slice must hold the node for Requests[i] at position i — executions
// rely on request-order delivery for deterministic tie-breaking, so a
// concurrent fetcher must reorder completions before handing them back.
// A Fetcher is the driver abstraction shared by the three execution
// environments: the immediate Driver below, the event-driven system
// simulator (package simarray), and the real concurrent engine
// (package exec).
type Fetcher func(reqs []PageRequest) ([]*rtree.Node, error)

// RunWith drives an execution to completion, resolving each stage's
// page requests through fetch. It returns the first fetch error
// (typically a cancelled context in the concurrent engine); on success
// the execution is Done and its Results/Stats are valid.
func RunWith(exec Execution, name string, fetch Fetcher) error {
	var delivered []*rtree.Node
	for {
		sr := exec.Step(delivered)
		if len(sr.Requests) == 0 {
			if !exec.Done() {
				panic(fmt.Sprintf("query: %s returned no requests but is not done", name))
			}
			return nil
		}
		var err error
		delivered, err = fetch(sr.Requests)
		if err != nil {
			return err
		}
		if len(delivered) != len(sr.Requests) {
			panic(fmt.Sprintf("query: %s fetcher returned %d nodes for %d requests",
				name, len(delivered), len(sr.Requests)))
		}
	}
}

// Driver executes a query to completion with immediate page delivery —
// no timing, exact access accounting. It is the engine behind the
// effectiveness experiments (Figures 8 and 9) and all correctness tests.
type Driver struct {
	Tree *parallel.Tree
}

// Run executes alg on the driver's tree and returns the results and
// access statistics.
func (d Driver) Run(alg Algorithm, q geom.Point, k int, opts Options) ([]Neighbor, *Stats) {
	exec := alg.NewExecution(d.Tree, q, k, opts)
	var delivered []*rtree.Node
	stage := 0
	_ = RunWith(exec, alg.Name(), func(reqs []PageRequest) ([]*rtree.Node, error) {
		var start time.Time
		if opts.Observer != nil {
			//lint:allow simdeterminism observer wall-clock latency only, never feeds results
			start = time.Now()
		}
		delivered = delivered[:0]
		for _, r := range reqs {
			delivered = append(delivered, d.Tree.Store().Get(r.Page))
		}
		if ob := opts.Observer; ob != nil {
			//lint:allow simdeterminism observer wall-clock latency only, never feeds results
			wall := time.Since(start)
			for _, r := range reqs {
				ob.Observe(obs.Event{
					Type: obs.FetchDone, Stage: stage,
					Page: int64(r.Page), Disk: r.Disk, Pages: r.Pages, Cached: r.Cached,
				})
			}
			ob.Observe(obs.Event{Type: obs.StageDone, Stage: stage, Batch: len(reqs), Wall: wall})
		}
		stage++
		return delivered, nil
	})
	return exec.Results(), exec.Stats()
}

// sortNeighbors orders results by distance then object ID, the canonical
// result order used across algorithms so outputs are comparable.
func sortNeighbors(ns []Neighbor) {
	sort.Slice(ns, func(i, j int) bool {
		//lint:allow floatcmp exact-equal distances deliberately fall through to the object-ID tie-break
		if ns[i].DistSq != ns[j].DistSq {
			return ns[i].DistSq < ns[j].DistSq
		}
		return ns[i].Object < ns[j].Object
	})
}
