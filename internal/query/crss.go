package query

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// CRSS is the Candidate-Reduction Similarity Search, the paper's
// contribution (§3.3). It interleaves breadth-first and depth-first
// traversal of the parallel R*-tree:
//
//   - While descending (ADAPTIVE mode) it derives a threshold distance
//     Dth from Lemma 1 — the Dmax-sorted prefix of entries whose subtree
//     counts cover k objects — and applies the candidate-reduction
//     criterion: entries with Dmin > Dth are rejected, entries with
//     Dmm < Dth are activated, and the rest are saved in the candidate
//     stack for possible later use.
//   - The activation batch is bounded: at least enough MBRs to guarantee
//     k objects (the paper's l), at most one per disk (u = NumOfDisks),
//     balancing parallelism against wasted fetches.
//   - When data pages arrive (UPDATE mode) the running k-best list
//     tightens Dth to the actual k-th distance, and the next candidate
//     run is popped from the stack (NORMAL mode). Runs are Dmin-sorted,
//     so the first candidate outside the query sphere rejects the rest
//     of its run (the guard optimization).
//
// Termination (TERMINATE mode) occurs when no requests are outstanding
// and the candidate stack has drained.
type CRSS struct {
	// ActivationBound overrides the activation upper bound u. Zero (the
	// paper's choice) uses the number of disks; 1 degenerates toward
	// BBSS-like sequential fetching, a large value toward FPSS. Used by
	// the activation-bound ablation.
	ActivationBound int
}

// Name implements Algorithm.
func (CRSS) Name() string { return "CRSS" }

// NewExecution implements Algorithm.
func (c CRSS) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	u := c.ActivationBound
	if u <= 0 {
		u = t.NumDisks()
	}
	return &crssExec{
		base:  newBase(t, q, k, opts),
		best:  newBestList(k),
		dthSq: math.Inf(1),
		u:     u,
	}
}

type crssExec struct {
	base
	best          *bestList
	dthSq         float64
	stack         runStack
	u             int // activation upper bound: the number of disks
	started       bool
	reachedLeaves bool
}

func (e *crssExec) Results() []Neighbor {
	r := e.best.results()
	sortNeighbors(r)
	return r
}

func (e *crssExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		e.tracef("CRSS start: k=%d, u=%d, read root", e.k, e.u)
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}

	scanned, sorted := 0, 0

	if len(delivered) > 0 {
		if delivered[0].IsLeaf() {
			// UPDATE mode: data objects tighten the threshold.
			e.reachedLeaves = true
			for _, n := range delivered {
				scanned += len(n.Entries)
				for i, d := range e.leafDmin(n) {
					if d <= e.best.kthDistSq() {
						en := n.Entries[i]
						e.best.offer(Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
					}
				}
			}
			if kth := e.best.kthDistSq(); kth < e.dthSq {
				e.dthSq = kth
			}
			e.tracef("UPDATE: %d data pages, Dth²=%.6g, stack=%d candidates",
				len(delivered), e.dthSq, e.stack.len())
		} else {
			// ADAPTIVE (before the leaf level) or NORMAL: process the
			// fetched directory pages.
			cands := makeCandidates(e.q, delivered)
			scanned += len(cands)
			if b := lemma1BoundSq(cands, e.k); b < e.dthSq {
				e.dthSq = b // adapt the threshold from this level
			}
			cands = pruneByDmin(cands, e.dthSq) // criterion (i): reject
			sortByDmin(cands)
			sorted += len(cands)

			// Criterion (ii)/(iii): split into active and saved.
			var actives, saved []candidate
			for _, c := range cands {
				if c.dmmSq < e.dthSq {
					actives = append(actives, c)
				} else {
					saved = append(saved, c)
				}
			}

			// Upper bound u: demote the farthest actives back to the
			// candidate set.
			if len(actives) > e.u {
				saved = append(saved, actives[e.u:]...)
				sortByDmin(saved)
				actives = actives[:e.u]
			}
			// Lower bound l: guarantee that the activated MBRs contain
			// at least k objects, promoting the nearest saved
			// candidates while disks remain.
			covered := 0
			for _, a := range actives {
				covered += a.count
			}
			for covered < e.k && len(actives) < e.u && len(saved) > 0 {
				p := saved[0]
				saved = saved[1:]
				actives = append(actives, p)
				covered += p.count
			}
			// Ensure progress: if criterion (ii) activated nothing and
			// counts already cover k (possible when every MBR has
			// Dmm >= Dth), activate the nearest candidate anyway.
			if len(actives) == 0 && len(saved) > 0 {
				actives = append(actives, saved[0])
				saved = saved[1:]
			}

			e.stack.push(saved)
			mode := "NORMAL"
			if !e.reachedLeaves {
				mode = "ADAPTIVE"
			}
			e.tracef("%s: Dth²=%.6g, %d scanned → %d active, %d saved",
				mode, e.dthSq, scanned, len(actives), len(saved))
			if len(actives) > 0 {
				reqs := make([]PageRequest, 0, len(actives))
				for _, a := range actives {
					reqs = append(reqs, e.request(a.child, a.level))
				}
				return e.finishStep(reqs, scanned, sorted)
			}
		}
	}

	// NORMAL mode / after UPDATE: pop candidate runs until one yields an
	// activation batch.
	for !e.stack.empty() {
		run := e.stack.pop()
		scanned += len(run)
		run = truncateRun(run, e.dthSq) // guard: reject the run's tail
		if len(run) == 0 {
			continue
		}
		cut := e.u
		if cut > len(run) {
			cut = len(run)
		}
		actives := run[:cut]
		e.stack.push(run[cut:]) // remainder stays a run at the top
		e.tracef("NORMAL: popped run, %d survived guard, activating %d", len(run), len(actives))
		reqs := make([]PageRequest, 0, len(actives))
		for _, a := range actives {
			reqs = append(reqs, e.request(a.child, a.level))
		}
		return e.finishStep(reqs, scanned, sorted)
	}

	e.done = true
	e.tracef("TERMINATE: %d results, %d nodes visited", len(e.best.items), e.stats.NodesVisited)
	return e.finishStep(nil, scanned, sorted)
}
