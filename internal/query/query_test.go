package query

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// buildTree constructs a parallel R*-tree over pts.
func buildTree(t testing.TB, pts []geom.Point, dim, disks, maxEntries int) *parallel.Tree {
	t.Helper()
	pt, err := parallel.New(parallel.Config{
		Dim:        dim,
		NumDisks:   disks,
		Cylinders:  1449,
		MaxEntries: maxEntries,
		Policy:     decluster.ProximityIndex{},
		Seed:       42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pt.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	return pt
}

func allAlgorithms() []Algorithm {
	return []Algorithm{BBSS{}, FPSS{}, CRSS{}, WOPTSS{}}
}

// assertMatchesBruteForce verifies that results equal the exact k-NN
// answer in distance profile (object identity may differ on exact ties).
func assertMatchesBruteForce(t *testing.T, alg Algorithm, got []Neighbor, pts []geom.Point, q geom.Point, k int) {
	t.Helper()
	want := bruteforce.KNN(pts, q, k)
	if len(got) != len(want) {
		t.Fatalf("%s: got %d results, want %d", alg.Name(), len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
			t.Fatalf("%s: rank %d dist² = %g, want %g", alg.Name(), i, got[i].DistSq, want[i].DistSq)
		}
	}
}

func TestAllAlgorithmsCorrectUniform2D(t *testing.T) {
	pts := dataset.Uniform(3000, 2, 1)
	tree := buildTree(t, pts, 2, 5, 16)
	d := Driver{Tree: tree}
	queries := dataset.SampleQueries(pts, 12, 2)
	for _, alg := range allAlgorithms() {
		for qi, q := range queries {
			for _, k := range []int{1, 5, 20, 100} {
				got, stats := d.Run(alg, q, k, Options{})
				assertMatchesBruteForce(t, alg, got, pts, q, k)
				if stats.NodesVisited <= 0 {
					t.Errorf("%s q%d k%d: no nodes visited", alg.Name(), qi, k)
				}
			}
		}
	}
}

func TestAllAlgorithmsCorrectGaussian5D(t *testing.T) {
	pts := dataset.Gaussian(2000, 5, 3)
	tree := buildTree(t, pts, 5, 10, 44)
	d := Driver{Tree: tree}
	queries := dataset.SampleQueries(pts, 8, 4)
	for _, alg := range allAlgorithms() {
		for _, q := range queries {
			for _, k := range []int{1, 10, 50} {
				got, _ := d.Run(alg, q, k, Options{})
				assertMatchesBruteForce(t, alg, got, pts, q, k)
			}
		}
	}
}

func TestAllAlgorithmsCorrectClustered10D(t *testing.T) {
	pts := dataset.Clustered(1500, 10, 12, 5)
	tree := buildTree(t, pts, 10, 8, 23)
	d := Driver{Tree: tree}
	queries := dataset.SampleQueries(pts, 6, 6)
	for _, alg := range allAlgorithms() {
		for _, q := range queries {
			got, _ := d.Run(alg, q, 15, Options{})
			assertMatchesBruteForce(t, alg, got, pts, q, 15)
		}
	}
}

func TestKLargerThanPopulation(t *testing.T) {
	pts := dataset.Uniform(50, 2, 7)
	tree := buildTree(t, pts, 2, 3, 8)
	d := Driver{Tree: tree}
	q := geom.Point{0.5, 0.5}
	for _, alg := range allAlgorithms() {
		got, _ := d.Run(alg, q, 200, Options{})
		if len(got) != 50 {
			t.Errorf("%s: got %d results, want all 50", alg.Name(), len(got))
		}
	}
}

func TestSinglePointTree(t *testing.T) {
	pts := []geom.Point{{0.3, 0.7}}
	tree := buildTree(t, pts, 2, 4, 8)
	d := Driver{Tree: tree}
	for _, alg := range allAlgorithms() {
		got, _ := d.Run(alg, geom.Point{0.1, 0.1}, 1, Options{})
		if len(got) != 1 || got[0].Object != 0 {
			t.Errorf("%s: got %+v", alg.Name(), got)
		}
	}
}

func TestQueryAtExactDataPoint(t *testing.T) {
	pts := dataset.Uniform(500, 3, 9)
	tree := buildTree(t, pts, 3, 4, 12)
	d := Driver{Tree: tree}
	for _, alg := range allAlgorithms() {
		got, _ := d.Run(alg, pts[123].Clone(), 3, Options{})
		if len(got) != 3 {
			t.Fatalf("%s: %d results", alg.Name(), len(got))
		}
		if got[0].DistSq != 0 {
			t.Errorf("%s: nearest dist² = %g, want 0", alg.Name(), got[0].DistSq)
		}
	}
}

func TestWOPTSSVisitsExactlyIntersectingPages(t *testing.T) {
	// WOPTSS must visit exactly the pages whose MBR intersects the k-NN
	// sphere (Definition 6) — no algorithm may visit fewer.
	pts := dataset.CaliforniaLike(4000, 11)
	tree := buildTree(t, pts, 2, 10, 16)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 10, 12) {
		k := 10
		dkSq := bruteforce.KthDistSq(pts, q, k)
		want := 0
		tree.Walk(func(n *rtree.Node, _ int) bool {
			if geom.MinDistSq(q, n.MBR()) <= dkSq {
				want++
			}
			return true
		})
		_, stats := d.Run(WOPTSS{}, q, k, Options{})
		if stats.NodesVisited != want {
			t.Errorf("WOPTSS visited %d pages, weak-optimal is %d", stats.NodesVisited, want)
		}
	}
}

func TestAllAlgorithmsNeverBeatWOPTSS(t *testing.T) {
	pts := dataset.Gaussian(3000, 5, 21)
	tree := buildTree(t, pts, 5, 10, 44)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 8, 22) {
		for _, k := range []int{1, 10, 50} {
			_, wopt := d.Run(WOPTSS{}, q, k, Options{})
			for _, alg := range []Algorithm{BBSS{}, FPSS{}, CRSS{}} {
				_, stats := d.Run(alg, q, k, Options{})
				if stats.NodesVisited < wopt.NodesVisited {
					t.Errorf("%s visited %d < WOPTSS %d (k=%d) — violates weak-optimal lower bound",
						alg.Name(), stats.NodesVisited, wopt.NodesVisited, k)
				}
			}
		}
	}
}

func TestBBSSHasNoIntraQueryParallelism(t *testing.T) {
	pts := dataset.Uniform(2000, 2, 31)
	tree := buildTree(t, pts, 2, 8, 16)
	d := Driver{Tree: tree}
	_, stats := d.Run(BBSS{}, geom.Point{0.5, 0.5}, 20, Options{})
	if stats.MaxParallel != 1 {
		t.Errorf("BBSS max batch = %d, want 1", stats.MaxParallel)
	}
	if stats.Batches != stats.NodesVisited {
		t.Errorf("BBSS batches %d != visits %d", stats.Batches, stats.NodesVisited)
	}
}

func TestCRSSRespectsActivationBound(t *testing.T) {
	pts := dataset.Gaussian(5000, 2, 41)
	disks := 6
	tree := buildTree(t, pts, 2, disks, 16)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 10, 42) {
		_, stats := d.Run(CRSS{}, q, 50, Options{})
		if stats.MaxParallel > disks {
			t.Errorf("CRSS batch of %d exceeds NumOfDisks %d", stats.MaxParallel, disks)
		}
	}
}

func TestFPSSVisitsAtLeastCRSS(t *testing.T) {
	// FPSS activates every sphere-intersecting candidate, CRSS a subset;
	// across a workload FPSS must fetch at least as many pages on
	// average.
	pts := dataset.CaliforniaLike(8000, 51)
	tree := buildTree(t, pts, 2, 10, 16)
	d := Driver{Tree: tree}
	var fpss, crss int
	for _, q := range dataset.SampleQueries(pts, 20, 52) {
		_, sf := d.Run(FPSS{}, q, 20, Options{})
		_, sc := d.Run(CRSS{}, q, 20, Options{})
		fpss += sf.NodesVisited
		crss += sc.NodesVisited
	}
	if fpss < crss {
		t.Errorf("FPSS total visits %d < CRSS %d", fpss, crss)
	}
}

func TestCachedLevelsReduceDiskAccesses(t *testing.T) {
	pts := dataset.Uniform(4000, 2, 61)
	tree := buildTree(t, pts, 2, 5, 16)
	d := Driver{Tree: tree}
	q := geom.Point{0.5, 0.5}
	res0, s0 := d.Run(CRSS{}, q, 10, Options{})
	res1, s1 := d.Run(CRSS{}, q, 10, Options{CachedLevels: 1})
	if s1.DiskAccesses >= s0.DiskAccesses {
		t.Errorf("caching root did not reduce disk accesses: %d vs %d", s1.DiskAccesses, s0.DiskAccesses)
	}
	if s1.NodesVisited != s0.NodesVisited {
		t.Errorf("caching changed visit count: %d vs %d", s1.NodesVisited, s0.NodesVisited)
	}
	for i := range res0 {
		if res0[i].DistSq != res1[i].DistSq {
			t.Fatal("caching changed results")
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	pts := dataset.Uniform(2000, 2, 71)
	tree := buildTree(t, pts, 2, 4, 16)
	d := Driver{Tree: tree}
	for _, alg := range allAlgorithms() {
		_, s := d.Run(alg, geom.Point{0.25, 0.75}, 10, Options{})
		if s.DiskAccesses != s.NodesVisited {
			t.Errorf("%s: disk accesses %d != visits %d with no caching", alg.Name(), s.DiskAccesses, s.NodesVisited)
		}
		perDisk := 0
		for _, c := range s.PerDisk {
			perDisk += c
		}
		if perDisk != s.DiskAccesses {
			t.Errorf("%s: per-disk sum %d != accesses %d", alg.Name(), perDisk, s.DiskAccesses)
		}
		if s.Instructions <= 0 || s.Scanned <= 0 {
			t.Errorf("%s: no CPU work recorded", alg.Name())
		}
		if s.Batches <= 0 || s.MaxParallel <= 0 {
			t.Errorf("%s: batch accounting missing", alg.Name())
		}
	}
}

// Property: on random data sets and queries, all four algorithms return
// the exact brute-force distance profile.
func TestAlgorithmsEquivalenceProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8, dimRaw uint8) bool {
		rnd := rand.New(rand.NewSource(seed))
		dim := int(dimRaw)%4 + 2
		n := 200 + rnd.Intn(400)
		k := int(kRaw)%40 + 1
		pts := dataset.Clustered(n, dim, 1+rnd.Intn(8), seed)
		tree, err := parallel.New(parallel.Config{
			Dim: dim, NumDisks: 1 + rnd.Intn(8), Cylinders: 100,
			MaxEntries: 8 + rnd.Intn(20), Policy: decluster.ProximityIndex{}, Seed: seed,
		})
		if err != nil {
			return false
		}
		if err := tree.BuildPoints(pts); err != nil {
			return false
		}
		q := make(geom.Point, dim)
		for d := range q {
			q[d] = rnd.Float64()
		}
		want := bruteforce.KNN(pts, q, k)
		drv := Driver{Tree: tree}
		for _, alg := range allAlgorithms() {
			got, _ := drv.Run(alg, q, k, Options{})
			if len(got) != len(want) {
				return false
			}
			for i := range got {
				if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
