package query

import (
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// WOPTSS is the hypothetical Weak-OPTimal Similarity Search (§3.4,
// Definition 6): an oracle supplies the exact distance Dk from the query
// point to its k-th nearest neighbor, and the algorithm fetches exactly
// the pages whose MBR intersects the sphere centered at the query with
// radius Dk — level by level, all intersecting pages of a level in one
// parallel batch. No real algorithm can know Dk in advance, so WOPTSS
// is a lower bound: its node count and response time floor every other
// method in the experiments.
type WOPTSS struct{}

// Name implements Algorithm.
func (WOPTSS) Name() string { return "WOPTSS" }

// NewExecution implements Algorithm. The oracle distance is computed
// with the tree's sequential exact k-NN; that reference pass is not
// charged to the execution's statistics (the paper assumes the distance
// is simply known).
func (WOPTSS) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	e := &woptssExec{base: newBase(t, q, k, opts), best: newBestList(k)}
	nn, _ := t.NearestNeighbors(q, k)
	if len(nn) > 0 {
		e.dkSq = nn[len(nn)-1].DistSq
		e.haveOracle = true
	}
	return e
}

type woptssExec struct {
	base
	best       *bestList
	dkSq       float64
	haveOracle bool
	started    bool
}

func (e *woptssExec) Results() []Neighbor {
	r := e.best.results()
	sortNeighbors(r)
	return r
}

func (e *woptssExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		if !e.haveOracle {
			// Empty tree: nothing to do.
			e.done = true
			return e.finishStep(nil, 0, 0)
		}
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}

	scanned := 0
	if len(delivered) > 0 && delivered[0].IsLeaf() {
		for _, n := range delivered {
			scanned += len(n.Entries)
			for i, d := range e.leafDmin(n) {
				if d <= e.dkSq {
					en := n.Entries[i]
					e.best.offer(Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		}
		e.done = true
		return e.finishStep(nil, scanned, 0)
	}

	// Directory level: exactly the query-sphere-intersecting children.
	// On SR-tree entries the intersected rect/sphere lower bound applies,
	// so WOPTSS stays the floor for that access method too.
	var reqs []PageRequest
	for _, n := range delivered {
		scanned += len(n.Entries)
		for i, d := range e.entrySphereRectMin(n) {
			if d <= e.dkSq {
				reqs = append(reqs, e.request(n.Entries[i].Child, n.Level-1))
			}
		}
	}
	if len(reqs) == 0 {
		e.done = true
	}
	return e.finishStep(reqs, scanned, 0)
}
