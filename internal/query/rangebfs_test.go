package query

import (
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestRangeBFSExact(t *testing.T) {
	pts := dataset.CaliforniaLike(5000, 71)
	tree := buildTree(t, pts, 2, 8, 16)
	d := Driver{Tree: tree}
	for _, eps := range []float64{0.005, 0.02, 0.1} {
		for _, q := range dataset.SampleQueries(pts, 8, 72) {
			got, stats := d.Run(RangeBFS{Eps: eps}, q, 0, Options{})
			want := bruteforce.Range(pts, q, eps)
			if len(got) != len(want) {
				t.Fatalf("eps=%g: got %d, want %d", eps, len(got), len(want))
			}
			if stats.NodesVisited <= 0 {
				t.Error("no accesses recorded")
			}
		}
	}
}

func TestRangeBFSEmptyResult(t *testing.T) {
	pts := dataset.Uniform(500, 2, 73)
	tree := buildTree(t, pts, 2, 4, 8)
	d := Driver{Tree: tree}
	// A query far outside the data space with a tiny radius finds
	// nothing but still terminates cleanly.
	got, stats := d.Run(RangeBFS{Eps: 1e-6}, geom.Point{50, 50}, 0, Options{})
	if len(got) != 0 {
		t.Errorf("expected empty result, got %d", len(got))
	}
	if stats.NodesVisited != 1 { // the root is always read
		t.Errorf("visited %d nodes, want 1", stats.NodesVisited)
	}
}

func TestRangeBFSOnSRTree(t *testing.T) {
	pts := dataset.Clustered(2000, 6, 8, 75)
	tree := buildSR(t, pts, 6, 6)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 5, 76) {
		eps := 0.15
		got, _ := d.Run(RangeBFS{Eps: eps}, q, 0, Options{})
		want := bruteforce.Range(pts, q, eps)
		if len(got) != len(want) {
			t.Fatalf("SR range: got %d, want %d", len(got), len(want))
		}
	}
}

func TestRangeBFSFullyParallelPerLevel(t *testing.T) {
	pts := dataset.Uniform(4000, 2, 77)
	tree := buildTree(t, pts, 2, 10, 16)
	d := Driver{Tree: tree}
	_, stats := d.Run(RangeBFS{Eps: 0.2}, geom.Point{0.5, 0.5}, 0, Options{})
	// BFS: one batch per level.
	if stats.Batches != tree.Height() {
		t.Errorf("batches %d != height %d", stats.Batches, tree.Height())
	}
}
