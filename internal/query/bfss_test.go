package query

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestBFSSExact(t *testing.T) {
	pts := dataset.CaliforniaLike(4000, 81)
	tree := buildTree(t, pts, 2, 8, 16)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 10, 82) {
		for _, k := range []int{1, 10, 100} {
			got, _ := d.Run(BFSS{}, q, k, Options{})
			want := bruteforce.KNN(pts, q, k)
			if len(got) != len(want) {
				t.Fatalf("k=%d: %d results, want %d", k, len(got), len(want))
			}
			for i := range got {
				if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
					t.Fatalf("k=%d rank %d mismatch", k, i)
				}
			}
		}
	}
}

func TestBFSSIsAccessOptimal(t *testing.T) {
	// Best-first must visit at most one page more than WOPTSS per
	// boundary tie; on continuous random data they coincide.
	pts := dataset.Gaussian(5000, 3, 83)
	tree := buildTree(t, pts, 3, 10, 20)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 12, 84) {
		_, w := d.Run(WOPTSS{}, q, 10, Options{})
		_, b := d.Run(BFSS{}, q, 10, Options{})
		if b.NodesVisited > w.NodesVisited+1 {
			t.Errorf("BFSS visited %d, WOPTSS %d", b.NodesVisited, w.NodesVisited)
		}
		if b.NodesVisited < w.NodesVisited {
			t.Errorf("BFSS beat the weak-optimal floor: %d < %d", b.NodesVisited, w.NodesVisited)
		}
	}
}

func TestBFSSSequential(t *testing.T) {
	pts := dataset.Uniform(2000, 2, 85)
	tree := buildTree(t, pts, 2, 6, 16)
	d := Driver{Tree: tree}
	_, s := d.Run(BFSS{}, geom.Point{0.3, 0.3}, 20, Options{})
	if s.MaxParallel != 1 {
		t.Errorf("BFSS batch size %d, want 1 (sequential)", s.MaxParallel)
	}
}

func TestBFSSOnSRTree(t *testing.T) {
	pts := dataset.Clustered(1500, 8, 6, 87)
	tree := buildSR(t, pts, 8, 6)
	d := Driver{Tree: tree}
	for _, q := range dataset.SampleQueries(pts, 5, 88) {
		got, _ := d.Run(BFSS{}, q, 12, Options{})
		want := bruteforce.KNN(pts, q, 12)
		for i := range got {
			if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
				t.Fatal("SR BFSS mismatch")
			}
		}
	}
}

func TestBFSSKLargerThanData(t *testing.T) {
	pts := dataset.Uniform(30, 2, 89)
	tree := buildTree(t, pts, 2, 3, 8)
	d := Driver{Tree: tree}
	got, _ := d.Run(BFSS{}, geom.Point{0.5, 0.5}, 100, Options{})
	if len(got) != 30 {
		t.Errorf("got %d, want all 30", len(got))
	}
}
