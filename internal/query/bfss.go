package query

import (
	"container/heap"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// BFSS is Best-First Similarity Search (distance browsing, Hjaltason &
// Samet 1995/1999) — the strongest *sequential* competitor, added here
// beyond the paper's line-up to sharpen the comparison. It maintains a
// global priority queue of tree entries ordered by Dmin and always
// expands the globally nearest one, which makes it access-optimal among
// algorithms without an oracle: it reads exactly the pages whose Dmin is
// below the k-th neighbor distance (matching WOPTSS's page count up to
// ties). Like BBSS it fetches one page at a time, so on a disk array it
// pays the full latency of every access in sequence: the experiments
// show access-optimality alone does not win on response time — the
// paper's motivation for CRSS, made precise.
type BFSS struct{}

// Name implements Algorithm.
func (BFSS) Name() string { return "BFSS" }

// NewExecution implements Algorithm.
func (BFSS) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	return &bfssExec{base: newBase(t, q, k, opts), best: newBestList(k)}
}

// bfssItem is a frontier element: a page with the Dmin of its region.
type bfssItem struct {
	distSq float64
	page   rtree.PageID
	level  int
}

type bfssHeap []bfssItem

func (h bfssHeap) Len() int { return len(h) }
func (h bfssHeap) Less(i, j int) bool {
	//lint:allow floatcmp exact-equal distances deliberately fall through to the page-ID tie-break
	if h[i].distSq != h[j].distSq {
		return h[i].distSq < h[j].distSq
	}
	return h[i].page < h[j].page
}
func (h bfssHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bfssHeap) Push(x interface{}) { *h = append(*h, x.(bfssItem)) }
func (h *bfssHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}

type bfssExec struct {
	base
	best     *bestList
	frontier bfssHeap
	started  bool
}

func (e *bfssExec) Results() []Neighbor {
	r := e.best.results()
	sortNeighbors(r)
	return r
}

func (e *bfssExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}

	scanned, sorted := 0, 0
	for _, n := range delivered {
		scanned += len(n.Entries)
		if n.IsLeaf() {
			for _, en := range n.Entries {
				d := geom.SphereRectMin(e.q, en.Rect, en.Sphere)
				if d <= e.best.kthDistSq() {
					e.best.offer(Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		} else {
			for _, en := range n.Entries {
				d := geom.SphereRectMin(e.q, en.Rect, en.Sphere)
				if d <= e.best.kthDistSq() {
					heap.Push(&e.frontier, bfssItem{distSq: d, page: en.Child, level: n.Level - 1})
					sorted++ // heap maintenance charged as sort work
				}
			}
		}
	}

	// Expand the globally nearest pending page, discarding stale
	// entries pruned by the tightened k-th distance.
	for e.frontier.Len() > 0 {
		it := heap.Pop(&e.frontier).(bfssItem)
		if it.distSq > e.best.kthDistSq() {
			// Everything else in the heap is at least this far: done.
			e.frontier = e.frontier[:0]
			break
		}
		return e.finishStep([]PageRequest{e.request(it.page, it.level)}, scanned, sorted)
	}

	e.done = true
	return e.finishStep(nil, scanned, sorted)
}
