package query

import (
	"strings"
	"testing"

	"repro/internal/dataset"
)

// TestCRSSTraceShowsModeMachine reconstructs the paper's Figure 5/6
// walk-through in miniature: tracing a CRSS run must show the state
// machine — start, ADAPTIVE descent, UPDATE at the leaf level, NORMAL
// candidate-run pops, TERMINATE — in that causal order.
func TestCRSSTraceShowsModeMachine(t *testing.T) {
	pts := dataset.CaliforniaLike(3000, 131)
	tree := buildTree(t, pts, 2, 5, 8) // small fanout forces a deep tree
	var lines []string
	opts := Options{Trace: func(l string) { lines = append(lines, l) }}
	d := Driver{Tree: tree}
	res, _ := d.Run(CRSS{}, dataset.SampleQueries(pts, 1, 132)[0], 4, opts)
	if len(res) != 4 {
		t.Fatalf("%d results", len(res))
	}
	trace := strings.Join(lines, "\n")
	for _, mode := range []string{"CRSS start", "ADAPTIVE", "UPDATE", "TERMINATE"} {
		if !strings.Contains(trace, mode) {
			t.Errorf("trace missing %q:\n%s", mode, trace)
		}
	}
	// Causal order: start before ADAPTIVE before UPDATE before TERMINATE.
	iStart := strings.Index(trace, "CRSS start")
	iAdapt := strings.Index(trace, "ADAPTIVE")
	iUpd := strings.Index(trace, "UPDATE")
	iTerm := strings.Index(trace, "TERMINATE")
	if !(iStart < iAdapt && iAdapt < iUpd && iUpd < iTerm) {
		t.Errorf("mode order wrong: start=%d adaptive=%d update=%d terminate=%d",
			iStart, iAdapt, iUpd, iTerm)
	}
	// TERMINATE must be the last line.
	if !strings.Contains(lines[len(lines)-1], "TERMINATE") {
		t.Errorf("last trace line = %q", lines[len(lines)-1])
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	pts := dataset.Uniform(500, 2, 133)
	tree := buildTree(t, pts, 2, 3, 8)
	d := Driver{Tree: tree}
	// No trace function: must simply not panic and answer correctly.
	res, _ := d.Run(CRSS{}, dataset.SampleQueries(pts, 1, 134)[0], 3, Options{})
	if len(res) != 3 {
		t.Fatalf("%d results", len(res))
	}
}
