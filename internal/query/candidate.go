package query

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// candidate is a directory entry under consideration: a child page with
// its subtree object count and the three point-to-MBR metrics.
type candidate struct {
	child  rtree.PageID
	count  int
	level  int // level of the node the entry points to
	dminSq float64
	dmmSq  float64
	dmaxSq float64
}

// candScratch holds the reusable batch-kernel output buffers of one
// makeCandidates pass, sliced out of a single allocation sized to the
// largest node seen so far.
type candScratch struct {
	buf []float64
}

func (s *candScratch) views(m int) (dmin, dmm, dmax, tmp []float64) {
	if cap(s.buf) < 4*m {
		s.buf = make([]float64, 4*m)
	}
	b := s.buf[:4*m]
	return b[0*m : 1*m], b[1*m : 2*m], b[2*m : 3*m], b[3*m : 4*m]
}

// makeCandidates converts the entries of delivered internal nodes into
// candidates with their distances from q precomputed. All delivered
// nodes must share one level (batches are level-homogeneous by
// construction of the algorithms).
//
// On SR-tree entries (valid bounding sphere) the bounds of the two
// region descriptors are intersected: Dmin is the larger lower bound,
// Dmax the smaller upper bound, and the pessimistic Dmm is capped by
// the sphere's Dmax (a sphere guarantees every subtree object — hence
// at least one — within it). This is the "some modifications" the paper
// names for supporting the SR-tree family.
//
// The metrics are computed node-at-a-time with the batch kernels over
// the node's flat geometry view, which is bit-identical to the scalar
// per-entry path (makeCandidatesScalar, kept as the test reference and
// the fallback for mixed-sphere nodes).
func makeCandidates(q geom.Point, nodes []*rtree.Node) []candidate {
	total := 0
	for _, n := range nodes {
		total += len(n.Entries)
	}
	if total == 0 {
		return nil
	}
	out := make([]candidate, 0, total)
	var scratch candScratch
	for _, n := range nodes {
		m := len(n.Entries)
		if m == 0 {
			continue
		}
		f := n.Flat()
		if f.MixedSpheres {
			// Some but not all entries carry spheres: no SoA sphere view
			// exists, so tighten per entry with the scalar kernels.
			out = appendCandidatesScalar(out, q, n)
			continue
		}
		dmin, dmm, dmax, tmp := scratch.views(m)
		geom.MinDistSqBatch(q, &f.Rects, dmin)
		geom.MinMaxDistSqBatch(q, &f.Rects, dmm)
		geom.MaxDistSqBatch(q, &f.Rects, dmax)
		if f.Spheres != nil {
			geom.SphereMinDistSqBatch(q, f.Spheres, tmp)
			for i, sm := range tmp {
				if sm > dmin[i] {
					dmin[i] = sm
				}
			}
			geom.SphereMaxDistSqBatch(q, f.Spheres, tmp)
			for i, sM := range tmp {
				if sM < dmax[i] {
					dmax[i] = sM
					if sM < dmm[i] {
						dmm[i] = sM
					}
				}
			}
		}
		for i := range n.Entries {
			out = append(out, candidate{
				child:  n.Entries[i].Child,
				count:  n.Entries[i].Count,
				level:  n.Level - 1,
				dminSq: dmin[i],
				dmmSq:  dmm[i],
				dmaxSq: dmax[i],
			})
		}
	}
	return out
}

// appendCandidatesScalar is the per-entry scalar candidate pass: the
// reference implementation the batch path is tested against, and the
// fallback for nodes whose entries mix present and absent spheres.
func appendCandidatesScalar(out []candidate, q geom.Point, n *rtree.Node) []candidate {
	for _, e := range n.Entries {
		c := candidate{
			child:  e.Child,
			count:  e.Count,
			level:  n.Level - 1,
			dminSq: geom.MinDistSq(q, e.Rect),
			dmmSq:  geom.MinMaxDistSq(q, e.Rect),
			dmaxSq: geom.MaxDistSq(q, e.Rect),
		}
		if e.Sphere.Valid() {
			if sm := e.Sphere.MinDistSq(q); sm > c.dminSq {
				c.dminSq = sm
			}
			if sM := e.Sphere.MaxDistSq(q); sM < c.dmaxSq {
				c.dmaxSq = sM
				if sM < c.dmmSq {
					c.dmmSq = sM
				}
			}
		}
		out = append(out, c)
	}
	return out
}

// makeCandidatesScalar is the all-scalar equivalent of makeCandidates,
// kept for differential tests and benchmarks.
func makeCandidatesScalar(q geom.Point, nodes []*rtree.Node) []candidate {
	var out []candidate
	for _, n := range nodes {
		out = appendCandidatesScalar(out, q, n)
	}
	return out
}

// lemma1BoundSq computes the paper's Lemma 1 threshold: sort the MBRs by
// Dmax and find the smallest prefix whose subtree object counts sum to
// at least k; every one of the k nearest neighbors then lies within the
// sphere of radius Dmax of the prefix's last MBR. It returns +Inf when
// the candidates hold fewer than k objects (no bound can be derived).
func lemma1BoundSq(cands []candidate, k int) float64 {
	total := 0
	for _, c := range cands {
		total += c.count
	}
	if total < k {
		return math.Inf(1)
	}
	byDmax := make([]candidate, len(cands))
	copy(byDmax, cands)
	sort.Slice(byDmax, func(i, j int) bool { return byDmax[i].dmaxSq < byDmax[j].dmaxSq })
	cum := 0
	for _, c := range byDmax {
		cum += c.count
		if cum >= k {
			return c.dmaxSq
		}
	}
	return math.Inf(1) // unreachable given the total check
}

// sortByDmin orders candidates by increasing Dmin (ties by child page ID
// for determinism).
func sortByDmin(cands []candidate) {
	sort.Slice(cands, func(i, j int) bool {
		//lint:allow floatcmp exact-equal Dmin deliberately falls through to the child-ID tie-break
		if cands[i].dminSq != cands[j].dminSq {
			return cands[i].dminSq < cands[j].dminSq
		}
		return cands[i].child < cands[j].child
	})
}

// pruneByDmin drops candidates whose Dmin exceeds the threshold
// (criterion (i): they cannot intersect the query sphere). The input
// need not be sorted; the relative order of survivors is preserved.
func pruneByDmin(cands []candidate, dthSq float64) []candidate {
	out := cands[:0]
	for _, c := range cands {
		if c.dminSq <= dthSq {
			out = append(out, c)
		}
	}
	return out
}

// runStack is the paper's candidate structure: a stack of candidate
// runs. Each run holds the candidates saved from one expansion step,
// ordered by increasing Dmin; a guard separates consecutive runs
// (modelled here by the slice boundary). Deeper-level runs sit above
// higher-level runs, so refinement continues near the leaves before the
// search backtracks toward the root.
type runStack struct {
	runs [][]candidate
}

// push adds a run (must already be Dmin-sorted). Empty runs are not
// stored.
func (s *runStack) push(run []candidate) {
	if len(run) > 0 {
		s.runs = append(s.runs, run)
	}
}

// pop removes and returns the top run, or nil when empty.
func (s *runStack) pop() []candidate {
	if len(s.runs) == 0 {
		return nil
	}
	top := s.runs[len(s.runs)-1]
	s.runs = s.runs[:len(s.runs)-1]
	return top
}

func (s *runStack) empty() bool { return len(s.runs) == 0 }

// len returns the total number of stacked candidates.
func (s *runStack) len() int {
	n := 0
	for _, r := range s.runs {
		n += len(r)
	}
	return n
}

// truncateRun applies the paper's guard optimization: scanning a
// Dmin-sorted run, the first candidate outside the query sphere rejects
// the remainder of the run wholesale. It returns the surviving prefix.
func truncateRun(run []candidate, dthSq float64) []candidate {
	for i, c := range run {
		if c.dminSq > dthSq {
			return run[:i]
		}
	}
	return run
}
