package query

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/parallel"
)

func TestAllAlgorithmsExactOnXTree(t *testing.T) {
	pts := dataset.Clustered(2500, 10, 6, 121)
	tree, err := parallel.New(parallel.Config{
		Dim: 10, NumDisks: 8, Cylinders: 1449, MaxEntries: 16,
		MaxOverlapRatio: 0.2, Policy: decluster.ProximityIndex{}, Seed: 121,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	if err := tree.Tree.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	d := Driver{Tree: tree}
	for _, alg := range allAlgorithms() {
		for _, q := range dataset.SampleQueries(pts, 6, 122) {
			got, stats := d.Run(alg, q, 12, Options{})
			want := bruteforce.KNN(pts, q, 12)
			if len(got) != len(want) {
				t.Fatalf("X %s: %d results", alg.Name(), len(got))
			}
			for i := range got {
				if math.Abs(got[i].DistSq-want[i].DistSq) > 1e-9 {
					t.Fatalf("X %s rank %d mismatch", alg.Name(), i)
				}
			}
			// Supernodes make disk accesses >= node visits.
			if stats.DiskAccesses < stats.NodesVisited {
				t.Fatalf("%s: accesses %d < visits %d", alg.Name(), stats.DiskAccesses, stats.NodesVisited)
			}
		}
	}
}
