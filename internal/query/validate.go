package query

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/parallel"
)

// InvalidQueryError reports a malformed k-NN query rejected before any
// page is touched. Every driver — the immediate Driver, the simulator
// and the concurrent engine — performs the same checks through
// ValidateKNN, so a bad query fails identically on all three paths.
type InvalidQueryError struct {
	Reason string
}

// Error implements error.
func (e *InvalidQueryError) Error() string { return "query: invalid query: " + e.Reason }

// ValidateKNN checks a k-NN query's inputs against the tree it will
// run on: k must be positive, the query point non-nil, and its
// dimensionality must match the tree's. A nil error means the query is
// admissible; any failure is an *InvalidQueryError.
func ValidateKNN(t *parallel.Tree, q geom.Point, k int) error {
	if k <= 0 {
		return &InvalidQueryError{Reason: fmt.Sprintf("k must be positive, got %d", k)}
	}
	if q == nil {
		return &InvalidQueryError{Reason: "query point is nil"}
	}
	if dim := t.Config().Dim; q.Dim() != dim {
		return &InvalidQueryError{Reason: fmt.Sprintf("query dim %d, tree dim %d", q.Dim(), dim)}
	}
	return nil
}

// RunChecked is Run with input validation: it rejects malformed k-NN
// queries with the same *InvalidQueryError the concurrent engine
// returns, then runs exactly like Run. Plain Run stays unvalidated
// because range queries reuse it with k = 0.
func (d Driver) RunChecked(alg Algorithm, q geom.Point, k int, opts Options) ([]Neighbor, *Stats, error) {
	if err := ValidateKNN(d.Tree, q, k); err != nil {
		return nil, nil, err
	}
	res, stats := d.Run(alg, q, k, opts)
	return res, stats, nil
}
