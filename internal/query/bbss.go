package query

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// BBSS is the Branch-and-Bound Similarity Search of Roussopoulos, Kelley
// & Vincent (SIGMOD 1995), the paper's sequential baseline (§3.1). It
// performs a depth-first traversal ordered by Dmin, pruning with the
// three rules of that paper; for general k it discards an MBR when its
// Dmin exceeds the distance to the current k-th nearest neighbor, and
// for k = 1 it additionally exploits the MINMAXDIST (Dmm) upper bound
// (rules 1–2 are only sound for a single neighbor).
//
// On a disk array BBSS fetches exactly one page per step: it has no
// intra-query parallelism (Table 5), which is what the response-time
// experiments expose.
type BBSS struct{}

// Name implements Algorithm.
func (BBSS) Name() string { return "BBSS" }

// NewExecution implements Algorithm.
func (BBSS) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	return &bbssExec{base: newBase(t, q, k, opts), best: newBestList(k), dmmBoundSq: math.Inf(1)}
}

// bbssFrame is one level of the explicit DFS stack: the pruned active
// branch list of a visited node, in Dmin order, and the scan cursor.
type bbssFrame struct {
	abl []candidate
	idx int
}

type bbssExec struct {
	base
	best    *bestList
	stack   []bbssFrame
	started bool
	// upper bounds the answer distance for k == 1 via Dmm (rule 2).
	dmmBoundSq float64
}

func (e *bbssExec) Results() []Neighbor {
	r := e.best.results()
	sortNeighbors(r)
	return r
}

// pruneDistSq is the current rule-3 pruning radius: the k-th best actual
// distance, tightened for k == 1 by the best Dmm seen (rules 1–2).
func (e *bbssExec) pruneDistSq() float64 {
	d := e.best.kthDistSq()
	if e.k == 1 && e.dmmBoundSq < d {
		d = e.dmmBoundSq
	}
	return d
}

func (e *bbssExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		root := e.tree.Root()
		rootLevel := e.tree.Height() - 1
		return e.finishStep([]PageRequest{e.request(root, rootLevel)}, 0, 0)
	}

	scanned, sorted := 0, 0
	// Process the delivered page (BBSS always requests exactly one).
	for _, n := range delivered {
		if n.IsLeaf() {
			scanned += len(n.Entries)
			for i, d := range e.leafDmin(n) {
				if d <= e.best.kthDistSq() {
					en := n.Entries[i]
					e.best.offer(Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		} else {
			cands := makeCandidates(e.q, []*rtree.Node{n})
			scanned += len(cands)
			if e.k == 1 {
				for _, c := range cands {
					if c.dmmSq < e.dmmBoundSq {
						e.dmmBoundSq = c.dmmSq
					}
				}
			}
			cands = pruneByDmin(cands, e.pruneDistSq())
			sortByDmin(cands)
			sorted += len(cands)
			e.stack = append(e.stack, bbssFrame{abl: cands})
		}
	}

	// Descend into the next unpruned branch, backtracking as needed
	// (rule 3 is re-applied lazily at visit time: the pruning radius may
	// have shrunk since the frame was built).
	for len(e.stack) > 0 {
		top := &e.stack[len(e.stack)-1]
		for top.idx < len(top.abl) {
			c := top.abl[top.idx]
			top.idx++
			if c.dminSq <= e.pruneDistSq() {
				return e.finishStep([]PageRequest{e.request(c.child, c.level)}, scanned, sorted)
			}
			// Dmin-sorted: the rest of this frame is pruned too.
			top.idx = len(top.abl)
		}
		e.stack = e.stack[:len(e.stack)-1]
	}

	e.done = true
	return e.finishStep(nil, scanned, sorted)
}
