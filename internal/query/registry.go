package query

import "fmt"

// AlgorithmByName resolves one of the paper's algorithms — "bbss",
// "fpss", "crss" (default recommendation), "woptss" — or the
// extensions "bfss" (best-first) and "eps-series" (growing range-query
// baseline). The empty string resolves to CRSS. Names are accepted in
// lower or upper case as listed; this registry is shared by the core
// facade, the CLI and the network query service.
func AlgorithmByName(name string) (Algorithm, error) {
	switch name {
	case "bbss", "BBSS":
		return BBSS{}, nil
	case "fpss", "FPSS":
		return FPSS{}, nil
	case "crss", "CRSS", "":
		return CRSS{}, nil
	case "woptss", "WOPTSS":
		return WOPTSS{}, nil
	case "bfss", "BFSS", "best-first":
		return BFSS{}, nil
	case "eps-series", "EPS-SERIES", "epsilon":
		return EpsilonSeries{}, nil
	default:
		return nil, fmt.Errorf("query: unknown algorithm %q", name)
	}
}

// AlgorithmNames lists the built-in algorithm names in presentation
// order.
func AlgorithmNames() []string {
	return []string{"bbss", "fpss", "crss", "woptss", "bfss", "eps-series"}
}
