package query

import (
	"math"

	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// FPSS is the Full-Parallel Similarity Search (§3.2): a breadth-first
// sweep that, at every directory level, derives the Lemma-1 threshold
// from the entries' Dmax and subtree counts, rejects entries whose Dmin
// exceeds it, and fetches every surviving child in one parallel batch.
// It maximizes intra-query parallelism but has no control over the
// number of fetched pages, which is exactly the weakness the paper's
// workload experiments expose.
type FPSS struct{}

// Name implements Algorithm.
func (FPSS) Name() string { return "FPSS" }

// NewExecution implements Algorithm.
func (FPSS) NewExecution(t *parallel.Tree, q geom.Point, k int, opts Options) Execution {
	return &fpssExec{base: newBase(t, q, k, opts), best: newBestList(k), dthSq: math.Inf(1)}
}

type fpssExec struct {
	base
	best    *bestList
	dthSq   float64
	started bool
}

func (e *fpssExec) Results() []Neighbor {
	r := e.best.results()
	sortNeighbors(r)
	return r
}

func (e *fpssExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}

	scanned, sorted := 0, 0
	if len(delivered) > 0 && delivered[0].IsLeaf() {
		// Final level: evaluate all objects; the BFS invariant (every
		// page possibly holding an answer was fetched) makes the best
		// list exact.
		for _, n := range delivered {
			scanned += len(n.Entries)
			for i, d := range e.leafDmin(n) {
				if d <= e.best.kthDistSq() {
					en := n.Entries[i]
					e.best.offer(Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		}
		e.done = true
		return e.finishStep(nil, scanned, 0)
	}

	// Directory level: threshold, prune, activate everything.
	cands := makeCandidates(e.q, delivered)
	scanned = len(cands)
	if b := lemma1BoundSq(cands, e.k); b < e.dthSq {
		e.dthSq = b
	}
	cands = pruneByDmin(cands, e.dthSq)
	sortByDmin(cands) // deterministic request order; counted as CPU sort work
	sorted = len(cands)

	reqs := make([]PageRequest, 0, len(cands))
	for _, c := range cands {
		reqs = append(reqs, e.request(c.child, c.level))
	}
	if len(reqs) == 0 {
		// Possible only on an empty tree (root with no entries).
		e.done = true
	}
	return e.finishStep(reqs, scanned, sorted)
}
