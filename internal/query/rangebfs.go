package query

import (
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/rtree"
)

// RangeBFS executes a similarity range query (Definition 1: all objects
// within Eps of the query point) breadth-first over the parallel tree,
// fetching every intersecting page of a level in one parallel batch.
// This is the workload the multiplexed R-tree of Kamel & Faloutsos was
// designed for (paper §2.2): the visiting order is irrelevant for range
// queries, so full parallelism has no downside.
//
// RangeBFS implements Algorithm so the same drivers and the timed
// simulator run it; the k parameter of NewExecution is ignored (a range
// query's result size is data-dependent).
type RangeBFS struct {
	Eps float64
}

// Name implements Algorithm.
func (RangeBFS) Name() string { return "RANGE-BFS" }

// NewExecution implements Algorithm.
func (r RangeBFS) NewExecution(t *parallel.Tree, q geom.Point, _ int, opts Options) Execution {
	return &rangeExec{base: newBase(t, q, 0, opts), epsSq: r.Eps * r.Eps}
}

type rangeExec struct {
	base
	epsSq   float64
	found   []Neighbor
	started bool
}

func (e *rangeExec) Results() []Neighbor {
	out := append([]Neighbor(nil), e.found...)
	sortNeighbors(out)
	return out
}

func (e *rangeExec) Step(delivered []*rtree.Node) StepResult {
	if !e.started {
		e.started = true
		return e.finishStep([]PageRequest{e.request(e.tree.Root(), e.tree.Height()-1)}, 0, 0)
	}
	scanned := 0
	if len(delivered) > 0 && delivered[0].IsLeaf() {
		for _, n := range delivered {
			scanned += len(n.Entries)
			for i, d := range e.entrySphereRectMin(n) {
				if d <= e.epsSq {
					en := n.Entries[i]
					e.found = append(e.found, Neighbor{Object: en.Object, Rect: en.Rect, DistSq: d})
				}
			}
		}
		e.done = true
		return e.finishStep(nil, scanned, 0)
	}
	var reqs []PageRequest
	for _, n := range delivered {
		scanned += len(n.Entries)
		for i, d := range e.entrySphereRectMin(n) {
			if d <= e.epsSq {
				reqs = append(reqs, e.request(n.Entries[i].Child, n.Level-1))
			}
		}
	}
	if len(reqs) == 0 {
		e.done = true
	}
	return e.finishStep(reqs, scanned, 0)
}
