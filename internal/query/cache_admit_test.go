package query

import (
	"errors"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/dataset"
	"repro/internal/rtree"
)

// TestSharedCacheAdmitsOnDelivery is the regression test for the
// admit-before-fetch bug: a page must enter the shared cache only
// after its fetch delivered. A fetcher that fails mid-query must leave
// the cache holding exactly the pages of the stages that completed —
// a later query may not see a false residency hit for a page that was
// never read.
func TestSharedCacheAdmitsOnDelivery(t *testing.T) {
	pts := dataset.CaliforniaLike(2000, 51)
	tree := buildTree(t, pts, 2, 4, 16)
	q := dataset.SampleQueries(pts, 1, 52)[0]
	pool := bufferpool.New[rtree.PageID, struct{}](256)
	opts := Options{SharedCache: pool}

	// Fail the very first fetch: nothing was delivered, so nothing may
	// have been admitted.
	bang := errors.New("disk on fire")
	ex := CRSS{}.NewExecution(tree, q, 5, opts)
	err := RunWith(ex, "CRSS", func(reqs []PageRequest) ([]*rtree.Node, error) {
		return nil, bang
	})
	if !errors.Is(err, bang) {
		t.Fatalf("err = %v", err)
	}
	if n := pool.Len(); n != 0 {
		t.Fatalf("failed first fetch left %d pages in the shared cache", n)
	}

	// Fail at stage 3: stages 0 and 1 delivered (and only those pages
	// may be resident); stage 2's requests were in flight when the
	// failure hit and must not be resident.
	var delivered, inFlight []rtree.PageID
	stage := 0
	ex = CRSS{}.NewExecution(tree, q, 5, opts)
	err = RunWith(ex, "CRSS", func(reqs []PageRequest) ([]*rtree.Node, error) {
		if stage == 2 {
			for _, r := range reqs {
				if !r.Cached {
					inFlight = append(inFlight, r.Page)
				}
			}
			return nil, bang
		}
		stage++
		nodes := make([]*rtree.Node, len(reqs))
		for i, r := range reqs {
			nodes[i] = tree.Store().Get(r.Page)
			if !r.Cached {
				delivered = append(delivered, r.Page)
			}
		}
		return nodes, nil
	})
	if !errors.Is(err, bang) {
		t.Fatalf("err = %v", err)
	}
	if len(inFlight) == 0 {
		t.Fatal("test never reached stage 2; tree too shallow")
	}
	for _, id := range inFlight {
		if pool.Contains(id) {
			t.Errorf("page %d admitted although its fetch failed", id)
		}
	}
	// All but the last delivered stage must be resident (the final
	// delivered batch is admitted when the next stage runs — which
	// here was the failing one, so it is admitted too).
	for _, id := range delivered[:len(delivered)-1] {
		if !pool.Contains(id) {
			t.Errorf("delivered page %d missing from the shared cache", id)
		}
	}
}

// TestSharedCacheCompletedQueryAdmitsAll: after a query runs to
// completion every physically fetched page is resident, so an
// identical follow-up query does zero disk accesses (full residency),
// and its result set is unchanged.
func TestSharedCacheCompletedQueryAdmitsAll(t *testing.T) {
	pts := dataset.CaliforniaLike(2000, 53)
	tree := buildTree(t, pts, 2, 4, 16)
	q := dataset.SampleQueries(pts, 1, 54)[0]
	pool := bufferpool.New[rtree.PageID, struct{}](1024)
	opts := Options{SharedCache: pool}
	d := Driver{Tree: tree}

	res1, stats1 := d.Run(CRSS{}, q, 5, opts)
	if stats1.DiskAccesses == 0 {
		t.Fatal("first run hit no disk")
	}
	if pool.Len() != stats1.DiskAccesses {
		t.Fatalf("cache holds %d pages, query fetched %d", pool.Len(), stats1.DiskAccesses)
	}
	res2, stats2 := d.Run(CRSS{}, q, 5, opts)
	if stats2.DiskAccesses != 0 {
		t.Fatalf("repeat run paid %d disk accesses despite full residency", stats2.DiskAccesses)
	}
	if stats2.NodesVisited != stats1.NodesVisited {
		t.Fatalf("repeat run visited %d nodes, first %d", stats2.NodesVisited, stats1.NodesVisited)
	}
	for i := range res1 {
		if res1[i].Object != res2[i].Object || res1[i].DistSq != res2[i].DistSq {
			t.Fatalf("rank %d differs between runs", i)
		}
	}
}
