package query

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TestValidateKNN is the table-driven contract of the shared validator.
func TestValidateKNN(t *testing.T) {
	tree := buildTree(t, dataset.Gaussian(300, 2, 5), 2, 3, 16)
	for _, tc := range []struct {
		name   string
		q      geom.Point
		k      int
		reject bool
	}{
		{"valid", geom.Point{0.5, 0.5}, 5, false},
		{"k one", geom.Point{0.5, 0.5}, 1, false},
		{"k zero", geom.Point{0.5, 0.5}, 0, true},
		{"k negative", geom.Point{0.5, 0.5}, -7, true},
		{"nil point", nil, 5, true},
		{"dim too high", geom.Point{1, 2, 3}, 5, true},
		{"dim too low", geom.Point{1}, 5, true},
		{"empty point", geom.Point{}, 5, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateKNN(tree, tc.q, tc.k)
			if !tc.reject {
				if err != nil {
					t.Fatalf("rejected valid query: %v", err)
				}
				return
			}
			var invalid *InvalidQueryError
			if !errors.As(err, &invalid) {
				t.Fatalf("err = %v, want *InvalidQueryError", err)
			}
			if invalid.Reason == "" || invalid.Error() == "" {
				t.Fatal("error carries no reason")
			}
		})
	}
}

// TestRunCheckedRejectsAndRuns: RunChecked fails malformed queries with
// the typed error and otherwise behaves exactly like Run.
func TestRunCheckedRejectsAndRuns(t *testing.T) {
	tree := buildTree(t, dataset.Gaussian(300, 2, 5), 2, 3, 16)
	d := Driver{Tree: tree}

	var invalid *InvalidQueryError
	if _, _, err := d.RunChecked(CRSS{}, geom.Point{0.5, 0.5}, 0, Options{}); !errors.As(err, &invalid) {
		t.Fatalf("k=0: err = %v, want *InvalidQueryError", err)
	}
	if _, _, err := d.RunChecked(CRSS{}, nil, 5, Options{}); !errors.As(err, &invalid) {
		t.Fatalf("nil point: err = %v, want *InvalidQueryError", err)
	}

	want, wantStats := d.Run(CRSS{}, geom.Point{0.5, 0.5}, 5, Options{})
	got, gotStats, err := d.RunChecked(CRSS{}, geom.Point{0.5, 0.5}, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("RunChecked returned %d results, Run %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Object != want[i].Object || got[i].DistSq != want[i].DistSq {
			t.Fatalf("result %d: %+v vs %+v", i, got[i], want[i])
		}
	}
	if gotStats.NodesVisited != wantStats.NodesVisited {
		t.Fatalf("stats diverge: %d vs %d nodes", gotStats.NodesVisited, wantStats.NodesVisited)
	}

	// Plain Run must stay k-agnostic: range queries drive it with k=0
	// (RangeBFS), so validation lives only in RunChecked.
	res, stats := d.Run(RangeBFS{Eps: 0.2}, geom.Point{0.5, 0.5}, 0, Options{})
	if stats == nil {
		t.Fatal("Run with k=0 returned nil stats")
	}
	_ = res
}
