package query

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// benchNodes builds directory nodes with the given entry count and
// dimensionality, optionally with SR-tree spheres on every entry.
func benchNodes(dim, perNode, count int, spheres bool) []*rtree.Node {
	rng := rand.New(rand.NewSource(7))
	nodes := make([]*rtree.Node, count)
	for nn := range nodes {
		n := &rtree.Node{ID: rtree.PageID(nn + 1), Level: 2}
		for i := 0; i < perNode; i++ {
			lo := make(geom.Point, dim)
			hi := make(geom.Point, dim)
			for a := 0; a < dim; a++ {
				lo[a] = rng.Float64() * 0.5
				hi[a] = lo[a] + rng.Float64()*0.5
			}
			e := rtree.Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Child: rtree.PageID(100 + i), Count: 1 + rng.Intn(50)}
			if spheres {
				c := make(geom.Point, dim)
				for a := range c {
					c[a] = (lo[a] + hi[a]) / 2
				}
				e.Sphere = geom.Sphere{Center: c, Radius: math.Abs(rng.NormFloat64())}
			}
			n.Entries = append(n.Entries, e)
		}
		nodes[nn] = n
	}
	return nodes
}

// BenchmarkMakeCandidates measures the candidate-filtering pass — the
// CPU core of every directory stage — batch versus the scalar reference,
// at directory fan-outs typical for 4 KiB pages.
func BenchmarkMakeCandidates(b *testing.B) {
	for _, cfg := range []struct {
		dim     int
		perNode int
		spheres bool
	}{
		{2, 92, false},
		{4, 52, false},
		{4, 36, true},
		{10, 23, false},
	} {
		nodes := benchNodes(cfg.dim, cfg.perNode, 8, cfg.spheres)
		q := make(geom.Point, cfg.dim)
		for a := range q {
			q[a] = 0.5
		}
		name := fmt.Sprintf("d=%d/fanout=%d/spheres=%v", cfg.dim, cfg.perNode, cfg.spheres)
		b.Run("batch/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = makeCandidates(q, nodes)
			}
		})
		b.Run("scalar/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = makeCandidatesScalar(q, nodes)
			}
		})
	}
}
