// Package exec is the real concurrent query-execution engine: it maps
// the paper's N-disk parallelism onto actual goroutines instead of the
// event-driven simulator's virtual clock. One worker goroutine serves
// each simulated disk (more with Config.WorkersPerDisk), owning that
// disk's encoded page images and draining a per-disk fetch channel —
// the Go-native analogue of the paper's array, where a page fetch
// really costs work (a page decode) on the worker that owns the disk.
//
// The same stage-driven query.Execution state machines that run under
// the immediate Driver and the system simulator run here unchanged: the
// Engine resolves each stage's batched page requests by fanning them
// out to the disk workers, collecting completions asynchronously, and
// delivering the nodes in request order so results are bit-for-bit
// identical to the sequential paths. Many client goroutines may query a
// shared Engine concurrently; total outstanding page fetches are
// bounded, and queries honor context cancellation mid-flight.
package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
)

// ErrClosed is returned by KNN after Close.
var ErrClosed = errors.New("exec: engine closed")

// Config tunes the engine. The zero value picks sensible defaults.
type Config struct {
	// WorkersPerDisk is the number of goroutines serving each simulated
	// disk's fetch queue (default 1 — the paper's one-arm-per-disk
	// model; more overlaps page decodes on multi-core hosts).
	WorkersPerDisk int
	// QueueDepth is the per-disk fetch channel buffer (default 32).
	// When a disk's queue is full, request submission blocks — natural
	// backpressure against one hot disk.
	QueueDepth int
	// MaxInFlight bounds the total outstanding page fetches across all
	// queries (default 4 fetches per worker). Admission of new stage
	// batches blocks once the bound is reached.
	MaxInFlight int
	// CachePages enables a shared decoded-page LRU cache of that many
	// pages with singleflight fetch deduplication (0 = no cache; every
	// request decodes from its disk's page image).
	CachePages int
	// CacheShards is the lock sharding of the page cache (default 8).
	CacheShards int
}

func (c *Config) fill() {
	if c.WorkersPerDisk <= 0 {
		c.WorkersPerDisk = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
}

// Stats are the engine's cumulative counters (monotonic since New).
type Stats struct {
	Queries      uint64 // queries completed successfully
	Cancelled    uint64 // queries aborted by context or Close
	PagesFetched uint64 // page fetches served by disk workers
	Decodes      uint64 // physical page decodes (cache misses when caching)
	// FetchesCancelled counts fetch jobs a worker abandoned because
	// the query's context was already cancelled — no page was decoded
	// for them and they do not count as PagesFetched.
	FetchesCancelled uint64
}

// Sub diffs two cumulative snapshots (s taken after prev).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Queries:          s.Queries - prev.Queries,
		Cancelled:        s.Cancelled - prev.Cancelled,
		PagesFetched:     s.PagesFetched - prev.PagesFetched,
		Decodes:          s.Decodes - prev.Decodes,
		FetchesCancelled: s.FetchesCancelled - prev.FetchesCancelled,
	}
}

// diskStore is one disk's content: the encoded image of every page
// placed on the disk, built once at engine construction and immutable
// afterwards, so the disk's workers read it without locks. Nodes that
// cannot be encoded into a single page (X-tree supernodes) stay
// resident as live node references.
type diskStore struct {
	codec    pagestore.Codec
	pages    map[rtree.PageID][]byte
	resident map[rtree.PageID]*rtree.Node
}

func (s *diskStore) read(id rtree.PageID) (*rtree.Node, error) {
	if buf, ok := s.pages[id]; ok {
		return s.codec.Decode(buf)
	}
	if n, ok := s.resident[id]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("exec: page %d not stored on this disk", id)
}

// fetchJob asks a disk worker for one page of a stage batch.
type fetchJob struct {
	page      rtree.PageID
	idx       int // position in the stage's request slice
	ctx       context.Context
	out       chan<- fetchResult
	submitted time.Time // when the job entered the disk queue
}

type fetchResult struct {
	idx  int
	node *rtree.Node
	err  error
	wall time.Duration // queue wait + service, worker-measured
	hit  bool          // served by the shared decoded-page cache
}

// Engine executes k-NN queries concurrently against a shared parallel
// R*-tree. The tree must not be mutated while the engine is open: the
// engine snapshots page content at construction and reads tree
// placement metadata without locks.
type Engine struct {
	tree   *parallel.Tree
	cfg    Config
	stores []*diskStore
	queues []chan *fetchJob
	sem    chan struct{} // in-flight fetch slots
	cache  *bufferpool.Sharded[rtree.PageID, *rtree.Node]

	mu       sync.Mutex
	isClosed bool           // guarded by mu
	closed   chan struct{}  // signals Close to blocked submitters
	active   sync.WaitGroup // running KNN calls
	workers  sync.WaitGroup

	queries          atomic.Uint64
	cancelled        atomic.Uint64
	pagesFetched     atomic.Uint64
	decodes          atomic.Uint64
	fetchesCancelled atomic.Uint64

	// Observability: per-disk gauges and wall-clock latency
	// histograms, always on (single atomic ops on the hot path).
	gauges   []obs.DiskGauges
	queryLat *obs.Histogram // successful KNN calls, end to end
	fetchLat *obs.Histogram // per page fetch: queue wait + service
	stageLat *obs.Histogram // per stage batch: submit to last arrival
	semWait  *obs.Histogram // per stage: total in-flight-slot wait
}

// New builds an engine over a tree: every live page is encoded into its
// disk's store (per the tree's declustering placements) and the disk
// workers are started. Close releases them.
func New(t *parallel.Tree, cfg Config) (*Engine, error) {
	cfg.fill()
	n := t.NumDisks()
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * n * cfg.WorkersPerDisk
	}
	e := &Engine{
		tree:     t,
		cfg:      cfg,
		stores:   make([]*diskStore, n),
		queues:   make([]chan *fetchJob, n),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		closed:   make(chan struct{}),
		gauges:   make([]obs.DiskGauges, n),
		queryLat: obs.NewLatencyHistogram(),
		fetchLat: obs.NewLatencyHistogram(),
		stageLat: obs.NewLatencyHistogram(),
		semWait:  obs.NewLatencyHistogram(),
	}
	tc := t.Config()
	codec := pagestore.Codec{Dim: tc.Dim, PageSize: tc.PageSize, Spheres: tc.UseSpheres}
	for d := range e.stores {
		e.stores[d] = &diskStore{
			codec:    codec,
			pages:    make(map[rtree.PageID][]byte),
			resident: make(map[rtree.PageID]*rtree.Node),
		}
	}
	var buildErr error
	t.Walk(func(n *rtree.Node, _ int) bool {
		pl, ok := t.Placement(n.ID)
		if !ok {
			buildErr = fmt.Errorf("exec: live page %d has no placement", n.ID)
			return false
		}
		st := e.stores[pl.Disk]
		if buf, err := codec.Encode(n); err == nil {
			st.pages[n.ID] = buf
		} else {
			// Supernodes (and any other node exceeding one page) are
			// served from the live in-memory node.
			st.resident[n.ID] = n
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	if cfg.CachePages > 0 {
		e.cache = bufferpool.NewSharded[rtree.PageID, *rtree.Node](
			cfg.CachePages, cfg.CacheShards,
			func(id rtree.PageID) uint64 { return uint64(uint32(id)) * 0x9e3779b97f4a7c15 })
	}
	for d := 0; d < n; d++ {
		e.queues[d] = make(chan *fetchJob, cfg.QueueDepth)
		for w := 0; w < cfg.WorkersPerDisk; w++ {
			e.workers.Add(1)
			go e.worker(d)
		}
	}
	return e, nil
}

// NumWorkers returns the total number of disk worker goroutines.
func (e *Engine) NumWorkers() int { return e.tree.NumDisks() * e.cfg.WorkersPerDisk }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:          e.queries.Load(),
		Cancelled:        e.cancelled.Load(),
		PagesFetched:     e.pagesFetched.Load(),
		Decodes:          e.decodes.Load(),
		FetchesCancelled: e.fetchesCancelled.Load(),
	}
}

// CacheStats returns the shared page cache counters (zero when the
// cache is disabled).
func (e *Engine) CacheStats() bufferpool.Stats {
	if e.cache == nil {
		return bufferpool.Stats{}
	}
	return e.cache.Stats()
}

// worker serves one disk's fetch queue until Close drains it. A job
// whose context is already cancelled is abandoned without decoding its
// page: the context error is delivered and the job counts under the
// cancellation telemetry, not under PagesFetched.
func (e *Engine) worker(d int) {
	defer e.workers.Done()
	st := e.stores[d]
	g := &e.gauges[d]
	for job := range e.queues[d] {
		g.Queued.Add(-1)
		res := fetchResult{idx: job.idx}
		if err := job.ctx.Err(); err != nil {
			res.err = err
			g.Cancelled.Add(1)
			e.fetchesCancelled.Add(1)
		} else {
			g.InFlight.Add(1)
			res.node, res.hit, res.err = e.readPage(st, job.page)
			g.InFlight.Add(-1)
			e.pagesFetched.Add(1)
			g.Served.Add(1)
			res.wall = time.Since(job.submitted)
			e.fetchLat.Observe(res.wall.Seconds())
		}
		job.out <- res // buffered to batch size; never blocks
		<-e.sem        // release the in-flight slot
	}
}

// readPage resolves one page through the shared cache (singleflight
// deduplicated) or straight from the disk store. hit reports whether
// the page was served without a decode in this call.
func (e *Engine) readPage(st *diskStore, id rtree.PageID) (*rtree.Node, bool, error) {
	if e.cache == nil {
		e.decodes.Add(1)
		n, err := st.read(id)
		return n, false, err
	}
	return e.cache.GetOrFetchHit(id, func() (*rtree.Node, error) {
		e.decodes.Add(1)
		return st.read(id)
	})
}

// fetchBatch resolves one stage's requests through the disk workers:
// jobs fan out to the per-disk queues (respecting the in-flight bound)
// and completions are collected asynchronously, then reordered to
// request order — executions depend on request-order delivery for
// deterministic tie-breaking, which is what makes engine results
// identical to the sequential Driver's. With an observer attached the
// stage emits SemWait, per-fetch FetchDone (request order, wall-clock
// latency and cache attribution) and StageDone events.
func (e *Engine) fetchBatch(ctx context.Context, stage int, reqs []query.PageRequest, obsv obs.QueryObserver) ([]*rtree.Node, error) {
	start := time.Now()
	out := make(chan fetchResult, len(reqs))
	submitted := 0
	var semWait time.Duration
	var err error
submit:
	for i, r := range reqs {
		acquire := time.Now()
		select {
		case e.sem <- struct{}{}:
			semWait += time.Since(acquire)
		case <-ctx.Done():
			err = ctx.Err()
			break submit
		case <-e.closed:
			err = ErrClosed
			break submit
		}
		job := &fetchJob{page: r.Page, idx: i, ctx: ctx, out: out, submitted: time.Now()}
		e.gauges[r.Disk].Queued.Add(1)
		select {
		case e.queues[r.Disk] <- job:
			submitted++
		case <-ctx.Done():
			e.gauges[r.Disk].Queued.Add(-1)
			<-e.sem
			err = ctx.Err()
			break submit
		case <-e.closed:
			e.gauges[r.Disk].Queued.Add(-1)
			<-e.sem
			err = ErrClosed
			break submit
		}
	}
	e.semWait.Observe(semWait.Seconds())
	results := make([]fetchResult, len(reqs))
	for c := 0; c < submitted; c++ {
		res := <-out
		if res.err != nil {
			if err == nil {
				err = res.err
			}
			continue
		}
		results[res.idx] = res
	}
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	e.stageLat.Observe(wall.Seconds())
	if obsv != nil {
		obsv.Observe(obs.Event{Type: obs.SemWait, Stage: stage, Batch: len(reqs), Wall: semWait})
		for i, r := range reqs {
			obsv.Observe(obs.Event{
				Type: obs.FetchDone, Stage: stage,
				Page: int64(r.Page), Disk: r.Disk, Pages: r.Pages, Cached: r.Cached,
				CacheHit: results[i].hit, Wall: results[i].wall,
			})
		}
		obsv.Observe(obs.Event{Type: obs.StageDone, Stage: stage, Batch: len(reqs), Wall: wall})
	}
	nodes := make([]*rtree.Node, len(reqs))
	for i := range results {
		nodes[i] = results[i].node
	}
	return nodes, nil
}

// KNN answers one k-nearest-neighbor query. It is safe to call from
// many goroutines concurrently; the query's page fetches execute on the
// per-disk workers. The context cancels the query between (and during)
// fetch stages. opts.SharedCache may be shared across concurrent
// queries (bufferpool.Pool is internally locked); residency accounting
// is admit-on-delivery, so a cancelled query never plants a page it did
// not fetch. For a decoded-page cache prefer the engine's own
// Config.CachePages, which also deduplicates concurrent fetches.
func (e *Engine) KNN(ctx context.Context, alg query.Algorithm, q geom.Point, k int, opts query.Options) ([]query.Neighbor, *query.Stats, error) {
	if k <= 0 {
		return nil, nil, fmt.Errorf("exec: k must be positive, got %d", k)
	}
	if q.Dim() != e.tree.Config().Dim {
		return nil, nil, fmt.Errorf("exec: query dim %d, tree dim %d", q.Dim(), e.tree.Config().Dim)
	}
	if err := e.begin(); err != nil {
		return nil, nil, err
	}
	defer e.active.Done()

	start := time.Now()
	stage := 0
	ex := alg.NewExecution(e.tree, q, k, opts)
	err := query.RunWith(ex, alg.Name(), func(reqs []query.PageRequest) ([]*rtree.Node, error) {
		nodes, err := e.fetchBatch(ctx, stage, reqs, opts.Observer)
		stage++
		return nodes, err
	})
	if err != nil {
		e.cancelled.Add(1)
		return nil, nil, err
	}
	e.queries.Add(1)
	e.queryLat.Observe(time.Since(start).Seconds())
	return ex.Results(), ex.Stats(), nil
}

// begin admits a query unless the engine is closed.
func (e *Engine) begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.isClosed {
		return ErrClosed
	}
	e.active.Add(1)
	return nil
}

// Close rejects new queries, aborts queries blocked on admission,
// waits for running queries to unwind, and stops the workers. It is
// idempotent and safe to call concurrently with KNN.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.isClosed {
		e.mu.Unlock()
		return
	}
	e.isClosed = true
	close(e.closed)
	e.mu.Unlock()

	e.active.Wait()
	for _, q := range e.queues {
		close(q)
	}
	e.workers.Wait()
}
