// Package exec is the real concurrent query-execution engine: it maps
// the paper's N-disk parallelism onto actual goroutines instead of the
// event-driven simulator's virtual clock. One worker goroutine serves
// each simulated disk (more with Config.WorkersPerDisk), owning that
// disk's encoded page images and draining a per-disk fetch channel —
// the Go-native analogue of the paper's array, where a page fetch
// really costs work (a page decode) on the worker that owns the disk.
//
// The same stage-driven query.Execution state machines that run under
// the immediate Driver and the system simulator run here unchanged: the
// Engine resolves each stage's batched page requests by fanning them
// out to the disk workers, collecting completions asynchronously, and
// delivering the nodes in request order so results are bit-for-bit
// identical to the sequential paths. Many client goroutines may query a
// shared Engine concurrently; total outstanding page fetches are
// bounded, and queries honor context cancellation mid-flight.
package exec

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
)

// ErrClosed is returned by KNN after Close.
var ErrClosed = errors.New("exec: engine closed")

// Config tunes the engine. The zero value picks sensible defaults.
type Config struct {
	// WorkersPerDisk is the number of goroutines serving each simulated
	// disk's fetch queue (default 1 — the paper's one-arm-per-disk
	// model; more overlaps page decodes on multi-core hosts).
	WorkersPerDisk int
	// QueueDepth is the per-disk fetch channel buffer (default 32).
	// When a disk's queue is full, request submission blocks — natural
	// backpressure against one hot disk.
	QueueDepth int
	// MaxInFlight bounds the total outstanding page fetches across all
	// queries (default 4 fetches per worker). Admission of new stage
	// batches blocks once the bound is reached.
	MaxInFlight int
	// CachePages enables a shared decoded-page LRU cache of that many
	// pages with singleflight fetch deduplication (0 = no cache; every
	// request decodes from its disk's page image).
	CachePages int
	// CoalesceFetches merges concurrent fetches of the same page
	// across queries into one disk job: later requests join the
	// in-flight fetch and share its result instead of queueing their
	// own copy. This is request-level singleflight, one layer above
	// the decoded-page cache's (which deduplicates decodes, not queue
	// and in-flight slots) — the network query service enables it so
	// concurrent clients hammering the same hot directory pages share
	// fan-outs instead of multiplying queue depth. Results are
	// bit-identical with or without coalescing.
	CoalesceFetches bool
	// CacheShards is the lock sharding of the page cache (default 8).
	CacheShards int
	// Mirrors is the number of physical replicas of every logical
	// disk's page store (default 1 — the paper's RAID-0; 2 models
	// RAID-1 shadowing, mirroring simarray.Config.Mirrors). Reads pick
	// a primary replica per page and redirect to a mirror when the
	// primary fails or is degraded.
	Mirrors int
	// Fault, when non-nil, injects failures and latency spikes into
	// every replica read (drives are keyed disk*Mirrors+mirror). Nil
	// injects nothing and costs nothing.
	Fault *fault.Injector
	// RetryLimit is how many times a transiently failed read is
	// re-attempted on the same replica before redirecting to a mirror
	// (default 2; negative disables retries).
	RetryLimit int
	// RetryBackoff is the initial pause between retry attempts; it
	// doubles per attempt up to RetryMaxBackoff, honoring the query
	// context's deadline (defaults 200µs / 5ms).
	RetryBackoff    time.Duration
	RetryMaxBackoff time.Duration
	// DegradeAfter marks a replica degraded — skipped by all future
	// reads — after that many consecutive failed I/Os (default 4). A
	// fail-stop error (fault.ErrDiskDead) degrades immediately.
	DegradeAfter int
	// HedgeReads fires a duplicate read at a mirror when the primary
	// has not answered within a p99-derived delay (needs Mirrors > 1).
	// The first answer wins; the loser is discarded.
	HedgeReads bool
	// HedgeDelayFloor is the minimum hedge delay, used verbatim until
	// the replica-read latency histogram has enough samples for a
	// meaningful p99 (default 1ms).
	HedgeDelayFloor time.Duration
	// DataDir, when non-empty, backs every replica with a real
	// file-backed page store (one file per disk×mirror, created under
	// DataDir at construction, closed by Close) instead of in-memory
	// page images. Reads then go through page-aligned pread — or mmap
	// with Mmap — so injected faults coexist with genuine I/O errors: a
	// truncated replica file yields a real short read the degraded-mode
	// path must survive. Nodes too large for one page (X-tree
	// supernodes) stay memory-resident in either mode.
	DataDir string
	// Mmap selects the mmap read path for file-backed replicas; it is
	// ignored without DataDir (and silently falls back to pread on
	// platforms without mmap support).
	Mmap bool
}

func (c *Config) fill() {
	if c.WorkersPerDisk <= 0 {
		c.WorkersPerDisk = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 32
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 8
	}
	if c.Mirrors <= 0 {
		c.Mirrors = 1
	}
	if c.RetryLimit == 0 {
		c.RetryLimit = 2
	} else if c.RetryLimit < 0 {
		c.RetryLimit = 0
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 200 * time.Microsecond
	}
	if c.RetryMaxBackoff <= 0 {
		c.RetryMaxBackoff = 5 * time.Millisecond
	}
	if c.DegradeAfter <= 0 {
		c.DegradeAfter = 4
	}
	if c.HedgeDelayFloor <= 0 {
		c.HedgeDelayFloor = time.Millisecond
	}
}

// Stats are the engine's cumulative counters (monotonic since New).
type Stats struct {
	Queries      uint64 // queries completed successfully
	Cancelled    uint64 // queries aborted by context or Close
	PagesFetched uint64 // page fetches served by disk workers
	Decodes      uint64 // physical page decodes (cache misses when caching)
	// FetchesCancelled counts fetch jobs abandoned on a cancelled
	// query context — either before a worker picked them up or while
	// the fetch was in flight. No page is delivered for them and they
	// do not count as PagesFetched.
	FetchesCancelled uint64
	// FetchErrors counts fetch jobs that failed with a real I/O error
	// after the read path exhausted every replica, retry and hedge.
	// Distinct from FetchesCancelled: cancellation noise never masks
	// an I/O error, and vice versa.
	FetchErrors uint64
	// FetchesCoalesced counts fetch requests served by joining another
	// query's in-flight fetch of the same page (Config.CoalesceFetches)
	// instead of queueing their own disk job. They do not count as
	// PagesFetched — no worker served them.
	FetchesCoalesced uint64
}

// Sub diffs two cumulative snapshots (s taken after prev).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{
		Queries:          s.Queries - prev.Queries,
		Cancelled:        s.Cancelled - prev.Cancelled,
		PagesFetched:     s.PagesFetched - prev.PagesFetched,
		Decodes:          s.Decodes - prev.Decodes,
		FetchesCancelled: s.FetchesCancelled - prev.FetchesCancelled,
		FetchErrors:      s.FetchErrors - prev.FetchErrors,
		FetchesCoalesced: s.FetchesCoalesced - prev.FetchesCoalesced,
	}
}

// diskStore is one disk's content: the encoded image of every page
// placed on the disk, built once at engine construction and immutable
// afterwards, so the disk's workers read it without locks. Nodes that
// cannot be encoded into a single page (X-tree supernodes) stay
// resident as live node references.
type diskStore struct {
	codec    pagestore.Codec
	pages    map[rtree.PageID][]byte
	resident map[rtree.PageID]*rtree.Node
}

// ReadPage implements pagestore.Reader.
func (s *diskStore) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	if buf, ok := s.pages[id]; ok {
		return s.codec.Decode(buf)
	}
	if n, ok := s.resident[id]; ok {
		return n, nil
	}
	return nil, fmt.Errorf("exec: page %d not stored on this disk", id)
}

// fileReplica is one replica's file-backed read path: page-aligned
// pread (or mmap) against the replica's own file, with memory-resident
// fallback for nodes that do not fit one page. Both maps are immutable
// after construction; FileStore handles its own locking.
type fileReplica struct {
	fs       *pagestore.FileStore
	resident map[rtree.PageID]*rtree.Node
}

// ReadPage implements pagestore.Reader.
func (r *fileReplica) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	if n, ok := r.resident[id]; ok {
		return n, nil
	}
	return r.fs.ReadPage(id)
}

// replica is one physical copy of a logical disk's page store, with
// its own health state. All replicas of a disk share the encoded page
// content; they differ in the (possibly fault-injected) reader and in
// whether they have been marked degraded.
type replica struct {
	disk   int
	mirror int
	reader pagestore.Reader
	// consecFails counts consecutive failed I/Os; any success resets
	// it, and crossing Config.DegradeAfter marks the replica degraded.
	consecFails atomic.Int64
	// degraded replicas are skipped by all future reads.
	degraded atomic.Bool
}

// fetchJob asks a disk worker for one page of a stage batch.
type fetchJob struct {
	page      rtree.PageID
	idx       int // position in the stage's request slice
	ctx       context.Context
	out       chan<- fetchResult
	submitted time.Time // when the job entered the disk queue
}

type fetchResult struct {
	idx  int
	node *rtree.Node
	err  error
	wall time.Duration // queue wait + service, worker-measured
	hit  bool          // served without a decode: page cache or a coalesced flight
	done bool          // a worker actually processed this slot
	// coalesced marks a result delivered through another request's
	// flight (request-level coalescing). A coalesced cancellation may
	// be the flight leader's, not this query's — fetchBatch refetches
	// such slots directly while its own context is live.
	coalesced bool
}

// Engine executes k-NN queries concurrently against a shared parallel
// R*-tree. The tree must not be mutated while the engine is open: the
// engine snapshots page content at construction and reads tree
// placement metadata without locks.
type Engine struct {
	tree     *parallel.Tree
	cfg      Config
	stores   []*diskStore
	replicas [][]*replica           // [logical disk][mirror]
	files    []*pagestore.FileStore // file-backed replica stores (DataDir mode), closed by Close
	queues   []chan *fetchJob
	sem      chan struct{} // in-flight fetch slots
	cache    *bufferpool.Sharded[rtree.PageID, *rtree.Node]
	co       *coalescer // request-level fetch coalescing (nil unless Config.CoalesceFetches)

	mu       sync.Mutex
	isClosed bool           // guarded by mu
	closed   chan struct{}  // signals Close to blocked submitters
	active   sync.WaitGroup // running KNN calls
	workers  sync.WaitGroup

	queries          atomic.Uint64
	cancelled        atomic.Uint64
	pagesFetched     atomic.Uint64
	decodes          atomic.Uint64
	fetchesCancelled atomic.Uint64
	fetchErrors      atomic.Uint64
	fetchesCoalesced atomic.Uint64

	// hedgeP99Nanos / hedgeRefreshAt cache the p99-derived hedge delay
	// so the hot hedged-read path does not pay a full histogram
	// snapshot per read (see hedgeDelay).
	hedgeP99Nanos  atomic.Int64
	hedgeRefreshAt atomic.Uint64

	// Observability: per-disk gauges and wall-clock latency
	// histograms, always on (single atomic ops on the hot path).
	gauges   []obs.DiskGauges
	faults   obs.FaultCounters
	storage  obs.StorageCounters // file-backed replica I/O (DataDir mode)
	queryLat *obs.Histogram      // successful KNN calls, end to end
	fetchLat *obs.Histogram      // per page fetch: queue wait + service
	readLat  *obs.Histogram      // per successful replica read (service only); feeds the hedge delay
	stageLat *obs.Histogram      // per stage batch: submit to last arrival
	semWait  *obs.Histogram      // per stage: total in-flight-slot wait
}

// New builds an engine over a tree: every live page is encoded into its
// disk's store (per the tree's declustering placements) and the disk
// workers are started. Close releases them.
func New(t *parallel.Tree, cfg Config) (*Engine, error) {
	cfg.fill()
	n := t.NumDisks()
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4 * n * cfg.WorkersPerDisk
	}
	e := &Engine{
		tree:     t,
		cfg:      cfg,
		stores:   make([]*diskStore, n),
		replicas: make([][]*replica, n),
		queues:   make([]chan *fetchJob, n),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		closed:   make(chan struct{}),
		gauges:   make([]obs.DiskGauges, n),
		queryLat: obs.NewLatencyHistogram(),
		fetchLat: obs.NewLatencyHistogram(),
		readLat:  obs.NewLatencyHistogram(),
		stageLat: obs.NewLatencyHistogram(),
		semWait:  obs.NewLatencyHistogram(),
	}
	tc := t.Config()
	codec := pagestore.Codec{Dim: tc.Dim, PageSize: tc.PageSize, Spheres: tc.UseSpheres}
	for d := range e.stores {
		e.stores[d] = &diskStore{
			codec:    codec,
			pages:    make(map[rtree.PageID][]byte),
			resident: make(map[rtree.PageID]*rtree.Node),
		}
	}
	var buildErr error
	t.Walk(func(n *rtree.Node, _ int) bool {
		pl, ok := t.Placement(n.ID)
		if !ok {
			buildErr = fmt.Errorf("exec: live page %d has no placement", n.ID)
			return false
		}
		st := e.stores[pl.Disk]
		if buf, err := codec.Encode(n); err == nil {
			st.pages[n.ID] = buf
		} else {
			// Supernodes (and any other node exceeding one page) are
			// served from the live in-memory node.
			st.resident[n.ID] = n
		}
		return true
	})
	if buildErr != nil {
		return nil, buildErr
	}
	// RAID-1 replica set: mirrors share the disk's encoded content but
	// carry independent fault programs and health state. In DataDir
	// mode each replica additionally owns its own on-disk copy, so a
	// fault on one physical file never corrupts its mirror.
	for d := 0; d < n; d++ {
		e.replicas[d] = make([]*replica, cfg.Mirrors)
		for m := 0; m < cfg.Mirrors; m++ {
			rd, err := e.buildReplicaReader(d, m, codec)
			if err != nil {
				return nil, errors.Join(err, e.closeFiles())
			}
			if cfg.Fault != nil {
				rd = cfg.Fault.Reader(d*cfg.Mirrors+m, rd)
			}
			e.replicas[d][m] = &replica{disk: d, mirror: m, reader: rd}
		}
	}
	if cfg.CachePages > 0 {
		e.cache = bufferpool.NewSharded[rtree.PageID, *rtree.Node](
			cfg.CachePages, cfg.CacheShards,
			func(id rtree.PageID) uint64 { return uint64(uint32(id)) * 0x9e3779b97f4a7c15 })
	}
	if cfg.CoalesceFetches {
		e.co = newCoalescer()
	}
	for d := 0; d < n; d++ {
		e.queues[d] = make(chan *fetchJob, cfg.QueueDepth)
		for w := 0; w < cfg.WorkersPerDisk; w++ {
			e.workers.Add(1)
			go e.worker(d)
		}
	}
	return e, nil
}

// ReplicaFileName is the file holding one replica's page store under
// Config.DataDir. Exposed so tests and tools can reach the real file
// (e.g. to truncate it and provoke a genuine short read).
func ReplicaFileName(disk, mirror int) string {
	return fmt.Sprintf("drive-%02d-%d.pages", disk, mirror)
}

// buildReplicaReader returns one replica's base (pre-fault-injection)
// read path. Without DataDir that is the disk's in-memory page images;
// with DataDir the disk's pages are materialized into the replica's own
// file and reads go through real file I/O.
func (e *Engine) buildReplicaReader(d, m int, codec pagestore.Codec) (pagestore.Reader, error) {
	if e.cfg.DataDir == "" {
		return e.stores[d], nil
	}
	path := filepath.Join(e.cfg.DataDir, ReplicaFileName(d, m))
	fs, err := pagestore.OpenFileStore(path, codec, pagestore.FileStoreOptions{
		Mmap:     e.cfg.Mmap,
		Counters: &e.storage,
	})
	if err != nil {
		return nil, fmt.Errorf("exec: replica %d/%d store: %w", d, m, err)
	}
	e.files = append(e.files, fs)
	st := e.stores[d]
	ids := make([]rtree.PageID, 0, len(st.pages))
	for id := range st.pages {
		ids = append(ids, id)
	}
	slices.Sort(ids) // deterministic file layout regardless of map order
	for _, id := range ids {
		if err := fs.WriteImage(id, st.pages[id]); err != nil {
			return nil, fmt.Errorf("exec: replica %d/%d page %d: %w", d, m, id, err)
		}
	}
	if err := fs.Sync(); err != nil {
		return nil, fmt.Errorf("exec: replica %d/%d sync: %w", d, m, err)
	}
	return &fileReplica{fs: fs, resident: st.resident}, nil
}

// closeFiles closes the file-backed replica stores (DataDir mode),
// joining their close errors.
func (e *Engine) closeFiles() error {
	var err error
	for _, fs := range e.files {
		err = errors.Join(err, fs.Close())
	}
	e.files = nil
	return err
}

// NumWorkers returns the total number of disk worker goroutines.
func (e *Engine) NumWorkers() int { return e.tree.NumDisks() * e.cfg.WorkersPerDisk }

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Queries:          e.queries.Load(),
		Cancelled:        e.cancelled.Load(),
		PagesFetched:     e.pagesFetched.Load(),
		Decodes:          e.decodes.Load(),
		FetchesCancelled: e.fetchesCancelled.Load(),
		FetchErrors:      e.fetchErrors.Load(),
		FetchesCoalesced: e.fetchesCoalesced.Load(),
	}
}

// QueueDepths reports each logical disk's current fetch backlog: jobs
// sitting in (or blocked entering) the disk's queue plus jobs a worker
// is serving right now. The network query service's admission control
// sheds load when any disk's depth crosses its watermark — queue depth
// is the earliest saturation signal the array gives (the paper's
// queueing collapse shows up here before it shows up in latency).
func (e *Engine) QueueDepths() []int64 {
	out := make([]int64, len(e.gauges))
	for d := range e.gauges {
		g := &e.gauges[d]
		out[d] = g.Queued.Load() + g.InFlight.Load()
	}
	return out
}

// ReplicaHealth reports, per logical disk and mirror, whether the
// replica is currently degraded (true = skipped by reads).
func (e *Engine) ReplicaHealth() [][]bool {
	out := make([][]bool, len(e.replicas))
	for d, reps := range e.replicas {
		out[d] = make([]bool, len(reps))
		for m, r := range reps {
			out[d][m] = r.degraded.Load()
		}
	}
	return out
}

// CacheStats returns the shared page cache counters (zero when the
// cache is disabled).
func (e *Engine) CacheStats() bufferpool.Stats {
	if e.cache == nil {
		return bufferpool.Stats{}
	}
	return e.cache.Stats()
}

// worker serves one disk's fetch queue until Close drains it. A job
// whose context is already cancelled is abandoned without decoding its
// page: the context error is delivered and the job counts under the
// cancellation telemetry, not under PagesFetched. A job that fails
// after the read path exhausted every replica counts under the I/O
// error telemetry — the two classes never mix.
func (e *Engine) worker(d int) {
	defer e.workers.Done()
	g := &e.gauges[d]
	for job := range e.queues[d] {
		g.Queued.Add(-1)
		res := fetchResult{idx: job.idx, done: true}
		if err := job.ctx.Err(); err != nil {
			res.err = err
			g.Cancelled.Add(1)
			e.fetchesCancelled.Add(1)
		} else {
			g.InFlight.Add(1)
			res.node, res.hit, res.err = e.readPage(job.ctx, d, job.page)
			g.InFlight.Add(-1)
			switch {
			case res.err == nil:
				e.pagesFetched.Add(1)
				g.Served.Add(1)
				res.wall = time.Since(job.submitted)
				e.fetchLat.Observe(res.wall.Seconds())
			case isCancellation(res.err):
				g.Cancelled.Add(1)
				e.fetchesCancelled.Add(1)
			default:
				g.Failed.Add(1)
				e.fetchErrors.Add(1)
			}
		}
		job.out <- res // buffered to batch size; never blocks
		<-e.sem        // release the in-flight slot
	}
}

// isCancellation classifies context noise apart from real I/O errors.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// readPage resolves one page through the shared cache (singleflight
// deduplicated) or straight from the disk's replica set. hit reports
// whether the page was served without a decode in this call.
func (e *Engine) readPage(ctx context.Context, d int, id rtree.PageID) (*rtree.Node, bool, error) {
	if e.cache == nil {
		n, err := e.readReplicated(ctx, d, id)
		return n, false, err
	}
	return e.cache.GetOrFetchHit(id, func() (*rtree.Node, error) {
		return e.readReplicated(ctx, d, id)
	})
}

// readReplicated is the degraded-mode read path: it resolves one page
// from a logical disk's replica set, preferring a page-deterministic
// primary, retrying transient failures per replica, redirecting to the
// next live mirror when a replica fails or is degraded, and optionally
// hedging the primary read. When no replica can serve the page it
// returns *fault.ErrDataUnavailable — never a wrong or partial node.
func (e *Engine) readReplicated(ctx context.Context, d int, id rtree.PageID) (*rtree.Node, error) {
	reps := e.replicas[d]
	// The primary is a pure function of the page so mirrored load
	// spreads without per-query state and results stay deterministic.
	start := int(uint32(id)) % len(reps)
	order := make([]*replica, 0, len(reps))
	for i := 0; i < len(reps); i++ {
		if r := reps[(start+i)%len(reps)]; !r.degraded.Load() {
			order = append(order, r)
		}
	}
	if len(order) == 0 {
		return nil, &fault.ErrDataUnavailable{Disk: d, Page: id}
	}
	if order[0] != reps[start] {
		// The primary itself is degraded: this fetch is redirected
		// before it even starts.
		e.faults.Redirects.Add(1)
	}
	if e.cfg.HedgeReads && len(order) > 1 {
		return e.readHedged(ctx, d, order, id)
	}
	var lastErr error
	for i, rep := range order {
		if i > 0 {
			e.faults.Redirects.Add(1)
		}
		n, err := e.readReplica(ctx, rep, id)
		if err == nil {
			return n, nil
		}
		if isCancellation(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, &fault.ErrDataUnavailable{Disk: d, Page: id, Last: lastErr}
}

// repRead is one replica read's outcome, tagged with its source for
// hedge-win attribution.
type repRead struct {
	node *rtree.Node
	err  error
	rep  *replica
}

// hedgeTimersLive audits the hedge timer lifecycle: +1 when readHedged
// starts its delay timer, -1 when the timer is resolved (stopped or
// fired). Every return path must resolve its timer — the race is
// decided in one select, so resolution happens exactly there, before
// the (potentially long: retries, backoff, mirror walk) fallback
// paths run. A sustained-load regression test asserts this stays 0 at
// rest; a leaked timer would pin its heap entry for the full hedge
// delay per read and accumulate under load.
var hedgeTimersLive atomic.Int64

// readHedged races the primary replica against a mirror: the mirror
// read fires only if the primary has not answered within the hedge
// delay, and the first successful answer wins. Failures fall back to
// the remaining live mirrors sequentially. The hedge timer is resolved
// (stopped or fired) in the race select itself — never carried into
// the fallback walk, whose retry backoffs can outlive the delay.
func (e *Engine) readHedged(ctx context.Context, d int, order []*replica, id rtree.PageID) (*rtree.Node, error) {
	primary, backup := order[0], order[1]
	out := make(chan repRead, 2) // buffered: a loser never blocks or leaks
	go func() {
		n, err := e.readReplica(ctx, primary, id)
		out <- repRead{node: n, err: err, rep: primary}
	}()
	timer := time.NewTimer(e.hedgeDelay())
	hedgeTimersLive.Add(1)
	inFlight := 1
	var first repRead
	select {
	case first = <-out:
		timer.Stop()
		hedgeTimersLive.Add(-1)
		inFlight--
	case <-timer.C:
		hedgeTimersLive.Add(-1) // fired: nothing left to stop
		e.faults.Hedges.Add(1)
		inFlight++
		go func() {
			n, err := e.readReplica(ctx, backup, id)
			out <- repRead{node: n, err: err, rep: backup}
		}()
		first = <-out
		inFlight--
	case <-ctx.Done():
		timer.Stop()
		hedgeTimersLive.Add(-1)
		return nil, ctx.Err()
	}
	if first.err == nil {
		if first.rep == backup {
			e.faults.HedgeWins.Add(1)
		}
		return first.node, nil
	}
	if isCancellation(first.err) {
		return nil, first.err
	}
	lastErr := first.err
	tried := map[*replica]bool{first.rep: true}
	// Wait out the other racer, if any, before walking the rest.
	for ; inFlight > 0; inFlight-- {
		second := <-out
		tried[second.rep] = true
		if second.err == nil {
			if second.rep == backup {
				e.faults.HedgeWins.Add(1)
			}
			return second.node, nil
		}
		if isCancellation(second.err) {
			return nil, second.err
		}
		lastErr = second.err
	}
	for _, rep := range order {
		if tried[rep] {
			continue
		}
		e.faults.Redirects.Add(1)
		n, err := e.readReplica(ctx, rep, id)
		if err == nil {
			return n, nil
		}
		if isCancellation(err) {
			return nil, err
		}
		lastErr = err
	}
	return nil, &fault.ErrDataUnavailable{Disk: d, Page: id, Last: lastErr}
}

// hedgeMinSamples is how many replica-read observations the latency
// histogram needs before its p99 is trusted over the configured floor;
// hedgeRefreshEvery is how many further observations a cached p99
// stays valid for before it is recomputed.
const (
	hedgeMinSamples   = 64
	hedgeRefreshEvery = 256
)

// hedgeDelay derives the hedge trigger from the replica-read latency
// p99, floored by Config.HedgeDelayFloor while the histogram is too
// thin to trust. The p99 is cached and refreshed every
// hedgeRefreshEvery observations: snapshotting the full histogram
// (25-bucket copy plus quantile walk) on every hedged read made the
// hot read path pay for its own telemetry. A lost CAS race simply
// serves the previous cached value — the delay is a heuristic trigger
// and never affects results.
func (e *Engine) hedgeDelay() time.Duration {
	delay := e.cfg.HedgeDelayFloor
	c := e.readLat.Count()
	if c < hedgeMinSamples {
		return delay
	}
	if at := e.hedgeRefreshAt.Load(); c >= at && e.hedgeRefreshAt.CompareAndSwap(at, c+hedgeRefreshEvery) {
		s := e.readLat.Snapshot()
		e.hedgeP99Nanos.Store(int64(s.P99() * float64(time.Second)))
	}
	if p := time.Duration(e.hedgeP99Nanos.Load()); p > delay {
		delay = p
	}
	return delay
}

// readReplica performs one replica's read with bounded retries and
// capped exponential backoff. A success resets the replica's
// consecutive-failure count; crossing Config.DegradeAfter (or a
// fail-stop error) marks the replica degraded and returns immediately
// so the caller redirects to a mirror. A decoded node whose id differs
// from the requested page — a misdirected read the reader underneath
// failed to catch — is converted to a typed integrity failure here and
// treated exactly like any other failed I/O, so a lying replica can
// never leak a wrong node into a query.
func (e *Engine) readReplica(ctx context.Context, rep *replica, id rtree.PageID) (*rtree.Node, error) {
	backoff := e.cfg.RetryBackoff
	for attempt := 0; ; attempt++ {
		begin := time.Now()
		n, err := rep.reader.ReadPage(id)
		if err == nil && n.ID != id {
			err = &pagestore.IntegrityError{Want: id, Got: n.ID}
		}
		if err == nil {
			rep.consecFails.Store(0)
			e.decodes.Add(1)
			e.readLat.Observe(time.Since(begin).Seconds())
			return n, nil
		}
		var ie *pagestore.IntegrityError
		if errors.As(err, &ie) {
			e.faults.IntegrityFailures.Add(1)
		}
		dead := errors.Is(err, fault.ErrDiskDead)
		if fails := rep.consecFails.Add(1); dead || fails >= int64(e.cfg.DegradeAfter) {
			e.degrade(rep)
			return nil, err
		}
		if attempt >= e.cfg.RetryLimit {
			return nil, err
		}
		e.faults.Retries.Add(1)
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > e.cfg.RetryMaxBackoff {
			backoff = e.cfg.RetryMaxBackoff
		}
	}
}

// degrade marks a replica dead-to-reads exactly once.
func (e *Engine) degrade(rep *replica) {
	if rep.degraded.CompareAndSwap(false, true) {
		e.faults.DisksDegraded.Add(1)
	}
}

// batchError picks the stage's error with I/O errors first: a real
// read failure (no live replica, data unavailable) must surface even
// when the failure also cancelled the query context and flooded the
// remaining fetches with cancellation noise. submitErr (from the
// fan-out loop) outranks collected cancellations for the same reason —
// it may be ErrClosed, which callers must see over a context error.
func batchError(ioErr, submitErr, cancelErr error) error {
	if ioErr != nil {
		return ioErr
	}
	if submitErr != nil {
		return submitErr
	}
	return cancelErr
}

// submitOne submits one page request of a batch: it acquires an
// in-flight slot and enqueues a job on the page's disk, delivering the
// result to out at idx. With request-level coalescing enabled it first
// tries to join an in-flight fetch of the same page — a join consumes
// no semaphore slot and no queue slot, and the shared result arrives
// on out like any other. When this call starts a new flight, later
// requests may join it until the worker's result is fanned out; if the
// job cannot be enqueued (cancelled context or closed engine), every
// waiter that joined meanwhile is aborted with the submission error so
// none is left hanging. A nil return means exactly one fetchResult for
// idx will eventually arrive on out.
func (e *Engine) submitOne(ctx context.Context, r query.PageRequest, idx int, out chan fetchResult, semWait *time.Duration) error {
	var sh *coShard
	leads := false
	if e.co != nil {
		var joined bool
		sh, joined = e.co.join(r.Page, out, idx)
		if joined {
			e.fetchesCoalesced.Add(1)
			return nil
		}
		leads = true
	}
	acquire := time.Now()
	select {
	case e.sem <- struct{}{}:
		*semWait += time.Since(acquire)
	case <-ctx.Done():
		if leads {
			e.abortFlight(sh, r.Page, ctx.Err())
		}
		return ctx.Err()
	case <-e.closed:
		if leads {
			e.abortFlight(sh, r.Page, ErrClosed)
		}
		return ErrClosed
	}
	jobOut := out
	if leads {
		// The worker delivers once to the flight's private channel; the
		// fan-out goroutine forwards it to the leader and every joiner.
		jobOut = make(chan fetchResult, 1)
	}
	job := &fetchJob{page: r.Page, idx: idx, ctx: ctx, out: jobOut, submitted: time.Now()}
	e.gauges[r.Disk].Queued.Add(1)
	select {
	case e.queues[r.Disk] <- job:
	case <-ctx.Done():
		e.gauges[r.Disk].Queued.Add(-1)
		<-e.sem
		if leads {
			e.abortFlight(sh, r.Page, ctx.Err())
		}
		return ctx.Err()
	case <-e.closed:
		e.gauges[r.Disk].Queued.Add(-1)
		<-e.sem
		if leads {
			e.abortFlight(sh, r.Page, ErrClosed)
		}
		return ErrClosed
	}
	if leads {
		go e.fanOut(sh, r.Page, jobOut, flightWaiter{out: out, idx: idx})
	}
	return nil
}

// fetchBatch resolves one stage's requests through the disk workers:
// jobs fan out to the per-disk queues (respecting the in-flight bound)
// and completions are collected asynchronously, then reordered to
// request order — executions depend on request-order delivery for
// deterministic tie-breaking, which is what makes engine results
// identical to the sequential Driver's. With an observer attached the
// stage emits SemWait, per-fetch FetchDone (request order, wall-clock
// latency and cache attribution, completed fetches only) and StageDone
// events on every exit path, success or failure, so traces stay
// well-formed under cancellation and injected faults.
func (e *Engine) fetchBatch(ctx context.Context, stage int, reqs []query.PageRequest, obsv obs.QueryObserver) ([]*rtree.Node, error) {
	start := time.Now()
	out := make(chan fetchResult, len(reqs))
	submitted := 0
	var semWait time.Duration
	var submitErr error
	for i, r := range reqs {
		if err := e.submitOne(ctx, r, i, out, &semWait); err != nil {
			submitErr = err
			break
		}
		submitted++
	}
	e.semWait.Observe(semWait.Seconds())
	// Drain every submitted job even after an error: workers own sem
	// slots until delivery, and the first I/O error must not be masked
	// by cancellation noise from sibling fetches.
	var ioErr, cancelErr error
	var retryWait time.Duration // refetch sem waits, past the SemWait observation
	results := make([]fetchResult, len(reqs))
	for remaining := submitted; remaining > 0; {
		res := <-out
		if res.coalesced && res.err != nil && isCancellation(res.err) && ctx.Err() == nil {
			// The flight this slot joined was cancelled by its leader's
			// query, not ours. This query is still live, so refetch the
			// page directly — another query's cancellation must never
			// fail an innocent bystander.
			if err := e.submitOne(ctx, reqs[res.idx], res.idx, out, &retryWait); err == nil {
				continue // the refetched result will arrive on out
			} else {
				res.err = err // engine closed (or we just got cancelled)
			}
		}
		remaining--
		results[res.idx] = res
		switch {
		case res.err == nil:
		case isCancellation(res.err):
			if cancelErr == nil {
				cancelErr = res.err
			}
		default:
			if ioErr == nil {
				ioErr = res.err
			}
		}
	}
	err := batchError(ioErr, submitErr, cancelErr)
	wall := time.Since(start)
	if err == nil {
		e.stageLat.Observe(wall.Seconds())
	}
	if obsv != nil {
		obsv.Observe(obs.Event{Type: obs.SemWait, Stage: stage, Batch: len(reqs), Wall: semWait})
		for i, r := range reqs {
			if !results[i].done || results[i].err != nil {
				continue
			}
			obsv.Observe(obs.Event{
				Type: obs.FetchDone, Stage: stage,
				Page: int64(r.Page), Disk: r.Disk, Pages: r.Pages, Cached: r.Cached,
				CacheHit: results[i].hit, Wall: results[i].wall,
			})
		}
		obsv.Observe(obs.Event{Type: obs.StageDone, Stage: stage, Batch: len(reqs), Wall: wall})
	}
	if err != nil {
		return nil, err
	}
	nodes := make([]*rtree.Node, len(reqs))
	for i := range results {
		nodes[i] = results[i].node
	}
	return nodes, nil
}

// KNN answers one k-nearest-neighbor query. It is safe to call from
// many goroutines concurrently; the query's page fetches execute on the
// per-disk workers. The context cancels the query between (and during)
// fetch stages. opts.SharedCache may be shared across concurrent
// queries (bufferpool.Pool is internally locked); residency accounting
// is admit-on-delivery, so a cancelled query never plants a page it did
// not fetch. For a decoded-page cache prefer the engine's own
// Config.CachePages, which also deduplicates concurrent fetches.
func (e *Engine) KNN(ctx context.Context, alg query.Algorithm, q geom.Point, k int, opts query.Options) ([]query.Neighbor, *query.Stats, error) {
	if err := query.ValidateKNN(e.tree, q, k); err != nil {
		return nil, nil, err
	}
	if err := e.begin(); err != nil {
		return nil, nil, err
	}
	defer e.active.Done()

	start := time.Now()
	stage := 0
	ex := alg.NewExecution(e.tree, q, k, opts)
	err := query.RunWith(ex, alg.Name(), func(reqs []query.PageRequest) ([]*rtree.Node, error) {
		nodes, err := e.fetchBatch(ctx, stage, reqs, opts.Observer)
		stage++
		return nodes, err
	})
	if err != nil {
		e.cancelled.Add(1)
		return nil, nil, err
	}
	e.queries.Add(1)
	e.queryLat.Observe(time.Since(start).Seconds())
	return ex.Results(), ex.Stats(), nil
}

// begin admits a query unless the engine is closed.
func (e *Engine) begin() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.isClosed {
		return ErrClosed
	}
	e.active.Add(1)
	return nil
}

// Close rejects new queries, aborts queries blocked on admission,
// waits for running queries to unwind, and stops the workers, then
// closes any file-backed replica stores and returns their joined close
// errors. It is idempotent and safe to call concurrently with KNN.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.isClosed {
		e.mu.Unlock()
		return nil
	}
	e.isClosed = true
	close(e.closed)
	e.mu.Unlock()

	e.active.Wait()
	for _, q := range e.queues {
		close(q)
	}
	e.workers.Wait()
	return e.closeFiles()
}
