package exec

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/query"
	"repro/internal/rtree"
)

// File-backed replicas must answer bit-identically to the in-memory
// page images, through both the pread and mmap read paths, and the
// storage telemetry must show the real file traffic.
func TestEngineFileBackedParity(t *testing.T) {
	tree, pts := buildTree(t, 3000, 4, false, 0)
	queries := dataset.SampleQueries(pts, 20, 5)
	memEng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer memEng.Close()

	for _, mmap := range []bool{false, true} {
		eng, err := New(tree, Config{DataDir: t.TempDir(), Mmap: mmap})
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			want, _, err := memEng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
			if err != nil {
				t.Fatal(err)
			}
			sameNeighbors(t, "file vs mem", want, got)
			_ = qi
		}
		s := eng.Snapshot()
		if s.Storage.PageWrites == 0 || s.Storage.DataSyncs == 0 {
			t.Errorf("mmap=%v: storage telemetry empty: %+v", mmap, s.Storage)
		}
		if !mmap && s.Storage.PageReads == 0 {
			t.Errorf("pread mode served no reads from the files: %+v", s.Storage)
		}
		eng.Close()
	}
}

// A misdirected read on a file-backed replica (the drive "succeeds" but
// serves the wrong slot) must be caught by the identity check, counted
// as an integrity failure, and healed by redirecting to the mirror —
// the query still answers correctly.
func TestEngineFileBackedMisdirectRedirect(t *testing.T) {
	tree, pts := buildTree(t, 2000, 3, false, 0)
	queries := dataset.SampleQueries(pts, 15, 9)
	drv := query.Driver{Tree: tree}

	inj := fault.NewInjector(42)
	// Misdirect the second read on every mirror-0 drive: by then the
	// drive has history, so it serves the previously requested page — a
	// well-formed image from the same file that only the node-id
	// identity check can catch. With two mirrors each page still has a
	// clean copy to redirect to.
	for d := 0; d < 3; d++ {
		inj.Set(d*2+0, fault.Faults{MisdirectOn: 2})
	}
	eng, err := New(tree, Config{DataDir: t.TempDir(), Mirrors: 2, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, 10, query.Options{})
		got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameNeighbors(t, "misdirected file replica", want, got)
	}
	s := eng.Snapshot()
	if s.Faults.IntegrityFailures == 0 {
		t.Error("misdirected reads were not counted as integrity failures")
	}
	if s.Faults.Redirects == 0 && s.Faults.Retries == 0 {
		t.Error("misdirected reads neither retried nor redirected")
	}
}

// Truncating a replica's file mid-flight produces genuine short reads
// (io.ErrUnexpectedEOF from the kernel, not an injected error). With a
// mirror the engine must redirect and answer correctly; the failure
// shows up in the fault telemetry.
func TestEngineFileBackedTruncatedReplica(t *testing.T) {
	tree, pts := buildTree(t, 2000, 3, false, 0)
	queries := dataset.SampleQueries(pts, 10, 13)
	drv := query.Driver{Tree: tree}

	dir := t.TempDir()
	eng, err := New(tree, Config{DataDir: dir, Mirrors: 2, RetryLimit: -1, DegradeAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	// Chop every mirror-0 file down to its superblock: every page read
	// against mirror 0 is now a real short read.
	for d := 0; d < 3; d++ {
		path := filepath.Join(dir, ReplicaFileName(d, 0))
		if err := os.Truncate(path, 512); err != nil {
			t.Fatal(err)
		}
	}
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, 10, query.Options{})
		got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameNeighbors(t, "truncated replica", want, got)
	}
	s := eng.Snapshot()
	if s.Faults.Redirects == 0 {
		t.Error("short reads never redirected to the mirror")
	}
	if s.Stats.FetchErrors != 0 {
		t.Errorf("redirected short reads surfaced as fetch errors: %+v", s.Stats)
	}
}

// Without a mirror, a truncated file is unrecoverable: the query must
// fail with the typed degraded-mode error, never a partial answer.
func TestEngineFileBackedTruncatedNoMirror(t *testing.T) {
	tree, pts := buildTree(t, 2000, 3, false, 0)
	queries := dataset.SampleQueries(pts, 10, 13)

	dir := t.TempDir()
	eng, err := New(tree, Config{DataDir: dir, RetryLimit: -1, DegradeAfter: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for d := 0; d < 3; d++ {
		if err := os.Truncate(filepath.Join(dir, ReplicaFileName(d, 0)), 512); err != nil {
			t.Fatal(err)
		}
	}
	sawUnavailable := false
	for _, q := range queries {
		_, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
		if err == nil {
			t.Fatal("query over a truncated, unmirrored store succeeded")
		}
		var unavail *fault.ErrDataUnavailable
		if errors.As(err, &unavail) {
			sawUnavailable = true
		}
	}
	if !sawUnavailable {
		t.Error("no query failed with the typed ErrDataUnavailable")
	}
}

// File-backed supernodes (X-tree overlap variant) are served from the
// memory-resident fallback; parity must hold there too.
func TestEngineFileBackedSupernodes(t *testing.T) {
	tree, pts := buildTree(t, 2500, 3, true, 0.35)
	queries := dataset.SampleQueries(pts, 10, 17)
	drv := query.Driver{Tree: tree}
	eng, err := New(tree, Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	super := 0
	tree.Walk(func(n *rtree.Node, _ int) bool {
		if len(n.Entries) > tree.Config().MaxEntries {
			super++
		}
		return true
	})
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, 10, query.Options{})
		got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameNeighbors(t, "file-backed supernodes", want, got)
	}
}

// Engine.Close must surface replica-store close errors instead of
// dropping them (the errlost fix): a store whose file was already
// closed under the engine yields a non-nil Close, a healthy engine a
// nil one, and a second Close is a nil no-op either way.
func TestEngineCloseReportsFileErrors(t *testing.T) {
	tree, _ := buildTree(t, 500, 2, false, 0)

	eng, err := New(tree, Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("healthy Close: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	eng, err = New(tree, Config{DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(eng.files) == 0 {
		t.Fatal("DataDir engine has no file stores")
	}
	if err := eng.files[0].Close(); err != nil {
		t.Fatalf("direct store close: %v", err)
	}
	if err := eng.Close(); err == nil {
		// Before the fix, closeFiles discarded this double-close error.
		t.Error("Close swallowed the replica store's close error")
	}
}
