package exec

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/bufferpool"
	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/simarray"
)

// TestTraceSchemaAcrossDrivers is the cross-driver observability gate:
// one query emits the identical core event sequence (QueryStart, per
// stage StageIssue/FetchIssue×B/FetchDone×B/StageDone, QueryEnd) under
// the immediate Driver, the system simulator and the concurrent
// engine — only the timing fields may differ.
func TestTraceSchemaAcrossDrivers(t *testing.T) {
	tree, pts := buildTree(t, 2500, 4, false, 0)
	queries := dataset.SampleQueries(pts, 5, 17)
	drv := query.Driver{Tree: tree}
	eng, err := New(tree, Config{WorkersPerDisk: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	for _, alg := range []query.Algorithm{query.CRSS{}, query.BBSS{}, query.FPSS{}} {
		for qi, q := range queries {
			var drvCol, simCol, engCol obs.Collector
			drv.Run(alg, q, 8, query.Options{Observer: &drvCol})

			sys, err := simarray.NewSystem(tree, simarray.Config{Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(simarray.Workload{
				Algorithm: alg, K: 8, Queries: []geom.Point{q},
				Options: query.Options{Observer: &simCol},
			}); err != nil {
				t.Fatal(err)
			}

			if _, _, err := eng.KNN(context.Background(), alg, q, 8, query.Options{Observer: &engCol}); err != nil {
				t.Fatal(err)
			}

			label := fmt.Sprintf("%s q%d", alg.Name(), qi)
			want := drvCol.CoreSchema()
			if len(want) == 0 {
				t.Fatalf("%s: driver emitted no events", label)
			}
			checkTrace(t, label, want)
			for name, got := range map[string][]obs.Event{
				"simulator": simCol.CoreSchema(),
				"engine":    engCol.CoreSchema(),
			} {
				if len(got) != len(want) {
					t.Fatalf("%s: %s emitted %d core events, driver %d",
						label, name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: %s event %d = %+v, driver %+v",
							label, name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// checkTrace asserts the core-schema well-formedness invariants of one
// query's event sequence.
func checkTrace(t *testing.T, label string, evs []obs.Event) {
	t.Helper()
	if evs[0].Type != obs.QueryStart || evs[len(evs)-1].Type != obs.QueryEnd {
		t.Fatalf("%s: trace not bracketed by QueryStart/QueryEnd", label)
	}
	stage := 0
	for i := 1; i < len(evs)-1; {
		issue := evs[i]
		if issue.Type != obs.StageIssue || issue.Stage != stage {
			t.Fatalf("%s: event %d = %+v, want StageIssue stage %d", label, i, issue, stage)
		}
		i++
		for _, typ := range []obs.EventType{obs.FetchIssue, obs.FetchDone} {
			for b := 0; b < issue.Batch; b, i = b+1, i+1 {
				if evs[i].Type != typ || evs[i].Stage != stage {
					t.Fatalf("%s: event %d = %+v, want %v stage %d", label, i, evs[i], typ, stage)
				}
			}
		}
		if evs[i].Type != obs.StageDone || evs[i].Batch != issue.Batch {
			t.Fatalf("%s: event %d = %+v, want StageDone batch %d", label, i, evs[i], issue.Batch)
		}
		i++
		stage++
	}
	if stage == 0 {
		t.Fatalf("%s: trace has no stages", label)
	}
}

// TestObservedConcurrentSharedCache runs concurrent clients against a
// shared engine with a shared query-level buffer pool, checking the
// observability accounting closes: the query-latency histogram counts
// exactly Stats.Queries and the per-disk Served gauges sum to
// PagesFetched. Under -race this is also the obs-layer race gate.
func TestObservedConcurrentSharedCache(t *testing.T) {
	tree, pts := buildTree(t, 3000, 5, false, 0)
	queries := dataset.SampleQueries(pts, 32, 21)
	eng, err := New(tree, Config{WorkersPerDisk: 2, MaxInFlight: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	pool := bufferpool.New[rtree.PageID, struct{}](512)
	var col obs.Collector
	clients, perClient := 6, 20
	if testing.Short() {
		clients, perClient = 4, 8
	}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				q := queries[(c*perClient+i)%len(queries)]
				opts := query.Options{SharedCache: pool, Observer: &col}
				if _, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, opts); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := eng.Stats()
	if want := uint64(clients * perClient); st.Queries != want {
		t.Fatalf("Queries = %d, want %d", st.Queries, want)
	}
	if got := eng.queryLat.Count(); got != st.Queries {
		t.Errorf("query histogram count = %d, Stats.Queries = %d", got, st.Queries)
	}
	var served uint64
	for d := range eng.gauges {
		served += eng.gauges[d].Served.Load()
	}
	if served != st.PagesFetched {
		t.Errorf("sum of per-disk Served = %d, PagesFetched = %d", served, st.PagesFetched)
	}
	if eng.fetchLat.Count() != st.PagesFetched {
		t.Errorf("fetch histogram count = %d, PagesFetched = %d", eng.fetchLat.Count(), st.PagesFetched)
	}

	// The trace stream stays consistent under interleaving: every query
	// opened, closed, and resolved every fetch it issued.
	var starts, ends, issued, done uint64
	for _, e := range col.Events() {
		switch e.Type {
		case obs.QueryStart:
			starts++
		case obs.QueryEnd:
			ends++
		case obs.FetchIssue:
			issued++
		case obs.FetchDone:
			done++
		}
	}
	if starts != st.Queries || ends != st.Queries {
		t.Errorf("trace has %d starts / %d ends, want %d", starts, ends, st.Queries)
	}
	if issued != done {
		t.Errorf("trace has %d FetchIssue vs %d FetchDone", issued, done)
	}
}

// TestWorkerAbandonsCancelledJob injects a fetch job whose context is
// already cancelled straight into a disk queue: the worker must deliver
// the context error without decoding the page, counting the job under
// the cancellation telemetry only.
func TestWorkerAbandonsCancelledJob(t *testing.T) {
	tree, _ := buildTree(t, 500, 2, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	before := eng.Stats()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := make(chan fetchResult, 1)
	eng.sem <- struct{}{}
	eng.gauges[0].Queued.Add(1)
	// The page id never matters: the worker must notice the dead
	// context before touching the disk store.
	eng.queues[0] <- &fetchJob{page: rtree.PageID(1), idx: 0, ctx: ctx, out: out, submitted: time.Now()}
	res := <-out

	if res.err != context.Canceled {
		t.Fatalf("result err = %v, want context.Canceled", res.err)
	}
	if res.node != nil {
		t.Fatal("worker decoded a node for a cancelled job")
	}
	after := eng.Stats()
	if after.Decodes != before.Decodes {
		t.Errorf("Decodes moved %d -> %d for a cancelled job", before.Decodes, after.Decodes)
	}
	if after.PagesFetched != before.PagesFetched {
		t.Errorf("PagesFetched moved %d -> %d for a cancelled job", before.PagesFetched, after.PagesFetched)
	}
	if after.FetchesCancelled != before.FetchesCancelled+1 {
		t.Errorf("FetchesCancelled = %d, want %d", after.FetchesCancelled, before.FetchesCancelled+1)
	}
	if got := eng.gauges[0].Cancelled.Load(); got != 1 {
		t.Errorf("disk 0 Cancelled gauge = %d, want 1", got)
	}
	if got := eng.gauges[0].Served.Load(); got != 0 {
		t.Errorf("disk 0 Served gauge = %d, want 0", got)
	}
}

// TestCancelledQueryNeverDecodes: a query whose context is cancelled
// before it starts must not decode a single page, whichever point of
// the submit path the cancellation is noticed at.
func TestCancelledQueryNeverDecodes(t *testing.T) {
	tree, pts := buildTree(t, 1500, 3, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i := 0; i < 20; i++ {
		if _, _, err := eng.KNN(ctx, query.CRSS{}, pts[i], 10, query.Options{}); err != context.Canceled {
			t.Fatalf("run %d: err = %v, want context.Canceled", i, err)
		}
	}
	st := eng.Stats()
	if st.Decodes != 0 {
		t.Errorf("cancelled queries decoded %d pages", st.Decodes)
	}
	if st.PagesFetched != 0 {
		t.Errorf("cancelled queries fetched %d pages", st.PagesFetched)
	}
	if st.Cancelled != 20 {
		t.Errorf("Cancelled = %d, want 20", st.Cancelled)
	}
}

// TestSnapshotSub drives two query waves and checks the interval diff:
// counters and histogram counts reflect exactly the second wave, and
// the per-disk serve counts rebalance into the interval's ratio.
func TestSnapshotSub(t *testing.T) {
	tree, pts := buildTree(t, 2000, 4, false, 0)
	queries := dataset.SampleQueries(pts, 12, 31)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	run := func(qs []geom.Point) {
		for _, q := range qs {
			if _, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{}); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(queries[:4])
	s1 := eng.Snapshot()
	run(queries[4:])
	s2 := eng.Snapshot()
	d := s2.Sub(s1)

	if d.Stats.Queries != 8 {
		t.Fatalf("interval Queries = %d, want 8", d.Stats.Queries)
	}
	if d.QueryLatency.Count != 8 {
		t.Errorf("interval query histogram count = %d, want 8", d.QueryLatency.Count)
	}
	var served uint64
	for _, disk := range d.Disks {
		served += disk.Served
	}
	if served != d.Stats.PagesFetched {
		t.Errorf("interval Served sum = %d, PagesFetched = %d", served, d.Stats.PagesFetched)
	}
	if d.BalanceRatio < 1 {
		t.Errorf("interval balance ratio = %g, want >= 1", d.BalanceRatio)
	}
	if s2.Stats.Queries != 12 || s1.Stats.Queries != 4 {
		t.Errorf("cumulative snapshots: %d after wave 1, %d after wave 2",
			s1.Stats.Queries, s2.Stats.Queries)
	}
	if p := d.QueryLatency.P95(); p <= 0 {
		t.Errorf("interval query p95 = %g, want > 0", p)
	}
}

// TestPublishExpvar checks the /debug/vars contract: the published
// variable renders as JSON carrying the live snapshot plus pre-derived
// headline percentiles.
func TestPublishExpvar(t *testing.T) {
	tree, pts := buildTree(t, 1000, 3, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for _, q := range dataset.SampleQueries(pts, 5, 41) {
		if _, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	// expvar.Publish panics on duplicate names; a test-scoped unique
	// name keeps reruns within one process safe.
	const name = "engine-test-publish-expvar"
	eng.PublishExpvar(name)
	v := expvar.Get(name)
	if v == nil {
		t.Fatal("variable not published")
	}
	var view struct {
		Stats        Stats
		BalanceRatio float64
		QueryP50     float64
		QueryP99     float64
		Disks        []obs.DiskSnapshot
	}
	if err := json.Unmarshal([]byte(v.String()), &view); err != nil {
		t.Fatalf("published value is not JSON: %v", err)
	}
	if !reflect.DeepEqual(view.Stats, eng.Stats()) {
		t.Errorf("published stats %+v, live %+v", view.Stats, eng.Stats())
	}
	if view.Stats.Queries != 5 {
		t.Errorf("published Queries = %d, want 5", view.Stats.Queries)
	}
	if view.QueryP50 <= 0 || view.QueryP99 < view.QueryP50 {
		t.Errorf("published percentiles p50=%g p99=%g", view.QueryP50, view.QueryP99)
	}
	if len(view.Disks) != 3 {
		t.Errorf("published %d disk snapshots, want 3", len(view.Disks))
	}
}
