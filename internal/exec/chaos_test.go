package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/query"
)

// chaosTimeout bounds every chaos query: a hang under injected faults
// is as much a bug as a wrong answer, and the deadline converts it into
// a typed failure the test can report.
const chaosTimeout = 30 * time.Second

// diskSetOf runs a query under the sequential Driver with an observer
// and reports which disks it physically reads — the ground truth for
// which queries a dead disk must fail.
func diskSetOf(drv query.Driver, q []float64, k int) map[int]bool {
	rec := &diskRecorder{disks: map[int]bool{}}
	drv.Run(query.CRSS{}, q, k, query.Options{Observer: rec})
	return rec.disks
}

type diskRecorder struct{ disks map[int]bool }

func (r *diskRecorder) Observe(ev obs.Event) {
	if ev.Type == obs.FetchDone && !ev.Cached {
		r.disks[ev.Disk] = true
	}
}

// TestChaosMirroredFailStop is the tentpole acceptance gate: across
// many seeded fault schedules, a RAID-1 engine with one fail-stopped
// physical drive must return every kNN result bit-identical to the
// sequential Driver — at least one replica of every page survives, so
// degraded mode must never change an answer.
func TestChaosMirroredFailStop(t *testing.T) {
	seeds := 100
	if testing.Short() {
		seeds = 20
	}
	const disks, mirrors, k = 4, 2, 10
	tree, pts := buildTree(t, 2000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 10, 3)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, k, query.Options{})
	}

	for seed := 0; seed < seeds; seed++ {
		inj := fault.NewInjector(int64(seed))
		drive := seed % (disks * mirrors)
		inj.Set(drive, fault.Faults{FailAfter: 1 + seed%5})

		eng, err := New(tree, Config{Mirrors: mirrors, Fault: inj})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), chaosTimeout)
		for qi, q := range queries {
			got, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{})
			if err != nil {
				t.Fatalf("seed %d (drive %d dead): query %d failed with a live mirror: %v",
					seed, drive, qi, err)
			}
			sameNeighbors(t, fmt.Sprintf("seed %d q%d", seed, qi), want[qi], got)
		}
		cancel()
		eng.Close()
	}
}

// TestChaosRAID0DeadDisk: without mirrors a dead disk is data loss.
// Every query that reads the dead disk must fail with the typed
// *fault.ErrDataUnavailable — never a wrong or partial answer — while
// queries that avoid it still answer bit-identically. The degraded
// replica must show up in Engine.Snapshot.
func TestChaosRAID0DeadDisk(t *testing.T) {
	const disks, k = 8, 3
	tree, pts := buildTree(t, 3000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 30, 7)
	drv := query.Driver{Tree: tree}

	// Kill a disk the root does not live on, so the workload splits
	// into queries that must fail and queries that must not.
	rootPl, ok := tree.Placement(tree.Tree.Root())
	if !ok {
		t.Fatal("root has no placement")
	}
	dead := (rootPl.Disk + 1) % disks

	inj := fault.NewInjector(1)
	inj.Set(dead, fault.Faults{Dead: true})
	eng, err := New(tree, Config{Mirrors: 1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), chaosTimeout)
	defer cancel()
	failed, succeeded := 0, 0
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, k, query.Options{})
		touchesDead := diskSetOf(drv, q, k)[dead]
		got, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{})
		if touchesDead {
			var dataErr *fault.ErrDataUnavailable
			if !errors.As(err, &dataErr) {
				t.Fatalf("query %d reads dead disk %d: err = %v, want *fault.ErrDataUnavailable", qi, dead, err)
			}
			if dataErr.Disk != dead {
				t.Fatalf("query %d: error names disk %d, dead disk is %d", qi, dataErr.Disk, dead)
			}
			if got != nil {
				t.Fatalf("query %d returned %d results alongside a data-loss error", qi, len(got))
			}
			failed++
			continue
		}
		if err != nil {
			t.Fatalf("query %d avoids dead disk %d but failed: %v", qi, dead, err)
		}
		sameNeighbors(t, fmt.Sprintf("q%d", qi), want, got)
		succeeded++
	}
	if failed == 0 || succeeded == 0 {
		t.Fatalf("workload did not split: %d failed, %d succeeded — dead-disk coverage is vacuous", failed, succeeded)
	}

	snap := eng.Snapshot()
	if snap.Faults.DisksDegraded != 1 {
		t.Fatalf("DisksDegraded = %d, want 1", snap.Faults.DisksDegraded)
	}
	if !snap.Degraded[dead][0] {
		t.Fatalf("Snapshot.Degraded does not mark disk %d", dead)
	}
	if snap.Stats.FetchErrors == 0 {
		t.Fatal("no FetchErrors counted for dead-disk reads")
	}
}

// TestChaosTransientRetries: transient errors on every drive must be
// absorbed by retries (counted in the fault telemetry); any read that
// still fails must surface as a typed error, never as a wrong answer.
func TestChaosTransientRetries(t *testing.T) {
	const disks, mirrors, k = 4, 2, 10
	tree, pts := buildTree(t, 2000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 20, 5)
	drv := query.Driver{Tree: tree}

	inj := fault.NewInjector(17)
	for d := 0; d < disks*mirrors; d++ {
		inj.Set(d, fault.Faults{Transient: 0.2})
	}
	eng, err := New(tree, Config{
		Mirrors: mirrors, Fault: inj,
		RetryBackoff: 10 * time.Microsecond, RetryMaxBackoff: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), chaosTimeout)
	defer cancel()
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, k, query.Options{})
		got, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{})
		if err != nil {
			// Legal only as the typed degraded-mode error (all replicas
			// exhausted their retry budgets) — never a silent wrong answer.
			var dataErr *fault.ErrDataUnavailable
			if !errors.As(err, &dataErr) {
				t.Fatalf("query %d: err = %v, want nil or *fault.ErrDataUnavailable", qi, err)
			}
			continue
		}
		sameNeighbors(t, fmt.Sprintf("q%d", qi), want, got)
	}
	if snap := eng.Snapshot(); snap.Faults.Retries == 0 {
		t.Fatal("transient faults on every drive produced no retries")
	}
}

// TestChaosHedgedReads: with every mirror-0 drive spiking, hedged
// reads must fire after the delay and the fast mirror must win some of
// them — with answers still bit-identical to the Driver.
func TestChaosHedgedReads(t *testing.T) {
	const disks, mirrors, k = 4, 2, 10
	tree, pts := buildTree(t, 2000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 15, 11)
	drv := query.Driver{Tree: tree}

	inj := fault.NewInjector(23)
	for d := 0; d < disks; d++ {
		inj.Set(d*mirrors, fault.Faults{SpikeProb: 1, SpikeDelay: 5 * time.Millisecond})
	}
	eng, err := New(tree, Config{
		Mirrors: mirrors, Fault: inj,
		HedgeReads: true, HedgeDelayFloor: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), chaosTimeout)
	defer cancel()
	for qi, q := range queries {
		want, _ := drv.Run(query.CRSS{}, q, k, query.Options{})
		got, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameNeighbors(t, fmt.Sprintf("q%d", qi), want, got)
	}
	snap := eng.Snapshot()
	if snap.Faults.Hedges == 0 {
		t.Fatal("universally spiked primaries fired no hedged reads")
	}
	if snap.Faults.HedgeWins == 0 {
		t.Fatal("no hedged read beat a 5ms-spiked primary")
	}
	if snap.Faults.DisksDegraded != 0 {
		t.Fatalf("latency spikes degraded %d replicas; spikes are not failures", snap.Faults.DisksDegraded)
	}
}

// TestChaosRuntimeKillSwitch: a drive killed mid-workload (Injector.Fail)
// degrades on first touch and the mirror carries the rest of the run.
func TestChaosRuntimeKillSwitch(t *testing.T) {
	const disks, mirrors, k = 4, 2, 5
	tree, pts := buildTree(t, 2000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 20, 19)
	drv := query.Driver{Tree: tree}

	inj := fault.NewInjector(5)
	eng, err := New(tree, Config{Mirrors: mirrors, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithTimeout(context.Background(), chaosTimeout)
	defer cancel()
	for qi, q := range queries {
		if qi == len(queries)/2 {
			inj.Fail(0) // disk 0, mirror 0
		}
		want, _ := drv.Run(query.CRSS{}, q, k, query.Options{})
		got, _, err := eng.KNN(ctx, query.CRSS{}, q, k, query.Options{})
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		sameNeighbors(t, fmt.Sprintf("q%d", qi), want, got)
	}
	if snap := eng.Snapshot(); snap.Faults.DisksDegraded != 1 && snap.Stats.FetchErrors == 0 {
		// The killed drive degrades lazily, on its next read; with half
		// the workload remaining it must have been touched.
		t.Fatalf("killed drive never observed: degraded=%d fetchErrors=%d",
			snap.Faults.DisksDegraded, snap.Stats.FetchErrors)
	}
}
