package exec

import (
	"encoding/json"
	"expvar"

	"repro/internal/bufferpool"
	"repro/internal/obs"
)

// Snapshot is a diffable point-in-time view of the engine: cumulative
// counters, shared-cache traffic, per-disk gauges with the
// declustering balance ratio, and the wall-clock latency histograms
// with their p50/p95/p99. Take one before and one after an interval
// and Sub them to get the interval's distribution.
type Snapshot struct {
	Stats Stats
	Cache bufferpool.Stats
	Disks []obs.DiskSnapshot
	// BalanceRatio is the busiest disk's served pages over the
	// per-disk mean — 1.0 is the perfectly declustered load the
	// paper's proximity-index placement aims for (§2.2).
	BalanceRatio float64
	// Faults is the degraded-mode telemetry: retries, mirror
	// redirects, hedged reads and the degraded-replica gauge.
	Faults obs.FaultSnapshot
	// Degraded mirrors Engine.ReplicaHealth: per logical disk and
	// mirror, whether the replica is currently skipped by reads.
	Degraded [][]bool
	// Storage is the file-backed replica I/O telemetry (page reads and
	// writes, data syncs); all-zero without Config.DataDir.
	Storage      obs.StorageSnapshot
	QueryLatency obs.HistSnapshot
	FetchLatency obs.HistSnapshot
	// ReadLatency is the per-replica-read service time (successful
	// reads only); its p99 drives the hedge delay.
	ReadLatency  obs.HistSnapshot
	StageLatency obs.HistSnapshot
	SemWait      obs.HistSnapshot
}

// Snapshot captures the engine's current observability state. It is
// safe to call concurrently with queries; counters are read
// individually, so a snapshot under load is a monitoring-grade (not
// transactionally exact) view.
func (e *Engine) Snapshot() Snapshot {
	s := Snapshot{
		Stats:        e.Stats(),
		Cache:        e.CacheStats(),
		Disks:        make([]obs.DiskSnapshot, len(e.gauges)),
		Faults:       e.faults.Snapshot(),
		Degraded:     e.ReplicaHealth(),
		Storage:      e.storage.Snapshot(),
		QueryLatency: e.queryLat.Snapshot(),
		FetchLatency: e.fetchLat.Snapshot(),
		ReadLatency:  e.readLat.Snapshot(),
		StageLatency: e.stageLat.Snapshot(),
		SemWait:      e.semWait.Snapshot(),
	}
	served := make([]uint64, len(e.gauges))
	for d := range e.gauges {
		s.Disks[d] = e.gauges[d].Snapshot()
		served[d] = s.Disks[d].Served
	}
	s.BalanceRatio = obs.BalanceRatio(served)
	return s
}

// Sub diffs two snapshots of the same engine (s taken after prev):
// counters and histograms subtract, instantaneous gauges keep s's
// values, and the balance ratio is recomputed over the interval.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Stats:        s.Stats.Sub(prev.Stats),
		Cache:        subCacheStats(s.Cache, prev.Cache),
		Disks:        make([]obs.DiskSnapshot, len(s.Disks)),
		Faults:       s.Faults.Sub(prev.Faults),
		Degraded:     s.Degraded, // instantaneous: keep the later view
		Storage:      s.Storage.Sub(prev.Storage),
		QueryLatency: s.QueryLatency.Sub(prev.QueryLatency),
		FetchLatency: s.FetchLatency.Sub(prev.FetchLatency),
		ReadLatency:  s.ReadLatency.Sub(prev.ReadLatency),
		StageLatency: s.StageLatency.Sub(prev.StageLatency),
		SemWait:      s.SemWait.Sub(prev.SemWait),
	}
	served := make([]uint64, len(s.Disks))
	for d := range s.Disks {
		p := obs.DiskSnapshot{}
		if d < len(prev.Disks) {
			p = prev.Disks[d]
		}
		out.Disks[d] = s.Disks[d].Sub(p)
		served[d] = out.Disks[d].Served
	}
	out.BalanceRatio = obs.BalanceRatio(served)
	return out
}

func subCacheStats(a, b bufferpool.Stats) bufferpool.Stats {
	return bufferpool.Stats{
		Hits:      a.Hits - b.Hits,
		Misses:    a.Misses - b.Misses,
		Evictions: a.Evictions - b.Evictions,
		Inserts:   a.Inserts - b.Inserts,
	}
}

// expvarView is the JSON shape published under /debug/vars: the full
// snapshot plus the headline percentiles pre-derived, so a dashboard
// can scrape p50/p95/p99 without reimplementing the bucket math.
type expvarView struct {
	Snapshot
	QueryP50, QueryP95, QueryP99 float64
	FetchP50, FetchP95, FetchP99 float64
}

// PublishExpvar publishes the engine's live snapshot as an expvar
// under the given name (conventionally "engine"), visible on any
// /debug/vars endpoint — e.g. the server started by
// obs.StartDebugServer. Like expvar.Publish it must be called at most
// once per name per process; it panics on a duplicate name.
func (e *Engine) PublishExpvar(name string) {
	expvar.Publish(name, expvar.Func(func() any {
		s := e.Snapshot()
		v := expvarView{
			Snapshot: s,
			QueryP50: s.QueryLatency.P50(), QueryP95: s.QueryLatency.P95(), QueryP99: s.QueryLatency.P99(),
			FetchP50: s.FetchLatency.P50(), FetchP95: s.FetchLatency.P95(), FetchP99: s.FetchLatency.P99(),
		}
		// expvar renders via JSON; pre-marshal to keep the contract
		// explicit and catch unserializable fields in tests.
		buf, err := json.Marshal(v)
		if err != nil {
			return map[string]string{"error": err.Error()}
		}
		return json.RawMessage(buf)
	}))
}
