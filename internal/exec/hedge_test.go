package exec

import (
	"context"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/query"
)

// TestHedgeTimerLifecycle is the regression for the hedge timer audit:
// every timer readHedged starts must be resolved — stopped or fired —
// on every path out of the race (primary-wins, hedge-fired,
// cancellation, error fallback). A path that forgets to resolve its
// timer leaves hedgeTimersLive above zero after the workload drains;
// under sustained load each leak pins a timer-heap entry for the full
// hedge delay per read.
func TestHedgeTimerLifecycle(t *testing.T) {
	const disks, mirrors = 4, 2
	tree, pts := buildTree(t, 2000, disks, false, 0)
	queries := dataset.SampleQueries(pts, 10, 11)
	before := hedgeTimersLive.Load()

	// Primary-wins path: a huge delay floor means the timer would sit
	// in the heap for a minute per read if any path failed to stop it.
	eng, err := New(tree, Config{Mirrors: mirrors, HedgeReads: true, HedgeDelayFloor: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{}); err != nil {
			t.Fatal(err)
		}
	}
	eng.Close()
	if live := hedgeTimersLive.Load() - before; live != 0 {
		t.Fatalf("primary-wins path leaked %d hedge timers", live)
	}

	// Hedge-fired path: spiked primaries push past a tiny delay floor,
	// so the timer resolves by firing, and the error-fallback walk runs
	// after the race (transient errors on both mirrors).
	inj := fault.NewInjector(23)
	for d := 0; d < disks; d++ {
		inj.Set(d*mirrors, fault.Faults{SpikeProb: 1, SpikeDelay: 2 * time.Millisecond, Transient: 0.3})
		inj.Set(d*mirrors+1, fault.Faults{Transient: 0.3})
	}
	eng, err = New(tree, Config{
		Mirrors: mirrors, Fault: inj,
		HedgeReads: true, HedgeDelayFloor: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		// Errors are fine (transients may exhaust retries); the timer
		// accounting must balance regardless.
		_, _, _ = eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{})
	}
	if eng.Snapshot().Faults.Hedges == 0 {
		t.Fatal("spiked primaries fired no hedges; the fired-timer path went untested")
	}
	eng.Close()
	if live := hedgeTimersLive.Load() - before; live != 0 {
		t.Fatalf("hedge-fired/error paths leaked %d hedge timers", live)
	}

	// Cancellation path: queries cancelled mid-flight against slow
	// primaries exit readHedged through ctx.Done.
	inj = fault.NewInjector(29)
	for d := 0; d < disks*mirrors; d++ {
		inj.Set(d, fault.Faults{SpikeProb: 1, SpikeDelay: 5 * time.Millisecond})
	}
	eng, err = New(tree, Config{
		Mirrors: mirrors, Fault: inj,
		HedgeReads: true, HedgeDelayFloor: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
		_, _, _ = eng.KNN(ctx, query.CRSS{}, q, 5, query.Options{})
		cancel()
	}
	eng.Close()
	if live := hedgeTimersLive.Load() - before; live != 0 {
		t.Fatalf("cancellation path leaked %d hedge timers", live)
	}
}

// TestHedgeDelayCached pins the cached-p99 semantics: the derived
// delay refreshes only every hedgeRefreshEvery observations, so a
// burst of slow reads between refresh points must NOT move the delay
// (the pre-fix code snapshotted the full histogram on every call and
// would shift immediately), and must move it once the refresh
// threshold passes.
func TestHedgeDelayCached(t *testing.T) {
	tree, _ := buildTree(t, 400, 2, false, 0)
	eng, err := New(tree, Config{HedgeDelayFloor: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Below the sample floor the configured floor rules.
	if d := eng.hedgeDelay(); d != time.Microsecond {
		t.Fatalf("thin histogram: delay = %v, want the 1µs floor", d)
	}

	// Prime the histogram past hedgeMinSamples with ~1ms reads and take
	// the first cached value.
	for i := 0; i < hedgeMinSamples; i++ {
		eng.readLat.Observe(1e-3)
	}
	base := eng.hedgeDelay()
	if base < 500*time.Microsecond {
		t.Fatalf("primed delay = %v, want ≈p99 of 1ms reads", base)
	}

	// A burst of much slower reads inside the refresh window: the
	// cached delay must hold (fail-before: per-call snapshots moved
	// here immediately).
	for i := 0; i < hedgeRefreshEvery/2; i++ {
		eng.readLat.Observe(1.0)
	}
	if d := eng.hedgeDelay(); d != base {
		t.Fatalf("delay moved mid-window: %v, want cached %v", d, base)
	}

	// Past the refresh point the slow burst must surface.
	for i := 0; i < hedgeRefreshEvery; i++ {
		eng.readLat.Observe(1.0)
	}
	if d := eng.hedgeDelay(); d <= base {
		t.Fatalf("delay = %v after refresh, want above cached %v", d, base)
	}
}

// BenchmarkHedgeDelay quantifies the satellite fix: the pre-fix code
// paid a full histogram snapshot (bucket copy + quantile walk +
// allocation) on every hedged read; the cached path is a couple of
// atomic loads between refresh points.
func BenchmarkHedgeDelay(b *testing.B) {
	tree, _ := buildTree(b, 400, 2, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	for i := 0; i < 1024; i++ {
		eng.readLat.Observe(1e-3)
	}

	b.Run("snapshot-per-call", func(b *testing.B) {
		b.ReportAllocs()
		delay := eng.cfg.HedgeDelayFloor
		for i := 0; i < b.N; i++ {
			// The pre-fix hedgeDelay body, verbatim.
			d := delay
			if s := eng.readLat.Snapshot(); s.Count >= 64 {
				if p := time.Duration(s.P99() * float64(time.Second)); p > d {
					d = p
				}
			}
			_ = d
		}
	})
	b.Run("cached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = eng.hedgeDelay()
		}
	})
}
