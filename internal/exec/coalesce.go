package exec

import (
	"sync"

	"repro/internal/rtree"
)

// coalescer is the cross-request page-fetch coalescing layer
// (Config.CoalesceFetches): when concurrent queries ask for the same
// page at the same time, exactly one fetch job goes through the disk
// queue — the others join the in-flight "flight" and share its result.
// This is singleflight at the *request* level, one layer above the
// decoded-page cache's singleflight (bufferpool.Sharded): the cache
// deduplicates decodes once a job reaches a worker, while the
// coalescer deduplicates the jobs themselves, so merged fetches share
// one queue slot and one in-flight semaphore slot. Under a saturated
// array that is the difference between N queries queueing N copies of
// a hot directory page and all of them riding one fetch.
//
// A flight is keyed by page id (pages live on exactly one logical
// disk, so the page identifies the disk too) and lives in a sharded
// map; shards are locked independently so coalescing adds one short
// critical section to the submit path.
type coalescer struct {
	shards []coShard
}

type coShard struct {
	mu      sync.Mutex
	flights map[rtree.PageID]*pageFlight // guarded by mu
}

// pageFlight is one in-flight page fetch that later requests may join.
// waiters is guarded by the owning shard's mu; once the flight is
// removed from the shard map it is immutable and delivered.
type pageFlight struct {
	waiters []flightWaiter
}

// flightWaiter is one joined request: the joining batch's result
// channel and the request's slot in that batch.
type flightWaiter struct {
	out chan<- fetchResult
	idx int
}

const coalesceShards = 16

func newCoalescer() *coalescer {
	c := &coalescer{shards: make([]coShard, coalesceShards)}
	for i := range c.shards {
		c.shards[i].flights = make(map[rtree.PageID]*pageFlight) //lint:allow lockcheck construction: no other goroutine can hold the shard yet
	}
	return c
}

func (c *coalescer) shardOf(id rtree.PageID) *coShard {
	return &c.shards[(uint64(uint32(id))*0x9e3779b97f4a7c15)%coalesceShards]
}

// join registers out/idx on an existing flight for page, reporting
// whether one was found. When it returns false the caller must lead a
// new flight (lead) or abort it (abort) so joiners never hang.
func (c *coalescer) join(page rtree.PageID, out chan<- fetchResult, idx int) (*coShard, bool) {
	sh := c.shardOf(page)
	sh.mu.Lock()
	if f, ok := sh.flights[page]; ok {
		f.waiters = append(f.waiters, flightWaiter{out: out, idx: idx})
		sh.mu.Unlock()
		return sh, true
	}
	f := &pageFlight{}
	sh.flights[page] = f
	sh.mu.Unlock()
	return sh, false
}

// resolve removes page's flight from the shard and returns the waiters
// registered while it was open. After resolve, new requests for the
// page start a fresh flight.
func (sh *coShard) resolve(page rtree.PageID) []flightWaiter {
	sh.mu.Lock()
	f := sh.flights[page]
	delete(sh.flights, page)
	sh.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.waiters
}

// fanOut delivers one worker result to the flight leader and every
// joined waiter. It runs on its own goroutine (spawned when the leader
// job is enqueued) so batch collection loops stay driver-agnostic:
// every slot — led or joined — receives exactly one fetchResult on its
// batch's channel. Joined deliveries are marked coalesced (for the
// cancellation-retry path in fetchBatch) and, on success, count as
// served-without-a-decode for trace attribution, mirroring the cache's
// shared-flight hits.
func (e *Engine) fanOut(sh *coShard, page rtree.PageID, jobOut <-chan fetchResult, leader flightWaiter) {
	res := <-jobOut
	lres := res
	lres.idx = leader.idx
	leader.out <- lres
	for _, w := range sh.resolve(page) {
		r := res
		r.idx = w.idx
		r.coalesced = true
		if r.err == nil {
			r.hit = true
		}
		w.out <- r
	}
}

// abortFlight resolves a flight whose leader failed to enqueue its job
// (cancelled or engine closed): every joined waiter gets the
// submission error so its batch can retry or unwind — a joiner must
// never be left waiting on a flight that will not fly.
func (e *Engine) abortFlight(sh *coShard, page rtree.PageID, err error) {
	for _, w := range sh.resolve(page) {
		w.out <- fetchResult{idx: w.idx, err: err, coalesced: true}
	}
}
