package exec

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/rtree"
)

// TestBatchErrorPrecedence pins the stage-error ranking: a real I/O
// error always beats the submit-loop error, which beats cancellation
// noise collected from sibling fetches.
func TestBatchErrorPrecedence(t *testing.T) {
	io := errors.New("io")
	submit := errors.New("submit")
	for _, tc := range []struct {
		name                     string
		ioErr, submitErr, cancel error
		want                     error
	}{
		{"io beats all", io, submit, context.Canceled, io},
		{"io beats cancel", io, nil, context.Canceled, io},
		{"submit beats cancel", nil, submit, context.Canceled, submit},
		{"cancel alone", nil, nil, context.Canceled, context.Canceled},
		{"clean", nil, nil, nil, nil},
	} {
		if got := batchError(tc.ioErr, tc.submitErr, tc.cancel); got != tc.want {
			t.Errorf("%s: batchError = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// pagesByDisk walks the tree and groups page ids by their disk.
func pagesByDisk(t *testing.T, tree interface {
	Walk(func(*rtree.Node, int) bool)
}, placement func(rtree.PageID) (int, bool)) map[int][]rtree.PageID {
	t.Helper()
	out := map[int][]rtree.PageID{}
	tree.Walk(func(n *rtree.Node, _ int) bool {
		d, ok := placement(n.ID)
		if !ok {
			t.Fatalf("page %d has no placement", n.ID)
		}
		out[d] = append(out[d], n.ID)
		return true
	})
	return out
}

// TestFetchBatchIOErrorBeatsCancellation reproduces the masking bug
// end to end: one batch holds a fetch that dies on a dead disk and
// sibling fetches that come back as cancellation noise after the
// caller gives up. The stage must report the I/O error — the root
// cause — and the stats must count both failure classes.
func TestFetchBatchIOErrorBeatsCancellation(t *testing.T) {
	tree, _ := buildTree(t, 2000, 4, false, 0)
	inj := fault.NewInjector(1)
	inj.Set(0, fault.Faults{Dead: true})                                       // disk 0: instant I/O error
	inj.Set(1, fault.Faults{SpikeProb: 1, SpikeDelay: 100 * time.Millisecond}) // disk 1: slow
	eng, err := New(tree, Config{Mirrors: 1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	byDisk := pagesByDisk(t, eng.tree, func(id rtree.PageID) (int, bool) {
		pl, ok := eng.tree.Placement(id)
		return pl.Disk, ok
	})
	if len(byDisk[0]) < 1 || len(byDisk[1]) < 3 {
		t.Fatalf("layout too small: %d pages on disk 0, %d on disk 1", len(byDisk[0]), len(byDisk[1]))
	}
	mk := func(d int, id rtree.PageID) query.PageRequest {
		return query.PageRequest{Page: id, Disk: d}
	}
	// Three slow fetches on disk 1 (one in service, two queued behind
	// it) plus the doomed disk-0 fetch. Cancelling mid-spike turns the
	// queued disk-1 jobs into cancellation noise.
	reqs := []query.PageRequest{
		mk(1, byDisk[1][0]), mk(1, byDisk[1][1]), mk(1, byDisk[1][2]),
		mk(0, byDisk[0][0]),
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	before := eng.Stats()
	_, err = eng.fetchBatch(ctx, 0, reqs, nil)

	var dataErr *fault.ErrDataUnavailable
	if !errors.As(err, &dataErr) {
		t.Fatalf("fetchBatch err = %v, want *fault.ErrDataUnavailable (cancellation masked the I/O error)", err)
	}
	if dataErr.Disk != 0 {
		t.Fatalf("error names disk %d, dead disk is 0", dataErr.Disk)
	}
	diff := eng.Stats().Sub(before)
	if diff.FetchErrors == 0 {
		t.Error("I/O failure not counted in Stats.FetchErrors")
	}
	if diff.FetchesCancelled == 0 {
		t.Error("cancelled sibling fetches not counted in Stats.FetchesCancelled")
	}
	if got := eng.gauges[0].Failed.Load(); got == 0 {
		t.Error("disk 0 Failed gauge did not move")
	}
}

// countStageEvents tallies one trace's per-stage bookkeeping.
type stageTally struct{ issues, dones, fetchIssued, fetchDone int }

func tally(evs []obs.Event) map[int]*stageTally {
	out := map[int]*stageTally{}
	at := func(stage int) *stageTally {
		if out[stage] == nil {
			out[stage] = &stageTally{}
		}
		return out[stage]
	}
	for _, e := range evs {
		switch e.Type {
		case obs.StageIssue:
			at(e.Stage).issues++
		case obs.StageDone:
			at(e.Stage).dones++
		case obs.FetchIssue:
			at(e.Stage).fetchIssued++
		case obs.FetchDone:
			at(e.Stage).fetchDone++
		}
	}
	return out
}

// TestTraceTerminalEventsOnFailure is the satellite regression gate for
// the observer gap: a query killed by a dead disk (and one killed by
// cancellation) must still close every opened stage with StageDone, and
// FetchDone must cover exactly the fetches that completed — no stage is
// left dangling in the trace.
func TestTraceTerminalEventsOnFailure(t *testing.T) {
	tree, pts := buildTree(t, 3000, 8, false, 0)
	rootPl, ok := tree.Placement(tree.Tree.Root())
	if !ok {
		t.Fatal("root has no placement")
	}
	dead := (rootPl.Disk + 1) % 8
	inj := fault.NewInjector(1)
	inj.Set(dead, fault.Faults{Dead: true})
	eng, err := New(tree, Config{Mirrors: 1, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	failedTraces := 0
	for qi, q := range pts[:40] {
		var col obs.Collector
		_, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{Observer: &col})
		if err == nil {
			continue
		}
		failedTraces++
		for stage, s := range tally(col.Events()) {
			if s.issues != s.dones {
				t.Fatalf("query %d stage %d: %d StageIssue vs %d StageDone — failing stage left open",
					qi, stage, s.issues, s.dones)
			}
			if s.fetchDone > s.fetchIssued {
				t.Fatalf("query %d stage %d: %d FetchDone for %d FetchIssue", qi, stage, s.fetchDone, s.fetchIssued)
			}
		}
	}
	if failedTraces == 0 {
		t.Fatal("no query hit the dead disk; regression coverage is vacuous")
	}

	// Cancellation path: the opened stage still closes.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var col obs.Collector
	if _, _, err := eng.KNN(ctx, query.CRSS{}, pts[0], 5, query.Options{Observer: &col}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for stage, s := range tally(col.Events()) {
		if s.issues != s.dones {
			t.Fatalf("cancelled query stage %d: %d StageIssue vs %d StageDone", stage, s.issues, s.dones)
		}
	}
}

// TestValidationMatchesDriver is the satellite-3 gate: malformed k-NN
// queries must fail identically — same typed error — under the
// sequential Driver and the concurrent engine.
func TestValidationMatchesDriver(t *testing.T) {
	tree, pts := buildTree(t, 500, 3, false, 0)
	drv := query.Driver{Tree: tree}
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	for _, tc := range []struct {
		name string
		q    []float64
		k    int
	}{
		{"k zero", pts[0], 0},
		{"k negative", pts[0], -3},
		{"nil point", nil, 5},
		{"dim mismatch", []float64{1, 2, 3}, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, _, drvErr := drv.RunChecked(query.CRSS{}, tc.q, tc.k, query.Options{})
			_, _, engErr := eng.KNN(context.Background(), query.CRSS{}, tc.q, tc.k, query.Options{})
			var a, b *query.InvalidQueryError
			if !errors.As(drvErr, &a) {
				t.Fatalf("driver err = %v, want *query.InvalidQueryError", drvErr)
			}
			if !errors.As(engErr, &b) {
				t.Fatalf("engine err = %v, want *query.InvalidQueryError", engErr)
			}
			if a.Reason != b.Reason {
				t.Fatalf("paths disagree: driver %q, engine %q", a.Reason, b.Reason)
			}
		})
	}

	// Valid input still passes both.
	if _, _, err := drv.RunChecked(query.CRSS{}, pts[0], 5, query.Options{}); err != nil {
		t.Fatalf("driver rejected a valid query: %v", err)
	}
	if _, _, err := eng.KNN(context.Background(), query.CRSS{}, pts[0], 5, query.Options{}); err != nil {
		t.Fatalf("engine rejected a valid query: %v", err)
	}
}
