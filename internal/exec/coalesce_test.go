package exec

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/fault"
	"repro/internal/query"
	"repro/internal/rtree"
)

// TestCoalesceMatchesDriver is the coalescing correctness gate: with
// request-level fetch coalescing enabled and every read slowed enough
// that concurrent queries genuinely overlap, many clients running the
// same queries must return results bit-identical to the sequential
// Driver — and the engine must actually have coalesced fetches, or the
// test proved nothing.
func TestCoalesceMatchesDriver(t *testing.T) {
	tree, pts := buildTree(t, 1500, 4, false, 0)
	queries := dataset.SampleQueries(pts, 4, 3)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, 8, query.Options{})
	}

	// Every read sleeps 1ms, so the clients' stage fan-outs overlap and
	// identical pages coalesce instead of queueing copies.
	inj := fault.NewInjector(7)
	inj.Set(0, fault.Faults{SpikeProb: 1, SpikeDelay: time.Millisecond})
	inj.Set(1, fault.Faults{SpikeProb: 1, SpikeDelay: time.Millisecond})
	inj.Set(2, fault.Faults{SpikeProb: 1, SpikeDelay: time.Millisecond})
	inj.Set(3, fault.Faults{SpikeProb: 1, SpikeDelay: time.Millisecond})
	eng, err := New(tree, Config{CoalesceFetches: true, Fault: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, q := range queries {
				got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 8, query.Options{})
				if err != nil {
					errs <- err
					return
				}
				if len(got) != len(want[i]) {
					errs <- fmt.Errorf("query %d: %d results, want %d", i, len(got), len(want[i]))
					return
				}
				for j := range got {
					if got[j].Object != want[i][j].Object || got[j].DistSq != want[i][j].DistSq {
						errs <- fmt.Errorf("query %d result %d: (%d, %g) vs driver (%d, %g)",
							i, j, got[j].Object, got[j].DistSq, want[i][j].Object, want[i][j].DistSq)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	s := eng.Stats()
	if s.FetchesCoalesced == 0 {
		t.Fatal("no fetches coalesced: the test exercised nothing")
	}
	if s.Queries != clients*uint64(len(queries)) {
		t.Fatalf("queries = %d, want %d", s.Queries, clients*len(queries))
	}
	t.Logf("coalesced %d of %d fetch requests (%d worker fetches)",
		s.FetchesCoalesced, s.FetchesCoalesced+s.PagesFetched, s.PagesFetched)
}

// TestCoalesceCancelledLeaderRetries pins the bystander-protection
// path: a query that joined another query's in-flight fetch must not
// fail when that leader is cancelled — it refetches the page itself.
// The test plants a synthetic flight (as if a doomed leader had
// started it), lets a live batch join it, then aborts the flight with
// a cancellation: the batch must deliver the correct node anyway.
func TestCoalesceCancelledLeaderRetries(t *testing.T) {
	tree, _ := buildTree(t, 400, 3, false, 0)
	eng, err := New(tree, Config{CoalesceFetches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	root := tree.Root()
	pl, ok := tree.Placement(root)
	if !ok {
		t.Fatal("root unplaced")
	}
	req := query.PageRequest{Page: root, Disk: pl.Disk, Pages: 1}

	// Plant the doomed leader's flight.
	sink := make(chan fetchResult, 1)
	sh, joined := eng.co.join(root, sink, 0)
	if joined {
		t.Fatal("fresh engine already had a flight for the root page")
	}

	done := make(chan error, 1)
	go func() {
		nodes, err := eng.fetchBatch(context.Background(), 0, []query.PageRequest{req}, nil)
		if err != nil {
			done <- err
			return
		}
		if len(nodes) != 1 || nodes[0] == nil || nodes[0].ID != root {
			done <- fmt.Errorf("wrong node delivered: %+v", nodes)
			return
		}
		done <- nil
	}()

	// Wait until the batch has joined the planted flight.
	waitForWaiter(t, sh, root)
	// The leader's query dies: every joiner gets its cancellation...
	eng.abortFlight(sh, root, context.Canceled)
	// ...and the live batch must recover by refetching directly.
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("joined batch failed after leader cancellation: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joined batch hung after leader cancellation")
	}
	if got := eng.Stats().FetchesCoalesced; got != 1 {
		t.Fatalf("FetchesCoalesced = %d, want 1 (the join that was later retried)", got)
	}
}

// TestCoalesceClosedEngineAborts pins the other abort flavor: a joiner
// whose flight dies because the engine closed must fail with ErrClosed
// (not hang, not retry forever).
func TestCoalesceClosedEngineAborts(t *testing.T) {
	tree, _ := buildTree(t, 400, 3, false, 0)
	eng, err := New(tree, Config{CoalesceFetches: true})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	root := tree.Root()
	pl, _ := tree.Placement(root)
	req := query.PageRequest{Page: root, Disk: pl.Disk, Pages: 1}

	sink := make(chan fetchResult, 1)
	sh, _ := eng.co.join(root, sink, 0)
	done := make(chan error, 1)
	go func() {
		_, err := eng.fetchBatch(context.Background(), 0, []query.PageRequest{req}, nil)
		done <- err
	}()
	waitForWaiter(t, sh, root)
	eng.abortFlight(sh, root, ErrClosed)
	select {
	case err := <-done:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("err = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("joined batch hung after engine-closed abort")
	}
}

// waitForWaiter blocks until page's flight has at least one joined
// waiter registered on sh.
func waitForWaiter(t *testing.T, sh *coShard, page rtree.PageID) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		sh.mu.Lock()
		f := sh.flights[page]
		waiters := 0
		if f != nil {
			waiters = len(f.waiters)
		}
		sh.mu.Unlock()
		if waiters > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no waiter joined the planted flight")
		}
		time.Sleep(100 * time.Microsecond)
	}
}
