package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/bufferpool"
	"repro/internal/dataset"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/geom"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/simarray"
)

// buildTree returns a populated parallel R*-tree for engine tests.
func buildTree(t testing.TB, n, numDisks int, spheres bool, overlap float64) (*parallel.Tree, []geom.Point) {
	t.Helper()
	pts := dataset.CaliforniaLike(n, 7)
	tree, err := parallel.New(parallel.Config{
		Dim:             2,
		NumDisks:        numDisks,
		Cylinders:       disk.HPC2200A().Cylinders,
		Policy:          decluster.ProximityIndex{},
		Seed:            11,
		UseSpheres:      spheres,
		MaxOverlapRatio: overlap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.BuildPoints(pts); err != nil {
		t.Fatal(err)
	}
	return tree, pts
}

// sameNeighbors fails unless a and b are the identical result set.
func sameNeighbors(t *testing.T, label string, a, b []query.Neighbor) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: %d results vs %d", label, len(a), len(b))
	}
	for i := range a {
		if a[i].Object != b[i].Object || a[i].DistSq != b[i].DistSq {
			t.Fatalf("%s: result %d differs: (%d, %g) vs (%d, %g)",
				label, i, a[i].Object, a[i].DistSq, b[i].Object, b[i].DistSq)
		}
	}
}

// TestEngineMatchesDriver is the real-vs-immediate equivalence gate:
// for identical queries every algorithm must return exactly the k-NN
// sets of the sequential Driver, with and without the engine cache.
func TestEngineMatchesDriver(t *testing.T) {
	tree, pts := buildTree(t, 4000, 5, false, 0)
	queries := dataset.SampleQueries(pts, 40, 3)
	drv := query.Driver{Tree: tree}

	for _, cache := range []int{0, 128} {
		eng, err := New(tree, Config{CachePages: cache})
		if err != nil {
			t.Fatal(err)
		}
		for _, alg := range []query.Algorithm{query.CRSS{}, query.BBSS{}, query.FPSS{}, query.BFSS{}} {
			for qi, q := range queries {
				want, wantStats := drv.Run(alg, q, 10, query.Options{})
				got, gotStats, err := eng.KNN(context.Background(), alg, q, 10, query.Options{})
				if err != nil {
					t.Fatal(err)
				}
				label := fmt.Sprintf("%s q%d cache=%d", alg.Name(), qi, cache)
				sameNeighbors(t, label, want, got)
				if gotStats.NodesVisited != wantStats.NodesVisited || gotStats.Batches != wantStats.Batches {
					t.Fatalf("%s: stats diverge: visited %d/%d batches %d/%d", label,
						gotStats.NodesVisited, wantStats.NodesVisited, gotStats.Batches, wantStats.Batches)
				}
			}
		}
		eng.Close()
	}
}

// TestEngineMatchesSimulator checks the acceptance criterion directly:
// engine-mode CRSS returns exactly the same k-NN sets as simulator-mode
// CRSS for identical datasets and queries.
func TestEngineMatchesSimulator(t *testing.T) {
	tree, pts := buildTree(t, 3000, 8, false, 0)
	queries := dataset.SampleQueries(pts, 25, 9)

	sys, err := simarray.NewSystem(tree, simarray.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(simarray.Workload{
		Algorithm: query.CRSS{}, K: 10, Queries: queries, ArrivalRate: 50,
	})
	if err != nil {
		t.Fatal(err)
	}

	eng, err := New(tree, Config{WorkersPerDisk: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	for i, q := range queries {
		got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, fmt.Sprintf("crss q%d", i), res.Outcomes[i].Results, got)
	}
}

// TestEngineSpheresAndSupernodes exercises the two special page
// layouts: SR-tree sphere entries (version-2 codec) and X-tree
// supernodes (resident fallback, no single-page encoding).
func TestEngineSpheresAndSupernodes(t *testing.T) {
	for _, tc := range []struct {
		name    string
		spheres bool
		overlap float64
	}{
		{"srtree", true, 0},
		{"xtree", false, 0.2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tree, pts := buildTree(t, 2500, 4, tc.spheres, tc.overlap)
			queries := dataset.SampleQueries(pts, 15, 2)
			drv := query.Driver{Tree: tree}
			eng, err := New(tree, Config{})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			for qi, q := range queries {
				want, _ := drv.Run(query.CRSS{}, q, 5, query.Options{})
				got, _, err := eng.KNN(context.Background(), query.CRSS{}, q, 5, query.Options{})
				if err != nil {
					t.Fatal(err)
				}
				sameNeighbors(t, fmt.Sprintf("%s q%d", tc.name, qi), want, got)
			}
		})
	}
}

// TestEngineConcurrentClients is the multi-client stress gate: many
// goroutines fire queries at one shared engine; under -race it proves
// the read path is thread-safe end to end.
func TestEngineConcurrentClients(t *testing.T) {
	tree, pts := buildTree(t, 3000, 6, false, 0)
	queries := dataset.SampleQueries(pts, 64, 5)
	drv := query.Driver{Tree: tree}
	want := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		want[i], _ = drv.Run(query.CRSS{}, q, 10, query.Options{})
	}

	eng, err := New(tree, Config{WorkersPerDisk: 2, CachePages: 256, MaxInFlight: 24})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	clients := 8
	perClient := 30
	if testing.Short() {
		clients, perClient = 4, 10
	}
	algs := []query.Algorithm{query.CRSS{}, query.FPSS{}, query.BBSS{}}
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				qi := (c*perClient + i*13) % len(queries)
				alg := algs[(c+i)%len(algs)]
				got, _, err := eng.KNN(context.Background(), alg, queries[qi], 10, query.Options{})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if alg.Name() == "CRSS" {
					for j := range got {
						if got[j].Object != want[qi][j].Object || got[j].DistSq != want[qi][j].DistSq {
							t.Errorf("client %d query %d: result %d diverged", c, qi, j)
							return
						}
					}
				}
			}
		}(c)
	}
	wg.Wait()
	st := eng.Stats()
	if st.Queries != uint64(clients*perClient) {
		t.Fatalf("Queries = %d, want %d", st.Queries, clients*perClient)
	}
	if st.PagesFetched == 0 {
		t.Fatal("no pages fetched")
	}
	if cs := eng.CacheStats(); cs.Hits == 0 {
		t.Error("shared cache saw no hits under concurrent load")
	}
}

// TestEngineSharedCacheStatsParity is the admit-on-delivery parity
// gate: the same query sequence run through a shared buffer pool must
// produce bit-identical per-query stats (including the per-disk read
// vectors) under the immediate Driver, the system simulator and the
// concurrent engine. Each driver gets its own fresh pool; because the
// pool's residency now evolves only with delivered pages, all three
// see the identical hit sequence.
func TestEngineSharedCacheStatsParity(t *testing.T) {
	tree, pts := buildTree(t, 3000, 5, false, 0)
	queries := dataset.SampleQueries(pts, 20, 13)
	newPool := func() *bufferpool.Pool[rtree.PageID, struct{}] {
		return bufferpool.New[rtree.PageID, struct{}](256)
	}

	drv := query.Driver{Tree: tree}
	pool := newPool()
	want := make([]*query.Stats, len(queries))
	wantRes := make([][]query.Neighbor, len(queries))
	for i, q := range queries {
		wantRes[i], want[i] = drv.Run(query.CRSS{}, q, 10, query.Options{SharedCache: pool})
	}
	hits := 0
	for _, st := range want {
		hits += st.NodesVisited - st.DiskAccesses
	}
	if hits == 0 {
		t.Fatal("query sequence produced no shared-cache hits; parity is vacuous")
	}

	sys, err := simarray.NewSystem(tree, simarray.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(simarray.Workload{
		Algorithm: query.CRSS{}, K: 10, Queries: queries,
		Options: query.Options{SharedCache: newPool()},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range queries {
		if !reflect.DeepEqual(res.Outcomes[i].Stats, want[i]) {
			t.Fatalf("simulator stats for q%d: %+v, driver %+v", i, res.Outcomes[i].Stats, want[i])
		}
	}

	eng, err := New(tree, Config{WorkersPerDisk: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	engPool := newPool()
	for i, q := range queries {
		got, st, err := eng.KNN(context.Background(), query.CRSS{}, q, 10, query.Options{SharedCache: engPool})
		if err != nil {
			t.Fatal(err)
		}
		sameNeighbors(t, fmt.Sprintf("cached q%d", i), wantRes[i], got)
		if !reflect.DeepEqual(st, want[i]) {
			t.Fatalf("engine stats for q%d: %+v, driver %+v", i, st, want[i])
		}
	}
}

// TestEngineCancelledQueryDoesNotPoisonSharedCache: a cancelled query
// must not leave pages it never fetched resident in a shared pool —
// the failure mode of admit-before-fetch.
func TestEngineCancelledQueryDoesNotPoisonSharedCache(t *testing.T) {
	tree, pts := buildTree(t, 2000, 4, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	pool := bufferpool.New[rtree.PageID, struct{}](256)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := eng.KNN(ctx, query.CRSS{}, pts[0], 10, query.Options{SharedCache: pool}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := pool.Len(); n != 0 {
		t.Fatalf("cancelled query planted %d pages in the shared pool", n)
	}

	// The pool is still usable and fills with exactly the pages a
	// successful query physically reads.
	_, st, err := eng.KNN(context.Background(), query.CRSS{}, pts[0], 10, query.Options{SharedCache: pool})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Len() != st.DiskAccesses {
		t.Fatalf("pool holds %d pages, query fetched %d", pool.Len(), st.DiskAccesses)
	}
}

// TestEngineCancellation verifies context cancellation aborts a query
// and leaves the engine healthy.
func TestEngineCancellation(t *testing.T) {
	tree, pts := buildTree(t, 2000, 4, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the first fetch must abort
	_, _, err = eng.KNN(ctx, query.CRSS{}, pts[0], 10, query.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := eng.Stats(); st.Cancelled != 1 {
		t.Fatalf("Cancelled = %d, want 1", st.Cancelled)
	}

	// The engine still answers fresh queries afterwards.
	if _, _, err := eng.KNN(context.Background(), query.CRSS{}, pts[0], 10, query.Options{}); err != nil {
		t.Fatal(err)
	}
}

// TestEngineClose verifies Close is idempotent, rejects later queries,
// and tolerates racing clients.
func TestEngineClose(t *testing.T) {
	tree, pts := buildTree(t, 2000, 4, false, 0)
	queries := dataset.SampleQueries(pts, 16, 8)
	eng, err := New(tree, Config{WorkersPerDisk: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, _, err := eng.KNN(context.Background(), query.CRSS{}, queries[(c+i)%len(queries)], 5, query.Options{})
				if err != nil && !errors.Is(err, ErrClosed) {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	eng.Close()
	eng.Close() // idempotent
	wg.Wait()
	if _, _, err := eng.KNN(context.Background(), query.CRSS{}, queries[0], 5, query.Options{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("KNN after Close: %v, want ErrClosed", err)
	}
}

// TestEngineRejectsBadInput covers the argument validation paths.
func TestEngineRejectsBadInput(t *testing.T) {
	tree, pts := buildTree(t, 500, 3, false, 0)
	eng, err := New(tree, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, _, err := eng.KNN(context.Background(), query.CRSS{}, pts[0], 0, query.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := eng.KNN(context.Background(), query.CRSS{}, geom.Point{1, 2, 3}, 5, query.Options{}); err == nil {
		t.Error("dim mismatch accepted")
	}
}
