package pagestore_test

// Regression tests for the error-propagation fixes surfaced by the
// errlost analyzer (PR 8): DurableStore.Close must report BOTH file
// close errors instead of the WAL error masking the data file's.
// Before the fix, Close returned only the first failure, so a torn-down
// store could swallow the data file's close diagnostics.

import (
	"errors"
	"testing"

	"repro/internal/pagestore"
)

// failCloseFile is an in-memory BlockFile whose Close fails with a
// distinguishable sentinel.
type failCloseFile struct {
	buf      []byte
	closeErr error
}

func (f *failCloseFile) ReadAt(p []byte, off int64) (int, error) {
	if off >= int64(len(f.buf)) {
		return 0, errors.New("EOF")
	}
	n := copy(p, f.buf[off:])
	return n, nil
}

func (f *failCloseFile) WriteAt(p []byte, off int64) (int, error) {
	if grow := off + int64(len(p)) - int64(len(f.buf)); grow > 0 {
		f.buf = append(f.buf, make([]byte, grow)...)
	}
	copy(f.buf[off:], p)
	return len(p), nil
}

func (f *failCloseFile) Sync() error { return nil }

func (f *failCloseFile) Truncate(size int64) error {
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	}
	return nil
}

func (f *failCloseFile) Size() (int64, error) { return int64(len(f.buf)), nil }

func (f *failCloseFile) Close() error { return f.closeErr }

func TestDurableCloseJoinsBothErrors(t *testing.T) {
	errData := errors.New("data close failed")
	errWAL := errors.New("wal close failed")
	data := &failCloseFile{closeErr: errData}
	wal := &failCloseFile{closeErr: errWAL}
	codec := pagestore.Codec{Dim: 2, PageSize: 512}

	ds, err := pagestore.OpenDurableOn(data, wal, codec, pagestore.DurableOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	err = ds.Close()
	if err == nil {
		t.Fatal("Close returned nil with both files failing")
	}
	if !errors.Is(err, errWAL) {
		t.Errorf("Close error %v does not report the WAL close failure", err)
	}
	if !errors.Is(err, errData) {
		// The pre-fix code returned only the WAL error, masking this one.
		t.Errorf("Close error %v does not report the data-file close failure", err)
	}
}

func TestDurableCloseCleanIsNil(t *testing.T) {
	codec := pagestore.Codec{Dim: 2, PageSize: 512}
	ds, err := pagestore.OpenDurableOn(&failCloseFile{}, &failCloseFile{}, codec, pagestore.DurableOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := ds.Close(); err != nil {
		t.Fatalf("clean Close: %v", err)
	}
}
