// Crash-recovery torture test: run a deterministic insert/delete/
// commit/checkpoint schedule over in-memory block files that lose
// power at a programmed fsync, then reboot from exactly the bytes that
// were durable and require the store to recover a consistent committed
// tree. Every sync point in the schedule gets its own kill, so the
// whole commit and checkpoint protocol is exercised at every durability
// boundary.
//
// The device model: writes land in a volatile cache (the live view)
// and drain to stable storage in FIFO order; at the crash an arbitrary
// seeded prefix of the un-synced ops is durable and the frontier op may
// itself be torn mid-write. Everything after the crash fails with a
// permanent error, like a dead drive.
package pagestore_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
)

var errCrashed = errors.New("crash: simulated power loss")

// writeOp is one buffered mutation: a positional write (data non-nil)
// or a truncate (data nil, size the new length).
type writeOp struct {
	off  int64
	data []byte
	size int64
}

// crashEnv is the power supply shared by all files of one store: a
// global fsync counter, the ordinal to kill at, and the RNG that picks
// how much of the un-synced tail survived.
type crashEnv struct {
	mu      sync.Mutex
	rng     *rand.Rand // picks the durable frontier at the crash; guarded by mu
	crashAt int        // 1-based sync ordinal to kill at; 0 = never
	syncs   int        // completed sync points across all files; guarded by mu
	dead    bool       // post-crash: every op fails; guarded by mu
}

func (e *crashEnv) failed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dead
}

func (e *crashEnv) syncCount() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.syncs
}

// crashFile implements pagestore.BlockFile with separate live and
// durable images. Reads serve the live view (the page cache); only
// Sync moves bytes to the durable image — or, at the kill point, a
// seeded torn prefix of them.
type crashFile struct {
	env     *crashEnv
	mu      sync.Mutex
	mem     []byte    // live view; guarded by mu
	durable []byte    // what survives a crash; guarded by mu
	pending []writeOp // un-synced ops in FIFO order; guarded by mu
}

func newCrashFile(env *crashEnv, seed []byte) *crashFile {
	f := &crashFile{env: env}
	f.mem = append(f.mem, seed...)
	f.durable = append(f.durable, seed...)
	return f
}

func (f *crashFile) durableBytes() []byte {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]byte(nil), f.durable...)
}

func (f *crashFile) ReadAt(p []byte, off int64) (int, error) {
	if f.env.failed() {
		return 0, errCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if off >= int64(len(f.mem)) {
		return 0, io.EOF
	}
	n := copy(p, f.mem[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *crashFile) WriteAt(p []byte, off int64) (int, error) {
	if f.env.failed() {
		return 0, errCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if grow := off + int64(len(p)) - int64(len(f.mem)); grow > 0 {
		f.mem = append(f.mem, make([]byte, grow)...)
	}
	copy(f.mem[off:], p)
	f.pending = append(f.pending, writeOp{off: off, data: append([]byte(nil), p...)})
	return len(p), nil
}

func (f *crashFile) Truncate(size int64) error {
	if f.env.failed() {
		return errCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.mem = resize(f.mem, size)
	f.pending = append(f.pending, writeOp{size: size})
	return nil
}

func (f *crashFile) Size() (int64, error) {
	if f.env.failed() {
		return 0, errCrashed
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return int64(len(f.mem)), nil
}

func (f *crashFile) Close() error { return nil }

func (f *crashFile) Sync() error {
	f.env.mu.Lock()
	if f.env.dead {
		f.env.mu.Unlock()
		return errCrashed
	}
	f.env.syncs++
	crash := f.env.crashAt > 0 && f.env.syncs == f.env.crashAt
	var rng *rand.Rand
	if crash {
		f.env.dead = true
		rng = f.env.rng
	}
	f.env.mu.Unlock()

	f.mu.Lock()
	defer f.mu.Unlock()
	if !crash {
		for _, op := range f.pending {
			f.applyLocked(op, -1)
		}
		f.pending = nil
		return nil
	}
	// Power loss at this fsync: some FIFO prefix of the pending ops had
	// already drained to the platters, and the frontier op may be torn
	// mid-write. Note this tears only the file being synced — the other
	// file's un-synced ops are simply lost, which is strictly harsher.
	k := rng.Intn(len(f.pending) + 1)
	for _, op := range f.pending[:k] {
		f.applyLocked(op, -1)
	}
	if k < len(f.pending) {
		if op := f.pending[k]; op.data != nil {
			if tear := rng.Intn(len(op.data) + 1); tear > 0 {
				f.applyLocked(op, tear)
			}
		}
	}
	f.pending = nil
	return errCrashed
}

// applyLocked folds one op into the durable image; tear >= 0 applies
// only the op's first tear bytes. Callers hold f.mu.
func (f *crashFile) applyLocked(op writeOp, tear int) {
	if op.data == nil {
		f.durable = resize(f.durable, op.size)
		return
	}
	data := op.data
	if tear >= 0 && tear < len(data) {
		data = data[:tear]
	}
	if grow := op.off + int64(len(data)) - int64(len(f.durable)); grow > 0 {
		f.durable = append(f.durable, make([]byte, grow)...)
	}
	copy(f.durable[op.off:], data)
}

// resize truncates or zero-extends b to size, like os.File.Truncate.
func resize(b []byte, size int64) []byte {
	if size <= int64(len(b)) {
		return b[:size]
	}
	return append(b, make([]byte, size-int64(len(b)))...)
}

func crashCodec() pagestore.Codec { return pagestore.Codec{Dim: 2, PageSize: 512} }

// objSet is a recovered or expected object population.
type objSet map[rtree.ObjectID]geom.Point

func (s objSet) clone() objSet {
	c := make(objSet, len(s))
	for id, p := range s {
		c[id] = p
	}
	return c
}

func (s objSet) equal(o objSet) bool {
	if len(s) != len(o) {
		return false
	}
	for id := range s {
		if _, ok := o[id]; !ok {
			return false
		}
	}
	return true
}

// schedResult is the ground truth the recovered store is checked
// against: the object set as of the last durable-acknowledged Commit,
// plus — when the crash hit inside a Commit — the set that commit was
// trying to make durable. Recovery must land on one of the two
// (whether the commit record made it to the platters is exactly the
// bit the crash tears).
type schedResult struct {
	committed objSet
	inflight  objSet // non-nil only when the crash hit inside Commit
	crashed   bool
}

// runCrashSchedule drives a fixed, seeded insert/delete workload over a
// DurableStore on the given files: a Commit every 7 ops, checkpoints a
// third and two thirds of the way in, and a final Commit. The schedule
// is identical on every run; only the kill point differs.
func runCrashSchedule(t *testing.T, data, wal *crashFile) schedResult {
	t.Helper()
	const (
		ops         = 160
		commitEvery = 7
	)
	codec := crashCodec()
	ds, err := pagestore.OpenDurableOn(data, wal, codec, pagestore.DurableOptions{})
	if err != nil {
		t.Fatalf("initial open: %v", err)
	}
	tr, err := rtree.New(rtree.Config{Dim: 2, MaxEntries: codec.Capacity()}, ds)
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(424242)) // workload seed, fixed across kill points
	live := make(objSet)
	var liveIDs []rtree.ObjectID
	committed := make(objSet)

	crashed := func(err error) schedResult {
		if !errors.Is(err, errCrashed) {
			t.Fatalf("schedule failed with a non-crash error: %v", err)
		}
		return schedResult{committed: committed, crashed: true}
	}

	for i := 0; i < ops; i++ {
		if i%10 == 3 && len(liveIDs) > 20 {
			j := rng.Intn(len(liveIDs))
			id := liveIDs[j]
			if !tr.DeletePoint(live[id], id) {
				t.Fatalf("op %d: delete of live object %d failed", i, id)
			}
			delete(live, id)
			liveIDs[j] = liveIDs[len(liveIDs)-1]
			liveIDs = liveIDs[:len(liveIDs)-1]
		} else {
			p := geom.Point{rng.Float64() * 1000, rng.Float64() * 1000}
			id := rtree.ObjectID(i)
			if err := tr.InsertPoint(p, id); err != nil {
				t.Fatal(err)
			}
			live[id] = p
			liveIDs = append(liveIDs, id)
		}
		if i%commitEvery == commitEvery-1 {
			inflight := live.clone()
			if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
				res := crashed(err)
				res.inflight = inflight
				return res
			}
			committed = inflight
		}
		if i == ops/3 || i == 2*ops/3 {
			if err := ds.Checkpoint(); err != nil {
				return crashed(err)
			}
		}
	}
	inflight := live.clone()
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		res := crashed(err)
		res.inflight = inflight
		return res
	}
	committed = inflight
	return schedResult{committed: committed}
}

// recoverAndCheck reboots from the durable images, recovers, and runs
// the full gauntlet: open must succeed, the tree must restore with
// clean invariants and a bitwise shadow, the recovered object set must
// be one of the two legal states, and the concurrent engine must agree
// with the serial driver on the recovered tree, bit for bit.
func recoverAndCheck(t *testing.T, res schedResult, dataImg, walImg []byte, counters *obs.StorageCounters) {
	t.Helper()
	codec := crashCodec()
	env := &crashEnv{} // recovery runs on a healthy machine
	ds, err := pagestore.OpenDurableOn(newCrashFile(env, dataImg), newCrashFile(env, walImg),
		codec, pagestore.DurableOptions{Counters: counters})
	if err != nil {
		t.Fatalf("recovery open failed: %v", err)
	}
	defer ds.Close()
	if err := ds.VerifyShadow(); err != nil {
		t.Fatalf("recovered shadow mismatch: %v", err)
	}

	meta := ds.Meta()
	got := make(objSet)
	if meta.Root != 0 {
		rcfg := rtree.Config{Dim: 2, MaxEntries: codec.Capacity()}
		tr, err := rtree.Restore(rcfg, ds, meta.Root, meta.Size)
		if err != nil {
			t.Fatalf("restore of recovered tree failed: %v", err)
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("recovered tree violates invariants: %v", err)
		}
		tr.Walk(func(n *rtree.Node, _ int) bool {
			if n.IsLeaf() {
				for _, e := range n.Entries {
					got[e.Object] = geom.Point(nil)
				}
			}
			return true
		})
	}
	if len(got) != meta.Size {
		t.Fatalf("recovered tree holds %d objects, superblock says %d", len(got), meta.Size)
	}
	switch {
	case got.equal(res.committed):
	case res.inflight != nil && got.equal(res.inflight):
	default:
		t.Fatalf("recovered %d objects; want the last committed set (%d) or the in-flight commit (%d)",
			len(got), len(res.committed), len(res.inflight))
	}
	if len(got) == 0 {
		return
	}

	// Driver/engine parity on the recovered tree: adopt it into the
	// parallel placement and require the concurrent engine to answer
	// bit-identically to the serial driver.
	pcfg := parallel.Config{
		Dim: 2, NumDisks: 4, Cylinders: disk.HPC2200A().Cylinders,
		MaxEntries: codec.Capacity(), Seed: 1,
	}
	pt, err := parallel.Adopt(pcfg, ds, meta.Root, meta.Size)
	if err != nil {
		t.Fatalf("adopting recovered tree: %v", err)
	}
	eng, err := exec.New(pt, exec.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	drv := query.Driver{Tree: pt}
	k := 10
	if k > meta.Size {
		k = meta.Size
	}
	for _, q := range []geom.Point{{100, 900}, {500, 500}, {900, 100}} {
		want, _ := drv.Run(query.CRSS{}, q, k, query.Options{})
		have, _, err := eng.KNN(context.Background(), query.CRSS{}, q, k, query.Options{})
		if err != nil {
			t.Fatalf("engine query on recovered tree: %v", err)
		}
		if len(want) != len(have) {
			t.Fatalf("driver found %d neighbors, engine %d", len(want), len(have))
		}
		for i := range want {
			if want[i].Object != have[i].Object ||
				math.Float64bits(want[i].DistSq) != math.Float64bits(have[i].DistSq) {
				t.Fatalf("neighbor %d differs: driver %v/%x, engine %v/%x", i,
					want[i].Object, math.Float64bits(want[i].DistSq),
					have[i].Object, math.Float64bits(have[i].DistSq))
			}
		}
	}
}

// TestCrashRecoveryTorture kills the store at every fsync in the
// schedule (a seeded sample of them under -short) and requires full
// recovery from each. The dry run both counts the sync points and
// checks the no-crash baseline.
func TestCrashRecoveryTorture(t *testing.T) {
	env := &crashEnv{}
	data, wal := newCrashFile(env, nil), newCrashFile(env, nil)
	res := runCrashSchedule(t, data, wal)
	if res.crashed {
		t.Fatal("dry run crashed")
	}
	total := env.syncCount()
	if total < 10 {
		t.Fatalf("schedule produced only %d sync points — not much of a torture", total)
	}
	recoverAndCheck(t, res, data.durableBytes(), wal.durableBytes(), nil)

	step := 1
	if testing.Short() {
		step = 4
	}
	var recoveries, replayed atomic.Uint64
	for kill := 1; kill <= total; kill += step {
		kill := kill
		t.Run(fmt.Sprintf("kill=%02d", kill), func(t *testing.T) {
			t.Parallel()
			env := &crashEnv{crashAt: kill, rng: rand.New(rand.NewSource(int64(9000 + kill)))}
			data, wal := newCrashFile(env, nil), newCrashFile(env, nil)
			res := runCrashSchedule(t, data, wal)
			if !res.crashed {
				t.Fatalf("schedule survived kill point %d of %d", kill, total)
			}
			var counters obs.StorageCounters
			recoverAndCheck(t, res, data.durableBytes(), wal.durableBytes(), &counters)
			s := counters.Snapshot()
			recoveries.Add(s.Recoveries)
			replayed.Add(s.ReplayedRecords)
		})
	}
	t.Cleanup(func() {
		if recoveries.Load() == 0 || replayed.Load() == 0 {
			t.Errorf("no kill point exercised WAL replay (recoveries=%d, replayed=%d)",
				recoveries.Load(), replayed.Load())
		}
	})
}

// A second, harsher sweep: crash the recovered machine a second time by
// re-running the tail of the schedule is out of scope, but double-crash
// DURING RECOVERY is not — the heal writes and torn-tail truncation
// recovery performs must themselves be crash-safe. Recovery performs no
// syncs, so the durable images are untouched: recovering twice from the
// same images must give the same answer.
func TestCrashRecoveryIsRepeatable(t *testing.T) {
	env := &crashEnv{crashAt: 7, rng: rand.New(rand.NewSource(77))}
	data, wal := newCrashFile(env, nil), newCrashFile(env, nil)
	res := runCrashSchedule(t, data, wal)
	if !res.crashed {
		t.Skip("schedule has fewer than 7 sync points")
	}
	dataImg, walImg := data.durableBytes(), wal.durableBytes()
	for i := 0; i < 3; i++ {
		recoverAndCheck(t, res, dataImg, walImg, nil)
	}
}
