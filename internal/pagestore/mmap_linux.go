//go:build linux

package pagestore

import (
	"os"
	"syscall"
)

// mmapFile maps length bytes of f read-only and shared: page writes
// through the normal pwrite path are visible in the mapping, which is
// what lets the read path serve from memory between remaps.
func mmapFile(f *os.File, length int) ([]byte, error) {
	return syscall.Mmap(int(f.Fd()), 0, length, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error { return syscall.Munmap(b) }
