package pagestore

import (
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"encoding/binary"

	"repro/internal/obs"
	"repro/internal/rtree"
)

// FileStore is a page-aligned file of encoded R*-tree nodes — the
// persistent realization of the paper's "one node = one disk page"
// layout (§2.1) for a single simulated drive. Page id n lives at byte
// offset n*PageSize; slot 0 is the superblock. Reads are positional
// (pread) or, when enabled and supported, served from a read-only mmap
// of the file; writes are positional (pwrite) and become durable at
// Sync. FileStore itself is a dumb block device with a checksummed
// superblock — crash consistency across multi-page tree operations is
// the job of DurableStore's write-ahead log, which replays into it.
//
// The superblock layout (always in slot 0, pages start at slot 1 —
// rtree page ids start at 1, so the slots line up with ids):
//
//	offset 0   4 bytes  magic "SQFS"
//	offset 4   uint8    version (1)
//	offset 5   uint8    spheres flag
//	offset 6   uint16   dimension
//	offset 8   uint32   page size
//	offset 12  uint64   root page id
//	offset 20  uint64   object count
//	offset 28  uint64   next page id
//	offset 36  uint32   IEEE CRC-32 of bytes 0..36
//
// Slot 0 holds TWO copies of this record: the primary at offset 0 and
// a backup at offset 64. Updates write the backup first, then the
// primary, so a crash mid-update tears at most the copy being written
// and open always finds a copy with a valid checksum. Falling back to
// a stale copy is safe: the WAL is reset only after the superblock is
// durable, so replay re-derives any newer metadata.
var fileMagic = [4]byte{'S', 'Q', 'F', 'S'}

const (
	fileVersion         = 1
	superblockSize      = 40
	superblockBackupOff = 64
)

// FileMeta is the tree metadata persisted in the superblock: everything
// rtree.Restore needs besides the pages themselves.
type FileMeta struct {
	Root   rtree.PageID
	Size   int
	NextID rtree.PageID
}

// FileStoreOptions configures OpenFileStore. The zero value is valid:
// pread-only access and no telemetry.
type FileStoreOptions struct {
	// Mmap maps the file read-only and serves page reads from the
	// mapping when possible (reads past the mapped length fall back to
	// pread; the mapping is refreshed on Sync). Silently ignored on
	// platforms without mmap support and on non-OS block files.
	Mmap bool
	// Counters, when non-nil, receives PageReads/PageWrites/DataSyncs.
	Counters *obs.StorageCounters
}

// FileStore implements page-granular persistent storage for one drive.
// Safe for concurrent use.
type FileStore struct {
	codec    Codec
	counters *obs.StorageCounters
	osf      *os.File // non-nil only for OS-backed stores; needed for mmap

	mu   sync.Mutex
	f    BlockFile // guarded by mu
	meta FileMeta  // guarded by mu
	mmap []byte    // current read-only mapping, nil when disabled; guarded by mu
	old  [][]byte  // superseded mappings, unmapped at Close; guarded by mu
	want bool      // mmap requested; guarded by mu
}

// OpenFileStore opens (creating if absent) the page file at path. An
// existing file must carry a superblock matching the codec's page size,
// dimensionality and sphere layout.
func OpenFileStore(path string, codec Codec, opts FileStoreOptions) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	fs, err := newFileStore(osBlockFile{f: f}, codec, opts)
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.osf = f
	if opts.Mmap {
		fs.mu.Lock()
		fs.remapLocked()
		fs.mu.Unlock()
	}
	return fs, nil
}

// NewFileStoreOn builds a store over a caller-supplied block file (the
// crash-test injection seam). The Mmap option is ignored — mapping
// needs a real OS file.
func NewFileStoreOn(f BlockFile, codec Codec, opts FileStoreOptions) (*FileStore, error) {
	return newFileStore(f, codec, opts)
}

// newFileStore builds a store over an arbitrary block file (the seam
// the crash tests use; mmap is only possible over real OS files).
func newFileStore(f BlockFile, codec Codec, opts FileStoreOptions) (*FileStore, error) {
	if codec.PageSize < superblockBackupOff+superblockSize {
		return nil, fmt.Errorf("pagestore: page size %d smaller than the superblock pair (%d bytes)",
			codec.PageSize, superblockBackupOff+superblockSize)
	}
	fs := &FileStore{codec: codec, counters: opts.Counters, f: f, want: opts.Mmap}
	// Open-time: the store is not shared yet, but lock anyway to keep
	// the guarded-field discipline uniform.
	fs.mu.Lock()
	defer fs.mu.Unlock()
	size, err := f.Size()
	if err != nil {
		return nil, err
	}
	if size == 0 {
		fs.meta = FileMeta{NextID: 1}
		if err := fs.writeMetaLocked(); err != nil {
			return nil, err
		}
		return fs, nil
	}
	meta, fromBackup, err := fs.readSuperblock()
	if err != nil {
		return nil, err
	}
	fs.meta = meta
	if fromBackup {
		// The primary copy was torn (crash mid-update). Heal it now so a
		// second crash before the next checkpoint still finds a valid
		// copy; durability rides on the next Sync.
		if err := fs.writeMetaLocked(); err != nil {
			return nil, err
		}
	}
	return fs, nil
}

// readSuperblock reads and validates slot 0, falling back to the backup
// copy when the primary is torn. fromBackup reports that the fallback
// was taken. Called before the store is shared, so no locking.
func (fs *FileStore) readSuperblock() (meta FileMeta, fromBackup bool, err error) {
	meta, errPrimary := fs.readSuperblockAt(0)
	if errPrimary == nil {
		return meta, false, nil
	}
	meta, errBackup := fs.readSuperblockAt(superblockBackupOff)
	if errBackup == nil {
		return meta, true, nil
	}
	return FileMeta{}, false, fmt.Errorf(
		"pagestore: both superblock copies invalid: %w; backup: %v", errPrimary, errBackup)
}

// readSuperblockAt reads and validates one superblock copy.
func (fs *FileStore) readSuperblockAt(off int64) (FileMeta, error) {
	var sb [superblockSize]byte
	if _, err := fs.f.ReadAt(sb[:], off); err != nil { //lint:allow lockcheck open-time, store not yet shared
		return FileMeta{}, fmt.Errorf("pagestore: reading superblock: %w", err)
	}
	if [4]byte(sb[0:4]) != fileMagic {
		return FileMeta{}, fmt.Errorf("pagestore: bad file magic %q", sb[0:4])
	}
	if sb[4] != fileVersion {
		return FileMeta{}, fmt.Errorf("pagestore: file version %d, want %d", sb[4], fileVersion)
	}
	sum := crc32.ChecksumIEEE(sb[:36])
	if got := binary.LittleEndian.Uint32(sb[36:]); got != sum {
		return FileMeta{}, fmt.Errorf("pagestore: superblock checksum mismatch: 0x%08x vs 0x%08x", got, sum)
	}
	spheres := sb[5] == 1
	dim := int(binary.LittleEndian.Uint16(sb[6:]))
	pageSize := int(binary.LittleEndian.Uint32(sb[8:]))
	if spheres != fs.codec.Spheres || dim != fs.codec.Dim || pageSize != fs.codec.PageSize {
		return FileMeta{}, fmt.Errorf(
			"pagestore: file layout (dim=%d page=%d spheres=%v) does not match codec (dim=%d page=%d spheres=%v)",
			dim, pageSize, spheres, fs.codec.Dim, fs.codec.PageSize, fs.codec.Spheres)
	}
	return FileMeta{
		Root:   rtree.PageID(binary.LittleEndian.Uint64(sb[12:])),
		Size:   int(binary.LittleEndian.Uint64(sb[20:])),
		NextID: rtree.PageID(binary.LittleEndian.Uint64(sb[28:])),
	}, nil
}

// writeMetaLocked serializes fs.meta into slot 0: backup copy first,
// then the primary, as two separate writes, so a crash tears at most
// one of them (see the superblock layout comment). Callers hold fs.mu
// (or, at open time, have exclusive access).
func (fs *FileStore) writeMetaLocked() error {
	var sb [superblockSize]byte
	copy(sb[0:4], fileMagic[:])
	sb[4] = fileVersion
	if fs.codec.Spheres {
		sb[5] = 1
	}
	binary.LittleEndian.PutUint16(sb[6:], uint16(fs.codec.Dim))
	binary.LittleEndian.PutUint32(sb[8:], uint32(fs.codec.PageSize))
	m := fs.meta //lint:allow lockcheck callers hold fs.mu or have exclusive open-time access
	binary.LittleEndian.PutUint64(sb[12:], uint64(m.Root))
	binary.LittleEndian.PutUint64(sb[20:], uint64(m.Size))
	binary.LittleEndian.PutUint64(sb[28:], uint64(m.NextID))
	binary.LittleEndian.PutUint32(sb[36:], crc32.ChecksumIEEE(sb[:36]))
	if _, err := fs.f.WriteAt(sb[:], superblockBackupOff); err != nil { //lint:allow lockcheck callers hold fs.mu or have exclusive open-time access
		return fmt.Errorf("pagestore: writing backup superblock: %w", err)
	}
	if _, err := fs.f.WriteAt(sb[:], 0); err != nil { //lint:allow lockcheck callers hold fs.mu or have exclusive open-time access
		return fmt.Errorf("pagestore: writing superblock: %w", err)
	}
	return nil
}

// WriteMeta persists new tree metadata to the superblock. It does not
// sync; pair with Sync for durability.
func (fs *FileStore) WriteMeta(m FileMeta) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.meta = m
	return fs.writeMetaLocked()
}

// Meta returns the last written tree metadata.
func (fs *FileStore) Meta() FileMeta {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.meta
}

// pageOffset maps a page id to its byte offset (slot 0 is the
// superblock; valid ids start at 1).
func (fs *FileStore) pageOffset(id rtree.PageID) (int64, error) {
	if id < 1 {
		return 0, fmt.Errorf("pagestore: page id %d out of range (slot 0 is the superblock)", id)
	}
	return int64(id) * int64(fs.codec.PageSize), nil
}

// WriteImage writes one already-encoded page image at its slot. The
// image must be exactly one page.
func (fs *FileStore) WriteImage(id rtree.PageID, buf []byte) error {
	if len(buf) != fs.codec.PageSize {
		return fmt.Errorf("pagestore: image for page %d is %d bytes, want %d", id, len(buf), fs.codec.PageSize)
	}
	off, err := fs.pageOffset(id)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, err := fs.f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("pagestore: writing page %d: %w", id, err)
	}
	if fs.counters != nil {
		fs.counters.PageWrites.Add(1)
	}
	return nil
}

// WriteNode encodes and writes a node to its page slot.
func (fs *FileStore) WriteNode(n *rtree.Node) error {
	buf, err := fs.codec.Encode(n)
	if err != nil {
		return err
	}
	return fs.WriteImage(n.ID, buf)
}

// ZeroPage overwrites a page slot with zeroes — the on-disk
// representation of a freed page (LoadPages skips slots without the
// node magic).
func (fs *FileStore) ZeroPage(id rtree.PageID) error {
	off, err := fs.pageOffset(id)
	if err != nil {
		return err
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	size, err := fs.f.Size()
	if err != nil {
		return err
	}
	if off >= size {
		return nil // never written; nothing to erase
	}
	zero := make([]byte, fs.codec.PageSize)
	if _, err := fs.f.WriteAt(zero, off); err != nil {
		return fmt.Errorf("pagestore: zeroing page %d: %w", id, err)
	}
	if fs.counters != nil {
		fs.counters.PageWrites.Add(1)
	}
	return nil
}

// ReadImage reads the raw image of one page. A short read — the slot
// lies past the end of the file, or the file was truncated mid-page —
// surfaces as an error wrapping io.ErrUnexpectedEOF, exactly what a
// real drive returning fewer bytes than asked looks like to callers.
func (fs *FileStore) ReadImage(id rtree.PageID) ([]byte, error) {
	off, err := fs.pageOffset(id)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, fs.codec.PageSize)
	fs.mu.Lock()
	m := fs.mmap
	f := fs.f
	fs.mu.Unlock()
	if end := off + int64(fs.codec.PageSize); m != nil && end <= int64(len(m)) {
		copy(buf, m[off:end])
	} else {
		n, err := f.ReadAt(buf, off)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return nil, fmt.Errorf("pagestore: short read of page %d (%d of %d bytes): %w",
					id, n, fs.codec.PageSize, io.ErrUnexpectedEOF)
			}
			return nil, fmt.Errorf("pagestore: reading page %d: %w", id, err)
		}
	}
	if fs.counters != nil {
		fs.counters.PageReads.Add(1)
	}
	return buf, nil
}

// ReadPage implements Reader: a physical page read plus decode, with
// the misdirected-read identity check (decoded id must equal the slot).
func (fs *FileStore) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	buf, err := fs.ReadImage(id)
	if err != nil {
		return nil, err
	}
	n, err := fs.codec.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("pagestore: page %d: %w", id, err)
	}
	if n.ID != id {
		return nil, &IntegrityError{Want: id, Got: n.ID}
	}
	return n, nil
}

// LoadPages scans every page slot and returns the images that hold an
// encoded node (slots without the node magic — freed or never written —
// are skipped). Used at open to rebuild the committed page set.
func (fs *FileStore) LoadPages() (map[rtree.PageID][]byte, error) {
	fs.mu.Lock()
	size, err := fs.f.Size()
	fs.mu.Unlock()
	if err != nil {
		return nil, err
	}
	pages := make(map[rtree.PageID][]byte)
	slots := size / int64(fs.codec.PageSize)
	for slot := int64(1); slot < slots; slot++ {
		id := rtree.PageID(slot)
		buf, err := fs.ReadImage(id)
		if err != nil {
			return nil, err
		}
		if buf[0] != magic {
			continue
		}
		pages[id] = buf
	}
	return pages, nil
}

// Codec returns the store's codec.
func (fs *FileStore) Codec() Codec { return fs.codec }

// Sync flushes all writes to stable storage and refreshes the read
// mapping (the file may have grown past the mapped length).
func (fs *FileStore) Sync() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if err := fs.f.Sync(); err != nil {
		return err
	}
	if fs.counters != nil {
		fs.counters.DataSyncs.Add(1)
	}
	if fs.want {
		fs.remapLocked()
	}
	return nil
}

// remapLocked (re)establishes the read-only mapping over the file's
// current length. Mapping failures silently fall back to pread — mmap
// is an optimization, never a correctness requirement. Superseded
// mappings are retired (unmapped) at Close, not here: a concurrent
// ReadImage may still be copying out of one. Callers hold fs.mu.
func (fs *FileStore) remapLocked() {
	if fs.osf == nil {
		return
	}
	size, err := fs.f.Size() //lint:allow lockcheck callers hold fs.mu
	if err != nil || size == 0 {
		return
	}
	m, err := mmapFile(fs.osf, int(size))
	if err != nil {
		return
	}
	if prev := fs.mmap; prev != nil { //lint:allow lockcheck callers hold fs.mu
		fs.old = append(fs.old, prev) //lint:allow lockcheck callers hold fs.mu
	}
	fs.mmap = m //lint:allow lockcheck callers hold fs.mu
}

// Mapped reports whether reads are currently served from an mmap.
func (fs *FileStore) Mapped() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.mmap != nil
}

// Close unmaps every mapping (current and superseded) and closes the
// file. Unmap failures don't stop the remaining cleanup; all errors
// are joined.
func (fs *FileStore) Close() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	var err error
	if fs.mmap != nil {
		err = errors.Join(err, munmap(fs.mmap))
		fs.mmap = nil
	}
	for _, m := range fs.old {
		err = errors.Join(err, munmap(m))
	}
	fs.old = nil
	return errors.Join(err, fs.f.Close())
}
