package pagestore

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
	"repro/internal/rtree"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestWALRecordRoundTrip(t *testing.T) {
	recs := []WALRecord{
		{LSN: 1, Type: WALPage, Payload: PageRecordPayload(7, make([]byte, 512))},
		{LSN: 2, Type: WALFree, Payload: FreeRecordPayload(9)},
		{LSN: 3, Type: WALCommit, Payload: CommitRecordPayload(1, 42, 10)},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendWALRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeWALRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.LSN != want.LSN || got.Type != want.Type || len(got.Payload) != len(want.Payload) {
			t.Fatalf("record %d: decoded %+v, want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Errorf("consumed %d of %d bytes", off, len(buf))
	}
}

func TestWALAppendScanTornTail(t *testing.T) {
	path := walPath(t)
	var counters obs.StorageCounters
	w, entries, err := openWAL(path, 512, &counters)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("fresh WAL returned %d entries", len(entries))
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(WALFree, FreeRecordPayload(rtree.PageID(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Cut the file at every byte length and reopen: the scan must return
	// the longest whole-record prefix, never an error, and truncate the
	// tail so appends resume cleanly.
	recLen := (len(full) - walHeaderSize) / 5
	for cut := walHeaderSize; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		w2, entries, err := openWAL(path, 512, nil)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		wantRecs := (cut - walHeaderSize) / recLen
		if len(entries) != wantRecs {
			t.Fatalf("cut %d: %d entries, want %d", cut, len(entries), wantRecs)
		}
		// Appends after a torn tail must land on a record boundary.
		if err := w2.Append(WALCommit, CommitRecordPayload(1, 1, 2)); err != nil {
			t.Fatal(err)
		}
		w2.Close()
		w3, entries3, err := openWAL(path, 512, nil)
		if err != nil {
			t.Fatalf("cut %d reopen: %v", cut, err)
		}
		if len(entries3) != wantRecs+1 {
			t.Fatalf("cut %d reopen: %d entries, want %d", cut, len(entries3), wantRecs+1)
		}
		w3.Close()
	}
}

func TestWALScanStopsAtCorruptRecord(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append(WALFree, FreeRecordPayload(rtree.PageID(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recLen := (len(raw) - walHeaderSize) / 3
	// Corrupt one payload byte of the second record.
	raw[walHeaderSize+recLen+walRecHeader] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, entries, err := openWAL(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("scan past corrupt record: %d entries, want 1", len(entries))
	}
}

func TestWALRejectsPageSizeMismatch(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, _, err := openWAL(path, 1024, nil); err == nil {
		t.Error("openWAL accepted a page-size mismatch")
	}
}

func TestWALReset(t *testing.T) {
	path := walPath(t)
	w, _, err := openWAL(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(WALFree, FreeRecordPayload(rtree.PageID(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(WALCommit, CommitRecordPayload(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, entries, err := openWAL(path, 512, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].rec.LSN != 1 {
		t.Errorf("after reset: %d entries, first LSN %d; want 1 entry at LSN 1",
			len(entries), entries[0].rec.LSN)
	}
}
