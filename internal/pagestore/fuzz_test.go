package pagestore

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// FuzzWALRecord exercises the WAL record codec from both directions:
// DecodeWALRecord must reject (never panic on) arbitrary bytes — after
// a crash the log tail can hold anything at all — and every record it
// accepts must re-encode to exactly the bytes it consumed, so replay
// and append agree on record boundaries. The synthesized direction
// pins the encoder: any record AppendWALRecord emits must decode back
// losslessly, including with trailing garbage after it.
func FuzzWALRecord(f *testing.F) {
	// One genuine record of each type so coverage starts past the
	// checksum, plus classic crash tails.
	for _, rec := range []WALRecord{
		{LSN: 1, Type: WALPage, Payload: PageRecordPayload(3, make([]byte, 64))},
		{LSN: 2, Type: WALFree, Payload: FreeRecordPayload(9)},
		{LSN: 3, Type: WALCommit, Payload: CommitRecordPayload(1, 100, 17)},
	} {
		f.Add(AppendWALRecord(nil, rec))
	}
	f.Add([]byte{})
	f.Add(make([]byte, walRecHeader+walRecTrailer)) // zeroed minimal record
	torn := AppendWALRecord(nil, WALRecord{LSN: 4, Type: WALCommit, Payload: CommitRecordPayload(2, 5, 6)})
	f.Add(torn[:len(torn)-3]) // torn trailer

	f.Fuzz(func(t *testing.T, data []byte) {
		// Direction 1: arbitrary bytes. A successful decode must be an
		// exact fixpoint over the consumed prefix.
		if rec, n, err := DecodeWALRecord(data); err == nil {
			if n < walRecHeader+walRecTrailer || n > len(data) {
				t.Fatalf("decode consumed %d of %d bytes", n, len(data))
			}
			buf := AppendWALRecord(nil, rec)
			if !bytes.Equal(buf, data[:n]) {
				t.Fatalf("re-encode is not a fixpoint:\n% x\n% x", buf, data[:n])
			}
		} else if !IsTornWALRecord(err) {
			t.Fatalf("decode error is not a torn-record error: %v", err)
		}

		// Direction 2: synthesize a record from the input stream and
		// require a lossless round trip, with and without a garbage tail.
		rd := bytes.NewReader(data)
		next := func() uint64 {
			var b [8]byte
			io.ReadFull(rd, b[:]) // zero-pads at EOF
			return binary.LittleEndian.Uint64(b[:])
		}
		types := []byte{WALPage, WALFree, WALCommit}
		rec := WALRecord{LSN: next(), Type: types[next()%3]}
		plen := int(next() % 256)
		rec.Payload = make([]byte, plen)
		io.ReadFull(rd, rec.Payload)
		buf := AppendWALRecord(nil, rec)
		for _, tail := range [][]byte{nil, {0xFF, 0x00, 0xA5}} {
			got, n, err := DecodeWALRecord(append(append([]byte(nil), buf...), tail...))
			if err != nil {
				t.Fatalf("decode of encoded record failed: %v", err)
			}
			if n != len(buf) {
				t.Fatalf("decode consumed %d bytes, record is %d", n, len(buf))
			}
			if got.LSN != rec.LSN || got.Type != rec.Type || !bytes.Equal(got.Payload, rec.Payload) {
				t.Fatalf("round trip changed record: got %+v, want %+v", got, rec)
			}
		}
	})
}

// FuzzPageCodec exercises the page codec from both directions: Decode
// must reject (never panic on) arbitrary byte images, and every node
// the harness synthesizes must survive Encode → Decode → Encode with a
// bit-identical page image. The second Encode pins the codec as a
// fixpoint: any field Decode drops or rewrites shows up as a byte diff.
func FuzzPageCodec(f *testing.F) {
	// A genuine version-1 page for each shape so coverage starts past
	// the header checks.
	for _, spheres := range []bool{false, true} {
		c := Codec{Dim: 2, PageSize: 256, Spheres: spheres}
		n := &rtree.Node{ID: 7, Level: 0, Entries: []rtree.Entry{{
			Rect:   geom.Rect{Lo: geom.Point{0, 1}, Hi: geom.Point{2, 3}},
			Object: 42, Count: 1,
			Sphere: geom.Sphere{Center: geom.Point{1, 2}, Radius: 1.5},
		}}}
		if !spheres {
			n.Entries[0].Sphere = geom.Sphere{}
		}
		buf, err := c.Encode(n)
		if err != nil {
			f.Fatalf("seed encode: %v", err)
		}
		f.Add(buf, byte(1), spheres)
	}
	f.Add([]byte{}, byte(0), false)
	f.Add([]byte{magic, versionRect, 0, 0, 255, 255}, byte(0), false) // truncated header

	f.Fuzz(func(t *testing.T, data []byte, dimByte byte, spheres bool) {
		dim := 1 + int(dimByte)%8
		c := Codec{Dim: dim, PageSize: 512, Spheres: spheres}

		// Direction 1: arbitrary bytes. Decode must return an error or a
		// node; any successfully decoded node must re-encode and decode
		// to the same page image.
		if n, err := c.Decode(data); err == nil {
			buf, err := c.Encode(n)
			if err != nil {
				t.Fatalf("re-encode of decoded node failed: %v", err)
			}
			n2, err := c.Decode(buf)
			if err != nil {
				t.Fatalf("decode of re-encoded page failed: %v", err)
			}
			buf2, err := c.Encode(n2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if !bytes.Equal(buf, buf2) {
				t.Fatalf("encode is not a fixpoint:\n% x\n% x", buf, buf2)
			}
		}

		// Direction 2: synthesize a structurally valid node from the
		// input stream and require a lossless round trip.
		rd := bytes.NewReader(data)
		next := func() uint64 {
			var b [8]byte
			io.ReadFull(rd, b[:]) // zero-pads at EOF
			return binary.LittleEndian.Uint64(b[:])
		}
		coord := func() float64 { return float64(int16(next())) / 16 }

		level := int(next() % 3)
		count := int(next() % uint64(c.Capacity()+1))
		n := &rtree.Node{ID: rtree.PageID(next()%(1<<30) + 1), Level: level}
		for i := 0; i < count; i++ {
			lo := make(geom.Point, dim)
			hi := make(geom.Point, dim)
			for d := range lo {
				a, b := coord(), coord()
				if a > b {
					a, b = b, a
				}
				lo[d], hi[d] = a, b
			}
			e := rtree.Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Count: int(next() % (1 << 31))}
			if level == 0 {
				e.Object = rtree.ObjectID(next())
			} else {
				e.Child = rtree.PageID(next() % (1 << 30))
			}
			if spheres {
				center := make(geom.Point, dim)
				for d := range center {
					center[d] = coord()
				}
				e.Sphere = geom.Sphere{Center: center, Radius: float64(next()%4096) / 16}
			}
			n.Entries = append(n.Entries, e)
		}

		buf, err := c.Encode(n)
		if err != nil {
			t.Fatalf("encode of synthesized node failed: %v", err)
		}
		if len(buf) != c.PageSize {
			t.Fatalf("encoded page is %d bytes, want %d", len(buf), c.PageSize)
		}
		n2, err := c.Decode(buf)
		if err != nil {
			t.Fatalf("decode of synthesized page failed: %v", err)
		}
		if n2.ID != n.ID || n2.Level != n.Level || len(n2.Entries) != len(n.Entries) {
			t.Fatalf("round trip changed header: got (%d,%d,%d), want (%d,%d,%d)",
				n2.ID, n2.Level, len(n2.Entries), n.ID, n.Level, len(n.Entries))
		}
		buf2, err := c.Encode(n2)
		if err != nil {
			t.Fatalf("re-encode of round-tripped node failed: %v", err)
		}
		if !bytes.Equal(buf, buf2) {
			t.Fatalf("round trip is not lossless:\n% x\n% x", buf, buf2)
		}
	})
}
