package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"sync"

	"repro/internal/bufferpool"
	"repro/internal/obs"
	"repro/internal/rtree"
)

// DurableStore is the crash-safe rtree.Store: a decoded working set in
// memory, a FileStore holding the checkpointed pages, and a WAL holding
// everything committed since. Mutations (Allocate/Update/Free) stage in
// memory; Commit makes a batch durable (WAL append + one fsync) and
// publishes it to readers as a new epoch; Checkpoint folds the
// committed state into the data file and resets the WAL.
//
// Epoch isolation: readers obtain an immutable *EpochView via Snapshot
// and read a frozen page set — a tree mid-split never shows readers a
// torn parent/child pair, because splits only become visible at the
// Commit that publishes both halves atomically. Once an epoch has been
// handed to a reader its page map is never mutated again; the next
// Commit copies it (copy-on-write at commit granularity).
//
// Recovery: OpenDurable loads the checkpointed pages, then replays the
// WAL's committed batches in LSN order (redo only — every record is
// idempotent, so replaying after a crash mid-checkpoint is safe), and
// truncates whatever follows the last commit record.
type DurableStore struct {
	codec    Codec
	fs       *FileStore
	wal      *WAL
	counters *obs.StorageCounters

	mu         sync.RWMutex
	nodes      map[rtree.PageID]*rtree.Node // decoded working set; guarded by mu
	dirty      map[rtree.PageID][]byte      // staged images since last Commit; guarded by mu
	freedStage map[rtree.PageID]bool        // staged frees since last Commit; guarded by mu
	cur        *storeEpoch                  // committed state; guarded by mu
	ckptDirty  map[rtree.PageID]bool        // committed but not yet checkpointed; guarded by mu
	ckptFreed  map[rtree.PageID]bool        // freed since last checkpoint; guarded by mu
	nextID     rtree.PageID                 // guarded by mu
}

// storeEpoch is one committed, immutable-once-shared version of the
// page set. pinned flips to true the first time a reader snapshots it;
// from then on Commit clones instead of mutating.
type storeEpoch struct {
	pages  map[rtree.PageID][]byte
	root   rtree.PageID
	size   int
	pinned bool
}

// DurableOptions configures OpenDurable. The zero value is valid.
type DurableOptions struct {
	// Mmap enables the FileStore's mapped read path.
	Mmap bool
	// Counters, when non-nil, receives all storage telemetry.
	Counters *obs.StorageCounters
}

// Standard file names inside a DurableStore directory.
const (
	DataFileName = "pages.db"
	WALFileName  = "wal.log"
)

// OpenDurable opens (creating if absent) the store rooted at dir,
// running crash recovery if the WAL holds committed batches.
func OpenDurable(dir string, codec Codec, opts DurableOptions) (*DurableStore, error) {
	fs, err := OpenFileStore(filepath.Join(dir, DataFileName), codec, FileStoreOptions{
		Mmap: opts.Mmap, Counters: opts.Counters,
	})
	if err != nil {
		return nil, err
	}
	w, entries, err := openWAL(filepath.Join(dir, WALFileName), codec.PageSize, opts.Counters)
	if err != nil {
		return nil, errors.Join(err, fs.Close())
	}
	s, err := newDurable(fs, w, entries, opts.Counters)
	if err != nil {
		return nil, errors.Join(err, w.Close(), fs.Close())
	}
	return s, nil
}

// OpenDurableOn assembles a store over caller-supplied block files —
// the dependency-injection seam the crash-recovery torture tests use to
// run the full commit/checkpoint/recover protocol against in-memory
// files that tear their writes at programmed sync points. No mmap
// (that needs a real OS file).
func OpenDurableOn(data, wal BlockFile, codec Codec, opts DurableOptions) (*DurableStore, error) {
	fs, err := NewFileStoreOn(data, codec, FileStoreOptions{Counters: opts.Counters})
	if err != nil {
		return nil, err
	}
	w, entries, err := newWAL(wal, codec.PageSize, opts.Counters)
	if err != nil {
		return nil, err
	}
	return newDurable(fs, w, entries, opts.Counters)
}

// newDurable assembles the store and performs WAL replay (the crash
// tests call it directly over in-memory crash files).
func newDurable(fs *FileStore, w *WAL, entries []walEntry, counters *obs.StorageCounters) (*DurableStore, error) {
	pages, err := fs.LoadPages()
	if err != nil {
		return nil, err
	}
	meta := fs.Meta()
	nextID := meta.NextID
	if nextID < 1 {
		nextID = 1
	}
	s := &DurableStore{
		codec:    fs.Codec(),
		fs:       fs,
		wal:      w,
		counters: counters,
		nodes:    make(map[rtree.PageID]*rtree.Node),
		dirty:    make(map[rtree.PageID][]byte),

		freedStage: make(map[rtree.PageID]bool),
		ckptDirty:  make(map[rtree.PageID]bool),
		ckptFreed:  make(map[rtree.PageID]bool),
		cur:        &storeEpoch{pages: pages, root: meta.Root, size: meta.Size},
		nextID:     nextID,
	}
	if err := s.replay(entries); err != nil {
		return nil, err
	}
	if err := s.materialize(); err != nil {
		return nil, err
	}
	return s, nil
}

// materialize decodes the recovered page set into the working-set node
// map, with the misdirected-read identity check on every slot.
func (s *DurableStore) materialize() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]rtree.PageID, 0, len(s.cur.pages))
	for id := range s.cur.pages {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		n, err := s.codec.Decode(s.cur.pages[id])
		if err != nil {
			return fmt.Errorf("pagestore: recovering page %d: %w", id, err)
		}
		if n.ID != id {
			return &IntegrityError{Want: id, Got: n.ID}
		}
		s.nodes[id] = n
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}
	// A committed tree whose root was still an empty fresh node has no
	// root image; synthesize the empty node so rtree.Restore can walk.
	if s.cur.root != 0 {
		if _, ok := s.nodes[s.cur.root]; !ok && s.cur.size == 0 {
			s.nodes[s.cur.root] = &rtree.Node{ID: s.cur.root}
		}
	}
	return nil
}

// replay applies the WAL's committed batches to the base page set and
// truncates the log past the last commit record. Runs at open, before
// the store is shared; it takes the lock anyway to keep the locking
// discipline uniform.
func (s *DurableStore) replay(entries []walEntry) error {
	if len(entries) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.counters != nil {
		s.counters.Recoveries.Add(1)
	}
	staged := make(map[rtree.PageID][]byte)
	var stagedIDs []rtree.PageID // insertion order: replay preserves LSN order
	freed := make(map[rtree.PageID]bool)
	var freedIDs []rtree.PageID
	lastCommit := -1
	for i, e := range entries {
		rec := e.rec
		switch rec.Type {
		case WALPage:
			if len(rec.Payload) != 8+s.codec.PageSize {
				return fmt.Errorf("pagestore: WAL page record lsn %d: payload %d bytes, want %d",
					rec.LSN, len(rec.Payload), 8+s.codec.PageSize)
			}
			id := rtree.PageID(binary.LittleEndian.Uint64(rec.Payload))
			if _, ok := staged[id]; !ok {
				stagedIDs = append(stagedIDs, id)
			}
			staged[id] = rec.Payload[8:]
			delete(freed, id)
		case WALFree:
			if len(rec.Payload) != 8 {
				return fmt.Errorf("pagestore: WAL free record lsn %d: payload %d bytes, want 8",
					rec.LSN, len(rec.Payload))
			}
			id := rtree.PageID(binary.LittleEndian.Uint64(rec.Payload))
			if !freed[id] {
				freedIDs = append(freedIDs, id)
			}
			freed[id] = true
			delete(staged, id)
		case WALCommit:
			if len(rec.Payload) != 24 {
				return fmt.Errorf("pagestore: WAL commit record lsn %d: payload %d bytes, want 24",
					rec.LSN, len(rec.Payload))
			}
			for _, id := range stagedIDs {
				img, ok := staged[id]
				if !ok {
					continue // freed later in the same batch
				}
				s.cur.pages[id] = img
				s.ckptDirty[id] = true
				delete(s.ckptFreed, id)
			}
			for _, id := range freedIDs {
				if !freed[id] {
					continue // re-written later in the same batch
				}
				delete(s.cur.pages, id)
				delete(s.ckptDirty, id)
				s.ckptFreed[id] = true
			}
			s.cur.root = rtree.PageID(binary.LittleEndian.Uint64(rec.Payload[0:]))
			s.cur.size = int(binary.LittleEndian.Uint64(rec.Payload[8:]))
			s.nextID = rtree.PageID(binary.LittleEndian.Uint64(rec.Payload[16:]))
			staged = make(map[rtree.PageID][]byte)
			stagedIDs = stagedIDs[:0]
			freed = make(map[rtree.PageID]bool)
			freedIDs = freedIDs[:0]
			lastCommit = i
		}
		if s.counters != nil {
			s.counters.ReplayedRecords.Add(1)
		}
	}
	// Drop everything after the last commit: those records belong to a
	// batch whose commit never became durable.
	if lastCommit < len(entries)-1 {
		end := int64(walHeaderSize)
		nextLSN := uint64(1)
		if lastCommit >= 0 {
			end = entries[lastCommit].end
			nextLSN = entries[lastCommit].rec.LSN + 1
		}
		if err := s.wal.rewind(end, nextLSN); err != nil {
			return fmt.Errorf("pagestore: rewinding WAL past last commit: %w", err)
		}
	}
	return nil
}

// Codec returns the store's codec.
func (s *DurableStore) Codec() Codec { return s.codec }

// Get implements rtree.Store.
func (s *DurableStore) Get(id rtree.PageID) *rtree.Node {
	s.mu.RLock()
	n, ok := s.nodes[id]
	s.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("pagestore: unknown page %d", id))
	}
	return n
}

// Allocate implements rtree.Store.
func (s *DurableStore) Allocate(level int) *rtree.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &rtree.Node{ID: s.nextID, Level: level}
	s.nextID++
	s.nodes[n.ID] = n
	return n
}

// Update implements rtree.Store: the node re-encodes into a staged
// image that the next Commit logs and publishes. Encoding failure
// panics (capacity misconfiguration, a programming error).
func (s *DurableStore) Update(n *rtree.Node) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n.InvalidateFlat()
	buf, err := s.codec.Encode(n)
	if err != nil {
		panic(err)
	}
	s.dirty[n.ID] = buf
	delete(s.freedStage, n.ID)
}

// Free implements rtree.Store.
func (s *DurableStore) Free(id rtree.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.nodes, id)
	delete(s.dirty, id)
	s.freedStage[id] = true
}

// Len implements rtree.Store.
func (s *DurableStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// Commit makes every staged mutation durable and visible: page and
// free records append to the WAL in sorted page order, a commit record
// carrying the tree metadata terminates the batch, one WAL fsync makes
// it the new durable state, and the staged images publish as a fresh
// reader epoch. root and size are the tree's post-batch metadata
// (tree.Root(), tree.Len()).
func (s *DurableStore) Commit(root rtree.PageID, size int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// The root must always have a durable image, or recovery cannot
	// rebuild the tree. A fresh empty root never saw Update — encode it
	// on the spot.
	if root != 0 {
		_, inDirty := s.dirty[root]
		_, inEpoch := s.cur.pages[root]
		if !inDirty && !inEpoch {
			if n, ok := s.nodes[root]; ok {
				buf, err := s.codec.Encode(n)
				if err != nil {
					return err
				}
				s.dirty[root] = buf
			}
		}
	}
	dirtyIDs := make([]rtree.PageID, 0, len(s.dirty))
	for id := range s.dirty {
		dirtyIDs = append(dirtyIDs, id)
	}
	slices.Sort(dirtyIDs)
	freedIDs := make([]rtree.PageID, 0, len(s.freedStage))
	for id := range s.freedStage {
		freedIDs = append(freedIDs, id)
	}
	slices.Sort(freedIDs)

	for _, id := range dirtyIDs {
		if err := s.wal.Append(WALPage, PageRecordPayload(id, s.dirty[id])); err != nil {
			return err
		}
	}
	for _, id := range freedIDs {
		if err := s.wal.Append(WALFree, FreeRecordPayload(id)); err != nil {
			return err
		}
	}
	if err := s.wal.Append(WALCommit, CommitRecordPayload(root, size, s.nextID)); err != nil {
		return err
	}
	if err := s.wal.Sync(); err != nil {
		return err
	}

	// Durable; now publish. If a reader pinned the current epoch, copy
	// it — their view must stay frozen.
	target := s.cur
	if target.pinned {
		clone := make(map[rtree.PageID][]byte, len(target.pages))
		for id, img := range target.pages {
			clone[id] = img
		}
		target = &storeEpoch{pages: clone}
		s.cur = target
	}
	for _, id := range dirtyIDs {
		target.pages[id] = s.dirty[id]
		s.ckptDirty[id] = true
		delete(s.ckptFreed, id)
	}
	for _, id := range freedIDs {
		delete(target.pages, id)
		delete(s.ckptDirty, id)
		s.ckptFreed[id] = true
	}
	target.root = root
	target.size = size
	s.dirty = make(map[rtree.PageID][]byte)
	s.freedStage = make(map[rtree.PageID]bool)
	return nil
}

// Checkpoint folds every committed-since-last-checkpoint page into the
// data file, zeroes freed slots, persists the tree metadata, fsyncs,
// and resets the WAL. Crash-safe at any point: until the WAL reset the
// log still holds every batch, and redo replay over an arbitrarily
// partial checkpoint converges to the same state (records are
// idempotent page images).
func (s *DurableStore) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]rtree.PageID, 0, len(s.ckptDirty))
	for id := range s.ckptDirty {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	for _, id := range ids {
		img, ok := s.cur.pages[id]
		if !ok {
			continue
		}
		if err := s.fs.WriteImage(id, img); err != nil {
			return err
		}
	}
	freed := make([]rtree.PageID, 0, len(s.ckptFreed))
	for id := range s.ckptFreed {
		freed = append(freed, id)
	}
	slices.Sort(freed)
	for _, id := range freed {
		if err := s.fs.ZeroPage(id); err != nil {
			return err
		}
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	if err := s.fs.WriteMeta(FileMeta{Root: s.cur.root, Size: s.cur.size, NextID: s.nextID}); err != nil {
		return err
	}
	if err := s.fs.Sync(); err != nil {
		return err
	}
	if err := s.wal.Reset(); err != nil {
		return err
	}
	s.ckptDirty = make(map[rtree.PageID]bool)
	s.ckptFreed = make(map[rtree.PageID]bool)
	if s.counters != nil {
		s.counters.Checkpoints.Add(1)
	}
	return nil
}

// Meta returns the committed tree metadata (what recovery would
// restore right now).
func (s *DurableStore) Meta() FileMeta {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return FileMeta{Root: s.cur.root, Size: s.cur.size, NextID: s.nextID}
}

// Snapshot pins the current committed epoch and returns an immutable
// reader over it. The view stays valid (and frozen) across any number
// of later Commits; it costs the next Commit one page-map copy.
func (s *DurableStore) Snapshot() *EpochView {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cur.pinned = true
	return &EpochView{codec: s.codec, epoch: s.cur}
}

// ReadPage implements Reader against the committed epoch: uncommitted
// staged pages are invisible, exactly like a reader that snapshotted
// this instant.
func (s *DurableStore) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	s.mu.RLock()
	buf, ok := s.cur.pages[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pagestore: page %d not in committed epoch", id)
	}
	return decodeChecked(s.codec, id, buf)
}

// VerifyShadow checks every working-set node against its most recent
// encoded image (staged if present, else committed), bitwise.
func (s *DurableStore) VerifyShadow() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, n := range s.nodes {
		buf, ok := s.dirty[id]
		if !ok {
			buf, ok = s.cur.pages[id]
		}
		if !ok {
			if len(n.Entries) != 0 {
				return fmt.Errorf("pagestore: page %d has entries but no encoded image", id)
			}
			continue
		}
		if err := verifyShadowNode(s.codec, n, buf); err != nil {
			return err
		}
	}
	return nil
}

// Close closes the WAL and the data file. It does not commit or
// checkpoint — callers decide what the final durable state is.
func (s *DurableStore) Close() error {
	return errors.Join(s.wal.Close(), s.fs.Close())
}

// decodeChecked decodes an image and enforces the misdirected-read
// identity check.
func decodeChecked(codec Codec, id rtree.PageID, buf []byte) (*rtree.Node, error) {
	n, err := codec.Decode(buf)
	if err != nil {
		return nil, fmt.Errorf("pagestore: page %d: %w", id, err)
	}
	if n.ID != id {
		return nil, &IntegrityError{Want: id, Got: n.ID}
	}
	return n, nil
}

// EpochView is an immutable reader over one committed epoch. Safe for
// concurrent use; decoded nodes are optionally cached (WithCache).
type EpochView struct {
	codec Codec
	epoch *storeEpoch
	cache *bufferpool.Sharded[rtree.PageID, *rtree.Node]
}

// WithCache attaches a decoded-page cache (singleflight LRU) to the
// view and returns it. Each view owns its cache: page ids are not
// stable keys across epochs.
func (v *EpochView) WithCache(capacity, shards int) *EpochView {
	v.cache = bufferpool.NewSharded[rtree.PageID, *rtree.Node](capacity, shards, func(id rtree.PageID) uint64 {
		return uint64(id) * 0x9E3779B97F4A7C15
	})
	return v
}

// Root returns the epoch's root page.
func (v *EpochView) Root() rtree.PageID { return v.epoch.root }

// Size returns the epoch's object count.
func (v *EpochView) Size() int { return v.epoch.size }

// Pages returns the number of pages in the epoch.
func (v *EpochView) Pages() int { return len(v.epoch.pages) }

// ReadPage implements Reader over the frozen page set.
func (v *EpochView) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	if v.cache != nil {
		return v.cache.GetOrFetch(id, func() (*rtree.Node, error) {
			return v.decode(id)
		})
	}
	return v.decode(id)
}

func (v *EpochView) decode(id rtree.PageID) (*rtree.Node, error) {
	buf, ok := v.epoch.pages[id]
	if !ok {
		return nil, fmt.Errorf("pagestore: page %d not in epoch", id)
	}
	return decodeChecked(v.codec, id, buf)
}
