package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"repro/internal/obs"
	"repro/internal/rtree"
)

// Write-ahead log. Every tree mutation batch (one Commit of the
// DurableStore) appends its page images, its frees and a terminating
// commit record, then fsyncs once — the classic redo log protocol: a
// crash at any byte offset leaves a prefix of whole records plus at
// most one torn tail, and replay applies exactly the batches whose
// commit record survived. Records are individually checksummed so a
// torn or bit-flipped tail is detected, not replayed.
//
// File layout:
//
//	header (12 bytes):
//	  offset 0  4 bytes  magic "SQWL"
//	  offset 4  uint8    version (1)
//	  offset 5  3 bytes  reserved (zero)
//	  offset 8  uint32   page size
//	records, back to back; each record is
//	  offset 0   uint64  LSN (1-based, contiguous within the log)
//	  offset 8   uint8   type (WALPage, WALFree, WALCommit)
//	  offset 9   3 bytes reserved (zero)
//	  offset 12  uint32  payload length
//	  offset 16  payload
//	  last 4     uint32  IEEE CRC-32 of everything before it
//
// Payloads:
//
//	WALPage:   uint64 page id + the encoded page image (PageSize bytes)
//	WALFree:   uint64 page id
//	WALCommit: uint64 root page id + uint64 object count + uint64 next id
var walMagic = [4]byte{'S', 'Q', 'W', 'L'}

const (
	walVersion    = 1
	walHeaderSize = 12
	walRecHeader  = 16
	walRecTrailer = 4
	maxWALPayload = 1 << 24 // sanity bound; pages are a few KiB
)

// WAL record types.
const (
	WALPage   byte = 1 // a page image staged for the next commit
	WALFree   byte = 2 // a page freed by the next commit
	WALCommit byte = 3 // commit point: root / size / next id
)

// WALRecord is one decoded log record.
type WALRecord struct {
	LSN     uint64
	Type    byte
	Payload []byte
}

// AppendWALRecord serializes rec and appends it to buf, returning the
// extended slice. The inverse of DecodeWALRecord.
func AppendWALRecord(buf []byte, rec WALRecord) []byte {
	start := len(buf)
	var hdr [walRecHeader]byte
	binary.LittleEndian.PutUint64(hdr[0:], rec.LSN)
	hdr[8] = rec.Type
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(rec.Payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, rec.Payload...)
	sum := crc32.ChecksumIEEE(buf[start:])
	var tr [walRecTrailer]byte
	binary.LittleEndian.PutUint32(tr[:], sum)
	return append(buf, tr[:]...)
}

// errTornRecord marks a record that is incomplete or fails its
// checksum — the expected state of a log's final record after a crash,
// and the point where replay stops.
var errTornRecord = errors.New("pagestore: torn or corrupt WAL record")

// DecodeWALRecord decodes one record from the front of buf, returning
// the record and the number of bytes it occupied. A short buffer or a
// checksum mismatch returns errTornRecord (matchable with errors.Is via
// IsTornWALRecord); structurally impossible records (absurd payload
// length, unknown type) are also torn — after a crash the tail can hold
// any bytes at all.
func DecodeWALRecord(buf []byte) (WALRecord, int, error) {
	if len(buf) < walRecHeader+walRecTrailer {
		return WALRecord{}, 0, errTornRecord
	}
	plen := int(binary.LittleEndian.Uint32(buf[12:]))
	if plen > maxWALPayload {
		return WALRecord{}, 0, fmt.Errorf("%w: payload length %d", errTornRecord, plen)
	}
	total := walRecHeader + plen + walRecTrailer
	if len(buf) < total {
		return WALRecord{}, 0, errTornRecord
	}
	sum := crc32.ChecksumIEEE(buf[:walRecHeader+plen])
	if got := binary.LittleEndian.Uint32(buf[walRecHeader+plen:]); got != sum {
		return WALRecord{}, 0, fmt.Errorf("%w: checksum 0x%08x, want 0x%08x", errTornRecord, got, sum)
	}
	rec := WALRecord{
		LSN:  binary.LittleEndian.Uint64(buf[0:]),
		Type: buf[8],
	}
	if rec.Type != WALPage && rec.Type != WALFree && rec.Type != WALCommit {
		return WALRecord{}, 0, fmt.Errorf("%w: unknown record type %d", errTornRecord, rec.Type)
	}
	rec.Payload = make([]byte, plen)
	copy(rec.Payload, buf[walRecHeader:walRecHeader+plen])
	return rec, total, nil
}

// IsTornWALRecord reports whether err marks a torn/corrupt record (the
// normal crash tail, as opposed to an I/O failure).
func IsTornWALRecord(err error) bool { return errors.Is(err, errTornRecord) }

// PageRecordPayload builds a WALPage payload.
func PageRecordPayload(id rtree.PageID, image []byte) []byte {
	p := make([]byte, 8+len(image))
	binary.LittleEndian.PutUint64(p, uint64(id))
	copy(p[8:], image)
	return p
}

// FreeRecordPayload builds a WALFree payload.
func FreeRecordPayload(id rtree.PageID) []byte {
	p := make([]byte, 8)
	binary.LittleEndian.PutUint64(p, uint64(id))
	return p
}

// CommitRecordPayload builds a WALCommit payload.
func CommitRecordPayload(root rtree.PageID, size int, nextID rtree.PageID) []byte {
	p := make([]byte, 24)
	binary.LittleEndian.PutUint64(p[0:], uint64(root))
	binary.LittleEndian.PutUint64(p[8:], uint64(size))
	binary.LittleEndian.PutUint64(p[16:], uint64(nextID))
	return p
}

// walEntry is a parsed record plus the file offset just past it, so
// recovery can truncate the log back to any record boundary.
type walEntry struct {
	rec WALRecord
	end int64
}

// WAL is an append-only redo log over a block file. Safe for
// concurrent use, though the DurableStore serializes appends itself.
type WAL struct {
	counters *obs.StorageCounters
	pageSize int

	mu      sync.Mutex
	f       BlockFile // guarded by mu
	end     int64     // append offset; guarded by mu
	nextLSN uint64    // guarded by mu
}

// openWAL opens (creating if absent) the log at path, scans it, and
// discards any torn tail. The returned entries are the surviving whole
// records in order; the DurableStore replays the committed prefix.
func openWAL(path string, pageSize int, counters *obs.StorageCounters) (*WAL, []walEntry, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	w, entries, err := newWAL(osBlockFile{f: f}, pageSize, counters)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	return w, entries, nil
}

// newWAL builds a WAL over an arbitrary block file (the crash-test
// seam) and performs the open-time scan.
func newWAL(f BlockFile, pageSize int, counters *obs.StorageCounters) (*WAL, []walEntry, error) {
	w := &WAL{counters: counters, pageSize: pageSize, f: f}
	// Open-time: not shared yet, locked anyway for a uniform discipline.
	w.mu.Lock()
	defer w.mu.Unlock()
	size, err := f.Size()
	if err != nil {
		return nil, nil, err
	}
	if size == 0 {
		if err := w.writeHeaderLocked(); err != nil {
			return nil, nil, err
		}
		w.end = walHeaderSize
		w.nextLSN = 1
		return w, nil, nil
	}
	buf := make([]byte, size)
	if n, err := f.ReadAt(buf, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, nil, fmt.Errorf("pagestore: reading WAL: %w", err)
	} else {
		buf = buf[:n]
	}
	if len(buf) < walHeaderSize {
		// A header torn mid-write: the log never held a record.
		if err := w.resetFileLocked(); err != nil {
			return nil, nil, err
		}
		return w, nil, nil
	}
	if [4]byte(buf[0:4]) != walMagic {
		return nil, nil, fmt.Errorf("pagestore: bad WAL magic %q", buf[0:4])
	}
	if buf[4] != walVersion {
		return nil, nil, fmt.Errorf("pagestore: WAL version %d, want %d", buf[4], walVersion)
	}
	if ps := int(binary.LittleEndian.Uint32(buf[8:])); ps != pageSize {
		return nil, nil, fmt.Errorf("pagestore: WAL page size %d, codec page size %d", ps, pageSize)
	}
	var entries []walEntry
	off := int64(walHeaderSize)
	wantLSN := uint64(1)
	for int(off) < len(buf) {
		rec, n, err := DecodeWALRecord(buf[off:])
		if err != nil || rec.LSN != wantLSN {
			// Torn tail (or garbage past a crash point): stop here and
			// truncate it away so future appends extend a clean prefix.
			break
		}
		off += int64(n)
		wantLSN++
		entries = append(entries, walEntry{rec: rec, end: off})
	}
	if off < size {
		if err := f.Truncate(off); err != nil {
			return nil, nil, fmt.Errorf("pagestore: truncating torn WAL tail: %w", err)
		}
	}
	w.end = off
	w.nextLSN = wantLSN
	return w, entries, nil
}

// writeHeaderLocked writes the log header at offset 0. Callers hold
// w.mu or have exclusive open-time access.
func (w *WAL) writeHeaderLocked() error {
	var hdr [walHeaderSize]byte
	copy(hdr[0:4], walMagic[:])
	hdr[4] = walVersion
	binary.LittleEndian.PutUint32(hdr[8:], uint32(w.pageSize))
	if _, err := w.f.WriteAt(hdr[:], 0); err != nil { //lint:allow lockcheck callers hold w.mu or have exclusive open-time access
		return fmt.Errorf("pagestore: writing WAL header: %w", err)
	}
	return nil
}

// resetFileLocked truncates the log to an empty (header-only) state.
// Callers hold w.mu or have exclusive open-time access.
func (w *WAL) resetFileLocked() error {
	if err := w.f.Truncate(0); err != nil { //lint:allow lockcheck callers hold w.mu or have exclusive open-time access
		return err
	}
	if err := w.writeHeaderLocked(); err != nil {
		return err
	}
	w.end = walHeaderSize //lint:allow lockcheck callers hold w.mu or have exclusive open-time access
	w.nextLSN = 1         //lint:allow lockcheck callers hold w.mu or have exclusive open-time access
	return nil
}

// Append writes one record (assigning it the next LSN) without
// syncing. Durability requires a following Sync — the commit protocol
// appends the whole batch, then syncs once.
func (w *WAL) Append(typ byte, payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	rec := WALRecord{LSN: w.nextLSN, Type: typ, Payload: payload}
	buf := AppendWALRecord(nil, rec)
	if _, err := w.f.WriteAt(buf, w.end); err != nil {
		return fmt.Errorf("pagestore: appending WAL record lsn %d: %w", rec.LSN, err)
	}
	w.end += int64(len(buf))
	w.nextLSN++
	if w.counters != nil {
		w.counters.WALAppends.Add(1)
	}
	return nil
}

// Sync makes all appended records durable: the commit point.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.counters != nil {
		w.counters.WALSyncs.Add(1)
	}
	return nil
}

// Reset discards the whole log — valid only after a checkpoint has
// made every committed batch durable in the data file.
func (w *WAL) Reset() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.resetFileLocked()
}

// rewind truncates the log back to a record boundary (end offset of the
// last record to keep, with nextLSN the LSN that follows it). The
// DurableStore uses it at open to drop records after the last commit.
func (w *WAL) rewind(end int64, nextLSN uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.f.Truncate(end); err != nil {
		return err
	}
	w.end = end
	w.nextLSN = nextLSN
	return nil
}

// Close closes the underlying file.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.f.Close()
}
