package pagestore

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

const durableTestPage = 512

func durableCodec() Codec { return Codec{Dim: 2, PageSize: durableTestPage} }

func openDurableT(t *testing.T, dir string, counters *obs.StorageCounters) *DurableStore {
	t.Helper()
	ds, err := OpenDurable(dir, durableCodec(), DurableOptions{Counters: counters})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func treeOver(t *testing.T, store rtree.Store) *rtree.Tree {
	t.Helper()
	tr, err := rtree.New(rtree.Config{Dim: 2, MaxEntries: durableCodec().Capacity()}, store)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// sameKNN asserts bit-identical k-NN results (object AND distance).
func sameKNN(t *testing.T, label string, a, b *rtree.Tree, q geom.Point, k int) {
	t.Helper()
	ra, _ := a.NearestNeighbors(q, k)
	rb, _ := b.NearestNeighbors(q, k)
	if len(ra) != len(rb) {
		t.Fatalf("%s: %d vs %d results", label, len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].Object != rb[i].Object ||
			math.Float64bits(ra[i].DistSq) != math.Float64bits(rb[i].DistSq) {
			t.Fatalf("%s: result %d differs: %v/%x vs %v/%x",
				label, i, ra[i].Object, math.Float64bits(ra[i].DistSq),
				rb[i].Object, math.Float64bits(rb[i].DistSq))
		}
	}
}

// Build, commit, checkpoint, reopen: the restored tree is the committed
// tree, bit for bit.
func TestDurableStoreReopen(t *testing.T) {
	dir := t.TempDir()
	var counters obs.StorageCounters
	ds := openDurableT(t, dir, &counters)
	tr := treeOver(t, ds)
	model := treeOver(t, rtree.NewMemStore())

	rnd := rand.New(rand.NewSource(11))
	pts := make([]geom.Point, 400)
	for i := range pts {
		pts[i] = geom.Point{rnd.Float64() * 1000, rnd.Float64() * 1000}
		for _, tree := range []*rtree.Tree{tr, model} {
			if err := tree.InsertPoint(pts[i], rtree.ObjectID(i)); err != nil {
				t.Fatal(err)
			}
		}
		if i%50 == 49 {
			if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
				t.Fatal(err)
			}
		}
		if i == 199 {
			if err := ds.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Deletes survive recovery too.
	for i := 0; i < 100; i++ {
		if !tr.DeletePoint(pts[i], rtree.ObjectID(i)) || !model.DeletePoint(pts[i], rtree.ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		t.Fatal(err)
	}
	if err := ds.VerifyShadow(); err != nil {
		t.Fatal(err)
	}
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}

	ds2 := openDurableT(t, dir, &counters)
	defer ds2.Close()
	meta := ds2.Meta()
	if meta.Size != model.Len() {
		t.Fatalf("recovered size %d, want %d", meta.Size, model.Len())
	}
	tr2, err := rtree.Restore(rtree.Config{Dim: 2, MaxEntries: durableCodec().Capacity()},
		ds2, meta.Root, meta.Size)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ds2.VerifyShadow(); err != nil {
		t.Fatal(err)
	}
	for _, q := range []geom.Point{{500, 500}, {0, 0}, {999, 1}} {
		sameKNN(t, "recovered vs model", tr2, model, q, 10)
	}
	s := counters.Snapshot()
	if s.Recoveries != 1 || s.ReplayedRecords == 0 || s.Checkpoints != 1 || s.WALSyncs == 0 {
		t.Errorf("counters = %+v", s)
	}
}

// Mutations staged after the last commit are invisible after reopen —
// the uncommitted tail is discarded, not replayed.
func TestDurableStoreUncommittedTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	ds := openDurableT(t, dir, nil)
	tr := treeOver(t, ds)
	for i := 0; i < 50; i++ {
		if err := tr.InsertPoint(geom.Point{float64(i), float64(i)}, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		t.Fatal(err)
	}
	for i := 50; i < 80; i++ { // staged, never committed
		if err := tr.InsertPoint(geom.Point{float64(i), float64(i)}, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	ds.Close()

	ds2 := openDurableT(t, dir, nil)
	defer ds2.Close()
	if got := ds2.Meta().Size; got != 50 {
		t.Errorf("recovered size %d, want 50 (uncommitted inserts leaked)", got)
	}
}

// A fresh store that never committed recovers to an empty tree.
func TestDurableStoreFreshIsEmpty(t *testing.T) {
	dir := t.TempDir()
	ds := openDurableT(t, dir, nil)
	ds.Close()
	ds2 := openDurableT(t, dir, nil)
	defer ds2.Close()
	if m := ds2.Meta(); m.Root != 0 || m.Size != 0 {
		t.Errorf("fresh store recovered to %+v", m)
	}
}

// Epoch isolation: a snapshotted view stays bit-stable while inserts
// and deletes commit concurrently. Run with -race; this is the
// torn-split gate — a reader must never observe a parent/child pair
// from different commits.
func TestDurableStoreEpochIsolation(t *testing.T) {
	dir := t.TempDir()
	ds := openDurableT(t, dir, nil)
	defer ds.Close()
	tr := treeOver(t, ds)
	rnd := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		if err := tr.InsertPoint(geom.Point{rnd.Float64() * 100, rnd.Float64() * 100}, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		t.Fatal(err)
	}

	view := ds.Snapshot().WithCache(64, 4)
	wantRoot, wantSize, wantPages := view.Root(), view.Size(), view.Pages()

	// walkView counts objects reachable from the view's root and checks
	// every parent/child edge resolves inside the epoch.
	walkView := func() int {
		var count int
		var rec func(id rtree.PageID)
		rec = func(id rtree.PageID) {
			n, err := view.ReadPage(id)
			if err != nil {
				t.Errorf("view read %d: %v", id, err)
				return
			}
			for _, e := range n.Entries {
				if n.IsLeaf() {
					count++
				} else {
					rec(e.Child)
				}
			}
		}
		rec(view.Root())
		return count
	}
	if got := walkView(); got != wantSize {
		t.Fatalf("view walk found %d objects, size says %d", got, wantSize)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if view.Root() != wantRoot || view.Size() != wantSize || view.Pages() != wantPages {
					t.Error("pinned view drifted during concurrent commits")
					return
				}
				if got := walkView(); got != wantSize {
					t.Errorf("view walk found %d objects mid-commit, want %d", got, wantSize)
					return
				}
			}
		}()
	}
	for i := 200; i < 600; i++ {
		if err := tr.InsertPoint(geom.Point{rnd.Float64() * 100, rnd.Float64() * 100}, rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
		if i%20 == 0 {
			if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	// A fresh snapshot sees the new state.
	after := ds.Snapshot()
	if after.Size() != tr.Len() {
		t.Errorf("fresh snapshot size %d, want %d", after.Size(), tr.Len())
	}
}

// The committed-epoch reader hides staged writes until Commit.
func TestDurableStoreReadPageSeesOnlyCommitted(t *testing.T) {
	dir := t.TempDir()
	ds := openDurableT(t, dir, nil)
	defer ds.Close()
	tr := treeOver(t, ds)
	if err := tr.InsertPoint(geom.Point{1, 2}, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ds.ReadPage(tr.Root()); err == nil {
		t.Error("ReadPage served an uncommitted page")
	}
	if err := ds.Commit(tr.Root(), tr.Len()); err != nil {
		t.Fatal(err)
	}
	n, err := ds.ReadPage(tr.Root())
	if err != nil {
		t.Fatal(err)
	}
	if n.ID != tr.Root() {
		t.Errorf("ReadPage returned node %d, want root %d", n.ID, tr.Root())
	}
}
