//go:build !linux

package pagestore

import (
	"errors"
	"os"
)

// errNoMmap makes FileStore fall back to pread on platforms where we
// don't wire up memory mapping; the store behaves identically, just
// without the mapped fast path.
var errNoMmap = errors.New("pagestore: mmap not supported on this platform")

func mmapFile(_ *os.File, _ int) ([]byte, error) { return nil, errNoMmap }

func munmap(_ []byte) error { return nil }
