package pagestore

import (
	"fmt"

	"repro/internal/rtree"
)

// IntegrityError reports a misdirected read: a structurally valid page
// was decoded, but its self-declared ID is not the page that was asked
// for. This is the disk-array failure mode the paper's mirrored
// declustering tolerates — a drive (or a buggy cache layer) serving a
// well-formed page from the wrong address. Read paths surface it as a
// typed error so callers can distinguish "wrong data" from "no data"
// and, with mirrors available, redirect to another replica instead of
// silently returning the wrong subtree.
type IntegrityError struct {
	Want rtree.PageID // page that was requested
	Got  rtree.PageID // page the decoded image claims to be
}

func (e *IntegrityError) Error() string {
	return fmt.Sprintf("pagestore: misdirected read: asked for page %d, image is page %d", e.Want, e.Got)
}
