package pagestore

import (
	"io"
	"os"
)

// BlockFile is the raw-file seam under FileStore and the WAL. The
// production implementation is a thin *os.File wrapper; the
// crash-recovery torture tests substitute a file that buffers writes
// until Sync and can be killed mid-operation, which is how every
// "crash at sync point k" schedule is injected without touching the
// store logic itself.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	// Sync makes all previous writes durable (fsync).
	Sync() error
	// Truncate discards everything past size.
	Truncate(size int64) error
	// Size reports the current file length.
	Size() (int64, error)
	Close() error
}

// osBlockFile adapts *os.File to BlockFile.
type osBlockFile struct{ f *os.File }

func (o osBlockFile) ReadAt(p []byte, off int64) (int, error)  { return o.f.ReadAt(p, off) }
func (o osBlockFile) WriteAt(p []byte, off int64) (int, error) { return o.f.WriteAt(p, off) }
func (o osBlockFile) Sync() error                              { return o.f.Sync() }
func (o osBlockFile) Truncate(size int64) error                { return o.f.Truncate(size) }
func (o osBlockFile) Close() error                             { return o.f.Close() }

func (o osBlockFile) Size() (int64, error) {
	st, err := o.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
