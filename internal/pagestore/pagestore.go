// Package pagestore serializes R*-tree nodes to fixed-size disk pages and
// provides a Store implementation backed by those pages. A node occupies
// exactly one page (the paper's assumption: "each node of the tree
// corresponds to one disk page", §2.1, and the RAID-0 striping unit is a
// disk block, §2.2).
//
// The on-page layout is:
//
//	offset 0   uint8   magic (0xA5)
//	offset 1   uint8   version (1 = rect entries, 2 = SR sphere entries)
//	offset 2   uint16  level (0 = leaf)
//	offset 4   uint16  entry count
//	offset 6   uint16  dimension
//	offset 8   uint64  page id
//	offset 16  entries; each entry is
//	           dim*8 bytes float64 lo corner
//	           dim*8 bytes float64 hi corner
//	           8 bytes ref (child page for internal, object id for leaf)
//	           4 bytes uint32 subtree object count
//	           [version 2 only] dim*8 bytes sphere center + 8 bytes radius
//
// The decoded image lives in RAM (the simulated machine holds its
// directory working set in memory; physical read timing is modelled by
// the simulator). The encoded shadow guarantees that every node the tree
// builds actually fits its page and enables snapshot/restore.
package pagestore

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/geom"
	"repro/internal/rtree"
)

const (
	magic         = 0xA5
	versionRect   = 1 // rectangle-only entries (plain R*-tree)
	versionSphere = 2 // SR layout: entries carry a bounding sphere too
	headerSize    = 16
)

// Reader resolves one page into its decoded node. It is the seam the
// fault-injection layer (package fault) and the replicated read path of
// the concurrent engine wrap: a Reader may be a raw per-disk page
// store, an injected store that fails or delays reads, or a mirror set
// that redirects between them. Implementations must be safe for
// concurrent use.
type Reader interface {
	ReadPage(id rtree.PageID) (*rtree.Node, error)
}

// Codec encodes and decodes nodes for a fixed page size and
// dimensionality. Spheres selects the SR-tree on-page layout, where
// each entry additionally stores a dim-float64 sphere center and a
// float64 radius.
type Codec struct {
	Dim      int
	PageSize int
	Spheres  bool
}

// EntrySize returns the on-page size of one entry.
func (c Codec) EntrySize() int {
	n := c.Dim*16 + 12
	if c.Spheres {
		n += c.Dim*8 + 8
	}
	return n
}

func (c Codec) version() byte {
	if c.Spheres {
		return versionSphere
	}
	return versionRect
}

// Capacity returns the number of entries that fit on one page.
func (c Codec) Capacity() int { return (c.PageSize - headerSize) / c.EntrySize() }

// Encode serializes n into a fresh page-sized buffer. It fails when the
// node holds more entries than fit on a page or an entry has the wrong
// dimensionality.
func (c Codec) Encode(n *rtree.Node) ([]byte, error) {
	if len(n.Entries) > c.Capacity() {
		return nil, fmt.Errorf("pagestore: node %d: %d entries exceed page capacity %d",
			n.ID, len(n.Entries), c.Capacity())
	}
	buf := make([]byte, c.PageSize)
	buf[0] = magic
	buf[1] = c.version()
	binary.LittleEndian.PutUint16(buf[2:], uint16(n.Level))
	binary.LittleEndian.PutUint16(buf[4:], uint16(len(n.Entries)))
	binary.LittleEndian.PutUint16(buf[6:], uint16(c.Dim))
	binary.LittleEndian.PutUint64(buf[8:], uint64(n.ID))
	off := headerSize
	for i := range n.Entries {
		e := &n.Entries[i]
		if e.Rect.Dim() != c.Dim {
			return nil, fmt.Errorf("pagestore: node %d entry %d: dim %d, codec dim %d",
				n.ID, i, e.Rect.Dim(), c.Dim)
		}
		for d := 0; d < c.Dim; d++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Lo[d]))
			off += 8
		}
		for d := 0; d < c.Dim; d++ {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Rect.Hi[d]))
			off += 8
		}
		var ref uint64
		if n.IsLeaf() {
			ref = uint64(e.Object)
		} else {
			ref = uint64(e.Child)
		}
		binary.LittleEndian.PutUint64(buf[off:], ref)
		off += 8
		if e.Count < 0 || e.Count > math.MaxUint32 {
			return nil, fmt.Errorf("pagestore: node %d entry %d: count %d out of range", n.ID, i, e.Count)
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.Count))
		off += 4
		if c.Spheres {
			if !e.Sphere.Valid() || e.Sphere.Center.Dim() != c.Dim {
				return nil, fmt.Errorf("pagestore: node %d entry %d: missing or mismatched sphere", n.ID, i)
			}
			for d := 0; d < c.Dim; d++ {
				binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Sphere.Center[d]))
				off += 8
			}
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(e.Sphere.Radius))
			off += 8
		}
	}
	return buf, nil
}

// Decode reconstructs a node from a page image. The image must be
// exactly one page: a short buffer is a torn read, and a long one is a
// misdirected or overlapping read — both are integrity faults, not
// layouts to tolerate (trailing garbage used to be silently accepted).
func (c Codec) Decode(buf []byte) (*rtree.Node, error) {
	if len(buf) != c.PageSize {
		return nil, fmt.Errorf("pagestore: page image is %d bytes, want page size %d", len(buf), c.PageSize)
	}
	if len(buf) < headerSize {
		return nil, fmt.Errorf("pagestore: page too short: %d bytes", len(buf))
	}
	if buf[0] != magic {
		return nil, fmt.Errorf("pagestore: bad magic 0x%02x", buf[0])
	}
	if buf[1] != c.version() {
		return nil, fmt.Errorf("pagestore: page version %d, codec expects %d", buf[1], c.version())
	}
	level := int(binary.LittleEndian.Uint16(buf[2:]))
	count := int(binary.LittleEndian.Uint16(buf[4:]))
	dim := int(binary.LittleEndian.Uint16(buf[6:]))
	if dim != c.Dim {
		return nil, fmt.Errorf("pagestore: page dim %d, codec dim %d", dim, c.Dim)
	}
	if count > c.Capacity() {
		return nil, fmt.Errorf("pagestore: entry count %d exceeds capacity %d", count, c.Capacity())
	}
	if need := headerSize + count*c.EntrySize(); len(buf) < need {
		return nil, fmt.Errorf("pagestore: page truncated: %d bytes, need %d for %d entries",
			len(buf), need, count)
	}
	n := &rtree.Node{
		ID:      rtree.PageID(binary.LittleEndian.Uint64(buf[8:])),
		Level:   level,
		Entries: make([]rtree.Entry, count),
	}
	off := headerSize
	for i := 0; i < count; i++ {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			lo[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		for d := 0; d < dim; d++ {
			hi[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
		}
		ref := binary.LittleEndian.Uint64(buf[off:])
		off += 8
		cnt := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		e := rtree.Entry{Rect: geom.Rect{Lo: lo, Hi: hi}, Count: cnt}
		if c.Spheres {
			center := make(geom.Point, dim)
			for d := 0; d < dim; d++ {
				center[d] = math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
				off += 8
			}
			radius := math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
			off += 8
			e.Sphere = geom.Sphere{Center: center, Radius: radius}
		}
		if level == 0 {
			e.Object = rtree.ObjectID(ref)
		} else {
			e.Child = rtree.PageID(ref)
		}
		n.Entries[i] = e
	}
	// Build the flat geometry view eagerly: a decoded node is about to
	// be scanned by the batch distance kernels, and building here means
	// the buffer pool caches the flat form along with the node.
	n.Flat()
	return n, nil
}

// PagedStore is an rtree.Store whose nodes shadow into encoded
// fixed-size pages on every Update. The decoded working set stays in
// memory; the encoded image proves page-fit and supports Snapshot.
//
// A readers-writer lock makes the store safe for concurrent readers
// (Get, Page, Len) alongside each other and serializes mutations
// (Allocate, Update, Free) — the concurrent query engine reads pages
// from many goroutines at once. Mutating while reads are in flight is
// safe at the store level, though returned *Node values are shared and
// must not be read while tree structural operations rewrite them.
type PagedStore struct {
	mu     sync.RWMutex
	codec  Codec
	nodes  map[rtree.PageID]*rtree.Node // guarded by mu
	pages  map[rtree.PageID][]byte      // guarded by mu
	nextID rtree.PageID                 // guarded by mu

	encodes uint64 // write-backs performed; guarded by mu
	bytes   int    // total encoded bytes held; guarded by mu
}

// NewPagedStore creates a store for pages of the given size and
// dimensionality (rectangle-only layout). It panics if even a minimal
// node cannot fit, mirroring rtree's capacity floor.
func NewPagedStore(pageSize, dim int) *PagedStore {
	return NewPagedStoreEx(pageSize, dim, false)
}

// NewPagedStoreEx creates a store with the SR-tree sphere layout when
// spheres is true.
func NewPagedStoreEx(pageSize, dim int, spheres bool) *PagedStore {
	c := Codec{Dim: dim, PageSize: pageSize, Spheres: spheres}
	if c.Capacity() < 4 {
		panic(fmt.Sprintf("pagestore: page size %d too small for dim %d (capacity %d < 4)",
			pageSize, dim, c.Capacity()))
	}
	return &PagedStore{
		codec:  c,
		nodes:  make(map[rtree.PageID]*rtree.Node),
		pages:  make(map[rtree.PageID][]byte),
		nextID: 1,
	}
}

// Codec returns the store's codec.
func (s *PagedStore) Codec() Codec { return s.codec }

// Get implements rtree.Store.
func (s *PagedStore) Get(id rtree.PageID) *rtree.Node {
	s.mu.RLock()
	n, ok := s.nodes[id]
	s.mu.RUnlock()
	if !ok {
		panic(fmt.Sprintf("pagestore: unknown page %d", id))
	}
	return n
}

// Allocate implements rtree.Store.
func (s *PagedStore) Allocate(level int) *rtree.Node {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := &rtree.Node{ID: s.nextID, Level: level}
	s.nextID++
	s.nodes[n.ID] = n
	return n
}

// Update implements rtree.Store: the node is re-encoded into its page.
// Encoding failure (node overflow beyond page capacity) panics — it
// means the tree was configured with a capacity larger than the page
// holds, a programming error surfaced as early as possible.
func (s *PagedStore) Update(n *rtree.Node) {
	// Invalidate and encode under the write lock: a split rewrites the
	// node's entries in place, and concurrent ReadPage decoders must
	// never observe the store mid-write-back.
	s.mu.Lock()
	defer s.mu.Unlock()
	n.InvalidateFlat()
	buf, err := s.codec.Encode(n)
	if err != nil {
		panic(err)
	}
	if old, ok := s.pages[n.ID]; ok {
		s.bytes -= len(old)
	}
	s.pages[n.ID] = buf
	s.bytes += len(buf)
	s.encodes++
}

// Free implements rtree.Store.
func (s *PagedStore) Free(id rtree.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.nodes, id)
	if old, ok := s.pages[id]; ok {
		s.bytes -= len(old)
		delete(s.pages, id)
	}
}

// Len implements rtree.Store.
func (s *PagedStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// ReadPage implements Reader: the page's encoded image is decoded into
// a fresh node. Unlike Get it performs a physical decode and returns an
// error (not a panic) for pages without an image, which is what the
// degraded-mode read path needs. The decoded node's self-declared ID
// must match the requested page: a mismatch means a misdirected read (a
// valid page served from the wrong address) and surfaces as a typed
// *IntegrityError instead of a silently wrong node.
func (s *PagedStore) ReadPage(id rtree.PageID) (*rtree.Node, error) {
	s.mu.RLock()
	buf, ok := s.pages[id]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("pagestore: page %d has no encoded image", id)
	}
	n, err := s.codec.Decode(buf)
	if err != nil {
		return nil, err
	}
	if n.ID != id {
		return nil, &IntegrityError{Want: id, Got: n.ID}
	}
	return n, nil
}

// Page returns a copy of the encoded image of a page (nil when the node
// was never updated). Callers get their own buffer: the internal image
// is the shadow VerifyShadow audits, and handing it out by reference
// would let a caller corrupt the evidence.
func (s *PagedStore) Page(id rtree.PageID) []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf, ok := s.pages[id]
	if !ok {
		return nil
	}
	out := make([]byte, len(buf))
	copy(out, buf)
	return out
}

// Encodes returns the number of write-backs performed.
func (s *PagedStore) Encodes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.encodes
}

// Bytes returns the total encoded bytes held.
func (s *PagedStore) Bytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bytes
}

// VerifyShadow re-decodes every encoded page and checks it matches the
// in-memory node. Used by tests and by treestat as a consistency audit.
func (s *PagedStore) VerifyShadow() error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for id, n := range s.nodes {
		buf, ok := s.pages[id]
		if !ok {
			// Never updated since allocation; an empty node is legal
			// only for a fresh root.
			if len(n.Entries) != 0 {
				return fmt.Errorf("pagestore: page %d has entries but no encoded image", id)
			}
			continue
		}
		if err := verifyShadowNode(s.codec, n, buf); err != nil {
			return err
		}
	}
	return nil
}

// verifyShadowNode checks one node against its encoded shadow image.
// Geometry compares bitwise (Float64bits, not geometric tolerance): the
// shadow is a codec round trip of the exact in-memory floats, so any
// difference at all — including a NaN payload or a -0/+0 flip — is
// corruption, not numeric noise.
func verifyShadowNode(codec Codec, n *rtree.Node, buf []byte) error {
	dec, err := codec.Decode(buf)
	if err != nil {
		return fmt.Errorf("pagestore: page %d: %v", n.ID, err)
	}
	if dec.ID != n.ID || dec.Level != n.Level || len(dec.Entries) != len(n.Entries) {
		return fmt.Errorf("pagestore: page %d: shadow header mismatch", n.ID)
	}
	for i := range n.Entries {
		a, b := n.Entries[i], dec.Entries[i]
		if !rectBitsEqual(a.Rect, b.Rect) || a.Child != b.Child || a.Object != b.Object || a.Count != b.Count {
			return fmt.Errorf("pagestore: page %d entry %d: shadow mismatch", n.ID, i)
		}
		if codec.Spheres {
			if !pointBitsEqual(a.Sphere.Center, b.Sphere.Center) ||
				math.Float64bits(a.Sphere.Radius) != math.Float64bits(b.Sphere.Radius) {
				return fmt.Errorf("pagestore: page %d entry %d: sphere shadow mismatch", n.ID, i)
			}
		}
	}
	return nil
}

// pointBitsEqual reports exact bit-level equality of two coordinate
// vectors (IEEE-754 bit patterns, so NaNs compare by payload and
// -0 != +0 — stricter than geometric equality, which is the point).
func pointBitsEqual(a, b geom.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// rectBitsEqual is pointBitsEqual over both corners.
func rectBitsEqual(a, b geom.Rect) bool {
	return pointBitsEqual(a.Lo, b.Lo) && pointBitsEqual(a.Hi, b.Hi)
}
