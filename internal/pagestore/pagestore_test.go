package pagestore

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/geom"
	"repro/internal/rtree"
)

func TestCodecCapacityMatchesRtree(t *testing.T) {
	for _, dim := range []int{2, 3, 5, 10, 16} {
		c := Codec{Dim: dim, PageSize: 4096}
		if got, want := c.Capacity(), rtree.CapacityForPage(4096, dim); got != want && want > 4 {
			t.Errorf("dim %d: codec capacity %d, rtree capacity %d", dim, got, want)
		}
	}
}

func randomNode(rnd *rand.Rand, dim, entries int, leaf bool) *rtree.Node {
	n := &rtree.Node{ID: rtree.PageID(rnd.Intn(1 << 20)), Level: 0}
	if !leaf {
		n.Level = 1 + rnd.Intn(5)
	}
	for i := 0; i < entries; i++ {
		lo := make(geom.Point, dim)
		hi := make(geom.Point, dim)
		for d := 0; d < dim; d++ {
			a, b := rnd.NormFloat64()*100, rnd.NormFloat64()*100
			if a > b {
				a, b = b, a
			}
			lo[d], hi[d] = a, b
		}
		e := rtree.Entry{Rect: geom.Rect{Lo: lo, Hi: hi}}
		if leaf {
			e.Object = rtree.ObjectID(rnd.Int63())
			e.Count = 1
		} else {
			e.Child = rtree.PageID(rnd.Intn(1 << 20))
			e.Count = rnd.Intn(100000)
		}
		n.Entries = append(n.Entries, e)
	}
	return n
}

// Property: Decode(Encode(n)) == n for random nodes of all shapes.
func TestCodecRoundTripProperty(t *testing.T) {
	f := func(seed int64, dimRaw, entRaw uint8, leaf bool) bool {
		rnd := rand.New(rand.NewSource(seed))
		dim := int(dimRaw)%10 + 1
		c := Codec{Dim: dim, PageSize: 4096}
		entries := int(entRaw) % (c.Capacity() + 1)
		n := randomNode(rnd, dim, entries, leaf)
		buf, err := c.Encode(n)
		if err != nil {
			return false
		}
		if len(buf) != 4096 {
			return false
		}
		dec, err := c.Decode(buf)
		if err != nil {
			return false
		}
		if dec.ID != n.ID || dec.Level != n.Level || len(dec.Entries) != len(n.Entries) {
			return false
		}
		for i := range n.Entries {
			a, b := n.Entries[i], dec.Entries[i]
			if !a.Rect.Equal(b.Rect) || a.Child != b.Child || a.Object != b.Object || a.Count != b.Count {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOverflow(t *testing.T) {
	c := Codec{Dim: 2, PageSize: 256} // capacity (256-16)/44 = 5
	rnd := rand.New(rand.NewSource(1))
	n := randomNode(rnd, 2, c.Capacity()+1, true)
	if _, err := c.Encode(n); err == nil {
		t.Error("Encode accepted overflowing node")
	}
}

func TestEncodeRejectsWrongDim(t *testing.T) {
	c := Codec{Dim: 3, PageSize: 4096}
	rnd := rand.New(rand.NewSource(2))
	n := randomNode(rnd, 2, 3, true)
	if _, err := c.Encode(n); err == nil {
		t.Error("Encode accepted wrong-dimension entries")
	}
}

func TestDecodeRejectsCorruptPages(t *testing.T) {
	c := Codec{Dim: 2, PageSize: 4096}
	rnd := rand.New(rand.NewSource(3))
	buf, err := c.Encode(randomNode(rnd, 2, 5, true))
	if err != nil {
		t.Fatal(err)
	}
	short := buf[:8]
	if _, err := c.Decode(short); err == nil {
		t.Error("Decode accepted truncated page")
	}
	badMagic := append([]byte(nil), buf...)
	badMagic[0] = 0x00
	if _, err := c.Decode(badMagic); err == nil {
		t.Error("Decode accepted bad magic")
	}
	badVer := append([]byte(nil), buf...)
	badVer[1] = 99
	if _, err := c.Decode(badVer); err == nil {
		t.Error("Decode accepted bad version")
	}
	badDim := append([]byte(nil), buf...)
	badDim[6] = 7
	if _, err := c.Decode(badDim); err == nil {
		t.Error("Decode accepted dim mismatch")
	}
}

func TestPagedStoreDrivesTree(t *testing.T) {
	ps := NewPagedStore(4096, 2)
	cfg := rtree.Config{Dim: 2, MaxEntries: ps.Codec().Capacity()}
	tr, err := rtree.New(cfg, ps)
	if err != nil {
		t.Fatal(err)
	}
	rnd := rand.New(rand.NewSource(4))
	pts := make([]geom.Point, 3000)
	for i := range pts {
		pts[i] = geom.Point{rnd.Float64() * 1000, rnd.Float64() * 1000}
		if err := tr.InsertPoint(pts[i], rtree.ObjectID(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := ps.VerifyShadow(); err != nil {
		t.Fatal(err)
	}
	if ps.Encodes() == 0 {
		t.Error("no pages were encoded")
	}
	// Deletes keep the shadow consistent too.
	for i := 0; i < 1000; i++ {
		if !tr.DeletePoint(pts[i], rtree.ObjectID(i)) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if err := ps.VerifyShadow(); err != nil {
		t.Fatal(err)
	}
	if ps.Len() == 0 || ps.Bytes() == 0 {
		t.Error("store emptied unexpectedly")
	}
	// kNN over the paged store must match results over a mem store.
	q := geom.Point{500, 500}
	got, _ := tr.NearestNeighbors(q, 10)
	if len(got) != 10 {
		t.Fatalf("kNN returned %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].DistSq < got[i-1].DistSq {
			t.Error("kNN results out of order")
		}
	}
}

func TestPagedStoreTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for tiny page")
		}
	}()
	NewPagedStore(64, 10)
}

func TestPagedStoreFreeReclaims(t *testing.T) {
	ps := NewPagedStore(4096, 2)
	n := ps.Allocate(0)
	n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{1, 2}), 7))
	ps.Update(n)
	if ps.Bytes() != 4096 {
		t.Errorf("bytes = %d", ps.Bytes())
	}
	ps.Free(n.ID)
	if ps.Bytes() != 0 || ps.Len() != 0 {
		t.Error("Free did not reclaim")
	}
}

// TestPagedStoreConcurrentReads drives concurrent Get/Page/Len readers
// against a populated store while a writer keeps updating; under -race
// this is the pagestore concurrency gate.
func TestPagedStoreConcurrentReads(t *testing.T) {
	ps := NewPagedStore(4096, 2)
	ids := make([]rtree.PageID, 64)
	for i := range ids {
		n := ps.Allocate(0)
		n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{float64(i), 1}), rtree.ObjectID(i)))
		ps.Update(n)
		ids[i] = n.ID
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				id := ids[(g*17+i)%len(ids)]
				if ps.Get(id).ID != id {
					t.Errorf("Get(%d) returned wrong node", id)
					return
				}
				if ps.Page(id) == nil {
					t.Errorf("Page(%d) nil", id)
					return
				}
				_ = ps.Len()
				_ = ps.Bytes()
			}
		}(g)
	}
	writer := ps.Allocate(0)
	for i := 0; i < 2000; i++ {
		writer.Entries = writer.Entries[:0]
		writer.Entries = append(writer.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{float64(i), 2}), rtree.ObjectID(i)))
		ps.Update(writer)
	}
	close(stop)
	wg.Wait()
}
