package pagestore

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/rtree"
)

func leafNode(id rtree.PageID, x float64) *rtree.Node {
	n := &rtree.Node{ID: id, Level: 0}
	n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{x, x + 1}), rtree.ObjectID(id)))
	return n
}

func TestFileStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drive.pages")
	codec := Codec{Dim: 2, PageSize: 512}
	var counters obs.StorageCounters
	fs, err := OpenFileStore(path, codec, FileStoreOptions{Counters: &counters})
	if err != nil {
		t.Fatal(err)
	}
	for id := rtree.PageID(1); id <= 5; id++ {
		if err := fs.WriteNode(leafNode(id, float64(id))); err != nil {
			t.Fatal(err)
		}
	}
	meta := FileMeta{Root: 1, Size: 5, NextID: 6}
	if err := fs.WriteMeta(meta); err != nil {
		t.Fatal(err)
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	fs2, err := OpenFileStore(path, codec, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs2.Close()
	if got := fs2.Meta(); got != meta {
		t.Errorf("Meta = %+v, want %+v", got, meta)
	}
	pages, err := fs2.LoadPages()
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) != 5 {
		t.Fatalf("LoadPages returned %d pages, want 5", len(pages))
	}
	for id := rtree.PageID(1); id <= 5; id++ {
		n, err := fs2.ReadPage(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.ID != id || len(n.Entries) != 1 || n.Entries[0].Object != rtree.ObjectID(id) {
			t.Errorf("page %d decoded wrong: %+v", id, n)
		}
	}
	s := counters.Snapshot()
	if s.PageWrites != 5 || s.DataSyncs != 1 {
		t.Errorf("counters = %+v", s)
	}
}

// A slot past the end of the file is a short read — the same thing a
// truncated drive returns — and must wrap io.ErrUnexpectedEOF.
func TestFileStoreShortRead(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drive.pages")
	codec := Codec{Dim: 2, PageSize: 512}
	fs, err := OpenFileStore(path, codec, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	if err := fs.WriteNode(leafNode(1, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadImage(7); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("read past EOF: err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Truncate mid-page: a torn page is a short read too.
	if err := os.Truncate(path, 512+100); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.ReadImage(1); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("torn page: err = %v, want io.ErrUnexpectedEOF", err)
	}
}

// A well-formed image sitting in the wrong slot is a misdirected read.
func TestFileStoreMisdirectedSlot(t *testing.T) {
	dir := t.TempDir()
	codec := Codec{Dim: 2, PageSize: 512}
	fs, err := OpenFileStore(filepath.Join(dir, "drive.pages"), codec, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	img, err := codec.Encode(leafNode(2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.WriteImage(3, img); err != nil { // page 2's bytes in slot 3
		t.Fatal(err)
	}
	_, err = fs.ReadPage(3)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v, want *IntegrityError", err)
	}
	if ie.Want != 3 || ie.Got != 2 {
		t.Errorf("IntegrityError = %+v", ie)
	}
}

func TestFileStoreZeroPageSkippedByLoad(t *testing.T) {
	dir := t.TempDir()
	codec := Codec{Dim: 2, PageSize: 512}
	fs, err := OpenFileStore(filepath.Join(dir, "drive.pages"), codec, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for id := rtree.PageID(1); id <= 3; id++ {
		if err := fs.WriteNode(leafNode(id, float64(id))); err != nil {
			t.Fatal(err)
		}
	}
	if err := fs.ZeroPage(2); err != nil {
		t.Fatal(err)
	}
	pages, err := fs.LoadPages()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pages[2]; ok || len(pages) != 2 {
		t.Errorf("LoadPages = %d pages (freed slot present: %v), want 2 without slot 2", len(pages), ok)
	}
}

func TestFileStoreSuperblockCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "drive.pages")
	codec := Codec{Dim: 2, PageSize: 512}
	fs, err := OpenFileStore(path, codec, FileStoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	meta := FileMeta{Root: 1, Size: 7, NextID: 9}
	if err := fs.WriteMeta(meta); err != nil {
		t.Fatal(err)
	}
	fs.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	write := func(b []byte) {
		t.Helper()
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// A torn primary copy falls back to the backup — and open heals the
	// primary, so a second open succeeds from either copy again.
	torn := append([]byte(nil), raw...)
	torn[20] ^= 0x01 // flip a bit inside the primary's checksummed region
	write(torn)
	fs2, err := OpenFileStore(path, codec, FileStoreOptions{})
	if err != nil {
		t.Fatalf("open with a torn primary superblock: %v", err)
	}
	if got := fs2.Meta(); got != meta {
		t.Errorf("backup fallback recovered %+v, want %+v", got, meta)
	}
	if err := fs2.Sync(); err != nil {
		t.Fatal(err)
	}
	fs2.Close()
	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if healed[20] == torn[20] {
		t.Error("open did not heal the torn primary copy")
	}

	// Both copies corrupt: unrecoverable, open must fail.
	bad := append([]byte(nil), raw...)
	bad[20] ^= 0x01
	bad[superblockBackupOff+20] ^= 0x01
	write(bad)
	if _, err := OpenFileStore(path, codec, FileStoreOptions{}); err == nil {
		t.Error("open accepted a file with both superblock copies corrupt")
	}

	// A codec mismatch is rejected even with valid checksums.
	write(raw)
	if _, err := OpenFileStore(path, Codec{Dim: 3, PageSize: 512}, FileStoreOptions{}); err == nil {
		t.Error("open accepted a dimension mismatch")
	}
}

// The mmap read path must serve the same bytes as pread, including
// pages written after the last remap (those fall back to pread until
// the next Sync).
func TestFileStoreMmapReads(t *testing.T) {
	dir := t.TempDir()
	codec := Codec{Dim: 2, PageSize: 512}
	fs, err := OpenFileStore(filepath.Join(dir, "drive.pages"), codec, FileStoreOptions{Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	for id := rtree.PageID(1); id <= 8; id++ {
		if err := fs.WriteNode(leafNode(id, float64(id))); err != nil {
			t.Fatal(err)
		}
		if id == 4 {
			if err := fs.Sync(); err != nil { // remap covers pages 1..4
				t.Fatal(err)
			}
		}
	}
	for id := rtree.PageID(1); id <= 8; id++ {
		n, err := fs.ReadPage(id)
		if err != nil {
			t.Fatalf("ReadPage(%d): %v", id, err)
		}
		if n.ID != id {
			t.Errorf("ReadPage(%d) returned node %d", id, n.ID)
		}
	}
	if err := fs.Sync(); err != nil {
		t.Fatal(err)
	}
	for id := rtree.PageID(1); id <= 8; id++ {
		if _, err := fs.ReadPage(id); err != nil {
			t.Fatalf("ReadPage(%d) after remap: %v", id, err)
		}
	}
}
