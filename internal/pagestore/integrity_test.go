package pagestore

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/rtree"
)

// populatePair builds a store holding two distinct single-entry leaves.
func populatePair(t *testing.T) (*PagedStore, rtree.PageID, rtree.PageID) {
	t.Helper()
	ps := NewPagedStore(4096, 2)
	a := ps.Allocate(0)
	a.Entries = append(a.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{1, 1}), 1))
	ps.Update(a)
	b := ps.Allocate(0)
	b.Entries = append(b.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{2, 2}), 2))
	ps.Update(b)
	return ps, a.ID, b.ID
}

// Regression (satellite 1): a misdirected read — a well-formed page
// served from the wrong slot — must surface as a typed IntegrityError,
// not as a silently wrong node. Before the fix ReadPage returned
// whatever node the image decoded to.
func TestReadPageDetectsMisdirectedRead(t *testing.T) {
	ps, aID, bID := populatePair(t)
	// Simulate the faulty disk: slot a now holds b's (valid!) image.
	ps.mu.Lock()
	ps.pages[aID] = ps.pages[bID]
	ps.mu.Unlock()
	_, err := ps.ReadPage(aID)
	var ie *IntegrityError
	if !errors.As(err, &ie) {
		t.Fatalf("ReadPage after misdirection: err = %v, want *IntegrityError", err)
	}
	if ie.Want != aID || ie.Got != bID {
		t.Errorf("IntegrityError = want %d got %d; expected want %d got %d", ie.Want, ie.Got, aID, bID)
	}
	// The untouched slot still reads fine.
	if _, err := ps.ReadPage(bID); err != nil {
		t.Fatalf("ReadPage(%d) = %v", bID, err)
	}
}

// Regression (satellite 2): Page must hand out a copy. Before the fix a
// caller could scribble on the returned buffer and corrupt the shadow
// image VerifyShadow audits.
func TestPageReturnsCopy(t *testing.T) {
	ps, aID, _ := populatePair(t)
	buf := ps.Page(aID)
	if buf == nil {
		t.Fatal("Page returned nil for a live page")
	}
	for i := range buf {
		buf[i] ^= 0xFF
	}
	if err := ps.VerifyShadow(); err != nil {
		t.Fatalf("caller mutation reached the shadow image: %v", err)
	}
	if _, err := ps.ReadPage(aID); err != nil {
		t.Fatalf("ReadPage after caller mutation: %v", err)
	}
}

// Regression (satellite 2): Decode must reject an image that is not
// exactly one page. Before the fix trailing garbage was silently
// accepted.
func TestDecodeRejectsOversizedBuffer(t *testing.T) {
	c := Codec{Dim: 2, PageSize: 512}
	n := &rtree.Node{ID: 9, Level: 0}
	n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{3, 4}), 5))
	buf, err := c.Encode(n)
	if err != nil {
		t.Fatal(err)
	}
	long := append(append([]byte(nil), buf...), 0xDE, 0xAD)
	if _, err := c.Decode(long); err == nil {
		t.Error("Decode accepted an oversized page image")
	}
	if _, err := c.Decode(buf[:len(buf)-1]); err == nil {
		t.Error("Decode accepted an undersized page image")
	}
	if _, err := c.Decode(buf); err != nil {
		t.Errorf("Decode rejected an exact page image: %v", err)
	}
}

// Regression (satellite 3): Update encodes under the store lock, so
// concurrent ReadPage decoders never race the in-place entry rewrite.
// Run with -race; before the fix InvalidateFlat+Encode happened outside
// s.mu.
func TestUpdateRacesReadPage(t *testing.T) {
	ps := NewPagedStore(4096, 2)
	n := ps.Allocate(0)
	n.Entries = append(n.Entries, rtree.LeafEntry(geom.PointRect(geom.Point{0, 0}), 0))
	ps.Update(n)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ps.ReadPage(n.ID); err != nil {
					var ie *IntegrityError
					if errors.As(err, &ie) {
						t.Errorf("integrity error under concurrent update: %v", err)
					}
					return
				}
			}
		}()
	}
	for i := 0; i < 5000; i++ {
		n.Entries = n.Entries[:0]
		n.Entries = append(n.Entries,
			rtree.LeafEntry(geom.PointRect(geom.Point{float64(i), float64(i)}), rtree.ObjectID(i)))
		ps.Update(n)
	}
	close(stop)
	wg.Wait()
}

// Satellite 3's second half: VerifyShadow compares geometry bitwise, so
// a NaN coordinate (equal to nothing, including itself) still verifies
// against its own round trip, and a -0/+0 substitution is corruption.
func TestVerifyShadowBitwise(t *testing.T) {
	ps := NewPagedStore(4096, 2)
	n := ps.Allocate(0)
	nan := geom.Point{0, 0}
	nan[0] = nan[0] / nan[0] // NaN without the compiler folding a constant
	n.Entries = append(n.Entries, rtree.LeafEntry(geom.Rect{Lo: nan, Hi: geom.Point{1, 1}}, 3))
	ps.Update(n)
	if err := ps.VerifyShadow(); err != nil {
		t.Fatalf("NaN round trip failed bitwise shadow check: %v", err)
	}
	// Flip the sign bit of one stored coordinate: tolerant comparison
	// (0.0 == -0.0) would miss it; bitwise must not.
	n.Entries[0].Rect.Hi[0] = 0
	ps.Update(n)
	ps.mu.Lock()
	img := ps.pages[n.ID]
	img[headerSize+2*8] = 0x00 // lo byte of Hi[0] stays 0
	img[headerSize+3*8-1] = 0x80
	ps.mu.Unlock()
	if err := ps.VerifyShadow(); err == nil {
		t.Error("VerifyShadow missed a -0/+0 substitution")
	}
}
