package core

import (
	"math"
	"testing"

	"repro/internal/bruteforce"
	"repro/internal/dataset"
)

func newTestIndex(t *testing.T, dim, disks int) *Index {
	t.Helper()
	ix, err := NewIndex(IndexConfig{Dim: dim, NumDisks: disks, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestNewIndexValidation(t *testing.T) {
	if _, err := NewIndex(IndexConfig{Dim: 0, NumDisks: 4}); err == nil {
		t.Error("accepted dim 0")
	}
	if _, err := NewIndex(IndexConfig{Dim: 2, NumDisks: 0}); err == nil {
		t.Error("accepted 0 disks")
	}
	if _, err := NewIndex(IndexConfig{Dim: 2, NumDisks: 2, Policy: "bogus"}); err == nil {
		t.Error("accepted bogus policy")
	}
}

func TestInsertQueryDelete(t *testing.T) {
	ix := newTestIndex(t, 2, 4)
	pts := dataset.Uniform(1000, 2, 5)
	if err := ix.InsertAll(pts, 0); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 1000 {
		t.Fatalf("len = %d", ix.Len())
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}

	q := Point{0.5, 0.5}
	for _, name := range Algorithms() {
		res, stats, err := ix.KNN(q, 7, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res) != 7 {
			t.Fatalf("%s: %d results", name, len(res))
		}
		want := bruteforce.KNN(pts, q, 7)
		for i := range res {
			if math.Abs(res[i].DistSq-want[i].DistSq) > 1e-9 {
				t.Fatalf("%s: rank %d mismatch", name, i)
			}
		}
		if stats.NodesVisited <= 0 {
			t.Errorf("%s: no stats", name)
		}
	}

	if !ix.Delete(pts[0], 0) {
		t.Error("delete failed")
	}
	if ix.Delete(pts[0], 0) {
		t.Error("double delete succeeded")
	}
	if ix.Len() != 999 {
		t.Errorf("len after delete = %d", ix.Len())
	}
}

func TestKNNValidation(t *testing.T) {
	ix := newTestIndex(t, 2, 4)
	_ = ix.InsertAll(dataset.Uniform(100, 2, 5), 0)
	if _, _, err := ix.KNN(Point{1, 2, 3}, 5, ""); err == nil {
		t.Error("accepted wrong-dimension query")
	}
	if _, _, err := ix.KNN(Point{1, 2}, 5, "nope"); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestRangeSearch(t *testing.T) {
	ix := newTestIndex(t, 2, 4)
	pts := dataset.Uniform(2000, 2, 7)
	_ = ix.InsertAll(pts, 0)
	q := Point{0.4, 0.6}
	eps := 0.1
	got, nodes, err := ix.RangeSearch(q, eps)
	if err != nil {
		t.Fatal(err)
	}
	if nodes <= 0 {
		t.Error("no nodes accessed")
	}
	want := bruteforce.Range(pts, q, eps)
	if len(got) != len(want) {
		t.Fatalf("range: got %d, want %d", len(got), len(want))
	}
	if _, _, err := ix.RangeSearch(Point{1}, 0.1); err == nil {
		t.Error("accepted wrong-dimension range query")
	}
}

func TestSimulate(t *testing.T) {
	ix := newTestIndex(t, 2, 5)
	pts := dataset.Gaussian(3000, 2, 9)
	_ = ix.InsertAll(pts, 0)
	qs := dataset.SampleQueries(pts, 20, 10)
	res, err := ix.Simulate(SimulatedWorkload{
		Algorithm:   "crss",
		K:           10,
		Queries:     qs,
		ArrivalRate: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != 20 || res.MeanResponse <= 0 {
		t.Fatalf("simulate: %d outcomes, mean %.4f", len(res.Outcomes), res.MeanResponse)
	}
	if _, err := ix.Simulate(SimulatedWorkload{Algorithm: "nope", K: 1, Queries: qs}); err == nil {
		t.Error("accepted unknown algorithm")
	}
}

func TestDistribution(t *testing.T) {
	ix := newTestIndex(t, 2, 6)
	_ = ix.InsertAll(dataset.Uniform(2000, 2, 11), 0)
	d := ix.Distribution()
	if d.Total != ix.Tree().Store().Len() {
		t.Errorf("distribution total %d != store %d", d.Total, ix.Tree().Store().Len())
	}
	if len(d.Pages) != 6 {
		t.Errorf("%d disks in distribution", len(d.Pages))
	}
}

func TestAlgorithmByName(t *testing.T) {
	for _, n := range Algorithms() {
		if _, err := AlgorithmByName(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if alg, err := AlgorithmByName(""); err != nil || alg.Name() != "CRSS" {
		t.Error("default algorithm is not CRSS")
	}
}
