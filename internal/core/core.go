// Package core is the high-level face of the reproduction: a similarity
// search index over a simulated disk array, combining the parallel
// R*-tree, the declustering policies, the four k-NN algorithms of the
// paper (BBSS, FPSS, CRSS, WOPTSS) and the event-driven system
// simulator. The module root package re-exports these types for
// downstream users; the experiment harness and the command-line tools
// build on the same API.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/bufferpool"
	"repro/internal/decluster"
	"repro/internal/disk"
	"repro/internal/exec"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/obs"
	"repro/internal/pagestore"
	"repro/internal/parallel"
	"repro/internal/query"
	"repro/internal/rtree"
	"repro/internal/simarray"
)

// Re-exported fundamental types.
type (
	// Point is an n-dimensional query or data point.
	Point = geom.Point
	// Rect is an axis-aligned minimum bounding rectangle.
	Rect = geom.Rect
	// ObjectID identifies an indexed object.
	ObjectID = rtree.ObjectID
	// Neighbor is one k-NN answer.
	Neighbor = query.Neighbor
	// QueryStats counts node accesses, parallel batches and CPU work.
	QueryStats = query.Stats
	// RunResult aggregates a simulated multi-user workload run.
	RunResult = simarray.RunResult
	// QueryOutcome is the timing record of one simulated query.
	QueryOutcome = simarray.QueryOutcome
	// InvalidQueryError reports a malformed k-NN query, rejected
	// identically by every execution path.
	InvalidQueryError = query.InvalidQueryError
	// FaultInjector deterministically injects drive failures and
	// latency spikes into the concurrent engine's replica reads.
	FaultInjector = fault.Injector
	// DriveFaults is one drive's fault program for a FaultInjector.
	DriveFaults = fault.Faults
	// ErrDataUnavailable is the typed degraded-mode error: a page had
	// no live replica, so the query failed rather than answer wrongly.
	ErrDataUnavailable = fault.ErrDataUnavailable
)

// NewFaultInjector creates a deterministic fault injector for
// EngineConfig.Fault; drives are keyed disk*Mirrors+mirror.
func NewFaultInjector(seed int64) *FaultInjector { return fault.NewInjector(seed) }

// IndexConfig configures a disk-array similarity index.
type IndexConfig struct {
	// Dim is the dimensionality of the indexed points. Required.
	Dim int
	// NumDisks is the width of the RAID-0 array. Required.
	NumDisks int
	// PageSize is the disk block / tree node size in bytes (default
	// 4096, the striping unit of the paper).
	PageSize int
	// Policy names the declustering heuristic: "proximity" (default,
	// the paper's choice), "roundrobin", "random", "databalance",
	// "areabalance" or "minoverlap".
	Policy string
	// Seed drives placement and simulation randomness (default 1).
	Seed int64
	// UseSpheres selects the SR-tree access-method variant: directory
	// entries additionally carry centroid bounding spheres (tighter
	// pruning in high dimensionality, smaller fanout).
	UseSpheres bool
	// DataDir, when non-empty, makes the index durable: tree pages live
	// in a disk-backed page store under this directory, with a
	// write-ahead log providing crash recovery. Mutations stage in
	// memory until Commit; a directory already holding a committed tree
	// is recovered instead of starting empty (Recovered reports the
	// restored object count). The geometry (Dim, PageSize, UseSpheres)
	// must match the directory's. Close releases the files.
	DataDir string
	// Mmap serves durable-store page reads from a read-only file
	// mapping where possible (DataDir mode only).
	Mmap bool
}

// Index is a similarity-search index distributed over a simulated disk
// array. Reads (KNN, RangeSearch, Simulate) may run concurrently;
// mutations (Insert, Delete) are exclusive — the index guards itself
// with a readers-writer lock.
type Index struct {
	cfg  IndexConfig
	mu   sync.RWMutex
	tree *parallel.Tree // guarded by mu (read lock for queries, write lock for mutations)

	// Durable backing (DataDir mode); nil for a memory index.
	store     *pagestore.DurableStore
	storage   obs.StorageCounters
	recovered int // objects restored from DataDir at open
}

// NewIndex creates an index: empty and volatile by default, or durable
// (and possibly recovered from a previous run) with IndexConfig.DataDir.
func NewIndex(cfg IndexConfig) (*Index, error) {
	if cfg.PageSize == 0 {
		cfg.PageSize = 4096
	}
	if cfg.Policy == "" {
		cfg.Policy = "proximity"
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	pol, err := decluster.ByName(cfg.Policy, cfg.Seed)
	if err != nil {
		return nil, err
	}
	pcfg := parallel.Config{
		Dim:        cfg.Dim,
		NumDisks:   cfg.NumDisks,
		Cylinders:  disk.HPC2200A().Cylinders,
		PageSize:   cfg.PageSize,
		Policy:     pol,
		Seed:       cfg.Seed,
		UseSpheres: cfg.UseSpheres,
	}
	ix := &Index{cfg: cfg}
	if cfg.DataDir != "" {
		codec := pagestore.Codec{Dim: cfg.Dim, PageSize: cfg.PageSize, Spheres: cfg.UseSpheres}
		ds, err := pagestore.OpenDurable(cfg.DataDir, codec, pagestore.DurableOptions{
			Mmap: cfg.Mmap, Counters: &ix.storage,
		})
		if err != nil {
			return nil, err
		}
		ix.store = ds
		if meta := ds.Meta(); meta.Size > 0 {
			// The directory holds a committed tree: adopt it instead of
			// starting empty.
			//lint:allow lockcheck construction: ix is not shared until NewIndex returns
			ix.tree, err = parallel.Adopt(pcfg, ds, meta.Root, meta.Size)
			ix.recovered = meta.Size
		} else {
			pcfg.Store = ds
			//lint:allow lockcheck construction: ix is not shared until NewIndex returns
			ix.tree, err = parallel.New(pcfg)
		}
		if err != nil {
			return nil, errors.Join(err, ds.Close())
		}
		return ix, nil
	}
	//lint:allow lockcheck construction: ix is not shared until NewIndex returns
	ix.tree, err = parallel.New(pcfg)
	if err != nil {
		return nil, err
	}
	return ix, nil
}

// Recovered reports how many objects were restored from DataDir when
// the index was opened (0 for a fresh or memory-backed index).
func (ix *Index) Recovered() int { return ix.recovered }

// Commit makes every staged mutation durable: the dirty pages and the
// new tree root go through the write-ahead log with one sync, after
// which a crash recovers exactly this state. No-op for a memory index.
func (ix *Index) Commit() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.store == nil {
		return nil
	}
	return ix.store.Commit(ix.tree.Root(), ix.tree.Len())
}

// Checkpoint folds committed WAL state into the data file and truncates
// the log, bounding recovery time. No-op for a memory index.
func (ix *Index) Checkpoint() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.store == nil {
		return nil
	}
	return ix.store.Checkpoint()
}

// StorageStats returns the durable store's cumulative I/O counters
// (all zero for a memory index).
func (ix *Index) StorageStats() obs.StorageSnapshot { return ix.storage.Snapshot() }

// Close releases the durable store's files without committing staged
// mutations (call Commit first to keep them). No-op for a memory index.
func (ix *Index) Close() error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if ix.store == nil {
		return nil
	}
	err := ix.store.Close()
	ix.store = nil
	return err
}

// Insert adds a point object to the index.
func (ix *Index) Insert(p Point, id ObjectID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.tree.InsertPoint(p, id)
}

// InsertAll bulk-inserts points, assigning ObjectIDs from their indices
// offset by base.
func (ix *Index) InsertAll(pts []Point, base ObjectID) error {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for i, p := range pts {
		if err := ix.tree.InsertPoint(p, base+ObjectID(i)); err != nil {
			return err
		}
	}
	return nil
}

// Delete removes a point object; it reports whether the object existed.
func (ix *Index) Delete(p Point, id ObjectID) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return ix.tree.DeletePoint(p, id)
}

// Len returns the number of indexed objects.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Len()
}

// Tree exposes the underlying parallel R*-tree for advanced use
// (experiments, statistics, custom executors). The returned tree is
// read under the caller's own discipline; the accessor itself takes
// the read lock only for the field load.
func (ix *Index) Tree() *parallel.Tree {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree
}

// AlgorithmByName resolves one of the paper's algorithms — "bbss",
// "fpss", "crss" (default recommendation), "woptss" — or the extensions
// "bfss" (best-first) and "eps-series" (growing range-query baseline).
// It delegates to the shared registry in internal/query.
func AlgorithmByName(name string) (query.Algorithm, error) {
	return query.AlgorithmByName(name)
}

// Algorithms lists the built-in algorithm names in presentation order.
func Algorithms() []string { return query.AlgorithmNames() }

// KNN answers a k-nearest-neighbor query with the named algorithm
// (empty string = CRSS, the paper's recommendation) and reports access
// statistics. Results are ordered by increasing distance.
func (ix *Index) KNN(q Point, k int, algorithm string) ([]Neighbor, *QueryStats, error) {
	alg, err := AlgorithmByName(algorithm)
	if err != nil {
		return nil, nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d := query.Driver{Tree: ix.tree}
	return d.RunChecked(alg, q, k, query.Options{})
}

// KNNTraced is KNN with a stage-by-stage trace callback (see
// query.Options.Trace); CRSS reports its ADAPTIVE/UPDATE/NORMAL/
// TERMINATE mode transitions.
func (ix *Index) KNNTraced(q Point, k int, algorithm string, trace func(string)) ([]Neighbor, *QueryStats, error) {
	alg, err := AlgorithmByName(algorithm)
	if err != nil {
		return nil, nil, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	d := query.Driver{Tree: ix.tree}
	return d.RunChecked(alg, q, k, query.Options{Trace: trace})
}

// RangeSearch returns all objects within distance eps of q (the paper's
// Definition 1), with the number of nodes accessed.
func (ix *Index) RangeSearch(q Point, eps float64) ([]Neighbor, int, error) {
	if q.Dim() != ix.cfg.Dim {
		return nil, 0, fmt.Errorf("core: query dim %d, index dim %d", q.Dim(), ix.cfg.Dim)
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	matches, nodes := ix.tree.SearchSphere(q, eps, nil)
	out := make([]Neighbor, len(matches))
	for i, m := range matches {
		out[i] = Neighbor{Object: m.Object, Rect: m.Rect, DistSq: geom.MinDistSq(q, m.Rect)}
	}
	return out, nodes, nil
}

// SimulatedWorkload describes a timed multi-user experiment.
type SimulatedWorkload struct {
	// Algorithm name; empty = CRSS.
	Algorithm string
	// K nearest neighbors per query.
	K int
	// Queries to execute, one arrival each.
	Queries []Point
	// ArrivalRate λ in queries/second (Poisson); 0 = single-user
	// (back-to-back queries).
	ArrivalRate float64
	// CachedLevels pins the top tree levels in memory (0 = paper model).
	CachedLevels int
	// SharedCachePages enables an LRU buffer pool of that many pages
	// shared across all queries of the workload (0 = no buffer pool,
	// the paper's model).
	SharedCachePages int
}

// Simulate runs the workload through the event-driven disk-array
// simulator (HP C2200A drives, 100 MIPS CPU, shared bus) and returns
// per-query response times and device statistics.
func (ix *Index) Simulate(w SimulatedWorkload) (RunResult, error) {
	alg, err := AlgorithmByName(w.Algorithm)
	if err != nil {
		return RunResult{}, err
	}
	sys, err := simarray.NewSystem(ix.tree, simarray.Config{Seed: ix.cfg.Seed})
	if err != nil {
		return RunResult{}, err
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	opts := query.Options{CachedLevels: w.CachedLevels}
	if w.SharedCachePages > 0 {
		opts.SharedCache = bufferpool.New[rtree.PageID, struct{}](w.SharedCachePages)
	}
	return sys.Run(simarray.Workload{
		Algorithm:   alg,
		K:           w.K,
		Queries:     w.Queries,
		ArrivalRate: w.ArrivalRate,
		Options:     opts,
	})
}

// EngineConfig tunes the real concurrent execution engine (see
// repro/internal/exec.Config).
type EngineConfig = exec.Config

// EngineStats are the engine's cumulative counters.
type EngineStats = exec.Stats

// EngineSnapshot is a diffable observability snapshot of the engine:
// counters, cache traffic, per-disk gauges with the declustering
// balance ratio, and wall-clock latency histograms (p50/p95/p99).
type EngineSnapshot = exec.Snapshot

// Engine is a real concurrent k-NN execution engine over an Index: one
// worker goroutine per simulated disk serves page fetches, and many
// client goroutines may query it at once. It contrasts with Simulate,
// which models the same parallelism on a virtual clock — see the README
// section "Real vs. simulated parallelism".
//
// The engine snapshots the index's pages when it is created and
// queries answer as of that snapshot. Do not mutate the index while an
// engine is open — structural changes (splits, frees) invalidate the
// snapshot; build a new engine after loading data. Each engine query
// holds the index's read lock, so an accidental concurrent mutation is
// a stale-snapshot error, not a data race.
type Engine struct {
	ix  *Index
	eng *exec.Engine
}

// NewEngine opens a concurrent execution engine over the index.
// Close it to release its worker goroutines.
func (ix *Index) NewEngine(cfg EngineConfig) (*Engine, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	eng, err := exec.New(ix.tree, cfg)
	if err != nil {
		return nil, err
	}
	return &Engine{ix: ix, eng: eng}, nil
}

// KNN answers a k-nearest-neighbor query with the named algorithm
// (empty string = CRSS). It is safe to call from many goroutines; the
// context cancels the query mid-flight.
func (e *Engine) KNN(ctx context.Context, q Point, k int, algorithm string) ([]Neighbor, *QueryStats, error) {
	alg, err := AlgorithmByName(algorithm)
	if err != nil {
		return nil, nil, err
	}
	e.ix.mu.RLock()
	defer e.ix.mu.RUnlock()
	return e.eng.KNN(ctx, alg, q, k, query.Options{})
}

// Exec exposes the underlying exec.Engine for callers that need its
// full surface — the network query service fronts it directly (per-
// request observers, queue-depth gauges for admission control).
func (e *Engine) Exec() *exec.Engine { return e.eng }

// Stats returns the engine's cumulative counters.
func (e *Engine) Stats() EngineStats { return e.eng.Stats() }

// CacheStats returns the engine's shared page-cache counters (zero
// when EngineConfig.CachePages is 0).
func (e *Engine) CacheStats() bufferpool.Stats { return e.eng.CacheStats() }

// NumWorkers returns the number of disk worker goroutines.
func (e *Engine) NumWorkers() int { return e.eng.NumWorkers() }

// Snapshot captures the engine's observability state: cumulative
// counters, per-disk serve gauges with the load-balance ratio, and
// the latency histograms. Snapshots are diffable with Sub to profile
// an interval.
func (e *Engine) Snapshot() EngineSnapshot { return e.eng.Snapshot() }

// PublishExpvar publishes the live engine snapshot as an expvar under
// the given name, visible on /debug/vars (see obs.StartDebugServer).
// Like expvar.Publish it must be called at most once per name.
func (e *Engine) PublishExpvar(name string) { e.eng.PublishExpvar(name) }

// Close stops the engine's workers (pending queries unwind first) and
// closes any file-backed replica stores, returning their close errors.
func (e *Engine) Close() error { return e.eng.Close() }

// Check validates the index invariants (tree structure, entry counts,
// page placements). Intended for tests and tools.
func (ix *Index) Check() error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if err := ix.tree.Tree.CheckInvariants(); err != nil {
		return err
	}
	return ix.tree.CheckPlacements()
}

// Distribution reports how the index's pages spread over the disks.
func (ix *Index) Distribution() parallel.DistributionStats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Distribution()
}

// Snapshot persists the index (configuration, every page and its
// placement) to w; LoadIndex restores it.
func (ix *Index) Snapshot(w io.Writer) error {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.tree.Snapshot(w)
}

// LoadIndex restores an index previously written by Snapshot.
func LoadIndex(r io.Reader) (*Index, error) {
	tree, err := parallel.LoadSnapshot(r)
	if err != nil {
		return nil, err
	}
	cfg := IndexConfig{
		Dim:        tree.Config().Dim,
		NumDisks:   tree.Config().NumDisks,
		PageSize:   tree.Config().PageSize,
		Policy:     tree.Config().Policy.Name(),
		Seed:       tree.Config().Seed,
		UseSpheres: tree.Config().UseSpheres,
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return &Index{cfg: cfg, tree: tree}, nil
}
