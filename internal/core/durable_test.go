package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// The durable index round trip: build, commit, checkpoint, close,
// reopen — the recovered index must report the committed population and
// answer queries bit-identically to the pre-crash index.
func TestIndexDurableRecovery(t *testing.T) {
	dir := t.TempDir()
	cfg := IndexConfig{Dim: 2, NumDisks: 4, Seed: 3, DataDir: dir}
	pts := dataset.Uniform(1500, 2, 5)
	queries := dataset.SampleQueries(pts, 10, 9)

	ix, err := NewIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Recovered() != 0 {
		t.Fatalf("fresh index claims %d recovered points", ix.Recovered())
	}
	if err := ix.InsertAll(pts[:1000], 0); err != nil {
		t.Fatal(err)
	}
	if err := ix.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// A second batch rides on the WAL only (no checkpoint): recovery
	// must replay it.
	if err := ix.InsertAll(pts[1000:], 1000); err != nil {
		t.Fatal(err)
	}
	if err := ix.Commit(); err != nil {
		t.Fatal(err)
	}
	type answer struct {
		obj  []int64
		dist []uint64
	}
	want := make([]answer, len(queries))
	for i, q := range queries {
		res, _, err := ix.KNN(q, 10, "crss")
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res {
			want[i].obj = append(want[i].obj, int64(r.Object))
			want[i].dist = append(want[i].dist, math.Float64bits(r.DistSq))
		}
	}
	s := ix.StorageStats()
	if s.WALSyncs == 0 || s.Checkpoints != 1 || s.PageWrites == 0 {
		t.Errorf("storage stats = %+v", s)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}

	ix2, err := NewIndex(cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer ix2.Close()
	if got := ix2.Recovered(); got != len(pts) {
		t.Fatalf("recovered %d points, want %d", got, len(pts))
	}
	if err := ix2.Tree().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, _, err := ix2.KNN(q, 10, "crss")
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != len(want[i].obj) {
			t.Fatalf("query %d: recovered %d results, want %d", i, len(res), len(want[i].obj))
		}
		for j, r := range res {
			if int64(r.Object) != want[i].obj[j] || math.Float64bits(r.DistSq) != want[i].dist[j] {
				t.Fatalf("query %d result %d differs after recovery", i, j)
			}
		}
	}
}

// Mutations staged after the last Commit must not survive a reopen.
func TestIndexDurableUncommittedTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	cfg := IndexConfig{Dim: 2, NumDisks: 4, Seed: 3, DataDir: dir}
	ix, err := NewIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.Uniform(300, 2, 5)
	if err := ix.InsertAll(pts[:200], 0); err != nil {
		t.Fatal(err)
	}
	if err := ix.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertAll(pts[200:], 200); err != nil { // never committed
		t.Fatal(err)
	}
	ix.Close()

	ix2, err := NewIndex(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.Recovered(); got != 200 {
		t.Errorf("recovered %d points, want the 200 committed ones", got)
	}
}

// A recovered index must reject a geometry that does not match the
// files on disk instead of silently misreading them.
func TestIndexDurableGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	ix, err := NewIndex(IndexConfig{Dim: 2, NumDisks: 4, Seed: 3, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.InsertAll([]geom.Point{{1, 2}, {3, 4}}, 0); err != nil {
		t.Fatal(err)
	}
	if err := ix.Commit(); err != nil {
		t.Fatal(err)
	}
	ix.Close()
	if _, err := NewIndex(IndexConfig{Dim: 3, NumDisks: 4, Seed: 3, DataDir: dir}); err == nil {
		t.Error("reopen with a different dimensionality succeeded")
	}
}
