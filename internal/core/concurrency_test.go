package core

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentReadsAndWrites exercises the index lock: concurrent KNN
// and RangeSearch readers race with writers; run with -race to verify.
func TestConcurrentReadsAndWrites(t *testing.T) {
	ix := newTestIndex(t, 2, 4)
	pts := dataset.Uniform(3000, 2, 13)
	if err := ix.InsertAll(pts[:2000], 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// 4 reader goroutines.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := dataset.SampleQueries(pts, 30, int64(100+g))
			for _, q := range qs {
				if _, _, err := ix.KNN(q, 5, "crss"); err != nil {
					errs <- err
					return
				}
				if _, _, err := ix.RangeSearch(q, 0.05); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// 2 writer goroutines inserting disjoint ranges.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := 2000 + g*500
			for i := 0; i < 500; i++ {
				if err := ix.Insert(pts[base%3000], ObjectID(10000+base+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLoadIndex(t *testing.T) {
	ix, err := NewIndex(IndexConfig{Dim: 3, NumDisks: 5, Seed: 21, UseSpheres: true})
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.Clustered(1500, 3, 8, 22)
	if err := ix.InsertAll(pts, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("len %d vs %d", loaded.Len(), ix.Len())
	}
	q := pts[42]
	a, _, err := ix.KNN(q, 9, "crss")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.KNN(q, 9, "crss")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].DistSq != b[i].DistSq {
			t.Fatal("kNN differs after LoadIndex")
		}
	}
	// The loaded index is fully functional: simulate on it.
	run, err := loaded.Simulate(SimulatedWorkload{
		K: 5, Queries: dataset.SampleQueries(pts, 5, 23),
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MeanResponse <= 0 {
		t.Error("loaded index simulation produced no timing")
	}
}
