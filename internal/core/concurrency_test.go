package core

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"repro/internal/dataset"
)

// TestConcurrentReadsAndWrites exercises the index lock: concurrent KNN
// and RangeSearch readers race with writers; run with -race to verify.
func TestConcurrentReadsAndWrites(t *testing.T) {
	ix := newTestIndex(t, 2, 4)
	pts := dataset.Uniform(3000, 2, 13)
	if err := ix.InsertAll(pts[:2000], 0); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)

	// 4 reader goroutines.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			qs := dataset.SampleQueries(pts, 30, int64(100+g))
			for _, q := range qs {
				if _, _, err := ix.KNN(q, 5, "crss"); err != nil {
					errs <- err
					return
				}
				if _, _, err := ix.RangeSearch(q, 0.05); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// 2 writer goroutines inserting disjoint ranges.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := 2000 + g*500
			for i := 0; i < 500; i++ {
				if err := ix.Insert(pts[base%3000], ObjectID(10000+base+i)); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := ix.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotLoadIndex(t *testing.T) {
	ix, err := NewIndex(IndexConfig{Dim: 3, NumDisks: 5, Seed: 21, UseSpheres: true})
	if err != nil {
		t.Fatal(err)
	}
	pts := dataset.Clustered(1500, 3, 8, 22)
	if err := ix.InsertAll(pts, 0); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != ix.Len() {
		t.Fatalf("len %d vs %d", loaded.Len(), ix.Len())
	}
	q := pts[42]
	a, _, err := ix.KNN(q, 9, "crss")
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := loaded.KNN(q, 9, "crss")
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].DistSq != b[i].DistSq {
			t.Fatal("kNN differs after LoadIndex")
		}
	}
	// The loaded index is fully functional: simulate on it.
	run, err := loaded.Simulate(SimulatedWorkload{
		K: 5, Queries: dataset.SampleQueries(pts, 5, 23),
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.MeanResponse <= 0 {
		t.Error("loaded index simulation produced no timing")
	}
}

// TestEngineFrontEnd drives the public concurrent engine: results match
// the sequential Index.KNN path for every algorithm name, and many
// client goroutines can share one engine (run with -race).
func TestEngineFrontEnd(t *testing.T) {
	ix := newTestIndex(t, 2, 6)
	pts := dataset.Clustered(4000, 2, 6, 31)
	if err := ix.InsertAll(pts, 0); err != nil {
		t.Fatal(err)
	}
	eng, err := ix.NewEngine(EngineConfig{WorkersPerDisk: 2, CachePages: 128})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if eng.NumWorkers() != 12 {
		t.Fatalf("NumWorkers = %d, want 12", eng.NumWorkers())
	}

	queries := dataset.SampleQueries(pts, 12, 17)
	for _, name := range []string{"crss", "bbss", "fpss", "bfss"} {
		for qi, q := range queries {
			want, _, err := ix.KNN(q, 8, name)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := eng.KNN(context.Background(), q, 8, name)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s q%d: %d results, want %d", name, qi, len(got), len(want))
			}
			for i := range got {
				if got[i].Object != want[i].Object || got[i].DistSq != want[i].DistSq {
					t.Fatalf("%s q%d: result %d differs", name, qi, i)
				}
			}
		}
	}

	var wg sync.WaitGroup
	for c := 0; c < 5; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				if _, _, err := eng.KNN(context.Background(), queries[(c+i)%len(queries)], 8, ""); err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if st := eng.Stats(); st.Queries == 0 || st.PagesFetched == 0 {
		t.Fatalf("engine counters empty: %+v", st)
	}
	if _, _, err := eng.KNN(context.Background(), queries[0], 8, "nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
